//===- examples/predictord.cpp - Resident prediction daemon ----------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
// A long-lived branch-prediction service over a Unix domain socket
// (docs/SERVING.md). Server mode keeps the analysis pipeline and the
// persistent result cache resident and serves framed requests; client
// mode submits one request to a running daemon and prints the result.
//
//   server: predictord --socket=<path> [--threads=N] [--cache=<path>]
//                      [--max-queue=N] [--degrade-depth=N]
//                      [--max-conns=N] [--deadline=MS] [--no-memo]
//
//   fleet:  predictord --socket=<path> --workers=N [server options]
//                      [--restart-budget=K] [--restart-window-ms=MS]
//                      [--backoff-ms=MS] [--heartbeat-ms=MS]
//                      [--forward-timeout=MS] [--breaker-threshold=K]
//
//   client: predictord --socket=<path> --send=<file.vl>
//                      [--method=predict|analyze] [--predictor=NAME]
//                      [--ranges] [--budget=N] [--deadline=MS]
//           predictord --socket=<path> --ping | --stats | --shutdown
//
// Fleet mode (--workers=N, docs/SERVING.md "Fleet supervision") forks N
// crash-isolated worker processes — each a single-process server on
// <socket>.wK with pcache shard <cache>.wK — and serves the public
// socket through a supervising router that hashes each request's source
// to its home shard, retries a failed worker exactly once on a healthy
// one, and restarts crashed workers with exponential backoff.
//
// A `predict` response is byte-for-byte the report `predictor_tool
// <file.vl>` prints — the client writes the payload to stdout verbatim,
// so `diff <(predictor_tool f.vl) <(predictord --socket=S --send=f.vl)`
// is empty (scripts/check.sh enforces this), in fleet mode too.
//
// Exit codes: 0 success (server: clean drain; client: ok response),
// 1 error/shed response or request failure, 2 usage error, 3 internal
// error, 5 fleet failure (every worker exhausted its restart budget),
// 6 startup failure (socket in use, bind failure, or persistent cache
// locked by another process).
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Server.h"
#include "serve/Supervisor.h"
#include "support/Process.h"
#include "support/Signal.h"
#include "support/ThreadPool.h"

#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace vrp;
using namespace vrp::serve;

namespace {

enum ExitCode : int {
  ExitSuccess = 0,
  ExitRequestFailed = 1,
  ExitUsage = 2,
  ExitInternal = 3,
  ExitFleetFailed = 5,
  ExitStartup = 6,
};

void printUsage() {
  std::cerr
      << "usage: predictord --socket=<path> [server or client options]\n"
         "server mode (default):\n"
         "  --threads=N       worker threads draining the request queue "
         "(default 1)\n"
         "  --cache=<path>    keep the persistent result cache resident; "
         "refuses to\n                    start when another process "
         "holds its lock\n"
         "  --max-queue=N     queued requests before new work is shed "
         "(default 64)\n"
         "  --degrade-depth=N queue depth at which admitted work "
         "degrades to the\n                    heuristic fallback "
         "(default 48)\n"
         "  --max-conns=N     simultaneous client connections (default "
         "64)\n"
         "  --deadline=MS     default per-request analysis deadline "
         "(0 = none)\n"
         "  --no-memo         disable response memoization\n"
         "fleet mode (--workers selects it; server options apply "
         "per worker):\n"
         "  --workers=N       fork N crash-isolated worker processes "
         "behind a\n                    supervising router on the "
         "public socket\n"
         "  --restart-budget=K    restarts per window before a worker "
         "is marked\n                        dead (default 5)\n"
         "  --restart-window-ms=MS  restart-budget window (default "
         "30000)\n"
         "  --backoff-ms=MS   first restart delay; doubles per crash "
         "(default 200)\n"
         "  --heartbeat-ms=MS health-probe interval per worker "
         "(default 500)\n"
         "  --forward-timeout=MS  per-attempt forward budget "
         "(default 2000)\n"
         "  --breaker-threshold=K consecutive failures that open a "
         "shard's\n                        circuit breaker (default 3)\n"
         "client mode (any of these selects it):\n"
         "  --send=<file.vl>  submit the file and print the response "
         "payload\n"
         "  --method=M        predict (default) or analyze\n"
         "  --predictor=NAME  vrp | ball-larus | 90-50 | random\n"
         "  --ranges          append the value-range dump (predict)\n"
         "  --budget=N        propagation step limit for this request\n"
         "  --deadline=MS     wall-clock deadline for this request\n"
         "  --ping            round-trip health check\n"
         "  --stats           print server statistics JSON\n"
         "  --shutdown        ask the server to drain and exit\n"
         "exit codes: 0 success, 1 error/shed response, 2 usage error, "
         "3 internal\n            error, 5 fleet failed (all workers "
         "dead), 6 startup/connect\n            failure\n";
}

bool parseUnsigned(const std::string &V, uint64_t &Out) {
  if (V.empty() || V.find_first_not_of("0123456789") != std::string::npos)
    return false;
  try {
    Out = std::stoull(V);
  } catch (...) {
    return false;
  }
  return true;
}

int runServer(const ServerConfig &Config) {
  Status Why;
  std::unique_ptr<Server> S = Server::create(Config, &Why);
  if (!S) {
    std::cerr << "error: " << Why.error().str() << "\n";
    return ExitStartup;
  }
  // SIGTERM/SIGINT request a graceful drain: finish admitted work,
  // answer waiting clients, remove the socket, exit 0.
  stopsignal::installHandlers();
  std::cerr << "predictord: serving on " << S->socketPath() << "\n";
  Status Rc = S->serve();
  if (!Rc.ok()) {
    std::cerr << "error: " << Rc.error().str() << "\n";
    return ExitInternal;
  }
  std::cerr << "predictord: drained\n";
  return ExitSuccess;
}

int runFleet(const FleetConfig &Config) {
  Status Why;
  std::unique_ptr<Supervisor> Sup = Supervisor::create(Config, &Why);
  if (!Sup) {
    std::cerr << "error: " << Why.error().str() << "\n";
    return ExitStartup;
  }
  stopsignal::installHandlers();
  std::cerr << "predictord: fleet of " << Config.Workers
            << " workers serving on " << Config.PublicSocket << "\n";
  Status Rc = Sup->run();
  if (!Rc.ok()) {
    std::cerr << "error: " << Rc.error().str() << "\n";
    return ExitFleetFailed;
  }
  std::cerr << "predictord: fleet drained\n";
  return ExitSuccess;
}

int runClient(const std::string &SocketPath, const Request &Req) {
  Status Why;
  std::unique_ptr<Client> C = Client::connect(SocketPath, &Why);
  if (!C) {
    std::cerr << "error: " << Why.error().str() << "\n";
    return ExitStartup;
  }
  StatusOr<Response> R = C->call(Req);
  if (!R.ok()) {
    std::cerr << "error: " << R.error().str() << "\n";
    return ExitRequestFailed;
  }
  const Response &Resp = R.value();
  switch (Resp.Status) {
  case RespStatus::Ok:
    std::cout << Resp.Payload;
    // Reports end in a newline already; bare payloads (pong, stats
    // JSON) get one so shell pipelines see a complete line.
    if (!Resp.Payload.empty() && Resp.Payload.back() != '\n')
      std::cout << "\n";
    return ExitSuccess;
  case RespStatus::Shed:
    std::cerr << "shed: " << Resp.Message << "\n";
    return ExitRequestFailed;
  case RespStatus::Error:
    std::cerr << "error: " << Resp.Category << " at " << Resp.Site << ": "
              << Resp.Message << "\n";
    return ExitRequestFailed;
  }
  return ExitInternal;
}

int runTool(int argc, char **argv) {
  ServerConfig Config;
  FleetConfig Fleet;
  unsigned FleetWorkers = 0;
  Request Req;
  Req.Method = "predict";
  std::string SendFile;
  bool ClientMode = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto needUnsigned = [&](size_t Prefix, uint64_t &Out) {
      if (parseUnsigned(Arg.substr(Prefix), Out))
        return true;
      std::cerr << "invalid value: " << Arg << "\n";
      return false;
    };
    if (Arg.rfind("--socket=", 0) == 0)
      Config.SocketPath = Arg.substr(9);
    else if (Arg.rfind("--threads=", 0) == 0) {
      uint64_t V;
      if (!needUnsigned(10, V) || V == 0 || V > ThreadPool::MaxThreads)
        return ExitUsage;
      Config.Workers = static_cast<unsigned>(V);
    } else if (Arg.rfind("--cache=", 0) == 0)
      Config.Service.CachePath = Arg.substr(8);
    else if (Arg.rfind("--max-queue=", 0) == 0) {
      uint64_t V;
      if (!needUnsigned(12, V) || V == 0)
        return ExitUsage;
      Config.Admission.MaxQueue = static_cast<size_t>(V);
    } else if (Arg.rfind("--degrade-depth=", 0) == 0) {
      uint64_t V;
      if (!needUnsigned(16, V))
        return ExitUsage;
      Config.Admission.DegradeDepth = static_cast<size_t>(V);
    } else if (Arg.rfind("--max-conns=", 0) == 0) {
      uint64_t V;
      if (!needUnsigned(12, V) || V == 0)
        return ExitUsage;
      Config.MaxConnections = static_cast<unsigned>(V);
    } else if (Arg.rfind("--deadline=", 0) == 0) {
      uint64_t V;
      if (!needUnsigned(11, V))
        return ExitUsage;
      Config.Service.DefaultDeadlineMs = V;
      Req.DeadlineMs = V;
    } else if (Arg == "--no-memo")
      Config.Service.ResponseMemo = false;
    else if (Arg.rfind("--workers=", 0) == 0) {
      uint64_t V;
      if (!needUnsigned(10, V) || V == 0 || V > 64)
        return ExitUsage;
      FleetWorkers = static_cast<unsigned>(V);
    } else if (Arg.rfind("--restart-budget=", 0) == 0) {
      uint64_t V;
      if (!needUnsigned(17, V) || V == 0)
        return ExitUsage;
      Fleet.RestartBudget = static_cast<unsigned>(V);
    } else if (Arg.rfind("--restart-window-ms=", 0) == 0) {
      if (!needUnsigned(20, Fleet.RestartWindowMs))
        return ExitUsage;
    } else if (Arg.rfind("--backoff-ms=", 0) == 0) {
      if (!needUnsigned(13, Fleet.BackoffBaseMs))
        return ExitUsage;
    } else if (Arg.rfind("--heartbeat-ms=", 0) == 0) {
      uint64_t V;
      if (!needUnsigned(15, V) || V == 0)
        return ExitUsage;
      Fleet.HeartbeatIntervalMs = V;
    } else if (Arg.rfind("--forward-timeout=", 0) == 0) {
      uint64_t V;
      if (!needUnsigned(18, V) || V == 0)
        return ExitUsage;
      Fleet.ForwardTimeoutMs = V;
    } else if (Arg.rfind("--breaker-threshold=", 0) == 0) {
      uint64_t V;
      if (!needUnsigned(20, V) || V == 0)
        return ExitUsage;
      Fleet.BreakerThreshold = static_cast<unsigned>(V);
    } else if (Arg.rfind("--send=", 0) == 0) {
      SendFile = Arg.substr(7);
      ClientMode = true;
      if (SendFile.empty()) {
        std::cerr << "invalid --send value: expected a file path\n";
        return ExitUsage;
      }
    } else if (Arg.rfind("--method=", 0) == 0) {
      Req.Method = Arg.substr(9);
      if (Req.Method != "predict" && Req.Method != "analyze") {
        std::cerr << "invalid --method value: " << Arg
                  << " (expected predict or analyze)\n";
        return ExitUsage;
      }
    } else if (Arg.rfind("--predictor=", 0) == 0)
      Req.Predictor = Arg.substr(12);
    else if (Arg == "--ranges")
      Req.DumpRanges = true;
    else if (Arg.rfind("--budget=", 0) == 0) {
      if (!needUnsigned(9, Req.StepLimit))
        return ExitUsage;
    } else if (Arg == "--ping") {
      Req.Method = "ping";
      ClientMode = true;
    } else if (Arg == "--stats") {
      Req.Method = "stats";
      ClientMode = true;
    } else if (Arg == "--shutdown") {
      Req.Method = "shutdown";
      ClientMode = true;
    } else if (Arg == "--help") {
      printUsage();
      return ExitSuccess;
    } else {
      std::cerr << "unknown option: " << Arg << "\n";
      printUsage();
      return ExitUsage;
    }
  }

  if (Config.SocketPath.empty()) {
    std::cerr << "--socket=<path> is required\n";
    printUsage();
    return ExitUsage;
  }
  if (!ClientMode) {
    if (FleetWorkers == 0)
      return runServer(Config);
    // Fleet mode: the server knobs apply per worker; each worker is this
    // same binary in single-process server mode.
    Fleet.PublicSocket = Config.SocketPath;
    Fleet.Workers = FleetWorkers;
    Fleet.WorkerBinary = process::selfExePath();
    if (Fleet.WorkerBinary.empty())
      Fleet.WorkerBinary = argv[0];
    Fleet.CachePath = Config.Service.CachePath;
    Fleet.WorkerThreads = Config.Workers;
    Fleet.MaxQueue = static_cast<unsigned>(Config.Admission.MaxQueue);
    Fleet.DegradeDepth =
        static_cast<unsigned>(Config.Admission.DegradeDepth);
    Fleet.DefaultDeadlineMs = Config.Service.DefaultDeadlineMs;
    Fleet.ResponseMemo = Config.Service.ResponseMemo;
    Fleet.MaxConnections = Config.MaxConnections;
    return runFleet(Fleet);
  }

  if (!SendFile.empty()) {
    std::ifstream In(SendFile);
    if (!In) {
      std::cerr << "error: cannot open " << SendFile << "\n";
      return ExitUsage;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Req.Source = Buf.str();
  } else if (Req.Method == "predict" || Req.Method == "analyze") {
    std::cerr << "--method=" << Req.Method << " needs --send=<file.vl>\n";
    return ExitUsage;
  }
  Req.Id = 1;
  return runClient(Config.SocketPath, Req);
}

} // namespace

int main(int argc, char **argv) {
  try {
    return runTool(argc, argv);
  } catch (const std::exception &E) {
    std::cerr << "internal error: " << E.what() << "\n";
    return ExitInternal;
  } catch (...) {
    std::cerr << "internal error: unknown exception\n";
    return ExitInternal;
  }
}
