//===- examples/predictor_tool.cpp - Branch prediction CLI -----------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
// A command-line branch predictor over VL source:
//
//   predictor_tool [--predictor=vrp|ball-larus|90-50|random]
//                  [--threads=N] [--dump-ir] [--ranges] [file.vl]
//
// Without a file argument it analyzes a built-in demo program. For every
// conditional branch it prints the predicted taken-probability and, for
// VRP, whether the prediction came from ranges or the heuristic fallback.
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisCache.h"
#include "driver/Pipeline.h"
#include "ir/IRPrinter.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace vrp;

namespace {

const char *DemoSource = R"(
fn classify(score) {
  if (score < 0) {
    return 0 - 1;
  }
  if (score > 100) {
    return 101;
  }
  return score;
}

fn main() {
  var total = 0;
  for (var i = 0; i < 50; i = i + 1) {
    var s = classify(i * 3 - 10);
    if (s >= 0 && s <= 100) {
      total = total + s;
    }
  }
  print(total);
  return total;
}
)";

void printUsage() {
  std::cerr << "usage: predictor_tool [--predictor=vrp|ball-larus|90-50|"
               "random] [--threads=N] [--dump-ir] [--ranges] [file.vl]\n"
               "  --threads=N   fan functions out over N workers during "
               "propagation\n                (0 = all hardware threads; "
               "results are identical at any N)\n";
}

} // namespace

int main(int argc, char **argv) {
  std::string PredictorName = "vrp";
  bool DumpIR = false, DumpRanges = false;
  unsigned Threads = 1;
  std::string FileName;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--predictor=", 0) == 0)
      PredictorName = Arg.substr(12);
    else if (Arg.rfind("--threads=", 0) == 0) {
      // Digits only: stoul would accept "-2" (wrapping to a huge unsigned)
      // and "12abc" (silently dropping the suffix).
      std::string V = Arg.substr(10);
      bool Valid =
          !V.empty() && V.find_first_not_of("0123456789") == std::string::npos;
      unsigned long Parsed = 0;
      if (Valid) {
        try {
          Parsed = std::stoul(V);
        } catch (...) {
          Valid = false;
        }
      }
      if (!Valid || Parsed > ThreadPool::MaxThreads) {
        std::cerr << "invalid --threads value: " << Arg << " (expected 0-"
                  << ThreadPool::MaxThreads << ")\n";
        return 1;
      }
      Threads = static_cast<unsigned>(Parsed);
    } else if (Arg == "--dump-ir")
      DumpIR = true;
    else if (Arg == "--ranges")
      DumpRanges = true;
    else if (Arg == "--help") {
      printUsage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "unknown option: " << Arg << "\n";
      printUsage();
      return 1;
    } else {
      FileName = Arg;
    }
  }

  std::string Source;
  if (FileName.empty()) {
    Source = DemoSource;
    std::cout << "(no input file; analyzing the built-in demo)\n\n";
  } else {
    std::ifstream In(FileName);
    if (!In) {
      std::cerr << "error: cannot open " << FileName << "\n";
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }

  DiagnosticEngine Diags;
  VRPOptions Opts;
  Opts.Interprocedural = true;
  Opts.Threads = Threads;
  auto Compiled = compileToSSA(Source, Diags, Opts);
  if (!Compiled) {
    Diags.printAll(std::cerr);
    return 1;
  }
  Module &M = *Compiled->IR;

  if (DumpIR)
    printModule(M, std::cout);

  AnalysisCache Cache;
  ModuleVRPResult VRP = runModuleVRP(M, Opts, &Cache);

  for (const auto &F : M.functions()) {
    const FunctionVRPResult *FR = VRP.forFunction(F.get());
    bool Any = false;
    for (const auto &B : F->blocks())
      if (isa<CondBrInst>(B->terminator()))
        Any = true;
    if (!Any)
      continue;

    std::cout << "fn @" << F->name() << ":\n";
    TextTable Table({"line", "branch", "P(taken)", "source"});

    FinalPredictionMap Final = finalizePredictions(*F, *FR, &Cache);
    BranchProbMap Alt;
    if (PredictorName == "ball-larus")
      Alt = predictBallLarus(*F);
    else if (PredictorName == "90-50")
      Alt = predictNinetyFifty(*F);
    else if (PredictorName == "random")
      Alt = predictRandom(*F, 1234);
    else if (PredictorName != "vrp") {
      std::cerr << "unknown predictor: " << PredictorName << "\n";
      return 1;
    }

    for (const auto &B : F->blocks()) {
      const auto *CBr = dyn_cast_or_null<CondBrInst>(B->terminator());
      if (!CBr)
        continue;
      double Prob;
      std::string SourceTag;
      if (PredictorName == "vrp") {
        const FinalPrediction &P = Final.at(CBr);
        Prob = P.ProbTrue;
        SourceTag = P.Source == PredictionSource::Range ? "ranges"
                    : P.Source == PredictionSource::Heuristic
                        ? "heuristic fallback"
                        : "unreachable";
      } else {
        Prob = Alt.at(CBr);
        SourceTag = PredictorName;
      }
      std::string Desc =
          instructionToString(*cast<Instruction>(CBr->cond()));
      Table.addRow({CBr->loc().str(), Desc, formatPercent(Prob),
                    SourceTag});
    }
    Table.print(std::cout);

    if (DumpRanges && PredictorName == "vrp") {
      std::cout << "  value ranges:\n";
      for (const auto &B : F->blocks())
        for (const auto &I : B->instructions()) {
          if (I->type() == IRType::Void)
            continue;
          ValueRange VR = FR->rangeOf(I.get());
          if (VR.isTop() || VR.isBottom())
            continue;
          std::cout << "    " << I->displayName() << " : " << VR.str()
                    << "\n";
        }
    }
    std::cout << "\n";
  }
  return 0;
}
