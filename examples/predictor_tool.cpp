//===- examples/predictor_tool.cpp - Branch prediction CLI -----------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
// A command-line branch predictor over VL source:
//
//   predictor_tool [--predictor=vrp|ball-larus|90-50|random]
//                  [--threads=N] [--budget=N] [--deadline=MS]
//                  [--dump-ir] [--ranges] [--stats[=json]]
//                  [--trace=<function>] [--audit[=json]]
//                  [--suite] [--journal=<path>] [--resume]
//                  [--cache=<path>] [--cache-verify]
//                  [--fp-ranges=on|off] [--alias=on|off]
//                  [--module-scale=N [--module-seed=S] [--module-layers=L]
//                   [--mutate=K] [--incremental]] [file.vl]
//
// Without a file argument it analyzes a built-in demo program. For every
// conditional branch it prints the predicted taken-probability and, for
// VRP, whether the prediction came from ranges or the heuristic fallback.
// --stats prints pipeline telemetry (counters and timers) after the run;
// --stats=json emits the machine-readable schema of docs/TELEMETRY.md.
// --trace=<function> records that function's lattice transitions during
// propagation. --suite evaluates the built-in benchmark suite instead of
// a single file (the workload behind the stats-determinism check).
// --audit arms the soundness sentinel (vrp/Audit.h): executions are
// replayed with every observed branch value checked against its
// VRP-computed range; violating functions are quarantined to the
// heuristic fallback and reported. --journal checkpoints each completed
// suite benchmark to an append-only JSONL file; --resume skips the
// benchmarks already journaled there (see docs/ROBUSTNESS.md).
// --cache=<path> attaches the persistent result cache (docs/CACHE.md):
// warm runs restore per-function analyses bitwise-identically from the
// file and skip propagation. --cache-verify re-analyzes on every hit and
// compares against the stored bytes, exiting 5 on any divergence.
// --fp-ranges=off and --alias=off are ablation toggles (both default
// on): the first reverts floating-point-tested branches to the
// heuristic fallback, the second makes every load ⊥ (docs/DOMAINS.md).
// --module-scale=N generates a synthetic N-function module (deep call
// DAG with recursive SCCs, see benchsuite/Synthetic.h) and analyzes it
// whole-module, printing a JSON summary with a bitwise result
// fingerprint. --mutate=K perturbs K function bodies; adding
// --incremental analyzes the unmutated module first and then re-analyzes
// only the invalidated cone (docs/SCALING.md).
//
// Exit codes: 0 success, 1 input rejected with diagnostics, 2 usage
// error, 3 internal error, 4 soundness violations detected by --audit,
// 5 --cache-verify divergence, 7 interrupted by SIGTERM/SIGINT after a
// graceful flush (journal and cache commits are complete up to the
// interruption point; rerun with --resume to continue).
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisCache.h"
#include "analysis/PersistentCache.h"
#include "benchsuite/Programs.h"
#include "benchsuite/Synthetic.h"
#include "driver/Pipeline.h"
#include "eval/Reporting.h"
#include "ir/IRPrinter.h"
#include "profile/Interpreter.h"
#include "support/Format.h"
#include "support/ResultStore.h"
#include "support/Signal.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "vrp/Audit.h"
#include "vrp/Trace.h"

#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace vrp;

namespace {

// Exit codes, documented in README.md — scripts depend on these.
enum ExitCode : int {
  ExitSuccess = 0,
  ExitDiagnostics = 1,
  ExitUsage = 2,
  ExitInternal = 3,
  ExitAudit = 4,
  ExitCacheDiverged = 5,
  ExitInterrupted = 7,
};

const char *DemoSource = R"(
fn classify(score) {
  if (score < 0) {
    return 0 - 1;
  }
  if (score > 100) {
    return 101;
  }
  return score;
}

fn main() {
  var total = 0;
  for (var i = 0; i < 50; i = i + 1) {
    var s = classify(i * 3 - 10);
    if (s >= 0 && s <= 100) {
      total = total + s;
    }
  }
  print(total);
  return total;
}
)";

void printUsage() {
  std::cerr << "usage: predictor_tool [--predictor=vrp|ball-larus|90-50|"
               "random] [--threads=N] [--budget=N] [--deadline=MS] "
               "[--dump-ir] [--ranges] [--stats[=json]] "
               "[--trace=<function>] [--audit[=json]] [--suite] "
               "[--journal=<path>] [--resume] [--cache=<path>] "
               "[--cache-verify] [--fp-ranges=on|off] [--alias=on|off]\n"
               "                      [--module-scale=N [--module-seed=S] "
               "[--module-layers=L]\n                       [--mutate=K] "
               "[--incremental]] [file.vl]\n"
               "  --threads=N   fan functions out over N workers during "
               "propagation\n                (0 = all hardware threads; "
               "results are identical at any N)\n"
               "  --budget=N    cap propagation at N worklist steps per "
               "function;\n                exhausted functions degrade to "
               "the heuristic fallback\n"
               "  --deadline=MS wall-clock deadline for propagation; "
               "functions not\n                analyzed in time degrade "
               "to the heuristic fallback\n"
               "  --stats[=json] print pipeline telemetry (per-pass "
               "counters and timers)\n                after the run; json "
               "uses the docs/TELEMETRY.md schema with\n                "
               "wall-clock under a trailing \"timings\" key\n"
               "  --trace=<fn>  record <fn>'s lattice transitions "
               "(old range -> new\n                range, triggering "
               "edge) during propagation\n"
               "  --audit[=json] replay execution under the soundness "
               "sentinel: every\n                observed branch value is "
               "checked against its computed\n                range, and "
               "violating functions are quarantined to the\n"
               "                heuristic fallback (exit 4 on any "
               "violation)\n"
               "  --suite       evaluate the built-in benchmark suite "
               "instead of one\n                file (combine with "
               "--stats=json for the determinism check)\n"
               "  --journal=<p> checkpoint each completed suite benchmark "
               "to JSONL file\n                <p>, flushed as it "
               "finishes (suite mode only)\n"
               "  --resume      reuse results already in the --journal "
               "file instead of\n                re-evaluating those "
               "benchmarks\n"
               "  --cache=<p>   persistent result cache: warm runs "
               "restore per-function\n                analyses "
               "bitwise-identically from file <p> and skip\n"
               "                propagation (see docs/CACHE.md)\n"
               "  --cache-verify with --cache: re-analyze on every hit, "
               "compare against\n                the stored bytes, exit 5 "
               "on any divergence\n"
               "  --fp-ranges=on|off toggle the floating-point interval "
               "lattice (default\n                on; off reverts FP-tested "
               "branches to the heuristic fallback)\n"
               "  --alias=on|off toggle probabilistic load aliasing "
               "(default on; off\n                makes every load bottom, "
               "the pre-alias behavior)\n"
               "  --module-scale=N analyze a generated N-function module "
               "and print a JSON\n                summary (waves, sweeps, "
               "re-analyzed cone, result fingerprint)\n"
               "  --module-seed=S  generator seed (default 1)\n"
               "  --module-layers=L bound the generated call DAG's depth "
               "to L layers\n                (0 = unconstrained chain "
               "depth)\n"
               "  --mutate=K    perturb K generated function bodies "
               "before analyzing\n"
               "  --incremental with --module-scale: analyze the "
               "unmutated module cold,\n                then re-analyze "
               "only the cone the mutation invalidated\n"
               "exit codes: 0 success, 1 diagnostics, 2 usage error, "
               "3 internal error,\n            4 soundness violations "
               "detected by --audit, 5 cache divergence,\n            "
               "7 interrupted after a graceful flush (rerun with "
               "--resume)\n";
}

/// Parses a digits-only unsigned option value. stoul alone would accept
/// "-2" (wrapping) and "12abc" (dropping the suffix).
bool parseUnsigned(const std::string &V, uint64_t &Out) {
  if (V.empty() || V.find_first_not_of("0123456789") != std::string::npos)
    return false;
  try {
    Out = std::stoull(V);
  } catch (...) {
    return false;
  }
  return true;
}

int runTool(int argc, char **argv) {
  std::string PredictorName = "vrp";
  bool DumpIR = false, DumpRanges = false;
  bool Stats = false, StatsJson = false, Suite = false;
  bool Audit = false, AuditJson = false, Resume = false;
  bool CacheVerify = false;
  std::string JournalPath, CachePath;
  std::string TraceFn;
  unsigned Threads = 1;
  uint64_t StepBudget = 0, DeadlineMs = 0;
  uint64_t ModuleScale = 0, ModuleSeed = 1, ModuleLayers = 0, Mutate = 0;
  bool Incremental = false;
  bool FPRanges = true, AliasRanges = true;
  std::string FileName;

  // "--flag=on|off" ablation toggles (both default on).
  auto parseOnOff = [](const std::string &Arg, size_t Prefix, bool &Out) {
    std::string V = Arg.substr(Prefix);
    if (V != "on" && V != "off")
      return false;
    Out = V == "on";
    return true;
  };

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--predictor=", 0) == 0)
      PredictorName = Arg.substr(12);
    else if (Arg == "--stats")
      Stats = true;
    else if (Arg.rfind("--stats=", 0) == 0) {
      if (Arg.substr(8) != "json") {
        std::cerr << "invalid --stats value: " << Arg
                  << " (expected --stats or --stats=json)\n";
        return ExitUsage;
      }
      Stats = StatsJson = true;
    } else if (Arg.rfind("--trace=", 0) == 0) {
      TraceFn = Arg.substr(8);
      if (TraceFn.empty()) {
        std::cerr << "invalid --trace value: expected a function name\n";
        return ExitUsage;
      }
    } else if (Arg == "--suite")
      Suite = true;
    else if (Arg == "--audit")
      Audit = true;
    else if (Arg.rfind("--audit=", 0) == 0) {
      if (Arg.substr(8) != "json") {
        std::cerr << "invalid --audit value: " << Arg
                  << " (expected --audit or --audit=json)\n";
        return ExitUsage;
      }
      Audit = AuditJson = true;
    } else if (Arg.rfind("--journal=", 0) == 0) {
      JournalPath = Arg.substr(10);
      if (JournalPath.empty()) {
        std::cerr << "invalid --journal value: expected a file path\n";
        return ExitUsage;
      }
    } else if (Arg == "--resume")
      Resume = true;
    else if (Arg.rfind("--cache=", 0) == 0) {
      CachePath = Arg.substr(8);
      if (CachePath.empty()) {
        std::cerr << "invalid --cache value: expected a file path\n";
        return ExitUsage;
      }
    } else if (Arg == "--cache-verify")
      CacheVerify = true;
    else if (Arg.rfind("--threads=", 0) == 0) {
      uint64_t Parsed = 0;
      if (!parseUnsigned(Arg.substr(10), Parsed) ||
          Parsed > ThreadPool::MaxThreads) {
        std::cerr << "invalid --threads value: " << Arg << " (expected 0-"
                  << ThreadPool::MaxThreads << ")\n";
        return ExitUsage;
      }
      Threads = static_cast<unsigned>(Parsed);
    } else if (Arg.rfind("--budget=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(9), StepBudget)) {
        std::cerr << "invalid --budget value: " << Arg << "\n";
        return ExitUsage;
      }
    } else if (Arg.rfind("--deadline=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(11), DeadlineMs)) {
        std::cerr << "invalid --deadline value: " << Arg << "\n";
        return ExitUsage;
      }
    } else if (Arg.rfind("--module-scale=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(15), ModuleScale) || ModuleScale == 0) {
        std::cerr << "invalid --module-scale value: " << Arg << "\n";
        return ExitUsage;
      }
    } else if (Arg.rfind("--module-seed=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(14), ModuleSeed)) {
        std::cerr << "invalid --module-seed value: " << Arg << "\n";
        return ExitUsage;
      }
    } else if (Arg.rfind("--module-layers=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(16), ModuleLayers)) {
        std::cerr << "invalid --module-layers value: " << Arg << "\n";
        return ExitUsage;
      }
    } else if (Arg.rfind("--mutate=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(9), Mutate)) {
        std::cerr << "invalid --mutate value: " << Arg << "\n";
        return ExitUsage;
      }
    } else if (Arg.rfind("--fp-ranges=", 0) == 0) {
      if (!parseOnOff(Arg, 12, FPRanges)) {
        std::cerr << "invalid --fp-ranges value: " << Arg
                  << " (expected on or off)\n";
        return ExitUsage;
      }
    } else if (Arg.rfind("--alias=", 0) == 0) {
      if (!parseOnOff(Arg, 8, AliasRanges)) {
        std::cerr << "invalid --alias value: " << Arg
                  << " (expected on or off)\n";
        return ExitUsage;
      }
    } else if (Arg == "--incremental")
      Incremental = true;
    else if (Arg == "--dump-ir")
      DumpIR = true;
    else if (Arg == "--ranges")
      DumpRanges = true;
    else if (Arg == "--help") {
      printUsage();
      return ExitSuccess;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "unknown option: " << Arg << "\n";
      printUsage();
      return ExitUsage;
    } else {
      FileName = Arg;
    }
  }

  if (PredictorName != "vrp" && PredictorName != "ball-larus" &&
      PredictorName != "90-50" && PredictorName != "random") {
    std::cerr << "unknown predictor: " << PredictorName << "\n";
    printUsage();
    return ExitUsage;
  }

  // Telemetry is opt-in: arm it only when something will be reported.
  if (Stats || !TraceFn.empty()) {
    telemetry::setEnabled(true);
    telemetry::reset();
  }

  if (!Suite && (!JournalPath.empty() || Resume)) {
    std::cerr << "--journal/--resume checkpoint suite runs; add --suite\n";
    return ExitUsage;
  }
  if (CacheVerify && CachePath.empty()) {
    std::cerr << "--cache-verify compares against a cache; add "
                 "--cache=<path>\n";
    return ExitUsage;
  }
  if (ModuleScale == 0 && (Incremental || Mutate != 0)) {
    std::cerr << "--incremental/--mutate act on a generated module; add "
                 "--module-scale=N\n";
    return ExitUsage;
  }

  if (ModuleScale != 0) {
    if (Suite || !FileName.empty()) {
      std::cerr << "--module-scale generates its own input; drop --suite "
                   "and the file argument\n";
      return ExitUsage;
    }
    SyntheticModuleConfig Base;
    Base.NumFunctions = static_cast<unsigned>(ModuleScale);
    Base.Seed = ModuleSeed;
    Base.Layers = static_cast<unsigned>(ModuleLayers);
    SyntheticModuleConfig Target = Base;
    Target.MutateCount = static_cast<unsigned>(Mutate);

    VRPOptions Opts;
    Opts.Interprocedural = true;
    Opts.Threads = Threads;
    Opts.Budget.PropagationStepLimit = StepBudget;
    Opts.Budget.DeadlineMs = DeadlineMs;
    Opts.EnableFPRanges = FPRanges;
    Opts.EnableAliasRanges = AliasRanges;

    DiagnosticEngine Diags;
    auto compileCfg = [&](const SyntheticModuleConfig &Cfg) {
      return compileProgram(makeSyntheticModule(Cfg), Diags, Opts);
    };
    auto TargetProg = compileCfg(Target);
    if (!TargetProg.ok()) {
      std::cerr << "error: " << TargetProg.error().str() << "\n";
      return ExitInternal;
    }
    const Module &TargetIR = *TargetProg.value()->IR;

    ModuleVRPResult R;
    const char *Mode = "cold";
    std::unique_ptr<CompiledProgram> PrevProg;
    if (Incremental) {
      // Cold-analyze the unmutated generation, then re-analyze only the
      // cone the mutation invalidated.
      auto PrevOrErr = compileCfg(Base);
      if (!PrevOrErr.ok()) {
        std::cerr << "error: " << PrevOrErr.error().str() << "\n";
        return ExitInternal;
      }
      PrevProg = std::move(PrevOrErr.value());
      ModuleVRPResult PrevR = runModuleVRP(*PrevProg->IR, Opts);
      R = runModuleVRPIncremental(TargetIR, Opts, *PrevProg->IR, PrevR);
      Mode = "incremental";
    } else {
      R = runModuleVRP(TargetIR, Opts);
    }

    // Bitwise fingerprint: FNV-1a over every function's exact result
    // serialization, in module order. Identical analyses => identical
    // fingerprints, at any thread count and in either mode.
    uint64_t H = 0xcbf29ce484222325ULL;
    for (const auto &F : TargetIR.functions())
      if (const FunctionVRPResult *FR = R.forFunction(F.get()))
        H = store::fnv1a64(PersistentCache::serialize(*FR), H);
    char Hex[17];
    std::snprintf(Hex, sizeof(Hex), "%016llx",
                  static_cast<unsigned long long>(H));

    std::cout << "{\n  \"module_scale\": {\n"
              << "    \"functions\": " << TargetIR.functions().size()
              << ",\n    \"mode\": \"" << Mode << "\""
              << ",\n    \"mutated\": " << Mutate
              << ",\n    \"waves\": " << R.Waves
              << ",\n    \"sweeps\": " << R.Rounds
              << ",\n    \"functions_reanalyzed\": " << R.FunctionsReanalyzed
              << ",\n    \"functions_degraded\": " << R.FunctionsDegraded
              << ",\n    \"fingerprint\": \"" << Hex << "\"\n  }\n}\n";
    if (Stats) {
      if (StatsJson)
        std::cout << telemetry::toJson(telemetry::snapshot());
      else
        std::cout << "telemetry counters:\n"
                  << telemetry::toText(telemetry::snapshot());
    }
    return ExitSuccess;
  }

  if (Suite) {
    if (!FileName.empty()) {
      std::cerr << "--suite evaluates the built-in benchmarks; drop the "
                   "file argument\n";
      return ExitUsage;
    }
    // A long suite run interrupted by SIGTERM/SIGINT flushes what it has
    // — the journal and any pending cache commits — instead of dying
    // mid-append; already-running benchmarks finish, not-yet-started
    // ones are skipped and reported as interrupted (exit 7).
    stopsignal::installHandlers();
    VRPOptions Opts;
    Opts.Interprocedural = true;
    Opts.Threads = Threads;
    Opts.Budget.PropagationStepLimit = StepBudget;
    Opts.Budget.DeadlineMs = DeadlineMs;
    Opts.EnableFPRanges = FPRanges;
    Opts.EnableAliasRanges = AliasRanges;
    Opts.Audit = Audit;
    SuiteRunConfig Config;
    Config.JournalPath = JournalPath;
    Config.Resume = Resume;
    Config.SupervisorRetry = true;
    Config.CachePath = CachePath;
    Config.CacheVerify = CacheVerify;
    SuiteEvaluation SuiteEval = evaluateSuite(allPrograms(), Opts, Config);
    if (StatsJson) {
      writeSuiteStatsJson(SuiteEval, telemetry::snapshot(), std::cout);
    } else {
      printSuiteReport(SuiteEval, "benchmark suite", std::cout);
      if (Stats)
        std::cout << "telemetry counters:\n"
                  << telemetry::toText(telemetry::snapshot());
    }
    if (SuiteEval.PCacheDivergences > 0) {
      std::cerr << "cache-verify: " << SuiteEval.PCacheDivergences
                << " stored result(s) diverged from re-analysis\n";
      return ExitCacheDiverged;
    }
    if (Audit && SuiteEval.SoundnessViolations > 0)
      return ExitAudit;
    if (stopsignal::stopRequested()) {
      std::cerr << "interrupted: suite stopped early; completed "
                   "benchmarks are flushed"
                << (JournalPath.empty() ? "" : "; rerun with --resume")
                << "\n";
      return ExitInterrupted;
    }
    return SuiteEval.Failures.empty() ? ExitSuccess : ExitDiagnostics;
  }

  std::string Source;
  if (FileName.empty()) {
    Source = DemoSource;
    std::cout << "(no input file; analyzing the built-in demo)\n\n";
  } else {
    std::ifstream In(FileName);
    if (!In) {
      std::cerr << "error: cannot open " << FileName << "\n";
      return ExitUsage;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }

  DiagnosticEngine Diags;
  VRPOptions Opts;
  Opts.Interprocedural = true;
  Opts.Threads = Threads;
  Opts.Budget.PropagationStepLimit = StepBudget;
  Opts.Budget.DeadlineMs = DeadlineMs;
  Opts.EnableFPRanges = FPRanges;
  Opts.EnableAliasRanges = AliasRanges;
  trace::TraceSink Sink(TraceFn);
  if (!TraceFn.empty())
    Opts.Trace = &Sink;
  auto Compiled = compileProgram(Source, Diags, Opts);
  if (!Compiled.ok()) {
    Diags.printAll(std::cerr);
    std::cerr << "error: " << Compiled.error().str() << "\n";
    return ExitDiagnostics;
  }
  Module &M = *Compiled.value()->IR;

  if (DumpIR)
    printModule(M, std::cout);

  // Single-file cache attachment: lookups hit the snapshot on disk, and
  // this run's fresh results commit below once analysis finished cleanly.
  std::unique_ptr<PersistentCache> PCache;
  if (!CachePath.empty()) {
    Status CacheWhy;
    PCache = PersistentCache::open(CachePath, CacheVerify, &CacheWhy);
    if (!PCache) {
      // --cache-verify exists to check the store's contents; silently
      // verifying nothing would report success vacuously, so a cache
      // that cannot open (e.g. locked by a resident predictord) is an
      // error there and a degradation everywhere else.
      if (CacheVerify) {
        std::cerr << "error: " << CacheWhy.error().str() << "\n";
        return ExitInternal;
      }
      std::cerr << "warning: " << CacheWhy.error().str()
                << "; running uncached\n";
    }
  }

  AnalysisCache Cache;
  ModuleVRPResult VRP = runModuleVRP(M, Opts, &Cache, PCache.get());
  if (PCache)
    PCache->commitScope();

  // The shared renderer keeps this output byte-identical to what a
  // resident predictord serves for the same source (docs/SERVING.md).
  renderPredictionReport(M, VRP, &Cache, {PredictorName, DumpRanges},
                         std::cout);

  bool AuditViolated = false;
  if (Audit) {
    // Single-file sentinel run: execute the program (no inputs) with the
    // auditor attached and print its verdict. The suite path audits
    // against the reference inputs instead (eval/SuiteRunner.cpp).
    audit::RangeAuditor Auditor;
    for (const auto &F : M.functions())
      if (const FunctionVRPResult *FR = VRP.forFunction(F.get()))
        Auditor.addFunction(*F, *FR);
    Interpreter AuditInterp(M);
    ExecutionResult AuditRun =
        AuditInterp.run({}, nullptr, 200'000'000, &Auditor);
    audit::AuditReport Report = Auditor.takeReport();
    AuditViolated = Report.totalViolations() > 0;
    if (AuditJson) {
      std::cout << "{\n  \"audit\": {\n    \"checks\": "
                << Report.totalChecks()
                << ",\n    \"violations\": " << Report.totalViolations()
                << ",\n    \"functions\": [";
      bool First = true;
      for (const auto &FA : Report.Functions) {
        if (FA.Violations == 0)
          continue;
        std::cout << (First ? "" : ",") << "\n      {\"function\": \""
                  << FA.Function << "\", \"violations\": " << FA.Violations
                  << ", \"checked\": " << FA.Checked << "}";
        First = false;
      }
      std::cout << (First ? "]" : "\n    ]") << "\n  }\n}\n";
    } else {
      std::cout << Report.str();
      if (!AuditRun.Ok)
        std::cout << "audit note: execution stopped early (" << AuditRun.Error
                  << "); the verdict covers the branches that did run\n";
    }
  }

  if (!TraceFn.empty()) {
    if (Sink.traces().empty())
      std::cout << "trace: no function named '" << TraceFn
                << "' was analyzed\n";
    else
      Sink.print(std::cout);
  }
  if (Stats) {
    if (StatsJson)
      std::cout << telemetry::toJson(telemetry::snapshot());
    else
      std::cout << "telemetry counters:\n"
                << telemetry::toText(telemetry::snapshot());
  }
  if (PCache && PCache->divergences() > 0) {
    std::cerr << "cache-verify: " << PCache->divergences()
              << " stored result(s) diverged from re-analysis\n";
    return ExitCacheDiverged;
  }
  return AuditViolated ? ExitAudit : ExitSuccess;
}

} // namespace

int main(int argc, char **argv) {
  try {
    return runTool(argc, argv);
  } catch (const std::exception &E) {
    std::cerr << "internal error: " << E.what() << "\n";
    return ExitInternal;
  } catch (...) {
    std::cerr << "internal error: unknown exception\n";
    return ExitInternal;
  }
}
