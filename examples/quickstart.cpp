//===- examples/quickstart.cpp - Five-minute tour ---------------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
// The smallest end-to-end use of the library: compile a VL program to SSA,
// run value range propagation, and read off branch probabilities and value
// ranges.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "support/Format.h"

#include <iostream>

using namespace vrp;

int main() {
  // A program whose branching behavior is statically analyzable: the loop
  // runs 100 times; the inner test is true for 30 of 100 values.
  const char *Source = R"(
    fn main() {
      var hits = 0;
      for (var i = 0; i < 100; i = i + 1) {
        if (i % 10 < 3) {     // True for residues 0, 1 and 2.
          hits = hits + 1;
        }
      }
      print(hits);
      return hits;
    }
  )";

  // 1. Compile: parse -> sema -> irgen -> SSA -> assertion insertion.
  DiagnosticEngine Diags;
  std::unique_ptr<CompiledProgram> Compiled = compileToSSA(Source, Diags);
  if (!Compiled) {
    Diags.printAll(std::cerr);
    return 1;
  }

  // 2. Propagate weighted value ranges (the paper's algorithm).
  const Function *Main = Compiled->IR->findFunction("main");
  FunctionVRPResult Result = propagateRanges(*Main, VRPOptions());

  // 3. Combine with the heuristic fallback and inspect predictions.
  FinalPredictionMap Predictions = finalizePredictions(*Main, Result);

  std::cout << "branch predictions for main():\n";
  for (const auto &[Branch, Pred] : Predictions) {
    const auto *Cmp = cast<CmpInst>(Branch->cond());
    std::cout << "  " << Cmp->lhs()->displayName() << " "
              << cmpPredSpelling(Cmp->pred()) << " "
              << Cmp->rhs()->displayName() << "  ->  "
              << formatPercent(Pred.ProbTrue) << " taken  ("
              << (Pred.Source == PredictionSource::Range
                      ? "from value ranges"
                      : "heuristic fallback")
              << ")\n";
  }

  std::cout << "\nvalue range of each branch condition's left operand:\n";
  for (const auto &[Branch, Pred] : Predictions) {
    const auto *Cmp = cast<CmpInst>(Branch->cond());
    std::cout << "  " << Cmp->lhs()->displayName() << " : "
              << Result.rangeOf(Cmp->lhs()).str() << "\n";
  }
  std::cout << "\nExpected: the loop test predicts ~99% taken "
               "(100 of 101 evaluations) and the inner test 30%.\n";
  return 0;
}
