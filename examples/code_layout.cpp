//===- examples/code_layout.cpp - §6 code layout demo ----------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
// Demonstrates probability-guided block layout (paper §6 "Code Layout,
// Cache Optimization & Inlining"): straightens the likely path of a
// function with a rarely-taken error branch, then validates the expected
// improvement against exact interpreter edge counts.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "opt/BlockLayout.h"
#include "profile/Interpreter.h"
#include "support/Format.h"

#include <iostream>
#include <map>

using namespace vrp;

namespace {

const char *Source = R"(
var data[1024];

fn main() {
  var n = 1000;
  var errors = 0;
  var sum = 0;
  for (var i = 0; i < n; i = i + 1) {
    data[i] = (i * 37) % 101;
  }
  for (var i = 0; i < n; i = i + 1) {
    var v = data[i];
    if (v == 100) {          // Rare: 9 of 1000 elements.
      errors = errors + 1;   // Cold error path.
      v = 0;
    }
    sum = sum + v;
  }
  print(sum);
  print(errors);
  return errors;
}
)";

/// Counts actual taken (non-fall-through) transfers for a layout, using
/// exact interpreter edge counts.
double actualTakenTransfers(const Function &F, const BlockOrder &Order,
                            const EdgeProfile &Profile) {
  std::map<const BasicBlock *, const BasicBlock *> FallThrough;
  for (size_t I = 0; I + 1 < Order.size(); ++I)
    FallThrough[Order[I]] = Order[I + 1];

  double Taken = 0.0;
  for (const auto &B : F.blocks()) {
    const Instruction *T = B->terminator();
    auto countEdge = [&](const BasicBlock *To, double Executions) {
      auto It = FallThrough.find(B.get());
      if (It == FallThrough.end() || It->second != To)
        Taken += Executions;
    };
    if (const auto *Br = dyn_cast_or_null<BrInst>(T)) {
      // Executions of the block equal executions of its single out-edge;
      // approximate with the branch counts of the nearest profiled
      // branches is overkill here - unconditional edges execute once per
      // block execution, which we do not track, so count them only when
      // a conditional sibling gives us numbers. For this demo function
      // every interesting edge is conditional.
      (void)Br;
    } else if (const auto *CBr = dyn_cast_or_null<CondBrInst>(T)) {
      const BranchCounts *C = Profile.lookup(CBr);
      if (!C)
        continue;
      countEdge(CBr->trueBlock(), static_cast<double>(C->Taken));
      countEdge(CBr->falseBlock(),
                static_cast<double>(C->Total - C->Taken));
    }
  }
  return Taken;
}

} // namespace

int main() {
  std::cout << "==== Probability-guided code layout (paper §6) ====\n\n";
  std::cout << Source << "\n";

  DiagnosticEngine Diags;
  auto Compiled = compileToSSA(Source, Diags);
  if (!Compiled) {
    Diags.printAll(std::cerr);
    return 1;
  }
  const Function *Main = Compiled->IR->findFunction("main");
  FunctionVRPResult R = propagateRanges(*Main, VRPOptions());
  FinalPredictionMap Final = finalizePredictions(*Main, R);

  EdgeFractionFn Fraction = [&](const BasicBlock *From,
                                const BasicBlock *To) {
    const auto *CBr = dyn_cast_or_null<CondBrInst>(From->terminator());
    if (!CBr)
      return 1.0;
    auto It = Final.find(CBr);
    double P = It == Final.end() ? 0.5 : It->second.ProbTrue;
    return CBr->trueBlock() == To ? P : 1.0 - P;
  };

  BlockOrder Natural = naturalOrder(*Main);
  BlockOrder Optimized = computeLayout(*Main, Fraction);

  auto printOrder = [](const char *Name, const BlockOrder &Order) {
    std::cout << Name << ":";
    for (const BasicBlock *B : Order)
      std::cout << " " << B->name();
    std::cout << "\n";
  };
  printOrder("natural layout  ", Natural);
  printOrder("optimized layout", Optimized);

  double EstBefore = expectedTakenTransfers(*Main, Natural, Fraction);
  double EstAfter = expectedTakenTransfers(*Main, Optimized, Fraction);
  std::cout << "\npredicted taken transfers per run: "
            << formatDouble(EstBefore, 1) << " -> "
            << formatDouble(EstAfter, 1) << " ("
            << formatPercent((EstBefore - EstAfter) /
                             std::max(EstBefore, 1e-9))
            << " fewer)\n";

  // Validate against reality.
  Interpreter Interp(*Compiled->IR);
  EdgeProfile Profile;
  ExecutionResult Run = Interp.run({}, &Profile);
  if (!Run.Ok) {
    std::cerr << "execution failed: " << Run.Error << "\n";
    return 1;
  }
  double ActBefore = actualTakenTransfers(*Main, Natural, Profile);
  double ActAfter = actualTakenTransfers(*Main, Optimized, Profile);
  std::cout << "actual taken conditional transfers: "
            << formatDouble(ActBefore, 0) << " -> "
            << formatDouble(ActAfter, 0) << " ("
            << formatPercent((ActBefore - ActAfter) /
                             std::max(ActBefore, 1e-9))
            << " fewer)\n";
  return 0;
}
