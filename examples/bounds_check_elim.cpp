//===- examples/bounds_check_elim.cpp - §6 bounds-check demo ---------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
// Demonstrates the paper's §6 application: proving array bounds checks
// redundant from value ranges. Runs the same program with assertions on
// and off to show where the provability comes from, and demonstrates the
// range-based array alias test.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "opt/BoundsCheckElim.h"
#include "support/Format.h"

#include <iostream>

using namespace vrp;

namespace {

const char *Source = R"(
var table[100];

fn main() {
  // (a) Loop-bounded accesses: i is derived as {1[0:100:1]}, and the
  // assert on the body edge clips it to [0:99] - both checks redundant.
  for (var i = 0; i < 100; i = i + 1) {
    table[i] = i * 2;
  }

  // (b) Guarded access: the guard proves 0 <= k < 100 on the hot path.
  var k = input();
  if (k >= 0 && k < 100) {
    table[k] = 7;
  }

  // (c) Unguarded data-dependent access: nothing provable; the check is
  // required (the interpreter would trap if it were out of bounds).
  var j = input() % 100;
  if (j < 0) {
    j = j + 100;
  }
  table[j] = 9;

  return table[0];
}
)";

void analyze(const char *Title, bool WithAssertions) {
  DiagnosticEngine Diags;
  VRPOptions Opts;
  Opts.EnableAssertions = WithAssertions;
  auto Compiled = compileToSSA(Source, Diags, Opts);
  if (!Compiled) {
    Diags.printAll(std::cerr);
    return;
  }
  const Function *Main = Compiled->IR->findFunction("main");
  FunctionVRPResult R = propagateRanges(*Main, Opts);

  std::cout << Title << "\n";
  TextTable Table({"access (source line)", "index range", "verdict"});
  for (const auto &B : Main->blocks()) {
    for (const auto &I : B->instructions()) {
      const MemoryObject *Obj = nullptr;
      const Value *Index = nullptr;
      if (const auto *L = dyn_cast<LoadInst>(I.get())) {
        Obj = L->object();
        Index = L->index();
      } else if (const auto *S = dyn_cast<StoreInst>(I.get())) {
        Obj = S->object();
        Index = S->index();
      } else {
        continue;
      }
      ValueRange VR = R.rangeOf(Index);
      const char *Verdict = "";
      switch (classifyBoundsCheck(VR, Obj->size())) {
      case BoundsCheckStatus::FullyRedundant:
        Verdict = "both checks redundant";
        break;
      case BoundsCheckStatus::LowerRedundant:
        Verdict = "lower check redundant";
        break;
      case BoundsCheckStatus::UpperRedundant:
        Verdict = "upper check redundant";
        break;
      case BoundsCheckStatus::Required:
        Verdict = "checks required";
        break;
      }
      Table.addRow({"@" + Obj->name() + "[" + Index->displayName() +
                        "] at " + I->loc().str(),
                    VR.str(), Verdict});
    }
  }
  Table.print(std::cout);
  BoundsCheckReport Report = analyzeBoundsChecks(*Main, R);
  std::cout << "eliminated " << formatPercent(Report.eliminatedFraction())
            << " of the individual checks\n\n";
}

} // namespace

int main() {
  std::cout << "==== Array bounds check elimination (paper §6) ====\n\n";
  std::cout << Source << "\n";
  analyze("--- with post-branch assertions (the paper's configuration) ---",
          /*WithAssertions=*/true);
  analyze("--- without assertions (guards become invisible) ---",
          /*WithAssertions=*/false);

  // Alias test (paper §6 "Alias Analysis for Array Accesses").
  std::cout << "--- range-based array alias test ---\n";
  VRPOptions Opts;
  RangeStats Stats;
  ValueRange FirstHalf = ValueRange::ranges(
      {SubRange::numeric(1.0, 0, 49, 1)}, Opts.MaxSubRanges);
  ValueRange SecondHalf = ValueRange::ranges(
      {SubRange::numeric(1.0, 50, 99, 1)}, Opts.MaxSubRanges);
  std::cout << "index ranges " << FirstHalf.str() << " and "
            << SecondHalf.str() << ": "
            << (rangesCannotOverlap(FirstHalf, SecondHalf)
                    ? "cannot alias"
                    : "may alias")
            << "\n";
  ValueRange Overlapping = ValueRange::ranges(
      {SubRange::numeric(1.0, 40, 60, 1)}, Opts.MaxSubRanges);
  std::cout << "index ranges " << FirstHalf.str() << " and "
            << Overlapping.str() << ": "
            << (rangesCannotOverlap(FirstHalf, Overlapping)
                    ? "cannot alias"
                    : "may alias")
            << "\n";
  return 0;
}
