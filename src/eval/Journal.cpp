//===- eval/Journal.cpp - Crash-resilient suite checkpoint ----------------===//

#include "eval/Journal.h"

#include "support/Telemetry.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

using namespace vrp;
using namespace vrp::journal;

namespace {

constexpr int FormatVersion = 2;

//===----------------------------------------------------------------------===//
// Writing
//===----------------------------------------------------------------------===//

std::string escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// Doubles travel as hex-float strings ("0x1.8p-1"): printf %a / strtod
/// round-trips every finite double exactly, which the bit-identical
/// resume guarantee depends on.
std::string hexFloat(double V) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%a", V);
  return Buf;
}

void writeCdf(std::ostringstream &OS, const ErrorCdf &C) {
  auto S = C.rawState();
  OS << '[';
  for (size_t I = 0; I < S.size(); ++I)
    OS << (I ? "," : "") << '"' << hexFloat(S[I]) << '"';
  OS << ']';
}

//===----------------------------------------------------------------------===//
// Parsing: a strict cursor over the exact format serializeEvaluation
// emits. Any deviation fails the line, which the loader treats as a torn
// write and skips.
//===----------------------------------------------------------------------===//

class Cursor {
public:
  explicit Cursor(const std::string &S) : P(S.c_str()), End(P + S.size()) {}

  bool failed() const { return Fail; }
  bool done() const { return Fail || P == End; }

  /// Consumes the exact literal \p S.
  bool lit(const char *S) {
    size_t N = std::strlen(S);
    if (Fail || static_cast<size_t>(End - P) < N ||
        std::memcmp(P, S, N) != 0)
      return fail();
    P += N;
    return true;
  }

  bool str(std::string &Out) {
    Out.clear();
    if (Fail || P == End || *P != '"')
      return fail();
    ++P;
    while (P != End && *P != '"') {
      if (*P == '\\') {
        if (++P == End)
          return fail();
        switch (*P) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'r':
          Out += '\r';
          break;
        case 'u': {
          if (End - P < 5)
            return fail();
          unsigned V = 0;
          if (std::sscanf(P + 1, "%4x", &V) != 1)
            return fail();
          Out += static_cast<char>(V);
          P += 4;
          break;
        }
        default:
          return fail();
        }
        ++P;
      } else {
        Out += *P++;
      }
    }
    if (P == End)
      return fail();
    ++P; // closing quote
    return true;
  }

  bool u64(uint64_t &Out) {
    if (Fail || P == End)
      return fail();
    char *EndPtr = nullptr;
    Out = std::strtoull(P, &EndPtr, 10);
    if (EndPtr == P)
      return fail();
    P = EndPtr;
    return true;
  }

  bool u32(unsigned &Out) {
    uint64_t V = 0;
    if (!u64(V))
      return false;
    Out = static_cast<unsigned>(V);
    return true;
  }

  bool boolean(bool &Out) {
    if (Fail || P == End)
      return fail();
    if (*P == 't' && lit("true")) {
      Out = true;
      return true;
    }
    if (*P == 'f' && lit("false")) {
      Out = false;
      return true;
    }
    return fail();
  }

  bool hexDouble(double &Out) {
    std::string S;
    if (!str(S))
      return false;
    char *EndPtr = nullptr;
    Out = std::strtod(S.c_str(), &EndPtr);
    if (EndPtr == S.c_str() || *EndPtr != '\0')
      return fail();
    return true;
  }

  /// True when the next character is \p C (not consumed).
  bool peek(char C) const { return !Fail && P != End && *P == C; }

private:
  bool fail() {
    Fail = true;
    return false;
  }

  const char *P;
  const char *End;
  bool Fail = false;
};

bool parseCdf(Cursor &C, ErrorCdf &Out) {
  std::array<double, ErrorCdf::NumBuckets + 2> S{};
  if (!C.lit("["))
    return false;
  for (size_t I = 0; I < S.size(); ++I) {
    if (I && !C.lit(","))
      return false;
    if (!C.hexDouble(S[I]))
      return false;
  }
  if (!C.lit("]"))
    return false;
  Out = ErrorCdf::fromRawState(S);
  return true;
}

std::string headerLine(const std::string &Fingerprint) {
  std::ostringstream OS;
  OS << "{\"journal\":\"vrp-suite\",\"version\":" << FormatVersion
     << ",\"fingerprint\":\"" << escape(Fingerprint) << "\"}";
  return OS.str();
}

} // namespace

std::string journal::fingerprint(
    const std::vector<const BenchmarkProgram *> &Programs,
    const VRPOptions &Opts) {
  std::ostringstream OS;
  OS << "v" << FormatVersion << ";programs=";
  for (const BenchmarkProgram *P : Programs)
    OS << P->Name << ",";
  OS << ";subranges=" << Opts.MaxSubRanges << ";sym=" << Opts.EnableSymbolicRanges
     << ";derive=" << Opts.EnableDerivation << ";assert=" << Opts.EnableAssertions
     << ";widen=" << Opts.WidenThreshold << ";brlimit=" << Opts.BranchUpdateLimit
     << ";flowlimit=" << Opts.FlowVisitLimit
     << ";retrylimit=" << Opts.DerivationRetryLimit
     << ";symcount=" << hexFloat(Opts.AssumedSymbolicCount)
     << ";interproc=" << Opts.Interprocedural << ";clone=" << Opts.EnableCloning
     << ";steplimit=" << Opts.Budget.PropagationStepLimit
     << ";interplimit=" << Opts.Budget.InterpreterStepLimit
     << ";audit=" << Opts.Audit << ";tol=" << hexFloat(Opts.ProbTolerance);
  return OS.str();
}

std::string journal::serializeEvaluation(const BenchmarkEvaluation &Eval) {
  std::ostringstream OS;
  OS << "{\"name\":\"" << escape(Eval.Name) << "\"";
  OS << ",\"ok\":" << (Eval.Ok ? "true" : "false");
  OS << ",\"error\":\"" << escape(Eval.Error) << "\"";
  OS << ",\"failure\":";
  if (Eval.Failure) {
    OS << "[" << static_cast<unsigned>(Eval.Failure->Category) << ",\""
       << escape(Eval.Failure->Stage) << "\",\""
       << escape(Eval.Failure->Message) << "\"]";
  } else {
    OS << "null";
  }
  OS << ",\"degraded_functions\":" << Eval.DegradedFunctions;
  OS << ",\"partial_profile\":" << (Eval.PartialProfile ? "true" : "false");
  OS << ",\"retried\":" << (Eval.Retried ? "true" : "false");
  OS << ",\"ref_steps\":" << Eval.RefSteps;
  OS << ",\"static_branches\":" << Eval.StaticBranches;
  OS << ",\"executed_branches\":" << Eval.ExecutedBranches;
  OS << ",\"range_fraction\":\"" << hexFloat(Eval.VRPRangeFraction) << "\"";
  OS << ",\"audit_checks\":" << Eval.AuditChecks;
  OS << ",\"soundness_violations\":" << Eval.SoundnessViolations;
  OS << ",\"quarantined_functions\":" << Eval.QuarantinedFunctions;
  OS << ",\"quarantines\":[";
  for (size_t I = 0; I < Eval.Quarantines.size(); ++I) {
    const quarantine::Record &R = Eval.Quarantines[I];
    OS << (I ? "," : "") << "[" << static_cast<unsigned>(R.Why) << ",\""
       << escape(R.Context) << "\",\"" << escape(R.Function) << "\",\""
       << escape(R.Detail) << "\"," << R.Violations << "]";
  }
  OS << "]";
  const VRPStats &V = Eval.VRP;
  OS << ",\"vrp\":[" << V.Ranges.ExprEvaluations << "," << V.Ranges.SubOps
     << "," << V.Ranges.PhiEvaluations << "," << V.Ranges.BranchEvaluations
     << "," << V.Ranges.DerivationsTried << "," << V.Ranges.DerivationsMatched
     << "," << V.Ranges.Widenings << "," << V.FunctionsAnalyzed << ","
     << V.FunctionsDegraded << "," << V.FunctionsCloned << "," << V.Rounds
     << "," << V.Waves << "," << V.FunctionsReanalyzed << ","
     << V.RangePredictedBranches << "," << V.HeuristicBranches << ","
     << V.UnreachableBranches << "]";
  OS << ",\"cache\":[" << Eval.Cache.Hits << "," << Eval.Cache.Misses << ","
     << Eval.Cache.Invalidations << "]";
  OS << ",\"curves\":[";
  bool FirstCurve = true;
  for (const auto &[Kind, Pair] : Eval.Curves) {
    OS << (FirstCurve ? "[" : ",[") << static_cast<unsigned>(Kind) << ",";
    writeCdf(OS, Pair.first);
    OS << ",";
    writeCdf(OS, Pair.second);
    OS << "]";
    FirstCurve = false;
  }
  OS << "]}";
  return OS.str();
}

bool journal::deserializeEvaluation(const std::string &Line,
                                    BenchmarkEvaluation &Out) {
  BenchmarkEvaluation E;
  Cursor C(Line);
  C.lit("{\"name\":");
  C.str(E.Name);
  C.lit(",\"ok\":");
  C.boolean(E.Ok);
  C.lit(",\"error\":");
  C.str(E.Error);
  C.lit(",\"failure\":");
  if (C.peek('[')) {
    C.lit("[");
    FailureInfo F;
    unsigned Cat = 0;
    C.u32(Cat);
    F.Category = static_cast<ErrorCategory>(Cat);
    C.lit(",");
    C.str(F.Stage);
    C.lit(",");
    C.str(F.Message);
    C.lit("]");
    F.Benchmark = E.Name;
    E.Failure = std::move(F);
  } else {
    C.lit("null");
  }
  C.lit(",\"degraded_functions\":");
  C.u32(E.DegradedFunctions);
  C.lit(",\"partial_profile\":");
  C.boolean(E.PartialProfile);
  C.lit(",\"retried\":");
  C.boolean(E.Retried);
  C.lit(",\"ref_steps\":");
  C.u64(E.RefSteps);
  C.lit(",\"static_branches\":");
  C.u32(E.StaticBranches);
  C.lit(",\"executed_branches\":");
  C.u32(E.ExecutedBranches);
  C.lit(",\"range_fraction\":");
  C.hexDouble(E.VRPRangeFraction);
  C.lit(",\"audit_checks\":");
  C.u64(E.AuditChecks);
  C.lit(",\"soundness_violations\":");
  C.u64(E.SoundnessViolations);
  C.lit(",\"quarantined_functions\":");
  C.u32(E.QuarantinedFunctions);
  C.lit(",\"quarantines\":[");
  while (C.peek('[')) {
    C.lit("[");
    quarantine::Record R;
    unsigned Why = 0;
    C.u32(Why);
    R.Why = static_cast<quarantine::Reason>(Why);
    C.lit(",");
    C.str(R.Context);
    C.lit(",");
    C.str(R.Function);
    C.lit(",");
    C.str(R.Detail);
    C.lit(",");
    C.u64(R.Violations);
    C.lit("]");
    E.Quarantines.push_back(std::move(R));
    if (C.peek(','))
      C.lit(",");
  }
  C.lit("]");
  VRPStats &V = E.VRP;
  C.lit(",\"vrp\":[");
  C.u64(V.Ranges.ExprEvaluations);
  C.lit(",");
  C.u64(V.Ranges.SubOps);
  C.lit(",");
  C.u64(V.Ranges.PhiEvaluations);
  C.lit(",");
  C.u64(V.Ranges.BranchEvaluations);
  C.lit(",");
  C.u64(V.Ranges.DerivationsTried);
  C.lit(",");
  C.u64(V.Ranges.DerivationsMatched);
  C.lit(",");
  C.u64(V.Ranges.Widenings);
  C.lit(",");
  C.u32(V.FunctionsAnalyzed);
  C.lit(",");
  C.u32(V.FunctionsDegraded);
  C.lit(",");
  C.u32(V.FunctionsCloned);
  C.lit(",");
  C.u32(V.Rounds);
  C.lit(",");
  C.u32(V.Waves);
  C.lit(",");
  C.u32(V.FunctionsReanalyzed);
  C.lit(",");
  C.u64(V.RangePredictedBranches);
  C.lit(",");
  C.u64(V.HeuristicBranches);
  C.lit(",");
  C.u64(V.UnreachableBranches);
  C.lit("]");
  C.lit(",\"cache\":[");
  C.u64(E.Cache.Hits);
  C.lit(",");
  C.u64(E.Cache.Misses);
  C.lit(",");
  C.u64(E.Cache.Invalidations);
  C.lit("]");
  C.lit(",\"curves\":[");
  while (C.peek('[')) {
    C.lit("[");
    unsigned Kind = 0;
    C.u32(Kind);
    C.lit(",");
    ErrorCdf Unweighted, Weighted;
    if (!parseCdf(C, Unweighted))
      return false;
    C.lit(",");
    if (!parseCdf(C, Weighted))
      return false;
    C.lit("]");
    E.Curves[static_cast<PredictorKind>(Kind)] = {Unweighted, Weighted};
    if (C.peek(','))
      C.lit(",");
  }
  C.lit("]}");
  if (C.failed() || !C.done())
    return false;
  Out = std::move(E);
  return true;
}

LoadResult SuiteJournal::load(const std::string &Path,
                              const std::string &Fingerprint) {
  LoadResult Result;
  std::ifstream In(Path);
  if (!In.is_open())
    return Result;
  std::string Line;
  if (!std::getline(In, Line))
    return Result;
  if (Line != headerLine(Fingerprint))
    return Result; // Different programs/options: journal unusable.
  Result.HeaderMatched = true;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    BenchmarkEvaluation E;
    if (deserializeEvaluation(Line, E))
      Result.Entries[E.Name] = std::move(E); // Duplicates: last wins.
    else
      ++Result.CorruptLines; // Torn write — skip, never fatal.
  }
  return Result;
}

std::unique_ptr<SuiteJournal> SuiteJournal::open(const std::string &Path,
                                                 const std::string &Fingerprint,
                                                 bool Append) {
  auto J = std::unique_ptr<SuiteJournal>(new SuiteJournal());
  J->OS.open(Path, Append ? (std::ios::out | std::ios::app)
                          : (std::ios::out | std::ios::trunc));
  if (!J->OS.is_open())
    return nullptr;
  if (!Append) {
    J->OS << headerLine(Fingerprint) << "\n";
    J->OS.flush();
  }
  return J;
}

void SuiteJournal::append(const BenchmarkEvaluation &Eval) {
  std::string Line = serializeEvaluation(Eval);
  std::lock_guard<std::mutex> L(M);
  OS << Line << "\n";
  OS.flush();
  telemetry::count(telemetry::Counter::JournalEntriesWritten);
}
