//===- eval/Reporting.h - Figure-style table rendering ----------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders SuiteEvaluation results as the textual equivalent of the
/// paper's Figures 7/8: cumulative "% of branches predicted to within ±N
/// percentage points" tables per predictor, plus a per-benchmark summary.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_EVAL_REPORTING_H
#define VRP_EVAL_REPORTING_H

#include "eval/SuiteRunner.h"
#include "support/Telemetry.h"

#include <ostream>

namespace vrp {

/// Prints the averaged unweighted and weighted CDF tables plus the
/// per-benchmark summary for \p Suite under \p Title.
void printSuiteReport(const SuiteEvaluation &Suite, const std::string &Title,
                      std::ostream &OS);

/// Prints one CDF table (rows: error buckets; columns: predictors).
void printCdfTable(const std::map<PredictorKind, ErrorCdf> &Curves,
                   const std::string &Caption, std::ostream &OS);

/// Writes the machine-readable stats report (schema: docs/TELEMETRY.md):
/// per-benchmark and suite-total VRP/cache counters from \p Suite plus
/// the process-wide telemetry counters from \p Telemetry. Every
/// nondeterministic field (the wall-clock timers) lives under a single
/// "timings" key emitted LAST, so reproducibility checks can strip it
/// with `sed '/"timings"/,$d'` and byte-compare the rest across thread
/// counts; passing \p IncludeTimings = false omits the key entirely.
void writeSuiteStatsJson(const SuiteEvaluation &Suite,
                         const telemetry::Snapshot &Telemetry,
                         std::ostream &OS, bool IncludeTimings = true);

} // namespace vrp

#endif // VRP_EVAL_REPORTING_H
