//===- eval/Reporting.h - Figure-style table rendering ----------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders SuiteEvaluation results as the textual equivalent of the
/// paper's Figures 7/8: cumulative "% of branches predicted to within ±N
/// percentage points" tables per predictor, plus a per-benchmark summary.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_EVAL_REPORTING_H
#define VRP_EVAL_REPORTING_H

#include "eval/SuiteRunner.h"

#include <ostream>

namespace vrp {

/// Prints the averaged unweighted and weighted CDF tables plus the
/// per-benchmark summary for \p Suite under \p Title.
void printSuiteReport(const SuiteEvaluation &Suite, const std::string &Title,
                      std::ostream &OS);

/// Prints one CDF table (rows: error buckets; columns: predictors).
void printCdfTable(const std::map<PredictorKind, ErrorCdf> &Curves,
                   const std::string &Caption, std::ostream &OS);

} // namespace vrp

#endif // VRP_EVAL_REPORTING_H
