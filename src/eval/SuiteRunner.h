//===- eval/SuiteRunner.h - Figure 7/8 evaluation orchestration -*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Orchestrates the paper's §5 evaluation protocol over a benchmark suite:
/// compile, run the reference input for ground truth, run the short input
/// to train the profiling baseline, produce per-predictor branch
/// probabilities, and aggregate error CDFs (unweighted and weighted by
/// execution count) with each benchmark weighted equally — everything the
/// Figure 7/8 benches need.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_EVAL_SUITERUNNER_H
#define VRP_EVAL_SUITERUNNER_H

#include "analysis/AnalysisCache.h"
#include "benchsuite/Programs.h"
#include "driver/Pipeline.h"
#include "eval/ErrorMetrics.h"
#include "support/Quarantine.h"
#include "support/ResultStore.h"
#include "support/Status.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace vrp {

class PersistentCache;

/// The predictors evaluated against each other, in the paper's order.
enum class PredictorKind {
  Profiling,    ///< Trained on the short input (input.short protocol).
  BallLarus,    ///< Combined heuristics [BallLarus93] + [WuLarus94].
  VRP,          ///< Value range propagation (full, symbolic ranges on).
  VRPNumeric,   ///< VRP with numeric ranges only.
  NinetyFifty,  ///< The 90/50 rule.
  Random,       ///< Random probabilities.
};

const char *predictorName(PredictorKind Kind);

/// All kinds, in display order.
std::vector<PredictorKind> allPredictors();

/// Structured record of one benchmark's failure: which benchmark, which
/// pipeline stage, and the error category the suite report aggregates
/// over. The suite records these and keeps going — one bad program never
/// aborts an evaluateSuite run.
struct FailureInfo {
  ErrorCategory Category = ErrorCategory::Internal;
  std::string Benchmark;
  std::string Stage; ///< "compile", "ref-run", "train-run", "vrp", ...
  std::string Message;

  /// "benchmark [stage]: category: message" rendering for reports.
  std::string str() const;
};

/// Evaluation of one benchmark program.
struct BenchmarkEvaluation {
  std::string Name;
  bool Ok = false;
  std::string Error; ///< Human-readable; see Failure for the structure.
  /// Set exactly when !Ok (except for default-constructed slots).
  std::optional<FailureInfo> Failure;
  /// Functions whose VRP analysis blew a resource budget and degraded to
  /// the Ball–Larus fallback (whole-function ⊥, paper §3.5 writ large).
  unsigned DegradedFunctions = 0;
  /// True when an interpreter step budget truncated the reference or
  /// training run and the counts collected so far were kept.
  bool PartialProfile = false;
  uint64_t RefSteps = 0;
  unsigned StaticBranches = 0;   ///< Conditional branches in the module.
  unsigned ExecutedBranches = 0; ///< Executed by the reference run.
  double VRPRangeFraction = 0.0; ///< Share of branches VRP predicted from
                                 ///< ranges (rest fell back to heuristics).
  /// Per-benchmark VRP work/outcome counters from the scored VRP run
  /// (engine evaluations, degradations, per-branch decision sources).
  /// Assembled from that run's structured results, so the numbers stay
  /// attributable to this benchmark under the parallel suite fan-out.
  VRPStats VRP;
  /// Analysis-cache efficiency over this benchmark's evaluation.
  AnalysisCacheStats Cache;
  /// Individual range-membership checks the soundness sentinel ran
  /// (Opts.Audit only; see vrp/Audit.h).
  uint64_t AuditChecks = 0;
  /// Checks whose observed value fell outside its computed range.
  uint64_t SoundnessViolations = 0;
  /// Functions whose VRP predictions the audit discarded: each was
  /// rebuilt from the Ball–Larus fallback before scoring, so the VRP
  /// curves of a quarantined function are its fallback curves.
  unsigned QuarantinedFunctions = 0;
  /// One record per quarantined function (audit verdicts with witness).
  std::vector<quarantine::Record> Quarantines;
  /// True when the supervisor retried this benchmark after a transient
  /// failure and this evaluation is the second attempt.
  bool Retried = false;
  /// Per predictor: {unweighted CDF, weighted CDF}.
  std::map<PredictorKind, std::pair<ErrorCdf, ErrorCdf>> Curves;
};

/// Whole-suite evaluation: per-benchmark detail plus equal-weight averages.
struct SuiteEvaluation {
  std::vector<BenchmarkEvaluation> Benchmarks;
  std::map<PredictorKind, ErrorCdf> AveragedUnweighted;
  std::map<PredictorKind, ErrorCdf> AveragedWeighted;
  /// Summed analysis-cache counters across benchmarks.
  AnalysisCacheStats CacheTotals;
  /// Summed per-benchmark VRP counters (deterministic at any Threads).
  VRPStats VRPTotals;
  /// Every per-benchmark failure, in benchmark order. Under the parallel
  /// fan-out this aggregates ALL failed tasks, not just the first.
  std::vector<FailureInfo> Failures;
  /// Summed BenchmarkEvaluation::DegradedFunctions across benchmarks.
  unsigned DegradedFunctions = 0;
  /// Summed audit totals across benchmarks (Opts.Audit only).
  uint64_t AuditChecks = 0;
  uint64_t SoundnessViolations = 0;
  unsigned QuarantinedFunctions = 0;
  /// Every quarantine record, in benchmark order.
  std::vector<quarantine::Record> Quarantines;
  /// Benchmarks the supervisor re-ran after a transient failure.
  unsigned SupervisorRetries = 0;
  /// Benchmarks reused from the journal instead of re-evaluated
  /// (--resume). Deliberately absent from the stats JSON: a resumed run
  /// must produce output identical to an uninterrupted one.
  unsigned JournalReused = 0;
  /// True when the run had a persistent result cache attached
  /// (SuiteRunConfig::CachePath); the stats JSON then carries a "pcache"
  /// block with the counters below.
  bool PCacheEnabled = false;
  /// Persistent-cache efficiency/health counters for this run
  /// (analysis/PersistentCache.h). Deterministic at any thread count:
  /// lookups consult a snapshot frozen when the store was opened.
  store::ResultStoreStats PCache;
  /// Verify-mode (--cache-verify) hits whose stored bytes differed from a
  /// fresh re-analysis. Always 0 outside verify mode.
  uint64_t PCacheDivergences = 0;
};

/// Suite-run mechanics orthogonal to the analysis options: crash
/// journaling and the fault supervisor. Defaults reproduce the plain
/// evaluateSuite behavior exactly.
struct SuiteRunConfig {
  /// Append-only JSONL checkpoint: a header line binding the program
  /// list and options, then one line per completed benchmark, flushed as
  /// each finishes (any completion order under the parallel fan-out).
  std::string JournalPath; ///< Empty: no journal.
  /// Reuse journaled results: benchmarks already present (under a
  /// matching header) are not re-evaluated; the rest run and are
  /// appended. A header mismatch discards the journal and recomputes.
  bool Resume = false;
  /// Supervise benchmark slots: an escaped worker exception becomes a
  /// structured failure instead of a pool task failure, and a *transient*
  /// failure (budget/deadline or injected fault) is retried once.
  bool SupervisorRetry = false;
  /// Persistent content-addressed result cache (analysis/PersistentCache):
  /// warm runs restore per-function VRP results bitwise-identically from
  /// this file and skip propagation. Empty: no cache.
  std::string CachePath;
  /// With CachePath: do not skip on a hit — re-analyze, compare the fresh
  /// bytes against the stored record, and count divergences (surfaced as
  /// SuiteEvaluation::PCacheDivergences; predictor_tool exits 5 on any).
  bool CacheVerify = false;
};

/// Computes module-wide branch probabilities for one predictor.
/// For the VRP kinds, \p Opts controls the engine (symbolic ranges are
/// forced off for VRPNumeric) and predictions include the heuristic
/// fallback, exactly as in the paper's experiment. \p Cache optionally
/// memoizes per-function CFG analyses and the Ball–Larus map across
/// predictors evaluating the same module.
BranchProbMap predictModule(PredictorKind Kind, Module &M,
                            const EdgeProfile &TrainingProfile,
                            const VRPOptions &Opts, uint64_t RandomSeed,
                            AnalysisCache *Cache = nullptr,
                            PersistentCache *PCache = nullptr);

/// Runs the full §5 protocol over \p Programs. With Opts.Threads > 1 (or
/// 0 = auto), benchmarks are fanned out across a worker pool — each
/// evaluateProgram is independent — and results are merged in benchmark
/// order, so the outcome is identical to a serial run at any thread count.
SuiteEvaluation evaluateSuite(
    const std::vector<const BenchmarkProgram *> &Programs,
    const VRPOptions &Opts);

/// As above, with journaling / resume / supervision (see SuiteRunConfig).
SuiteEvaluation evaluateSuite(
    const std::vector<const BenchmarkProgram *> &Programs,
    const VRPOptions &Opts, const SuiteRunConfig &Config);

/// Evaluates a single program (used by tests and the ablation bench).
BenchmarkEvaluation evaluateProgram(const BenchmarkProgram &Program,
                                    const VRPOptions &Opts);

/// As above, against a persistent result cache (may be null). Pending
/// cache inserts commit only after the evaluation — including its audit —
/// succeeded; quarantined functions are expunged first and a failed
/// benchmark's pending results are discarded.
BenchmarkEvaluation evaluateProgram(const BenchmarkProgram &Program,
                                    const VRPOptions &Opts,
                                    PersistentCache *PCache);

} // namespace vrp

#endif // VRP_EVAL_SUITERUNNER_H
