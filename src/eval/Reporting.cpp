//===- eval/Reporting.cpp - Figure-style table rendering --------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "eval/Reporting.h"

#include "support/Format.h"

#include <cstdio>

using namespace vrp;

void vrp::printCdfTable(const std::map<PredictorKind, ErrorCdf> &Curves,
                        const std::string &Caption, std::ostream &OS) {
  OS << Caption << "\n";
  std::vector<std::string> Header{"Error <"};
  for (PredictorKind Kind : allPredictors())
    Header.push_back(predictorName(Kind));
  TextTable Table(std::move(Header));

  for (unsigned I = 0; I < ErrorCdf::NumBuckets; ++I) {
    std::vector<std::string> Row{
        formatDouble(ErrorCdf::bucketEdge(I), 0) + " pp"};
    for (PredictorKind Kind : allPredictors()) {
      auto It = Curves.find(Kind);
      Row.push_back(It == Curves.end()
                        ? "-"
                        : formatPercent(It->second.fractionWithin(I)));
    }
    Table.addRow(std::move(Row));
  }
  std::vector<std::string> MeanRow{"mean err"};
  for (PredictorKind Kind : allPredictors()) {
    auto It = Curves.find(Kind);
    MeanRow.push_back(
        It == Curves.end()
            ? "-"
            : formatDouble(It->second.meanError(), 2) + " pp");
  }
  Table.addRow(std::move(MeanRow));
  Table.print(OS);
  OS << "\n";
}

namespace {

/// Minimal JSON string escaping (benchmark names are identifiers, but a
/// malformed-corpus name must not break the report).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
      continue;
    }
    Out += C;
  }
  return Out;
}

void writeVrpStats(const VRPStats &S, const char *Indent, std::ostream &OS) {
  OS << "{\n";
  auto field = [&](const char *Key, uint64_t V, bool Last = false) {
    OS << Indent << "  \"" << Key << "\": " << V << (Last ? "\n" : ",\n");
  };
  field("expr_evaluations", S.Ranges.ExprEvaluations);
  field("subrange_ops", S.Ranges.SubOps);
  field("phi_evaluations", S.Ranges.PhiEvaluations);
  field("branch_evaluations", S.Ranges.BranchEvaluations);
  field("derivations_tried", S.Ranges.DerivationsTried);
  field("derivations_matched", S.Ranges.DerivationsMatched);
  field("widenings", S.Ranges.Widenings);
  field("functions_analyzed", S.FunctionsAnalyzed);
  field("functions_degraded", S.FunctionsDegraded);
  field("functions_cloned", S.FunctionsCloned);
  field("rounds", S.Rounds);
  field("waves", S.Waves);
  field("functions_reanalyzed", S.FunctionsReanalyzed);
  field("range_predicted_branches", S.RangePredictedBranches);
  field("heuristic_branches", S.HeuristicBranches);
  field("unreachable_branches", S.UnreachableBranches, /*Last=*/true);
  OS << Indent << "}";
}

void writeCacheStats(const AnalysisCacheStats &S, const char *Indent,
                     std::ostream &OS) {
  OS << "{\n"
     << Indent << "  \"hits\": " << S.Hits << ",\n"
     << Indent << "  \"misses\": " << S.Misses << ",\n"
     << Indent << "  \"invalidations\": " << S.Invalidations << "\n"
     << Indent << "}";
}

} // namespace

void vrp::writeSuiteStatsJson(const SuiteEvaluation &Suite,
                              const telemetry::Snapshot &Telemetry,
                              std::ostream &OS, bool IncludeTimings) {
  OS << "{\n  \"benchmarks\": [\n";
  for (size_t I = 0; I < Suite.Benchmarks.size(); ++I) {
    const BenchmarkEvaluation &B = Suite.Benchmarks[I];
    OS << "    {\n"
       << "      \"name\": \"" << jsonEscape(B.Name) << "\",\n"
       << "      \"ok\": " << (B.Ok ? "true" : "false") << ",\n"
       << "      \"degraded_functions\": " << B.DegradedFunctions << ",\n"
       << "      \"partial_profile\": "
       << (B.PartialProfile ? "true" : "false") << ",\n"
       << "      \"retried\": " << (B.Retried ? "true" : "false") << ",\n"
       << "      \"static_branches\": " << B.StaticBranches << ",\n"
       << "      \"audit_checks\": " << B.AuditChecks << ",\n"
       << "      \"soundness_violations\": " << B.SoundnessViolations
       << ",\n"
       << "      \"quarantined_functions\": " << B.QuarantinedFunctions
       << ",\n"
       << "      \"vrp\": ";
    writeVrpStats(B.VRP, "      ", OS);
    OS << ",\n      \"cache\": ";
    writeCacheStats(B.Cache, "      ", OS);
    OS << "\n    }" << (I + 1 < Suite.Benchmarks.size() ? "," : "") << "\n";
  }
  OS << "  ],\n";
  OS << "  \"totals\": {\n"
     << "    \"benchmarks\": " << Suite.Benchmarks.size() << ",\n"
     << "    \"failures\": " << Suite.Failures.size() << ",\n"
     << "    \"degraded_functions\": " << Suite.DegradedFunctions << ",\n"
     << "    \"audit_checks\": " << Suite.AuditChecks << ",\n"
     << "    \"soundness_violations\": " << Suite.SoundnessViolations << ",\n"
     << "    \"quarantined_functions\": " << Suite.QuarantinedFunctions
     << ",\n"
     << "    \"supervisor_retries\": " << Suite.SupervisorRetries << ",\n"
     << "    \"vrp\": ";
  writeVrpStats(Suite.VRPTotals, "    ", OS);
  OS << ",\n    \"cache\": ";
  writeCacheStats(Suite.CacheTotals, "    ", OS);
  OS << "\n  },\n";

  // Quarantined functions, in (benchmark, function) order. Empty on a
  // healthy run, so determinism diffs surface any quarantine loudly.
  OS << "  \"quarantines\": [";
  for (size_t I = 0; I < Suite.Quarantines.size(); ++I) {
    const quarantine::Record &Q = Suite.Quarantines[I];
    OS << (I == 0 ? "\n" : ",\n") << "    {\"benchmark\": \""
       << jsonEscape(Q.Context) << "\", \"function\": \""
       << jsonEscape(Q.Function) << "\", \"reason\": \""
       << quarantine::reasonName(Q.Why)
       << "\", \"violations\": " << Q.Violations << "}";
  }
  OS << (Suite.Quarantines.empty() ? "],\n" : "\n  ],\n");

  // Persistent result cache. "enabled" keeps the key present (and the
  // layout stable) on uncached runs; every counter is deterministic at
  // any thread count because lookups only consult the snapshot frozen at
  // open. Warm-start checks strip from the "pcache" line onward, since a
  // cold and a warm run legitimately differ here.
  OS << "  \"pcache\": {\"enabled\": " << (Suite.PCacheEnabled ? 1 : 0)
     << ", \"hits\": " << Suite.PCache.Hits
     << ", \"misses\": " << Suite.PCache.Misses
     << ", \"evictions\": " << Suite.PCache.Evictions
     << ", \"corrupt_records\": " << Suite.PCache.CorruptRecords
     << ", \"records\": " << Suite.PCache.Records
     << ", \"bytes_written\": " << Suite.PCache.BytesWritten
     << ", \"divergences\": " << Suite.PCacheDivergences << "},\n";

  // Process-wide telemetry counters, in enum order.
  OS << "  \"counters\": {\n";
  for (unsigned I = 0; I < telemetry::NumCounters; ++I) {
    OS << "    \""
       << telemetry::counterName(static_cast<telemetry::Counter>(I))
       << "\": " << Telemetry.Counters[I]
       << (I + 1 < telemetry::NumCounters ? ",\n" : "\n");
  }
  OS << "  }";

  // Wall-clock is nondeterministic by nature; it must stay the LAST
  // top-level key so determinism checks can strip everything from the
  // "timings" line onward.
  if (IncludeTimings) {
    OS << ",\n  \"timings\": {\n";
    for (unsigned I = 0; I < telemetry::NumTimers; ++I) {
      OS << "    \""
         << telemetry::timerName(static_cast<telemetry::Timer>(I))
         << "\": {\"ns\": " << Telemetry.TimerNanos[I]
         << ", \"calls\": " << Telemetry.TimerCalls[I] << "}"
         << (I + 1 < telemetry::NumTimers ? ",\n" : "\n");
    }
    OS << "  }";
  }
  OS << "\n}\n";
}

void vrp::printSuiteReport(const SuiteEvaluation &Suite,
                           const std::string &Title, std::ostream &OS) {
  OS << "==== " << Title << " ====\n\n";

  TextTable Summary({"benchmark", "ref steps", "branches", "executed",
                     "VRP range-predicted"});
  for (const BenchmarkEvaluation &B : Suite.Benchmarks) {
    if (!B.Ok) {
      Summary.addRow({B.Name, "FAILED: " + B.Error});
      continue;
    }
    std::string Name = B.Name;
    if (B.DegradedFunctions > 0)
      Name += " [degraded: " + std::to_string(B.DegradedFunctions) + " fn]";
    if (B.QuarantinedFunctions > 0)
      Name +=
          " [quarantined: " + std::to_string(B.QuarantinedFunctions) + " fn]";
    if (B.PartialProfile)
      Name += " [partial profile]";
    if (B.Retried)
      Name += " [retried]";
    Summary.addRow({Name, std::to_string(B.RefSteps),
                    std::to_string(B.StaticBranches),
                    std::to_string(B.ExecutedBranches),
                    formatPercent(B.VRPRangeFraction)});
  }
  Summary.print(OS);
  OS << "\n";

  if (!Suite.Failures.empty()) {
    OS << "failures (" << Suite.Failures.size() << " of "
       << Suite.Benchmarks.size() << " benchmarks):\n";
    for (const FailureInfo &F : Suite.Failures)
      OS << "  " << F.str() << "\n";
    OS << "\n";
  }
  if (Suite.DegradedFunctions > 0)
    OS << "budget degradation: " << Suite.DegradedFunctions
       << " function(s) fell back to Ball-Larus heuristics\n\n";

  if (!Suite.Quarantines.empty()) {
    OS << "soundness quarantine (" << Suite.SoundnessViolations
       << " violation(s) in " << Suite.AuditChecks << " audit checks):\n";
    for (const quarantine::Record &Q : Suite.Quarantines)
      OS << "  " << Q.str() << "\n";
    OS << "\n";
  }
  if (Suite.SupervisorRetries > 0)
    OS << "supervisor: " << Suite.SupervisorRetries
       << " benchmark(s) recovered by retry\n\n";

  printCdfTable(Suite.AveragedUnweighted,
                Title + " — unweighted (each branch equal), % of branches "
                        "predicted within the given error",
                OS);
  printCdfTable(Suite.AveragedWeighted,
                Title + " — weighted by branch execution count", OS);
}
