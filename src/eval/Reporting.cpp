//===- eval/Reporting.cpp - Figure-style table rendering --------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "eval/Reporting.h"

#include "support/Format.h"

using namespace vrp;

void vrp::printCdfTable(const std::map<PredictorKind, ErrorCdf> &Curves,
                        const std::string &Caption, std::ostream &OS) {
  OS << Caption << "\n";
  std::vector<std::string> Header{"Error <"};
  for (PredictorKind Kind : allPredictors())
    Header.push_back(predictorName(Kind));
  TextTable Table(std::move(Header));

  for (unsigned I = 0; I < ErrorCdf::NumBuckets; ++I) {
    std::vector<std::string> Row{
        formatDouble(ErrorCdf::bucketEdge(I), 0) + " pp"};
    for (PredictorKind Kind : allPredictors()) {
      auto It = Curves.find(Kind);
      Row.push_back(It == Curves.end()
                        ? "-"
                        : formatPercent(It->second.fractionWithin(I)));
    }
    Table.addRow(std::move(Row));
  }
  std::vector<std::string> MeanRow{"mean err"};
  for (PredictorKind Kind : allPredictors()) {
    auto It = Curves.find(Kind);
    MeanRow.push_back(
        It == Curves.end()
            ? "-"
            : formatDouble(It->second.meanError(), 2) + " pp");
  }
  Table.addRow(std::move(MeanRow));
  Table.print(OS);
  OS << "\n";
}

void vrp::printSuiteReport(const SuiteEvaluation &Suite,
                           const std::string &Title, std::ostream &OS) {
  OS << "==== " << Title << " ====\n\n";

  TextTable Summary({"benchmark", "ref steps", "branches", "executed",
                     "VRP range-predicted"});
  for (const BenchmarkEvaluation &B : Suite.Benchmarks) {
    if (!B.Ok) {
      Summary.addRow({B.Name, "FAILED: " + B.Error});
      continue;
    }
    std::string Name = B.Name;
    if (B.DegradedFunctions > 0)
      Name += " [degraded: " + std::to_string(B.DegradedFunctions) + " fn]";
    if (B.PartialProfile)
      Name += " [partial profile]";
    Summary.addRow({Name, std::to_string(B.RefSteps),
                    std::to_string(B.StaticBranches),
                    std::to_string(B.ExecutedBranches),
                    formatPercent(B.VRPRangeFraction)});
  }
  Summary.print(OS);
  OS << "\n";

  if (!Suite.Failures.empty()) {
    OS << "failures (" << Suite.Failures.size() << " of "
       << Suite.Benchmarks.size() << " benchmarks):\n";
    for (const FailureInfo &F : Suite.Failures)
      OS << "  " << F.str() << "\n";
    OS << "\n";
  }
  if (Suite.DegradedFunctions > 0)
    OS << "budget degradation: " << Suite.DegradedFunctions
       << " function(s) fell back to Ball-Larus heuristics\n\n";

  printCdfTable(Suite.AveragedUnweighted,
                Title + " — unweighted (each branch equal), % of branches "
                        "predicted within the given error",
                OS);
  printCdfTable(Suite.AveragedWeighted,
                Title + " — weighted by branch execution count", OS);
}
