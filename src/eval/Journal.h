//===- eval/Journal.h - Crash-resilient suite checkpoint --------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The suite journal: an append-only JSONL checkpoint that makes long
/// evaluateSuite runs survivable. The first line is a header binding the
/// journal to its program list and analysis options (the *fingerprint*);
/// every completed benchmark then appends one line with its full
/// structured result, flushed immediately, in whatever order the
/// parallel fan-out finishes. After a crash or kill, `--resume` loads the
/// journal, skips every benchmark already present, and evaluates only
/// the remainder — and because doubles round-trip through hex-float
/// (`%a`) strings and curves are stored as their exact accumulator
/// state, the merged suite statistics are bit-identical to an
/// uninterrupted run.
///
/// The loader is deliberately forgiving: a torn final line (the crash
/// happened mid-write) or any line that fails to parse is counted and
/// skipped, never fatal; duplicate names keep the last occurrence; a
/// header whose fingerprint does not match (different programs or
/// options) invalidates the whole journal, forcing a clean recompute.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_EVAL_JOURNAL_H
#define VRP_EVAL_JOURNAL_H

#include "eval/SuiteRunner.h"

#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vrp {
namespace journal {

/// The header fingerprint: a readable rendering of everything that must
/// match for journaled results to be reusable — the benchmark list and
/// each deterministic analysis option. Threads is excluded (results are
/// identical at any thread count by design), as is the inherently
/// nondeterministic wall-clock deadline budget.
std::string fingerprint(const std::vector<const BenchmarkProgram *> &Programs,
                        const VRPOptions &Opts);

/// One line of the journal, serialized/parsed below. Exposed for tests.
std::string serializeEvaluation(const BenchmarkEvaluation &Eval);
bool deserializeEvaluation(const std::string &Line, BenchmarkEvaluation &Out);

/// What load() recovered from an existing journal file.
struct LoadResult {
  /// Completed benchmarks by name (empty when the header did not match).
  std::map<std::string, BenchmarkEvaluation> Entries;
  /// True when the file existed and its header fingerprint matched.
  bool HeaderMatched = false;
  /// Torn or malformed entry lines skipped (never fatal).
  unsigned CorruptLines = 0;
};

/// Append-side handle. Thread-safe: the suite fan-out appends from
/// worker threads as benchmarks complete.
class SuiteJournal {
public:
  /// Parses \p Path against \p Fingerprint. A missing file yields an
  /// empty result with HeaderMatched = false.
  static LoadResult load(const std::string &Path,
                         const std::string &Fingerprint);

  /// Opens \p Path for writing. With \p Append the file is extended
  /// in place (its header must already match — pass load().HeaderMatched);
  /// otherwise it is truncated and a fresh header written. Returns null
  /// when the file cannot be opened.
  static std::unique_ptr<SuiteJournal> open(const std::string &Path,
                                            const std::string &Fingerprint,
                                            bool Append);

  /// Serializes \p Eval as one line and flushes it to disk.
  void append(const BenchmarkEvaluation &Eval);

private:
  SuiteJournal() = default;

  std::mutex M;
  std::ofstream OS;
};

} // namespace journal
} // namespace vrp

#endif // VRP_EVAL_JOURNAL_H
