//===- eval/ErrorMetrics.cpp - Prediction error analysis -------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "eval/ErrorMetrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace vrp;

std::vector<BranchErrorSample>
vrp::computeErrors(const BranchProbMap &Pred, const EdgeProfile &Reference) {
  std::vector<BranchErrorSample> Samples;
  for (const auto &[Branch, Counts] : Reference.counts()) {
    if (Counts.Total == 0)
      continue;
    auto It = Pred.find(Branch);
    // Branches missing from the prediction map (e.g. in functions the
    // predictor did not see) default to 50/50.
    double P = It == Pred.end() ? 0.5 : It->second;
    double Actual = Counts.takenFraction();
    Samples.push_back(
        {std::abs(P - Actual) * 100.0, Counts.Total});
  }
  // The profile map is keyed by branch pointer, so its iteration order
  // follows heap addresses and varies run to run. Canonicalize by value:
  // ErrorCdf accumulates ErrorSum in sample order, and floating-point
  // addition is not associative, so a stable order is what makes repeated
  // evaluations (and the parallel engine vs. the serial one) bitwise
  // reproducible. Tie order is irrelevant — equal terms sum identically.
  std::sort(Samples.begin(), Samples.end(),
            [](const BranchErrorSample &A, const BranchErrorSample &B) {
              return A.ErrorPP != B.ErrorPP ? A.ErrorPP < B.ErrorPP
                                            : A.Weight < B.Weight;
            });
  return Samples;
}

void ErrorCdf::addSample(double ErrorPP, double Weight) {
  assert(!IsAverage && "cannot add samples to an averaged CDF");
  if (Weight <= 0.0)
    return;
  for (unsigned I = 0; I < NumBuckets; ++I)
    if (ErrorPP < bucketEdge(I)) {
      BucketWeight[I] += Weight;
      break;
    }
  // Errors >= 39pp contribute to the total only.
  TotalWeight += Weight;
  ErrorSum += ErrorPP * Weight;
}

void ErrorCdf::addSamples(const std::vector<BranchErrorSample> &Samples,
                          bool Weighted) {
  for (const BranchErrorSample &S : Samples)
    addSample(S.ErrorPP, Weighted ? static_cast<double>(S.Weight) : 1.0);
}

double ErrorCdf::fractionWithin(unsigned I) const {
  assert(I < NumBuckets && "bucket out of range");
  if (IsAverage)
    return AveragedFractions[I];
  if (TotalWeight <= 0.0)
    return 0.0;
  double Cum = 0.0;
  for (unsigned B = 0; B <= I; ++B)
    Cum += BucketWeight[B];
  return Cum / TotalWeight;
}

ErrorCdf ErrorCdf::average(const std::vector<ErrorCdf> &Cdfs) {
  ErrorCdf Result;
  Result.IsAverage = true;
  if (Cdfs.empty())
    return Result;
  unsigned Counted = 0;
  for (const ErrorCdf &C : Cdfs) {
    if (C.totalWeight() <= 0.0 && !C.IsAverage)
      continue;
    for (unsigned I = 0; I < NumBuckets; ++I)
      Result.AveragedFractions[I] += C.fractionWithin(I);
    Result.AveragedMean += C.meanError();
    ++Counted;
  }
  if (Counted == 0)
    return Result;
  for (unsigned I = 0; I < NumBuckets; ++I)
    Result.AveragedFractions[I] /= Counted;
  Result.AveragedMean /= Counted;
  Result.TotalWeight = Counted;
  Result.ErrorSum = Result.AveragedMean * Counted;
  return Result;
}

std::array<double, ErrorCdf::NumBuckets + 2> ErrorCdf::rawState() const {
  assert(!IsAverage && "averaged CDFs are derived, not journaled");
  std::array<double, NumBuckets + 2> S{};
  for (unsigned I = 0; I < NumBuckets; ++I)
    S[I] = BucketWeight[I];
  S[NumBuckets] = TotalWeight;
  S[NumBuckets + 1] = ErrorSum;
  return S;
}

ErrorCdf ErrorCdf::fromRawState(const std::array<double, NumBuckets + 2> &S) {
  ErrorCdf C;
  for (unsigned I = 0; I < NumBuckets; ++I)
    C.BucketWeight[I] = S[I];
  C.TotalWeight = S[NumBuckets];
  C.ErrorSum = S[NumBuckets + 1];
  return C;
}
