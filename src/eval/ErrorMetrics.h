//===- eval/ErrorMetrics.h - Prediction error analysis ----------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's evaluation metric (§5): for every conditional branch
/// executed by the reference run, the deviation (in percentage points)
/// between its predicted taken-probability and the observed taken
/// fraction. Results aggregate into a cumulative error distribution — the
/// "% of branches predicted to within ±N percentage points" curves of
/// Figures 7 and 8 — both unweighted (each branch equal) and weighted by
/// branch execution count.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_EVAL_ERRORMETRICS_H
#define VRP_EVAL_ERRORMETRICS_H

#include "heuristics/Heuristics.h"
#include "profile/Interpreter.h"

#include <array>
#include <string>
#include <vector>

namespace vrp {

/// One evaluated branch.
struct BranchErrorSample {
  double ErrorPP = 0.0;  ///< |predicted - actual| in percentage points.
  uint64_t Weight = 0;   ///< Reference execution count.
};

/// Compares predictions to the reference profile. Branches the reference
/// run never executed are excluded (their "actual" behavior is undefined),
/// exactly as in the paper.
std::vector<BranchErrorSample> computeErrors(const BranchProbMap &Pred,
                                             const EdgeProfile &Reference);

/// Cumulative error distribution over the paper's buckets
/// (<1, <3, ..., <39 percentage points).
class ErrorCdf {
public:
  static constexpr unsigned NumBuckets = 20;

  /// Upper edge of bucket \p I: 1, 3, 5, ..., 39.
  static double bucketEdge(unsigned I) { return 1.0 + 2.0 * I; }

  void addSample(double ErrorPP, double Weight);

  /// Accumulates all \p Samples (weight 1 each when \p Weighted is false).
  void addSamples(const std::vector<BranchErrorSample> &Samples,
                  bool Weighted);

  /// Fraction of (weighted) branches with error < bucketEdge(I).
  double fractionWithin(unsigned I) const;

  /// Mean absolute error in percentage points.
  double meanError() const {
    return TotalWeight == 0 ? 0.0 : ErrorSum / TotalWeight;
  }

  double totalWeight() const { return TotalWeight; }

  /// Equal-weight average of per-benchmark CDFs ("each benchmark is
  /// weighted equally within its suite").
  static ErrorCdf average(const std::vector<ErrorCdf> &Cdfs);

  /// The exact accumulator state — BucketWeight[0..19], TotalWeight,
  /// ErrorSum — for the suite journal (eval/Journal.h), which must
  /// round-trip curves bit-for-bit across a crash and resume. Only valid
  /// for accumulated (non-averaged) CDFs, which is all the journal ever
  /// stores.
  std::array<double, NumBuckets + 2> rawState() const;

  /// Rebuilds a CDF from rawState() output.
  static ErrorCdf fromRawState(const std::array<double, NumBuckets + 2> &S);

private:
  double BucketWeight[NumBuckets] = {};
  double TotalWeight = 0.0;
  double ErrorSum = 0.0;
  bool IsAverage = false;
  double AveragedFractions[NumBuckets] = {};
  double AveragedMean = 0.0;
};

} // namespace vrp

#endif // VRP_EVAL_ERRORMETRICS_H
