//===- eval/SuiteRunner.cpp - Figure 7/8 evaluation orchestration ----------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "eval/SuiteRunner.h"

#include "profile/ProfilePredictor.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <stdexcept>

using namespace vrp;

std::string FailureInfo::str() const {
  return Benchmark + " [" + Stage + "]: " +
         errorCategoryName(Category) + ": " + Message;
}

const char *vrp::predictorName(PredictorKind Kind) {
  switch (Kind) {
  case PredictorKind::Profiling:
    return "Execution Profiling";
  case PredictorKind::BallLarus:
    return "Ball & Larus Heuristics";
  case PredictorKind::VRP:
    return "Value Range Propagation";
  case PredictorKind::VRPNumeric:
    return "VRP (numeric ranges only)";
  case PredictorKind::NinetyFifty:
    return "90/50 Rule";
  case PredictorKind::Random:
    return "Random Predictions";
  }
  return "?";
}

std::vector<PredictorKind> vrp::allPredictors() {
  return {PredictorKind::Profiling,  PredictorKind::BallLarus,
          PredictorKind::VRP,        PredictorKind::VRPNumeric,
          PredictorKind::NinetyFifty, PredictorKind::Random};
}

namespace {

/// Collects VRP+fallback probabilities over a whole module.
BranchProbMap vrpModulePredictions(Module &M, const VRPOptions &Opts,
                                   double *RangeFraction,
                                   AnalysisCache *Cache = nullptr,
                                   unsigned *DegradedFunctions = nullptr,
                                   VRPStats *Stats = nullptr) {
  ModuleVRPResult R = runModuleVRP(M, Opts, Cache);
  if (DegradedFunctions)
    *DegradedFunctions = R.FunctionsDegraded;
  if (Stats)
    accumulateModuleStats(*Stats, R);
  BranchProbMap Probs;
  unsigned Total = 0, FromRanges = 0;
  for (const auto &F : M.functions()) {
    const FunctionVRPResult *FR = R.forFunction(F.get());
    if (!FR)
      continue;
    FinalPredictionMap Final = finalizePredictions(*F, *FR, Cache);
    if (Stats)
      accumulatePredictionStats(*Stats, Final);
    for (const auto &[Branch, Pred] : Final) {
      Probs[Branch] = Pred.ProbTrue;
      ++Total;
      if (Pred.Source == PredictionSource::Range)
        ++FromRanges;
    }
  }
  if (RangeFraction)
    *RangeFraction =
        Total == 0 ? 0.0 : static_cast<double>(FromRanges) / Total;
  return Probs;
}

} // namespace

BranchProbMap vrp::predictModule(PredictorKind Kind, Module &M,
                                 const EdgeProfile &TrainingProfile,
                                 const VRPOptions &Opts,
                                 uint64_t RandomSeed,
                                 AnalysisCache *Cache) {
  BranchProbMap Probs;
  switch (Kind) {
  case PredictorKind::Profiling:
    for (const auto &F : M.functions()) {
      BranchProbMap Per = predictFromProfile(*F, TrainingProfile);
      Probs.insert(Per.begin(), Per.end());
    }
    return Probs;
  case PredictorKind::BallLarus:
    for (const auto &F : M.functions()) {
      if (Cache) {
        const BranchProbMap &Per = Cache->branchProbs(
            *F, [](const Function &Fn, const LoopInfo &LI,
                   const PostDominatorTree &PDT, const DFSInfo &DFS) {
              return predictBallLarus(Fn, LI, PDT, DFS);
            });
        Probs.insert(Per.begin(), Per.end());
      } else {
        BranchProbMap Per = predictBallLarus(*F);
        Probs.insert(Per.begin(), Per.end());
      }
    }
    return Probs;
  case PredictorKind::VRP:
    // Uses Opts as configured (the ablation bench relies on this); the
    // default configuration has symbolic ranges enabled.
    return vrpModulePredictions(M, Opts, nullptr, Cache);
  case PredictorKind::VRPNumeric: {
    VRPOptions Numeric = Opts;
    Numeric.EnableSymbolicRanges = false;
    return vrpModulePredictions(M, Numeric, nullptr, Cache);
  }
  case PredictorKind::NinetyFifty:
    for (const auto &F : M.functions()) {
      BranchProbMap Per = predictNinetyFifty(*F);
      Probs.insert(Per.begin(), Per.end());
    }
    return Probs;
  case PredictorKind::Random: {
    uint64_t Seed = RandomSeed;
    for (const auto &F : M.functions()) {
      BranchProbMap Per = predictRandom(*F, Seed++);
      Probs.insert(Per.begin(), Per.end());
    }
    return Probs;
  }
  }
  return Probs;
}

namespace {

/// Marks \p Eval failed with both the legacy human-readable Error and the
/// structured FailureInfo.
BenchmarkEvaluation &&failEvaluation(BenchmarkEvaluation &&Eval,
                                     ErrorCategory Category,
                                     std::string Stage, std::string Message,
                                     std::string LegacyError = "") {
  Eval.Ok = false;
  Eval.Error = LegacyError.empty() ? Stage + ": " + Message
                                   : std::move(LegacyError);
  Eval.Failure = FailureInfo{Category, Eval.Name, std::move(Stage),
                             std::move(Message)};
  return std::move(Eval);
}

/// The per-benchmark wall-clock deadline, if any.
class StageDeadline {
public:
  explicit StageDeadline(uint64_t Ms) : Active(Ms != 0) {
    if (Active)
      At = std::chrono::steady_clock::now() + std::chrono::milliseconds(Ms);
  }
  bool blown() const {
    return Active && std::chrono::steady_clock::now() > At;
  }

private:
  bool Active;
  std::chrono::steady_clock::time_point At{};
};

BenchmarkEvaluation evaluateProgramImpl(const BenchmarkProgram &Program,
                                        const VRPOptions &Opts) {
  BenchmarkEvaluation Eval;
  Eval.Name = Program.Name;

  if (Opts.EnableCloning) {
    // Cloning transforms the module, so predictions would describe
    // different static branches than the reference profile collected
    // here. Callers wanting to evaluate cloning must re-profile the
    // transformed module (see bench/ablation.cpp's showcase).
    return failEvaluation(
        std::move(Eval), ErrorCategory::Internal, "config",
        "evaluateProgram cannot score EnableCloning runs; "
        "profile the transformed module instead",
        "evaluateProgram cannot score EnableCloning runs; "
        "profile the transformed module instead");
  }

  StageDeadline Deadline(Opts.Budget.DeadlineMs);

  DiagnosticEngine Diags;
  auto Compiled = compileProgram(Program.Source, Diags, Opts);
  if (!Compiled) {
    const VrpError &E = Compiled.error();
    return failEvaluation(std::move(Eval), E.Category, E.Site, E.Message,
                          "compile error: " + Diags.firstError());
  }
  Module &M = *Compiled.value()->IR;

  if (Deadline.blown())
    return failEvaluation(std::move(Eval), ErrorCategory::BudgetExceeded,
                          "compile", "deadline exceeded after compilation");

  // An explicit interpreter budget tightens (never loosens) the default
  // runaway guard.
  uint64_t MaxSteps = 200'000'000;
  if (Opts.Budget.InterpreterStepLimit != 0)
    MaxSteps = std::min(MaxSteps, Opts.Budget.InterpreterStepLimit);

  // Ground truth from the reference input.
  Interpreter Interp(M);
  EdgeProfile RefProfile;
  ExecutionResult RefRun = Interp.run(Program.RefInput, &RefProfile, MaxSteps);
  if (!RefRun.Ok) {
    // A run truncated by an explicit step budget keeps its counts as a
    // partial profile; a genuine trap (or the default runaway guard)
    // fails the benchmark.
    if (RefRun.StepLimit && Opts.Budget.InterpreterStepLimit != 0)
      Eval.PartialProfile = true;
    else
      return failEvaluation(std::move(Eval), ErrorCategory::InterpreterTrap,
                            "ref-run", RefRun.Error,
                            "reference run failed: " + RefRun.Error);
  }
  Eval.RefSteps = RefRun.Steps;

  // Training profile from the (different) short input.
  EdgeProfile TrainProfile;
  ExecutionResult TrainRun =
      Interp.run(Program.ShortInput, &TrainProfile, MaxSteps);
  if (!TrainRun.Ok) {
    if (TrainRun.StepLimit && Opts.Budget.InterpreterStepLimit != 0)
      Eval.PartialProfile = true;
    else
      return failEvaluation(std::move(Eval), ErrorCategory::InterpreterTrap,
                            "train-run", TrainRun.Error,
                            "training run failed: " + TrainRun.Error);
  }

  if (Deadline.blown())
    return failEvaluation(std::move(Eval), ErrorCategory::BudgetExceeded,
                          "profile", "deadline exceeded after profiling");

  for (const auto &F : M.functions())
    for (const auto &B : F->blocks())
      if (isa<CondBrInst>(B->terminator()))
        ++Eval.StaticBranches;
  Eval.ExecutedBranches = RefProfile.counts().size();

  // One analysis memo spans the whole evaluation of this module: the
  // Ball–Larus fallback and the CFG analyses behind it are computed once
  // per function here instead of once per predictor per function.
  AnalysisCache Cache;

  // Full VRP propagation runs exactly once; the same run yields both the
  // range-predicted share (reported for the §5 discussion) and the
  // PredictorKind::VRP probability map scored below. Budget-degraded
  // functions (step cap or deadline inside runModuleVRP) are counted, not
  // failed: their branches carry Ball–Larus fallback predictions.
  BranchProbMap VRPProbs =
      vrpModulePredictions(M, Opts, &Eval.VRPRangeFraction, &Cache,
                           &Eval.DegradedFunctions, &Eval.VRP);

  if (Deadline.blown())
    return failEvaluation(std::move(Eval), ErrorCategory::BudgetExceeded,
                          "vrp", "deadline exceeded after propagation");

  uint64_t Seed = 0xC0FFEE ^ std::hash<std::string>{}(Program.Name);
  for (PredictorKind Kind : allPredictors()) {
    BranchProbMap Probs =
        Kind == PredictorKind::VRP
            ? VRPProbs
            : predictModule(Kind, M, TrainProfile, Opts, Seed, &Cache);
    std::vector<BranchErrorSample> Samples =
        computeErrors(Probs, RefProfile);
    ErrorCdf Unweighted, Weighted;
    Unweighted.addSamples(Samples, /*Weighted=*/false);
    Weighted.addSamples(Samples, /*Weighted=*/true);
    Eval.Curves[Kind] = {Unweighted, Weighted};
  }
  Eval.Cache = Cache.stats();
  Eval.Ok = true;
  return Eval;
}

} // namespace

BenchmarkEvaluation vrp::evaluateProgram(const BenchmarkProgram &Program,
                                         const VRPOptions &Opts) {
  // Scope fault-injection counters to this benchmark so "site@name:n"
  // specs fire deterministically regardless of thread count or schedule.
  fault::ScopedKey Key(Program.Name);
  try {
    return evaluateProgramImpl(Program, Opts);
  } catch (const std::exception &E) {
    BenchmarkEvaluation Eval;
    Eval.Name = Program.Name;
    return failEvaluation(std::move(Eval), ErrorCategory::Internal,
                          "evaluate", E.what());
  } catch (...) {
    BenchmarkEvaluation Eval;
    Eval.Name = Program.Name;
    return failEvaluation(std::move(Eval), ErrorCategory::Internal,
                          "evaluate", "unknown exception");
  }
}

SuiteEvaluation vrp::evaluateSuite(
    const std::vector<const BenchmarkProgram *> &Programs,
    const VRPOptions &Opts) {
  SuiteEvaluation Suite;
  unsigned Threads = ThreadPool::resolveThreadCount(Opts.Threads);

  // Body of one suite slot. evaluateProgram already converts every
  // pipeline failure into a structured result; the "worker" injection
  // site throws *outside* it to exercise the task-failure aggregation
  // path below.
  auto runSlot = [](const BenchmarkProgram &P, const VRPOptions &SlotOpts) {
    fault::ScopedKey Key(P.Name);
    if (fault::shouldFail("worker"))
      throw std::runtime_error("injected worker-task failure");
    return evaluateProgram(P, SlotOpts);
  };
  auto workerFailure = [](const std::string &Name, std::string Message) {
    BenchmarkEvaluation Eval;
    Eval.Name = Name;
    return failEvaluation(std::move(Eval), ErrorCategory::Internal,
                          "worker-task", std::move(Message));
  };

  if (Threads > 1 && Programs.size() > 1) {
    // Benchmarks fan out across the pool (each evaluateProgram compiles,
    // profiles and predicts its own module — fully independent). The
    // per-program evaluation runs serially inside each worker: the outer
    // fan-out already saturates the pool, and ThreadPool jobs must not
    // nest. Slot I holds program I, so the result order (and every
    // curve) is identical to the serial loop. Escaped task exceptions
    // are ALL collected — every other slot still completes — and each
    // failed slot gets a structured worker-task failure.
    VRPOptions Inner = Opts;
    Inner.Threads = 1;
    ThreadPool Pool(Threads);
    std::vector<BenchmarkEvaluation> Out(Programs.size());
    std::vector<TaskFailure> Failed = Pool.parallelForCollect(
        Programs.size(),
        [&](size_t I) { Out[I] = runSlot(*Programs[I], Inner); });
    for (const TaskFailure &F : Failed)
      Out[F.Index] = workerFailure(Programs[F.Index]->Name,
                                   ParallelError::describe(F.Error));
    Suite.Benchmarks = std::move(Out);
  } else {
    for (const BenchmarkProgram *P : Programs) {
      try {
        Suite.Benchmarks.push_back(runSlot(*P, Opts));
      } catch (const std::exception &E) {
        Suite.Benchmarks.push_back(workerFailure(P->Name, E.what()));
      }
    }
  }

  for (const BenchmarkEvaluation &B : Suite.Benchmarks) {
    Suite.CacheTotals += B.Cache;
    Suite.VRPTotals += B.VRP;
    Suite.DegradedFunctions += B.DegradedFunctions;
    if (B.Failure)
      Suite.Failures.push_back(*B.Failure);
  }

  for (PredictorKind Kind : allPredictors()) {
    std::vector<ErrorCdf> Unweighted, Weighted;
    for (const BenchmarkEvaluation &B : Suite.Benchmarks) {
      if (!B.Ok)
        continue;
      auto It = B.Curves.find(Kind);
      if (It == B.Curves.end())
        continue;
      Unweighted.push_back(It->second.first);
      Weighted.push_back(It->second.second);
    }
    Suite.AveragedUnweighted[Kind] = ErrorCdf::average(Unweighted);
    Suite.AveragedWeighted[Kind] = ErrorCdf::average(Weighted);
  }
  return Suite;
}
