//===- eval/SuiteRunner.cpp - Figure 7/8 evaluation orchestration ----------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "eval/SuiteRunner.h"

#include "profile/ProfilePredictor.h"
#include "support/ThreadPool.h"

using namespace vrp;

const char *vrp::predictorName(PredictorKind Kind) {
  switch (Kind) {
  case PredictorKind::Profiling:
    return "Execution Profiling";
  case PredictorKind::BallLarus:
    return "Ball & Larus Heuristics";
  case PredictorKind::VRP:
    return "Value Range Propagation";
  case PredictorKind::VRPNumeric:
    return "VRP (numeric ranges only)";
  case PredictorKind::NinetyFifty:
    return "90/50 Rule";
  case PredictorKind::Random:
    return "Random Predictions";
  }
  return "?";
}

std::vector<PredictorKind> vrp::allPredictors() {
  return {PredictorKind::Profiling,  PredictorKind::BallLarus,
          PredictorKind::VRP,        PredictorKind::VRPNumeric,
          PredictorKind::NinetyFifty, PredictorKind::Random};
}

namespace {

/// Collects VRP+fallback probabilities over a whole module.
BranchProbMap vrpModulePredictions(Module &M, const VRPOptions &Opts,
                                   double *RangeFraction,
                                   AnalysisCache *Cache = nullptr) {
  ModuleVRPResult R = runModuleVRP(M, Opts, Cache);
  BranchProbMap Probs;
  unsigned Total = 0, FromRanges = 0;
  for (const auto &F : M.functions()) {
    const FunctionVRPResult *FR = R.forFunction(F.get());
    if (!FR)
      continue;
    FinalPredictionMap Final = finalizePredictions(*F, *FR, Cache);
    for (const auto &[Branch, Pred] : Final) {
      Probs[Branch] = Pred.ProbTrue;
      ++Total;
      if (Pred.Source == PredictionSource::Range)
        ++FromRanges;
    }
  }
  if (RangeFraction)
    *RangeFraction =
        Total == 0 ? 0.0 : static_cast<double>(FromRanges) / Total;
  return Probs;
}

} // namespace

BranchProbMap vrp::predictModule(PredictorKind Kind, Module &M,
                                 const EdgeProfile &TrainingProfile,
                                 const VRPOptions &Opts,
                                 uint64_t RandomSeed,
                                 AnalysisCache *Cache) {
  BranchProbMap Probs;
  switch (Kind) {
  case PredictorKind::Profiling:
    for (const auto &F : M.functions()) {
      BranchProbMap Per = predictFromProfile(*F, TrainingProfile);
      Probs.insert(Per.begin(), Per.end());
    }
    return Probs;
  case PredictorKind::BallLarus:
    for (const auto &F : M.functions()) {
      if (Cache) {
        const BranchProbMap &Per = Cache->branchProbs(
            *F, [](const Function &Fn, const LoopInfo &LI,
                   const PostDominatorTree &PDT, const DFSInfo &DFS) {
              return predictBallLarus(Fn, LI, PDT, DFS);
            });
        Probs.insert(Per.begin(), Per.end());
      } else {
        BranchProbMap Per = predictBallLarus(*F);
        Probs.insert(Per.begin(), Per.end());
      }
    }
    return Probs;
  case PredictorKind::VRP:
    // Uses Opts as configured (the ablation bench relies on this); the
    // default configuration has symbolic ranges enabled.
    return vrpModulePredictions(M, Opts, nullptr, Cache);
  case PredictorKind::VRPNumeric: {
    VRPOptions Numeric = Opts;
    Numeric.EnableSymbolicRanges = false;
    return vrpModulePredictions(M, Numeric, nullptr, Cache);
  }
  case PredictorKind::NinetyFifty:
    for (const auto &F : M.functions()) {
      BranchProbMap Per = predictNinetyFifty(*F);
      Probs.insert(Per.begin(), Per.end());
    }
    return Probs;
  case PredictorKind::Random: {
    uint64_t Seed = RandomSeed;
    for (const auto &F : M.functions()) {
      BranchProbMap Per = predictRandom(*F, Seed++);
      Probs.insert(Per.begin(), Per.end());
    }
    return Probs;
  }
  }
  return Probs;
}

BenchmarkEvaluation vrp::evaluateProgram(const BenchmarkProgram &Program,
                                         const VRPOptions &Opts) {
  BenchmarkEvaluation Eval;
  Eval.Name = Program.Name;

  if (Opts.EnableCloning) {
    // Cloning transforms the module, so predictions would describe
    // different static branches than the reference profile collected
    // here. Callers wanting to evaluate cloning must re-profile the
    // transformed module (see bench/ablation.cpp's showcase).
    Eval.Error = "evaluateProgram cannot score EnableCloning runs; "
                 "profile the transformed module instead";
    return Eval;
  }

  DiagnosticEngine Diags;
  auto Compiled = compileToSSA(Program.Source, Diags, Opts);
  if (!Compiled) {
    Eval.Error = "compile error: " + Diags.firstError();
    return Eval;
  }
  Module &M = *Compiled->IR;

  // Ground truth from the reference input.
  Interpreter Interp(M);
  EdgeProfile RefProfile;
  ExecutionResult RefRun = Interp.run(Program.RefInput, &RefProfile);
  if (!RefRun.Ok) {
    Eval.Error = "reference run failed: " + RefRun.Error;
    return Eval;
  }
  Eval.RefSteps = RefRun.Steps;

  // Training profile from the (different) short input.
  EdgeProfile TrainProfile;
  ExecutionResult TrainRun = Interp.run(Program.ShortInput, &TrainProfile);
  if (!TrainRun.Ok) {
    Eval.Error = "training run failed: " + TrainRun.Error;
    return Eval;
  }

  for (const auto &F : M.functions())
    for (const auto &B : F->blocks())
      if (isa<CondBrInst>(B->terminator()))
        ++Eval.StaticBranches;
  Eval.ExecutedBranches = RefProfile.counts().size();

  // One analysis memo spans the whole evaluation of this module: the
  // Ball–Larus fallback and the CFG analyses behind it are computed once
  // per function here instead of once per predictor per function.
  AnalysisCache Cache;

  // Full VRP propagation runs exactly once; the same run yields both the
  // range-predicted share (reported for the §5 discussion) and the
  // PredictorKind::VRP probability map scored below.
  BranchProbMap VRPProbs =
      vrpModulePredictions(M, Opts, &Eval.VRPRangeFraction, &Cache);

  uint64_t Seed = 0xC0FFEE ^ std::hash<std::string>{}(Program.Name);
  for (PredictorKind Kind : allPredictors()) {
    BranchProbMap Probs =
        Kind == PredictorKind::VRP
            ? VRPProbs
            : predictModule(Kind, M, TrainProfile, Opts, Seed, &Cache);
    std::vector<BranchErrorSample> Samples =
        computeErrors(Probs, RefProfile);
    ErrorCdf Unweighted, Weighted;
    Unweighted.addSamples(Samples, /*Weighted=*/false);
    Weighted.addSamples(Samples, /*Weighted=*/true);
    Eval.Curves[Kind] = {Unweighted, Weighted};
  }
  Eval.Cache = Cache.stats();
  Eval.Ok = true;
  return Eval;
}

SuiteEvaluation vrp::evaluateSuite(
    const std::vector<const BenchmarkProgram *> &Programs,
    const VRPOptions &Opts) {
  SuiteEvaluation Suite;
  unsigned Threads = ThreadPool::resolveThreadCount(Opts.Threads);
  if (Threads > 1 && Programs.size() > 1) {
    // Benchmarks fan out across the pool (each evaluateProgram compiles,
    // profiles and predicts its own module — fully independent). The
    // per-program evaluation runs serially inside each worker: the outer
    // fan-out already saturates the pool, and ThreadPool jobs must not
    // nest. parallelMap writes slot I for program I, so the result order
    // (and every curve) is identical to the serial loop.
    VRPOptions Inner = Opts;
    Inner.Threads = 1;
    ThreadPool Pool(Threads);
    Suite.Benchmarks = Pool.parallelMap<BenchmarkEvaluation>(
        Programs.size(),
        [&](size_t I) { return evaluateProgram(*Programs[I], Inner); });
  } else {
    for (const BenchmarkProgram *P : Programs)
      Suite.Benchmarks.push_back(evaluateProgram(*P, Opts));
  }

  for (const BenchmarkEvaluation &B : Suite.Benchmarks)
    Suite.CacheTotals += B.Cache;

  for (PredictorKind Kind : allPredictors()) {
    std::vector<ErrorCdf> Unweighted, Weighted;
    for (const BenchmarkEvaluation &B : Suite.Benchmarks) {
      if (!B.Ok)
        continue;
      auto It = B.Curves.find(Kind);
      if (It == B.Curves.end())
        continue;
      Unweighted.push_back(It->second.first);
      Weighted.push_back(It->second.second);
    }
    Suite.AveragedUnweighted[Kind] = ErrorCdf::average(Unweighted);
    Suite.AveragedWeighted[Kind] = ErrorCdf::average(Weighted);
  }
  return Suite;
}
