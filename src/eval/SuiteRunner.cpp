//===- eval/SuiteRunner.cpp - Figure 7/8 evaluation orchestration ----------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "eval/SuiteRunner.h"

#include "analysis/PersistentCache.h"
#include "eval/Journal.h"
#include "profile/ProfilePredictor.h"
#include "support/FaultInjection.h"
#include "support/Signal.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "vrp/Audit.h"

#include <chrono>
#include <stdexcept>

using namespace vrp;

std::string FailureInfo::str() const {
  return Benchmark + " [" + Stage + "]: " +
         errorCategoryName(Category) + ": " + Message;
}

const char *vrp::predictorName(PredictorKind Kind) {
  switch (Kind) {
  case PredictorKind::Profiling:
    return "Execution Profiling";
  case PredictorKind::BallLarus:
    return "Ball & Larus Heuristics";
  case PredictorKind::VRP:
    return "Value Range Propagation";
  case PredictorKind::VRPNumeric:
    return "VRP (numeric ranges only)";
  case PredictorKind::NinetyFifty:
    return "90/50 Rule";
  case PredictorKind::Random:
    return "Random Predictions";
  }
  return "?";
}

std::vector<PredictorKind> vrp::allPredictors() {
  return {PredictorKind::Profiling,  PredictorKind::BallLarus,
          PredictorKind::VRP,        PredictorKind::VRPNumeric,
          PredictorKind::NinetyFifty, PredictorKind::Random};
}

namespace {

/// Collects VRP+fallback probabilities over a whole module.
BranchProbMap vrpModulePredictions(Module &M, const VRPOptions &Opts,
                                   double *RangeFraction,
                                   AnalysisCache *Cache = nullptr,
                                   unsigned *DegradedFunctions = nullptr,
                                   VRPStats *Stats = nullptr,
                                   PersistentCache *PCache = nullptr) {
  ModuleVRPResult R = runModuleVRP(M, Opts, Cache, PCache);
  if (DegradedFunctions)
    *DegradedFunctions = R.FunctionsDegraded;
  if (Stats)
    accumulateModuleStats(*Stats, R);
  BranchProbMap Probs;
  unsigned Total = 0, FromRanges = 0;
  for (const auto &F : M.functions()) {
    const FunctionVRPResult *FR = R.forFunction(F.get());
    if (!FR)
      continue;
    FinalPredictionMap Final = finalizePredictions(*F, *FR, Cache);
    if (Stats)
      accumulatePredictionStats(*Stats, Final);
    for (const auto &[Branch, Pred] : Final) {
      Probs[Branch] = Pred.ProbTrue;
      ++Total;
      if (Pred.Source == PredictionSource::Range)
        ++FromRanges;
    }
  }
  if (RangeFraction)
    *RangeFraction =
        Total == 0 ? 0.0 : static_cast<double>(FromRanges) / Total;
  return Probs;
}

} // namespace

BranchProbMap vrp::predictModule(PredictorKind Kind, Module &M,
                                 const EdgeProfile &TrainingProfile,
                                 const VRPOptions &Opts,
                                 uint64_t RandomSeed,
                                 AnalysisCache *Cache,
                                 PersistentCache *PCache) {
  BranchProbMap Probs;
  switch (Kind) {
  case PredictorKind::Profiling:
    for (const auto &F : M.functions()) {
      BranchProbMap Per = predictFromProfile(*F, TrainingProfile);
      Probs.insert(Per.begin(), Per.end());
    }
    return Probs;
  case PredictorKind::BallLarus:
    for (const auto &F : M.functions()) {
      if (Cache) {
        const BranchProbMap &Per = Cache->branchProbs(
            *F, [](const Function &Fn, const LoopInfo &LI,
                   const PostDominatorTree &PDT, const DFSInfo &DFS) {
              return predictBallLarus(Fn, LI, PDT, DFS);
            });
        Probs.insert(Per.begin(), Per.end());
      } else {
        BranchProbMap Per = predictBallLarus(*F);
        Probs.insert(Per.begin(), Per.end());
      }
    }
    return Probs;
  case PredictorKind::VRP:
    // Uses Opts as configured (the ablation bench relies on this); the
    // default configuration has symbolic ranges enabled.
    return vrpModulePredictions(M, Opts, nullptr, Cache, nullptr, nullptr,
                                PCache);
  case PredictorKind::VRPNumeric: {
    // The numeric configuration shares the persistent cache: its options
    // fingerprint differs (EnableSymbolicRanges off), so its records can
    // never be confused with the full configuration's.
    VRPOptions Numeric = Opts;
    Numeric.EnableSymbolicRanges = false;
    return vrpModulePredictions(M, Numeric, nullptr, Cache, nullptr, nullptr,
                                PCache);
  }
  case PredictorKind::NinetyFifty:
    for (const auto &F : M.functions()) {
      BranchProbMap Per = predictNinetyFifty(*F);
      Probs.insert(Per.begin(), Per.end());
    }
    return Probs;
  case PredictorKind::Random: {
    uint64_t Seed = RandomSeed;
    for (const auto &F : M.functions()) {
      BranchProbMap Per = predictRandom(*F, Seed++);
      Probs.insert(Per.begin(), Per.end());
    }
    return Probs;
  }
  }
  return Probs;
}

namespace {

/// Marks \p Eval failed with both the legacy human-readable Error and the
/// structured FailureInfo.
BenchmarkEvaluation &&failEvaluation(BenchmarkEvaluation &&Eval,
                                     ErrorCategory Category,
                                     std::string Stage, std::string Message,
                                     std::string LegacyError = "") {
  Eval.Ok = false;
  Eval.Error = LegacyError.empty() ? Stage + ": " + Message
                                   : std::move(LegacyError);
  Eval.Failure = FailureInfo{Category, Eval.Name, std::move(Stage),
                             std::move(Message)};
  return std::move(Eval);
}

/// The per-benchmark wall-clock deadline, if any.
class StageDeadline {
public:
  explicit StageDeadline(uint64_t Ms) : Active(Ms != 0) {
    if (Active)
      At = std::chrono::steady_clock::now() + std::chrono::milliseconds(Ms);
  }
  bool blown() const {
    return Active && std::chrono::steady_clock::now() > At;
  }

private:
  bool Active;
  std::chrono::steady_clock::time_point At{};
};

/// The whole-function ⊥ result a quarantined function is rescored with:
/// the same shape as budget degradation (every branch takes the
/// Ball–Larus fallback) but attributed to the audit — and deliberately
/// NOT counted as a budget degradation.
FunctionVRPResult quarantinedResult(const Function &F, uint64_t Violations) {
  FunctionVRPResult R;
  R.F = &F;
  R.Degraded = true;
  R.DegradeCause = Status::failure(
      ErrorCategory::Internal, "audit",
      "@" + F.name() + " quarantined after " + std::to_string(Violations) +
          (Violations == 1 ? " runtime soundness violation"
                           : " runtime soundness violations"));
  R.BlockProb.assign(F.numBlocks(), 1.0);
  for (const auto &B : F.blocks())
    if (const auto *CBr = dyn_cast_or_null<CondBrInst>(B->terminator()))
      R.Branches[CBr] = BranchPrediction{0.5, false, true};
  return R;
}

BenchmarkEvaluation evaluateProgramImpl(const BenchmarkProgram &Program,
                                        const VRPOptions &Opts,
                                        PersistentCache *PCache) {
  BenchmarkEvaluation Eval;
  Eval.Name = Program.Name;

  if (Opts.EnableCloning) {
    // Cloning transforms the module, so predictions would describe
    // different static branches than the reference profile collected
    // here. Callers wanting to evaluate cloning must re-profile the
    // transformed module (see bench/ablation.cpp's showcase).
    return failEvaluation(
        std::move(Eval), ErrorCategory::Internal, "config",
        "evaluateProgram cannot score EnableCloning runs; "
        "profile the transformed module instead",
        "evaluateProgram cannot score EnableCloning runs; "
        "profile the transformed module instead");
  }

  StageDeadline Deadline(Opts.Budget.DeadlineMs);

  DiagnosticEngine Diags;
  auto Compiled = compileProgram(Program.Source, Diags, Opts);
  if (!Compiled) {
    const VrpError &E = Compiled.error();
    return failEvaluation(std::move(Eval), E.Category, E.Site, E.Message,
                          "compile error: " + Diags.firstError());
  }
  Module &M = *Compiled.value()->IR;

  if (Deadline.blown())
    return failEvaluation(std::move(Eval), ErrorCategory::BudgetExceeded,
                          "compile", "deadline exceeded after compilation");

  // An explicit interpreter budget tightens (never loosens) the default
  // runaway guard.
  uint64_t MaxSteps = 200'000'000;
  if (Opts.Budget.InterpreterStepLimit != 0)
    MaxSteps = std::min(MaxSteps, Opts.Budget.InterpreterStepLimit);

  // Ground truth from the reference input.
  Interpreter Interp(M);
  EdgeProfile RefProfile;
  ExecutionResult RefRun = Interp.run(Program.RefInput, &RefProfile, MaxSteps);
  if (!RefRun.Ok) {
    // A run truncated by an explicit step budget keeps its counts as a
    // partial profile; a genuine trap (or the default runaway guard)
    // fails the benchmark.
    if (RefRun.StepLimit && Opts.Budget.InterpreterStepLimit != 0)
      Eval.PartialProfile = true;
    else
      return failEvaluation(std::move(Eval), ErrorCategory::InterpreterTrap,
                            "ref-run", RefRun.Error,
                            "reference run failed: " + RefRun.Error);
  }
  Eval.RefSteps = RefRun.Steps;

  // Training profile from the (different) short input.
  EdgeProfile TrainProfile;
  ExecutionResult TrainRun =
      Interp.run(Program.ShortInput, &TrainProfile, MaxSteps);
  if (!TrainRun.Ok) {
    if (TrainRun.StepLimit && Opts.Budget.InterpreterStepLimit != 0)
      Eval.PartialProfile = true;
    else
      return failEvaluation(std::move(Eval), ErrorCategory::InterpreterTrap,
                            "train-run", TrainRun.Error,
                            "training run failed: " + TrainRun.Error);
  }

  if (Deadline.blown())
    return failEvaluation(std::move(Eval), ErrorCategory::BudgetExceeded,
                          "profile", "deadline exceeded after profiling");

  for (const auto &F : M.functions())
    for (const auto &B : F->blocks())
      if (isa<CondBrInst>(B->terminator()))
        ++Eval.StaticBranches;
  Eval.ExecutedBranches = RefProfile.counts().size();

  // One analysis memo spans the whole evaluation of this module: the
  // Ball–Larus fallback and the CFG analyses behind it are computed once
  // per function here instead of once per predictor per function.
  AnalysisCache Cache;

  // Full VRP propagation runs exactly once; the same run yields both the
  // range-predicted share (reported for the §5 discussion) and the
  // PredictorKind::VRP probability map scored below. Budget-degraded
  // functions (step cap or deadline inside runModuleVRP) are counted, not
  // failed: their branches carry Ball–Larus fallback predictions.
  ModuleVRPResult VRPResult = runModuleVRP(M, Opts, &Cache, PCache);
  Eval.DegradedFunctions = VRPResult.FunctionsDegraded;
  accumulateModuleStats(Eval.VRP, VRPResult);

  if (Deadline.blown())
    return failEvaluation(std::move(Eval), ErrorCategory::BudgetExceeded,
                          "vrp", "deadline exceeded after propagation");

  // Per-function final predictions, kept apart so the audit below can
  // rebuild a quarantined function's map before anything is scored.
  std::vector<std::pair<const Function *, FinalPredictionMap>> Finals;
  for (const auto &F : M.functions())
    if (const FunctionVRPResult *FR = VRPResult.forFunction(F.get()))
      Finals.emplace_back(F.get(), finalizePredictions(*F, *FR, &Cache));

  if (Opts.Audit) {
    // Soundness sentinel (vrp/Audit.h): replay the reference input with
    // the auditor watching every executed conditional branch. Only this
    // scored VRP run is audited — VRPNumeric re-propagates separately
    // inside predictModule and shares the engine, so auditing one
    // configuration is the bug-detection contract. The replay mirrors
    // the reference run above, so its outcome needs no new handling.
    audit::RangeAuditor Auditor;
    std::vector<const Function *> Audited;
    for (const auto &F : M.functions())
      if (const FunctionVRPResult *FR = VRPResult.forFunction(F.get())) {
        Auditor.addFunction(*F, *FR);
        Audited.push_back(F.get());
      }
    Interp.run(Program.RefInput, nullptr, MaxSteps, &Auditor);
    audit::AuditReport Report = Auditor.takeReport();
    Eval.AuditChecks = Report.totalChecks();
    Eval.SoundnessViolations = Report.totalViolations();
    for (size_t I = 0; I < Report.Functions.size(); ++I) {
      const audit::FunctionAudit &FA = Report.Functions[I];
      if (FA.Violations == 0)
        continue;
      // Quarantine: the function's analysis lied at least once, so none
      // of its range predictions can be trusted. Rescore every one of
      // its branches from the whole-function ⊥ fallback — the same
      // degradation shape a blown budget produces, but attributed to
      // the audit and counted separately.
      const Function *F = Audited[I];
      FunctionVRPResult Q = quarantinedResult(*F, FA.Violations);
      for (auto &[Fn, Final] : Finals)
        if (Fn == F)
          Final = finalizePredictions(*F, Q, &Cache);
      ++Eval.QuarantinedFunctions;
      telemetry::count(telemetry::Counter::FunctionsQuarantined);
      quarantine::Record R;
      R.Why = quarantine::Reason::SoundnessViolation;
      R.Context = Program.Name;
      R.Function = F->name();
      R.Violations = FA.Violations;
      if (!FA.Details.empty())
        R.Detail = FA.Details.front().str();
      Eval.Quarantines.push_back(std::move(R));
    }
    if (Deadline.blown())
      return failEvaluation(std::move(Eval), ErrorCategory::BudgetExceeded,
                            "audit", "deadline exceeded after range audit");
  }

  // Scored VRP probabilities and the range-predicted share, from the
  // (possibly quarantine-rebuilt) final maps.
  BranchProbMap VRPProbs;
  unsigned TotalBranches = 0, FromRanges = 0;
  for (const auto &[F, Final] : Finals) {
    accumulatePredictionStats(Eval.VRP, Final);
    for (const auto &[Branch, Pred] : Final) {
      VRPProbs[Branch] = Pred.ProbTrue;
      ++TotalBranches;
      if (Pred.Source == PredictionSource::Range)
        ++FromRanges;
    }
  }
  Eval.VRPRangeFraction =
      TotalBranches == 0 ? 0.0
                         : static_cast<double>(FromRanges) / TotalBranches;

  uint64_t Seed = 0xC0FFEE ^ std::hash<std::string>{}(Program.Name);
  for (PredictorKind Kind : allPredictors()) {
    BranchProbMap Probs =
        Kind == PredictorKind::VRP
            ? VRPProbs
            : predictModule(Kind, M, TrainProfile, Opts, Seed, &Cache,
                            PCache);
    std::vector<BranchErrorSample> Samples =
        computeErrors(Probs, RefProfile);
    ErrorCdf Unweighted, Weighted;
    Unweighted.addSamples(Samples, /*Weighted=*/false);
    Weighted.addSamples(Samples, /*Weighted=*/true);
    Eval.Curves[Kind] = {Unweighted, Weighted};
  }
  Eval.Cache = Cache.stats();
  Eval.Ok = true;
  return Eval;
}

} // namespace

BenchmarkEvaluation vrp::evaluateProgram(const BenchmarkProgram &Program,
                                         const VRPOptions &Opts) {
  return evaluateProgram(Program, Opts, nullptr);
}

BenchmarkEvaluation vrp::evaluateProgram(const BenchmarkProgram &Program,
                                         const VRPOptions &Opts,
                                         PersistentCache *PCache) {
  // Scope fault-injection counters to this benchmark so "site@name:n"
  // specs fire deterministically regardless of thread count or schedule.
  // The same scope key buffers this benchmark's pending persistent-cache
  // inserts until the verdict below.
  fault::ScopedKey Key(Program.Name);
  auto fail = [&](std::string Message) {
    if (PCache)
      PCache->discardScope();
    BenchmarkEvaluation Eval;
    Eval.Name = Program.Name;
    return failEvaluation(std::move(Eval), ErrorCategory::Internal,
                          "evaluate", std::move(Message));
  };
  try {
    BenchmarkEvaluation Eval = evaluateProgramImpl(Program, Opts, PCache);
    if (PCache) {
      if (Eval.Ok) {
        // A quarantined function's analysis lied at runtime: none of its
        // results may persist — drop its pending inserts and tombstone
        // any stored record that was served for it this run.
        for (const quarantine::Record &R : Eval.Quarantines)
          PCache->expunge(R.Function);
        PCache->commitScope();
      } else {
        PCache->discardScope();
      }
    }
    return Eval;
  } catch (const std::exception &E) {
    return fail(E.what());
  } catch (...) {
    return fail("unknown exception");
  }
}

SuiteEvaluation vrp::evaluateSuite(
    const std::vector<const BenchmarkProgram *> &Programs,
    const VRPOptions &Opts) {
  return evaluateSuite(Programs, Opts, SuiteRunConfig());
}

SuiteEvaluation vrp::evaluateSuite(
    const std::vector<const BenchmarkProgram *> &Programs,
    const VRPOptions &Opts, const SuiteRunConfig &Config) {
  SuiteEvaluation Suite;
  unsigned Threads = ThreadPool::resolveThreadCount(Opts.Threads);

  // Journal setup: load reusable entries (resume) and open the append
  // side. A fingerprint mismatch — different programs or options —
  // silently invalidates the old journal: reuse would merge results of a
  // different experiment.
  std::unique_ptr<journal::SuiteJournal> Journal;
  std::map<std::string, BenchmarkEvaluation> Reused;
  if (!Config.JournalPath.empty()) {
    std::string Fingerprint = journal::fingerprint(Programs, Opts);
    bool Append = false;
    if (Config.Resume) {
      journal::LoadResult Loaded =
          journal::SuiteJournal::load(Config.JournalPath, Fingerprint);
      if (Loaded.HeaderMatched) {
        Reused = std::move(Loaded.Entries);
        Append = true;
      }
    }
    Journal = journal::SuiteJournal::open(Config.JournalPath, Fingerprint,
                                          Append);
  }

  // Persistent result store. Lookups see only the snapshot frozen here, so
  // hit/miss patterns — and every counter derived from them — are the same
  // at any thread count; this run's own results land on disk for the NEXT
  // run. Open failure (unwritable path) degrades to an uncached run.
  std::unique_ptr<PersistentCache> PCache;
  if (!Config.CachePath.empty())
    PCache = PersistentCache::open(Config.CachePath, Config.CacheVerify);

  // Body of one suite slot. evaluateProgram already converts every
  // pipeline failure into a structured result; the "worker" injection
  // site throws *outside* it to exercise the task-failure aggregation
  // path below.
  auto runSlot = [&](const BenchmarkProgram &P, const VRPOptions &SlotOpts) {
    fault::ScopedKey Key(P.Name);
    if (fault::shouldFail("worker"))
      throw std::runtime_error("injected worker-task failure");
    return evaluateProgram(P, SlotOpts, PCache.get());
  };
  auto workerFailure = [](const std::string &Name, std::string Message) {
    BenchmarkEvaluation Eval;
    Eval.Name = Name;
    return failEvaluation(std::move(Eval), ErrorCategory::Internal,
                          "worker-task", std::move(Message));
  };

  // A transient failure is worth one retry: injected faults are counted
  // (the spec's trigger has fired, so the retry runs clean) and budget
  // blowouts are frequently load-dependent.
  auto transient = [](const FailureInfo &F) {
    return F.Category == ErrorCategory::BudgetExceeded ||
           F.Message.find("injected") != std::string::npos;
  };

  // The supervisor wrapper: no exception escapes a slot (so one bad
  // benchmark can never abort the fan-out), and a transient first
  // failure gets exactly one more attempt.
  auto runSupervised = [&](const BenchmarkProgram &P,
                           const VRPOptions &SlotOpts) {
    auto attempt = [&]() -> BenchmarkEvaluation {
      try {
        return runSlot(P, SlotOpts);
      } catch (const std::exception &E) {
        return workerFailure(P.Name, E.what());
      } catch (...) {
        return workerFailure(P.Name, "unknown exception");
      }
    };
    BenchmarkEvaluation Eval = attempt();
    if (Eval.Ok || !Eval.Failure || !transient(*Eval.Failure))
      return Eval;
    telemetry::count(telemetry::Counter::SupervisorRetries);
    BenchmarkEvaluation Second = attempt();
    Second.Retried = true;
    return Second;
  };

  // One slot under journaling: reuse a checkpointed result outright, or
  // evaluate and checkpoint. Journaled failures are reused too — resume
  // must reproduce the uninterrupted run, not improve on it.
  auto evalSlot = [&](const BenchmarkProgram &P,
                      const VRPOptions &SlotOpts) -> BenchmarkEvaluation {
    auto It = Reused.find(P.Name);
    if (It != Reused.end()) {
      telemetry::count(telemetry::Counter::JournalEntriesReused);
      return It->second;
    }
    // Cooperative interruption (SIGTERM/SIGINT via support/Signal.h):
    // benchmarks already running finish and flush normally; ones that
    // have not started yet fail structurally with stage "interrupted"
    // and are deliberately NOT journaled — a journaled failure would be
    // reused by --resume, turning the interruption permanent.
    if (stopsignal::stopRequested()) {
      BenchmarkEvaluation Eval;
      Eval.Name = P.Name;
      return failEvaluation(std::move(Eval), ErrorCategory::Internal,
                            "interrupted",
                            "stop requested before this benchmark started");
    }
    BenchmarkEvaluation Eval = Config.SupervisorRetry
                                   ? runSupervised(P, SlotOpts)
                                   : runSlot(P, SlotOpts);
    if (Journal)
      Journal->append(Eval);
    return Eval;
  };

  if (Threads > 1 && Programs.size() > 1) {
    // Benchmarks fan out across the pool (each evaluateProgram compiles,
    // profiles and predicts its own module — fully independent). The
    // per-program evaluation runs serially inside each worker: the outer
    // fan-out already saturates the pool, and ThreadPool jobs must not
    // nest. Slot I holds program I, so the result order (and every
    // curve) is identical to the serial loop. Escaped task exceptions
    // are ALL collected — every other slot still completes — and each
    // failed slot gets a structured worker-task failure. (Under the
    // supervisor no exception escapes, so Failed stays empty.)
    VRPOptions Inner = Opts;
    Inner.Threads = 1;
    ThreadPool Pool(Threads);
    std::vector<BenchmarkEvaluation> Out(Programs.size());
    std::vector<TaskFailure> Failed = Pool.parallelForCollect(
        Programs.size(),
        [&](size_t I) { Out[I] = evalSlot(*Programs[I], Inner); });
    for (const TaskFailure &F : Failed)
      Out[F.Index] = workerFailure(Programs[F.Index]->Name,
                                   ParallelError::describe(F.Error));
    Suite.Benchmarks = std::move(Out);
  } else {
    for (const BenchmarkProgram *P : Programs) {
      try {
        Suite.Benchmarks.push_back(evalSlot(*P, Opts));
      } catch (const std::exception &E) {
        Suite.Benchmarks.push_back(workerFailure(P->Name, E.what()));
      }
    }
  }

  for (const BenchmarkProgram *P : Programs)
    if (Reused.count(P->Name))
      ++Suite.JournalReused;

  for (const BenchmarkEvaluation &B : Suite.Benchmarks) {
    Suite.CacheTotals += B.Cache;
    Suite.VRPTotals += B.VRP;
    Suite.DegradedFunctions += B.DegradedFunctions;
    Suite.AuditChecks += B.AuditChecks;
    Suite.SoundnessViolations += B.SoundnessViolations;
    Suite.QuarantinedFunctions += B.QuarantinedFunctions;
    if (B.Retried)
      ++Suite.SupervisorRetries;
    for (const quarantine::Record &R : B.Quarantines)
      Suite.Quarantines.push_back(R);
    if (B.Failure)
      Suite.Failures.push_back(*B.Failure);
  }

  for (PredictorKind Kind : allPredictors()) {
    std::vector<ErrorCdf> Unweighted, Weighted;
    for (const BenchmarkEvaluation &B : Suite.Benchmarks) {
      if (!B.Ok)
        continue;
      auto It = B.Curves.find(Kind);
      if (It == B.Curves.end())
        continue;
      Unweighted.push_back(It->second.first);
      Weighted.push_back(It->second.second);
    }
    Suite.AveragedUnweighted[Kind] = ErrorCdf::average(Unweighted);
    Suite.AveragedWeighted[Kind] = ErrorCdf::average(Weighted);
  }

  if (PCache) {
    Suite.PCacheEnabled = true;
    Suite.PCache = PCache->stats();
    Suite.PCacheDivergences = PCache->divergences();
  }
  return Suite;
}
