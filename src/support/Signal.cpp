//===- support/Signal.cpp - Cooperative graceful-stop flag ----------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "support/Signal.h"

#include <atomic>
#include <csignal>

using namespace vrp;

namespace {

std::atomic<bool> StopFlag{false};

extern "C" void vrpStopHandler(int) {
  // Async-signal-safe: a single lock-free atomic store, nothing else.
  StopFlag.store(true, std::memory_order_relaxed);
}

} // namespace

void stopsignal::installHandlers() {
#ifdef _WIN32
  std::signal(SIGTERM, vrpStopHandler);
  std::signal(SIGINT, vrpStopHandler);
#else
  struct sigaction SA;
  SA.sa_handler = vrpStopHandler;
  sigemptyset(&SA.sa_mask);
  // No SA_RESTART: blocking accept/read calls return EINTR so the server
  // loops notice the flag promptly instead of finishing a full timeout.
  SA.sa_flags = 0;
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);
#endif
}

bool stopsignal::stopRequested() {
  return StopFlag.load(std::memory_order_relaxed);
}

void stopsignal::requestStop() {
  StopFlag.store(true, std::memory_order_relaxed);
}

void stopsignal::resetForTests() {
  StopFlag.store(false, std::memory_order_relaxed);
}
