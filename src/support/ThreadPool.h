//===- support/ThreadPool.h - Fixed worker pool -----------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool for the evaluation harness's two hot fan-outs
/// (benchmarks across `evaluateSuite`, functions across `runModuleVRP`).
/// Work is handed out as index ranges [0, N) and results are written to
/// index-addressed slots, so `parallelMap` returns results in exactly the
/// order a serial loop would have produced them — parallelism never changes
/// observable output, only wall-clock time.
///
/// The calling thread participates in every job, so a pool built with
/// `ThreadCount <= 1` (or when `hardware_concurrency` is unknown) spawns no
/// workers at all and degrades to a plain serial loop with no locking on
/// the hot path.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SUPPORT_THREADPOOL_H
#define VRP_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace vrp {

/// One failed task of a parallel job: which index threw, and what.
struct TaskFailure {
  size_t Index = 0;
  std::exception_ptr Error;
};

/// Aggregate of every task failure in one parallel job. Derives from
/// std::runtime_error so callers that only care about "the job failed"
/// keep working; fault-aware callers inspect failures() for the complete
/// per-index picture instead of just the first loser.
class ParallelError : public std::runtime_error {
public:
  explicit ParallelError(std::vector<TaskFailure> Failures);

  /// Every failure, sorted by index.
  const std::vector<TaskFailure> &failures() const { return Failures_; }

  /// Renders one captured failure's message ("<unknown exception>" for
  /// non-std exceptions).
  static std::string describe(const std::exception_ptr &Error);

private:
  std::vector<TaskFailure> Failures_;
};

class ThreadPool {
public:
  /// Hard ceiling on pool size. Requests above it (e.g. an unsigned
  /// wraparound from parsing a negative CLI value) are clamped instead of
  /// exhausting the process's thread quota.
  static constexpr unsigned MaxThreads = 256;

  /// Builds a pool of \p ThreadCount total participants (the caller counts
  /// as one, so ThreadCount-1 workers are spawned; <= 1 spawns none).
  /// Counts above MaxThreads are clamped.
  explicit ThreadPool(unsigned ThreadCount);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total participants including the calling thread (>= 1).
  unsigned threadCount() const { return NumThreads; }

  /// Resolves a requested thread count against the hardware: 0 means
  /// "auto" (hardware_concurrency, or 1 when that is unknown); anything
  /// else is taken literally.
  static unsigned resolveThreadCount(unsigned Requested);

  /// Runs Body(0) .. Body(N-1), distributing indices over the pool. The
  /// caller participates and the call returns only after every index has
  /// completed. Task exceptions never abandon the job: every remaining
  /// index still runs, and the collected failures are thrown as one
  /// ParallelError. One job at a time: parallelFor must not be re-entered
  /// from inside a Body running on the same pool.
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

  /// Like parallelFor, but returns the per-index failures (sorted by
  /// index, empty on full success) instead of throwing. This is the
  /// fault-isolation primitive: evaluateSuite uses it to record failed
  /// benchmarks structurally while the rest of the fan-out completes.
  std::vector<TaskFailure>
  parallelForCollect(size_t N, const std::function<void(size_t)> &Body);

  /// parallelFor that collects Fn(I) into slot I of the result vector, so
  /// the output order matches the serial loop exactly.
  template <typename R, typename Fn>
  std::vector<R> parallelMap(size_t N, Fn &&F) {
    std::vector<R> Out(N);
    parallelFor(N, [&](size_t I) { Out[I] = F(I); });
    return Out;
  }

private:
  /// One batch of indices being distributed.
  struct Job {
    const std::function<void(size_t)> *Body = nullptr;
    size_t N = 0;
    uint64_t Seq = 0;
    std::atomic<size_t> Next{0};
    std::atomic<size_t> Done{0};
    std::vector<TaskFailure> Failures; ///< Guarded by pool mutex.
  };

  void workerLoop();
  void runJob(Job &J);

  unsigned NumThreads = 1;
  std::vector<std::thread> Workers;
  std::mutex M;
  std::condition_variable WorkCv; ///< Workers wait here for a job.
  std::condition_variable DoneCv; ///< The caller waits here for completion.
  std::shared_ptr<Job> Current;
  uint64_t JobSeq = 0;
  bool Stopping = false;
};

} // namespace vrp

#endif // VRP_SUPPORT_THREADPOOL_H
