//===- support/FaultInjection.cpp - Deterministic fault injection ----------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

using namespace vrp;

namespace {

/// One armed "site[@key][:n]" entry.
struct ArmedEntry {
  std::string Site;
  std::string Key;   ///< Empty: matches any key.
  uint64_t Count = 0;
  bool Every = false; ///< ":*" — fire on every matching call.
  bool Fired = false; ///< Counted entries fire once.
};

struct InjectionState {
  std::mutex M;
  std::vector<ArmedEntry> Entries;
  /// Call counters per (site, key); unkeyed entries consult ("site", "").
  std::map<std::pair<std::string, std::string>, uint64_t> Counters;
};

InjectionState &state() {
  static InjectionState S;
  return S;
}

thread_local std::string CurrentKey;

/// Arms from the environment once, before main() runs, so tools and the
/// check.sh smoke stage can inject without code changes.
struct EnvArm {
  EnvArm() {
    if (const char *Spec = std::getenv("VRP_FAULT_INJECT"))
      fault::configure(Spec);
  }
} EnvArmAtStartup;

} // namespace

std::atomic<bool> fault::detail::Armed{false};

bool fault::detail::shouldFailSlow(const char *Site) {
  InjectionState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  if (S.Entries.empty())
    return false;

  // Two counters advance per call: the keyed one (site, current key) and
  // the global one (site, ""). Each armed entry reads the counter that
  // matches its own scope, so keyed and unkeyed entries never interfere.
  uint64_t KeyedCount = S.Counters[{Site, CurrentKey}]++;
  uint64_t GlobalCount = CurrentKey.empty()
                             ? KeyedCount
                             : S.Counters[{Site, std::string()}]++;

  bool Fail = false;
  for (ArmedEntry &E : S.Entries) {
    if (E.Site != Site)
      continue;
    if (!E.Key.empty() && E.Key != CurrentKey)
      continue;
    uint64_t Count = E.Key.empty() ? GlobalCount : KeyedCount;
    if (E.Every || (!E.Fired && Count == E.Count)) {
      E.Fired = true;
      Fail = true;
    }
  }
  return Fail;
}

bool fault::configure(std::string_view Spec) {
  InjectionState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  S.Entries.clear();
  S.Counters.clear();

  bool Valid = true;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string_view::npos)
      End = Spec.size();
    std::string_view Item = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Item.empty())
      continue;

    ArmedEntry E;
    size_t Colon = Item.rfind(':');
    if (Colon != std::string_view::npos) {
      std::string_view CountStr = Item.substr(Colon + 1);
      Item = Item.substr(0, Colon);
      if (CountStr == "*") {
        E.Every = true;
      } else if (!CountStr.empty() &&
                 CountStr.find_first_not_of("0123456789") ==
                     std::string_view::npos) {
        E.Count = std::stoull(std::string(CountStr));
      } else {
        Valid = false;
        break;
      }
    }
    size_t At = Item.find('@');
    if (At != std::string_view::npos) {
      E.Key = std::string(Item.substr(At + 1));
      Item = Item.substr(0, At);
    }
    if (Item.empty()) {
      Valid = false;
      break;
    }
    E.Site = std::string(Item);
    S.Entries.push_back(std::move(E));
  }

  if (!Valid)
    S.Entries.clear();
  detail::Armed.store(!S.Entries.empty(), std::memory_order_relaxed);
  return Valid;
}

void fault::reset() { configure(""); }

fault::ScopedKey::ScopedKey(std::string_view Key)
    : Saved(std::move(CurrentKey)) {
  CurrentKey = std::string(Key);
}

fault::ScopedKey::~ScopedKey() { CurrentKey = std::move(Saved); }

std::string fault::currentKey() { return CurrentKey; }
