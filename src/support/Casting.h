//===- support/Casting.h - isa/cast/dyn_cast --------------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-rolled LLVM-style RTTI kit. A class opts in by providing
/// `static bool classof(const Base *)`; clients then use `isa<T>(V)`,
/// `cast<T>(V)` and `dyn_cast<T>(V)` exactly as in LLVM.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SUPPORT_CASTING_H
#define VRP_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace vrp {

/// Returns true if \p Val dynamically is a \p To (never null-tolerant).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Null-tolerant variant of dyn_cast.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace vrp

#endif // VRP_SUPPORT_CASTING_H
