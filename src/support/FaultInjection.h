//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic injection points for exercising the pipeline's fault
/// tolerance. Injection is compiled in always but costs a single relaxed
/// atomic load when disarmed, so the hot paths carry no measurable
/// overhead in production builds.
///
/// Sites are named strings checked at fixed places in the pipeline:
///
///   "parse"          compileProgram fails with a ParseError
///   "vrp-budget"     propagation degrades as if its step budget ran out
///   "worker"         an evaluateSuite worker task throws
///   "interp"         the interpreter traps before executing main()
///   "unsound-range"  runModuleVRP silently shrinks one computed range
///                    (checked once per function with an auditable
///                    range, in module order) — invisible until the
///                    soundness sentinel (vrp/Audit.h) replays an
///                    execution against it
///   "module-deadline" the interprocedural scheduler treats its module
///                    deadline as expired; probed once per wave boundary
///                    with pending work, on the coordinating thread, so
///                    "module-deadline:n" degrades a deterministic,
///                    schedule-independent set of functions (the fault
///                    clock for deadline-determinism tests)
///
/// A spec arms one or more entries, comma separated:
///
///   site[@key][:n]       fire on the n-th call (0-based) of the site
///   site[@key]:*         fire on every call of the site
///
/// `key` scopes the entry to a dynamic context (the benchmark name):
/// `evaluateProgram` wraps each benchmark in a ScopedKey, so
/// "parse@quicksort:0" fails exactly that benchmark's parse no matter how
/// the suite is fanned out across worker threads — keyed counters are
/// per (site, key) and each benchmark runs wholly on one worker.
/// Unkeyed entries match any context on a global per-site counter (only
/// deterministic for serial runs).
///
/// The spec comes from `configure()` or, at process start, from the
/// `VRP_FAULT_INJECT` environment variable.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SUPPORT_FAULTINJECTION_H
#define VRP_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <string>
#include <string_view>

namespace vrp::fault {

namespace detail {
extern std::atomic<bool> Armed;
bool shouldFailSlow(const char *Site);
} // namespace detail

/// True when any spec is armed at all — a cheap pre-gate for code that
/// would otherwise loop over many shouldFail() probes.
inline bool armed() {
  return detail::Armed.load(std::memory_order_relaxed);
}

/// True when the named site must fail now. Fast path when nothing is
/// armed: one relaxed atomic load, no lock, no string work.
inline bool shouldFail(const char *Site) {
  return detail::Armed.load(std::memory_order_relaxed) &&
         detail::shouldFailSlow(Site);
}

/// Arms the given spec (see file comment), replacing any previous one and
/// resetting all counters. An empty spec disarms injection entirely.
/// Returns false (and disarms) when the spec is malformed.
bool configure(std::string_view Spec);

/// Disarms injection and clears counters. Equivalent to configure("").
void reset();

/// Sets the dynamic injection key (e.g. the benchmark name) for the
/// current thread for the lifetime of the object. Nestable; restores the
/// previous key on destruction.
class ScopedKey {
public:
  explicit ScopedKey(std::string_view Key);
  ~ScopedKey();
  ScopedKey(const ScopedKey &) = delete;
  ScopedKey &operator=(const ScopedKey &) = delete;

private:
  std::string Saved;
};

/// The current thread's injection key ("" when none is active).
std::string currentKey();

} // namespace vrp::fault

#endif // VRP_SUPPORT_FAULTINJECTION_H
