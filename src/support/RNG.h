//===- support/RNG.h - Deterministic random numbers -------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded SplitMix64 generator. Used by the random-prediction baseline,
/// the synthetic workload generators and the property tests; deterministic
/// across platforms so every experiment is exactly reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SUPPORT_RNG_H
#define VRP_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace vrp {

/// SplitMix64: tiny, fast, high-quality 64-bit PRNG with a 64-bit state.
class RNG {
public:
  explicit RNG(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    uint64_t Threshold = (0 - Bound) % Bound;
    for (;;) {
      uint64_t V = next();
      if (V >= Threshold)
        return V % Bound;
    }
  }

  /// Returns a uniform integer in the inclusive range [Lo, Hi].
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    uint64_t Span = static_cast<uint64_t>(Hi) - static_cast<uint64_t>(Lo) + 1;
    // Span == 0 means the full 64-bit range.
    uint64_t V = Span == 0 ? next() : nextBelow(Span);
    return static_cast<int64_t>(static_cast<uint64_t>(Lo) + V);
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  uint64_t State;
};

} // namespace vrp

#endif // VRP_SUPPORT_RNG_H
