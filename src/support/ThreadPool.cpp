//===- support/ThreadPool.cpp - Fixed worker pool --------------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace vrp;

unsigned ThreadPool::resolveThreadCount(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

ThreadPool::ThreadPool(unsigned ThreadCount) {
  NumThreads =
      ThreadCount == 0 ? 1 : ThreadCount > MaxThreads ? MaxThreads : ThreadCount;
  Workers.reserve(NumThreads - 1);
  for (unsigned I = 1; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  WorkCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  uint64_t LastSeq = 0;
  while (true) {
    std::shared_ptr<Job> J;
    {
      std::unique_lock<std::mutex> Lock(M);
      WorkCv.wait(Lock, [&] {
        return Stopping || (Current && Current->Seq != LastSeq);
      });
      if (Stopping)
        return;
      J = Current;
      LastSeq = J->Seq;
    }
    runJob(*J);
  }
}

void ThreadPool::runJob(Job &J) {
  while (true) {
    size_t I = J.Next.fetch_add(1, std::memory_order_relaxed);
    if (I >= J.N)
      return;
    try {
      (*J.Body)(I);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(M);
      if (!J.Error)
        J.Error = std::current_exception();
    }
    if (J.Done.fetch_add(1, std::memory_order_acq_rel) + 1 == J.N) {
      std::lock_guard<std::mutex> Lock(M);
      DoneCv.notify_all();
    }
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Body) {
  if (N == 0)
    return;
  if (Workers.empty()) {
    // Serial fallback: no shared state, no locks.
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }

  auto J = std::make_shared<Job>();
  J->Body = &Body;
  J->N = N;
  {
    std::lock_guard<std::mutex> Lock(M);
    J->Seq = ++JobSeq;
    Current = J;
  }
  WorkCv.notify_all();

  runJob(*J); // The caller is participant number one.

  std::unique_lock<std::mutex> Lock(M);
  DoneCv.wait(Lock, [&] {
    return J->Done.load(std::memory_order_acquire) == J->N;
  });
  if (Current == J)
    Current.reset();
  if (J->Error)
    std::rethrow_exception(J->Error);
}
