//===- support/ThreadPool.cpp - Fixed worker pool --------------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace vrp;

namespace {

std::string describeFailures(const std::vector<TaskFailure> &Failures) {
  std::string Msg =
      std::to_string(Failures.size()) + " parallel task(s) failed:";
  for (const TaskFailure &F : Failures)
    Msg += " [index " + std::to_string(F.Index) + "] " +
           ParallelError::describe(F.Error) + ";";
  if (!Msg.empty() && Msg.back() == ';')
    Msg.pop_back();
  return Msg;
}

} // namespace

ParallelError::ParallelError(std::vector<TaskFailure> Failures)
    : std::runtime_error(describeFailures(Failures)),
      Failures_(std::move(Failures)) {}

std::string ParallelError::describe(const std::exception_ptr &Error) {
  if (!Error)
    return "<no exception captured>";
  try {
    std::rethrow_exception(Error);
  } catch (const std::exception &E) {
    return E.what();
  } catch (...) {
    return "<unknown exception>";
  }
}

unsigned ThreadPool::resolveThreadCount(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

ThreadPool::ThreadPool(unsigned ThreadCount) {
  NumThreads =
      ThreadCount == 0 ? 1 : ThreadCount > MaxThreads ? MaxThreads : ThreadCount;
  Workers.reserve(NumThreads - 1);
  for (unsigned I = 1; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  WorkCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  uint64_t LastSeq = 0;
  while (true) {
    std::shared_ptr<Job> J;
    {
      std::unique_lock<std::mutex> Lock(M);
      WorkCv.wait(Lock, [&] {
        return Stopping || (Current && Current->Seq != LastSeq);
      });
      if (Stopping)
        return;
      J = Current;
      LastSeq = J->Seq;
    }
    runJob(*J);
  }
}

void ThreadPool::runJob(Job &J) {
  while (true) {
    size_t I = J.Next.fetch_add(1, std::memory_order_relaxed);
    if (I >= J.N)
      return;
    try {
      (*J.Body)(I);
    } catch (...) {
      // Collect every failure, not just the first: the suite report needs
      // the complete per-index picture of a faulty fan-out.
      std::lock_guard<std::mutex> Lock(M);
      J.Failures.push_back({I, std::current_exception()});
    }
    if (J.Done.fetch_add(1, std::memory_order_acq_rel) + 1 == J.N) {
      std::lock_guard<std::mutex> Lock(M);
      DoneCv.notify_all();
    }
  }
}

std::vector<TaskFailure>
ThreadPool::parallelForCollect(size_t N,
                               const std::function<void(size_t)> &Body) {
  if (N == 0)
    return {};
  if (Workers.empty()) {
    // Serial fallback: no shared state, no locks. A failed index never
    // stops the remaining ones — same isolation as the parallel path.
    std::vector<TaskFailure> Failures;
    for (size_t I = 0; I < N; ++I) {
      try {
        Body(I);
      } catch (...) {
        Failures.push_back({I, std::current_exception()});
      }
    }
    return Failures;
  }

  auto J = std::make_shared<Job>();
  J->Body = &Body;
  J->N = N;
  {
    std::lock_guard<std::mutex> Lock(M);
    J->Seq = ++JobSeq;
    Current = J;
  }
  WorkCv.notify_all();

  runJob(*J); // The caller is participant number one.

  std::unique_lock<std::mutex> Lock(M);
  DoneCv.wait(Lock, [&] {
    return J->Done.load(std::memory_order_acquire) == J->N;
  });
  if (Current == J)
    Current.reset();
  std::vector<TaskFailure> Failures = std::move(J->Failures);
  Lock.unlock();
  std::sort(Failures.begin(), Failures.end(),
            [](const TaskFailure &A, const TaskFailure &B) {
              return A.Index < B.Index;
            });
  return Failures;
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Body) {
  std::vector<TaskFailure> Failures = parallelForCollect(N, Body);
  if (!Failures.empty())
    throw ParallelError(std::move(Failures));
}
