//===- support/Format.h - Table and number formatting ----------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small text-formatting helpers shared by the evaluation harness and the
/// bench binaries: fixed-precision numbers, percentages, and an aligned
/// ASCII table printer used to regenerate the paper's figures as tables.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SUPPORT_FORMAT_H
#define VRP_SUPPORT_FORMAT_H

#include <ostream>
#include <string>
#include <vector>

namespace vrp {

/// Formats \p Value with \p Precision digits after the decimal point.
std::string formatDouble(double Value, unsigned Precision = 2);

/// Formats \p Fraction (in [0,1]) as a percentage, e.g. 0.914 -> "91.4%".
std::string formatPercent(double Fraction, unsigned Precision = 1);

/// An aligned plain-text table. Add a header row and data rows, then print.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header)
      : Header(std::move(Header)) {}

  /// Appends one data row; it may have fewer cells than the header.
  void addRow(std::vector<std::string> Row) { Rows.push_back(std::move(Row)); }

  /// Renders the table with a separator line under the header.
  void print(std::ostream &OS) const;

  unsigned numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace vrp

#endif // VRP_SUPPORT_FORMAT_H
