//===- support/Telemetry.h - Pipeline metrics and timers --------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Low-overhead counters and scoped monotonic-clock timers for every
/// pipeline pass. The design goals, in priority order:
///
///  1. Near-zero cost while disabled (the default): every hook is one
///     relaxed atomic load and a predictable branch. Disabled-mode
///     overhead on the full evaluation suite is asserted <2% by
///     bench/micro_telemetry.
///  2. Deterministic counters under parallelism: each thread counts into
///     its own shard; a thread's shard is folded into a retired
///     accumulator when the thread exits, and `snapshot()` merges the
///     retired accumulator with the live shards by commutative summation.
///     Counter totals therefore depend only on the work performed — which
///     the parallel evaluation engine guarantees is schedule-independent
///     — so the non-timing half of a stats report is bitwise identical at
///     any thread count.
///  3. Honest timings: wall-clock is inherently nondeterministic, so
///     `toJson()` segregates every timer under a single top-level
///     `"timings"` key that reproducibility checks (scripts/check.sh,
///     TelemetryDeterminismTest) strip before comparing.
///
/// Shard slots are single-writer (the owning thread); `snapshot()` reads
/// them with relaxed loads, so concurrent reporting is race-free without
/// paying for atomic read-modify-write on the hot path.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SUPPORT_TELEMETRY_H
#define VRP_SUPPORT_TELEMETRY_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace vrp {
namespace telemetry {

/// Everything the pipeline counts, one slot per pass-level event. Names
/// (counterName) follow the enum in snake_case and are stable JSON keys.
enum class Counter : unsigned {
  // Front end / middle end, one per pass run.
  ParseRuns,
  SemaRuns,
  IRGenRuns,
  SSAConstructions,
  AssertionInsertions,
  VerifyRuns,
  // Analysis-cache efficiency.
  AnalysisCacheHits,
  AnalysisCacheMisses,
  AnalysisCacheInvalidations,
  // The propagation engine.
  PropagationRuns,
  PropagationSteps,
  ExprEvaluations,
  PhiEvaluations,
  BranchEvaluations,
  SubRangeOps,
  Meets,
  Widenings,
  DerivationsTried,
  DerivationsMatched,
  // Fallback / degradation events.
  BallLarusFallbackBranches,
  BudgetDegradations,
  DerivationStalls,
  // Lattice bookkeeping.
  RangeNormalizations,
  TraceEventsRecorded,
  // Soundness sentinel (vrp/Audit.h) and quarantine.
  AuditChecks,
  SoundnessViolations,
  FunctionsQuarantined,
  // Suite supervision and crash-resilient resume (eval/SuiteRunner.h).
  SupervisorRetries,
  JournalEntriesWritten,
  JournalEntriesReused,
  // Persistent result cache (analysis/PersistentCache.h).
  PersistentCacheHits,
  PersistentCacheMisses,
  PersistentCacheEvictions,
  PersistentCacheBytesWritten,
  // Arena/SoA range storage (vrp/RangeArena.h) and the RangeOps memo.
  // All are functions of the analysis work alone — interning resolves
  // first-writer races to the same id, payload bytes exclude chunk
  // padding, and the arena counts epoch-relative to the last reset() so
  // its process-lifetime contents never leak into a run's totals — so
  // they stay inside the deterministic (non-timing) half of the report.
  RangeInternHits,
  RangeInternMisses,
  RangeArenaPayloadBytes,
  RangeKernelFastPath,
  RangeKernelSlowPath,
  RangeOpMemoHits,
  // Interprocedural SCC-wave scheduler (interproc/InterproceduralVRP.cpp).
  // Sweeps, waves and the (re-)analyzed / reused function counts are pure
  // functions of the module and the dirty set, so they sit in the
  // deterministic half of the report.
  InterprocSweeps,
  InterprocWaves,
  InterprocFunctionsReanalyzed,
  IncrementalFunctionsReused,
  // Floating-point interval kernels and probabilistic load aliasing
  // (docs/DOMAINS.md). Deterministic: pure functions of the analysis work.
  FPRangeKernelOps,
  FPCmpDecided,
  AliasForwardedLoads,
  AliasWeightedLoads,
  AliasBottomLoads,
  // Fleet supervision (serve/Supervisor.h). Unlike everything above,
  // these count *fault* events — crashes, timeouts, failovers — so they
  // are inherently schedule-dependent and live in the
  // determinism-EXEMPT half of any report (docs/TELEMETRY.md).
  ServeWorkerRestarts,
  ServeReroutes,
  ServeBreakerOpen,
  ServeHeartbeatTimeouts,

  NumCounters ///< Sentinel; keep last.
};

/// Scoped wall-clock timers, one per pipeline stage.
enum class Timer : unsigned {
  Parse,
  Sema,
  IRGen,
  SSAConstruction,
  AssertionInsertion,
  Verify,
  Propagation,
  Finalize,

  NumTimers ///< Sentinel; keep last.
};

constexpr unsigned NumCounters = static_cast<unsigned>(Counter::NumCounters);
constexpr unsigned NumTimers = static_cast<unsigned>(Timer::NumTimers);

/// Stable snake_case identifier (used as the JSON key).
const char *counterName(Counter C);
const char *timerName(Timer T);

namespace detail {

/// One thread's slice of the counters. Slots are relaxed atomics written
/// only by the owning thread (plain-add codegen via load+store) so that a
/// concurrent snapshot is formally race-free.
struct Shard {
  std::atomic<uint64_t> Counters[NumCounters];
  std::atomic<uint64_t> TimerNanos[NumTimers];
  std::atomic<uint64_t> TimerCalls[NumTimers];

  Shard() {
    for (auto &C : Counters)
      C.store(0, std::memory_order_relaxed);
    for (auto &T : TimerNanos)
      T.store(0, std::memory_order_relaxed);
    for (auto &T : TimerCalls)
      T.store(0, std::memory_order_relaxed);
  }
};

extern std::atomic<bool> Enabled;

/// This thread's shard, registering it on first use. The shard is folded
/// into the retired accumulator when the thread exits.
Shard &localShard();

/// Single-writer increment: a relaxed load+store pair compiles to a plain
/// add while staying race-free against snapshot()'s relaxed loads.
inline void bump(std::atomic<uint64_t> &Slot, uint64_t N) {
  Slot.store(Slot.load(std::memory_order_relaxed) + N,
             std::memory_order_relaxed);
}

} // namespace detail

/// True when collection is armed. The hot-path hooks check this inline.
inline bool enabled() {
  return detail::Enabled.load(std::memory_order_relaxed);
}

/// Arms or disarms collection process-wide.
void setEnabled(bool On);

/// Adds \p N to \p C in this thread's shard. Free when disabled.
inline void count(Counter C, uint64_t N = 1) {
  if (!enabled())
    return;
  detail::bump(detail::localShard().Counters[static_cast<unsigned>(C)], N);
}

/// Accumulates elapsed wall-clock into a Timer slot for the enclosing
/// scope. Reads the monotonic clock only while telemetry is enabled.
class ScopedTimer {
public:
  explicit ScopedTimer(Timer T) : T(T), Active(enabled()) {
    if (Active)
      Start = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;
  ~ScopedTimer() {
    if (!Active)
      return;
    auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
    detail::Shard &S = detail::localShard();
    detail::bump(S.TimerNanos[static_cast<unsigned>(T)],
                 static_cast<uint64_t>(Ns));
    detail::bump(S.TimerCalls[static_cast<unsigned>(T)], 1);
  }

private:
  Timer T;
  bool Active;
  std::chrono::steady_clock::time_point Start;
};

/// A merged view of every shard (live and retired).
struct Snapshot {
  std::array<uint64_t, NumCounters> Counters{};
  std::array<uint64_t, NumTimers> TimerNanos{};
  std::array<uint64_t, NumTimers> TimerCalls{};

  uint64_t counter(Counter C) const {
    return Counters[static_cast<unsigned>(C)];
  }

  Snapshot &operator+=(const Snapshot &R) {
    for (unsigned I = 0; I < NumCounters; ++I)
      Counters[I] += R.Counters[I];
    for (unsigned I = 0; I < NumTimers; ++I) {
      TimerNanos[I] += R.TimerNanos[I];
      TimerCalls[I] += R.TimerCalls[I];
    }
    return *this;
  }
};

/// Deterministic merge of all shards: the retired accumulator plus every
/// live shard, summed slot-wise (addition is commutative, so the merge
/// order — and hence the thread schedule — cannot affect the result).
Snapshot snapshot();

/// Zeroes every shard and the retired accumulator, then invokes every
/// registered reset hook. Collection state (enabled/disabled) is
/// unchanged.
void reset();

/// Registers \p Hook to run at the end of every reset(). Used by
/// subsystems with process-lifetime state (e.g. the range arena) that
/// report run-relative counters: the hook marks the run boundary so a
/// run's counts depend only on its own work. Hooks run outside the
/// telemetry lock and are never unregistered.
void addResetHook(void (*Hook)());

/// Renders the counter half of \p S as a text table (name, value).
std::string toText(const Snapshot &S);

/// Renders \p S as JSON: a "counters" object in enum order, then —
/// exactly when \p IncludeTimings — a trailing "timings" object with
/// {ns, calls} per timer. Everything outside "timings" is bitwise
/// deterministic for deterministic workloads.
std::string toJson(const Snapshot &S, bool IncludeTimings = true);

} // namespace telemetry
} // namespace vrp

#endif // VRP_SUPPORT_TELEMETRY_H
