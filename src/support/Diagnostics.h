//===- support/Diagnostics.h - Error reporting ------------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine used by the VL lexer, parser and semantic
/// checks. Diagnostics are collected rather than printed so library clients
/// (and tests) can inspect them; tools render them with \c printAll.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SUPPORT_DIAGNOSTICS_H
#define VRP_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <ostream>
#include <string>
#include <vector>

namespace vrp {

/// Severity of a diagnostic. Errors make compilation fail; warnings do not.
enum class DiagKind { Error, Warning, Note };

/// One collected diagnostic message.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics produced while processing one source buffer.
class DiagnosticEngine {
public:
  /// Records an error diagnostic at \p Loc.
  void error(SourceLoc Loc, std::string Message) {
    ++NumErrors;
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
  }

  /// Records a warning diagnostic at \p Loc.
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }

  /// Records a note attached to the previous diagnostic.
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every collected diagnostic to \p OS, one per line, in the
  /// conventional "line:col: severity: message" format.
  void printAll(std::ostream &OS) const;

  /// Returns the first error message, or an empty string if none.
  std::string firstError() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace vrp

#endif // VRP_SUPPORT_DIAGNOSTICS_H
