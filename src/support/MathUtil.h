//===- support/MathUtil.h - Saturating arithmetic helpers -------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Overflow-safe 64-bit arithmetic used by the range-arithmetic kernel.
/// Range bounds saturate at int64 min/max instead of wrapping, which keeps
/// the analysis sound (a saturated bound only ever widens a range).
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SUPPORT_MATHUTIL_H
#define VRP_SUPPORT_MATHUTIL_H

#include <cstdint>
#include <limits>
#include <numeric>

namespace vrp {

constexpr int64_t Int64Min = std::numeric_limits<int64_t>::min();
constexpr int64_t Int64Max = std::numeric_limits<int64_t>::max();

/// Saturating addition: clamps to [Int64Min, Int64Max] on overflow.
inline int64_t saturatingAdd(int64_t A, int64_t B) {
  int64_t R;
  if (!__builtin_add_overflow(A, B, &R))
    return R;
  return B > 0 ? Int64Max : Int64Min;
}

/// Saturating subtraction: clamps to [Int64Min, Int64Max] on overflow.
inline int64_t saturatingSub(int64_t A, int64_t B) {
  int64_t R;
  if (!__builtin_sub_overflow(A, B, &R))
    return R;
  return B < 0 ? Int64Max : Int64Min;
}

/// Saturating multiplication: clamps to [Int64Min, Int64Max] on overflow.
inline int64_t saturatingMul(int64_t A, int64_t B) {
  int64_t R;
  if (!__builtin_mul_overflow(A, B, &R))
    return R;
  bool Negative = (A < 0) != (B < 0);
  return Negative ? Int64Min : Int64Max;
}

/// Saturating negation (negating Int64Min yields Int64Max).
inline int64_t saturatingNeg(int64_t A) {
  return A == Int64Min ? Int64Max : -A;
}

/// Saturating absolute value (|Int64Min| yields Int64Max); std::abs on
/// Int64Min is undefined behavior.
inline int64_t saturatingAbs(int64_t A) {
  return A < 0 ? saturatingNeg(A) : A;
}

/// Floor division (rounds toward negative infinity). \p B must be nonzero.
inline int64_t floorDiv(int64_t A, int64_t B) {
  int64_t Q = A / B;
  if ((A % B != 0) && ((A < 0) != (B < 0)))
    --Q;
  return Q;
}

/// Ceiling division (rounds toward positive infinity). \p B must be nonzero.
inline int64_t ceilDiv(int64_t A, int64_t B) {
  int64_t Q = A / B;
  if ((A % B != 0) && ((A < 0) == (B < 0)))
    ++Q;
  return Q;
}

/// Greatest common divisor of two non-negative strides; gcd(0, X) == X.
inline int64_t strideGcd(int64_t A, int64_t B) {
  return std::gcd(A, B);
}

} // namespace vrp

#endif // VRP_SUPPORT_MATHUTIL_H
