//===- support/Signal.h - Cooperative graceful-stop flag -------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide cooperative stop flag wired to SIGTERM/SIGINT. Signal
/// handlers may only touch async-signal-safe state, so the handler does
/// exactly one thing: set an atomic flag. Long-running drivers poll the
/// flag at safe points — evaluateSuite between benchmark slots, the
/// predictord accept/worker loops between requests — and wind down
/// cleanly: journals keep every completed entry, the persistent cache
/// keeps every committed scope, and nothing dies mid-append.
///
/// The flag is deliberately process-global (signals are process-global)
/// and latching: once requested, stop stays requested until resetForTests.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SUPPORT_SIGNAL_H
#define VRP_SUPPORT_SIGNAL_H

namespace vrp::stopsignal {

/// Installs SIGTERM and SIGINT handlers that set the stop flag. Safe to
/// call more than once. Does NOT alter SIGKILL semantics (nothing can):
/// kill -9 still dies instantly — crash-resilience of the on-disk state
/// is owned by the journal/store formats, not by this facility.
void installHandlers();

/// True once a stop was requested (by a signal or requestStop()).
bool stopRequested();

/// Programmatic equivalent of receiving SIGTERM (used by the daemon's
/// shutdown request and by tests).
void requestStop();

/// Clears the flag. Tests only — a real process stays stopping.
void resetForTests();

} // namespace vrp::stopsignal

#endif // VRP_SUPPORT_SIGNAL_H
