//===- support/Quarantine.cpp - Per-function quarantine records -----------===//

#include "support/Quarantine.h"

#include <algorithm>
#include <tuple>

namespace vrp {
namespace quarantine {

const char *reasonName(Reason R) {
  switch (R) {
  case Reason::SoundnessViolation:
    return "soundness-violation";
  case Reason::InjectedFault:
    return "injected-fault";
  case Reason::BudgetExhausted:
    return "budget-exhausted";
  case Reason::DerivationStall:
    return "derivation-stall";
  case Reason::WorkerFailure:
    return "worker-failure";
  }
  return "unknown";
}

std::string Record::str() const {
  std::string S = "@" + Function;
  if (!Context.empty())
    S += " in " + Context;
  S += ": ";
  S += reasonName(Why);
  if (Why == Reason::SoundnessViolation)
    S += " (" + std::to_string(Violations) +
         (Violations == 1 ? " violation" : " violations") + ")";
  if (!Detail.empty())
    S += ": " + Detail;
  return S;
}

void Registry::add(Record R) {
  std::lock_guard<std::mutex> L(M);
  Records.push_back(std::move(R));
}

bool Registry::isQuarantined(const std::string &Context,
                             const std::string &Function) const {
  std::lock_guard<std::mutex> L(M);
  for (const Record &R : Records)
    if (R.Context == Context && R.Function == Function)
      return true;
  return false;
}

std::vector<Record> Registry::records() const {
  std::vector<Record> Out;
  {
    std::lock_guard<std::mutex> L(M);
    Out = Records;
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const Record &A, const Record &B) {
                     return std::tie(A.Context, A.Function, A.Why) <
                            std::tie(B.Context, B.Function, B.Why);
                   });
  return Out;
}

size_t Registry::size() const {
  std::lock_guard<std::mutex> L(M);
  return Records.size();
}

void Registry::clear() {
  std::lock_guard<std::mutex> L(M);
  Records.clear();
}

} // namespace quarantine
} // namespace vrp
