//===- support/Status.cpp - Structured pipeline errors ---------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "support/Status.h"

using namespace vrp;

const char *vrp::errorCategoryName(ErrorCategory Category) {
  switch (Category) {
  case ErrorCategory::ParseError:
    return "parse error";
  case ErrorCategory::VerifyError:
    return "verify error";
  case ErrorCategory::BudgetExceeded:
    return "budget exceeded";
  case ErrorCategory::InterpreterTrap:
    return "interpreter trap";
  case ErrorCategory::Internal:
    return "internal error";
  }
  return "?";
}

std::string VrpError::str() const {
  std::string S = errorCategoryName(Category);
  if (!Site.empty())
    S += " at " + Site;
  if (!Message.empty())
    S += ": " + Message;
  return S;
}
