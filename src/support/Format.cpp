//===- support/Format.cpp - Table and number formatting -------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <algorithm>
#include <cstdio>

using namespace vrp;

std::string vrp::formatDouble(double Value, unsigned Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", static_cast<int>(Precision), Value);
  return Buf;
}

std::string vrp::formatPercent(double Fraction, unsigned Precision) {
  return formatDouble(Fraction * 100.0, Precision) + "%";
}

void TextTable::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size() && I < Widths.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto printRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Widths.size(); ++I) {
      const std::string Cell = I < Row.size() ? Row[I] : "";
      OS << Cell << std::string(Widths[I] - Cell.size(), ' ');
      if (I + 1 != Widths.size())
        OS << "  ";
    }
    OS << "\n";
  };

  printRow(Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W;
  OS << std::string(Total + 2 * (Widths.empty() ? 0 : Widths.size() - 1), '-')
     << "\n";
  for (const auto &Row : Rows)
    printRow(Row);
}
