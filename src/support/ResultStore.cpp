//===- support/ResultStore.cpp - Durable content-addressed store ----------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "support/ResultStore.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

using namespace vrp;
using namespace vrp::store;

uint64_t store::fnv1a64(const std::string &Data, uint64_t Seed) {
  uint64_t H = Seed;
  for (unsigned char C : Data) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

namespace {

// On-disk layout (docs/CACHE.md): a 16-byte header, then length-prefixed
// records. Everything little-endian, written byte by byte so the format
// is identical on any host.
constexpr char Magic[8] = {'V', 'R', 'P', 'C', 'A', 'C', 'H', 'E'};
constexpr uint32_t LayoutVersion = 1;
/// PayloadLen sentinel marking a tombstone record (key deleted).
constexpr uint32_t TombstoneLen = 0xFFFFFFFFu;
/// Sanity cap on key/payload sizes; anything larger is corruption.
constexpr uint32_t MaxLen = 1u << 28;
constexpr size_t HeaderSize = 16;

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

uint32_t getU32(const std::string &S, size_t At) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(static_cast<unsigned char>(S[At + I]))
         << (8 * I);
  return V;
}

uint64_t getU64(const std::string &S, size_t At) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(static_cast<unsigned char>(S[At + I]))
         << (8 * I);
  return V;
}

std::string headerBytes(uint32_t FormatVersion) {
  std::string H(Magic, sizeof(Magic));
  putU32(H, LayoutVersion);
  putU32(H, FormatVersion);
  return H;
}

/// Record checksum: FNV-1a over the key, continued over the payload
/// (tombstones hash the key alone).
uint64_t recordChecksum(const std::string &Key, const std::string *Payload) {
  uint64_t H = fnv1a64(Key);
  return Payload ? fnv1a64(*Payload, H) : H;
}

std::string recordBytes(const std::string &Key, const std::string *Payload) {
  std::string R;
  putU32(R, static_cast<uint32_t>(Key.size()));
  putU32(R, Payload ? static_cast<uint32_t>(Payload->size()) : TombstoneLen);
  putU64(R, recordChecksum(Key, Payload));
  R += Key;
  if (Payload)
    R += *Payload;
  return R;
}

/// Reads the whole file (empty string when absent/unreadable).
std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In.is_open())
    return {};
  std::string Data((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  return Data;
}

} // namespace

std::unique_ptr<ResultStore> ResultStore::open(const std::string &Path,
                                               uint32_t FormatVersion,
                                               Status *Why) {
  auto fail = [&](std::string Message) -> std::unique_ptr<ResultStore> {
    if (Why)
      *Why = Status::failure(ErrorCategory::Internal, "result-store",
                             std::move(Message));
    return nullptr;
  };

  // Single-writer lock, taken before any byte of the file is trusted: the
  // fd both creates the file if absent and anchors the advisory flock for
  // the store's lifetime. LOCK_NB so a held lock is a structured error,
  // never a silent wait behind another process's appends.
  int Fd = ::open(Path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (Fd < 0)
    return fail(Path + ": cannot open for writing: " +
                std::strerror(errno));
  if (::flock(Fd, LOCK_EX | LOCK_NB) != 0) {
    int E = errno;
    ::close(Fd);
    if (E == EWOULDBLOCK || E == EAGAIN)
      return fail(Path + ": locked by another process");
    return fail(Path + ": cannot lock: " + std::strerror(E));
  }

  auto S = std::unique_ptr<ResultStore>(new ResultStore());
  S->Path = Path;
  S->LockFd = Fd;

  std::string Data = slurp(Path);
  bool Reset = false;
  size_t GoodEnd = HeaderSize;

  if (Data.size() < HeaderSize) {
    Reset = true;
    if (!Data.empty())
      ++S->Stats.CorruptRecords; // A torn header is corruption, not a miss.
  } else if (std::memcmp(Data.data(), Magic, sizeof(Magic)) != 0 ||
             getU32(Data, 8) != LayoutVersion) {
    // Unrecognizable layout: nothing in the file can be trusted.
    Reset = true;
    ++S->Stats.CorruptRecords;
  } else if (getU32(Data, 12) != FormatVersion) {
    // Recognizable layout, stale payload encoding: count what we drop.
    Reset = true;
    size_t At = HeaderSize;
    while (At + 16 <= Data.size()) {
      uint32_t KeyLen = getU32(Data, At);
      uint32_t PayloadLen = getU32(Data, At + 4);
      size_t Body = static_cast<size_t>(KeyLen) +
                    (PayloadLen == TombstoneLen ? 0 : PayloadLen);
      if (KeyLen > MaxLen ||
          (PayloadLen != TombstoneLen && PayloadLen > MaxLen) ||
          At + 16 + Body > Data.size())
        break;
      ++S->Stats.Evictions;
      At += 16 + Body;
    }
  } else {
    // Live file: replay records until the first bad one, then truncate
    // there — a torn tail is the normal state after a killed writer.
    size_t At = HeaderSize;
    while (At < Data.size()) {
      if (At + 16 > Data.size()) {
        ++S->Stats.CorruptRecords;
        break;
      }
      uint32_t KeyLen = getU32(Data, At);
      uint32_t PayloadLen = getU32(Data, At + 4);
      uint64_t Checksum = getU64(Data, At + 8);
      bool Tombstone = PayloadLen == TombstoneLen;
      size_t Body =
          static_cast<size_t>(KeyLen) + (Tombstone ? 0 : PayloadLen);
      if (KeyLen > MaxLen || (!Tombstone && PayloadLen > MaxLen) ||
          At + 16 + Body > Data.size()) {
        ++S->Stats.CorruptRecords;
        break;
      }
      std::string Key = Data.substr(At + 16, KeyLen);
      std::string Payload =
          Tombstone ? std::string() : Data.substr(At + 16 + KeyLen, PayloadLen);
      if (Checksum != recordChecksum(Key, Tombstone ? nullptr : &Payload)) {
        ++S->Stats.CorruptRecords;
        break;
      }
      if (Tombstone) {
        if (S->Snapshot.erase(Key))
          ++S->Stats.Evictions;
      } else {
        if (S->Snapshot.count(Key))
          ++S->Stats.Evictions; // Duplicate key: last occurrence wins.
        S->Snapshot[Key] = std::move(Payload);
      }
      At += 16 + Body;
      GoodEnd = At;
    }
  }

  std::error_code EC;
  if (Reset) {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    if (!Out.is_open())
      return fail(Path + ": cannot open for writing");
    Out << headerBytes(FormatVersion);
    Out.flush();
    if (!Out.good())
      return fail(Path + ": cannot write header");
    S->AppendOffset = HeaderSize;
  } else {
    // Drop any corrupt tail so future appends extend a clean prefix.
    if (GoodEnd < Data.size())
      std::filesystem::resize_file(Path, GoodEnd, EC);
    S->AppendOffset = GoodEnd;
  }
  S->Stats.Records = S->Snapshot.size();
  return S;
}

ResultStore::~ResultStore() {
  // Closing the fd drops the flock; no explicit LOCK_UN needed (and the
  // kernel does the same if the process dies holding it).
  if (LockFd >= 0)
    ::close(LockFd);
}

const std::string *ResultStore::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> L(M);
  auto It = Snapshot.find(Key);
  if (It == Snapshot.end()) {
    ++Stats.Misses;
    return nullptr;
  }
  ++Stats.Hits;
  return &It->second;
}

uint64_t ResultStore::append(const std::string &Key,
                             const std::string &Payload) {
  std::lock_guard<std::mutex> L(M);
  auto [It, Fresh] = Appended.emplace(Key, true);
  (void)It;
  if (!Fresh)
    return 0; // Same content-addressed key this run: identical payload.
  std::string R = recordBytes(Key, &Payload);
  std::ofstream Out(Path, std::ios::binary | std::ios::in | std::ios::out);
  if (!Out.is_open())
    return 0; // Lost durability, never correctness: it is recomputed.
  Out.seekp(static_cast<std::streamoff>(AppendOffset));
  Out << R;
  Out.flush();
  if (!Out.good())
    return 0;
  AppendOffset += R.size();
  Stats.BytesWritten += R.size();
  return R.size();
}

uint64_t ResultStore::appendTombstone(const std::string &Key) {
  std::lock_guard<std::mutex> L(M);
  std::string R = recordBytes(Key, nullptr);
  std::ofstream Out(Path, std::ios::binary | std::ios::in | std::ios::out);
  if (!Out.is_open())
    return 0;
  Out.seekp(static_cast<std::streamoff>(AppendOffset));
  Out << R;
  Out.flush();
  if (!Out.good())
    return 0;
  AppendOffset += R.size();
  Stats.BytesWritten += R.size();
  Appended.erase(Key); // A later append of this key must be written again.
  return R.size();
}

ResultStoreStats ResultStore::stats() const {
  std::lock_guard<std::mutex> L(M);
  return Stats;
}
