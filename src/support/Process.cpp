//===- support/Process.cpp - Child-process spawn/reap helpers --------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "support/Process.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

using namespace vrp;
using namespace vrp::process;

pid_t process::spawn(const std::string &Binary,
                     const std::vector<std::string> &Args, Status *Why) {
  // Build argv before forking: the child may only touch async-signal-safe
  // state, and these strings stay alive in the parent across the exec.
  std::vector<char *> Argv;
  Argv.reserve(Args.size() + 2);
  Argv.push_back(const_cast<char *>(Binary.c_str()));
  for (const std::string &A : Args)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);

  pid_t Pid = ::fork();
  if (Pid < 0) {
    if (Why)
      *Why = Status::failure(ErrorCategory::Internal, "process",
                             std::string("fork: ") + std::strerror(errno));
    return -1;
  }
  if (Pid == 0) {
    // Child. Async-signal-safe calls only from here to exec.
#ifdef __linux__
    // Tie the child's fate to the parent: if the supervisor dies without
    // draining, every worker receives SIGTERM and drains itself.
    ::prctl(PR_SET_PDEATHSIG, SIGTERM);
    // Race: the parent may already be gone. getppid()==1 means we were
    // reparented before prctl took effect; act as if SIGTERM arrived.
    if (::getppid() == 1)
      ::_exit(0);
#endif
    ::execv(Binary.c_str(), Argv.data());
    ::_exit(127); // exec failed; 127 is the shell's "command not found".
  }
  return Pid;
}

ReapResult process::reap(pid_t Pid) {
  ReapResult R;
  int Wstatus = 0;
  pid_t Got = ::waitpid(Pid, &Wstatus, WNOHANG);
  if (Got == 0)
    return R; // Running.
  if (Got < 0) {
    R.State = ChildState::Gone;
    return R;
  }
  if (WIFEXITED(Wstatus)) {
    R.State = ChildState::Exited;
    R.Code = WEXITSTATUS(Wstatus);
  } else if (WIFSIGNALED(Wstatus)) {
    R.State = ChildState::Signaled;
    R.Code = WTERMSIG(Wstatus);
  } else {
    // Stopped/continued notifications are not requested; treat anything
    // else as still running.
    R.State = ChildState::Running;
  }
  return R;
}

ReapResult process::waitWithTimeout(pid_t Pid, uint64_t TimeoutMs) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  while (true) {
    ReapResult R = reap(Pid);
    if (R.State != ChildState::Running)
      return R;
    if (std::chrono::steady_clock::now() >= Deadline)
      return R;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

bool process::signalProcess(pid_t Pid, int Sig) {
  return Pid > 0 && ::kill(Pid, Sig) == 0;
}

std::string process::selfExePath() {
#ifdef __linux__
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N > 0) {
    Buf[N] = '\0';
    return Buf;
  }
#endif
  return std::string();
}
