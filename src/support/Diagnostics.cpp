//===- support/Diagnostics.cpp - Error reporting --------------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace vrp;

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "diag";
}

void DiagnosticEngine::printAll(std::ostream &OS) const {
  for (const Diagnostic &D : Diags)
    OS << D.Loc.str() << ": " << kindName(D.Kind) << ": " << D.Message
       << "\n";
}

std::string DiagnosticEngine::firstError() const {
  for (const Diagnostic &D : Diags)
    if (D.Kind == DiagKind::Error)
      return D.Message;
  return "";
}
