//===- support/ResultStore.h - Durable content-addressed store --*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single-file, append-only, content-addressed result store: the durable
/// half of the persistent analysis cache (analysis/PersistentCache.h). The
/// file is a fixed header followed by length-prefixed binary records, each
/// carrying its own checksum, so a torn or corrupted tail is detected and
/// dropped rather than trusted (docs/CACHE.md specifies the format).
///
/// Concurrency and determinism contract: the in-memory index is FROZEN at
/// open() — lookup() only ever sees what was on disk when the store was
/// opened, never what this process appended since. That makes the
/// hit/miss pattern of a run (and therefore every derived counter and
/// every skipped analysis) a pure function of the on-disk state and the
/// work performed, independent of thread count or schedule — the same
/// contract the parallel evaluation engine keeps everywhere else.
/// append() is thread-safe and flushes each record immediately, so a
/// killed run keeps everything appended so far.
///
/// Corruption is never fatal: a record that fails its checksum, overruns
/// the file, or carries an insane length ends the load at the last good
/// offset — the file is truncated there, the loss is counted, and every
/// dropped key simply misses (and is recomputed and re-appended).
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SUPPORT_RESULTSTORE_H
#define VRP_SUPPORT_RESULTSTORE_H

#include "support/Status.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace vrp {
namespace store {

/// FNV-1a 64-bit over \p Data — the per-record checksum and the hash the
/// persistent cache builds its content fingerprints from.
uint64_t fnv1a64(const std::string &Data, uint64_t Seed = 0xcbf29ce484222325ULL);

/// Store efficiency/health counters (aggregate with +=). All counts are
/// schedule-independent: lookups consult the frozen snapshot and appends
/// are counted per unique key.
struct ResultStoreStats {
  uint64_t Hits = 0;           ///< lookup() found the key in the snapshot.
  uint64_t Misses = 0;         ///< lookup() did not.
  uint64_t Evictions = 0;      ///< Records superseded or dropped at open():
                               ///< duplicate keys (last wins), tombstoned
                               ///< keys, and a whole-file version-mismatch
                               ///< reset.
  uint64_t CorruptRecords = 0; ///< Torn/failed-checksum records dropped at
                               ///< open() (the file is truncated at the
                               ///< last good record; never fatal).
  uint64_t Records = 0;        ///< Live keys in the snapshot after open().
  uint64_t BytesWritten = 0;   ///< Bytes appended by this process.

  ResultStoreStats &operator+=(const ResultStoreStats &R) {
    Hits += R.Hits;
    Misses += R.Misses;
    Evictions += R.Evictions;
    CorruptRecords += R.CorruptRecords;
    Records += R.Records;
    BytesWritten += R.BytesWritten;
    return *this;
  }
};

/// The durable key->payload map. Keys and payloads are opaque byte
/// strings; content addressing (what goes into a key) is the caller's
/// contract — see analysis/PersistentCache.h for the VRP instance.
class ResultStore {
public:
  /// Opens (creating if absent) the store at \p Path. \p FormatVersion is
  /// the CALLER's payload format version: it is stored in the file header
  /// and a mismatch resets the file (every old record is evicted — a new
  /// payload encoding must never be decoded by old rules or vice versa).
  ///
  /// Single-writer contract: open() takes an advisory exclusive file lock
  /// (flock) on the store and holds it for the store's lifetime, so two
  /// processes — e.g. a resident predictord and a stray predictor_tool
  /// --cache run — can never interleave appends into the same file. The
  /// lock is advisory per open-file-description: it also excludes a second
  /// open() within one process, and the kernel releases it automatically
  /// when the process dies (kill -9 included), so a crashed holder never
  /// wedges the store.
  ///
  /// Returns null when the file cannot be opened for writing or the lock
  /// is held elsewhere; \p Why (if non-null) then carries the structured
  /// reason ("result-store" site, "locked by another process" for a lock
  /// conflict).
  static std::unique_ptr<ResultStore> open(const std::string &Path,
                                           uint32_t FormatVersion,
                                           Status *Why = nullptr);

  /// Releases the advisory lock.
  ~ResultStore();

  /// Snapshot lookup. Returns the payload recorded on disk at open() time,
  /// or nullptr. Appends made by this process are deliberately invisible
  /// (see the determinism contract above). Thread-safe.
  const std::string *lookup(const std::string &Key);

  /// Appends one record and flushes it; returns the bytes written (0 when
  /// skipped or the write failed). A key already appended by this process
  /// is skipped silently (content-addressed keys imply an identical
  /// payload, so the second write would be pure bloat). Thread-safe.
  uint64_t append(const std::string &Key, const std::string &Payload);

  /// Appends a tombstone for \p Key: on the next open() the key is absent
  /// (counted as an eviction). The current snapshot is NOT modified —
  /// within-run behavior must stay schedule-independent. Thread-safe.
  /// Returns the bytes written.
  uint64_t appendTombstone(const std::string &Key);

  ResultStoreStats stats() const;

private:
  ResultStore() = default;

  mutable std::mutex M;
  std::string Path;
  int LockFd = -1; ///< Holds the advisory flock for the store's lifetime.
  std::map<std::string, std::string> Snapshot;
  std::map<std::string, bool> Appended; ///< Keys written by this process.
  uint64_t AppendOffset = 0;            ///< Where the next record lands.
  ResultStoreStats Stats;
};

} // namespace store
} // namespace vrp

#endif // VRP_SUPPORT_RESULTSTORE_H
