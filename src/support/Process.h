//===- support/Process.h - Child-process spawn/reap helpers -----*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin POSIX process-management helpers for the fleet supervisor
/// (serve/Supervisor.h): fork+exec a child, poll or wait for its exit,
/// and deliver signals. The sibling of support/Signal.h — Signal.h is
/// the *receiving* side of process lifecycle (a cooperative stop flag),
/// this is the *controlling* side (spawning and reaping workers).
///
/// spawn() is safe to call from a multi-threaded parent: between fork()
/// and execv() the child touches only async-signal-safe state (prctl,
/// execv, _exit). Children are tied to the parent with
/// PR_SET_PDEATHSIG(SIGTERM), so a crashed supervisor can never leak a
/// fleet of orphaned workers — they drain themselves.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SUPPORT_PROCESS_H
#define VRP_SUPPORT_PROCESS_H

#include "support/Status.h"

#include <string>
#include <sys/types.h>
#include <vector>

namespace vrp::process {

/// What a reap() observed about a child.
enum class ChildState {
  Running,  ///< Still alive (non-blocking reap found nothing).
  Exited,   ///< Exited normally; Code is the exit status.
  Signaled, ///< Killed by a signal; Code is the signal number.
  Gone,     ///< Not a child of this process (already reaped, or bad pid).
};

struct ReapResult {
  ChildState State = ChildState::Running;
  int Code = 0; ///< Exit status (Exited) or signal number (Signaled).
};

/// Forks and execs \p Binary with \p Args (argv[0] is \p Binary itself).
/// The child gets PR_SET_PDEATHSIG(SIGTERM) so it drains if the parent
/// dies. Returns the child pid, or -1 with \p Why on failure. An exec
/// failure inside the child surfaces as the child exiting 127 — the
/// caller's reap sees it like any other startup crash.
pid_t spawn(const std::string &Binary, const std::vector<std::string> &Args,
            Status *Why = nullptr);

/// Non-blocking waitpid on \p Pid.
ReapResult reap(pid_t Pid);

/// Blocks up to \p TimeoutMs for \p Pid to exit, polling at a few-ms
/// granularity. Running in the result means the timeout elapsed.
ReapResult waitWithTimeout(pid_t Pid, uint64_t TimeoutMs);

/// kill() wrapper; returns false when the signal could not be delivered
/// (ESRCH — the process is already gone).
bool signalProcess(pid_t Pid, int Sig);

/// Absolute path of the running executable (/proc/self/exe), or empty
/// when the platform cannot say. Used by the supervisor to respawn
/// itself in worker mode without trusting argv[0] or the cwd.
std::string selfExePath();

} // namespace vrp::process

#endif // VRP_SUPPORT_PROCESS_H
