//===- support/Telemetry.cpp - Pipeline metrics and timers ----------------===//

#include "support/Telemetry.h"

#include <mutex>
#include <sstream>
#include <vector>

namespace vrp {
namespace telemetry {

const char *counterName(Counter C) {
  switch (C) {
  case Counter::ParseRuns:
    return "parse_runs";
  case Counter::SemaRuns:
    return "sema_runs";
  case Counter::IRGenRuns:
    return "irgen_runs";
  case Counter::SSAConstructions:
    return "ssa_constructions";
  case Counter::AssertionInsertions:
    return "assertion_insertions";
  case Counter::VerifyRuns:
    return "verify_runs";
  case Counter::AnalysisCacheHits:
    return "analysis_cache_hits";
  case Counter::AnalysisCacheMisses:
    return "analysis_cache_misses";
  case Counter::AnalysisCacheInvalidations:
    return "analysis_cache_invalidations";
  case Counter::PropagationRuns:
    return "propagation_runs";
  case Counter::PropagationSteps:
    return "propagation_steps";
  case Counter::ExprEvaluations:
    return "expr_evaluations";
  case Counter::PhiEvaluations:
    return "phi_evaluations";
  case Counter::BranchEvaluations:
    return "branch_evaluations";
  case Counter::SubRangeOps:
    return "subrange_ops";
  case Counter::Meets:
    return "meets";
  case Counter::Widenings:
    return "widenings";
  case Counter::DerivationsTried:
    return "derivations_tried";
  case Counter::DerivationsMatched:
    return "derivations_matched";
  case Counter::BallLarusFallbackBranches:
    return "ball_larus_fallback_branches";
  case Counter::BudgetDegradations:
    return "budget_degradations";
  case Counter::DerivationStalls:
    return "derivation_stalls";
  case Counter::RangeNormalizations:
    return "range_normalizations";
  case Counter::TraceEventsRecorded:
    return "trace_events_recorded";
  case Counter::AuditChecks:
    return "audit_checks";
  case Counter::SoundnessViolations:
    return "soundness_violations";
  case Counter::FunctionsQuarantined:
    return "functions_quarantined";
  case Counter::SupervisorRetries:
    return "supervisor_retries";
  case Counter::JournalEntriesWritten:
    return "journal_entries_written";
  case Counter::JournalEntriesReused:
    return "journal_entries_reused";
  case Counter::PersistentCacheHits:
    return "pcache_hits";
  case Counter::PersistentCacheMisses:
    return "pcache_misses";
  case Counter::PersistentCacheEvictions:
    return "pcache_evictions";
  case Counter::PersistentCacheBytesWritten:
    return "pcache_bytes_written";
  case Counter::RangeInternHits:
    return "range_intern_hits";
  case Counter::RangeInternMisses:
    return "range_intern_misses";
  case Counter::RangeArenaPayloadBytes:
    return "range_arena_payload_bytes";
  case Counter::RangeKernelFastPath:
    return "range_kernel_fast_path";
  case Counter::RangeKernelSlowPath:
    return "range_kernel_slow_path";
  case Counter::RangeOpMemoHits:
    return "range_op_memo_hits";
  case Counter::InterprocSweeps:
    return "interproc_sweeps";
  case Counter::InterprocWaves:
    return "interproc_waves";
  case Counter::InterprocFunctionsReanalyzed:
    return "interproc_functions_reanalyzed";
  case Counter::IncrementalFunctionsReused:
    return "incremental_functions_reused";
  case Counter::FPRangeKernelOps:
    return "fp_range_kernel_ops";
  case Counter::FPCmpDecided:
    return "fp_cmp_decided";
  case Counter::AliasForwardedLoads:
    return "alias_forwarded_loads";
  case Counter::AliasWeightedLoads:
    return "alias_weighted_loads";
  case Counter::AliasBottomLoads:
    return "alias_bottom_loads";
  case Counter::ServeWorkerRestarts:
    return "serve_worker_restarts";
  case Counter::ServeReroutes:
    return "serve_reroutes";
  case Counter::ServeBreakerOpen:
    return "serve_breaker_open";
  case Counter::ServeHeartbeatTimeouts:
    return "serve_heartbeat_timeouts";
  case Counter::NumCounters:
    break;
  }
  return "unknown_counter";
}

const char *timerName(Timer T) {
  switch (T) {
  case Timer::Parse:
    return "parse";
  case Timer::Sema:
    return "sema";
  case Timer::IRGen:
    return "irgen";
  case Timer::SSAConstruction:
    return "ssa_construction";
  case Timer::AssertionInsertion:
    return "assertion_insertion";
  case Timer::Verify:
    return "verify";
  case Timer::Propagation:
    return "propagation";
  case Timer::Finalize:
    return "finalize";
  case Timer::NumTimers:
    break;
  }
  return "unknown_timer";
}

namespace detail {

std::atomic<bool> Enabled{false};

namespace {

/// All shard bookkeeping lives behind one mutex: the shard list, the
/// retired accumulator, and reset(). The hot path (bump) never takes it.
struct Registry {
  std::mutex M;
  std::vector<Shard *> Live;
  Snapshot Retired;
  std::vector<void (*)()> ResetHooks;
};

Registry &registry() {
  static Registry R;
  return R;
}

void foldInto(Snapshot &Out, const Shard &S) {
  for (unsigned I = 0; I < NumCounters; ++I)
    Out.Counters[I] += S.Counters[I].load(std::memory_order_relaxed);
  for (unsigned I = 0; I < NumTimers; ++I) {
    Out.TimerNanos[I] += S.TimerNanos[I].load(std::memory_order_relaxed);
    Out.TimerCalls[I] += S.TimerCalls[I].load(std::memory_order_relaxed);
  }
}

void zeroShard(Shard &S) {
  for (auto &C : S.Counters)
    C.store(0, std::memory_order_relaxed);
  for (auto &T : S.TimerNanos)
    T.store(0, std::memory_order_relaxed);
  for (auto &T : S.TimerCalls)
    T.store(0, std::memory_order_relaxed);
}

/// Owns one thread's shard; on thread exit folds it into Retired so its
/// counts survive (pool workers come and go between snapshots).
struct ShardHandle {
  Shard S;
  ShardHandle() {
    Registry &R = registry();
    std::lock_guard<std::mutex> L(R.M);
    R.Live.push_back(&S);
  }
  ~ShardHandle() {
    Registry &R = registry();
    std::lock_guard<std::mutex> L(R.M);
    foldInto(R.Retired, S);
    for (auto It = R.Live.begin(); It != R.Live.end(); ++It) {
      if (*It == &S) {
        R.Live.erase(It);
        break;
      }
    }
  }
};

} // namespace

Shard &localShard() {
  thread_local ShardHandle Handle;
  return Handle.S;
}

} // namespace detail

void setEnabled(bool On) {
  detail::Enabled.store(On, std::memory_order_relaxed);
}

Snapshot snapshot() {
  detail::Registry &R = detail::registry();
  std::lock_guard<std::mutex> L(R.M);
  Snapshot Out = R.Retired;
  for (const detail::Shard *S : R.Live)
    detail::foldInto(Out, *S);
  return Out;
}

void reset() {
  detail::Registry &R = detail::registry();
  std::vector<void (*)()> Hooks;
  {
    std::lock_guard<std::mutex> L(R.M);
    R.Retired = Snapshot{};
    // Zero live shards in place: their owning threads cache the pointer,
    // so the storage must stay put.
    for (detail::Shard *S : R.Live)
      detail::zeroShard(*S);
    Hooks = R.ResetHooks;
  }
  // Outside the lock: a hook may take its own subsystem lock which is
  // also held around telemetry::count (and hence shard registration).
  for (void (*Hook)() : Hooks)
    Hook();
}

void addResetHook(void (*Hook)()) {
  detail::Registry &R = detail::registry();
  std::lock_guard<std::mutex> L(R.M);
  R.ResetHooks.push_back(Hook);
}

std::string toText(const Snapshot &S) {
  std::ostringstream OS;
  for (unsigned I = 0; I < NumCounters; ++I)
    OS << counterName(static_cast<Counter>(I)) << " " << S.Counters[I]
       << "\n";
  return OS.str();
}

std::string toJson(const Snapshot &S, bool IncludeTimings) {
  std::ostringstream OS;
  OS << "{\n  \"counters\": {\n";
  for (unsigned I = 0; I < NumCounters; ++I) {
    OS << "    \"" << counterName(static_cast<Counter>(I))
       << "\": " << S.Counters[I];
    OS << (I + 1 < NumCounters ? ",\n" : "\n");
  }
  OS << "  }";
  if (IncludeTimings) {
    OS << ",\n  \"timings\": {\n";
    for (unsigned I = 0; I < NumTimers; ++I) {
      OS << "    \"" << timerName(static_cast<Timer>(I)) << "\": {\"ns\": "
         << S.TimerNanos[I] << ", \"calls\": " << S.TimerCalls[I] << "}";
      OS << (I + 1 < NumTimers ? ",\n" : "\n");
    }
    OS << "  }";
  }
  OS << "\n}\n";
  return OS.str();
}

} // namespace telemetry
} // namespace vrp
