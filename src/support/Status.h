//===- support/Status.h - Structured pipeline errors ------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight `StatusOr<T>`-style result type for the pipeline's fault
/// boundaries. The paper's algorithm degrades gracefully (⊥ ranges fall
/// back to heuristics); this gives the *infrastructure* the same contract:
/// every stage failure is a categorized, observable value instead of an
/// abort or an escaping exception, so one bad program or one exhausted
/// budget never takes down a whole `evaluateSuite` run.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SUPPORT_STATUS_H
#define VRP_SUPPORT_STATUS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace vrp {

/// What went wrong, at the granularity the suite report aggregates over.
enum class ErrorCategory {
  ParseError,      ///< Front-end rejected the input (lex/parse/sema).
  VerifyError,     ///< IR or SSA verification failed after a transform.
  BudgetExceeded,  ///< A resource budget (steps, deadline) ran out.
  InterpreterTrap, ///< Execution trapped (OOB, runaway, injected trap).
  Internal,        ///< Everything else: escaped exceptions, logic errors.
};

const char *errorCategoryName(ErrorCategory Category);

/// One structured pipeline error: category + the stage/site that failed +
/// a human-readable message.
struct VrpError {
  ErrorCategory Category = ErrorCategory::Internal;
  std::string Site;    ///< Pipeline stage or injection site ("parse", ...).
  std::string Message;

  /// "category at site: message" rendering for logs and reports.
  std::string str() const;
};

/// Success-or-VrpError for stages with no payload.
class Status {
public:
  Status() = default;

  static Status success() { return Status(); }
  static Status failure(ErrorCategory Category, std::string Site,
                        std::string Message) {
    Status S;
    S.Err = VrpError{Category, std::move(Site), std::move(Message)};
    return S;
  }

  bool ok() const { return !Err.has_value(); }
  const VrpError &error() const {
    assert(Err && "error() on an ok Status");
    return *Err;
  }

private:
  std::optional<VrpError> Err;
};

/// Value-or-VrpError. Deliberately minimal: implicit construction from
/// either side, `ok()`, `value()` (asserting), `error()` (asserting).
template <typename T> class StatusOr {
public:
  StatusOr(T Value) : Val(std::move(Value)) {}
  StatusOr(VrpError Error) : Err(std::move(Error)) {}

  static StatusOr failure(ErrorCategory Category, std::string Site,
                          std::string Message) {
    return StatusOr(
        VrpError{Category, std::move(Site), std::move(Message)});
  }

  bool ok() const { return Val.has_value(); }
  explicit operator bool() const { return ok(); }

  T &value() {
    assert(Val && "value() on a failed StatusOr");
    return *Val;
  }
  const T &value() const {
    assert(Val && "value() on a failed StatusOr");
    return *Val;
  }
  T &&takeValue() {
    assert(Val && "takeValue() on a failed StatusOr");
    return std::move(*Val);
  }

  const VrpError &error() const {
    assert(Err && "error() on an ok StatusOr");
    return *Err;
  }

  /// The status view of this result (copies the error if any).
  Status status() const {
    return ok() ? Status::success()
                : Status::failure(Err->Category, Err->Site, Err->Message);
  }

private:
  std::optional<T> Val;
  std::optional<VrpError> Err;
};

} // namespace vrp

#endif // VRP_SUPPORT_STATUS_H
