//===- support/SourceLoc.h - Source locations -------------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, "Accurate Static Branch
// Prediction by Value Range Propagation", PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight line/column source locations for the VL front end.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SUPPORT_SOURCELOC_H
#define VRP_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace vrp {

/// A position in a VL source buffer. Lines and columns are 1-based; a
/// default-constructed location is "unknown" (line 0).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &RHS) const {
    return Line == RHS.Line && Col == RHS.Col;
  }
  bool operator!=(const SourceLoc &RHS) const { return !(*this == RHS); }

  /// Renders the location as "line:col" (or "<unknown>").
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

} // namespace vrp

#endif // VRP_SUPPORT_SOURCELOC_H
