//===- support/Quarantine.h - Per-function quarantine records ---*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quarantine bookkeeping for the soundness sentinel (vrp/Audit.h) and the
/// suite supervisor (eval/SuiteRunner.h). A *quarantined* function is one
/// whose VRP result has been discarded at runtime — because the audit
/// observed a value outside its computed range, because a fault was
/// injected into it, or because analysis blew a budget — and whose branch
/// predictions have been rebuilt from the Ball–Larus heuristic fallback
/// alone. Quarantine is a degradation, never an abort: the containing
/// benchmark and suite keep running and report the record.
///
/// This layer is strings-only on purpose: it sits at the bottom of the
/// library stack (support/) so vrp/, eval/, and the tools can all share
/// the record type without new link edges.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SUPPORT_QUARANTINE_H
#define VRP_SUPPORT_QUARANTINE_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace vrp {
namespace quarantine {

/// Why a function's VRP result was discarded.
enum class Reason {
  SoundnessViolation, ///< Audit saw a value outside its computed range.
  InjectedFault,      ///< A fault-injection site fired (testing only).
  BudgetExhausted,    ///< Propagation step budget / deadline tripped.
  DerivationStall,    ///< A loop-carried φ never stabilized.
  WorkerFailure,      ///< The evaluation worker itself failed.
};

/// Stable lowercase-with-dashes name, used in reports and JSON.
const char *reasonName(Reason R);

/// One quarantined function.
struct Record {
  Reason Why = Reason::SoundnessViolation;
  /// The enclosing unit — benchmark name in suite runs, file name in
  /// single-file runs.
  std::string Context;
  /// The function name, without the leading '@'.
  std::string Function;
  /// Human-readable specifics (first witness value, offending range, ...).
  std::string Detail;
  /// Violation count when Why == SoundnessViolation, else 0.
  uint64_t Violations = 0;

  /// One-line rendering: "@fn in ctx: reason (detail)".
  std::string str() const;
};

/// Thread-safe collection of quarantine records. Suite evaluation fans
/// benchmarks out across a pool; each worker adds records concurrently
/// and the reporter reads them once the run settles.
class Registry {
public:
  void add(Record R);

  /// True when \p Function in \p Context has at least one record.
  bool isQuarantined(const std::string &Context,
                     const std::string &Function) const;

  /// All records, sorted by (Context, Function, reason) so reports and
  /// JSON output are deterministic regardless of worker interleaving.
  std::vector<Record> records() const;

  size_t size() const;
  void clear();

private:
  mutable std::mutex M;
  std::vector<Record> Records;
};

} // namespace quarantine
} // namespace vrp

#endif // VRP_SUPPORT_QUARANTINE_H
