//===- vrp/RangeOps.cpp - Arithmetic on weighted value ranges --------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "vrp/RangeOps.h"

#include "support/Telemetry.h"
#include "vrp/RangeArena.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

using namespace vrp;

//===----------------------------------------------------------------------===//
// Small numeric helpers
//===----------------------------------------------------------------------===//

int64_t vrp::pointsBelow(const SubRange &S, int64_t C) {
  assert(S.isNumeric() && "pointsBelow needs a numeric subrange");
  if (C <= S.Lo.Offset)
    return 0;
  int64_t Count = *S.count();
  if (C > S.Hi.Offset)
    return Count;
  if (S.Stride == 0)
    return S.Lo.Offset < C ? 1 : 0;
  // Points Lo + i*Stride < C  <=>  i <= (C - Lo - 1) / Stride.
  __int128 Span = static_cast<__int128>(C) - 1 - S.Lo.Offset;
  __int128 N = Span / S.Stride + 1;
  return N > Count ? Count : static_cast<int64_t>(N);
}

namespace {

/// Extended gcd: returns g and x,y with a*x + b*y == g.
int64_t extendedGcd(int64_t A, int64_t B, int64_t &X, int64_t &Y) {
  if (B == 0) {
    X = 1;
    Y = 0;
    return A;
  }
  int64_t X1, Y1;
  int64_t G = extendedGcd(B, A % B, X1, Y1);
  X = Y1;
  Y = X1 - (A / B) * Y1;
  return G;
}

/// Aligns \p Hi down onto the lattice Lo + k*Stride (Stride > 0). All
/// arithmetic in 128 bits: spans over near-full int64 ranges overflow the
/// intermediate otherwise (the result itself always fits).
int64_t alignDown(int64_t Lo, int64_t Stride, int64_t Hi) {
  __int128 Span = static_cast<__int128>(Hi) - Lo;
  __int128 Aligned = static_cast<__int128>(Lo) + (Span / Stride) * Stride;
  return static_cast<int64_t>(Aligned);
}

/// Aligns \p Lo up onto the lattice with anchor Hi - k*Stride (Stride > 0).
int64_t alignUp(int64_t Hi, int64_t Stride, int64_t Lo) {
  __int128 Span = static_cast<__int128>(Hi) - Lo;
  __int128 Aligned = static_cast<__int128>(Hi) - (Span / Stride) * Stride;
  return static_cast<int64_t>(Aligned);
}

/// Builds a numeric subrange after clamping/validating the stride.
SubRange makePiece(double Prob, int64_t Lo, int64_t Hi, int64_t Stride) {
  if (Lo == Hi)
    return SubRange::numeric(Prob, Lo, Hi, 0);
  if (Stride <= 0)
    Stride = 1;
  __int128 Span = static_cast<__int128>(Hi) - Lo;
  if (Span % Stride != 0)
    Stride = 1;
  return SubRange::numeric(Prob, Lo, Hi, Stride);
}

/// Combines two bounds for addition; fails when both are symbolic.
bool addBounds(const Bound &A, const Bound &B, Bound &Out) {
  if (A.Sym && B.Sym)
    return false;
  Out = Bound(A.Sym ? A.Sym : B.Sym, saturatingAdd(A.Offset, B.Offset));
  return true;
}

/// Combines bounds for subtraction A - B; same-symbol bounds cancel.
bool subBounds(const Bound &A, const Bound &B, Bound &Out) {
  if (B.Sym) {
    if (A.Sym != B.Sym)
      return false;
    Out = Bound(saturatingSub(A.Offset, B.Offset)); // Symbols cancel.
    return true;
  }
  Out = Bound(A.Sym, saturatingSub(A.Offset, B.Offset));
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Pairwise arithmetic kernels
//===----------------------------------------------------------------------===//

bool RangeOps::pairAdd(const SubRange &A, const SubRange &B,
                       std::vector<SubRange> &Out) {
  Bound Lo, Hi;
  if (!addBounds(A.Lo, B.Lo, Lo) || !addBounds(A.Hi, B.Hi, Hi))
    return false;
  int64_t Stride = strideGcd(A.Stride, B.Stride);
  if (Lo.isNumeric() && Hi.isNumeric()) {
    Out.push_back(makePiece(A.Prob * B.Prob, Lo.Offset, Hi.Offset, Stride));
  } else {
    if (Lo == Hi)
      Stride = 0;
    else if (Stride == 0)
      Stride = 1;
    Out.push_back(SubRange(A.Prob * B.Prob, Lo, Hi, Stride));
  }
  return true;
}

bool RangeOps::pairSub(const SubRange &A, const SubRange &B,
                       std::vector<SubRange> &Out) {
  Bound Lo, Hi;
  if (!subBounds(A.Lo, B.Hi, Lo) || !subBounds(A.Hi, B.Lo, Hi))
    return false;
  int64_t Stride = strideGcd(A.Stride, B.Stride);
  if (Lo.isNumeric() && Hi.isNumeric()) {
    if (Lo.Offset > Hi.Offset)
      return false; // Mixed symbolic cancellation produced nonsense.
    Out.push_back(makePiece(A.Prob * B.Prob, Lo.Offset, Hi.Offset, Stride));
  } else {
    if (Lo == Hi)
      Stride = 0;
    else if (Stride == 0)
      Stride = 1;
    Out.push_back(SubRange(A.Prob * B.Prob, Lo, Hi, Stride));
  }
  return true;
}

bool RangeOps::pairMul(const SubRange &A, const SubRange &B,
                       std::vector<SubRange> &Out) {
  double Prob = A.Prob * B.Prob;
  // Symbolic operands only survive multiplication by 0 or 1.
  if (!A.isNumeric() || !B.isNumeric()) {
    const SubRange &Sym = A.isNumeric() ? B : A;
    const SubRange &Num = A.isNumeric() ? A : B;
    if (!Num.isNumeric() || !Num.isSingleton())
      return false;
    if (Num.Lo.Offset == 0) {
      Out.push_back(SubRange::singleton(Prob, 0));
      return true;
    }
    if (Num.Lo.Offset == 1) {
      SubRange Copy = Sym;
      Copy.Prob = Prob;
      Out.push_back(Copy);
      return true;
    }
    return false;
  }

  int64_t Corners[4] = {
      saturatingMul(A.Lo.Offset, B.Lo.Offset),
      saturatingMul(A.Lo.Offset, B.Hi.Offset),
      saturatingMul(A.Hi.Offset, B.Lo.Offset),
      saturatingMul(A.Hi.Offset, B.Hi.Offset),
  };
  int64_t Lo = *std::min_element(Corners, Corners + 4);
  int64_t Hi = *std::max_element(Corners, Corners + 4);

  int64_t Stride = 1;
  if (B.isSingleton())
    Stride = saturatingMul(A.Stride, saturatingAbs(B.Lo.Offset));
  else if (A.isSingleton())
    Stride = saturatingMul(B.Stride, saturatingAbs(A.Lo.Offset));
  Out.push_back(makePiece(Prob, Lo, Hi, Stride));
  return true;
}

bool RangeOps::pairDiv(const SubRange &A, const SubRange &B,
                       std::vector<SubRange> &Out) {
  if (!A.isNumeric() || !B.isNumeric())
    return false;
  double Prob = A.Prob * B.Prob;

  // Divisor candidates: extremes plus the smallest-magnitude nonzero
  // values; zero divisors are undefined and force ⊥ (singleton zero) or
  // are excluded (ranges straddling zero).
  std::vector<int64_t> Divisors;
  auto addDivisor = [&](int64_t D) {
    if (D != 0 && D >= B.Lo.Offset && D <= B.Hi.Offset)
      Divisors.push_back(D);
  };
  addDivisor(B.Lo.Offset);
  addDivisor(B.Hi.Offset);
  addDivisor(-1);
  addDivisor(1);
  if (Divisors.empty())
    return false; // Only zero available: division undefined.

  // Exact fast path: positive singleton divisor that preserves the lattice.
  if (B.isSingleton()) {
    int64_t C = B.Lo.Offset;
    if (C > 0 && A.Lo.Offset >= 0 && A.Stride % C == 0 &&
        A.Lo.Offset % C == 0) {
      Out.push_back(makePiece(Prob, A.Lo.Offset / C, A.Hi.Offset / C,
                              A.Stride / C));
      return true;
    }
  }

  int64_t Lo = Int64Max, Hi = Int64Min;
  for (int64_t Dividend : {A.Lo.Offset, A.Hi.Offset}) {
    for (int64_t Divisor : Divisors) {
      // C++ trunc division; Int64Min / -1 overflows.
      int64_t Q = (Dividend == Int64Min && Divisor == -1)
                      ? Int64Max
                      : Dividend / Divisor;
      Lo = std::min(Lo, Q);
      Hi = std::max(Hi, Q);
    }
  }
  // Trunc division can also produce 0 whenever |dividend| < |divisor|.
  if (A.Lo.Offset <= 0 && A.Hi.Offset >= 0) {
    Lo = std::min<int64_t>(Lo, 0);
    Hi = std::max<int64_t>(Hi, 0);
  }
  Out.push_back(makePiece(Prob, Lo, Hi, 1));
  return true;
}

bool RangeOps::pairRem(const SubRange &A, const SubRange &B,
                       std::vector<SubRange> &Out) {
  if (!A.isNumeric() || !B.isNumeric())
    return false;
  double Prob = A.Prob * B.Prob;
  // A divisor that can only be zero is undefined: ⊥. A range that merely
  // spans zero keeps its nonzero values — undefined executions contribute
  // no outcomes, mirroring pairDiv's exclusion of zero divisors.
  if (B.isSingleton() && B.Lo.Offset == 0)
    return false; // x % 0.
  // Largest inclusive remainder magnitude: |r| <= |b| - 1 <= MaxMag. When
  // the divisor can be Int64Min, |b| - 1 is exactly Int64Max; computing it
  // through saturatingAbs would silently understate the bound by one
  // (|Int64Min| saturates to Int64Max), so that case is taken directly.
  int64_t MaxMag =
      B.Lo.Offset == Int64Min
          ? Int64Max
          : std::max(saturatingAbs(B.Lo.Offset),
                     saturatingAbs(B.Hi.Offset)) -
                1;
  // C semantics: result sign follows the dividend; |result| <= MaxMag.
  if (A.Lo.Offset >= 0 && A.Hi.Offset <= MaxMag && B.isSingleton()) {
    // Entirely within one period: identity (also exact for b = Int64Min,
    // where x % b == x for every representable non-negative x).
    Out.push_back(A.withProb(Prob));
    return true;
  }
  if (B.isSingleton() && A.Lo.Offset >= 0) {
    int64_t C = saturatingAbs(B.Lo.Offset);
    if (A.Stride > 0 && A.Stride % C == 0) {
      // All lattice points congruent: single value.
      Out.push_back(SubRange::singleton(Prob, A.Lo.Offset % C));
      return true;
    }
    int64_t G = A.Stride > 0 ? strideGcd(A.Stride, C) : 0;
    if (G > 1) {
      // Residues stay congruent to Lo modulo gcd(stride, modulus).
      int64_t First = A.Lo.Offset % G;
      int64_t Last = First + ((C - 1 - First) / G) * G;
      Out.push_back(makePiece(Prob, First, std::min(Last, C - 1), G));
      return true;
    }
    Out.push_back(
        makePiece(Prob, 0, std::min(A.Hi.Offset, C - 1), 1));
    return true;
  }
  // General case: |result| <= MaxMag, result sign follows the dividend,
  // and the result magnitude never exceeds the dividend magnitude.
  int64_t Lo = A.Lo.Offset >= 0 ? 0 : std::max(A.Lo.Offset, -MaxMag);
  int64_t Hi = A.Hi.Offset <= 0 ? 0 : std::min(A.Hi.Offset, MaxMag);
  Out.push_back(makePiece(Prob, Lo, Hi, 1));
  return true;
}

namespace {

/// Stride of a lattice containing the points of both subranges: the two
/// lattices must agree modulo the result, which also requires their
/// anchors' separation to be a multiple.
int64_t unionStride(const SubRange &A, const SubRange &B) {
  __int128 Sep = static_cast<__int128>(A.Lo.Offset) - B.Lo.Offset;
  if (Sep < 0)
    Sep = -Sep;
  int64_t SepG = Sep > Int64Max ? 1 : static_cast<int64_t>(Sep);
  return strideGcd(strideGcd(A.Stride, B.Stride), SepG);
}

} // namespace

bool RangeOps::pairMin(const SubRange &A, const SubRange &B,
                       std::vector<SubRange> &Out) {
  if (!A.isNumeric() || !B.isNumeric())
    return false;
  // min(a, b) is always one of a's or b's values, so the result lattice
  // must cover the union of both lattices.
  int64_t Lo = std::min(A.Lo.Offset, B.Lo.Offset);
  int64_t Hi = std::min(A.Hi.Offset, B.Hi.Offset);
  Out.push_back(makePiece(A.Prob * B.Prob, Lo, Hi, unionStride(A, B)));
  return true;
}

bool RangeOps::pairMax(const SubRange &A, const SubRange &B,
                       std::vector<SubRange> &Out) {
  if (!A.isNumeric() || !B.isNumeric())
    return false;
  int64_t Lo = std::max(A.Lo.Offset, B.Lo.Offset);
  int64_t Hi = std::max(A.Hi.Offset, B.Hi.Offset);
  Out.push_back(makePiece(A.Prob * B.Prob, Lo, Hi, unionStride(A, B)));
  return true;
}

//===----------------------------------------------------------------------===//
// Memoization over interned operand ids
//===----------------------------------------------------------------------===//

namespace {

/// Operation tags for memo keys. Assert/cmp fold the predicate into the
/// tag's upper bits.
enum : uint8_t {
  TagAdd = 1,
  TagSub,
  TagMul,
  TagDiv,
  TagRem,
  TagMin,
  TagMax,
  TagNeg,
  TagAbs,
  TagNot,
  TagAssert,
  TagCmp,
  // Floating-point kernels. FP operand handles encode Kind::FloatRanges,
  // so FP and integer keys could share tags without colliding; distinct
  // tags keep the dispatch honest and the memo debuggable.
  TagFAdd,
  TagFSub,
  TagFMul,
  TagFDiv,
  TagFMin,
  TagFMax,
  TagFNeg,
  TagFAbs,
  TagI2F,
  TagF2I,
  TagFAssert,
  TagFCmp,
};

uint64_t predTag(uint8_t Tag, CmpPred Pred) {
  return static_cast<uint64_t>(Tag) |
         (static_cast<uint64_t>(Pred) << 8);
}

} // namespace

size_t RangeOps::MemoKeyHash::operator()(const MemoKey &K) const {
  uint64_t H = K.Tag * 0x9e3779b97f4a7c15ull;
  auto Mix = [&H](uint64_t W) {
    H ^= W + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  };
  Mix(K.L);
  Mix(K.R);
  Mix(static_cast<uint64_t>(reinterpret_cast<uintptr_t>(K.P1)));
  Mix(static_cast<uint64_t>(reinterpret_cast<uintptr_t>(K.P2)));
  return static_cast<size_t>(H);
}

size_t
RangeOps::MeetKeyHash::operator()(const std::vector<uint64_t> &K) const {
  uint64_t H = 14695981039346656037ull;
  for (uint64_t W : K) {
    H ^= W;
    H *= 1099511628211ull;
  }
  return static_cast<size_t>(H);
}

uint64_t RangeOps::encodeHandle(const ValueRange &V) {
  return (static_cast<uint64_t>(V.sliceId()) << 8) |
         (static_cast<uint64_t>(V.kind()) << 1) |
         (V.distributionKnown() ? 1u : 0u);
}

/// Current value of the RangeNormalizations slot in this thread's shard.
/// Memo entries store the delta across the original computation so a hit
/// can replay it; while telemetry is disabled both the original events
/// and the replay are no-ops, consistently.
uint64_t RangeOps::normalizationTicks() const {
  if (!telemetry::enabled())
    return 0;
  return telemetry::detail::localShard()
      .Counters[static_cast<unsigned>(
          telemetry::Counter::RangeNormalizations)]
      .load(std::memory_order_relaxed);
}

ValueRange RangeOps::replay(const MemoEntry &E) {
  Stats.SubOps += E.SubOps;
  if (E.Norms)
    telemetry::count(telemetry::Counter::RangeNormalizations, E.Norms);
  telemetry::count(telemetry::Counter::RangeOpMemoHits);
  return E.Result;
}

template <typename Fn>
ValueRange RangeOps::memoRange(const MemoKey &K, Fn &&Compute) {
  auto It = Memo.find(K);
  if (It != Memo.end())
    return replay(It->second);
  MemoEntry E;
  uint64_t SubOps0 = Stats.SubOps;
  uint64_t Norms0 = normalizationTicks();
  E.Result = Compute();
  E.SubOps = Stats.SubOps - SubOps0;
  E.Norms = normalizationTicks() - Norms0;
  Memo.emplace(K, E);
  return E.Result;
}

//===----------------------------------------------------------------------===//
// Binary operation framework
//===----------------------------------------------------------------------===//

ValueRange RangeOps::binaryNumeric(
    uint8_t Tag, const ValueRange &L, const ValueRange &R,
    bool (RangeOps::*PairOp)(const SubRange &, const SubRange &,
                             std::vector<SubRange> &)) {
  if (L.isBottom() || R.isBottom())
    return ValueRange::bottom();
  if (L.isTop() || R.isTop())
    return ValueRange::top();
  if (!L.isRanges() || !R.isRanges())
    return ValueRange::bottom();
  MemoKey K{Tag, encodeHandle(L), encodeHandle(R), nullptr, nullptr};
  return memoRange(K, [&] { return binaryNumericUncached(L, R, PairOp); });
}

ValueRange RangeOps::binaryNumericUncached(
    const ValueRange &L, const ValueRange &R,
    bool (RangeOps::*PairOp)(const SubRange &, const SubRange &,
                             std::vector<SubRange> &)) {
  const RangeArena &Arena = RangeArena::global();
  RangeArena::Rows LRows = Arena.rows(L.sliceId());
  RangeArena::Rows RRows = Arena.rows(R.sliceId());
  Scratch.clear();
  const bool Fast = LRows.AllNumeric && RRows.AllNumeric;
  telemetry::count(Fast ? telemetry::Counter::RangeKernelFastPath
                        : telemetry::Counter::RangeKernelSlowPath);
  if (Fast) {
    // All-numeric batch: iterate the SoA columns directly; bounds are
    // built numeric with no symbol-table resolution.
    for (uint32_t I = 0; I < LRows.Count; ++I) {
      SubRange A(LRows.Prob[I], Bound(LRows.LoOff[I]),
                 Bound(LRows.HiOff[I]), LRows.Stride[I]);
      for (uint32_t J = 0; J < RRows.Count; ++J) {
        SubRange B(RRows.Prob[J], Bound(RRows.LoOff[J]),
                   Bound(RRows.HiOff[J]), RRows.Stride[J]);
        ++Stats.SubOps;
        if (!(this->*PairOp)(A, B, Scratch))
          return ValueRange::bottom();
      }
    }
  } else {
    for (uint32_t I = 0; I < LRows.Count; ++I) {
      SubRange A(LRows.Prob[I],
                 Bound(Arena.symValue(LRows.LoSym[I]), LRows.LoOff[I]),
                 Bound(Arena.symValue(LRows.HiSym[I]), LRows.HiOff[I]),
                 LRows.Stride[I]);
      for (uint32_t J = 0; J < RRows.Count; ++J) {
        SubRange B(RRows.Prob[J],
                   Bound(Arena.symValue(RRows.LoSym[J]), RRows.LoOff[J]),
                   Bound(Arena.symValue(RRows.HiSym[J]), RRows.HiOff[J]),
                   RRows.Stride[J]);
        ++Stats.SubOps;
        if (!(this->*PairOp)(A, B, Scratch))
          return ValueRange::bottom();
      }
    }
  }
  ValueRange Result = ValueRange::canonicalize(Scratch, Opts.MaxSubRanges);
  Result.setDistributionKnown(L.distributionKnown() &&
                              R.distributionKnown());
  return Result;
}

namespace {

/// Exact scalar semantics of a float binary op, matching the interpreter
/// (profile/Interpreter.cpp) bit for bit: language division defines
/// x / 0.0 == 0.0, and min/max are `(b < a) ? b : a`-style selections
/// (std::min/std::max), so a NaN *left* operand propagates while a NaN
/// *right* operand selects the left value.
double foldFloatScalar(uint8_t Tag, double A, double B) {
  switch (Tag) {
  case TagFAdd:
    return A + B;
  case TagFSub:
    return A - B;
  case TagFMul:
    return A * B;
  case TagFDiv:
    return B == 0.0 ? 0.0 : A / B;
  case TagFMin:
    return std::min(A, B);
  case TagFMax:
    return std::max(A, B);
  }
  return 0.0;
}

} // namespace

ValueRange RangeOps::add(const ValueRange &L, const ValueRange &R) {
  if (L.isFloatKind() || R.isFloatKind())
    return fpBinary(TagFAdd, L, R);
  return binaryNumeric(TagAdd, L, R, &RangeOps::pairAdd);
}

ValueRange RangeOps::sub(const ValueRange &L, const ValueRange &R) {
  if (L.isFloatKind() || R.isFloatKind())
    return fpBinary(TagFSub, L, R);
  return binaryNumeric(TagSub, L, R, &RangeOps::pairSub);
}

ValueRange RangeOps::mul(const ValueRange &L, const ValueRange &R) {
  if (L.isFloatKind() || R.isFloatKind())
    return fpBinary(TagFMul, L, R);
  return binaryNumeric(TagMul, L, R, &RangeOps::pairMul);
}

ValueRange RangeOps::div(const ValueRange &L, const ValueRange &R) {
  if (L.isFloatKind() || R.isFloatKind())
    return fpBinary(TagFDiv, L, R);
  return binaryNumeric(TagDiv, L, R, &RangeOps::pairDiv);
}

ValueRange RangeOps::rem(const ValueRange &L, const ValueRange &R) {
  // Even a statically unknown dividend has a known result *set*:
  // |x % c| < |c| (C semantics). The distribution stays unknown.
  if (L.isBottom() && R.isRanges()) {
    if (auto C = R.asIntConstant()) {
      if (*C != 0 && *C != Int64Min) {
        int64_t M = *C < 0 ? -*C : *C;
        ValueRange Result = ValueRange::ranges(
            {SubRange::numeric(1.0, -(M - 1), M - 1, M == 1 ? 0 : 1)},
            Opts.MaxSubRanges);
        Result.setDistributionKnown(false);
        return Result;
      }
    }
  }
  return binaryNumeric(TagRem, L, R, &RangeOps::pairRem);
}

ValueRange RangeOps::minOp(const ValueRange &L, const ValueRange &R) {
  if (L.isFloatKind() || R.isFloatKind())
    return fpBinary(TagFMin, L, R);
  return binaryNumeric(TagMin, L, R, &RangeOps::pairMin);
}

ValueRange RangeOps::maxOp(const ValueRange &L, const ValueRange &R) {
  if (L.isFloatKind() || R.isFloatKind())
    return fpBinary(TagFMax, L, R);
  return binaryNumeric(TagMax, L, R, &RangeOps::pairMax);
}

ValueRange RangeOps::neg(const ValueRange &V) {
  if (V.isTop() || V.isBottom())
    return V;
  if (V.isFloatConst())
    return ValueRange::floatConstant(-V.floatValue());
  if (V.isFloatRanges())
    return fpUnary(TagFNeg, V);
  MemoKey K{TagNeg, encodeHandle(V), 0, nullptr, nullptr};
  return memoRange(K, [&] {
    Scratch.clear();
    for (const SubRange &S : V.subRanges()) {
      ++Stats.SubOps;
      if (!S.isNumeric())
        return ValueRange::bottom(); // -(x+c) is not representable.
      Scratch.push_back(makePiece(S.Prob, saturatingNeg(S.Hi.Offset),
                                  saturatingNeg(S.Lo.Offset), S.Stride));
    }
    ValueRange Result = ValueRange::canonicalize(Scratch, Opts.MaxSubRanges);
    Result.setDistributionKnown(V.distributionKnown());
    return Result;
  });
}

ValueRange RangeOps::absOp(const ValueRange &V) {
  if (V.isTop() || V.isBottom())
    return V;
  if (V.isFloatConst())
    return ValueRange::floatConstant(std::abs(V.floatValue()));
  if (V.isFloatRanges())
    return fpUnary(TagFAbs, V);
  MemoKey K{TagAbs, encodeHandle(V), 0, nullptr, nullptr};
  return memoRange(K, [&] {
    Scratch.clear();
    for (const SubRange &S : V.subRanges()) {
      ++Stats.SubOps;
      if (!S.isNumeric())
        return ValueRange::bottom();
      if (S.Lo.Offset >= 0) {
        Scratch.push_back(S);
      } else if (S.Hi.Offset <= 0) {
        Scratch.push_back(makePiece(S.Prob, saturatingNeg(S.Hi.Offset),
                                    saturatingNeg(S.Lo.Offset), S.Stride));
      } else {
        int64_t Hi = std::max(saturatingNeg(S.Lo.Offset), S.Hi.Offset);
        Scratch.push_back(makePiece(S.Prob, 0, Hi, 1));
      }
    }
    ValueRange Result = ValueRange::canonicalize(Scratch, Opts.MaxSubRanges);
    Result.setDistributionKnown(V.distributionKnown());
    return Result;
  });
}

ValueRange RangeOps::notOp(const ValueRange &V) {
  if (V.isTop())
    return ValueRange::top();
  if (!V.isRanges()) {
    // ⊥ / float-const: probNonZero is O(1) here, no point memoizing.
    std::optional<double> P = V.probNonZero();
    if (!P)
      return ValueRange::bottom();
    return ValueRange::weightedBool(1.0 - *P);
  }
  MemoKey K{TagNot, encodeHandle(V), 0, nullptr, nullptr};
  return memoRange(K, [&] {
    std::optional<double> P = V.probNonZero();
    if (!P)
      return ValueRange::bottom();
    if (!V.distributionKnown() && *P != 0.0 && *P != 1.0)
      return ValueRange::bottom(); // Only certainty survives unknown dist.
    return ValueRange::weightedBool(1.0 - *P);
  });
}

ValueRange RangeOps::intToFloat(const ValueRange &V) {
  if (V.isTop())
    return ValueRange::top();
  if (auto C = V.asIntConstant())
    return ValueRange::floatConstant(static_cast<double>(*C));
  if (!Opts.EnableFPRanges || !V.isRanges() || !V.allNumeric())
    return ValueRange::bottom();
  MemoKey K{TagI2F, encodeHandle(V), 0, nullptr, nullptr};
  return memoRange(K, [&] { return intToFloatUncached(V); });
}

ValueRange RangeOps::floatToInt(const ValueRange &V) {
  if (V.isTop())
    return ValueRange::top();
  if (V.isFloatConst()) {
    double D = V.floatValue();
    if (D >= static_cast<double>(Int64Min) &&
        D <= static_cast<double>(Int64Max))
      return ValueRange::intConstant(static_cast<int64_t>(D));
  }
  if (!Opts.EnableFPRanges || !V.isFloatRanges())
    return ValueRange::bottom();
  MemoKey K{TagF2I, encodeHandle(V), 0, nullptr, nullptr};
  return memoRange(K, [&] { return floatToIntUncached(V); });
}

//===----------------------------------------------------------------------===//
// Floating-point interval kernels (docs/DOMAINS.md)
//===----------------------------------------------------------------------===//

ValueRange RangeOps::fpPromote(const ValueRange &V) {
  if (V.isFloatRanges())
    return V;
  if (!V.isFloatConst())
    return ValueRange::bottom();
  double C = V.floatValue();
  if (std::isnan(C))
    return ValueRange::restoredFP(1.0, true, {});
  return ValueRange::restoredFP(0.0, true, {FPInterval(1.0, C, C)});
}

ValueRange RangeOps::fpBinary(uint8_t Tag, const ValueRange &L,
                              const ValueRange &R) {
  if (L.isTop() || R.isTop())
    return ValueRange::top();
  // Both-constant folds stay exact and payload-driven, so they must not
  // enter the memo (FloatConst payloads are not part of encodeHandle).
  if (L.isFloatConst() && R.isFloatConst())
    return ValueRange::floatConstant(
        foldFloatScalar(Tag, L.floatValue(), R.floatValue()));
  if (!Opts.EnableFPRanges || L.isBottom() || R.isBottom())
    return ValueRange::bottom();
  ValueRange LP = fpPromote(L), RP = fpPromote(R);
  if (!LP.isFloatRanges() || !RP.isFloatRanges())
    return ValueRange::bottom(); // Mixed with the integer domain.
  MemoKey K{Tag, encodeHandle(LP), encodeHandle(RP), nullptr, nullptr};
  return memoRange(K, [&] { return fpBinaryUncached(Tag, LP, RP); });
}

ValueRange RangeOps::fpBinaryUncached(uint8_t Tag, const ValueRange &L,
                                      const ValueRange &R) {
  telemetry::count(telemetry::Counter::FPRangeKernelOps);
  FPIntervalView LV = L.fpIntervals(), RV = R.fpIntervals();
  const double NL = L.nanMass(), NR = R.nanMass();
  FPScratch.clear();
  if (Tag == TagFMin || Tag == TagFMax) {
    // `(b < a) ? b : a` selection semantics: a NaN left operand
    // propagates (mass NL); a NaN right operand selects the left value
    // (mass (1-NL)*NR, distributed over L's intervals).
    FPNaNAcc = NL;
    if (NR > 0.0) {
      for (size_t I = 0; I < LV.size(); ++I) {
        ++Stats.SubOps;
        FPInterval A = LV[I];
        FPScratch.push_back(FPInterval(A.Prob * NR, A.Lo, A.Hi));
      }
    }
  } else {
    // Arithmetic propagates NaN from either side.
    FPNaNAcc = NL + NR - NL * NR;
  }
  for (size_t I = 0; I < LV.size(); ++I) {
    FPInterval A = LV[I];
    for (size_t J = 0; J < RV.size(); ++J) {
      ++Stats.SubOps;
      fpPairArith(Tag, A, RV[J]);
    }
  }
  ValueRange Result =
      ValueRange::canonicalizeFP(FPScratch, FPNaNAcc, Opts.MaxSubRanges);
  Result.setDistributionKnown(L.distributionKnown() &&
                              R.distributionKnown());
  return Result;
}

void RangeOps::fpPairArith(uint8_t Tag, const FPInterval &A,
                           const FPInterval &B) {
  double P = A.Prob * B.Prob;
  if (P <= 0.0)
    return;
  if (Tag == TagFDiv) {
    if (B.Lo == 0.0 && B.Hi == 0.0) {
      // Language rule: x / 0.0 == 0.0.
      FPScratch.push_back(FPInterval(P, 0.0, 0.0));
      return;
    }
    if (B.Lo <= 0.0 && B.Hi >= 0.0) {
      // Divisor straddles zero: quotient magnitudes are unbounded on both
      // sides (and the exact-zero divisor maps to 0), so the hull is the
      // full line. NaN additionally needs ±inf / ±inf.
      if ((std::isinf(A.Lo) || std::isinf(A.Hi)) &&
          (std::isinf(B.Lo) || std::isinf(B.Hi))) {
        FPNaNAcc += P * 0.25;
        P *= 0.75;
      }
      FPScratch.push_back(FPInterval(P, -HUGE_VAL, HUGE_VAL));
      return;
    }
  }
  // Corner evaluation in binary64 — the same arithmetic the runtime uses.
  // Every op here is monotone in each argument over the sign-consistent
  // region (division with a zero-straddling divisor was peeled off
  // above), and fl() is monotone, so the corners bound the interior.
  const double Cs[4] = {
      foldFloatScalar(Tag, A.Lo, B.Lo), foldFloatScalar(Tag, A.Lo, B.Hi),
      foldFloatScalar(Tag, A.Hi, B.Lo), foldFloatScalar(Tag, A.Hi, B.Hi)};
  double Lo = HUGE_VAL, Hi = -HUGE_VAL;
  int NaNCorners = 0;
  for (double C : Cs) {
    if (std::isnan(C)) {
      ++NaNCorners;
      continue;
    }
    Lo = std::min(Lo, C);
    Hi = std::max(Hi, C);
  }
  if (NaNCorners == 4) {
    if (A.isSingleton() && B.isSingleton()) {
      FPNaNAcc += P; // Exactly one concrete pair, and it is NaN.
      return;
    }
    // All four corners are NaN (0·∞ and ∞/∞ shapes) but a non-singleton
    // operand has interior points the corners cannot see — e.g.
    // [-∞,∞] × [0,0], where every corner is NaN yet 5.0 × 0.0 == 0.0.
    // Declaring pure NaN here would exclude those real outcomes; claim
    // the full line for the interior mass instead.
    FPNaNAcc += P * 0.5;
    FPScratch.push_back(FPInterval(P * 0.5, -HUGE_VAL, HUGE_VAL));
    return;
  }
  // Corner evaluation can miss a reachable NaN in exactly one shape:
  // multiplication where ±∞ is an endpoint of one operand and zero lies
  // in the *interior* of the other ([-0.5,∞] × [-1,1] has no NaN corner,
  // yet ∞ × 0 == NaN). Addition/division NaNs need ±∞ from both sides,
  // and ∞ is always an endpoint, so their corners see every case.
  if (NaNCorners == 0 && Tag == TagFMul &&
      (((std::isinf(A.Lo) || std::isinf(A.Hi)) && B.Lo <= 0.0 &&
        B.Hi >= 0.0) ||
       ((std::isinf(B.Lo) || std::isinf(B.Hi)) && A.Lo <= 0.0 &&
        A.Hi >= 0.0)))
    NaNCorners = 1;
  if (NaNCorners > 0) {
    // NaN-producing corners (inf-inf, 0*inf, ...): attribute a corner's
    // share of the pair mass to NaN, the rest to the non-NaN hull.
    FPNaNAcc += P * NaNCorners / 4.0;
    P *= (4.0 - NaNCorners) / 4.0;
  }
  // Directed outward widening: one ulp each way as defense in depth
  // against corner-rounding edge cases. Exact pairs (two singletons) and
  // degenerate results stay tight so constants survive verbatim.
  if (!(A.isSingleton() && B.isSingleton()) && Lo != Hi) {
    Lo = std::nextafter(Lo, -HUGE_VAL);
    Hi = std::nextafter(Hi, HUGE_VAL);
  }
  FPScratch.push_back(FPInterval(P, Lo, Hi));
}

ValueRange RangeOps::fpUnary(uint8_t Tag, const ValueRange &V) {
  MemoKey K{Tag, encodeHandle(V), 0, nullptr, nullptr};
  return memoRange(K, [&] { return fpUnaryUncached(Tag, V); });
}

ValueRange RangeOps::fpUnaryUncached(uint8_t Tag, const ValueRange &V) {
  telemetry::count(telemetry::Counter::FPRangeKernelOps);
  FPIntervalView IV = V.fpIntervals();
  FPScratch.clear();
  FPNaNAcc = V.nanMass(); // Neg/abs propagate NaN unchanged.
  for (size_t I = 0; I < IV.size(); ++I) {
    ++Stats.SubOps;
    FPInterval S = IV[I];
    if (Tag == TagFNeg) {
      FPScratch.push_back(FPInterval(S.Prob, -S.Hi, -S.Lo));
    } else if (S.Lo >= 0.0) { // TagFAbs; negation and fabs are exact.
      FPScratch.push_back(S);
    } else if (S.Hi <= 0.0) {
      FPScratch.push_back(FPInterval(S.Prob, -S.Hi, -S.Lo));
    } else {
      FPScratch.push_back(FPInterval(S.Prob, 0.0, std::max(-S.Lo, S.Hi)));
    }
  }
  ValueRange Result =
      ValueRange::canonicalizeFP(FPScratch, FPNaNAcc, Opts.MaxSubRanges);
  Result.setDistributionKnown(V.distributionKnown());
  return Result;
}

ValueRange RangeOps::intToFloatUncached(const ValueRange &V) {
  telemetry::count(telemetry::Counter::FPRangeKernelOps);
  FPScratch.clear();
  for (const SubRange &S : V.subRanges()) {
    ++Stats.SubOps;
    // static_cast<double> rounds-to-nearest and is monotone, so the
    // converted endpoints bound every converted interior point exactly.
    FPScratch.push_back(FPInterval(S.Prob,
                                   static_cast<double>(S.Lo.Offset),
                                   static_cast<double>(S.Hi.Offset)));
  }
  ValueRange Result =
      ValueRange::canonicalizeFP(FPScratch, 0.0, Opts.MaxSubRanges);
  Result.setDistributionKnown(V.distributionKnown());
  return Result;
}

ValueRange RangeOps::floatToIntUncached(const ValueRange &V) {
  telemetry::count(telemetry::Counter::FPRangeKernelOps);
  FPIntervalView IV = V.fpIntervals();
  // The runtime rule (profile/Interpreter.cpp): finite values inside the
  // int64 window truncate; everything else — ±inf, NaN, out of window —
  // produces 0. The window top is the largest double that truncates to a
  // representable int64 (2^63 itself is out).
  const double WinLo = static_cast<double>(Int64Min); // -2^63, exact.
  const double WinHi = 9223372036854774784.0;         // 2^63 - 1024.
  Scratch.clear();
  double ZeroMass = V.nanMass();
  for (size_t I = 0; I < IV.size(); ++I) {
    ++Stats.SubOps;
    FPInterval S = IV[I];
    double CLo = std::max(S.Lo, WinLo), CHi = std::min(S.Hi, WinHi);
    if (CLo > CHi) { // Entirely outside the window.
      ZeroMass += S.Prob;
      continue;
    }
    double InFrac;
    if (CLo == S.Lo && CHi == S.Hi) {
      InFrac = 1.0;
    } else if (std::isfinite(S.Hi - S.Lo) && S.Hi > S.Lo) {
      InFrac = (CHi - CLo) / (S.Hi - S.Lo);
    } else {
      InFrac = 0.5; // Infinite-width split convention (docs/DOMAINS.md).
    }
    ZeroMass += S.Prob * (1.0 - InFrac);
    int64_t TLo = static_cast<int64_t>(std::trunc(CLo));
    int64_t THi = static_cast<int64_t>(std::trunc(CHi));
    Scratch.push_back(makePiece(S.Prob * InFrac, TLo, THi,
                                TLo == THi ? 0 : 1));
  }
  if (ZeroMass > 0.0)
    Scratch.push_back(SubRange::singleton(ZeroMass, 0));
  ValueRange Result = ValueRange::canonicalize(Scratch, Opts.MaxSubRanges);
  Result.setDistributionKnown(V.distributionKnown());
  return Result;
}

//===----------------------------------------------------------------------===//
// Meet
//===----------------------------------------------------------------------===//

ValueRange RangeOps::meetWeighted(
    const std::vector<std::pair<ValueRange, double>> &Entries) {
  telemetry::count(telemetry::Counter::Meets);

  // Memo key: the full entry sequence — encoded handle, float payload
  // (float-const entries fold by value) and weight bits per entry.
  MeetKeyScratch.clear();
  for (const auto &[VR, W] : Entries) {
    uint64_t FBits = 0, WBits = 0;
    double F = VR.floatValue();
    std::memcpy(&FBits, &F, sizeof(FBits));
    std::memcpy(&WBits, &W, sizeof(WBits));
    MeetKeyScratch.push_back(encodeHandle(VR));
    MeetKeyScratch.push_back(FBits);
    MeetKeyScratch.push_back(WBits);
  }
  auto MemoIt = MeetMemo.find(MeetKeyScratch);
  if (MemoIt != MeetMemo.end())
    return replay(MemoIt->second);
  MemoEntry E;
  uint64_t SubOps0 = Stats.SubOps;
  uint64_t Norms0 = normalizationTicks();
  E.Result = meetWeightedUncached(Entries);
  E.SubOps = Stats.SubOps - SubOps0;
  E.Norms = normalizationTicks() - Norms0;
  MeetMemo.emplace(MeetKeyScratch, E);
  return E.Result;
}

ValueRange RangeOps::meetWeightedUncached(
    const std::vector<std::pair<ValueRange, double>> &Entries) {
  double TotalWeight = 0.0;
  bool SawFloat = false, SawRanges = false, SawFPRanges = false;
  double FloatVal = 0.0;
  bool FloatConsistent = true;

  for (const auto &[VR, W] : Entries) {
    if (W <= 0.0 || VR.isTop())
      continue;
    if (VR.isBottom())
      return ValueRange::bottom();
    if (VR.isFloatConst()) {
      if (SawFloat && VR.floatValue() != FloatVal)
        FloatConsistent = false;
      FloatVal = VR.floatValue();
      SawFloat = true;
    } else if (VR.isFloatRanges()) {
      SawFPRanges = true;
    } else {
      SawRanges = true;
    }
    TotalWeight += W;
  }
  if (TotalWeight <= 0.0)
    return ValueRange::top(); // Nothing known yet.
  if ((SawFloat || SawFPRanges) && SawRanges)
    return ValueRange::bottom(); // FP / integer domain confusion.
  // A NaN constant is routed through the interval path when FP ranges
  // are on: pure-NaN FloatRanges compare stably by slice id, while a NaN
  // FloatConst payload is never ==-equal to itself.
  if (SawFloat && !SawFPRanges && FloatConsistent &&
      (!Opts.EnableFPRanges || !std::isnan(FloatVal)))
    return ValueRange::floatConstant(FloatVal);
  if (SawFloat || SawFPRanges) {
    if (!Opts.EnableFPRanges)
      return ValueRange::bottom();
    // Weighted FP mixture: constants enter as exact singletons (NaN
    // constants as NaN mass), interval sets scale piecewise.
    FPScratch.clear();
    FPNaNAcc = 0.0;
    bool DistKnown = true;
    for (const auto &[VR, W] : Entries) {
      if (W <= 0.0 || !VR.isFloatKind())
        continue;
      double Scale = W / TotalWeight;
      if (VR.isFloatConst()) {
        ++Stats.SubOps;
        double C = VR.floatValue();
        if (std::isnan(C))
          FPNaNAcc += Scale;
        else
          FPScratch.push_back(FPInterval(Scale, C, C));
        continue;
      }
      DistKnown &= VR.distributionKnown();
      FPNaNAcc += VR.nanMass() * Scale;
      FPIntervalView IV = VR.fpIntervals();
      for (size_t I = 0; I < IV.size(); ++I) {
        ++Stats.SubOps;
        FPInterval S = IV[I];
        FPScratch.push_back(FPInterval(S.Prob * Scale, S.Lo, S.Hi));
      }
    }
    ValueRange Result =
        ValueRange::canonicalizeFP(FPScratch, FPNaNAcc, Opts.MaxSubRanges);
    Result.setDistributionKnown(DistKnown);
    return Result;
  }

  Scratch.clear();
  bool DistKnown = true;
  for (const auto &[VR, W] : Entries) {
    if (W <= 0.0 || !VR.isRanges())
      continue;
    DistKnown &= VR.distributionKnown();
    double Scale = W / TotalWeight;
    for (const SubRange &S : VR.subRanges()) {
      ++Stats.SubOps;
      SubRange Scaled = S;
      Scaled.Prob *= Scale;
      Scratch.push_back(Scaled);
    }
  }
  ValueRange Result = ValueRange::canonicalize(Scratch, Opts.MaxSubRanges);
  Result.setDistributionKnown(DistKnown);
  return Result;
}

//===----------------------------------------------------------------------===//
// Assertions
//===----------------------------------------------------------------------===//

namespace {

/// Clips one numeric subrange against `value PRED C`; appends surviving
/// pieces with probability scaled by the surviving point fraction.
void clipNumeric(const SubRange &S, CmpPred Pred, int64_t C,
                 std::vector<SubRange> &Out) {
  int64_t Count = *S.count();
  auto keepUpTo = [&](int64_t U) { // Values <= U survive.
    if (U >= S.Hi.Offset) {
      Out.push_back(S);
      return;
    }
    if (U < S.Lo.Offset)
      return; // Nothing survives.
    int64_t NewHi = S.Stride == 0 ? S.Lo.Offset
                                  : alignDown(S.Lo.Offset, S.Stride, U);
    SubRange Piece = makePiece(S.Prob, S.Lo.Offset, NewHi, S.Stride);
    Piece.Prob = S.Prob * (static_cast<double>(*Piece.count()) / Count);
    Out.push_back(Piece);
  };
  auto keepFrom = [&](int64_t L) { // Values >= L survive.
    if (L <= S.Lo.Offset) {
      Out.push_back(S);
      return;
    }
    if (L > S.Hi.Offset)
      return;
    int64_t NewLo = S.Stride == 0 ? S.Hi.Offset
                                  : alignUp(S.Hi.Offset, S.Stride, L);
    SubRange Piece = makePiece(S.Prob, NewLo, S.Hi.Offset, S.Stride);
    Piece.Prob = S.Prob * (static_cast<double>(*Piece.count()) / Count);
    Out.push_back(Piece);
  };

  switch (Pred) {
  case CmpPred::LT:
    if (C == Int64Min)
      return; // x < INT64_MIN is impossible; nothing survives.
    keepUpTo(C - 1);
    return;
  case CmpPred::LE:
    keepUpTo(C);
    return;
  case CmpPred::GT:
    if (C == Int64Max)
      return;
    keepFrom(C + 1);
    return;
  case CmpPred::GE:
    keepFrom(C);
    return;
  case CmpPred::EQ: {
    bool Contains = C >= S.Lo.Offset && C <= S.Hi.Offset &&
                    onLattice(S.Lo.Offset, S.Stride, C);
    if (Contains)
      Out.push_back(SubRange::singleton(S.Prob / Count, C));
    return;
  }
  case CmpPred::NE: {
    bool Contains = C >= S.Lo.Offset && C <= S.Hi.Offset &&
                    onLattice(S.Lo.Offset, S.Stride, C);
    if (!Contains) {
      Out.push_back(S);
      return;
    }
    double Keep = S.Prob * (static_cast<double>(Count - 1) / Count);
    if (Count == 1)
      return; // The whole subrange was that one value.
    if (C == S.Lo.Offset) {
      SubRange Piece = makePiece(Keep, S.Lo.Offset + S.Stride, S.Hi.Offset,
                                 S.Stride);
      Out.push_back(Piece);
    } else if (C == S.Hi.Offset) {
      Out.push_back(
          makePiece(Keep, S.Lo.Offset, S.Hi.Offset - S.Stride, S.Stride));
    } else {
      // Interior removal: split proportionally to the two sides.
      int64_t Below = pointsBelow(S, C);
      int64_t Above = Count - Below - 1;
      Out.push_back(makePiece(S.Prob * Below / Count, S.Lo.Offset,
                              C - S.Stride, S.Stride));
      Out.push_back(makePiece(S.Prob * Above / Count, C + S.Stride,
                              S.Hi.Offset, S.Stride));
    }
    return;
  }
  }
}

/// Clips one subrange against a symbolic bound `value PRED (Sym)`; keeps
/// probability unchanged (the surviving fraction is unknown).
void clipSymbolic(const SubRange &S, CmpPred Pred, const Value *Sym,
                  std::vector<SubRange> &Out) {
  SubRange Piece = S;
  switch (Pred) {
  case CmpPred::LT:
    Piece.Hi = Bound(Sym, -1);
    break;
  case CmpPred::LE:
    Piece.Hi = Bound(Sym, 0);
    break;
  case CmpPred::GT:
    Piece.Lo = Bound(Sym, 1);
    break;
  case CmpPred::GE:
    Piece.Lo = Bound(Sym, 0);
    break;
  case CmpPred::EQ:
    // assert x == y: x becomes an exact copy of y.
    Out.push_back(SubRange(S.Prob, Bound(Sym, 0), Bound(Sym, 0), 0));
    return;
  case CmpPred::NE:
    Out.push_back(S); // No representable refinement.
    return;
  }
  // Bounds relative to two different ancestors are unrepresentable; fall
  // back to the assert side only (the controlling test is the most
  // predictive information available).
  if (Piece.Lo.Sym && Piece.Hi.Sym && Piece.Lo.Sym != Piece.Hi.Sym) {
    if (Pred == CmpPred::LT || Pred == CmpPred::LE)
      Piece.Lo = Bound(Int64Min);
    else
      Piece.Hi = Bound(Int64Max);
    Piece.Stride = 1;
  }
  // Symbolic clipping can invert numeric-looking bounds only at runtime;
  // statically we keep the piece as-is.
  if (Piece.Lo.isNumeric() && Piece.Hi.isNumeric() &&
      Piece.Lo.Offset > Piece.Hi.Offset) {
    Out.push_back(S);
    return;
  }
  if (Piece.Lo == Piece.Hi)
    Piece.Stride = 0;
  else if (Piece.Stride == 0)
    Piece.Stride = 1;
  Out.push_back(Piece);
}

} // namespace

ValueRange RangeOps::applyAssert(const ValueRange &Src, CmpPred Pred,
                                 const ValueRange &BoundRange,
                                 const Value *BoundVal) {
  // FP asserts: an FP interval source, or an FP-typed bound refining a ⊥
  // source (the ⊥ float still has a known universe: [-inf,+inf] ∪ NaN).
  // The bound is promoted before the memo key is formed — a FloatConst
  // payload is not part of encodeHandle but the clip depends on it.
  if (Opts.EnableFPRanges &&
      (Src.isFloatRanges() || (BoundRange.isFloatKind() && Src.isBottom()))) {
    ValueRange B =
        BoundRange.isFloatConst() ? fpPromote(BoundRange) : BoundRange;
    MemoKey FK{predTag(TagFAssert, Pred), encodeHandle(Src),
               encodeHandle(B), nullptr, nullptr};
    return memoRange(FK,
                     [&] { return applyFPAssertUncached(Src, Pred, B); });
  }
  if (!Src.isRanges() && !Src.isBottom())
    return Src; // ⊤ / float-const pass through untouched (not memoized:
                // a float-const result carries its payload verbatim).
  MemoKey K{predTag(TagAssert, Pred), encodeHandle(Src),
            encodeHandle(BoundRange), BoundVal, nullptr};
  return memoRange(
      K, [&] { return applyAssertUncached(Src, Pred, BoundRange, BoundVal); });
}

ValueRange RangeOps::applyAssertUncached(const ValueRange &Src,
                                         CmpPred Pred,
                                         const ValueRange &BoundRange,
                                         const Value *BoundVal) {
  // An assert on a statically unknown value still pins down the *set* of
  // surviving values ("valuable information can often be derived from the
  // equality tests controlling branches") — but not their distribution.
  ValueRange Effective = Src;
  if (Src.isBottom()) {
    Effective = ValueRange::fullIntRange();
    Effective.setDistributionKnown(false);
  }
  const ValueRange &SrcR = Effective;

  std::optional<int64_t> C = BoundRange.asIntConstant();
  const Value *Sym = nullptr;
  if (!C && Opts.EnableSymbolicRanges && BoundVal &&
      !isa<Constant>(BoundVal))
    Sym = BoundVal;

  std::vector<SubRange> &Out = Scratch;
  Out.clear();
  for (const SubRange &S : SrcR.subRanges()) {
    ++Stats.SubOps;
    if (C && S.isNumeric()) {
      clipNumeric(S, Pred, *C, Out);
    } else if (C) {
      // Symbolic subrange, numeric bound: adopt the numeric bound on the
      // constrained side (prefer the assert's information).
      SubRange Piece = S;
      switch (Pred) {
      case CmpPred::LT:
        Piece.Hi = Bound(*C == Int64Min ? Int64Min : *C - 1);
        break;
      case CmpPred::LE:
        Piece.Hi = Bound(*C);
        break;
      case CmpPred::GT:
        Piece.Lo = Bound(*C == Int64Max ? Int64Max : *C + 1);
        break;
      case CmpPred::GE:
        Piece.Lo = Bound(*C);
        break;
      case CmpPred::EQ:
        Piece = SubRange::singleton(S.Prob, *C);
        break;
      case CmpPred::NE:
        break;
      }
      if (Piece.Lo.isNumeric() && Piece.Hi.isNumeric() &&
          Piece.Lo.Offset > Piece.Hi.Offset) {
        continue; // Contradiction: nothing survives from this piece.
      }
      if (Piece.Lo == Piece.Hi)
        Piece.Stride = 0;
      else if (Piece.Stride == 0)
        Piece.Stride = 1;
      Out.push_back(Piece);
    } else if (Sym) {
      clipSymbolic(S, Pred, Sym, Out);
    } else {
      Out.push_back(S); // No usable bound information.
    }
  }
  if (Out.empty())
    return ValueRange::bottom(); // Contradicted assert: edge unreachable.
  // Clipping drops the excluded values' probability mass (EQ keeps one
  // point's worth, NE removes the interior, LT/GT shave the tails), so
  // the surviving pieces no longer sum to 1. Renormalize here — the
  // split site that drifts — rather than relying on the canonicalizer's
  // silent backstop, and count the event so tests can observe it.
  double Total = 0.0;
  for (const SubRange &S : Out)
    Total += S.Prob;
  if (Total > 0.0 && std::abs(Total - 1.0) > 1e-9) {
    telemetry::count(telemetry::Counter::RangeNormalizations);
    for (SubRange &S : Out)
      S.Prob /= Total;
  }
  ValueRange Result = ValueRange::ranges(std::move(Out), Opts.MaxSubRanges);
  Result.setDistributionKnown(SrcR.distributionKnown());
  Result.assertNormalized();
  return Result;
}

ValueRange RangeOps::applyFPAssertUncached(const ValueRange &Src,
                                           CmpPred Pred,
                                           const ValueRange &Bound) {
  telemetry::count(telemetry::Counter::FPRangeKernelOps);
  // Effective source: a ⊥ float still has a known universe —
  // [-inf,+inf] ∪ NaN with an unknown distribution (the FP analogue of
  // the integer path's fullIntRange fallback).
  std::vector<FPInterval> SrcIv;
  double SrcNaN = 0.0;
  bool DistKnown = true;
  if (Src.isBottom()) {
    SrcIv.push_back(FPInterval(0.5, -HUGE_VAL, HUGE_VAL));
    SrcNaN = 0.5;
    DistKnown = false;
  } else {
    FPIntervalView IV = Src.fpIntervals();
    for (size_t I = 0; I < IV.size(); ++I)
      SrcIv.push_back(IV[I]);
    SrcNaN = Src.nanMass();
    DistKnown = Src.distributionKnown();
  }

  // Bound hull [CLo, CHi]. The clip against a non-singleton bound uses
  // the conservative extreme: `x < b` for some b in the bound's support
  // only guarantees x below the support's maximum.
  bool HaveHull = false, BoundSingleton = false;
  double CLo = 0.0, CHi = 0.0;
  if (Bound.isFloatRanges()) {
    FPIntervalView BV = Bound.fpIntervals();
    if (BV.empty())
      // Certainly-NaN bound: every ordered comparison (and EQ) is false,
      // so those assert edges are unreachable; NE holds vacuously.
      return Pred == CmpPred::NE ? Src : ValueRange::bottom();
    CLo = HUGE_VAL;
    CHi = -HUGE_VAL;
    for (size_t I = 0; I < BV.size(); ++I) {
      CLo = std::min(CLo, BV[I].Lo);
      CHi = std::max(CHi, BV[I].Hi);
    }
    HaveHull = true;
    BoundSingleton =
        BV.size() == 1 && BV[0].isSingleton() && BV.nanMass() == 0.0;
  }

  // Any predicate but NE is false on NaN, so the assert holding strips
  // the source's NaN mass; `x != b` keeps it.
  FPScratch.clear();
  double OutNaN = Pred == CmpPred::NE ? SrcNaN : 0.0;
  auto clipFrac = [](const FPInterval &S, double NLo, double NHi) {
    if (S.isSingleton() || (NLo == S.Lo && NHi == S.Hi))
      return 1.0;
    double W = S.Hi - S.Lo;
    if (!std::isfinite(W))
      return 0.5; // Infinite-width split convention (docs/DOMAINS.md).
    return (NHi - NLo) / W;
  };
  for (const FPInterval &S : SrcIv) {
    ++Stats.SubOps;
    double NLo = S.Lo, NHi = S.Hi;
    switch (Pred) {
    case CmpPred::LT:
      if (HaveHull)
        NHi = std::min(NHi, std::nextafter(CHi, -HUGE_VAL));
      break;
    case CmpPred::LE:
      if (HaveHull)
        NHi = std::min(NHi, CHi);
      break;
    case CmpPred::GT:
      if (HaveHull)
        NLo = std::max(NLo, std::nextafter(CLo, HUGE_VAL));
      break;
    case CmpPred::GE:
      if (HaveHull)
        NLo = std::max(NLo, CLo);
      break;
    case CmpPred::EQ:
      // x == b pins x into the bound's hull.
      if (HaveHull) {
        NLo = std::max(NLo, CLo);
        NHi = std::min(NHi, CHi);
      }
      break;
    case CmpPred::NE:
      // Holes are unrepresentable; only an excluded exact point drops,
      // and only when the bound is certainly that point.
      if (BoundSingleton && S.isSingleton() && S.Lo == CLo)
        continue;
      FPScratch.push_back(S);
      continue;
    }
    if (NLo > NHi)
      continue; // Contradicted piece.
    double P = S.Prob * clipFrac(S, NLo, NHi);
    if (P > 0.0)
      FPScratch.push_back(FPInterval(P, NLo, NHi));
  }
  if (FPScratch.empty() && OutNaN <= 0.0)
    return ValueRange::bottom(); // Contradicted assert: edge unreachable.
  // canonicalizeFP renormalizes the surviving mass jointly with OutNaN.
  ValueRange Result =
      ValueRange::canonicalizeFP(FPScratch, OutNaN, Opts.MaxSubRanges);
  Result.setDistributionKnown(DistKnown);
  return Result;
}

//===----------------------------------------------------------------------===//
// Probabilistic comparison
//===----------------------------------------------------------------------===//

namespace {

/// Exact point count as a double (int64-capped SubRange::count() would
/// collapse probabilities over near-full ranges into fake certainty).
double countPointsD(const SubRange &S) {
  if (S.Stride == 0 || S.Lo.Offset == S.Hi.Offset)
    return 1.0;
  __int128 Span = static_cast<__int128>(S.Hi.Offset) - S.Lo.Offset;
  return static_cast<double>(Span / S.Stride) + 1.0;
}

/// pointsBelow in double precision, capped at the true count.
double pointsBelowD(const SubRange &S, int64_t C) {
  if (C <= S.Lo.Offset)
    return 0.0;
  double Count = countPointsD(S);
  if (C > S.Hi.Offset)
    return Count;
  if (S.Stride == 0)
    return S.Lo.Offset < C ? 1.0 : 0.0;
  __int128 Span = static_cast<__int128>(C) - 1 - S.Lo.Offset;
  double N = static_cast<double>(Span / S.Stride) + 1.0;
  return std::min(N, Count);
}

} // namespace

double RangeOps::numericEqProb(const SubRange &A, const SubRange &B) {
  double Na = countPointsD(A), Nb = countPointsD(B);
  int64_t Lo = std::max(A.Lo.Offset, B.Lo.Offset);
  int64_t Hi = std::min(A.Hi.Offset, B.Hi.Offset);
  if (Lo > Hi)
    return 0.0;
  double Common;
  if (A.Stride == 0 && B.Stride == 0) {
    Common = A.Lo.Offset == B.Lo.Offset ? 1 : 0;
  } else if (A.Stride == 0 || B.Stride == 0) {
    const SubRange &Point = A.Stride == 0 ? A : B;
    const SubRange &Range = A.Stride == 0 ? B : A;
    int64_t P = Point.Lo.Offset;
    bool In = P >= Range.Lo.Offset && P <= Range.Hi.Offset &&
              onLattice(Range.Lo.Offset, Range.Stride, P);
    Common = In ? 1 : 0;
  } else {
    // Solve x ≡ aLo (mod sa), x ≡ bLo (mod sb) within [Lo, Hi].
    int64_t X, Y;
    int64_t G = extendedGcd(A.Stride, B.Stride, X, Y);
    __int128 Diff = static_cast<__int128>(B.Lo.Offset) - A.Lo.Offset;
    if (Diff % G != 0) {
      Common = 0;
    } else {
      __int128 Lcm = static_cast<__int128>(A.Stride) / G * B.Stride;
      // First solution: aLo + (Diff/G * X mod (sb/G)) * sa.
      __int128 Step = B.Stride / G;
      __int128 K = (Diff / G) % Step * X % Step;
      if (K < 0)
        K += Step;
      __int128 First = static_cast<__int128>(A.Lo.Offset) + K * A.Stride;
      // Move First into [Lo, Hi].
      if (First < Lo)
        First += ((Lo - First + Lcm - 1) / Lcm) * Lcm;
      if (First > Hi) {
        Common = 0;
      } else {
        Common = static_cast<double>((Hi - First) / Lcm) + 1.0;
      }
    }
  }
  return Common / (Na * Nb);
}

double RangeOps::numericLtProb(const SubRange &A, const SubRange &B) {
  if (A.Hi.Offset < B.Lo.Offset)
    return 1.0;
  if (A.Lo.Offset >= B.Hi.Offset)
    return 0.0;
  double Na = countPointsD(A), Nb = countPointsD(B);
  if (Nb == 1.0)
    return pointsBelowD(A, B.Lo.Offset) / Na;
  if (Na == 1.0) {
    // P(c < B) = points of B above c / Nb.
    double NotAbove =
        pointsBelowD(B, saturatingAdd(A.Lo.Offset, 1));
    return (Nb - NotAbove) / Nb;
  }
  // Continuous approximation: A ~ U[a1,a2], B ~ U[b1,b2].
  double A1 = static_cast<double>(A.Lo.Offset);
  double A2 = static_cast<double>(A.Hi.Offset);
  double B1 = static_cast<double>(B.Lo.Offset);
  double B2 = static_cast<double>(B.Hi.Offset);
  // P(A < y) integrated over y ~ U[B1,B2]:
  //   F(y) = clamp((y - A1) / (A2 - A1), 0, 1).
  auto integralF = [&](double Y) { // ∫_{A1}^{Y} F between A1..A2 pieces.
    if (Y <= A1)
      return 0.0;
    if (Y >= A2)
      return (A2 - A1) / 2.0 + (Y - A2);
    return (Y - A1) * (Y - A1) / (2.0 * (A2 - A1));
  };
  double P = (integralF(B2) - integralF(B1)) / (B2 - B1);
  return std::clamp(P, 0.0, 1.0);
}

namespace {

/// Fraction of an arithmetic progression satisfying a predicate against a
/// fixed anchor. The progression has \p Count points
///     p_j = anchor + Off + j*Step   for j = 0 .. Count-1
/// with Step signed (negative for descending); the predicate compares p_j
/// against the anchor itself, i.e. tests `Off + j*Step PRED 0`.
int64_t anchoredSatisfied(CmpPred Pred, int64_t Off, int64_t Step,
                          int64_t Count) {
  // Count j in [0, Count) with Off + j*Step PRED 0.
  switch (Pred) {
  case CmpPred::EQ: {
    if (Off % Step != 0)
      return 0;
    int64_t J = -Off / Step;
    return (J >= 0 && J < Count) ? 1 : 0;
  }
  case CmpPred::NE:
    return Count - anchoredSatisfied(CmpPred::EQ, Off, Step, Count);
  case CmpPred::LT: {
    // Off + j*Step < 0.
    if (Step > 0) {
      // Satisfied exactly for j < -Off/Step.
      int64_t Limit = ceilDiv(-Off, Step); // First j with p_j >= 0.
      return std::clamp<int64_t>(Limit, 0, Count);
    }
    // Descending: satisfied for j > Off/(-Step).
    int64_t First = floorDiv(Off, -Step) + 1; // First j with p_j < 0.
    return Count - std::clamp<int64_t>(First, 0, Count);
  }
  case CmpPred::LE:
    return anchoredSatisfied(CmpPred::LT, Off, Step, Count) +
           anchoredSatisfied(CmpPred::EQ, Off, Step, Count);
  case CmpPred::GT:
    return Count - anchoredSatisfied(CmpPred::LE, Off, Step, Count);
  case CmpPred::GE:
    return Count - anchoredSatisfied(CmpPred::LT, Off, Step, Count);
  }
  return 0;
}

double anchoredFraction(CmpPred Pred, int64_t Off, int64_t Step,
                        int64_t Count) {
  assert(Count >= 1 && Step != 0);
  // anchoredSatisfied negates Off internally; keep it off INT64_MIN
  // (saturated symbolic offsets can reach it).
  if (Off == Int64Min)
    Off = Int64Min + 1;
  return static_cast<double>(anchoredSatisfied(Pred, Off, Step, Count)) /
         static_cast<double>(Count);
}

} // namespace

std::optional<double> RangeOps::pairCmpProb(CmpPred Pred, const SubRange &A,
                                            const SubRange &B,
                                            const Value *LVal,
                                            const Value *RVal,
                                            bool LDistKnown,
                                            bool RDistKnown) {
  ++Stats.SubOps;

  // Per-case distribution trust: a result computed from an untrusted
  // distribution may only be believed when it is set-level certain.
  auto gate = [](std::optional<double> P,
                 bool Trusted) -> std::optional<double> {
    if (!P || Trusted || *P == 0.0 || *P == 1.0)
      return P;
    return std::nullopt;
  };

  // Normalize symbolic situations down to numeric comparisons.
  auto offsets = [](const SubRange &S) {
    if (S.Lo == S.Hi)
      return SubRange::singleton(S.Prob, S.Lo.Offset);
    return makePiece(S.Prob, std::min(S.Lo.Offset, S.Hi.Offset),
                     std::max(S.Lo.Offset, S.Hi.Offset),
                     std::max<int64_t>(S.Stride, 1));
  };

  const bool ASym = !A.isNumeric(), BSym = !B.isNumeric();
  if (!ASym && !BSym) {
    std::optional<double> P;
    switch (Pred) {
    case CmpPred::EQ:
      P = numericEqProb(A, B);
      break;
    case CmpPred::NE:
      P = 1.0 - numericEqProb(A, B);
      break;
    case CmpPred::LT:
      P = numericLtProb(A, B);
      break;
    case CmpPred::LE:
      P = std::min(1.0, numericLtProb(A, B) + numericEqProb(A, B));
      break;
    case CmpPred::GT:
      P = std::max(0.0, 1.0 - numericLtProb(A, B) - numericEqProb(A, B));
      break;
    case CmpPred::GE:
      P = 1.0 - numericLtProb(A, B);
      break;
    }
    return gate(P, LDistKnown && RDistKnown);
  }

  if (!Opts.EnableSymbolicRanges)
    return std::nullopt;

  // Fully-symbolic bounds on one common ancestor.
  auto symOf = [](const SubRange &S) -> const Value * {
    if (S.Lo.Sym && (S.Hi.Sym == S.Lo.Sym))
      return S.Lo.Sym;
    return nullptr;
  };
  const Value *SA = symOf(A), *SB = symOf(B);

  if (ASym && BSym && SA && SA == SB) {
    // Both relative to the same ancestor: compare offsets.
    return pairCmpProb(Pred, offsets(A), offsets(B), nullptr, nullptr,
                       LDistKnown, RDistKnown);
  }
  if (ASym && SA && SA == RVal) {
    // A's bounds are relative to the right operand itself: A PRED RVal
    // reduces to offsets PRED 0 regardless of RVal's distribution.
    return pairCmpProb(Pred, offsets(A), SubRange::singleton(1.0, 0),
                       nullptr, nullptr, LDistKnown, true);
  }
  if (BSym && SB && SB == LVal) {
    // Symmetric: 0 PRED offsets.
    return pairCmpProb(Pred, SubRange::singleton(1.0, 0), offsets(B),
                       nullptr, nullptr, true, RDistKnown);
  }

  // Partially symbolic subranges (one numeric bound, one symbolic): model
  // the unknown extent as AssumedSymbolicCount lattice points anchored at
  // the known end. This is how the loop-exit test of a derived range like
  // [0:n:1] predicts at (C-1)/C without knowing n. Saturated sentinel
  // offsets (INT64_MIN/MAX from symbolic-clip fallbacks) are not real
  // anchors and must not be modeled.
  int64_t C = std::max<int64_t>(
      2, static_cast<int64_t>(Opts.AssumedSymbolicCount));
  auto realAnchor = [](const Bound &B) {
    return B.isNumeric() && B.Offset > Int64Min + 1 &&
           B.Offset < Int64Max - 1;
  };

  // A anchored against the right operand's own variable.
  if (A.Hi.Sym && A.Hi.Sym == RVal && realAnchor(A.Lo))
    return gate(anchoredFraction(Pred, A.Hi.Offset,
                                 -std::max<int64_t>(A.Stride, 1), C),
                LDistKnown);
  if (A.Lo.Sym && A.Lo.Sym == RVal && realAnchor(A.Hi))
    return gate(anchoredFraction(Pred, A.Lo.Offset,
                                 std::max<int64_t>(A.Stride, 1), C),
                LDistKnown);
  // B anchored against the left operand's variable (swap the predicate).
  if (B.Hi.Sym && B.Hi.Sym == LVal && realAnchor(B.Lo))
    return gate(anchoredFraction(swapPred(Pred), B.Hi.Offset,
                                 -std::max<int64_t>(B.Stride, 1), C),
                RDistKnown);
  if (B.Lo.Sym && B.Lo.Sym == LVal && realAnchor(B.Hi))
    return gate(anchoredFraction(swapPred(Pred), B.Lo.Offset,
                                 std::max<int64_t>(B.Stride, 1), C),
                RDistKnown);

  // Mixed-bound subrange against a numeric constant: anchor at the
  // numeric end.
  if (ASym && !BSym && B.isSingleton()) {
    int64_t Target = B.Lo.Offset;
    if (realAnchor(A.Lo))
      return gate(anchoredFraction(Pred,
                                   saturatingSub(A.Lo.Offset, Target),
                                   std::max<int64_t>(A.Stride, 1), C),
                  LDistKnown);
    if (realAnchor(A.Hi))
      return gate(anchoredFraction(Pred,
                                   saturatingSub(A.Hi.Offset, Target),
                                   -std::max<int64_t>(A.Stride, 1), C),
                  LDistKnown);
  }
  if (BSym && !ASym && A.isSingleton()) {
    int64_t Target = A.Lo.Offset;
    if (realAnchor(B.Lo))
      return gate(anchoredFraction(swapPred(Pred),
                                   saturatingSub(B.Lo.Offset, Target),
                                   std::max<int64_t>(B.Stride, 1), C),
                  RDistKnown);
    if (realAnchor(B.Hi))
      return gate(anchoredFraction(swapPred(Pred),
                                   saturatingSub(B.Hi.Offset, Target),
                                   -std::max<int64_t>(B.Stride, 1), C),
                  RDistKnown);
  }
  return std::nullopt;
}

namespace {

double evalPredOnDoubles(CmpPred Pred, double A, double B) {
  bool Result = false;
  switch (Pred) {
  case CmpPred::EQ:
    Result = A == B;
    break;
  case CmpPred::NE:
    Result = A != B;
    break;
  case CmpPred::LT:
    Result = A < B;
    break;
  case CmpPred::LE:
    Result = A <= B;
    break;
  case CmpPred::GT:
    Result = A > B;
    break;
  case CmpPred::GE:
    Result = A >= B;
    break;
  }
  return Result ? 1.0 : 0.0;
}

} // namespace

std::optional<double> RangeOps::cmpProb(CmpPred Pred, const ValueRange &L,
                                        const ValueRange &R,
                                        const Value *LVal,
                                        const Value *RVal) {
  // The only float-payload-sensitive cases are handled before the memo:
  // both-const comparisons fold exactly, and a FloatConst meeting an FP
  // interval set is promoted to its interned singleton form (whose slice
  // id captures the payload). Everything past this point depends solely
  // on handle kind/slice and the SSA identities, so the memo key below
  // captures the computation exactly.
  if (L.isFloatConst() && R.isFloatConst())
    return evalPredOnDoubles(Pred, L.floatValue(), R.floatValue());

  ValueRange LK = L, RK = R;
  uint64_t Tag = predTag(TagCmp, Pred);
  if (Opts.EnableFPRanges && (L.isFloatRanges() || R.isFloatRanges())) {
    LK = fpPromote(L);
    RK = fpPromote(R);
    Tag = predTag(TagFCmp, Pred);
  }
  MemoKey K{Tag, encodeHandle(LK), encodeHandle(RK), LVal, RVal};
  auto It = Memo.find(K);
  if (It != Memo.end()) {
    const MemoEntry &E = It->second;
    Stats.SubOps += E.SubOps;
    if (E.Norms)
      telemetry::count(telemetry::Counter::RangeNormalizations, E.Norms);
    telemetry::count(telemetry::Counter::RangeOpMemoHits);
    if (!E.CmpHas)
      return std::nullopt;
    return E.CmpVal;
  }
  uint64_t SubOps0 = Stats.SubOps;
  uint64_t Norms0 = normalizationTicks();
  std::optional<double> P = cmpProbUncached(Pred, LK, RK, LVal, RVal);
  MemoEntry E;
  E.CmpHas = P.has_value();
  E.CmpVal = P.value_or(0.0);
  E.SubOps = Stats.SubOps - SubOps0;
  E.Norms = normalizationTicks() - Norms0;
  Memo.emplace(K, E);
  return P;
}

std::optional<double> RangeOps::cmpProbUncached(CmpPred Pred,
                                                const ValueRange &L,
                                                const ValueRange &R,
                                                const Value *LVal,
                                                const Value *RVal) {
  // FP interval comparisons have their own engine; an FP side meeting a
  // non-FP side (a ⊥ float, after promotion) is undecidable here.
  if (L.isFloatRanges() && R.isFloatRanges())
    return fpCmpProbUncached(Pred, L, R);
  if (L.isFloatRanges() || R.isFloatRanges())
    return std::nullopt;

  // A ⊥ operand may still be decidable when the other side's bounds are
  // relative to it (e.g. the loop test i < n with i in [0:n:1] and n
  // unknown): substitute the symbolic singleton [v:v].
  ValueRange LSub = L, RSub = R;
  auto symSingleton = [](const Value *V) {
    ValueRange VR;
    std::vector<SubRange> Subs{SubRange(1.0, Bound(V, 0), Bound(V, 0), 0)};
    return ValueRange::ranges(std::move(Subs), 1);
  };
  if (Opts.EnableSymbolicRanges) {
    if (!LSub.isRanges() && RSub.isRanges() && LVal &&
        !isa<Constant>(LVal))
      LSub = symSingleton(LVal);
    if (!RSub.isRanges() && LSub.isRanges() && RVal &&
        !isa<Constant>(RVal))
      RSub = symSingleton(RVal);
  }
  const ValueRange &LR = LSub, &RR = RSub;
  if (!LR.isRanges() || !RR.isRanges())
    return std::nullopt;
  double P = 0.0;
  for (const SubRange &A : LR.subRanges()) {
    for (const SubRange &B : RR.subRanges()) {
      std::optional<double> F =
          pairCmpProb(Pred, A, B, LVal, RVal, LR.distributionKnown(),
                      RR.distributionKnown());
      if (!F)
        return std::nullopt;
      P += A.Prob * B.Prob * *F;
    }
  }
  // Subrange probabilities of an untrusted distribution can still skew
  // the aggregate; with multiple subranges on an untrusted side only a
  // unanimous 0/1 outcome survives (each pair was individually gated, so
  // a non-0/1 aggregate can only arise from mixing certain 0s and 1s).
  P = std::clamp(P, 0.0, 1.0);
  if (!LR.distributionKnown() || !RR.distributionKnown()) {
    bool Mixed = P != 0.0 && P != 1.0;
    if (Mixed && (LR.subRanges().size() > 1 || RR.subRanges().size() > 1))
      return std::nullopt;
  }
  return P;
}

std::optional<double> RangeOps::fpCmpProbUncached(CmpPred Pred,
                                                  const ValueRange &L,
                                                  const ValueRange &R) {
  FPIntervalView LV = L.fpIntervals(), RV = R.fpIntervals();
  const double NL = L.nanMass(), NR = R.nanMass();
  // IEEE ordered comparisons are false whenever either side is NaN; NE
  // is true. P(either NaN) under independence:
  const double PN = NL + NR - NL * NR;
  const double NaNTerm = Pred == CmpPred::NE ? PN : 0.0;
  if (LV.empty() || RV.empty()) {
    // At least one side is certainly NaN: the outcome is decided.
    telemetry::count(telemetry::Counter::FPCmpDecided);
    return Pred == CmpPred::NE ? 1.0 : 0.0;
  }
  const bool Trusted = L.distributionKnown() && R.distributionKnown();
  // Interval masses are conditional on "not NaN" (per-side probabilities
  // sum to 1 - NaN mass).
  double P = 0.0;
  for (size_t I = 0; I < LV.size(); ++I) {
    FPInterval A = LV[I];
    for (size_t J = 0; J < RV.size(); ++J) {
      ++Stats.SubOps;
      std::optional<double> F = fpPairCmpProb(Pred, A, RV[J], Trusted);
      if (!F)
        return std::nullopt;
      P += (A.Prob / (1.0 - NL)) * (RV[J].Prob / (1.0 - NR)) * *F;
    }
  }
  P = std::clamp(P, 0.0, 1.0);
  double Final = (1.0 - PN) * P + NaNTerm;
  // Untrusted distributions: pairs were individually gated to set-level
  // certainty, but mixing certain 0s and 1s — or an untrusted NaN mass —
  // can still produce a non-certain aggregate. Only unanimity survives.
  if (!Trusted && Final != 0.0 && Final != 1.0 &&
      (LV.size() > 1 || RV.size() > 1 || PN > 0.0))
    return std::nullopt;
  telemetry::count(telemetry::Counter::FPCmpDecided);
  return Final;
}

std::optional<double> RangeOps::fpPairCmpProb(CmpPred Pred,
                                              const FPInterval &A,
                                              const FPInterval &B,
                                              bool Trusted) {
  // Set-level certainties first: valid for any distribution and the only
  // results an untrusted one may produce. Closed intervals, so e.g.
  // A.Lo >= B.Hi already refutes `a < b`.
  switch (Pred) {
  case CmpPred::LT:
    if (A.Hi < B.Lo)
      return 1.0;
    if (A.Lo >= B.Hi)
      return 0.0;
    break;
  case CmpPred::LE:
    if (A.Hi <= B.Lo)
      return 1.0;
    if (A.Lo > B.Hi)
      return 0.0;
    break;
  case CmpPred::GT:
    if (A.Lo > B.Hi)
      return 1.0;
    if (A.Hi <= B.Lo)
      return 0.0;
    break;
  case CmpPred::GE:
    if (A.Lo >= B.Hi)
      return 1.0;
    if (A.Hi < B.Lo)
      return 0.0;
    break;
  case CmpPred::EQ:
    if (A.Hi < B.Lo || B.Hi < A.Lo)
      return 0.0;
    if (A.isSingleton() && B.isSingleton())
      return A.Lo == B.Lo ? 1.0 : 0.0;
    break;
  case CmpPred::NE:
    if (A.Hi < B.Lo || B.Hi < A.Lo)
      return 1.0;
    if (A.isSingleton() && B.isSingleton())
      return A.Lo == B.Lo ? 0.0 : 1.0;
    break;
  }
  if (A.isSingleton() && B.isSingleton())
    return evalPredOnDoubles(Pred, A.Lo, B.Lo);
  if (!Trusted)
    return std::nullopt;

  // Continuous uniform model over the overlap. Point equality has
  // measure zero, so EQ/NE resolve immediately and LT == LE.
  if (Pred == CmpPred::EQ)
    return 0.0;
  if (Pred == CmpPred::NE)
    return 1.0;
  // A uniform distribution over an infinite-width interval is not a
  // model we can integrate; only the certainties above were available.
  if (!std::isfinite(A.Hi - A.Lo) || !std::isfinite(B.Hi - B.Lo))
    return std::nullopt;
  double PLt;
  if (A.isSingleton()) {
    PLt = std::clamp((B.Hi - A.Lo) / (B.Hi - B.Lo), 0.0, 1.0);
  } else if (B.isSingleton()) {
    PLt = std::clamp((B.Lo - A.Lo) / (A.Hi - A.Lo), 0.0, 1.0);
  } else {
    // P(a < y) integrated over y ~ U[B.Lo, B.Hi] — the continuous
    // counterpart of numericLtProb's integralF.
    double A1 = A.Lo, A2 = A.Hi;
    auto integralF = [&](double Y) {
      if (Y <= A1)
        return 0.0;
      if (Y >= A2)
        return (A2 - A1) / 2.0 + (Y - A2);
      return (Y - A1) * (Y - A1) / (2.0 * (A2 - A1));
    };
    PLt = std::clamp(
        (integralF(B.Hi) - integralF(B.Lo)) / (B.Hi - B.Lo), 0.0, 1.0);
  }
  // Huge-but-finite widths can overflow the integrals into ∞/∞; a NaN
  // must surface as "undecidable", never as a probability.
  if (std::isnan(PLt))
    return std::nullopt;
  switch (Pred) {
  case CmpPred::LT:
  case CmpPred::LE:
    return PLt;
  default: // GT / GE.
    return 1.0 - PLt;
  }
}
