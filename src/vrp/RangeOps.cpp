//===- vrp/RangeOps.cpp - Arithmetic on weighted value ranges --------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "vrp/RangeOps.h"

#include "support/Telemetry.h"
#include "vrp/RangeArena.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

using namespace vrp;

//===----------------------------------------------------------------------===//
// Small numeric helpers
//===----------------------------------------------------------------------===//

int64_t vrp::pointsBelow(const SubRange &S, int64_t C) {
  assert(S.isNumeric() && "pointsBelow needs a numeric subrange");
  if (C <= S.Lo.Offset)
    return 0;
  int64_t Count = *S.count();
  if (C > S.Hi.Offset)
    return Count;
  if (S.Stride == 0)
    return S.Lo.Offset < C ? 1 : 0;
  // Points Lo + i*Stride < C  <=>  i <= (C - Lo - 1) / Stride.
  __int128 Span = static_cast<__int128>(C) - 1 - S.Lo.Offset;
  __int128 N = Span / S.Stride + 1;
  return N > Count ? Count : static_cast<int64_t>(N);
}

namespace {

/// Extended gcd: returns g and x,y with a*x + b*y == g.
int64_t extendedGcd(int64_t A, int64_t B, int64_t &X, int64_t &Y) {
  if (B == 0) {
    X = 1;
    Y = 0;
    return A;
  }
  int64_t X1, Y1;
  int64_t G = extendedGcd(B, A % B, X1, Y1);
  X = Y1;
  Y = X1 - (A / B) * Y1;
  return G;
}

/// Aligns \p Hi down onto the lattice Lo + k*Stride (Stride > 0). All
/// arithmetic in 128 bits: spans over near-full int64 ranges overflow the
/// intermediate otherwise (the result itself always fits).
int64_t alignDown(int64_t Lo, int64_t Stride, int64_t Hi) {
  __int128 Span = static_cast<__int128>(Hi) - Lo;
  __int128 Aligned = static_cast<__int128>(Lo) + (Span / Stride) * Stride;
  return static_cast<int64_t>(Aligned);
}

/// Aligns \p Lo up onto the lattice with anchor Hi - k*Stride (Stride > 0).
int64_t alignUp(int64_t Hi, int64_t Stride, int64_t Lo) {
  __int128 Span = static_cast<__int128>(Hi) - Lo;
  __int128 Aligned = static_cast<__int128>(Hi) - (Span / Stride) * Stride;
  return static_cast<int64_t>(Aligned);
}

/// Builds a numeric subrange after clamping/validating the stride.
SubRange makePiece(double Prob, int64_t Lo, int64_t Hi, int64_t Stride) {
  if (Lo == Hi)
    return SubRange::numeric(Prob, Lo, Hi, 0);
  if (Stride <= 0)
    Stride = 1;
  __int128 Span = static_cast<__int128>(Hi) - Lo;
  if (Span % Stride != 0)
    Stride = 1;
  return SubRange::numeric(Prob, Lo, Hi, Stride);
}

/// Combines two bounds for addition; fails when both are symbolic.
bool addBounds(const Bound &A, const Bound &B, Bound &Out) {
  if (A.Sym && B.Sym)
    return false;
  Out = Bound(A.Sym ? A.Sym : B.Sym, saturatingAdd(A.Offset, B.Offset));
  return true;
}

/// Combines bounds for subtraction A - B; same-symbol bounds cancel.
bool subBounds(const Bound &A, const Bound &B, Bound &Out) {
  if (B.Sym) {
    if (A.Sym != B.Sym)
      return false;
    Out = Bound(saturatingSub(A.Offset, B.Offset)); // Symbols cancel.
    return true;
  }
  Out = Bound(A.Sym, saturatingSub(A.Offset, B.Offset));
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Pairwise arithmetic kernels
//===----------------------------------------------------------------------===//

bool RangeOps::pairAdd(const SubRange &A, const SubRange &B,
                       std::vector<SubRange> &Out) {
  Bound Lo, Hi;
  if (!addBounds(A.Lo, B.Lo, Lo) || !addBounds(A.Hi, B.Hi, Hi))
    return false;
  int64_t Stride = strideGcd(A.Stride, B.Stride);
  if (Lo.isNumeric() && Hi.isNumeric()) {
    Out.push_back(makePiece(A.Prob * B.Prob, Lo.Offset, Hi.Offset, Stride));
  } else {
    if (Lo == Hi)
      Stride = 0;
    else if (Stride == 0)
      Stride = 1;
    Out.push_back(SubRange(A.Prob * B.Prob, Lo, Hi, Stride));
  }
  return true;
}

bool RangeOps::pairSub(const SubRange &A, const SubRange &B,
                       std::vector<SubRange> &Out) {
  Bound Lo, Hi;
  if (!subBounds(A.Lo, B.Hi, Lo) || !subBounds(A.Hi, B.Lo, Hi))
    return false;
  int64_t Stride = strideGcd(A.Stride, B.Stride);
  if (Lo.isNumeric() && Hi.isNumeric()) {
    if (Lo.Offset > Hi.Offset)
      return false; // Mixed symbolic cancellation produced nonsense.
    Out.push_back(makePiece(A.Prob * B.Prob, Lo.Offset, Hi.Offset, Stride));
  } else {
    if (Lo == Hi)
      Stride = 0;
    else if (Stride == 0)
      Stride = 1;
    Out.push_back(SubRange(A.Prob * B.Prob, Lo, Hi, Stride));
  }
  return true;
}

bool RangeOps::pairMul(const SubRange &A, const SubRange &B,
                       std::vector<SubRange> &Out) {
  double Prob = A.Prob * B.Prob;
  // Symbolic operands only survive multiplication by 0 or 1.
  if (!A.isNumeric() || !B.isNumeric()) {
    const SubRange &Sym = A.isNumeric() ? B : A;
    const SubRange &Num = A.isNumeric() ? A : B;
    if (!Num.isNumeric() || !Num.isSingleton())
      return false;
    if (Num.Lo.Offset == 0) {
      Out.push_back(SubRange::singleton(Prob, 0));
      return true;
    }
    if (Num.Lo.Offset == 1) {
      SubRange Copy = Sym;
      Copy.Prob = Prob;
      Out.push_back(Copy);
      return true;
    }
    return false;
  }

  int64_t Corners[4] = {
      saturatingMul(A.Lo.Offset, B.Lo.Offset),
      saturatingMul(A.Lo.Offset, B.Hi.Offset),
      saturatingMul(A.Hi.Offset, B.Lo.Offset),
      saturatingMul(A.Hi.Offset, B.Hi.Offset),
  };
  int64_t Lo = *std::min_element(Corners, Corners + 4);
  int64_t Hi = *std::max_element(Corners, Corners + 4);

  int64_t Stride = 1;
  if (B.isSingleton())
    Stride = saturatingMul(A.Stride, saturatingAbs(B.Lo.Offset));
  else if (A.isSingleton())
    Stride = saturatingMul(B.Stride, saturatingAbs(A.Lo.Offset));
  Out.push_back(makePiece(Prob, Lo, Hi, Stride));
  return true;
}

bool RangeOps::pairDiv(const SubRange &A, const SubRange &B,
                       std::vector<SubRange> &Out) {
  if (!A.isNumeric() || !B.isNumeric())
    return false;
  double Prob = A.Prob * B.Prob;

  // Divisor candidates: extremes plus the smallest-magnitude nonzero
  // values; zero divisors are undefined and force ⊥ (singleton zero) or
  // are excluded (ranges straddling zero).
  std::vector<int64_t> Divisors;
  auto addDivisor = [&](int64_t D) {
    if (D != 0 && D >= B.Lo.Offset && D <= B.Hi.Offset)
      Divisors.push_back(D);
  };
  addDivisor(B.Lo.Offset);
  addDivisor(B.Hi.Offset);
  addDivisor(-1);
  addDivisor(1);
  if (Divisors.empty())
    return false; // Only zero available: division undefined.

  // Exact fast path: positive singleton divisor that preserves the lattice.
  if (B.isSingleton()) {
    int64_t C = B.Lo.Offset;
    if (C > 0 && A.Lo.Offset >= 0 && A.Stride % C == 0 &&
        A.Lo.Offset % C == 0) {
      Out.push_back(makePiece(Prob, A.Lo.Offset / C, A.Hi.Offset / C,
                              A.Stride / C));
      return true;
    }
  }

  int64_t Lo = Int64Max, Hi = Int64Min;
  for (int64_t Dividend : {A.Lo.Offset, A.Hi.Offset}) {
    for (int64_t Divisor : Divisors) {
      // C++ trunc division; Int64Min / -1 overflows.
      int64_t Q = (Dividend == Int64Min && Divisor == -1)
                      ? Int64Max
                      : Dividend / Divisor;
      Lo = std::min(Lo, Q);
      Hi = std::max(Hi, Q);
    }
  }
  // Trunc division can also produce 0 whenever |dividend| < |divisor|.
  if (A.Lo.Offset <= 0 && A.Hi.Offset >= 0) {
    Lo = std::min<int64_t>(Lo, 0);
    Hi = std::max<int64_t>(Hi, 0);
  }
  Out.push_back(makePiece(Prob, Lo, Hi, 1));
  return true;
}

bool RangeOps::pairRem(const SubRange &A, const SubRange &B,
                       std::vector<SubRange> &Out) {
  if (!A.isNumeric() || !B.isNumeric())
    return false;
  double Prob = A.Prob * B.Prob;
  // A divisor that can only be zero is undefined: ⊥. A range that merely
  // spans zero keeps its nonzero values — undefined executions contribute
  // no outcomes, mirroring pairDiv's exclusion of zero divisors.
  if (B.isSingleton() && B.Lo.Offset == 0)
    return false; // x % 0.
  // Largest inclusive remainder magnitude: |r| <= |b| - 1 <= MaxMag. When
  // the divisor can be Int64Min, |b| - 1 is exactly Int64Max; computing it
  // through saturatingAbs would silently understate the bound by one
  // (|Int64Min| saturates to Int64Max), so that case is taken directly.
  int64_t MaxMag =
      B.Lo.Offset == Int64Min
          ? Int64Max
          : std::max(saturatingAbs(B.Lo.Offset),
                     saturatingAbs(B.Hi.Offset)) -
                1;
  // C semantics: result sign follows the dividend; |result| <= MaxMag.
  if (A.Lo.Offset >= 0 && A.Hi.Offset <= MaxMag && B.isSingleton()) {
    // Entirely within one period: identity (also exact for b = Int64Min,
    // where x % b == x for every representable non-negative x).
    Out.push_back(A.withProb(Prob));
    return true;
  }
  if (B.isSingleton() && A.Lo.Offset >= 0) {
    int64_t C = saturatingAbs(B.Lo.Offset);
    if (A.Stride > 0 && A.Stride % C == 0) {
      // All lattice points congruent: single value.
      Out.push_back(SubRange::singleton(Prob, A.Lo.Offset % C));
      return true;
    }
    int64_t G = A.Stride > 0 ? strideGcd(A.Stride, C) : 0;
    if (G > 1) {
      // Residues stay congruent to Lo modulo gcd(stride, modulus).
      int64_t First = A.Lo.Offset % G;
      int64_t Last = First + ((C - 1 - First) / G) * G;
      Out.push_back(makePiece(Prob, First, std::min(Last, C - 1), G));
      return true;
    }
    Out.push_back(
        makePiece(Prob, 0, std::min(A.Hi.Offset, C - 1), 1));
    return true;
  }
  // General case: |result| <= MaxMag, result sign follows the dividend,
  // and the result magnitude never exceeds the dividend magnitude.
  int64_t Lo = A.Lo.Offset >= 0 ? 0 : std::max(A.Lo.Offset, -MaxMag);
  int64_t Hi = A.Hi.Offset <= 0 ? 0 : std::min(A.Hi.Offset, MaxMag);
  Out.push_back(makePiece(Prob, Lo, Hi, 1));
  return true;
}

namespace {

/// Stride of a lattice containing the points of both subranges: the two
/// lattices must agree modulo the result, which also requires their
/// anchors' separation to be a multiple.
int64_t unionStride(const SubRange &A, const SubRange &B) {
  __int128 Sep = static_cast<__int128>(A.Lo.Offset) - B.Lo.Offset;
  if (Sep < 0)
    Sep = -Sep;
  int64_t SepG = Sep > Int64Max ? 1 : static_cast<int64_t>(Sep);
  return strideGcd(strideGcd(A.Stride, B.Stride), SepG);
}

} // namespace

bool RangeOps::pairMin(const SubRange &A, const SubRange &B,
                       std::vector<SubRange> &Out) {
  if (!A.isNumeric() || !B.isNumeric())
    return false;
  // min(a, b) is always one of a's or b's values, so the result lattice
  // must cover the union of both lattices.
  int64_t Lo = std::min(A.Lo.Offset, B.Lo.Offset);
  int64_t Hi = std::min(A.Hi.Offset, B.Hi.Offset);
  Out.push_back(makePiece(A.Prob * B.Prob, Lo, Hi, unionStride(A, B)));
  return true;
}

bool RangeOps::pairMax(const SubRange &A, const SubRange &B,
                       std::vector<SubRange> &Out) {
  if (!A.isNumeric() || !B.isNumeric())
    return false;
  int64_t Lo = std::max(A.Lo.Offset, B.Lo.Offset);
  int64_t Hi = std::max(A.Hi.Offset, B.Hi.Offset);
  Out.push_back(makePiece(A.Prob * B.Prob, Lo, Hi, unionStride(A, B)));
  return true;
}

//===----------------------------------------------------------------------===//
// Memoization over interned operand ids
//===----------------------------------------------------------------------===//

namespace {

/// Operation tags for memo keys. Assert/cmp fold the predicate into the
/// tag's upper bits.
enum : uint8_t {
  TagAdd = 1,
  TagSub,
  TagMul,
  TagDiv,
  TagRem,
  TagMin,
  TagMax,
  TagNeg,
  TagAbs,
  TagNot,
  TagAssert,
  TagCmp,
};

uint64_t predTag(uint8_t Tag, CmpPred Pred) {
  return static_cast<uint64_t>(Tag) |
         (static_cast<uint64_t>(Pred) << 8);
}

} // namespace

size_t RangeOps::MemoKeyHash::operator()(const MemoKey &K) const {
  uint64_t H = K.Tag * 0x9e3779b97f4a7c15ull;
  auto Mix = [&H](uint64_t W) {
    H ^= W + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  };
  Mix(K.L);
  Mix(K.R);
  Mix(static_cast<uint64_t>(reinterpret_cast<uintptr_t>(K.P1)));
  Mix(static_cast<uint64_t>(reinterpret_cast<uintptr_t>(K.P2)));
  return static_cast<size_t>(H);
}

size_t
RangeOps::MeetKeyHash::operator()(const std::vector<uint64_t> &K) const {
  uint64_t H = 14695981039346656037ull;
  for (uint64_t W : K) {
    H ^= W;
    H *= 1099511628211ull;
  }
  return static_cast<size_t>(H);
}

uint64_t RangeOps::encodeHandle(const ValueRange &V) {
  return (static_cast<uint64_t>(V.sliceId()) << 8) |
         (static_cast<uint64_t>(V.kind()) << 1) |
         (V.distributionKnown() ? 1u : 0u);
}

/// Current value of the RangeNormalizations slot in this thread's shard.
/// Memo entries store the delta across the original computation so a hit
/// can replay it; while telemetry is disabled both the original events
/// and the replay are no-ops, consistently.
uint64_t RangeOps::normalizationTicks() const {
  if (!telemetry::enabled())
    return 0;
  return telemetry::detail::localShard()
      .Counters[static_cast<unsigned>(
          telemetry::Counter::RangeNormalizations)]
      .load(std::memory_order_relaxed);
}

ValueRange RangeOps::replay(const MemoEntry &E) {
  Stats.SubOps += E.SubOps;
  if (E.Norms)
    telemetry::count(telemetry::Counter::RangeNormalizations, E.Norms);
  telemetry::count(telemetry::Counter::RangeOpMemoHits);
  return E.Result;
}

template <typename Fn>
ValueRange RangeOps::memoRange(const MemoKey &K, Fn &&Compute) {
  auto It = Memo.find(K);
  if (It != Memo.end())
    return replay(It->second);
  MemoEntry E;
  uint64_t SubOps0 = Stats.SubOps;
  uint64_t Norms0 = normalizationTicks();
  E.Result = Compute();
  E.SubOps = Stats.SubOps - SubOps0;
  E.Norms = normalizationTicks() - Norms0;
  Memo.emplace(K, E);
  return E.Result;
}

//===----------------------------------------------------------------------===//
// Binary operation framework
//===----------------------------------------------------------------------===//

ValueRange RangeOps::binaryNumeric(
    uint8_t Tag, const ValueRange &L, const ValueRange &R,
    bool (RangeOps::*PairOp)(const SubRange &, const SubRange &,
                             std::vector<SubRange> &)) {
  if (L.isBottom() || R.isBottom())
    return ValueRange::bottom();
  if (L.isTop() || R.isTop())
    return ValueRange::top();
  if (!L.isRanges() || !R.isRanges())
    return ValueRange::bottom();
  MemoKey K{Tag, encodeHandle(L), encodeHandle(R), nullptr, nullptr};
  return memoRange(K, [&] { return binaryNumericUncached(L, R, PairOp); });
}

ValueRange RangeOps::binaryNumericUncached(
    const ValueRange &L, const ValueRange &R,
    bool (RangeOps::*PairOp)(const SubRange &, const SubRange &,
                             std::vector<SubRange> &)) {
  const RangeArena &Arena = RangeArena::global();
  RangeArena::Rows LRows = Arena.rows(L.sliceId());
  RangeArena::Rows RRows = Arena.rows(R.sliceId());
  Scratch.clear();
  const bool Fast = LRows.AllNumeric && RRows.AllNumeric;
  telemetry::count(Fast ? telemetry::Counter::RangeKernelFastPath
                        : telemetry::Counter::RangeKernelSlowPath);
  if (Fast) {
    // All-numeric batch: iterate the SoA columns directly; bounds are
    // built numeric with no symbol-table resolution.
    for (uint32_t I = 0; I < LRows.Count; ++I) {
      SubRange A(LRows.Prob[I], Bound(LRows.LoOff[I]),
                 Bound(LRows.HiOff[I]), LRows.Stride[I]);
      for (uint32_t J = 0; J < RRows.Count; ++J) {
        SubRange B(RRows.Prob[J], Bound(RRows.LoOff[J]),
                   Bound(RRows.HiOff[J]), RRows.Stride[J]);
        ++Stats.SubOps;
        if (!(this->*PairOp)(A, B, Scratch))
          return ValueRange::bottom();
      }
    }
  } else {
    for (uint32_t I = 0; I < LRows.Count; ++I) {
      SubRange A(LRows.Prob[I],
                 Bound(Arena.symValue(LRows.LoSym[I]), LRows.LoOff[I]),
                 Bound(Arena.symValue(LRows.HiSym[I]), LRows.HiOff[I]),
                 LRows.Stride[I]);
      for (uint32_t J = 0; J < RRows.Count; ++J) {
        SubRange B(RRows.Prob[J],
                   Bound(Arena.symValue(RRows.LoSym[J]), RRows.LoOff[J]),
                   Bound(Arena.symValue(RRows.HiSym[J]), RRows.HiOff[J]),
                   RRows.Stride[J]);
        ++Stats.SubOps;
        if (!(this->*PairOp)(A, B, Scratch))
          return ValueRange::bottom();
      }
    }
  }
  ValueRange Result = ValueRange::canonicalize(Scratch, Opts.MaxSubRanges);
  Result.setDistributionKnown(L.distributionKnown() &&
                              R.distributionKnown());
  return Result;
}

namespace {

/// Folds a float binary op when both sides are known constants.
ValueRange foldFloat(const ValueRange &L, const ValueRange &R,
                     double (*Fold)(double, double)) {
  if (L.isTop() || R.isTop())
    return ValueRange::top();
  if (L.isFloatConst() && R.isFloatConst())
    return ValueRange::floatConstant(Fold(L.floatValue(), R.floatValue()));
  return ValueRange::bottom();
}

} // namespace

ValueRange RangeOps::add(const ValueRange &L, const ValueRange &R) {
  if (L.isFloatConst() || R.isFloatConst())
    return foldFloat(L, R, [](double A, double B) { return A + B; });
  return binaryNumeric(TagAdd, L, R, &RangeOps::pairAdd);
}

ValueRange RangeOps::sub(const ValueRange &L, const ValueRange &R) {
  if (L.isFloatConst() || R.isFloatConst())
    return foldFloat(L, R, [](double A, double B) { return A - B; });
  return binaryNumeric(TagSub, L, R, &RangeOps::pairSub);
}

ValueRange RangeOps::mul(const ValueRange &L, const ValueRange &R) {
  if (L.isFloatConst() || R.isFloatConst())
    return foldFloat(L, R, [](double A, double B) { return A * B; });
  return binaryNumeric(TagMul, L, R, &RangeOps::pairMul);
}

ValueRange RangeOps::div(const ValueRange &L, const ValueRange &R) {
  if (L.isFloatConst() || R.isFloatConst())
    return foldFloat(L, R, [](double A, double B) {
      return B == 0.0 ? 0.0 : A / B;
    });
  return binaryNumeric(TagDiv, L, R, &RangeOps::pairDiv);
}

ValueRange RangeOps::rem(const ValueRange &L, const ValueRange &R) {
  // Even a statically unknown dividend has a known result *set*:
  // |x % c| < |c| (C semantics). The distribution stays unknown.
  if (L.isBottom() && R.isRanges()) {
    if (auto C = R.asIntConstant()) {
      if (*C != 0 && *C != Int64Min) {
        int64_t M = *C < 0 ? -*C : *C;
        ValueRange Result = ValueRange::ranges(
            {SubRange::numeric(1.0, -(M - 1), M - 1, M == 1 ? 0 : 1)},
            Opts.MaxSubRanges);
        Result.setDistributionKnown(false);
        return Result;
      }
    }
  }
  return binaryNumeric(TagRem, L, R, &RangeOps::pairRem);
}

ValueRange RangeOps::minOp(const ValueRange &L, const ValueRange &R) {
  if (L.isFloatConst() || R.isFloatConst())
    return foldFloat(L, R,
                     [](double A, double B) { return std::min(A, B); });
  return binaryNumeric(TagMin, L, R, &RangeOps::pairMin);
}

ValueRange RangeOps::maxOp(const ValueRange &L, const ValueRange &R) {
  if (L.isFloatConst() || R.isFloatConst())
    return foldFloat(L, R,
                     [](double A, double B) { return std::max(A, B); });
  return binaryNumeric(TagMax, L, R, &RangeOps::pairMax);
}

ValueRange RangeOps::neg(const ValueRange &V) {
  if (V.isTop() || V.isBottom())
    return V;
  if (V.isFloatConst())
    return ValueRange::floatConstant(-V.floatValue());
  MemoKey K{TagNeg, encodeHandle(V), 0, nullptr, nullptr};
  return memoRange(K, [&] {
    Scratch.clear();
    for (const SubRange &S : V.subRanges()) {
      ++Stats.SubOps;
      if (!S.isNumeric())
        return ValueRange::bottom(); // -(x+c) is not representable.
      Scratch.push_back(makePiece(S.Prob, saturatingNeg(S.Hi.Offset),
                                  saturatingNeg(S.Lo.Offset), S.Stride));
    }
    ValueRange Result = ValueRange::canonicalize(Scratch, Opts.MaxSubRanges);
    Result.setDistributionKnown(V.distributionKnown());
    return Result;
  });
}

ValueRange RangeOps::absOp(const ValueRange &V) {
  if (V.isTop() || V.isBottom())
    return V;
  if (V.isFloatConst())
    return ValueRange::floatConstant(std::abs(V.floatValue()));
  MemoKey K{TagAbs, encodeHandle(V), 0, nullptr, nullptr};
  return memoRange(K, [&] {
    Scratch.clear();
    for (const SubRange &S : V.subRanges()) {
      ++Stats.SubOps;
      if (!S.isNumeric())
        return ValueRange::bottom();
      if (S.Lo.Offset >= 0) {
        Scratch.push_back(S);
      } else if (S.Hi.Offset <= 0) {
        Scratch.push_back(makePiece(S.Prob, saturatingNeg(S.Hi.Offset),
                                    saturatingNeg(S.Lo.Offset), S.Stride));
      } else {
        int64_t Hi = std::max(saturatingNeg(S.Lo.Offset), S.Hi.Offset);
        Scratch.push_back(makePiece(S.Prob, 0, Hi, 1));
      }
    }
    ValueRange Result = ValueRange::canonicalize(Scratch, Opts.MaxSubRanges);
    Result.setDistributionKnown(V.distributionKnown());
    return Result;
  });
}

ValueRange RangeOps::notOp(const ValueRange &V) {
  if (V.isTop())
    return ValueRange::top();
  if (!V.isRanges()) {
    // ⊥ / float-const: probNonZero is O(1) here, no point memoizing.
    std::optional<double> P = V.probNonZero();
    if (!P)
      return ValueRange::bottom();
    return ValueRange::weightedBool(1.0 - *P);
  }
  MemoKey K{TagNot, encodeHandle(V), 0, nullptr, nullptr};
  return memoRange(K, [&] {
    std::optional<double> P = V.probNonZero();
    if (!P)
      return ValueRange::bottom();
    if (!V.distributionKnown() && *P != 0.0 && *P != 1.0)
      return ValueRange::bottom(); // Only certainty survives unknown dist.
    return ValueRange::weightedBool(1.0 - *P);
  });
}

ValueRange RangeOps::intToFloat(const ValueRange &V) {
  if (V.isTop())
    return ValueRange::top();
  if (auto C = V.asIntConstant())
    return ValueRange::floatConstant(static_cast<double>(*C));
  return ValueRange::bottom();
}

ValueRange RangeOps::floatToInt(const ValueRange &V) {
  if (V.isTop())
    return ValueRange::top();
  if (V.isFloatConst()) {
    double D = V.floatValue();
    if (D >= static_cast<double>(Int64Min) &&
        D <= static_cast<double>(Int64Max))
      return ValueRange::intConstant(static_cast<int64_t>(D));
  }
  return ValueRange::bottom();
}

//===----------------------------------------------------------------------===//
// Meet
//===----------------------------------------------------------------------===//

ValueRange RangeOps::meetWeighted(
    const std::vector<std::pair<ValueRange, double>> &Entries) {
  telemetry::count(telemetry::Counter::Meets);

  // Memo key: the full entry sequence — encoded handle, float payload
  // (float-const entries fold by value) and weight bits per entry.
  MeetKeyScratch.clear();
  for (const auto &[VR, W] : Entries) {
    uint64_t FBits = 0, WBits = 0;
    double F = VR.floatValue();
    std::memcpy(&FBits, &F, sizeof(FBits));
    std::memcpy(&WBits, &W, sizeof(WBits));
    MeetKeyScratch.push_back(encodeHandle(VR));
    MeetKeyScratch.push_back(FBits);
    MeetKeyScratch.push_back(WBits);
  }
  auto MemoIt = MeetMemo.find(MeetKeyScratch);
  if (MemoIt != MeetMemo.end())
    return replay(MemoIt->second);
  MemoEntry E;
  uint64_t SubOps0 = Stats.SubOps;
  uint64_t Norms0 = normalizationTicks();
  E.Result = meetWeightedUncached(Entries);
  E.SubOps = Stats.SubOps - SubOps0;
  E.Norms = normalizationTicks() - Norms0;
  MeetMemo.emplace(MeetKeyScratch, E);
  return E.Result;
}

ValueRange RangeOps::meetWeightedUncached(
    const std::vector<std::pair<ValueRange, double>> &Entries) {
  double TotalWeight = 0.0;
  bool SawFloat = false, SawRanges = false;
  double FloatVal = 0.0;
  bool FloatConsistent = true;

  for (const auto &[VR, W] : Entries) {
    if (W <= 0.0 || VR.isTop())
      continue;
    if (VR.isBottom())
      return ValueRange::bottom();
    if (VR.isFloatConst()) {
      if (SawFloat && VR.floatValue() != FloatVal)
        FloatConsistent = false;
      FloatVal = VR.floatValue();
      SawFloat = true;
    } else {
      SawRanges = true;
    }
    TotalWeight += W;
  }
  if (TotalWeight <= 0.0)
    return ValueRange::top(); // Nothing known yet.
  if (SawFloat) {
    if (SawRanges || !FloatConsistent)
      return ValueRange::bottom();
    return ValueRange::floatConstant(FloatVal);
  }

  Scratch.clear();
  bool DistKnown = true;
  for (const auto &[VR, W] : Entries) {
    if (W <= 0.0 || !VR.isRanges())
      continue;
    DistKnown &= VR.distributionKnown();
    double Scale = W / TotalWeight;
    for (const SubRange &S : VR.subRanges()) {
      ++Stats.SubOps;
      SubRange Scaled = S;
      Scaled.Prob *= Scale;
      Scratch.push_back(Scaled);
    }
  }
  ValueRange Result = ValueRange::canonicalize(Scratch, Opts.MaxSubRanges);
  Result.setDistributionKnown(DistKnown);
  return Result;
}

//===----------------------------------------------------------------------===//
// Assertions
//===----------------------------------------------------------------------===//

namespace {

/// Clips one numeric subrange against `value PRED C`; appends surviving
/// pieces with probability scaled by the surviving point fraction.
void clipNumeric(const SubRange &S, CmpPred Pred, int64_t C,
                 std::vector<SubRange> &Out) {
  int64_t Count = *S.count();
  auto keepUpTo = [&](int64_t U) { // Values <= U survive.
    if (U >= S.Hi.Offset) {
      Out.push_back(S);
      return;
    }
    if (U < S.Lo.Offset)
      return; // Nothing survives.
    int64_t NewHi = S.Stride == 0 ? S.Lo.Offset
                                  : alignDown(S.Lo.Offset, S.Stride, U);
    SubRange Piece = makePiece(S.Prob, S.Lo.Offset, NewHi, S.Stride);
    Piece.Prob = S.Prob * (static_cast<double>(*Piece.count()) / Count);
    Out.push_back(Piece);
  };
  auto keepFrom = [&](int64_t L) { // Values >= L survive.
    if (L <= S.Lo.Offset) {
      Out.push_back(S);
      return;
    }
    if (L > S.Hi.Offset)
      return;
    int64_t NewLo = S.Stride == 0 ? S.Hi.Offset
                                  : alignUp(S.Hi.Offset, S.Stride, L);
    SubRange Piece = makePiece(S.Prob, NewLo, S.Hi.Offset, S.Stride);
    Piece.Prob = S.Prob * (static_cast<double>(*Piece.count()) / Count);
    Out.push_back(Piece);
  };

  switch (Pred) {
  case CmpPred::LT:
    if (C == Int64Min)
      return; // x < INT64_MIN is impossible; nothing survives.
    keepUpTo(C - 1);
    return;
  case CmpPred::LE:
    keepUpTo(C);
    return;
  case CmpPred::GT:
    if (C == Int64Max)
      return;
    keepFrom(C + 1);
    return;
  case CmpPred::GE:
    keepFrom(C);
    return;
  case CmpPred::EQ: {
    bool Contains = C >= S.Lo.Offset && C <= S.Hi.Offset &&
                    onLattice(S.Lo.Offset, S.Stride, C);
    if (Contains)
      Out.push_back(SubRange::singleton(S.Prob / Count, C));
    return;
  }
  case CmpPred::NE: {
    bool Contains = C >= S.Lo.Offset && C <= S.Hi.Offset &&
                    onLattice(S.Lo.Offset, S.Stride, C);
    if (!Contains) {
      Out.push_back(S);
      return;
    }
    double Keep = S.Prob * (static_cast<double>(Count - 1) / Count);
    if (Count == 1)
      return; // The whole subrange was that one value.
    if (C == S.Lo.Offset) {
      SubRange Piece = makePiece(Keep, S.Lo.Offset + S.Stride, S.Hi.Offset,
                                 S.Stride);
      Out.push_back(Piece);
    } else if (C == S.Hi.Offset) {
      Out.push_back(
          makePiece(Keep, S.Lo.Offset, S.Hi.Offset - S.Stride, S.Stride));
    } else {
      // Interior removal: split proportionally to the two sides.
      int64_t Below = pointsBelow(S, C);
      int64_t Above = Count - Below - 1;
      Out.push_back(makePiece(S.Prob * Below / Count, S.Lo.Offset,
                              C - S.Stride, S.Stride));
      Out.push_back(makePiece(S.Prob * Above / Count, C + S.Stride,
                              S.Hi.Offset, S.Stride));
    }
    return;
  }
  }
}

/// Clips one subrange against a symbolic bound `value PRED (Sym)`; keeps
/// probability unchanged (the surviving fraction is unknown).
void clipSymbolic(const SubRange &S, CmpPred Pred, const Value *Sym,
                  std::vector<SubRange> &Out) {
  SubRange Piece = S;
  switch (Pred) {
  case CmpPred::LT:
    Piece.Hi = Bound(Sym, -1);
    break;
  case CmpPred::LE:
    Piece.Hi = Bound(Sym, 0);
    break;
  case CmpPred::GT:
    Piece.Lo = Bound(Sym, 1);
    break;
  case CmpPred::GE:
    Piece.Lo = Bound(Sym, 0);
    break;
  case CmpPred::EQ:
    // assert x == y: x becomes an exact copy of y.
    Out.push_back(SubRange(S.Prob, Bound(Sym, 0), Bound(Sym, 0), 0));
    return;
  case CmpPred::NE:
    Out.push_back(S); // No representable refinement.
    return;
  }
  // Bounds relative to two different ancestors are unrepresentable; fall
  // back to the assert side only (the controlling test is the most
  // predictive information available).
  if (Piece.Lo.Sym && Piece.Hi.Sym && Piece.Lo.Sym != Piece.Hi.Sym) {
    if (Pred == CmpPred::LT || Pred == CmpPred::LE)
      Piece.Lo = Bound(Int64Min);
    else
      Piece.Hi = Bound(Int64Max);
    Piece.Stride = 1;
  }
  // Symbolic clipping can invert numeric-looking bounds only at runtime;
  // statically we keep the piece as-is.
  if (Piece.Lo.isNumeric() && Piece.Hi.isNumeric() &&
      Piece.Lo.Offset > Piece.Hi.Offset) {
    Out.push_back(S);
    return;
  }
  if (Piece.Lo == Piece.Hi)
    Piece.Stride = 0;
  else if (Piece.Stride == 0)
    Piece.Stride = 1;
  Out.push_back(Piece);
}

} // namespace

ValueRange RangeOps::applyAssert(const ValueRange &Src, CmpPred Pred,
                                 const ValueRange &BoundRange,
                                 const Value *BoundVal) {
  if (!Src.isRanges() && !Src.isBottom())
    return Src; // ⊤ / float-const pass through untouched (not memoized:
                // a float-const result carries its payload verbatim).
  MemoKey K{predTag(TagAssert, Pred), encodeHandle(Src),
            encodeHandle(BoundRange), BoundVal, nullptr};
  return memoRange(
      K, [&] { return applyAssertUncached(Src, Pred, BoundRange, BoundVal); });
}

ValueRange RangeOps::applyAssertUncached(const ValueRange &Src,
                                         CmpPred Pred,
                                         const ValueRange &BoundRange,
                                         const Value *BoundVal) {
  // An assert on a statically unknown value still pins down the *set* of
  // surviving values ("valuable information can often be derived from the
  // equality tests controlling branches") — but not their distribution.
  ValueRange Effective = Src;
  if (Src.isBottom()) {
    Effective = ValueRange::fullIntRange();
    Effective.setDistributionKnown(false);
  }
  const ValueRange &SrcR = Effective;

  std::optional<int64_t> C = BoundRange.asIntConstant();
  const Value *Sym = nullptr;
  if (!C && Opts.EnableSymbolicRanges && BoundVal &&
      !isa<Constant>(BoundVal))
    Sym = BoundVal;

  std::vector<SubRange> &Out = Scratch;
  Out.clear();
  for (const SubRange &S : SrcR.subRanges()) {
    ++Stats.SubOps;
    if (C && S.isNumeric()) {
      clipNumeric(S, Pred, *C, Out);
    } else if (C) {
      // Symbolic subrange, numeric bound: adopt the numeric bound on the
      // constrained side (prefer the assert's information).
      SubRange Piece = S;
      switch (Pred) {
      case CmpPred::LT:
        Piece.Hi = Bound(*C == Int64Min ? Int64Min : *C - 1);
        break;
      case CmpPred::LE:
        Piece.Hi = Bound(*C);
        break;
      case CmpPred::GT:
        Piece.Lo = Bound(*C == Int64Max ? Int64Max : *C + 1);
        break;
      case CmpPred::GE:
        Piece.Lo = Bound(*C);
        break;
      case CmpPred::EQ:
        Piece = SubRange::singleton(S.Prob, *C);
        break;
      case CmpPred::NE:
        break;
      }
      if (Piece.Lo.isNumeric() && Piece.Hi.isNumeric() &&
          Piece.Lo.Offset > Piece.Hi.Offset) {
        continue; // Contradiction: nothing survives from this piece.
      }
      if (Piece.Lo == Piece.Hi)
        Piece.Stride = 0;
      else if (Piece.Stride == 0)
        Piece.Stride = 1;
      Out.push_back(Piece);
    } else if (Sym) {
      clipSymbolic(S, Pred, Sym, Out);
    } else {
      Out.push_back(S); // No usable bound information.
    }
  }
  if (Out.empty())
    return ValueRange::bottom(); // Contradicted assert: edge unreachable.
  // Clipping drops the excluded values' probability mass (EQ keeps one
  // point's worth, NE removes the interior, LT/GT shave the tails), so
  // the surviving pieces no longer sum to 1. Renormalize here — the
  // split site that drifts — rather than relying on the canonicalizer's
  // silent backstop, and count the event so tests can observe it.
  double Total = 0.0;
  for (const SubRange &S : Out)
    Total += S.Prob;
  if (Total > 0.0 && std::abs(Total - 1.0) > 1e-9) {
    telemetry::count(telemetry::Counter::RangeNormalizations);
    for (SubRange &S : Out)
      S.Prob /= Total;
  }
  ValueRange Result = ValueRange::ranges(std::move(Out), Opts.MaxSubRanges);
  Result.setDistributionKnown(SrcR.distributionKnown());
  Result.assertNormalized();
  return Result;
}

//===----------------------------------------------------------------------===//
// Probabilistic comparison
//===----------------------------------------------------------------------===//

namespace {

/// Exact point count as a double (int64-capped SubRange::count() would
/// collapse probabilities over near-full ranges into fake certainty).
double countPointsD(const SubRange &S) {
  if (S.Stride == 0 || S.Lo.Offset == S.Hi.Offset)
    return 1.0;
  __int128 Span = static_cast<__int128>(S.Hi.Offset) - S.Lo.Offset;
  return static_cast<double>(Span / S.Stride) + 1.0;
}

/// pointsBelow in double precision, capped at the true count.
double pointsBelowD(const SubRange &S, int64_t C) {
  if (C <= S.Lo.Offset)
    return 0.0;
  double Count = countPointsD(S);
  if (C > S.Hi.Offset)
    return Count;
  if (S.Stride == 0)
    return S.Lo.Offset < C ? 1.0 : 0.0;
  __int128 Span = static_cast<__int128>(C) - 1 - S.Lo.Offset;
  double N = static_cast<double>(Span / S.Stride) + 1.0;
  return std::min(N, Count);
}

} // namespace

double RangeOps::numericEqProb(const SubRange &A, const SubRange &B) {
  double Na = countPointsD(A), Nb = countPointsD(B);
  int64_t Lo = std::max(A.Lo.Offset, B.Lo.Offset);
  int64_t Hi = std::min(A.Hi.Offset, B.Hi.Offset);
  if (Lo > Hi)
    return 0.0;
  double Common;
  if (A.Stride == 0 && B.Stride == 0) {
    Common = A.Lo.Offset == B.Lo.Offset ? 1 : 0;
  } else if (A.Stride == 0 || B.Stride == 0) {
    const SubRange &Point = A.Stride == 0 ? A : B;
    const SubRange &Range = A.Stride == 0 ? B : A;
    int64_t P = Point.Lo.Offset;
    bool In = P >= Range.Lo.Offset && P <= Range.Hi.Offset &&
              onLattice(Range.Lo.Offset, Range.Stride, P);
    Common = In ? 1 : 0;
  } else {
    // Solve x ≡ aLo (mod sa), x ≡ bLo (mod sb) within [Lo, Hi].
    int64_t X, Y;
    int64_t G = extendedGcd(A.Stride, B.Stride, X, Y);
    __int128 Diff = static_cast<__int128>(B.Lo.Offset) - A.Lo.Offset;
    if (Diff % G != 0) {
      Common = 0;
    } else {
      __int128 Lcm = static_cast<__int128>(A.Stride) / G * B.Stride;
      // First solution: aLo + (Diff/G * X mod (sb/G)) * sa.
      __int128 Step = B.Stride / G;
      __int128 K = (Diff / G) % Step * X % Step;
      if (K < 0)
        K += Step;
      __int128 First = static_cast<__int128>(A.Lo.Offset) + K * A.Stride;
      // Move First into [Lo, Hi].
      if (First < Lo)
        First += ((Lo - First + Lcm - 1) / Lcm) * Lcm;
      if (First > Hi) {
        Common = 0;
      } else {
        Common = static_cast<double>((Hi - First) / Lcm) + 1.0;
      }
    }
  }
  return Common / (Na * Nb);
}

double RangeOps::numericLtProb(const SubRange &A, const SubRange &B) {
  if (A.Hi.Offset < B.Lo.Offset)
    return 1.0;
  if (A.Lo.Offset >= B.Hi.Offset)
    return 0.0;
  double Na = countPointsD(A), Nb = countPointsD(B);
  if (Nb == 1.0)
    return pointsBelowD(A, B.Lo.Offset) / Na;
  if (Na == 1.0) {
    // P(c < B) = points of B above c / Nb.
    double NotAbove =
        pointsBelowD(B, saturatingAdd(A.Lo.Offset, 1));
    return (Nb - NotAbove) / Nb;
  }
  // Continuous approximation: A ~ U[a1,a2], B ~ U[b1,b2].
  double A1 = static_cast<double>(A.Lo.Offset);
  double A2 = static_cast<double>(A.Hi.Offset);
  double B1 = static_cast<double>(B.Lo.Offset);
  double B2 = static_cast<double>(B.Hi.Offset);
  // P(A < y) integrated over y ~ U[B1,B2]:
  //   F(y) = clamp((y - A1) / (A2 - A1), 0, 1).
  auto integralF = [&](double Y) { // ∫_{A1}^{Y} F between A1..A2 pieces.
    if (Y <= A1)
      return 0.0;
    if (Y >= A2)
      return (A2 - A1) / 2.0 + (Y - A2);
    return (Y - A1) * (Y - A1) / (2.0 * (A2 - A1));
  };
  double P = (integralF(B2) - integralF(B1)) / (B2 - B1);
  return std::clamp(P, 0.0, 1.0);
}

namespace {

/// Fraction of an arithmetic progression satisfying a predicate against a
/// fixed anchor. The progression has \p Count points
///     p_j = anchor + Off + j*Step   for j = 0 .. Count-1
/// with Step signed (negative for descending); the predicate compares p_j
/// against the anchor itself, i.e. tests `Off + j*Step PRED 0`.
int64_t anchoredSatisfied(CmpPred Pred, int64_t Off, int64_t Step,
                          int64_t Count) {
  // Count j in [0, Count) with Off + j*Step PRED 0.
  switch (Pred) {
  case CmpPred::EQ: {
    if (Off % Step != 0)
      return 0;
    int64_t J = -Off / Step;
    return (J >= 0 && J < Count) ? 1 : 0;
  }
  case CmpPred::NE:
    return Count - anchoredSatisfied(CmpPred::EQ, Off, Step, Count);
  case CmpPred::LT: {
    // Off + j*Step < 0.
    if (Step > 0) {
      // Satisfied exactly for j < -Off/Step.
      int64_t Limit = ceilDiv(-Off, Step); // First j with p_j >= 0.
      return std::clamp<int64_t>(Limit, 0, Count);
    }
    // Descending: satisfied for j > Off/(-Step).
    int64_t First = floorDiv(Off, -Step) + 1; // First j with p_j < 0.
    return Count - std::clamp<int64_t>(First, 0, Count);
  }
  case CmpPred::LE:
    return anchoredSatisfied(CmpPred::LT, Off, Step, Count) +
           anchoredSatisfied(CmpPred::EQ, Off, Step, Count);
  case CmpPred::GT:
    return Count - anchoredSatisfied(CmpPred::LE, Off, Step, Count);
  case CmpPred::GE:
    return Count - anchoredSatisfied(CmpPred::LT, Off, Step, Count);
  }
  return 0;
}

double anchoredFraction(CmpPred Pred, int64_t Off, int64_t Step,
                        int64_t Count) {
  assert(Count >= 1 && Step != 0);
  // anchoredSatisfied negates Off internally; keep it off INT64_MIN
  // (saturated symbolic offsets can reach it).
  if (Off == Int64Min)
    Off = Int64Min + 1;
  return static_cast<double>(anchoredSatisfied(Pred, Off, Step, Count)) /
         static_cast<double>(Count);
}

} // namespace

std::optional<double> RangeOps::pairCmpProb(CmpPred Pred, const SubRange &A,
                                            const SubRange &B,
                                            const Value *LVal,
                                            const Value *RVal,
                                            bool LDistKnown,
                                            bool RDistKnown) {
  ++Stats.SubOps;

  // Per-case distribution trust: a result computed from an untrusted
  // distribution may only be believed when it is set-level certain.
  auto gate = [](std::optional<double> P,
                 bool Trusted) -> std::optional<double> {
    if (!P || Trusted || *P == 0.0 || *P == 1.0)
      return P;
    return std::nullopt;
  };

  // Normalize symbolic situations down to numeric comparisons.
  auto offsets = [](const SubRange &S) {
    if (S.Lo == S.Hi)
      return SubRange::singleton(S.Prob, S.Lo.Offset);
    return makePiece(S.Prob, std::min(S.Lo.Offset, S.Hi.Offset),
                     std::max(S.Lo.Offset, S.Hi.Offset),
                     std::max<int64_t>(S.Stride, 1));
  };

  const bool ASym = !A.isNumeric(), BSym = !B.isNumeric();
  if (!ASym && !BSym) {
    std::optional<double> P;
    switch (Pred) {
    case CmpPred::EQ:
      P = numericEqProb(A, B);
      break;
    case CmpPred::NE:
      P = 1.0 - numericEqProb(A, B);
      break;
    case CmpPred::LT:
      P = numericLtProb(A, B);
      break;
    case CmpPred::LE:
      P = std::min(1.0, numericLtProb(A, B) + numericEqProb(A, B));
      break;
    case CmpPred::GT:
      P = std::max(0.0, 1.0 - numericLtProb(A, B) - numericEqProb(A, B));
      break;
    case CmpPred::GE:
      P = 1.0 - numericLtProb(A, B);
      break;
    }
    return gate(P, LDistKnown && RDistKnown);
  }

  if (!Opts.EnableSymbolicRanges)
    return std::nullopt;

  // Fully-symbolic bounds on one common ancestor.
  auto symOf = [](const SubRange &S) -> const Value * {
    if (S.Lo.Sym && (S.Hi.Sym == S.Lo.Sym))
      return S.Lo.Sym;
    return nullptr;
  };
  const Value *SA = symOf(A), *SB = symOf(B);

  if (ASym && BSym && SA && SA == SB) {
    // Both relative to the same ancestor: compare offsets.
    return pairCmpProb(Pred, offsets(A), offsets(B), nullptr, nullptr,
                       LDistKnown, RDistKnown);
  }
  if (ASym && SA && SA == RVal) {
    // A's bounds are relative to the right operand itself: A PRED RVal
    // reduces to offsets PRED 0 regardless of RVal's distribution.
    return pairCmpProb(Pred, offsets(A), SubRange::singleton(1.0, 0),
                       nullptr, nullptr, LDistKnown, true);
  }
  if (BSym && SB && SB == LVal) {
    // Symmetric: 0 PRED offsets.
    return pairCmpProb(Pred, SubRange::singleton(1.0, 0), offsets(B),
                       nullptr, nullptr, true, RDistKnown);
  }

  // Partially symbolic subranges (one numeric bound, one symbolic): model
  // the unknown extent as AssumedSymbolicCount lattice points anchored at
  // the known end. This is how the loop-exit test of a derived range like
  // [0:n:1] predicts at (C-1)/C without knowing n. Saturated sentinel
  // offsets (INT64_MIN/MAX from symbolic-clip fallbacks) are not real
  // anchors and must not be modeled.
  int64_t C = std::max<int64_t>(
      2, static_cast<int64_t>(Opts.AssumedSymbolicCount));
  auto realAnchor = [](const Bound &B) {
    return B.isNumeric() && B.Offset > Int64Min + 1 &&
           B.Offset < Int64Max - 1;
  };

  // A anchored against the right operand's own variable.
  if (A.Hi.Sym && A.Hi.Sym == RVal && realAnchor(A.Lo))
    return gate(anchoredFraction(Pred, A.Hi.Offset,
                                 -std::max<int64_t>(A.Stride, 1), C),
                LDistKnown);
  if (A.Lo.Sym && A.Lo.Sym == RVal && realAnchor(A.Hi))
    return gate(anchoredFraction(Pred, A.Lo.Offset,
                                 std::max<int64_t>(A.Stride, 1), C),
                LDistKnown);
  // B anchored against the left operand's variable (swap the predicate).
  if (B.Hi.Sym && B.Hi.Sym == LVal && realAnchor(B.Lo))
    return gate(anchoredFraction(swapPred(Pred), B.Hi.Offset,
                                 -std::max<int64_t>(B.Stride, 1), C),
                RDistKnown);
  if (B.Lo.Sym && B.Lo.Sym == LVal && realAnchor(B.Hi))
    return gate(anchoredFraction(swapPred(Pred), B.Lo.Offset,
                                 std::max<int64_t>(B.Stride, 1), C),
                RDistKnown);

  // Mixed-bound subrange against a numeric constant: anchor at the
  // numeric end.
  if (ASym && !BSym && B.isSingleton()) {
    int64_t Target = B.Lo.Offset;
    if (realAnchor(A.Lo))
      return gate(anchoredFraction(Pred,
                                   saturatingSub(A.Lo.Offset, Target),
                                   std::max<int64_t>(A.Stride, 1), C),
                  LDistKnown);
    if (realAnchor(A.Hi))
      return gate(anchoredFraction(Pred,
                                   saturatingSub(A.Hi.Offset, Target),
                                   -std::max<int64_t>(A.Stride, 1), C),
                  LDistKnown);
  }
  if (BSym && !ASym && A.isSingleton()) {
    int64_t Target = A.Lo.Offset;
    if (realAnchor(B.Lo))
      return gate(anchoredFraction(swapPred(Pred),
                                   saturatingSub(B.Lo.Offset, Target),
                                   std::max<int64_t>(B.Stride, 1), C),
                  RDistKnown);
    if (realAnchor(B.Hi))
      return gate(anchoredFraction(swapPred(Pred),
                                   saturatingSub(B.Hi.Offset, Target),
                                   -std::max<int64_t>(B.Stride, 1), C),
                  RDistKnown);
  }
  return std::nullopt;
}

namespace {

double evalPredOnDoubles(CmpPred Pred, double A, double B) {
  bool Result = false;
  switch (Pred) {
  case CmpPred::EQ:
    Result = A == B;
    break;
  case CmpPred::NE:
    Result = A != B;
    break;
  case CmpPred::LT:
    Result = A < B;
    break;
  case CmpPred::LE:
    Result = A <= B;
    break;
  case CmpPred::GT:
    Result = A > B;
    break;
  case CmpPred::GE:
    Result = A >= B;
    break;
  }
  return Result ? 1.0 : 0.0;
}

} // namespace

std::optional<double> RangeOps::cmpProb(CmpPred Pred, const ValueRange &L,
                                        const ValueRange &R,
                                        const Value *LVal,
                                        const Value *RVal) {
  // The only float-payload-sensitive case; everything past this point
  // depends solely on handle kind/slice and the SSA identities, so the
  // memo key below captures the computation exactly.
  if (L.isFloatConst() && R.isFloatConst())
    return evalPredOnDoubles(Pred, L.floatValue(), R.floatValue());

  MemoKey K{predTag(TagCmp, Pred), encodeHandle(L), encodeHandle(R), LVal,
            RVal};
  auto It = Memo.find(K);
  if (It != Memo.end()) {
    const MemoEntry &E = It->second;
    Stats.SubOps += E.SubOps;
    if (E.Norms)
      telemetry::count(telemetry::Counter::RangeNormalizations, E.Norms);
    telemetry::count(telemetry::Counter::RangeOpMemoHits);
    if (!E.CmpHas)
      return std::nullopt;
    return E.CmpVal;
  }
  uint64_t SubOps0 = Stats.SubOps;
  uint64_t Norms0 = normalizationTicks();
  std::optional<double> P = cmpProbUncached(Pred, L, R, LVal, RVal);
  MemoEntry E;
  E.CmpHas = P.has_value();
  E.CmpVal = P.value_or(0.0);
  E.SubOps = Stats.SubOps - SubOps0;
  E.Norms = normalizationTicks() - Norms0;
  Memo.emplace(K, E);
  return P;
}

std::optional<double> RangeOps::cmpProbUncached(CmpPred Pred,
                                                const ValueRange &L,
                                                const ValueRange &R,
                                                const Value *LVal,
                                                const Value *RVal) {
  // A ⊥ operand may still be decidable when the other side's bounds are
  // relative to it (e.g. the loop test i < n with i in [0:n:1] and n
  // unknown): substitute the symbolic singleton [v:v].
  ValueRange LSub = L, RSub = R;
  auto symSingleton = [](const Value *V) {
    ValueRange VR;
    std::vector<SubRange> Subs{SubRange(1.0, Bound(V, 0), Bound(V, 0), 0)};
    return ValueRange::ranges(std::move(Subs), 1);
  };
  if (Opts.EnableSymbolicRanges) {
    if (!LSub.isRanges() && RSub.isRanges() && LVal &&
        !isa<Constant>(LVal))
      LSub = symSingleton(LVal);
    if (!RSub.isRanges() && LSub.isRanges() && RVal &&
        !isa<Constant>(RVal))
      RSub = symSingleton(RVal);
  }
  const ValueRange &LR = LSub, &RR = RSub;
  if (!LR.isRanges() || !RR.isRanges())
    return std::nullopt;
  double P = 0.0;
  for (const SubRange &A : LR.subRanges()) {
    for (const SubRange &B : RR.subRanges()) {
      std::optional<double> F =
          pairCmpProb(Pred, A, B, LVal, RVal, LR.distributionKnown(),
                      RR.distributionKnown());
      if (!F)
        return std::nullopt;
      P += A.Prob * B.Prob * *F;
    }
  }
  // Subrange probabilities of an untrusted distribution can still skew
  // the aggregate; with multiple subranges on an untrusted side only a
  // unanimous 0/1 outcome survives (each pair was individually gated, so
  // a non-0/1 aggregate can only arise from mixing certain 0s and 1s).
  P = std::clamp(P, 0.0, 1.0);
  if (!LR.distributionKnown() || !RR.distributionKnown()) {
    bool Mixed = P != 0.0 && P != 1.0;
    if (Mixed && (LR.subRanges().size() > 1 || RR.subRanges().size() > 1))
      return std::nullopt;
  }
  return P;
}
