//===- vrp/ValueRange.cpp - Weighted value range lattice -------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "vrp/ValueRange.h"

#include "ir/Instruction.h"
#include "support/Casting.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <tuple>

using namespace vrp;

std::string Bound::str() const {
  if (isNumeric())
    return std::to_string(Offset);
  std::string S = Sym->displayName();
  if (Offset > 0)
    S += "+" + std::to_string(Offset);
  else if (Offset < 0)
    S += std::to_string(Offset);
  return S;
}

std::string SubRange::str() const {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.4g", Prob);
  return std::string(Buf) + "[" + Lo.str() + ":" + Hi.str() + ":" +
         std::to_string(Stride) + "]";
}

double vrp::totalProb(const std::vector<SubRange> &Subs) {
  double Total = 0.0;
  for (const SubRange &S : Subs)
    Total += S.Prob;
  return Total;
}

double vrp::totalProb(const SubRangeView &Subs) {
  const RangeArena::Rows &R = Subs.rawRows();
  double Total = 0.0;
  for (uint32_t I = 0; I < R.Count; ++I)
    Total += R.Prob[I];
  return Total;
}

namespace {

/// Pointer-free total order on bound symbols: numeric first, then
/// constants by value, params by index, instructions by dense id. Heap
/// addresses would also be a total order, but one that varies from
/// process to process — and the canonical form must serialize identically
/// across runs (analysis/PersistentCache round trips, journal resume).
std::tuple<int, int64_t, uint64_t> symRank(const Value *Sym) {
  if (!Sym)
    return {0, 0, 0};
  if (const auto *C = dyn_cast<Constant>(Sym)) {
    if (C->isInt())
      return {1, C->intValue(), 0};
    uint64_t Bits = 0;
    double D = C->floatValue();
    std::memcpy(&Bits, &D, sizeof(Bits));
    return {2, 0, Bits};
  }
  if (const auto *P = dyn_cast<Param>(Sym))
    return {3, P->index(), 0};
  return {4, cast<Instruction>(Sym)->id(), 0};
}

/// Deterministic subrange ordering for canonical form.
bool subRangeLess(const SubRange &A, const SubRange &B) {
  auto Key = [](const SubRange &S) {
    return std::tuple(symRank(S.Lo.Sym), S.Lo.Offset, symRank(S.Hi.Sym),
                      S.Hi.Offset, S.Stride);
  };
  return Key(A) < Key(B);
}

/// subRangeLess restricted to all-numeric rows: symRank(nullptr) is the
/// constant minimum {0,0,0}, so the symbol components of the key compare
/// equal and the order reduces to (Lo.Offset, Hi.Offset, Stride). Sorting
/// with this comparator yields comparison outcomes identical to
/// subRangeLess — and therefore an identical permutation — without
/// constructing a symRank tuple per comparison.
bool numericSubRangeLess(const SubRange &A, const SubRange &B) {
  return std::tuple(A.Lo.Offset, A.Hi.Offset, A.Stride) <
         std::tuple(B.Lo.Offset, B.Hi.Offset, B.Stride);
}

/// True when the numeric subrange is internally consistent.
bool isValidNumeric(const SubRange &S) {
  if (S.Lo.Offset > S.Hi.Offset)
    return false;
  if (S.Stride == 0)
    return S.Lo.Offset == S.Hi.Offset;
  if (S.Stride < 0)
    return false;
  __int128 Span = static_cast<__int128>(S.Hi.Offset) - S.Lo.Offset;
  return Span % S.Stride == 0;
}

/// Merges two numeric subranges into their strided convex hull.
SubRange hullMerge(const SubRange &A, const SubRange &B) {
  int64_t Lo = std::min(A.Lo.Offset, B.Lo.Offset);
  int64_t Hi = std::max(A.Hi.Offset, B.Hi.Offset);
  int64_t Stride = 0;
  if (Lo != Hi) {
    // Points of both ranges must lie on the new lattice Lo + k*Stride;
    // the bound separation and both strides must all be multiples.
    __int128 Sep = static_cast<__int128>(A.Lo.Offset) - B.Lo.Offset;
    if (Sep < 0)
      Sep = -Sep;
    int64_t SepGcd = Sep > Int64Max ? 1 : static_cast<int64_t>(Sep);
    Stride = strideGcd(strideGcd(A.Stride, B.Stride), SepGcd);
    __int128 Span = static_cast<__int128>(Hi) - Lo;
    if (Stride == 0 || Span % Stride != 0)
      Stride = 1;
  }
  return SubRange::numeric(A.Prob + B.Prob, Lo, Hi, Stride);
}

} // namespace

ValueRange ValueRange::canonicalize(std::vector<SubRange> &Subs,
                                    unsigned MaxSubRanges) {
  assert(MaxSubRanges >= 1 && "need at least one subrange");
  // Drop empty/invalid pieces in place, tracking whether any symbolic
  // bound survives (selects the sort comparator below).
  size_t W = 0;
  bool AllNumeric = true;
  for (size_t I = 0; I < Subs.size(); ++I) {
    SubRange S = Subs[I];
    if (S.Prob <= 0.0)
      continue;
    if (S.isNumeric()) {
      if (S.Lo.Offset == S.Hi.Offset)
        S.Stride = 0;
      if (!isValidNumeric(S))
        return bottom(); // Caller produced an inconsistent range.
    } else {
      if (S.Lo.Sym && S.Hi.Sym && S.Lo.Sym != S.Hi.Sym) {
        // Bounds relative to two different ancestors are unrepresentable.
        return bottom();
      }
      AllNumeric = false;
    }
    Subs[W++] = S;
  }
  if (W == 0)
    return bottom();
  Subs.resize(W);

  // Canonical order, then merge identical shapes. All-numeric sets take
  // the tuple-free comparator (order-equivalent to subRangeLess).
  auto Less = AllNumeric ? numericSubRangeLess : subRangeLess;
  std::sort(Subs.begin(), Subs.end(), Less);
  size_t M = 0;
  for (size_t I = 0; I < Subs.size(); ++I) {
    if (M > 0 && Subs[M - 1].sameShape(Subs[I]))
      Subs[M - 1].Prob += Subs[I].Prob;
    else
      Subs[M++] = Subs[I];
  }
  Subs.resize(M);

  // Renormalize to total probability 1.
  double Total = totalProb(Subs);
  if (Total <= 0.0)
    return bottom();
  if (std::abs(Total - 1.0) > 1e-12) {
    telemetry::count(telemetry::Counter::RangeNormalizations);
    for (SubRange &S : Subs)
      S.Prob /= Total;
  }

  // Coalesce down to the cap: repeatedly merge the numeric pair with the
  // smallest combined span increase. Symbolic subranges only merge with an
  // identical-symbol partner (handled by sameShape above); if symbolic
  // variety alone exceeds the cap the range degrades to ⊥ — the paper's
  // "give-up point".
  while (Subs.size() > MaxSubRanges) {
    int BestA = -1, BestB = -1;
    double BestCost = 0.0;
    for (size_t I = 0; I < Subs.size(); ++I) {
      if (!Subs[I].isNumeric())
        continue;
      for (size_t J = I + 1; J < Subs.size(); ++J) {
        if (!Subs[J].isNumeric())
          continue;
        double SpanI = static_cast<double>(Subs[I].Hi.Offset) -
                       static_cast<double>(Subs[I].Lo.Offset);
        double SpanJ = static_cast<double>(Subs[J].Hi.Offset) -
                       static_cast<double>(Subs[J].Lo.Offset);
        double Lo = std::min(static_cast<double>(Subs[I].Lo.Offset),
                             static_cast<double>(Subs[J].Lo.Offset));
        double Hi = std::max(static_cast<double>(Subs[I].Hi.Offset),
                             static_cast<double>(Subs[J].Hi.Offset));
        double Cost = (Hi - Lo) - SpanI - SpanJ;
        if (BestA < 0 || Cost < BestCost) {
          BestA = static_cast<int>(I);
          BestB = static_cast<int>(J);
          BestCost = Cost;
        }
      }
    }
    if (BestA < 0)
      return bottom(); // Only unmergeable symbolic pieces remain.
    SubRange Combined = hullMerge(Subs[BestA], Subs[BestB]);
    Subs.erase(Subs.begin() + BestB);
    Subs[BestA] = Combined;
    std::sort(Subs.begin(), Subs.end(), Less);
  }

  ValueRange R;
  R.TheKind = Kind::Ranges;
  R.SliceId = RangeArena::global().intern(
      Subs.data(), static_cast<uint32_t>(Subs.size()));
  R.assertNormalized();
  return R;
}

ValueRange ValueRange::ranges(std::vector<SubRange> Subs,
                              unsigned MaxSubRanges) {
  return canonicalize(Subs, MaxSubRanges);
}

ValueRange ValueRange::intConstant(int64_t V) {
  // Interned directly: historically this constructor bypassed ranges()'s
  // normalization pipeline, and the canonical single row needs none.
  ValueRange R;
  R.TheKind = Kind::Ranges;
  SubRange S = SubRange::singleton(1.0, V);
  R.SliceId = RangeArena::global().intern(&S, 1);
  return R;
}

ValueRange ValueRange::fullIntRange() {
  ValueRange R;
  R.TheKind = Kind::Ranges;
  SubRange S = SubRange::numeric(1.0, Int64Min, Int64Max, 1);
  R.SliceId = RangeArena::global().intern(&S, 1);
  return R;
}

ValueRange ValueRange::weightedBool(double ProbTrue) {
  ProbTrue = std::clamp(ProbTrue, 0.0, 1.0);
  std::vector<SubRange> Subs;
  if (ProbTrue < 1.0)
    Subs.push_back(SubRange::singleton(1.0 - ProbTrue, 0));
  if (ProbTrue > 0.0)
    Subs.push_back(SubRange::singleton(ProbTrue, 1));
  return ranges(std::move(Subs), 2);
}

std::optional<int64_t> ValueRange::asIntConstant() const {
  if (TheKind != Kind::Ranges)
    return std::nullopt;
  RangeArena::Rows R = RangeArena::global().rows(SliceId);
  if (R.Count != 1 || R.LoSym[0] != 0 || R.HiSym[0] != 0)
    return std::nullopt;
  if (R.LoOff[0] != R.HiOff[0])
    return std::nullopt;
  return R.LoOff[0];
}

const Value *ValueRange::asCopyOf() const {
  if (TheKind != Kind::Ranges)
    return nullptr;
  RangeArena::Rows R = RangeArena::global().rows(SliceId);
  if (R.Count != 1)
    return nullptr;
  if (R.LoSym[0] != 0 && R.LoSym[0] == R.HiSym[0] && R.LoOff[0] == 0 &&
      R.HiOff[0] == 0)
    return RangeArena::global().symValue(R.LoSym[0]);
  return nullptr;
}

bool ValueRange::equals(const ValueRange &RHS, double Tolerance) const {
  if (TheKind != RHS.TheKind || DistKnown != RHS.DistKnown)
    return false;
  switch (TheKind) {
  case Kind::Top:
  case Kind::Bottom:
    return true;
  case Kind::FloatConst:
    return FloatVal == RHS.FloatVal;
  case Kind::Ranges:
    break;
  }
  if (SliceId == RHS.SliceId)
    return true; // Interned: same id, bitwise-identical content.
  RangeArena::Rows A = RangeArena::global().rows(SliceId);
  RangeArena::Rows B = RangeArena::global().rows(RHS.SliceId);
  if (A.Count != B.Count)
    return false;
  for (uint32_t I = 0; I < A.Count; ++I) {
    if (A.LoSym[I] != B.LoSym[I] || A.LoOff[I] != B.LoOff[I] ||
        A.HiSym[I] != B.HiSym[I] || A.HiOff[I] != B.HiOff[I] ||
        A.Stride[I] != B.Stride[I])
      return false;
    if (std::abs(A.Prob[I] - B.Prob[I]) > Tolerance)
      return false;
  }
  return true;
}

bool ValueRange::sameSupport(const ValueRange &RHS) const {
  if (TheKind != RHS.TheKind || DistKnown != RHS.DistKnown)
    return false;
  if (TheKind == Kind::FloatConst)
    return FloatVal == RHS.FloatVal;
  if (TheKind != Kind::Ranges)
    return true;
  if (SliceId == RHS.SliceId)
    return true;
  RangeArena::Rows A = RangeArena::global().rows(SliceId);
  RangeArena::Rows B = RangeArena::global().rows(RHS.SliceId);
  if (A.Count != B.Count)
    return false;
  for (uint32_t I = 0; I < A.Count; ++I)
    if (A.LoSym[I] != B.LoSym[I] || A.LoOff[I] != B.LoOff[I] ||
        A.HiSym[I] != B.HiSym[I] || A.HiOff[I] != B.HiOff[I] ||
        A.Stride[I] != B.Stride[I])
      return false;
  return true;
}

std::optional<double> ValueRange::probNonZero() const {
  switch (TheKind) {
  case Kind::Top:
  case Kind::Bottom:
    return std::nullopt;
  case Kind::FloatConst:
    return FloatVal != 0.0 ? 1.0 : 0.0;
  case Kind::Ranges:
    break;
  }
  double P = 0.0;
  for (const SubRange &S : subRanges()) {
    if (!S.isNumeric()) {
      // A symbolic subrange may or may not contain zero; unknown overall.
      return std::nullopt;
    }
    if (S.Lo.Offset > 0 || S.Hi.Offset < 0) {
      P += S.Prob;
      continue;
    }
    // Zero lies within the numeric hull; check lattice membership.
    int64_t Count = *S.count();
    bool ContainsZero = onLattice(S.Lo.Offset, S.Stride, 0);
    if (ContainsZero)
      P += S.Prob * (static_cast<double>(Count - 1) / Count);
    else
      P += S.Prob;
  }
  return P;
}

void ValueRange::assertNormalized(double Epsilon) const {
  if (TheKind != Kind::Ranges)
    return;
  assert(std::abs(totalProb(subRanges()) - 1.0) <= Epsilon &&
         "probability mass not conserved");
  (void)Epsilon;
}

std::string ValueRange::str() const {
  switch (TheKind) {
  case Kind::Top:
    return "T";
  case Kind::Bottom:
    return "_|_";
  case Kind::FloatConst: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%g", FloatVal);
    return std::string("fconst ") + Buf;
  }
  case Kind::Ranges:
    break;
  }
  std::string S = "{ ";
  SubRangeView Subs = subRanges();
  for (size_t I = 0; I < Subs.size(); ++I) {
    if (I)
      S += ", ";
    S += Subs[I].str();
  }
  S += " }";
  if (!DistKnown)
    S += "?"; // Set valid, distribution unknown.
  return S;
}
