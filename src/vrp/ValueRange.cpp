//===- vrp/ValueRange.cpp - Weighted value range lattice -------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "vrp/ValueRange.h"

#include "ir/Instruction.h"
#include "support/Casting.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <tuple>

using namespace vrp;

std::string Bound::str() const {
  if (isNumeric())
    return std::to_string(Offset);
  std::string S = Sym->displayName();
  if (Offset > 0)
    S += "+" + std::to_string(Offset);
  else if (Offset < 0)
    S += std::to_string(Offset);
  return S;
}

std::string SubRange::str() const {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.4g", Prob);
  return std::string(Buf) + "[" + Lo.str() + ":" + Hi.str() + ":" +
         std::to_string(Stride) + "]";
}

double vrp::totalProb(const std::vector<SubRange> &Subs) {
  double Total = 0.0;
  for (const SubRange &S : Subs)
    Total += S.Prob;
  return Total;
}

double vrp::totalProb(const SubRangeView &Subs) {
  const RangeArena::Rows &R = Subs.rawRows();
  double Total = 0.0;
  for (uint32_t I = 0; I < R.Count; ++I)
    Total += R.Prob[I];
  return Total;
}

namespace {

/// Pointer-free total order on bound symbols: numeric first, then
/// constants by value, params by index, instructions by dense id. Heap
/// addresses would also be a total order, but one that varies from
/// process to process — and the canonical form must serialize identically
/// across runs (analysis/PersistentCache round trips, journal resume).
std::tuple<int, int64_t, uint64_t> symRank(const Value *Sym) {
  if (!Sym)
    return {0, 0, 0};
  if (const auto *C = dyn_cast<Constant>(Sym)) {
    if (C->isInt())
      return {1, C->intValue(), 0};
    uint64_t Bits = 0;
    double D = C->floatValue();
    std::memcpy(&Bits, &D, sizeof(Bits));
    return {2, 0, Bits};
  }
  if (const auto *P = dyn_cast<Param>(Sym))
    return {3, P->index(), 0};
  return {4, cast<Instruction>(Sym)->id(), 0};
}

/// Deterministic subrange ordering for canonical form.
bool subRangeLess(const SubRange &A, const SubRange &B) {
  auto Key = [](const SubRange &S) {
    return std::tuple(symRank(S.Lo.Sym), S.Lo.Offset, symRank(S.Hi.Sym),
                      S.Hi.Offset, S.Stride);
  };
  return Key(A) < Key(B);
}

/// subRangeLess restricted to all-numeric rows: symRank(nullptr) is the
/// constant minimum {0,0,0}, so the symbol components of the key compare
/// equal and the order reduces to (Lo.Offset, Hi.Offset, Stride). Sorting
/// with this comparator yields comparison outcomes identical to
/// subRangeLess — and therefore an identical permutation — without
/// constructing a symRank tuple per comparison.
bool numericSubRangeLess(const SubRange &A, const SubRange &B) {
  return std::tuple(A.Lo.Offset, A.Hi.Offset, A.Stride) <
         std::tuple(B.Lo.Offset, B.Hi.Offset, B.Stride);
}

/// True when the numeric subrange is internally consistent.
bool isValidNumeric(const SubRange &S) {
  if (S.Lo.Offset > S.Hi.Offset)
    return false;
  if (S.Stride == 0)
    return S.Lo.Offset == S.Hi.Offset;
  if (S.Stride < 0)
    return false;
  __int128 Span = static_cast<__int128>(S.Hi.Offset) - S.Lo.Offset;
  return Span % S.Stride == 0;
}

/// Merges two numeric subranges into their strided convex hull.
SubRange hullMerge(const SubRange &A, const SubRange &B) {
  int64_t Lo = std::min(A.Lo.Offset, B.Lo.Offset);
  int64_t Hi = std::max(A.Hi.Offset, B.Hi.Offset);
  int64_t Stride = 0;
  if (Lo != Hi) {
    // Points of both ranges must lie on the new lattice Lo + k*Stride;
    // the bound separation and both strides must all be multiples.
    __int128 Sep = static_cast<__int128>(A.Lo.Offset) - B.Lo.Offset;
    if (Sep < 0)
      Sep = -Sep;
    int64_t SepGcd = Sep > Int64Max ? 1 : static_cast<int64_t>(Sep);
    Stride = strideGcd(strideGcd(A.Stride, B.Stride), SepGcd);
    __int128 Span = static_cast<__int128>(Hi) - Lo;
    if (Stride == 0 || Span % Stride != 0)
      Stride = 1;
  }
  return SubRange::numeric(A.Prob + B.Prob, Lo, Hi, Stride);
}

} // namespace

ValueRange ValueRange::canonicalize(std::vector<SubRange> &Subs,
                                    unsigned MaxSubRanges) {
  assert(MaxSubRanges >= 1 && "need at least one subrange");
  // Drop empty/invalid pieces in place, tracking whether any symbolic
  // bound survives (selects the sort comparator below).
  size_t W = 0;
  bool AllNumeric = true;
  for (size_t I = 0; I < Subs.size(); ++I) {
    SubRange S = Subs[I];
    if (S.Prob <= 0.0)
      continue;
    if (S.isNumeric()) {
      if (S.Lo.Offset == S.Hi.Offset)
        S.Stride = 0;
      if (!isValidNumeric(S))
        return bottom(); // Caller produced an inconsistent range.
    } else {
      if (S.Lo.Sym && S.Hi.Sym && S.Lo.Sym != S.Hi.Sym) {
        // Bounds relative to two different ancestors are unrepresentable.
        return bottom();
      }
      AllNumeric = false;
    }
    Subs[W++] = S;
  }
  if (W == 0)
    return bottom();
  Subs.resize(W);

  // Canonical order, then merge identical shapes. All-numeric sets take
  // the tuple-free comparator (order-equivalent to subRangeLess).
  auto Less = AllNumeric ? numericSubRangeLess : subRangeLess;
  std::sort(Subs.begin(), Subs.end(), Less);
  size_t M = 0;
  for (size_t I = 0; I < Subs.size(); ++I) {
    if (M > 0 && Subs[M - 1].sameShape(Subs[I]))
      Subs[M - 1].Prob += Subs[I].Prob;
    else
      Subs[M++] = Subs[I];
  }
  Subs.resize(M);

  // Renormalize to total probability 1.
  double Total = totalProb(Subs);
  if (Total <= 0.0)
    return bottom();
  if (std::abs(Total - 1.0) > 1e-12) {
    telemetry::count(telemetry::Counter::RangeNormalizations);
    for (SubRange &S : Subs)
      S.Prob /= Total;
  }

  // Coalesce down to the cap: repeatedly merge the numeric pair with the
  // smallest combined span increase. Symbolic subranges only merge with an
  // identical-symbol partner (handled by sameShape above); if symbolic
  // variety alone exceeds the cap the range degrades to ⊥ — the paper's
  // "give-up point".
  while (Subs.size() > MaxSubRanges) {
    int BestA = -1, BestB = -1;
    double BestCost = 0.0;
    for (size_t I = 0; I < Subs.size(); ++I) {
      if (!Subs[I].isNumeric())
        continue;
      for (size_t J = I + 1; J < Subs.size(); ++J) {
        if (!Subs[J].isNumeric())
          continue;
        double SpanI = static_cast<double>(Subs[I].Hi.Offset) -
                       static_cast<double>(Subs[I].Lo.Offset);
        double SpanJ = static_cast<double>(Subs[J].Hi.Offset) -
                       static_cast<double>(Subs[J].Lo.Offset);
        double Lo = std::min(static_cast<double>(Subs[I].Lo.Offset),
                             static_cast<double>(Subs[J].Lo.Offset));
        double Hi = std::max(static_cast<double>(Subs[I].Hi.Offset),
                             static_cast<double>(Subs[J].Hi.Offset));
        double Cost = (Hi - Lo) - SpanI - SpanJ;
        if (BestA < 0 || Cost < BestCost) {
          BestA = static_cast<int>(I);
          BestB = static_cast<int>(J);
          BestCost = Cost;
        }
      }
    }
    if (BestA < 0)
      return bottom(); // Only unmergeable symbolic pieces remain.
    SubRange Combined = hullMerge(Subs[BestA], Subs[BestB]);
    Subs.erase(Subs.begin() + BestB);
    Subs[BestA] = Combined;
    std::sort(Subs.begin(), Subs.end(), Less);
  }

  ValueRange R;
  R.TheKind = Kind::Ranges;
  R.SliceId = RangeArena::global().intern(
      Subs.data(), static_cast<uint32_t>(Subs.size()));
  R.assertNormalized();
  return R;
}

ValueRange ValueRange::ranges(std::vector<SubRange> Subs,
                              unsigned MaxSubRanges) {
  return canonicalize(Subs, MaxSubRanges);
}

namespace {

/// Interval width for coalescing cost; non-finite spans (an interval
/// reaching ±∞) rank behind every finite merge so bounded intervals
/// coalesce first.
double fpSpan(double Lo, double Hi) {
  double W = Hi - Lo;
  return std::isfinite(W) ? W : HUGE_VAL;
}

} // namespace

ValueRange ValueRange::canonicalizeFP(std::vector<FPInterval> &Subs,
                                      double NaNMass,
                                      unsigned MaxSubRanges) {
  assert(MaxSubRanges >= 1 && "need at least one interval");
  if (NaNMass < 0.0 || std::isnan(NaNMass))
    NaNMass = 0.0;
  // Clean in place: drop non-positive mass, fold NaN-bounded pieces into
  // the NaN mass (a kernel that produces a NaN bound means the pair's
  // outcome is NaN), normalize -0.0 bounds to +0.0 so canonical content
  // is unique and the sort below is bitwise deterministic.
  size_t W = 0;
  for (size_t I = 0; I < Subs.size(); ++I) {
    FPInterval S = Subs[I];
    if (!(S.Prob > 0.0))
      continue;
    if (std::isnan(S.Lo) || std::isnan(S.Hi)) {
      NaNMass += S.Prob;
      continue;
    }
    S.Lo += 0.0;
    S.Hi += 0.0;
    if (S.Lo > S.Hi)
      return bottom(); // Caller produced an inconsistent interval.
    Subs[W++] = S;
  }
  Subs.resize(W);

  if (Subs.empty()) {
    if (!(NaNMass > 0.0))
      return bottom();
    // The pure-NaN range: no intervals, all mass on NaN.
    ValueRange R;
    R.TheKind = Kind::FloatRanges;
    R.FloatVal = 1.0;
    R.SliceId = RangeArena::global().internFP(nullptr, 0, 1.0);
    return R;
  }

  // Canonical order (no NaNs or -0.0 remain, so < is a total order),
  // then merge identical shapes.
  std::sort(Subs.begin(), Subs.end(),
            [](const FPInterval &A, const FPInterval &B) {
              return std::tie(A.Lo, A.Hi) < std::tie(B.Lo, B.Hi);
            });
  size_t M = 0;
  for (size_t I = 0; I < Subs.size(); ++I) {
    if (M > 0 && Subs[M - 1].Lo == Subs[I].Lo && Subs[M - 1].Hi == Subs[I].Hi)
      Subs[M - 1].Prob += Subs[I].Prob;
    else
      Subs[M++] = Subs[I];
  }
  Subs.resize(M);

  // Renormalize interval mass and NaN mass jointly to total 1.
  double Total = NaNMass;
  for (const FPInterval &S : Subs)
    Total += S.Prob;
  if (Total <= 0.0)
    return bottom();
  if (std::abs(Total - 1.0) > 1e-12) {
    telemetry::count(telemetry::Counter::RangeNormalizations);
    for (FPInterval &S : Subs)
      S.Prob /= Total;
    NaNMass /= Total;
  }

  // Coalesce down to the cap: repeatedly hull-merge the adjacent pair
  // with the smallest gap (sorted order makes adjacent merges optimal —
  // there are no strides to preserve).
  while (Subs.size() > MaxSubRanges) {
    size_t Best = 0;
    double BestCost = HUGE_VAL;
    for (size_t I = 0; I + 1 < Subs.size(); ++I) {
      double Hull = fpSpan(Subs[I].Lo, std::max(Subs[I].Hi, Subs[I + 1].Hi));
      double Cost = Hull - fpSpan(Subs[I].Lo, Subs[I].Hi) -
                    fpSpan(Subs[I + 1].Lo, Subs[I + 1].Hi);
      if (!std::isfinite(Cost))
        Cost = HUGE_VAL;
      if (Cost < BestCost) {
        Best = I;
        BestCost = Cost;
      }
    }
    Subs[Best] = FPInterval(Subs[Best].Prob + Subs[Best + 1].Prob,
                            Subs[Best].Lo,
                            std::max(Subs[Best].Hi, Subs[Best + 1].Hi));
    Subs.erase(Subs.begin() + Best + 1);
    std::sort(Subs.begin(), Subs.end(),
              [](const FPInterval &A, const FPInterval &B) {
                return std::tie(A.Lo, A.Hi) < std::tie(B.Lo, B.Hi);
              });
  }

  // An exact non-NaN singleton demotes to the FloatConst lattice level.
  if (Subs.size() == 1 && Subs[0].Lo == Subs[0].Hi && !(NaNMass > 0.0))
    return floatConstant(Subs[0].Lo);

  ValueRange R;
  R.TheKind = Kind::FloatRanges;
  R.FloatVal = NaNMass;
  R.SliceId = RangeArena::global().internFP(
      Subs.data(), static_cast<uint32_t>(Subs.size()), NaNMass);
  R.assertNormalized();
  return R;
}

ValueRange ValueRange::floatRanges(std::vector<FPInterval> Subs,
                                   double NaNMass, unsigned MaxSubRanges) {
  return canonicalizeFP(Subs, NaNMass, MaxSubRanges);
}

ValueRange ValueRange::intConstant(int64_t V) {
  // Interned directly: historically this constructor bypassed ranges()'s
  // normalization pipeline, and the canonical single row needs none.
  ValueRange R;
  R.TheKind = Kind::Ranges;
  SubRange S = SubRange::singleton(1.0, V);
  R.SliceId = RangeArena::global().intern(&S, 1);
  return R;
}

ValueRange ValueRange::fullIntRange() {
  ValueRange R;
  R.TheKind = Kind::Ranges;
  SubRange S = SubRange::numeric(1.0, Int64Min, Int64Max, 1);
  R.SliceId = RangeArena::global().intern(&S, 1);
  return R;
}

ValueRange ValueRange::weightedBool(double ProbTrue) {
  ProbTrue = std::clamp(ProbTrue, 0.0, 1.0);
  std::vector<SubRange> Subs;
  if (ProbTrue < 1.0)
    Subs.push_back(SubRange::singleton(1.0 - ProbTrue, 0));
  if (ProbTrue > 0.0)
    Subs.push_back(SubRange::singleton(ProbTrue, 1));
  return ranges(std::move(Subs), 2);
}

std::optional<int64_t> ValueRange::asIntConstant() const {
  if (TheKind != Kind::Ranges)
    return std::nullopt;
  RangeArena::Rows R = RangeArena::global().rows(SliceId);
  if (R.Count != 1 || R.LoSym[0] != 0 || R.HiSym[0] != 0)
    return std::nullopt;
  if (R.LoOff[0] != R.HiOff[0])
    return std::nullopt;
  return R.LoOff[0];
}

const Value *ValueRange::asCopyOf() const {
  if (TheKind != Kind::Ranges)
    return nullptr;
  RangeArena::Rows R = RangeArena::global().rows(SliceId);
  if (R.Count != 1)
    return nullptr;
  if (R.LoSym[0] != 0 && R.LoSym[0] == R.HiSym[0] && R.LoOff[0] == 0 &&
      R.HiOff[0] == 0)
    return RangeArena::global().symValue(R.LoSym[0]);
  return nullptr;
}

bool ValueRange::equals(const ValueRange &RHS, double Tolerance) const {
  if (TheKind != RHS.TheKind || DistKnown != RHS.DistKnown)
    return false;
  switch (TheKind) {
  case Kind::Top:
  case Kind::Bottom:
    return true;
  case Kind::FloatConst:
    return FloatVal == RHS.FloatVal;
  case Kind::FloatRanges: {
    if (SliceId == RHS.SliceId)
      return true; // Interned: same id, bitwise-identical content.
    FPIntervalView A = fpIntervals();
    FPIntervalView B = RHS.fpIntervals();
    if (A.size() != B.size())
      return false;
    if (std::abs(A.nanMass() - B.nanMass()) > Tolerance)
      return false;
    for (size_t I = 0; I < A.size(); ++I) {
      if (A[I].Lo != B[I].Lo || A[I].Hi != B[I].Hi)
        return false;
      if (std::abs(A[I].Prob - B[I].Prob) > Tolerance)
        return false;
    }
    return true;
  }
  case Kind::Ranges:
    break;
  }
  if (SliceId == RHS.SliceId)
    return true; // Interned: same id, bitwise-identical content.
  RangeArena::Rows A = RangeArena::global().rows(SliceId);
  RangeArena::Rows B = RangeArena::global().rows(RHS.SliceId);
  if (A.Count != B.Count)
    return false;
  for (uint32_t I = 0; I < A.Count; ++I) {
    if (A.LoSym[I] != B.LoSym[I] || A.LoOff[I] != B.LoOff[I] ||
        A.HiSym[I] != B.HiSym[I] || A.HiOff[I] != B.HiOff[I] ||
        A.Stride[I] != B.Stride[I])
      return false;
    if (std::abs(A.Prob[I] - B.Prob[I]) > Tolerance)
      return false;
  }
  return true;
}

bool ValueRange::sameSupport(const ValueRange &RHS) const {
  if (TheKind != RHS.TheKind || DistKnown != RHS.DistKnown)
    return false;
  if (TheKind == Kind::FloatConst)
    return FloatVal == RHS.FloatVal;
  if (TheKind == Kind::FloatRanges) {
    if (SliceId == RHS.SliceId)
      return true;
    FPIntervalView A = fpIntervals();
    FPIntervalView B = RHS.fpIntervals();
    if (A.size() != B.size())
      return false;
    // NaN is part of the support exactly when its mass is positive.
    if ((A.nanMass() > 0.0) != (B.nanMass() > 0.0))
      return false;
    for (size_t I = 0; I < A.size(); ++I)
      if (A[I].Lo != B[I].Lo || A[I].Hi != B[I].Hi)
        return false;
    return true;
  }
  if (TheKind != Kind::Ranges)
    return true;
  if (SliceId == RHS.SliceId)
    return true;
  RangeArena::Rows A = RangeArena::global().rows(SliceId);
  RangeArena::Rows B = RangeArena::global().rows(RHS.SliceId);
  if (A.Count != B.Count)
    return false;
  for (uint32_t I = 0; I < A.Count; ++I)
    if (A.LoSym[I] != B.LoSym[I] || A.LoOff[I] != B.LoOff[I] ||
        A.HiSym[I] != B.HiSym[I] || A.HiOff[I] != B.HiOff[I] ||
        A.Stride[I] != B.Stride[I])
      return false;
  return true;
}

std::optional<double> ValueRange::probNonZero() const {
  switch (TheKind) {
  case Kind::Top:
  case Kind::Bottom:
    return std::nullopt;
  case Kind::FloatConst:
    return FloatVal != 0.0 ? 1.0 : 0.0;
  case Kind::FloatRanges:
    // FP values never feed an integer truth test directly in this IR
    // (comparisons produce int booleans); stay conservative.
    return std::nullopt;
  case Kind::Ranges:
    break;
  }
  double P = 0.0;
  for (const SubRange &S : subRanges()) {
    if (!S.isNumeric()) {
      // A symbolic subrange may or may not contain zero; unknown overall.
      return std::nullopt;
    }
    if (S.Lo.Offset > 0 || S.Hi.Offset < 0) {
      P += S.Prob;
      continue;
    }
    // Zero lies within the numeric hull; check lattice membership.
    int64_t Count = *S.count();
    bool ContainsZero = onLattice(S.Lo.Offset, S.Stride, 0);
    if (ContainsZero)
      P += S.Prob * (static_cast<double>(Count - 1) / Count);
    else
      P += S.Prob;
  }
  return P;
}

void ValueRange::assertNormalized(double Epsilon) const {
  if (TheKind == Kind::FloatRanges) {
    FPIntervalView V = fpIntervals();
    double Total = V.nanMass();
    for (size_t I = 0; I < V.size(); ++I)
      Total += V[I].Prob;
    assert(std::abs(Total - 1.0) <= Epsilon &&
           "FP probability mass not conserved");
    (void)Total;
    (void)Epsilon;
    return;
  }
  if (TheKind != Kind::Ranges)
    return;
  assert(std::abs(totalProb(subRanges()) - 1.0) <= Epsilon &&
         "probability mass not conserved");
  (void)Epsilon;
}

std::string ValueRange::str() const {
  switch (TheKind) {
  case Kind::Top:
    return "T";
  case Kind::Bottom:
    return "_|_";
  case Kind::FloatConst: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%g", FloatVal);
    return std::string("fconst ") + Buf;
  }
  case Kind::FloatRanges: {
    FPIntervalView V = fpIntervals();
    std::string S = "f{ ";
    char Buf[96];
    for (size_t I = 0; I < V.size(); ++I) {
      if (I)
        S += ", ";
      std::snprintf(Buf, sizeof(Buf), "%.4g[%g:%g]", V[I].Prob, V[I].Lo,
                    V[I].Hi);
      S += Buf;
    }
    if (V.nanMass() > 0.0) {
      if (!V.empty())
        S += ", ";
      std::snprintf(Buf, sizeof(Buf), "%.4g[nan]", V.nanMass());
      S += Buf;
    }
    S += " }";
    if (!DistKnown)
      S += "?";
    return S;
  }
  case Kind::Ranges:
    break;
  }
  std::string S = "{ ";
  SubRangeView Subs = subRanges();
  for (size_t I = 0; I < Subs.size(); ++I) {
    if (I)
      S += ", ";
    S += Subs[I].str();
  }
  S += " }";
  if (!DistKnown)
    S += "?"; // Set valid, distribution unknown.
  return S;
}
