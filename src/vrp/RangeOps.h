//===- vrp/RangeOps.h - Arithmetic on weighted value ranges -----*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "symbolic execution" kernel (paper §3.5): arithmetic, meets,
/// assertion intersections and probabilistic comparisons over weighted
/// range sets. Operations are pairwise over subranges (up to R² suboperations
/// per expression evaluation, counted in RangeStats::SubOps for Figure 6).
/// Unrepresentable results degrade to ⊥ — the paper's observation that
/// "many problematic ranges cannot be represented and quickly become ⊥".
///
/// Execution model: operands are arena slices (vrp/RangeArena.h). Kernels
/// run as batched loops over the SoA columns with an all-numeric fast path
/// (no symbol materialization, tuple-free canonical sort) separated from
/// the symbolic slow path, accumulate into member scratch buffers (no
/// per-call allocation at steady state), and the canonical result is
/// interned. Because interned ids are content-addressed, whole operations
/// memoize per RangeOps instance: re-evaluating the same expression over
/// unchanged operand ids — the common case in fixpoint iteration — returns
/// the cached handle while replaying the exact SubOps/normalization
/// counter deltas of the original computation, so all determinism-checked
/// statistics are bit-identical whether or not an op hits the memo.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_VRP_RANGEOPS_H
#define VRP_VRP_RANGEOPS_H

#include "ir/Instruction.h"
#include "vrp/Options.h"
#include "vrp/ValueRange.h"

#include <unordered_map>

namespace vrp {

/// Range operators parameterized by options; counts suboperations into the
/// shared RangeStats. One instance serves one function analysis: the
/// scratch buffers and the operation memo amortize across that function's
/// fixpoint iteration.
class RangeOps {
public:
  RangeOps(const VRPOptions &Opts, RangeStats &Stats)
      : Opts(Opts), Stats(Stats) {}

  //===--------------------------------------------------------------------===
  // Arithmetic
  //===--------------------------------------------------------------------===

  ValueRange add(const ValueRange &L, const ValueRange &R);
  ValueRange sub(const ValueRange &L, const ValueRange &R);
  ValueRange mul(const ValueRange &L, const ValueRange &R);
  ValueRange div(const ValueRange &L, const ValueRange &R);
  ValueRange rem(const ValueRange &L, const ValueRange &R);
  ValueRange minOp(const ValueRange &L, const ValueRange &R);
  ValueRange maxOp(const ValueRange &L, const ValueRange &R);
  ValueRange neg(const ValueRange &V);
  ValueRange absOp(const ValueRange &V);
  /// Logical not over an int value: weightedBool(P(v == 0)).
  ValueRange notOp(const ValueRange &V);
  ValueRange intToFloat(const ValueRange &V);
  ValueRange floatToInt(const ValueRange &V);

  //===--------------------------------------------------------------------===
  // Lattice
  //===--------------------------------------------------------------------===

  /// The φ meet: merges incoming ranges weighted by in-edge probabilities.
  /// Entries with ⊤ or non-positive weight are skipped (optimistic, as in
  /// SCCP); any ⊥ entry forces ⊥.
  ValueRange meetWeighted(
      const std::vector<std::pair<ValueRange, double>> &Entries);

  /// Conditions \p Src on `Src PRED Bound` holding (an assertion edge):
  /// clips subranges, rescales surviving probability mass. \p BoundVal is
  /// the bound's SSA identity for symbolic clipping (may be null).
  ValueRange applyAssert(const ValueRange &Src, CmpPred Pred,
                         const ValueRange &BoundRange,
                         const Value *BoundVal);

  //===--------------------------------------------------------------------===
  // Probabilistic comparison
  //===--------------------------------------------------------------------===

  /// P(L PRED R) under independence and intra-range uniformity. \p LVal /
  /// \p RVal are the operand SSA identities, enabling the symbolic cases
  /// (bounds of one side relative to the other side's variable). Returns
  /// nullopt when the ranges cannot decide the comparison.
  std::optional<double> cmpProb(CmpPred Pred, const ValueRange &L,
                                const ValueRange &R, const Value *LVal,
                                const Value *RVal);

private:
  /// Memo key: operation tag (op, predicate) plus the operand identities.
  /// Ranges operands are captured exactly by their interned slice id (the
  /// arena guarantees same id <=> bitwise-same content); Top/Bottom carry
  /// no payload; FloatConst operands are either handled before
  /// memoization or provably ignored by the memoized operation. SSA
  /// pointers participate for assert/cmp, whose results depend on symbol
  /// identity.
  struct MemoKey {
    uint64_t Tag = 0;
    uint64_t L = 0, R = 0; // Encoded handles: kind | dist | slice id.
    const void *P1 = nullptr;
    const void *P2 = nullptr;
    bool operator==(const MemoKey &K) const {
      return Tag == K.Tag && L == K.L && R == K.R && P1 == K.P1 &&
             P2 == K.P2;
    }
  };
  struct MemoKeyHash {
    size_t operator()(const MemoKey &K) const;
  };
  struct MeetKeyHash {
    size_t operator()(const std::vector<uint64_t> &K) const;
  };

  /// A memoized result plus the statistics deltas the original
  /// computation produced; hits replay both so counter totals never
  /// depend on whether the memo was consulted.
  struct MemoEntry {
    ValueRange Result;
    double CmpVal = 0.0;
    bool CmpHas = false;
    uint64_t SubOps = 0;
    uint64_t Norms = 0;
  };

  static uint64_t encodeHandle(const ValueRange &V);
  uint64_t normalizationTicks() const;
  ValueRange replay(const MemoEntry &E);

  /// Runs \p Compute under memoization: a hit returns the cached handle
  /// and replays the recorded counter deltas; a miss records them.
  template <typename Fn>
  ValueRange memoRange(const MemoKey &K, Fn &&Compute);

  std::optional<double> cmpProbUncached(CmpPred Pred, const ValueRange &L,
                                        const ValueRange &R,
                                        const Value *LVal,
                                        const Value *RVal);
  ValueRange meetWeightedUncached(
      const std::vector<std::pair<ValueRange, double>> &Entries);
  ValueRange applyAssertUncached(const ValueRange &Src, CmpPred Pred,
                                 const ValueRange &BoundRange,
                                 const Value *BoundVal);

  ValueRange binaryNumeric(
      uint8_t Tag, const ValueRange &L, const ValueRange &R,
      bool (RangeOps::*PairOp)(const SubRange &, const SubRange &,
                               std::vector<SubRange> &));
  ValueRange binaryNumericUncached(
      const ValueRange &L, const ValueRange &R,
      bool (RangeOps::*PairOp)(const SubRange &, const SubRange &,
                               std::vector<SubRange> &));

  // Pairwise kernels; append result pieces, return false when the pair is
  // unrepresentable (whole result becomes ⊥).
  bool pairAdd(const SubRange &A, const SubRange &B,
               std::vector<SubRange> &Out);
  bool pairSub(const SubRange &A, const SubRange &B,
               std::vector<SubRange> &Out);
  bool pairMul(const SubRange &A, const SubRange &B,
               std::vector<SubRange> &Out);
  bool pairDiv(const SubRange &A, const SubRange &B,
               std::vector<SubRange> &Out);
  bool pairRem(const SubRange &A, const SubRange &B,
               std::vector<SubRange> &Out);
  bool pairMin(const SubRange &A, const SubRange &B,
               std::vector<SubRange> &Out);
  bool pairMax(const SubRange &A, const SubRange &B,
               std::vector<SubRange> &Out);

  /// P(a PRED b) for one subrange pair; nullopt when undecidable.
  /// \p LDistKnown / \p RDistKnown say whether each side's probabilities
  /// are trustworthy; a case that consults an untrusted distribution may
  /// only return set-level certainty (exactly 0 or 1).
  std::optional<double> pairCmpProb(CmpPred Pred, const SubRange &A,
                                    const SubRange &B, const Value *LVal,
                                    const Value *RVal, bool LDistKnown,
                                    bool RDistKnown);

  /// Exact P(A == B) for numeric subranges (strided intersection count).
  double numericEqProb(const SubRange &A, const SubRange &B);
  /// P(A < B) for numeric subranges; exact when either side is a
  /// singleton, continuous approximation otherwise.
  double numericLtProb(const SubRange &A, const SubRange &B);

  //===--------------------------------------------------------------------===
  // Floating-point kernels (docs/DOMAINS.md)
  //===--------------------------------------------------------------------===

  /// Promotes a FloatConst to its interned singleton FloatRanges form so
  /// it can enter a memo key (FloatConst payloads are not part of
  /// encodeHandle). FloatRanges pass through; everything else is ⊥.
  ValueRange fpPromote(const ValueRange &V);

  /// Dispatch for FP binary arithmetic: exact both-const fold, promotion,
  /// memoization, then the corner kernel.
  ValueRange fpBinary(uint8_t Tag, const ValueRange &L, const ValueRange &R);
  ValueRange fpBinaryUncached(uint8_t Tag, const ValueRange &L,
                              const ValueRange &R);
  /// One interval pair through the corner evaluation for \p Tag;
  /// accumulates pieces into FPScratch and NaN mass into FPNaNAcc.
  void fpPairArith(uint8_t Tag, const FPInterval &A, const FPInterval &B);

  ValueRange fpUnary(uint8_t Tag, const ValueRange &V);
  ValueRange fpUnaryUncached(uint8_t Tag, const ValueRange &V);

  ValueRange intToFloatUncached(const ValueRange &V);
  ValueRange floatToIntUncached(const ValueRange &V);

  ValueRange applyFPAssertUncached(const ValueRange &Src, CmpPred Pred,
                                   const ValueRange &Bound);

  std::optional<double> fpCmpProbUncached(CmpPred Pred, const ValueRange &L,
                                          const ValueRange &R);
  /// P(a PRED b) for one FP interval pair under uniformity. Set-level
  /// certainties (0/1) are returned regardless of \p Trusted; anything
  /// that consults the distributions requires it.
  std::optional<double> fpPairCmpProb(CmpPred Pred, const FPInterval &A,
                                      const FPInterval &B, bool Trusted);

  const VRPOptions &Opts;
  RangeStats &Stats;

  /// Result accumulation scratch, reused across calls (operations never
  /// nest on the same instance).
  std::vector<SubRange> Scratch;

  /// FP result accumulation scratch: interval pieces plus the NaN mass
  /// produced by the running operation (same no-nesting discipline).
  std::vector<FPInterval> FPScratch;
  double FPNaNAcc = 0.0;

  std::unordered_map<MemoKey, MemoEntry, MemoKeyHash> Memo;
  std::unordered_map<std::vector<uint64_t>, MemoEntry, MeetKeyHash>
      MeetMemo;
  std::vector<uint64_t> MeetKeyScratch;
};

/// Number of lattice points of numeric subrange \p S strictly below \p C.
int64_t pointsBelow(const SubRange &S, int64_t C);

} // namespace vrp

#endif // VRP_VRP_RANGEOPS_H
