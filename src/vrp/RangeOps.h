//===- vrp/RangeOps.h - Arithmetic on weighted value ranges -----*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "symbolic execution" kernel (paper §3.5): arithmetic, meets,
/// assertion intersections and probabilistic comparisons over weighted
/// range sets. Operations are pairwise over subranges (up to R² suboperations
/// per expression evaluation, counted in RangeStats::SubOps for Figure 6).
/// Unrepresentable results degrade to ⊥ — the paper's observation that
/// "many problematic ranges cannot be represented and quickly become ⊥".
///
//===----------------------------------------------------------------------===//

#ifndef VRP_VRP_RANGEOPS_H
#define VRP_VRP_RANGEOPS_H

#include "ir/Instruction.h"
#include "vrp/Options.h"
#include "vrp/ValueRange.h"

namespace vrp {

/// Stateless-per-call range operators parameterized by options; counts
/// suboperations into the shared RangeStats.
class RangeOps {
public:
  RangeOps(const VRPOptions &Opts, RangeStats &Stats)
      : Opts(Opts), Stats(Stats) {}

  //===--------------------------------------------------------------------===
  // Arithmetic
  //===--------------------------------------------------------------------===

  ValueRange add(const ValueRange &L, const ValueRange &R);
  ValueRange sub(const ValueRange &L, const ValueRange &R);
  ValueRange mul(const ValueRange &L, const ValueRange &R);
  ValueRange div(const ValueRange &L, const ValueRange &R);
  ValueRange rem(const ValueRange &L, const ValueRange &R);
  ValueRange minOp(const ValueRange &L, const ValueRange &R);
  ValueRange maxOp(const ValueRange &L, const ValueRange &R);
  ValueRange neg(const ValueRange &V);
  ValueRange absOp(const ValueRange &V);
  /// Logical not over an int value: weightedBool(P(v == 0)).
  ValueRange notOp(const ValueRange &V);
  ValueRange intToFloat(const ValueRange &V);
  ValueRange floatToInt(const ValueRange &V);

  //===--------------------------------------------------------------------===
  // Lattice
  //===--------------------------------------------------------------------===

  /// The φ meet: merges incoming ranges weighted by in-edge probabilities.
  /// Entries with ⊤ or non-positive weight are skipped (optimistic, as in
  /// SCCP); any ⊥ entry forces ⊥.
  ValueRange meetWeighted(
      const std::vector<std::pair<ValueRange, double>> &Entries);

  /// Conditions \p Src on `Src PRED Bound` holding (an assertion edge):
  /// clips subranges, rescales surviving probability mass. \p BoundVal is
  /// the bound's SSA identity for symbolic clipping (may be null).
  ValueRange applyAssert(const ValueRange &Src, CmpPred Pred,
                         const ValueRange &BoundRange,
                         const Value *BoundVal);

  //===--------------------------------------------------------------------===
  // Probabilistic comparison
  //===--------------------------------------------------------------------===

  /// P(L PRED R) under independence and intra-range uniformity. \p LVal /
  /// \p RVal are the operand SSA identities, enabling the symbolic cases
  /// (bounds of one side relative to the other side's variable). Returns
  /// nullopt when the ranges cannot decide the comparison.
  std::optional<double> cmpProb(CmpPred Pred, const ValueRange &L,
                                const ValueRange &R, const Value *LVal,
                                const Value *RVal);

private:
  ValueRange binaryNumeric(
      const ValueRange &L, const ValueRange &R,
      bool (RangeOps::*PairOp)(const SubRange &, const SubRange &,
                               std::vector<SubRange> &));

  // Pairwise kernels; append result pieces, return false when the pair is
  // unrepresentable (whole result becomes ⊥).
  bool pairAdd(const SubRange &A, const SubRange &B,
               std::vector<SubRange> &Out);
  bool pairSub(const SubRange &A, const SubRange &B,
               std::vector<SubRange> &Out);
  bool pairMul(const SubRange &A, const SubRange &B,
               std::vector<SubRange> &Out);
  bool pairDiv(const SubRange &A, const SubRange &B,
               std::vector<SubRange> &Out);
  bool pairRem(const SubRange &A, const SubRange &B,
               std::vector<SubRange> &Out);
  bool pairMin(const SubRange &A, const SubRange &B,
               std::vector<SubRange> &Out);
  bool pairMax(const SubRange &A, const SubRange &B,
               std::vector<SubRange> &Out);

  /// P(a PRED b) for one subrange pair; nullopt when undecidable.
  /// \p LDistKnown / \p RDistKnown say whether each side's probabilities
  /// are trustworthy; a case that consults an untrusted distribution may
  /// only return set-level certainty (exactly 0 or 1).
  std::optional<double> pairCmpProb(CmpPred Pred, const SubRange &A,
                                    const SubRange &B, const Value *LVal,
                                    const Value *RVal, bool LDistKnown,
                                    bool RDistKnown);

  /// Exact P(A == B) for numeric subranges (strided intersection count).
  double numericEqProb(const SubRange &A, const SubRange &B);
  /// P(A < B) for numeric subranges; exact when either side is a
  /// singleton, continuous approximation otherwise.
  double numericLtProb(const SubRange &A, const SubRange &B);

  const VRPOptions &Opts;
  RangeStats &Stats;
};

/// Number of lattice points of numeric subrange \p S strictly below \p C.
int64_t pointsBelow(const SubRange &S, int64_t C);

} // namespace vrp

#endif // VRP_VRP_RANGEOPS_H
