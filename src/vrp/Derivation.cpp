//===- vrp/Derivation.cpp - Loop-carried range derivation ------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "vrp/Derivation.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>
#include <vector>

using namespace vrp;

bool vrp::isLoopCarried(const PhiInst *Phi, const DFSInfo &DFS) {
  for (unsigned I = 0; I < Phi->numIncoming(); ++I)
    if (DFS.isBackEdge(Phi->incomingBlock(I), Phi->parent()))
      return true;
  return false;
}

namespace {

/// One assert constraint met along a back-edge chain: the chain value at
/// accumulated offset \p Offset (relative to the φ) satisfied
/// `value PRED Bound`.
struct ChainConstraint {
  CmpPred Pred;
  const Value *Bound;
  int64_t Offset; ///< Chain value = φ + Offset at the assert point.
};

/// One matched chain from a back-edge operand to the φ.
struct Chain {
  int64_t Delta = 0; ///< Total increment per iteration.
  std::vector<ChainConstraint> Constraints;
};

/// Walks from \p Latch back to \p Phi through copies, constant add/sub,
/// asserts and inner (conditional-increment) φs. Appends one Chain per
/// distinct path. Returns false on template mismatch.
bool walkChains(const Value *V, const PhiInst *Phi, int64_t Offset,
                std::vector<ChainConstraint> Constraints,
                std::vector<Chain> &Out, std::set<const Value *> &Visiting,
                unsigned Depth) {
  if (Depth > 16 || Out.size() > 8)
    return false;

  while (true) {
    if (V == Phi) {
      // Reached the φ: the latch value exceeds it by -Offset accumulated
      // walking down, i.e. latch = φ + (-Offset)... Offset bookkeeping:
      // we maintain "latch = V + Offset", so latch = φ + Offset here.
      Chain C;
      C.Delta = Offset;
      C.Constraints = std::move(Constraints);
      Out.push_back(std::move(C));
      return true;
    }
    const auto *I = dyn_cast<Instruction>(V);
    if (!I)
      return false;
    if (!Visiting.insert(V).second)
      return false; // Unexpected cycle not through the header φ.

    switch (I->opcode()) {
    case Opcode::Copy:
      V = cast<UnaryInst>(I)->sub();
      continue;
    case Opcode::Assert: {
      const auto *A = cast<AssertInst>(I);
      // The asserted value equals latch - Offset = φ + (Delta - Offset)
      // once the chain completes; record with the current offset and fix
      // up against the final delta later.
      Constraints.push_back({A->pred(), A->bound(), Offset});
      V = A->source();
      continue;
    }
    case Opcode::Add:
    case Opcode::Sub: {
      const auto *B = cast<BinaryInst>(I);
      const Constant *C = dyn_cast<Constant>(B->rhs());
      const Value *Next = B->lhs();
      if (!C && I->opcode() == Opcode::Add) {
        // Commute: c + x.
        C = dyn_cast<Constant>(B->lhs());
        Next = B->rhs();
      }
      if (!C || !C->isInt())
        return false;
      int64_t Step = C->intValue();
      if (I->opcode() == Opcode::Sub)
        Step = -Step;
      // latch = V + Offset and V = Next + Step => latch = Next + Offset+Step.
      Offset = saturatingAdd(Offset, Step);
      V = Next;
      continue;
    }
    case Opcode::Phi: {
      // Conditional increments: every incoming path must itself match.
      const auto *Inner = cast<PhiInst>(I);
      for (unsigned Idx = 0; Idx < Inner->numIncoming(); ++Idx) {
        std::set<const Value *> Branch = Visiting;
        if (!walkChains(Inner->incomingValue(Idx), Phi, Offset, Constraints,
                        Out, Branch, Depth + 1))
          return false;
      }
      return true;
    }
    default:
      return false;
    }
  }
}

/// One assert constraint met along a float back-edge chain: the chain
/// value at accumulated float offset \p Offset satisfied `value PRED
/// Bound`.
struct FloatConstraint {
  CmpPred Pred;
  const Value *Bound;
  double Offset;
};

struct FloatChain {
  double Delta = 0.0;
  std::vector<FloatConstraint> Constraints;
};

/// The float induction template (docs/DOMAINS.md): a straight chain of
/// copies, asserts and float-constant add/sub from the latch back to the
/// φ. No inner φs — conditional float increments are rare enough that
/// the template keeps to the common accumulator shape.
bool walkFloatChain(const Value *V, const PhiInst *Phi,
                    std::vector<FloatChain> &Out) {
  FloatChain C;
  double Offset = 0.0;
  std::set<const Value *> Visiting;
  while (true) {
    if (V == Phi) {
      C.Delta = Offset;
      Out.push_back(std::move(C));
      return true;
    }
    const auto *I = dyn_cast<Instruction>(V);
    if (!I || !Visiting.insert(V).second)
      return false;
    switch (I->opcode()) {
    case Opcode::Copy:
      V = cast<UnaryInst>(I)->sub();
      continue;
    case Opcode::Assert: {
      const auto *A = cast<AssertInst>(I);
      C.Constraints.push_back({A->pred(), A->bound(), Offset});
      V = A->source();
      continue;
    }
    case Opcode::Add:
    case Opcode::Sub: {
      const auto *B = cast<BinaryInst>(I);
      const Constant *K = dyn_cast<Constant>(B->rhs());
      const Value *Next = B->lhs();
      if (!K && I->opcode() == Opcode::Add) {
        K = dyn_cast<Constant>(B->lhs());
        Next = B->rhs();
      }
      if (!K || K->isInt())
        return false;
      double Step = K->floatValue();
      if (I->opcode() == Opcode::Sub)
        Step = -Step;
      if (!std::isfinite(Step))
        return false;
      Offset += Step;
      if (!std::isfinite(Offset))
        return false;
      V = Next;
      continue;
    }
    default:
      return false;
    }
  }
}

/// The FP hull [Lo, Hi] of \p VR when it is NaN-free and fully known;
/// false otherwise.
bool fpHull(const ValueRange &VR, double &Lo, double &Hi) {
  if (VR.isFloatConst()) {
    double C = VR.floatValue();
    if (std::isnan(C))
      return false;
    Lo = Hi = C;
    return true;
  }
  if (!VR.isFloatRanges() || VR.nanMass() > 0.0)
    return false;
  FPIntervalView V = VR.fpIntervals();
  if (V.empty())
    return false;
  Lo = V[0].Lo;
  Hi = V[0].Hi;
  for (uint32_t I = 1; I < V.size(); ++I) {
    Lo = std::min(Lo, V[I].Lo);
    Hi = std::max(Hi, V[I].Hi);
  }
  return true;
}

/// Derivation for float loop-carried φs: the int algorithm transplanted
/// onto the interval domain. The accumulated per-iteration delta gives
/// the direction, the entry hull anchors the near bound, and the
/// tightest termination assert (plus one increment of overshoot) caps
/// the far bound. Strict and non-strict bounds are treated alike — a
/// one-ulp giveaway on a continuous domain, sound by construction.
DerivationResult deriveFloatRange(
    const PhiInst *Phi, const std::vector<const Value *> &EntryValues,
    const std::vector<const Value *> &BackValues, const VRPOptions &Opts,
    RangeStats &Stats,
    const std::function<ValueRange(const Value *)> &RangeOf) {
  DerivationResult Fail{DerivationOutcome::Impossible, ValueRange::bottom()};
  if (!Opts.EnableFPRanges)
    return Fail;

  double InitLo = HUGE_VAL, InitHi = -HUGE_VAL;
  for (const Value *V : EntryValues) {
    ValueRange VR = RangeOf(V);
    if (VR.isTop())
      return {DerivationOutcome::NotYet, ValueRange::top()};
    double Lo = 0, Hi = 0;
    if (!fpHull(VR, Lo, Hi))
      return Fail; // ⊥, int-domain, or NaN-tainted entry.
    InitLo = std::min(InitLo, Lo);
    InitHi = std::max(InitHi, Hi);
  }

  std::vector<FloatChain> Chains;
  for (const Value *V : BackValues)
    if (!walkFloatChain(V, Phi, Chains))
      return Fail;
  if (Chains.empty())
    return Fail;

  bool AnyProgress = false, Positive = false;
  double MaxAbsDelta = 0.0;
  for (const FloatChain &C : Chains) {
    if (C.Delta != 0.0 && !AnyProgress) {
      AnyProgress = true;
      Positive = C.Delta > 0.0;
    }
    MaxAbsDelta = std::max(MaxAbsDelta, std::abs(C.Delta));
  }
  if (!AnyProgress)
    return Fail;
  for (const FloatChain &C : Chains)
    if (C.Delta != 0.0 && (C.Delta > 0.0) != Positive)
      return Fail;

  // The tightest termination bound: an upper bound for a growing
  // accumulator, a lower bound for a shrinking one. NE is useless on a
  // continuous domain.
  std::optional<double> Limit;
  for (const FloatChain &C : Chains)
    for (const FloatConstraint &K : C.Constraints) {
      bool Usable = Positive
                        ? (K.Pred == CmpPred::LT || K.Pred == CmpPred::LE)
                        : (K.Pred == CmpPred::GT || K.Pred == CmpPred::GE);
      if (!Usable)
        continue;
      double BLo = 0, BHi = 0;
      if (!fpHull(RangeOf(K.Bound), BLo, BHi))
        continue;
      // Asserted value = φ + (Delta - Offset); solve for φ.
      double Rel = C.Delta - K.Offset;
      double Cap = (Positive ? BHi : BLo) - Rel;
      if (std::isnan(Cap))
        continue;
      if (!Limit)
        Limit = Cap;
      else
        Limit = Positive ? std::min(*Limit, Cap) : std::max(*Limit, Cap);
    }
  if (!Limit)
    return Fail;

  double Lo, Hi;
  if (Positive) {
    Lo = InitLo;
    Hi = std::max(*Limit + MaxAbsDelta, InitHi);
  } else {
    Hi = InitHi;
    Lo = std::min(*Limit - MaxAbsDelta, InitLo);
  }
  if (std::isnan(Lo) || std::isnan(Hi) || Lo > Hi)
    return Fail;

  ++Stats.DerivationsMatched;
  return {DerivationOutcome::Derived,
          ValueRange::floatRanges({FPInterval(1.0, Lo, Hi)}, 0.0,
                                  Opts.MaxSubRanges)};
}

} // namespace

DerivationResult vrp::deriveLoopCarriedRange(
    const PhiInst *Phi, const DFSInfo &DFS, const VRPOptions &Opts,
    RangeStats &Stats,
    const std::function<ValueRange(const Value *)> &RangeOf) {
  ++Stats.DerivationsTried;
  DerivationResult Fail{DerivationOutcome::Impossible, ValueRange::bottom()};

  // Split incoming edges into loop-entry and back edges.
  std::vector<const Value *> EntryValues, BackValues;
  for (unsigned I = 0; I < Phi->numIncoming(); ++I) {
    if (DFS.isBackEdge(Phi->incomingBlock(I), Phi->parent()))
      BackValues.push_back(Phi->incomingValue(I));
    else
      EntryValues.push_back(Phi->incomingValue(I));
  }
  if (BackValues.empty() || EntryValues.empty())
    return Fail;

  if (Phi->type() == IRType::Float)
    return deriveFloatRange(Phi, EntryValues, BackValues, Opts, Stats,
                            RangeOf);

  // Initial value: meet of the entry operands. Fully numeric entries
  // aggregate into a hull; a single symbolic entry (e.g. `j = i - 1`
  // inside an outer loop) keeps its bounds.
  Bound InitLoB(Int64Max), InitHiB(Int64Min);
  int64_t InitStride = 0;
  bool First = true;
  bool InitNumeric = true;
  for (const Value *V : EntryValues) {
    ValueRange VR = RangeOf(V);
    if (VR.isTop())
      return {DerivationOutcome::NotYet, ValueRange::top()};
    if (!VR.isRanges())
      return Fail;
    if (VR.hasSymbolicBounds()) {
      if (EntryValues.size() != 1 || VR.subRanges().size() != 1)
        return Fail;
      const SubRange &S = VR.subRanges().front();
      InitLoB = S.Lo;
      InitHiB = S.Hi;
      InitStride = S.Stride;
      InitNumeric = false;
      break;
    }
    for (const SubRange &S : VR.subRanges()) {
      InitLoB.Offset = std::min(InitLoB.Offset, S.Lo.Offset);
      InitHiB.Offset = std::max(InitHiB.Offset, S.Hi.Offset);
      InitStride = First ? S.Stride : 1;
      First = false;
    }
  }
  const int64_t InitLo = InitLoB.Offset, InitHi = InitHiB.Offset;

  // Match every back edge against the induction template.
  std::vector<Chain> Chains;
  for (const Value *V : BackValues) {
    std::set<const Value *> Visiting;
    if (!walkChains(V, Phi, 0, {}, Chains, Visiting, 0))
      return Fail;
  }
  if (Chains.empty())
    return Fail;

  // Increments must share a sign; zero deltas (iterations that leave the
  // variable unchanged, e.g. conditional counters) are permitted as long
  // as at least one chain makes progress.
  bool AnyProgress = false;
  bool Positive = false;
  for (const Chain &C : Chains)
    if (C.Delta != 0) {
      AnyProgress = true;
      Positive = C.Delta > 0;
      break;
    }
  if (!AnyProgress)
    return Fail;
  int64_t StrideGcdAll = 0, MaxAbsDelta = 0;
  for (const Chain &C : Chains) {
    if (C.Delta != 0 && (C.Delta > 0) != Positive)
      return Fail;
    StrideGcdAll = strideGcd(StrideGcdAll, saturatingAbs(C.Delta));
    MaxAbsDelta = std::max(MaxAbsDelta, saturatingAbs(C.Delta));
  }
  // A zero-delta chain breaks stride uniformity.
  for (const Chain &C : Chains)
    if (C.Delta == 0)
      StrideGcdAll = 1;

  // Find the tightest termination bound among the chains' asserts. For a
  // positive delta we need an upper bound (LT/LE/NE), for a negative delta
  // a lower bound (GT/GE/NE). The walk maintains `latch = value + Offset`
  // and `latch = φ + Delta`, so the asserted value is φ + (Delta - Offset)
  // and `asserted PRED bound` gives
  //     φ <= bound + adjust - (Delta - Offset)   (upper-bound case).
  std::optional<int64_t> NumericLimit;
  const Value *SymbolicLimit = nullptr;
  int64_t SymbolicLimitOff = 0;

  for (const Chain &C : Chains) {
    for (const ChainConstraint &K : C.Constraints) {
      // Normalize to "asserted <= X" (positive) or "asserted >= X" (neg).
      int64_t Adjust = 0;
      bool Usable = false;
      if (Positive) {
        if (K.Pred == CmpPred::LT || K.Pred == CmpPred::NE) {
          Adjust = -1;
          Usable = true;
        } else if (K.Pred == CmpPred::LE) {
          Usable = true;
        }
      } else {
        if (K.Pred == CmpPred::GT || K.Pred == CmpPred::NE) {
          Adjust = 1;
          Usable = true;
        } else if (K.Pred == CmpPred::GE) {
          Usable = true;
        }
      }
      if (!Usable)
        continue;
      // Asserted value = φ + Rel.
      int64_t Rel = saturatingSub(C.Delta, K.Offset);

      auto recordNumeric = [&](int64_t BoundConst) {
        int64_t Limit =
            saturatingSub(saturatingAdd(BoundConst, Adjust), Rel);
        if (!NumericLimit)
          NumericLimit = Limit;
        else
          NumericLimit = Positive ? std::min(*NumericLimit, Limit)
                                  : std::max(*NumericLimit, Limit);
      };

      if (const auto *CB = dyn_cast<Constant>(K.Bound)) {
        if (CB->isInt())
          recordNumeric(CB->intValue());
        continue;
      }
      // Bound variable: usable when its own range is a constant, or kept
      // symbolically.
      ValueRange BoundVR = RangeOf(K.Bound);
      if (auto BC = BoundVR.asIntConstant()) {
        recordNumeric(*BC);
        continue;
      }
      if (Opts.EnableSymbolicRanges && !SymbolicLimit) {
        SymbolicLimit = K.Bound;
        SymbolicLimitOff = saturatingSub(Adjust, Rel);
      }
    }
  }
  if (!NumericLimit && !SymbolicLimit)
    return Fail;

  // Assemble the final range. The φ takes the initial values plus every
  // continued value advanced by one increment, so the far bound is the
  // termination limit plus the (largest) increment.
  int64_t Stride = (InitLoB == InitHiB)
                       ? StrideGcdAll
                       : strideGcd(StrideGcdAll, InitStride);
  if (Stride == 0)
    Stride = 1;

  Bound Lo, Hi;
  if (Positive) {
    Lo = InitLoB;
    if (NumericLimit) {
      int64_t HiVal = saturatingAdd(*NumericLimit, MaxAbsDelta);
      if (InitNumeric) {
        HiVal = std::max(HiVal, InitHi);
        if (HiVal < InitLo)
          return Fail; // Body provably never taken; leave to propagation.
        // Align onto the lattice anchored at the numeric lower bound.
        __int128 Span = static_cast<__int128>(HiVal) - InitLo;
        if (Span % Stride != 0)
          HiVal = static_cast<int64_t>(static_cast<__int128>(InitLo) +
                                       (Span / Stride) * Stride);
      }
      Hi = Bound(HiVal);
    } else {
      Hi = Bound(SymbolicLimit,
                 saturatingAdd(SymbolicLimitOff, MaxAbsDelta));
    }
  } else {
    Hi = InitHiB;
    if (NumericLimit) {
      int64_t LoVal = saturatingSub(*NumericLimit, MaxAbsDelta);
      if (InitNumeric) {
        LoVal = std::min(LoVal, InitLo);
        if (LoVal > InitHi)
          return Fail;
        __int128 Span = static_cast<__int128>(InitHi) - LoVal;
        if (Span % Stride != 0)
          LoVal = static_cast<int64_t>(static_cast<__int128>(InitHi) -
                                       (Span / Stride) * Stride);
      }
      Lo = Bound(LoVal);
    } else {
      Lo = Bound(SymbolicLimit,
                 saturatingSub(SymbolicLimitOff, MaxAbsDelta));
    }
  }
  // Bounds relative to two different ancestors are unrepresentable.
  if (Lo.Sym && Hi.Sym && Lo.Sym != Hi.Sym)
    return Fail;
  if (Lo.isNumeric() && Hi.isNumeric() && Lo.Offset > Hi.Offset)
    return Fail;
  if (Lo == Hi)
    Stride = 0;

  std::vector<SubRange> Subs{SubRange(1.0, Lo, Hi, Stride)};
  ++Stats.DerivationsMatched;
  return {DerivationOutcome::Derived,
          ValueRange::ranges(std::move(Subs), Opts.MaxSubRanges)};
}
