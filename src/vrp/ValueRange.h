//===- vrp/ValueRange.h - Weighted value range lattice ----------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's range representation (§3.4): a variable's value is a set of
/// weighted subranges `{ P[L:U:S], ... }` — probability P, lower bound L,
/// upper bound U and stride S — where each bound is either numeric or
/// symbolic (`SSA-variable + constant`, the "single common ancestor" form).
/// An even distribution is assumed within each subrange; uneven
/// distributions use multiple subranges. The lattice adds ⊤ (undetermined)
/// above and ⊥ (statically unknown) below, plus an exact float-constant
/// level so value range propagation subsumes constant propagation for
/// floats too.
///
/// Storage: a ValueRange is a 16-byte handle `{kind, dist flag, arena
/// slice id, float payload}`. The subrange rows live in the process-wide
/// RangeArena (SoA columns, interned module-wide), so copying a range is
/// trivial, identical canonical sets share storage, and equality has an
/// id-comparison fast path. `subRanges()` returns a lightweight view that
/// materializes `SubRange` values on demand and converts implicitly to
/// `std::vector<SubRange>` for call sites that need a container.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_VRP_VALUERANGE_H
#define VRP_VRP_VALUERANGE_H

#include "ir/Value.h"
#include "support/MathUtil.h"
#include "vrp/RangeArena.h"

#include <optional>
#include <string>
#include <vector>

namespace vrp {

/// A range bound: `Sym + Offset` where Sym is null for numeric bounds.
/// Purely symbolic values are `Sym + 0`; only a single ancestor variable is
/// representable (paper §3.4), which keeps range operations simple.
struct Bound {
  const Value *Sym = nullptr;
  int64_t Offset = 0;

  Bound() = default;
  Bound(int64_t Offset) : Offset(Offset) {}
  Bound(const Value *Sym, int64_t Offset) : Sym(Sym), Offset(Offset) {}

  bool isNumeric() const { return Sym == nullptr; }

  bool operator==(const Bound &RHS) const {
    return Sym == RHS.Sym && Offset == RHS.Offset;
  }
  bool operator!=(const Bound &RHS) const { return !(*this == RHS); }

  /// Adds a numeric delta (saturating).
  Bound plus(int64_t Delta) const {
    return Bound(Sym, saturatingAdd(Offset, Delta));
  }

  std::string str() const;
};

/// One weighted subrange `P[L:U:S]`. Values are L, L+S, ..., U; S == 0
/// denotes a single value (L == U). Invariants (numeric case): L <= U, U-L
/// divisible by S when S > 0.
struct SubRange {
  double Prob = 0.0;
  Bound Lo, Hi;
  int64_t Stride = 0;

  SubRange() = default;
  SubRange(double Prob, Bound Lo, Bound Hi, int64_t Stride)
      : Prob(Prob), Lo(Lo), Hi(Hi), Stride(Stride) {}

  /// Convenience: a numeric subrange.
  static SubRange numeric(double Prob, int64_t Lo, int64_t Hi,
                          int64_t Stride) {
    return SubRange(Prob, Bound(Lo), Bound(Hi), Stride);
  }

  /// Convenience: a single-value subrange.
  static SubRange singleton(double Prob, int64_t V) {
    return numeric(Prob, V, V, 0);
  }

  bool isNumeric() const { return Lo.isNumeric() && Hi.isNumeric(); }
  bool isSingleton() const { return Lo == Hi; }

  /// True when either bound references \p V.
  bool mentions(const Value *V) const { return Lo.Sym == V || Hi.Sym == V; }

  /// Number of representable values (capped at Int64Max); nullopt for
  /// symbolic bounds.
  std::optional<int64_t> count() const {
    if (!isNumeric())
      return std::nullopt;
    if (Stride == 0 || Lo.Offset == Hi.Offset)
      return 1;
    __int128 Span = static_cast<__int128>(Hi.Offset) - Lo.Offset;
    __int128 N = Span / Stride + 1;
    return N > Int64Max ? Int64Max : static_cast<int64_t>(N);
  }

  /// Exact equality of the geometric part (probability compared with
  /// tolerance by ValueRange::equals).
  bool sameShape(const SubRange &RHS) const {
    return Lo == RHS.Lo && Hi == RHS.Hi && Stride == RHS.Stride;
  }

  /// A copy with a different probability.
  SubRange withProb(double NewProb) const {
    SubRange S = *this;
    S.Prob = NewProb;
    return S;
  }

  std::string str() const;
};

/// A read-only view over one arena slice's subranges. Materializes
/// `SubRange` values on demand from the SoA columns; converts implicitly
/// to `std::vector<SubRange>` where a container is required. The view is
/// valid for the process lifetime (arena storage is never freed).
class SubRangeView {
public:
  SubRangeView() = default;
  explicit SubRangeView(uint32_t SliceId)
      : R(RangeArena::global().rows(SliceId)) {}

  size_t size() const { return R.Count; }
  bool empty() const { return R.Count == 0; }

  /// True when every bound in the slice is numeric (cached per slice).
  bool allNumeric() const { return R.AllNumeric; }

  SubRange operator[](size_t I) const {
    const RangeArena &A = RangeArena::global();
    return SubRange(R.Prob[I],
                    Bound(A.symValue(R.LoSym[I]), R.LoOff[I]),
                    Bound(A.symValue(R.HiSym[I]), R.HiOff[I]), R.Stride[I]);
  }
  SubRange front() const { return (*this)[0]; }
  SubRange back() const { return (*this)[R.Count - 1]; }

  class iterator {
  public:
    using iterator_category = std::input_iterator_tag;
    using value_type = SubRange;
    using difference_type = ptrdiff_t;
    using pointer = const SubRange *;
    using reference = SubRange;

    iterator(const SubRangeView *V, size_t I) : V(V), I(I) {}
    SubRange operator*() const { return (*V)[I]; }
    iterator &operator++() {
      ++I;
      return *this;
    }
    bool operator==(const iterator &RHS) const { return I == RHS.I; }
    bool operator!=(const iterator &RHS) const { return I != RHS.I; }

  private:
    const SubRangeView *V;
    size_t I;
  };

  iterator begin() const { return iterator(this, 0); }
  iterator end() const { return iterator(this, R.Count); }

  operator std::vector<SubRange>() const {
    std::vector<SubRange> Out;
    Out.reserve(R.Count);
    for (uint32_t I = 0; I < R.Count; ++I)
      Out.push_back((*this)[I]);
    return Out;
  }

  /// Raw SoA columns, for batched kernels.
  const RangeArena::Rows &rawRows() const { return R; }

private:
  RangeArena::Rows R;
};

/// A read-only view over one FP arena slice's weighted intervals plus its
/// NaN mass. Valid for the process lifetime (arena storage is never
/// freed).
class FPIntervalView {
public:
  FPIntervalView() = default;
  explicit FPIntervalView(uint32_t SliceId)
      : R(RangeArena::global().fpRows(SliceId)) {}

  size_t size() const { return R.Count; }
  bool empty() const { return R.Count == 0; }
  double nanMass() const { return R.NaNMass; }

  FPInterval operator[](size_t I) const {
    return FPInterval(R.Prob[I], R.Lo[I], R.Hi[I]);
  }
  FPInterval front() const { return (*this)[0]; }
  FPInterval back() const { return (*this)[R.Count - 1]; }

  operator std::vector<FPInterval>() const {
    std::vector<FPInterval> Out;
    Out.reserve(R.Count);
    for (uint32_t I = 0; I < R.Count; ++I)
      Out.push_back((*this)[I]);
    return Out;
  }

  /// Raw SoA columns, for batched kernels.
  const RangeArena::FPRows &rawRows() const { return R; }

private:
  RangeArena::FPRows R;
};

/// The lattice value attached to every SSA variable during propagation.
/// A 16-byte trivially-copyable handle; subrange storage lives in the
/// interned RangeArena.
class ValueRange {
public:
  enum class Kind : uint8_t {
    Top,        ///< ⊤: not yet determined (optimistic initial value).
    Ranges,     ///< A weighted set of integer subranges.
    FloatConst, ///< A known IEEE double constant.
    Bottom,     ///< ⊥: cannot be determined statically.
    FloatRanges, ///< A weighted set of FP intervals + NaN mass.
  };

  ValueRange() : TheKind(Kind::Top) {}

  static ValueRange top() { return ValueRange(); }
  static ValueRange bottom() {
    ValueRange R;
    R.TheKind = Kind::Bottom;
    return R;
  }
  static ValueRange floatConstant(double V) {
    ValueRange R;
    R.TheKind = Kind::FloatConst;
    R.FloatVal = V;
    return R;
  }
  /// Builds a range set; normalizes (sorts, merges identical shapes) and
  /// coalesces down to \p MaxSubRanges. An empty set yields ⊥.
  static ValueRange ranges(std::vector<SubRange> Subs, unsigned MaxSubRanges);

  /// In-place canonicalization of \p Subs (clean, sort, merge, normalize,
  /// coalesce to \p MaxSubRanges) followed by interning — the batched
  /// back end of `ranges()`, exposed so RangeOps can feed reused scratch
  /// buffers. \p Subs is consumed (contents unspecified afterwards).
  static ValueRange canonicalize(std::vector<SubRange> &Subs,
                                 unsigned MaxSubRanges);

  /// Builds an FP range set from weighted intervals plus NaN mass;
  /// canonicalizes (drops invalid pieces, normalizes -0.0 bounds to +0.0,
  /// sorts, merges identical shapes, renormalizes jointly with the NaN
  /// mass, coalesces down to \p MaxSubRanges) and interns. An exact
  /// non-NaN singleton demotes to FloatConst; an empty set with no NaN
  /// mass yields ⊥. See docs/DOMAINS.md for the full rules.
  static ValueRange floatRanges(std::vector<FPInterval> Subs, double NaNMass,
                                unsigned MaxSubRanges);

  /// In-place back end of `floatRanges()` — \p Subs is consumed.
  static ValueRange canonicalizeFP(std::vector<FPInterval> &Subs,
                                   double NaNMass, unsigned MaxSubRanges);

  /// A single-constant integer range {1[c:c:0]}.
  static ValueRange intConstant(int64_t V);

  /// The full int64 range (used for values known to exist but unbounded —
  /// weaker than ⊥ only in that it is still a range).
  static ValueRange fullIntRange();

  /// A weighted boolean {P(true)[1:1:0], P(false)[0:0:0]} — the natural
  /// result range of a comparison, from which branch probabilities read
  /// off directly.
  static ValueRange weightedBool(double ProbTrue);

  /// Reconstructs a range verbatim — no normalization, no coalescing, no
  /// empty-set demotion (the rows are interned exactly as given). For
  /// deserializers only (analysis/PersistentCache): a restored range must
  /// be bitwise identical to the one serialized, and `ranges()` would
  /// re-normalize an already-normalized set, which is not guaranteed to
  /// be the identity on its own output's field order.
  static ValueRange restored(Kind K, double FloatVal, bool DistKnown,
                             std::vector<SubRange> Subs) {
    ValueRange R;
    R.TheKind = K;
    R.FloatVal = FloatVal;
    R.DistKnown = DistKnown;
    R.SliceId = RangeArena::global().intern(
        Subs.data(), static_cast<uint32_t>(Subs.size()));
    return R;
  }

  /// FloatRanges counterpart of `restored()`: reconstructs an FP range
  /// verbatim for the PersistentCache deserializer.
  static ValueRange restoredFP(double NaNMass, bool DistKnown,
                               std::vector<FPInterval> Subs) {
    ValueRange R;
    R.TheKind = Kind::FloatRanges;
    R.FloatVal = NaNMass;
    R.DistKnown = DistKnown;
    R.SliceId = RangeArena::global().internFP(
        Subs.data(), static_cast<uint32_t>(Subs.size()), NaNMass);
    return R;
  }

  Kind kind() const { return TheKind; }
  bool isTop() const { return TheKind == Kind::Top; }
  bool isBottom() const { return TheKind == Kind::Bottom; }
  bool isRanges() const { return TheKind == Kind::Ranges; }
  bool isFloatConst() const { return TheKind == Kind::FloatConst; }
  bool isFloatRanges() const { return TheKind == Kind::FloatRanges; }
  /// Either FP lattice level (exact constant or interval set).
  bool isFloatKind() const {
    return TheKind == Kind::FloatConst || TheKind == Kind::FloatRanges;
  }

  /// When false, the *set* of possible values is valid but the per-point
  /// probabilities are not (the range descends from an assertion on a ⊥
  /// value, e.g. a guarded load). Such ranges prove bounds checks and
  /// decide comparisons that are certain either way, but uncertain
  /// comparison probabilities fall back to heuristics rather than trust a
  /// fabricated uniform distribution.
  bool distributionKnown() const { return DistKnown; }
  void setDistributionKnown(bool Known) { DistKnown = Known; }

  double floatValue() const { return FloatVal; }

  /// NaN probability mass of a FloatRanges value (cached in the handle;
  /// the authoritative copy is interned in the FP slice). 0 otherwise.
  double nanMass() const {
    return TheKind == Kind::FloatRanges ? FloatVal : 0.0;
  }

  /// The FP interval set as an on-demand view over the FP arena slice.
  /// Meaningful only for FloatRanges values.
  FPIntervalView fpIntervals() const { return FPIntervalView(SliceId); }

  /// The subrange set as an on-demand view over the arena slice.
  SubRangeView subRanges() const { return SubRangeView(SliceId); }

  /// The arena slice id (0 for non-Ranges kinds). Two Ranges values with
  /// equal ids are bitwise-identical sets; unequal ids may still compare
  /// equal under `equals()`'s probability tolerance.
  uint32_t sliceId() const { return SliceId; }

  /// True when every subrange bound is numeric (O(1), cached per slice).
  /// Non-Ranges kinds are trivially numeric (FP intervals never carry
  /// symbolic bounds; their slice ids live in the FP id space).
  bool allNumeric() const {
    return TheKind != Kind::Ranges ||
           RangeArena::global().sliceAllNumeric(SliceId);
  }

  /// If the range is a single integer constant {1[c:c:0]}, returns it.
  std::optional<int64_t> asIntConstant() const;

  /// If the range is exactly one purely symbolic singleton {1[v:v:0]},
  /// returns v — the "copy of v" case that subsumes copy propagation.
  const Value *asCopyOf() const;

  /// True when any subrange bound is symbolic.
  bool hasSymbolicBounds() const {
    return TheKind == Kind::Ranges && !allNumeric();
  }

  /// Probability-tolerant equality (fixpoint detection).
  bool equals(const ValueRange &RHS, double Tolerance = 1e-9) const;

  /// True when both ranges have the same *support* (kind, distribution
  /// flag and subrange shapes), i.e. they differ at most in probabilities.
  /// Support growth is the signal the widening guard counts; probability
  /// refinement is not.
  bool sameSupport(const ValueRange &RHS) const;

  /// P(value != 0); nullopt when unknown (⊤/⊥/symbolic bounds straddling 0
  /// in ways we cannot count).
  std::optional<double> probNonZero() const;

  /// Debug invariant: a Ranges value's piece probabilities must sum to
  /// 1 within \p Epsilon (probability-mass conservation). No-op for
  /// ⊤/⊥/float-constant values, which carry no distribution.
  void assertNormalized(double Epsilon = 1e-9) const;

  std::string str() const;

private:
  Kind TheKind;
  bool DistKnown = true;
  uint32_t SliceId = 0;
  double FloatVal = 0.0;
};

static_assert(sizeof(ValueRange) == 16, "ValueRange must stay a flat handle");

/// Total probability mass of a subrange vector (should be ~1 after
/// normalization).
double totalProb(const std::vector<SubRange> &Subs);
double totalProb(const SubRangeView &Subs);

/// True when \p V lies on the lattice Lo + k*Stride (overflow-safe; a
/// zero stride means the single point Lo).
inline bool onLattice(int64_t Lo, int64_t Stride, int64_t V) {
  if (Stride == 0)
    return V == Lo;
  __int128 Span = static_cast<__int128>(V) - Lo;
  return Span % Stride == 0;
}

} // namespace vrp

#endif // VRP_VRP_VALUERANGE_H
