//===- vrp/RangeArena.h - Arena/SoA storage for subrange sets ---*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Module-lifetime structure-of-arrays storage for canonical subrange
/// sets. Every `ValueRange` of kind Ranges holds a 32-bit *slice id* into
/// this arena instead of a heap `std::vector<SubRange>`; the arena stores
/// the subrange fields in six contiguous parallel columns
/// `{Prob, LoSym, LoOff, HiSym, HiOff, Stride}` so the hot kernels in
/// RangeOps iterate flat arrays instead of pointer-bearing structs.
///
/// All-numeric slices are *interned*: inserting a row set that is bitwise
/// identical to a previously inserted one returns the existing id, so
/// φ-heavy functions share storage module-wide and range equality has an
/// id-comparison fast path. Symbolic bounds store an interned 32-bit
/// symbol ordinal (0 = numeric) rather than a `const Value *`, keeping
/// rows pointer-free; the symbol table maps ordinals back to SSA values
/// on the slow path. Symbolic slices are arena-allocated but deliberately
/// *not* deduped: their identity involves SSA pointers, and heap address
/// reuse across function lifetimes would make cross-function identity —
/// and with it the intern counters — depend on the thread schedule.
///
/// The floating-point domain (docs/DOMAINS.md) stores its weighted
/// intervals as a *parallel column family* in the same arena: three
/// contiguous columns `{Prob, Lo, Hi}` (binary64 bounds) plus a per-slice
/// NaN probability mass, with its own slice-id space and intern map. FP
/// contents are always pointer-free, so every FP slice interns
/// module-wide; the NaN mass is part of the interned content (hashed and
/// compared by bit pattern) so an FP slice id alone identifies the full
/// lattice value.
///
/// Concurrency: insertion takes a mutex; reads are lock-free. Columns are
/// chunked with stable addresses (a slice never straddles a chunk), so a
/// published slice id can be dereferenced without synchronizing with later
/// growth. Ids travel between threads only through already-synchronized
/// channels (task queues, guarded result maps), which carries the
/// happens-before needed for the row data itself.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_VRP_RANGEARENA_H
#define VRP_VRP_RANGEARENA_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace vrp {

class Value;
struct SubRange;

/// One weighted floating-point interval `P[Lo:Hi]` (closed, binary64).
/// Probability mass inside an interval is assumed uniform; NaN mass is
/// carried per *slice*, not per interval (see RangeArena::internFP).
struct FPInterval {
  double Prob = 0.0;
  double Lo = 0.0;
  double Hi = 0.0;

  FPInterval() = default;
  FPInterval(double Prob, double Lo, double Hi)
      : Prob(Prob), Lo(Lo), Hi(Hi) {}

  bool isSingleton() const { return Lo == Hi; }
};

class RangeArena {
public:
  /// Rows per chunk; also the maximum slice size. Matches the subrange
  /// count cap enforced by the PersistentCache deserializer, so any range
  /// the system can construct fits in one chunk.
  static constexpr uint32_t ChunkShift = 12;
  static constexpr uint32_t ChunkRows = 1u << ChunkShift;
  static constexpr uint32_t MaxSliceRows = ChunkRows;

  /// The process-wide arena. Ranges are interned module-wide (in fact
  /// process-wide): ids from different modules coexist harmlessly because
  /// interning keys on content.
  static RangeArena &global();

  /// SoA view of one slice: six parallel columns of length `Count`.
  /// `LoSym`/`HiSym` are symbol ordinals (0 = numeric bound).
  struct Rows {
    const double *Prob = nullptr;
    const int64_t *LoOff = nullptr;
    const int64_t *HiOff = nullptr;
    const int64_t *Stride = nullptr;
    const uint32_t *LoSym = nullptr;
    const uint32_t *HiSym = nullptr;
    uint32_t Count = 0;
    bool AllNumeric = true;
  };

  /// Interns \p N subranges as one slice and returns its id; bitwise
  /// identical content (probability compared by bit pattern, symbols by
  /// identity) returns the existing id. N == 0 returns the empty slice 0.
  uint32_t intern(const SubRange *Subs, uint32_t N);

  /// Starts a new counting epoch (registered as a telemetry reset hook).
  /// The arena's contents outlive any one telemetry run, so the intern
  /// counters are *epoch-relative*: the first intern of a given content
  /// within an epoch counts as a miss (and contributes its payload
  /// bytes), exactly as it would in a fresh process, making a run's
  /// counter totals a function of that run's work alone.
  void beginEpoch();

  /// Column view of a slice. Slice 0 yields an empty view.
  Rows rows(uint32_t SliceId) const;

  /// Materializes row \p I of a slice as a SubRange value.
  SubRange row(uint32_t SliceId, uint32_t I) const;

  uint32_t sliceSize(uint32_t SliceId) const;
  bool sliceAllNumeric(uint32_t SliceId) const;

  //===--------------------------------------------------------------------===
  // Floating-point column family (docs/DOMAINS.md)
  //===--------------------------------------------------------------------===

  /// SoA view of one FP slice: three parallel columns of length `Count`
  /// plus the slice-level NaN probability mass.
  struct FPRows {
    const double *Prob = nullptr;
    const double *Lo = nullptr;
    const double *Hi = nullptr;
    uint32_t Count = 0;
    double NaNMass = 0.0;
  };

  /// Interns \p N weighted FP intervals plus the slice's NaN probability
  /// mass as one FP slice and returns its id. FP slice ids are a separate
  /// id space from integer slice ids (a ValueRange's kind disambiguates).
  /// All FP contents are pointer-free, so every FP slice interns
  /// module-wide; \p NaNMass participates in the content hash and the
  /// dedup compare (by bit pattern), making slice id -> NaN mass
  /// injective — which RangeOps' memo keys rely on. N == 0 with zero NaN
  /// mass returns the empty slice 0; N == 0 with positive NaN mass is the
  /// pure-NaN range and interns a rowless slice.
  uint32_t internFP(const FPInterval *Subs, uint32_t N, double NaNMass);

  /// Column view of an FP slice. Slice 0 yields an empty view.
  FPRows fpRows(uint32_t SliceId) const;

  uint32_t fpSliceSize(uint32_t SliceId) const;
  double fpNaNMass(uint32_t SliceId) const;

  /// Symbol ordinal -> SSA value (0 -> nullptr).
  const Value *symValue(uint32_t SymId) const;

private:
  RangeArena();
  RangeArena(const RangeArena &) = delete;
  RangeArena &operator=(const RangeArena &) = delete;

  struct RowChunk {
    double Prob[ChunkRows];
    int64_t LoOff[ChunkRows];
    int64_t HiOff[ChunkRows];
    int64_t Stride[ChunkRows];
    uint32_t LoSym[ChunkRows];
    uint32_t HiSym[ChunkRows];
  };

  struct SliceInfo {
    uint32_t RowBegin = 0;
    uint16_t Count = 0;
    uint16_t AllNumeric = 1;
    /// Last epoch this content was interned in (counting only; written
    /// under Mu, never read by the lock-free accessors).
    uint32_t Epoch = 0;
  };

  struct SliceChunk {
    SliceInfo Infos[ChunkRows];
  };

  struct SymChunk {
    const Value *Syms[ChunkRows];
  };

  /// FP column family: same chunked-stable-address discipline as the
  /// integer rows, but only three double columns and a per-slice NaN mass.
  struct FPRowChunk {
    double Prob[ChunkRows];
    double Lo[ChunkRows];
    double Hi[ChunkRows];
  };

  struct FPSliceInfo {
    uint32_t RowBegin = 0;
    uint16_t Count = 0;
    uint32_t Epoch = 0; ///< See SliceInfo::Epoch.
    double NaNMass = 0.0;
  };

  struct FPSliceChunk {
    FPSliceInfo Infos[ChunkRows];
  };

  static constexpr uint32_t MaxChunks = 1u << 15; // 2^27 rows / slices.

  RowChunk *rowChunk(uint32_t Index) const;
  const SliceInfo &sliceInfo(uint32_t SliceId) const;
  const FPSliceInfo &fpSliceInfo(uint32_t SliceId) const;
  uint32_t symId(const Value *V); // Under Mu.

  mutable std::mutex Mu;
  uint32_t NextRow = 0;   // Global row cursor (chunk-padded).
  uint32_t NextSlice = 1; // Slice 0 is the reserved empty slice.
  uint32_t NextSym = 1;   // Symbol 0 is the numeric bound.
  uint32_t NextFPRow = 0;   // FP row cursor (chunk-padded).
  uint32_t NextFPSlice = 1; // FP slice 0 is the reserved empty slice.
  uint32_t CurrentEpoch = 1; // Counting epoch; SliceInfo::Epoch 0 = stale.

  std::atomic<RowChunk *> RowChunks[MaxChunks];
  std::atomic<SliceChunk *> SliceChunks[MaxChunks];
  std::atomic<SymChunk *> SymChunks[MaxChunks];
  std::atomic<FPRowChunk *> FPRowChunks[MaxChunks];
  std::atomic<FPSliceChunk *> FPSliceChunks[MaxChunks];

  /// Content hash -> slice ids with that hash (collision list).
  std::unordered_map<uint64_t, std::vector<uint32_t>> InternMap;
  std::unordered_map<uint64_t, std::vector<uint32_t>> FPInternMap;
  std::unordered_map<const Value *, uint32_t> SymIds;

  /// Scratch symbol-ordinal buffers for the row being interned (guarded
  /// by Mu; member to avoid per-call allocation).
  std::vector<uint32_t> ScratchLoSym, ScratchHiSym;
};

} // namespace vrp

#endif // VRP_VRP_RANGEARENA_H
