//===- vrp/RangeArena.cpp - Arena/SoA storage for subrange sets ------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "vrp/RangeArena.h"

#include "support/Telemetry.h"
#include "vrp/ValueRange.h"

#include <cassert>
#include <cstring>

using namespace vrp;

namespace {

/// Serialized payload size of one row (the six column fields); chunk
/// padding is deliberately excluded so the telemetry byte count depends
/// only on the set of interned contents, not on interleaving order.
constexpr uint64_t RowPayloadBytes = sizeof(double) + 3 * sizeof(int64_t) +
                                     2 * sizeof(uint32_t);

/// FP family: three double columns per row, plus one double of NaN mass
/// per slice (counted with the slice, not per row).
constexpr uint64_t FPRowPayloadBytes = 3 * sizeof(double);
constexpr uint64_t FPSlicePayloadBytes = sizeof(double);

inline uint64_t fnv1a(uint64_t Hash, uint64_t Word) {
  // 64-bit FNV-1a over one word, byte at a time unrolled by multiplier.
  constexpr uint64_t Prime = 1099511628211ull;
  for (int I = 0; I < 8; ++I) {
    Hash ^= (Word >> (I * 8)) & 0xff;
    Hash *= Prime;
  }
  return Hash;
}

inline uint64_t probBits(double P) {
  uint64_t Bits;
  std::memcpy(&Bits, &P, sizeof(Bits));
  return Bits;
}

} // namespace

RangeArena::RangeArena() {
  for (auto &C : RowChunks)
    C.store(nullptr, std::memory_order_relaxed);
  for (auto &C : SliceChunks)
    C.store(nullptr, std::memory_order_relaxed);
  for (auto &C : SymChunks)
    C.store(nullptr, std::memory_order_relaxed);
  for (auto &C : FPRowChunks)
    C.store(nullptr, std::memory_order_relaxed);
  for (auto &C : FPSliceChunks)
    C.store(nullptr, std::memory_order_relaxed);
  // Materialize slice 0 (the empty slice) so sliceInfo(0) is valid.
  auto *SC = new SliceChunk();
  SliceChunks[0].store(SC, std::memory_order_release);
  auto *FSC = new FPSliceChunk();
  FPSliceChunks[0].store(FSC, std::memory_order_release);
}

RangeArena &RangeArena::global() {
  static RangeArena Arena;
  // Registered once, after the arena exists: a telemetry reset marks a
  // run boundary, so the intern counters restart epoch-relative counting.
  static bool HookRegistered =
      (telemetry::addResetHook([] { RangeArena::global().beginEpoch(); }),
       true);
  (void)HookRegistered;
  return Arena;
}

void RangeArena::beginEpoch() {
  std::lock_guard<std::mutex> Lock(Mu);
  ++CurrentEpoch;
}

RangeArena::RowChunk *RangeArena::rowChunk(uint32_t Index) const {
  return RowChunks[Index].load(std::memory_order_acquire);
}

const RangeArena::SliceInfo &RangeArena::sliceInfo(uint32_t SliceId) const {
  const SliceChunk *C =
      SliceChunks[SliceId >> ChunkShift].load(std::memory_order_acquire);
  return C->Infos[SliceId & (ChunkRows - 1)];
}

uint32_t RangeArena::symId(const Value *V) {
  if (!V)
    return 0;
  auto It = SymIds.find(V);
  if (It != SymIds.end())
    return It->second;
  uint32_t Id = NextSym++;
  assert(Id < MaxChunks * ChunkRows && "symbol table exhausted");
  uint32_t ChunkIdx = Id >> ChunkShift;
  SymChunk *C = SymChunks[ChunkIdx].load(std::memory_order_acquire);
  if (!C) {
    C = new SymChunk();
    SymChunks[ChunkIdx].store(C, std::memory_order_release);
  }
  C->Syms[Id & (ChunkRows - 1)] = V;
  SymIds.emplace(V, Id);
  return Id;
}

const Value *RangeArena::symValue(uint32_t SymId) const {
  if (SymId == 0)
    return nullptr;
  const SymChunk *C =
      SymChunks[SymId >> ChunkShift].load(std::memory_order_acquire);
  return C->Syms[SymId & (ChunkRows - 1)];
}

uint32_t RangeArena::intern(const SubRange *Subs, uint32_t N) {
  if (N == 0)
    return 0;
  assert(N <= MaxSliceRows && "subrange set exceeds one arena chunk");

  std::lock_guard<std::mutex> Lock(Mu);

  // Resolve symbol ordinals first: the content hash and the dedup compare
  // both key on ordinals, which are themselves interned by pointer
  // identity, so identical content always hashes identically.
  ScratchLoSym.clear();
  ScratchHiSym.clear();
  bool AllNumeric = true;
  for (uint32_t I = 0; I < N; ++I) {
    uint32_t LS = symId(Subs[I].Lo.Sym);
    uint32_t HS = symId(Subs[I].Hi.Sym);
    AllNumeric &= (LS == 0) & (HS == 0);
    ScratchLoSym.push_back(LS);
    ScratchHiSym.push_back(HS);
  }

  // Only pointer-free (all-numeric) contents intern module-wide. A
  // symbolic content embeds symbol ordinals keyed on SSA pointer
  // identity, and the allocator may reuse a dead function's addresses
  // for a later function's values — cross-function identity would then
  // depend on heap layout and hence on the thread schedule. Symbolic
  // sets get arena rows but no dedup; each insertion reports as a miss,
  // so all three intern counters stay functions of the work alone.
  std::vector<uint32_t> *Bucket = nullptr;
  if (AllNumeric) {
    uint64_t Hash = 14695981039346656037ull ^ N;
    for (uint32_t I = 0; I < N; ++I) {
      Hash = fnv1a(Hash, probBits(Subs[I].Prob));
      Hash = fnv1a(Hash, static_cast<uint64_t>(Subs[I].Lo.Offset));
      Hash = fnv1a(Hash, static_cast<uint64_t>(Subs[I].Hi.Offset));
      Hash = fnv1a(Hash, static_cast<uint64_t>(Subs[I].Stride));
    }

    Bucket = &InternMap[Hash];
    for (uint32_t Candidate : *Bucket) {
      const SliceInfo &Info = sliceInfo(Candidate);
      if (Info.Count != N)
        continue;
      const RowChunk *C = rowChunk(Info.RowBegin >> ChunkShift);
      uint32_t Base = Info.RowBegin & (ChunkRows - 1);
      bool Same = true;
      for (uint32_t I = 0; I < N && Same; ++I) {
        Same = probBits(C->Prob[Base + I]) == probBits(Subs[I].Prob) &&
               C->LoOff[Base + I] == Subs[I].Lo.Offset &&
               C->HiOff[Base + I] == Subs[I].Hi.Offset &&
               C->Stride[Base + I] == Subs[I].Stride;
      }
      if (Same) {
        // Epoch-relative counting: the first intern of this content
        // since the last run boundary reports as a miss with its payload
        // bytes, exactly as a fresh process would (see beginEpoch()).
        SliceChunk *SC = SliceChunks[Candidate >> ChunkShift].load(
            std::memory_order_acquire);
        SliceInfo &MutInfo = SC->Infos[Candidate & (ChunkRows - 1)];
        if (MutInfo.Epoch != CurrentEpoch) {
          MutInfo.Epoch = CurrentEpoch;
          telemetry::count(telemetry::Counter::RangeInternMisses);
          telemetry::count(telemetry::Counter::RangeArenaPayloadBytes,
                           RowPayloadBytes * N);
        } else {
          telemetry::count(telemetry::Counter::RangeInternHits);
        }
        return Candidate;
      }
    }
  }

  // New content: allocate rows. A slice never straddles a chunk — pad the
  // cursor to the next chunk when the remainder cannot hold N rows.
  uint32_t Offset = NextRow & (ChunkRows - 1);
  if (Offset + N > ChunkRows)
    NextRow = (NextRow + ChunkRows - 1) & ~(ChunkRows - 1);
  uint32_t RowBegin = NextRow;
  uint32_t ChunkIdx = RowBegin >> ChunkShift;
  assert(ChunkIdx < MaxChunks && "range arena exhausted");
  RowChunk *C = RowChunks[ChunkIdx].load(std::memory_order_acquire);
  if (!C) {
    C = new RowChunk();
    RowChunks[ChunkIdx].store(C, std::memory_order_release);
  }
  uint32_t Base = RowBegin & (ChunkRows - 1);
  for (uint32_t I = 0; I < N; ++I) {
    C->Prob[Base + I] = Subs[I].Prob;
    C->LoOff[Base + I] = Subs[I].Lo.Offset;
    C->HiOff[Base + I] = Subs[I].Hi.Offset;
    C->Stride[Base + I] = Subs[I].Stride;
    C->LoSym[Base + I] = ScratchLoSym[I];
    C->HiSym[Base + I] = ScratchHiSym[I];
  }
  NextRow = RowBegin + N;

  uint32_t SliceId = NextSlice++;
  assert(SliceId < MaxChunks * ChunkRows && "slice table exhausted");
  uint32_t SliceChunkIdx = SliceId >> ChunkShift;
  SliceChunk *SC = SliceChunks[SliceChunkIdx].load(std::memory_order_acquire);
  if (!SC) {
    SC = new SliceChunk();
    SliceChunks[SliceChunkIdx].store(SC, std::memory_order_release);
  }
  SliceInfo &Info = SC->Infos[SliceId & (ChunkRows - 1)];
  Info.RowBegin = RowBegin;
  Info.Count = static_cast<uint16_t>(N);
  Info.AllNumeric = AllNumeric ? 1 : 0;
  Info.Epoch = CurrentEpoch;
  if (Bucket)
    Bucket->push_back(SliceId);

  telemetry::count(telemetry::Counter::RangeInternMisses);
  telemetry::count(telemetry::Counter::RangeArenaPayloadBytes,
                   RowPayloadBytes * N);
  return SliceId;
}

RangeArena::Rows RangeArena::rows(uint32_t SliceId) const {
  Rows R;
  if (SliceId == 0)
    return R;
  const SliceInfo &Info = sliceInfo(SliceId);
  const RowChunk *C = rowChunk(Info.RowBegin >> ChunkShift);
  uint32_t Base = Info.RowBegin & (ChunkRows - 1);
  R.Prob = C->Prob + Base;
  R.LoOff = C->LoOff + Base;
  R.HiOff = C->HiOff + Base;
  R.Stride = C->Stride + Base;
  R.LoSym = C->LoSym + Base;
  R.HiSym = C->HiSym + Base;
  R.Count = Info.Count;
  R.AllNumeric = Info.AllNumeric != 0;
  return R;
}

SubRange RangeArena::row(uint32_t SliceId, uint32_t I) const {
  Rows R = rows(SliceId);
  assert(I < R.Count && "row index out of slice");
  return SubRange(R.Prob[I], Bound(symValue(R.LoSym[I]), R.LoOff[I]),
                  Bound(symValue(R.HiSym[I]), R.HiOff[I]), R.Stride[I]);
}

uint32_t RangeArena::sliceSize(uint32_t SliceId) const {
  return SliceId == 0 ? 0 : sliceInfo(SliceId).Count;
}

bool RangeArena::sliceAllNumeric(uint32_t SliceId) const {
  return SliceId == 0 ? true : sliceInfo(SliceId).AllNumeric != 0;
}

//===----------------------------------------------------------------------===
// Floating-point column family
//===----------------------------------------------------------------------===

const RangeArena::FPSliceInfo &
RangeArena::fpSliceInfo(uint32_t SliceId) const {
  const FPSliceChunk *C =
      FPSliceChunks[SliceId >> ChunkShift].load(std::memory_order_acquire);
  return C->Infos[SliceId & (ChunkRows - 1)];
}

uint32_t RangeArena::internFP(const FPInterval *Subs, uint32_t N,
                              double NaNMass) {
  if (N == 0 && probBits(NaNMass) == probBits(0.0))
    return 0;
  assert(N <= MaxSliceRows && "FP interval set exceeds one arena chunk");

  std::lock_guard<std::mutex> Lock(Mu);

  // FP contents are pointer-free, so everything interns. The NaN mass is
  // part of the content: two slices with identical rows but different
  // NaN mass get different ids, keeping slice id -> lattice value
  // injective (RangeOps' memo keys depend on this).
  uint64_t Hash = 14695981039346656037ull ^ (uint64_t(N) << 32);
  Hash = fnv1a(Hash, probBits(NaNMass));
  for (uint32_t I = 0; I < N; ++I) {
    Hash = fnv1a(Hash, probBits(Subs[I].Prob));
    Hash = fnv1a(Hash, probBits(Subs[I].Lo));
    Hash = fnv1a(Hash, probBits(Subs[I].Hi));
  }

  std::vector<uint32_t> *Bucket = &FPInternMap[Hash];
  for (uint32_t Candidate : *Bucket) {
    FPSliceChunk *SC =
        FPSliceChunks[Candidate >> ChunkShift].load(std::memory_order_acquire);
    FPSliceInfo &Info = SC->Infos[Candidate & (ChunkRows - 1)];
    if (Info.Count != N || probBits(Info.NaNMass) != probBits(NaNMass))
      continue;
    bool Same = true;
    if (N > 0) {
      const FPRowChunk *C =
          FPRowChunks[Info.RowBegin >> ChunkShift].load(
              std::memory_order_acquire);
      uint32_t Base = Info.RowBegin & (ChunkRows - 1);
      for (uint32_t I = 0; I < N && Same; ++I) {
        Same = probBits(C->Prob[Base + I]) == probBits(Subs[I].Prob) &&
               probBits(C->Lo[Base + I]) == probBits(Subs[I].Lo) &&
               probBits(C->Hi[Base + I]) == probBits(Subs[I].Hi);
      }
    }
    if (Same) {
      // Epoch-relative counting, exactly as for integer slices.
      if (Info.Epoch != CurrentEpoch) {
        Info.Epoch = CurrentEpoch;
        telemetry::count(telemetry::Counter::RangeInternMisses);
        telemetry::count(telemetry::Counter::RangeArenaPayloadBytes,
                         FPRowPayloadBytes * N + FPSlicePayloadBytes);
      } else {
        telemetry::count(telemetry::Counter::RangeInternHits);
      }
      return Candidate;
    }
  }

  // New content: allocate rows (none for the pure-NaN range). A slice
  // never straddles a chunk.
  uint32_t RowBegin = 0;
  if (N > 0) {
    uint32_t Offset = NextFPRow & (ChunkRows - 1);
    if (Offset + N > ChunkRows)
      NextFPRow = (NextFPRow + ChunkRows - 1) & ~(ChunkRows - 1);
    RowBegin = NextFPRow;
    uint32_t ChunkIdx = RowBegin >> ChunkShift;
    assert(ChunkIdx < MaxChunks && "FP range arena exhausted");
    FPRowChunk *C = FPRowChunks[ChunkIdx].load(std::memory_order_acquire);
    if (!C) {
      C = new FPRowChunk();
      FPRowChunks[ChunkIdx].store(C, std::memory_order_release);
    }
    uint32_t Base = RowBegin & (ChunkRows - 1);
    for (uint32_t I = 0; I < N; ++I) {
      C->Prob[Base + I] = Subs[I].Prob;
      C->Lo[Base + I] = Subs[I].Lo;
      C->Hi[Base + I] = Subs[I].Hi;
    }
    NextFPRow = RowBegin + N;
  }

  uint32_t SliceId = NextFPSlice++;
  assert(SliceId < MaxChunks * ChunkRows && "FP slice table exhausted");
  uint32_t SliceChunkIdx = SliceId >> ChunkShift;
  FPSliceChunk *SC =
      FPSliceChunks[SliceChunkIdx].load(std::memory_order_acquire);
  if (!SC) {
    SC = new FPSliceChunk();
    FPSliceChunks[SliceChunkIdx].store(SC, std::memory_order_release);
  }
  FPSliceInfo &Info = SC->Infos[SliceId & (ChunkRows - 1)];
  Info.RowBegin = RowBegin;
  Info.Count = static_cast<uint16_t>(N);
  Info.Epoch = CurrentEpoch;
  Info.NaNMass = NaNMass;
  Bucket->push_back(SliceId);

  telemetry::count(telemetry::Counter::RangeInternMisses);
  telemetry::count(telemetry::Counter::RangeArenaPayloadBytes,
                   FPRowPayloadBytes * N + FPSlicePayloadBytes);
  return SliceId;
}

RangeArena::FPRows RangeArena::fpRows(uint32_t SliceId) const {
  FPRows R;
  if (SliceId == 0)
    return R;
  const FPSliceInfo &Info = fpSliceInfo(SliceId);
  R.Count = Info.Count;
  R.NaNMass = Info.NaNMass;
  if (Info.Count > 0) {
    const FPRowChunk *C =
        FPRowChunks[Info.RowBegin >> ChunkShift].load(
            std::memory_order_acquire);
    uint32_t Base = Info.RowBegin & (ChunkRows - 1);
    R.Prob = C->Prob + Base;
    R.Lo = C->Lo + Base;
    R.Hi = C->Hi + Base;
  }
  return R;
}

uint32_t RangeArena::fpSliceSize(uint32_t SliceId) const {
  return SliceId == 0 ? 0 : fpSliceInfo(SliceId).Count;
}

double RangeArena::fpNaNMass(uint32_t SliceId) const {
  return SliceId == 0 ? 0.0 : fpSliceInfo(SliceId).NaNMass;
}
