//===- vrp/Audit.cpp - Runtime soundness sentinel -------------------------===//

#include "vrp/Audit.h"

#include "ir/Module.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cmath>
#include <sstream>

using namespace vrp;
using namespace vrp::audit;

namespace {

/// The values whose ranges provably dominate \p Br: the condition and,
/// when the condition is a comparison, its operands. Anything else in the
/// frame may not have executed yet on this path.
void forEachAuditedValue(const CondBrInst *Br,
                         const std::function<void(const Value *)> &Fn) {
  Fn(Br->cond());
  if (const auto *Cmp = dyn_cast<CmpInst>(Br->cond())) {
    Fn(Cmp->lhs());
    Fn(Cmp->rhs());
  }
}

/// True when \p VR makes a checkable claim about \p V. Int values need a
/// Ranges value with purely numeric bounds (⊤/⊥ claim nothing; symbolic
/// bounds cannot be checked against a single frame value). Float values
/// need a FloatRanges interval set or a float-constant singleton; both
/// are checkable, and \p AllowFloat gates them off for callers that can
/// only handle the int domain (the corruption back door).
bool auditable(const Value *V, const ValueRange &VR, bool AllowFloat) {
  if (isa<Constant>(V))
    return false;
  if (V->type() == IRType::Int)
    return VR.isRanges() && !VR.hasSymbolicBounds();
  if (V->type() == IRType::Float && AllowFloat)
    return VR.isFloatRanges() || VR.isFloatConst();
  return false;
}

/// Range membership: inside some subrange's [Lo, Hi] and on its stride
/// lattice. All bounds are numeric (auditable() guarantees it).
bool contains(const std::vector<SubRange> &Subs, int64_t V) {
  for (const SubRange &S : Subs) {
    if (V < S.Lo.Offset || V > S.Hi.Offset)
      continue;
    if (onLattice(S.Lo.Offset, S.Stride, V))
      return true;
  }
  return false;
}

/// Float-range membership: inside some closed interval [Lo, Hi], or NaN
/// while the range carries NaN mass. -0.0 compares equal to +0.0 under
/// IEEE <=, matching the lattice's convention (docs/DOMAINS.md).
bool containsFP(const std::vector<FPInterval> &Subs, double NaNMass,
                double V) {
  if (std::isnan(V))
    return NaNMass > 0.0;
  for (const FPInterval &S : Subs)
    if (S.Lo <= V && V <= S.Hi)
      return true;
  return false;
}

} // namespace

std::string AuditViolation::str() const {
  std::ostringstream OS;
  if (UnreachableExecuted) {
    OS << "branch at " << Branch << " predicted unreachable was executed "
       << Count << (Count == 1 ? " time" : " times");
    return OS.str();
  }
  OS << "value " << Value << " at " << Branch << " observed ";
  if (FloatWitness)
    OS << FWitness;
  else
    OS << Witness;
  OS << " outside " << Range << " (" << Count << " violating execution"
     << (Count == 1 ? ")" : "s)");
  return OS.str();
}

uint64_t AuditReport::totalChecks() const {
  uint64_t N = 0;
  for (const FunctionAudit &FA : Functions)
    N += FA.Checked;
  return N;
}

uint64_t AuditReport::totalViolations() const {
  uint64_t N = 0;
  for (const FunctionAudit &FA : Functions)
    N += FA.Violations;
  return N;
}

std::vector<const FunctionAudit *> AuditReport::violated() const {
  std::vector<const FunctionAudit *> Out;
  for (const FunctionAudit &FA : Functions)
    if (FA.Violations != 0)
      Out.push_back(&FA);
  return Out;
}

std::string AuditReport::str() const {
  std::ostringstream OS;
  OS << "audit: " << totalViolations() << " violations in " << totalChecks()
     << " checks across " << Functions.size() << " functions\n";
  for (const FunctionAudit &FA : Functions) {
    if (FA.Violations == 0)
      continue;
    OS << "  @" << FA.Function << ": " << FA.Violations << " of "
       << FA.Checked << " checks violated\n";
    for (const AuditViolation &V : FA.Details)
      OS << "    " << V.str() << "\n";
  }
  return OS.str();
}

void RangeAuditor::addFunction(const Function &F,
                               const FunctionVRPResult &VRP) {
  size_t FnIdx = Functions.size();
  Functions.push_back(FunctionAudit{F.name(), 0, 0, {}});
  if (VRP.Degraded)
    return; // Every range is ⊥: no claims to audit.

  for (const auto &BB : F.blocks()) {
    for (const auto &I : BB->instructions()) {
      const auto *Br = dyn_cast<CondBrInst>(I.get());
      if (!Br)
        continue;
      BranchPlan Plan;
      Plan.FnIdx = FnIdx;
      Plan.Loc = Br->loc().str();
      auto BrIt = VRP.Branches.find(Br);
      Plan.PredictedUnreachable =
          BrIt != VRP.Branches.end() && !BrIt->second.Reachable;
      forEachAuditedValue(Br, [&](const Value *V) {
        auto It = VRP.Ranges.find(V);
        if (It == VRP.Ranges.end() ||
            !auditable(V, It->second, /*AllowFloat=*/true))
          return;
        ValuePlan VP;
        VP.V = V;
        VP.Name = V->displayName();
        VP.RangeStr = It->second.str();
        const ValueRange &VR = It->second;
        if (V->type() == IRType::Float) {
          VP.IsFloat = true;
          if (VR.isFloatConst()) {
            // A singleton claim: the point interval, or pure NaN mass.
            double C = VR.floatValue();
            if (std::isnan(C))
              VP.NaNMass = 1.0;
            else
              VP.FPSubs.push_back(FPInterval(1.0, C, C));
          } else {
            VP.FPSubs = VR.fpIntervals();
            VP.NaNMass = VR.nanMass();
          }
        } else {
          VP.Subs = VR.subRanges();
        }
        Plan.Values.push_back(std::move(VP));
      });
      if (Plan.PredictedUnreachable || !Plan.Values.empty())
        Plans.emplace(Br, std::move(Plan));
    }
  }
}

void RangeAuditor::recordViolation(FunctionAudit &FA, const ValuePlan *VP,
                                   const BranchPlan &BP, int64_t Witness,
                                   double FWitness, bool Unreachable) {
  ++FA.Violations;
  for (AuditViolation &D : FA.Details) {
    if (D.UnreachableExecuted == Unreachable && D.Branch == BP.Loc &&
        (Unreachable || D.Value == VP->Name)) {
      ++D.Count;
      return;
    }
  }
  if (FA.Details.size() >= MaxDetailsPerFunction)
    return; // The Violations total keeps counting past the detail cap.
  AuditViolation D;
  D.Branch = BP.Loc;
  D.Count = 1;
  D.UnreachableExecuted = Unreachable;
  if (!Unreachable) {
    D.Value = VP->Name;
    D.Range = VP->RangeStr;
    D.FloatWitness = VP->IsFloat;
    if (VP->IsFloat)
      D.FWitness = FWitness;
    else
      D.Witness = Witness;
  }
  FA.Details.push_back(std::move(D));
}

void RangeAuditor::branchExecuted(const Function &F, const CondBrInst *Branch,
                                  bool Taken, const FrameValues &Values) {
  (void)F;
  (void)Taken;
  auto It = Plans.find(Branch);
  if (It == Plans.end())
    return;
  const BranchPlan &BP = It->second;
  FunctionAudit &FA = Functions[BP.FnIdx];
  if (BP.PredictedUnreachable) {
    ++FA.Checked;
    recordViolation(FA, nullptr, BP, 0, 0.0, /*Unreachable=*/true);
  }
  for (const ValuePlan &VP : BP.Values) {
    if (VP.IsFloat) {
      std::optional<double> V = Values.floatValue(VP.V);
      if (!V)
        continue;
      ++FA.Checked;
      if (!containsFP(VP.FPSubs, VP.NaNMass, *V))
        recordViolation(FA, &VP, BP, 0, *V, /*Unreachable=*/false);
      continue;
    }
    std::optional<int64_t> V = Values.intValue(VP.V);
    if (!V)
      continue;
    ++FA.Checked;
    if (!contains(VP.Subs, *V))
      recordViolation(FA, &VP, BP, *V, 0.0, /*Unreachable=*/false);
  }
}

AuditReport RangeAuditor::takeReport() {
  AuditReport R;
  R.Functions = std::move(Functions);
  Functions.clear();
  Plans.clear();
  telemetry::count(telemetry::Counter::AuditChecks, R.totalChecks());
  telemetry::count(telemetry::Counter::SoundnessViolations,
                   R.totalViolations());
  return R;
}

namespace {

/// First value in block order whose range the audit would check. The
/// corruption machinery replaces the range with an out-of-hull int
/// singleton, so only int-domain targets qualify.
const Value *findCorruptTarget(const Function &F,
                               const FunctionVRPResult &VRP) {
  if (VRP.Degraded)
    return nullptr;
  for (const auto &BB : F.blocks()) {
    for (const auto &I : BB->instructions()) {
      const auto *Br = dyn_cast<CondBrInst>(I.get());
      if (!Br)
        continue;
      const Value *Target = nullptr;
      forEachAuditedValue(Br, [&](const Value *V) {
        if (Target)
          return;
        auto It = VRP.Ranges.find(V);
        if (It != VRP.Ranges.end() &&
            auditable(V, It->second, /*AllowFloat=*/false))
          Target = V;
      });
      if (Target)
        return Target;
    }
  }
  return nullptr;
}

} // namespace

bool vrp::audit::canCorruptRange(const Function &F,
                                 const FunctionVRPResult &VRP) {
  return findCorruptTarget(F, VRP) != nullptr;
}

bool vrp::audit::corruptRangeForTesting(const Function &F,
                                        FunctionVRPResult &VRP) {
  const Value *Target = findCorruptTarget(F, VRP);
  if (!Target)
    return false;
  const std::vector<SubRange> &Subs = VRP.Ranges[Target].subRanges();
  int64_t Lo = Int64Max, Hi = Int64Min;
  for (const SubRange &S : Subs) {
    Lo = std::min(Lo, S.Lo.Offset);
    Hi = std::max(Hi, S.Hi.Offset);
  }
  // A witness singleton just outside the original hull: any in-range
  // observation then violates. A full-width hull leaves only a
  // best-effort point.
  int64_t W = Lo > Int64Min ? Lo - 1 : (Hi < Int64Max ? Hi + 1 : Lo);
  VRP.Ranges[Target] = ValueRange::intConstant(W);
  return true;
}
