//===- vrp/Audit.h - Runtime soundness sentinel -----------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The soundness sentinel: a profile/Interpreter.h BranchObserver that
/// cross-checks VRP's static claims against an actual execution. VRP's
/// output assignment is an *over-approximation* contract — every value a
/// variable takes at runtime must lie inside its computed range (and on
/// its stride lattice), and a branch proved unreachable must never
/// execute. The auditor watches every executed conditional branch and
/// verifies the contract for the values that provably dominate the branch:
/// the condition itself and, when the condition is a comparison, its two
/// operands.
///
/// A violated contract means the analysis result is untrustworthy for
/// that function (an engine bug, or a deliberately injected
/// "unsound-range" fault). The response is *quarantine*, not abort: the
/// caller discards the function's VRP predictions and rebuilds them from
/// the Ball–Larus heuristic fallback (see eval/SuiteRunner.cpp), records
/// a support/Quarantine.h record, and keeps going.
///
/// Both element domains are audited. Integer claims are checked as
/// subrange-plus-stride membership; float claims (FloatRanges and
/// float-constant singletons) are checked as interval membership, with a
/// NaN observation legal exactly when the range carries NaN mass
/// (docs/DOMAINS.md). ⊤ and ⊥ claim nothing, and symbolic bounds would
/// need the bound variable's concurrent value, which only the range
/// *lattice* — not the activation frame — relates to the audited value.
/// Each skip is a deliberate loss of audit coverage, never a soundness
/// loss.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_VRP_AUDIT_H
#define VRP_VRP_AUDIT_H

#include "profile/Interpreter.h"
#include "vrp/Propagation.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace vrp {
namespace audit {

/// One distinct violated (branch, value) contract, with its first
/// observed witness.
struct AuditViolation {
  std::string Value;  ///< SSA display name of the violating value.
  std::string Branch; ///< Source location of the branch ("file:line").
  std::string Range;  ///< The range the value was claimed to lie in.
  int64_t Witness = 0; ///< First observed out-of-range value (int domain).
  /// First observed out-of-range value in the float domain; meaningful
  /// only when FloatWitness is set (Witness is 0 then).
  double FWitness = 0.0;
  bool FloatWitness = false; ///< True when the violating value is float.
  uint64_t Count = 0;  ///< Executions that violated this contract.
  /// True for the "propagation proved this branch unreachable, yet it
  /// executed" violation; Witness is meaningless then.
  bool UnreachableExecuted = false;

  std::string str() const;
};

/// Audit outcome for one function.
struct FunctionAudit {
  std::string Function;
  uint64_t Checked = 0;    ///< Individual range-membership checks run.
  uint64_t Violations = 0; ///< Checks that failed (all, not just kept).
  /// Distinct violated contracts, capped at
  /// RangeAuditor::MaxDetailsPerFunction; Violations keeps the true
  /// total beyond the cap.
  std::vector<AuditViolation> Details;
};

/// Whole-module audit outcome, functions in the order they were added.
struct AuditReport {
  std::vector<FunctionAudit> Functions;

  uint64_t totalChecks() const;
  uint64_t totalViolations() const;
  /// The functions with at least one violation.
  std::vector<const FunctionAudit *> violated() const;
  /// Multi-line human-readable rendering (one line per detail).
  std::string str() const;
};

/// The sentinel itself. Register each analyzed function with
/// addFunction(), then pass the auditor as the BranchObserver of an
/// Interpreter::run(); afterwards takeReport() yields the verdict.
/// Not thread-safe — the interpreter is serial, and so is this.
class RangeAuditor final : public BranchObserver {
public:
  static constexpr unsigned MaxDetailsPerFunction = 16;

  /// Registers \p F's contracts. Degraded results claim nothing (every
  /// range is ⊥) and add only an empty FunctionAudit. The ranges are
  /// copied, so \p VRP need not outlive the auditor.
  void addFunction(const Function &F, const FunctionVRPResult &VRP);

  void branchExecuted(const Function &F, const CondBrInst *Branch,
                      bool Taken, const FrameValues &Values) override;

  /// Finalizes and returns the report; flushes the audit_checks /
  /// soundness_violations telemetry counters. The auditor is spent
  /// afterwards.
  AuditReport takeReport();

private:
  struct ValuePlan {
    const Value *V = nullptr;
    std::string Name;
    std::string RangeStr;
    std::vector<SubRange> Subs; ///< Int domain: all numeric, non-symbolic.
    std::vector<FPInterval> FPSubs; ///< Float domain: closed intervals.
    double NaNMass = 0.0; ///< Float domain: probability mass on NaN.
    bool IsFloat = false; ///< Selects FPSubs/NaNMass over Subs.
  };
  struct BranchPlan {
    size_t FnIdx = 0;
    std::string Loc;
    bool PredictedUnreachable = false;
    std::vector<ValuePlan> Values;
  };

  void recordViolation(FunctionAudit &FA, const ValuePlan *VP,
                       const BranchPlan &BP, int64_t Witness,
                       double FWitness, bool Unreachable);

  std::vector<FunctionAudit> Functions;
  std::unordered_map<const CondBrInst *, BranchPlan> Plans;
};

/// True when \p F has at least one range corruptRangeForTesting() could
/// corrupt. The "unsound-range" fault site probes only such functions,
/// so a counted spec like "unsound-range@bench:0" always lands on a
/// function whose corruption is observable.
bool canCorruptRange(const Function &F, const FunctionVRPResult &VRP);

/// Testing back door for the "unsound-range" fault-injection site
/// (support/FaultInjection.h): shrinks the first auditable range of \p F
/// in \p VRP to a singleton outside its original bounds, so that any
/// execution reaching that branch with an in-range value trips the
/// sentinel. Branch *predictions* are left untouched — exactly like a
/// real propagation bug, the corruption is invisible until audited.
/// Returns false when the function has no auditable range to corrupt.
bool corruptRangeForTesting(const Function &F, FunctionVRPResult &VRP);

} // namespace audit
} // namespace vrp

#endif // VRP_VRP_AUDIT_H
