//===- vrp/Derivation.h - Loop-carried range derivation ---------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derivation of loop-carried variables (paper §3.6). A φ whose in-edges
/// include a back edge is loop-carried; instead of executing the loop
/// during propagation, its derivation (the operations performed on it
/// around the loop) is matched against the induction template
///
///     new value = old value ± {set of increments}
///     assert (value between specific bounds)
///
/// and combined with the initial value to produce the final range. Chains
/// that do not match are left to brute-force propagation (bounded by the
/// widening guard), exactly as the paper prescribes: "one should view
/// derivation matching as an efficiency optimization".
///
//===----------------------------------------------------------------------===//

#ifndef VRP_VRP_DERIVATION_H
#define VRP_VRP_DERIVATION_H

#include "analysis/DFS.h"
#include "ir/Instruction.h"
#include "vrp/Options.h"
#include "vrp/ValueRange.h"

#include <functional>
#include <optional>

namespace vrp {

/// Outcome of a derivation attempt.
enum class DerivationOutcome {
  Derived,    ///< Range determined; do not re-evaluate this φ.
  Impossible, ///< Template mismatch; fall back to propagation.
  NotYet,     ///< Initial value still ⊤; retry after more propagation.
};

struct DerivationResult {
  DerivationOutcome Outcome = DerivationOutcome::Impossible;
  ValueRange Range; ///< Valid when Outcome == Derived.
};

/// Attempts to derive the range of loop-carried φ \p Phi. \p DFS classifies
/// back edges; \p RangeOf supplies current value ranges (for the initial
/// value and assert bounds).
DerivationResult
deriveLoopCarriedRange(const PhiInst *Phi, const DFSInfo &DFS,
                       const VRPOptions &Opts, RangeStats &Stats,
                       const std::function<ValueRange(const Value *)> &RangeOf);

/// True when \p Phi has at least one back-edge in-edge (is loop-carried).
bool isLoopCarried(const PhiInst *Phi, const DFSInfo &DFS);

} // namespace vrp

#endif // VRP_VRP_DERIVATION_H
