//===- vrp/Trace.cpp - Opt-in propagation tracing -------------------------===//

#include "vrp/Trace.h"

#include "ir/Function.h"

namespace vrp {
namespace trace {

FunctionTrace TraceRing::finish(std::string FunctionName) const {
  FunctionTrace T;
  T.Function = std::move(FunctionName);
  T.Recorded = Recorded;
  T.Events.reserve(Buffer.size());
  if (Buffer.size() < Capacity) {
    T.Events = Buffer;
    return T;
  }
  // Full ring: Next points at the oldest surviving event.
  for (size_t I = 0; I < Buffer.size(); ++I)
    T.Events.push_back(Buffer[(Next + I) % Buffer.size()]);
  return T;
}

bool TraceSink::wants(const Function &F) const {
  return Filter.empty() || F.name() == Filter;
}

void TraceSink::install(FunctionTrace T) {
  std::lock_guard<std::mutex> L(M);
  Traces[T.Function] = std::move(T);
}

std::map<std::string, FunctionTrace> TraceSink::traces() const {
  std::lock_guard<std::mutex> L(M);
  return Traces;
}

void TraceSink::print(std::ostream &OS) const {
  std::map<std::string, FunctionTrace> Snap = traces();
  for (const auto &[Name, T] : Snap) {
    OS << "trace of " << Name << ": " << T.Recorded << " transition"
       << (T.Recorded == 1 ? "" : "s");
    if (T.Recorded > T.Events.size())
      OS << " (showing last " << T.Events.size() << ")";
    OS << "\n";
    for (const TraceEvent &E : T.Events)
      OS << "  [" << E.Step << "] " << E.Value << ": " << E.Old << " -> "
         << E.New << "  (" << E.Trigger << ")\n";
  }
}

} // namespace trace
} // namespace vrp
