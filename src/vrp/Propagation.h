//===- vrp/Propagation.h - The VRP worklist engine --------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The propagation engine (paper §3.3): a Wegman–Zadeck-style sparse
/// conditional propagator extended to weighted value ranges. Two worklists
/// are maintained — the FlowWorkList of CFG edges and the SSAWorkList of
/// def-use edges — with flow items preferred ("tends to cause information
/// to be gathered more quickly"). Every CFG edge carries a probability
/// rather than an executed flag; φ evaluation merges incoming ranges
/// weighted by in-edge probabilities; conditional branches are predicted
/// by consulting the tested value's range; loop-carried φs are derived
/// (vrp/Derivation.h) so loops need not be executed during propagation.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_VRP_PROPAGATION_H
#define VRP_VRP_PROPAGATION_H

#include "support/Status.h"
#include "vrp/Options.h"
#include "vrp/RangeOps.h"
#include "vrp/ValueRange.h"

#include <functional>
#include <map>
#include <unordered_map>

namespace vrp {

/// Final prediction for one conditional branch.
struct BranchPrediction {
  double ProbTrue = 0.5;
  bool FromRanges = false; ///< False: needs the heuristic fallback (§3.5).
  bool Reachable = true;   ///< False: propagation proved it unreachable.
};

/// Per-function propagation result: the paper's "output assignment" for
/// every variable plus branch predictions and efficiency counters.
struct FunctionVRPResult {
  const Function *F = nullptr;
  std::unordered_map<const Value *, ValueRange> Ranges;
  std::map<const CondBrInst *, BranchPrediction> Branches;
  /// Reach probability per block id (capped in-edge probability sum).
  std::vector<double> BlockProb;
  RangeStats Stats;
  /// True when a resource budget cut the analysis short: every range is
  /// ⊥ and every branch is marked for the Ball–Larus fallback, mirroring
  /// the paper's ⊥-range degradation (§3.5) at whole-function scope.
  bool Degraded = false;
  /// Exactly when Degraded: the structured cause (BudgetExceeded with a
  /// site of "propagation" for a blown step budget, "derivation" for a
  /// φ that never stabilized — the message names function and variable).
  Status DegradeCause;

  /// Range lookup with constant folding (constants get exact ranges).
  ValueRange rangeOf(const Value *V) const;

  /// The predicted probability of the CFG edge From->To being taken when
  /// From executes (1.0 for unconditional edges).
  double edgeFraction(const BasicBlock *From, const BasicBlock *To) const;
};

class AnalysisCache;

/// Context hooks for interprocedural analysis (§3.7): parameter ranges via
/// jump functions and call-result ranges via return functions. The
/// intraprocedural defaults return ⊥.
struct PropagationContext {
  std::function<ValueRange(const Param *)> ParamRange;
  std::function<ValueRange(const CallInst *)> CallResultRange;

  /// Optional per-function analysis memo. When set, the engine reads its
  /// DFS numbering from the cache instead of recomputing it per run —
  /// interprocedural analysis re-propagates every function each round, so
  /// this saves one CFG walk per function per round. Must outlive the
  /// propagation call; must be thread-safe when functions are fanned out
  /// in parallel (analysis/AnalysisCache.h is).
  AnalysisCache *Cache = nullptr;

  static PropagationContext intraprocedural();
};

/// Runs value range propagation over one SSA-form function.
FunctionVRPResult propagateRanges(const Function &F, const VRPOptions &Opts,
                                  const PropagationContext &Context);

/// Convenience: intraprocedural propagation with default hooks.
FunctionVRPResult propagateRanges(const Function &F, const VRPOptions &Opts);

} // namespace vrp

#endif // VRP_VRP_PROPAGATION_H
