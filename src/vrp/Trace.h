//===- vrp/Trace.h - Opt-in propagation tracing -----------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opt-in recording of lattice transitions inside the propagation engine:
/// each time an SSA value's range changes, the engine emits
/// (value, old range, new range, triggering edge, step index). Events are
/// ring-buffered per function — bounded memory no matter how long the
/// fixpoint takes — and only functions matching the sink's filter record
/// anything, so `--trace=<function>` costs nothing elsewhere.
///
/// The engine fills a private TraceRing while it runs and publishes the
/// unrolled events to the shared TraceSink once per function, under a
/// mutex; with the deterministic engine, a function's event list is
/// identical at any thread count.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_VRP_TRACE_H
#define VRP_VRP_TRACE_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace vrp {

class Function;

namespace trace {

/// One lattice transition: \p Value went from \p Old to \p New because
/// of \p Trigger (a flow edge "bb0 -> bb2" or an SSA push "ssa %x") at
/// worklist step \p Step.
struct TraceEvent {
  std::string Value;
  std::string Old;
  std::string New;
  std::string Trigger;
  uint64_t Step = 0;
};

/// The (possibly truncated) transition history of one function.
struct FunctionTrace {
  std::string Function;
  uint64_t Recorded = 0; ///< Total events seen, including evicted ones.
  std::vector<TraceEvent> Events; ///< Last `capacity` events, in order.
};

/// Fixed-capacity event ring the engine writes into while analyzing one
/// function. Engine-local — no locking.
class TraceRing {
public:
  explicit TraceRing(size_t Capacity) : Capacity(Capacity ? Capacity : 1) {}

  void record(TraceEvent E) {
    ++Recorded;
    if (Buffer.size() < Capacity) {
      Buffer.push_back(std::move(E));
      return;
    }
    Buffer[Next] = std::move(E);
    Next = (Next + 1) % Capacity;
  }

  uint64_t recorded() const { return Recorded; }

  /// Unrolls the ring into oldest-first order.
  FunctionTrace finish(std::string FunctionName) const;

private:
  size_t Capacity;
  size_t Next = 0; ///< Overwrite cursor once the ring is full.
  uint64_t Recorded = 0;
  std::vector<TraceEvent> Buffer;
};

/// Shared collection point, installed via VRPOptions::Trace. Thread-safe;
/// traces are keyed by function name so iteration order is deterministic.
class TraceSink {
public:
  /// Records transitions only for functions named \p Filter; an empty
  /// filter records every function.
  explicit TraceSink(std::string Filter = "", size_t Capacity = 256)
      : Filter(std::move(Filter)), Capacity(Capacity) {}

  /// Whether the engine should bother recording \p F at all.
  bool wants(const Function &F) const;

  size_t capacity() const { return Capacity; }

  /// Publishes a finished per-function trace (replaces any previous trace
  /// for the same function — re-analysis supersedes).
  void install(FunctionTrace T);

  /// Snapshot of every collected trace, keyed by function name.
  std::map<std::string, FunctionTrace> traces() const;

  /// Human-readable dump, one block per function.
  void print(std::ostream &OS) const;

private:
  std::string Filter;
  size_t Capacity;
  mutable std::mutex M;
  std::map<std::string, FunctionTrace> Traces;
};

} // namespace trace
} // namespace vrp

#endif // VRP_VRP_TRACE_H
