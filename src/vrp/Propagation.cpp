//===- vrp/Propagation.cpp - The VRP worklist engine -----------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "vrp/Propagation.h"

#include "analysis/AliasAnalysis.h"
#include "analysis/AnalysisCache.h"
#include "analysis/DFS.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"
#include "vrp/Derivation.h"
#include "vrp/Trace.h"

#include <memory>

#include <algorithm>
#include <array>
#include <cassert>
#include <deque>
#include <set>

using namespace vrp;

PropagationContext PropagationContext::intraprocedural() {
  PropagationContext Ctx;
  Ctx.ParamRange = [](const Param *) { return ValueRange::bottom(); };
  Ctx.CallResultRange = [](const CallInst *) {
    return ValueRange::bottom();
  };
  return Ctx;
}

ValueRange FunctionVRPResult::rangeOf(const Value *V) const {
  if (const auto *C = dyn_cast<Constant>(V))
    return C->isInt() ? ValueRange::intConstant(C->intValue())
                      : ValueRange::floatConstant(C->floatValue());
  auto It = Ranges.find(V);
  return It == Ranges.end() ? ValueRange::bottom() : It->second;
}

double FunctionVRPResult::edgeFraction(const BasicBlock *From,
                                       const BasicBlock *To) const {
  const Instruction *T = From->terminator();
  if (const auto *Br = dyn_cast_or_null<BrInst>(T))
    return Br->target() == To ? 1.0 : 0.0;
  if (const auto *CBr = dyn_cast_or_null<CondBrInst>(T)) {
    auto It = Branches.find(CBr);
    double P = It == Branches.end() ? 0.5 : It->second.ProbTrue;
    if (CBr->trueBlock() == To)
      return P;
    if (CBr->falseBlock() == To)
      return 1.0 - P;
  }
  return 0.0;
}

namespace {

/// The engine. One instance per function per run.
class Engine {
public:
  Engine(const Function &F, const VRPOptions &Opts,
         const PropagationContext &Ctx)
      : F(F), Opts(Opts), Ctx(Ctx), Ops(Opts, Result.Stats),
        OwnedDFS(Ctx.Cache ? nullptr : std::make_unique<DFSInfo>(F)),
        DFS(Ctx.Cache ? Ctx.Cache->dfs(F) : *OwnedDFS),
        Alias(Opts.EnableAliasRanges ? AliasInfo::analyze(F) : AliasInfo()) {
    if (Opts.Trace && Opts.Trace->wants(F))
      Ring = std::make_unique<trace::TraceRing>(Opts.Trace->capacity());
  }

  FunctionVRPResult run();

private:
  //===--------------------------------------------------------------------===
  // Lattice state
  //===--------------------------------------------------------------------===

  ValueRange rangeOf(const Value *V) {
    if (const auto *C = dyn_cast<Constant>(V))
      return C->isInt() ? ValueRange::intConstant(C->intValue())
                        : ValueRange::floatConstant(C->floatValue());
    if (const auto *P = dyn_cast<Param>(V)) {
      auto It = Result.Ranges.find(V);
      if (It != Result.Ranges.end())
        return It->second;
      ValueRange VR = Ctx.ParamRange(P);
      Result.Ranges.emplace(V, VR);
      return VR;
    }
    auto It = Result.Ranges.find(V);
    return It == Result.Ranges.end() ? ValueRange::top() : It->second;
  }

  /// Stores a new range; pushes SSA users when the change is material
  /// (any support change, or probability movement above the tolerance).
  bool updateRange(const Instruction *I, const ValueRange &VR) {
    ValueRange Old = rangeOf(I);
    if (Old.equals(VR, 1e-12))
      return false; // Exactly converged.
    if (Ring)
      Ring->record(trace::TraceEvent{I->displayName(), Old.str(), VR.str(),
                                     CurrentTrigger, CurrentStep});
    bool Material =
        !Old.sameSupport(VR) || !Old.equals(VR, Opts.ProbTolerance);
    Result.Ranges[I] = VR; // Always keep the most precise result.
    if (!Material)
      return false;
    for (const Use &U : I->uses())
      SSAWorkList.push_back(U.User);
    return true;
  }

  //===--------------------------------------------------------------------===
  // Edge probabilities
  //===--------------------------------------------------------------------===

  /// Probability of the out-edge of \p B selected by \p Index (0 = Br
  /// target / CondBr true, 1 = CondBr false).
  double &outProb(const BasicBlock *B, unsigned Index) {
    return OutProbs[B->id()][Index];
  }

  double edgeProbTo(const BasicBlock *Pred, const BasicBlock *Target) {
    const Instruction *T = Pred->terminator();
    if (const auto *Br = dyn_cast_or_null<BrInst>(T))
      return Br->target() == Target ? outProb(Pred, 0) : 0.0;
    if (const auto *CBr = dyn_cast_or_null<CondBrInst>(T)) {
      if (CBr->trueBlock() == Target)
        return outProb(Pred, 0);
      if (CBr->falseBlock() == Target)
        return outProb(Pred, 1);
    }
    return 0.0;
  }

  /// Recomputes a block's reach probability: capped in-edge sum (paper
  /// footnote 1 — "the sum of the probabilities of the edges which lead to
  /// the node being executed").
  double computeBlockProb(const BasicBlock *B) {
    if (B == F.entry())
      return 1.0;
    double Sum = 0.0;
    for (const BasicBlock *P : B->preds())
      Sum += edgeProbTo(P, B);
    return std::min(1.0, Sum);
  }

  /// Updates B's out-edge probabilities from its reach probability and the
  /// current branch fraction; pushes changed edges onto the FlowWorkList.
  void refreshOutEdges(const BasicBlock *B);

  //===--------------------------------------------------------------------===
  // Evaluation
  //===--------------------------------------------------------------------===

  void evaluateInstruction(const Instruction *I);
  void evaluatePhi(const PhiInst *Phi);
  void evaluateBranch(const CondBrInst *Branch);
  ValueRange evaluateExpression(const Instruction *I);
  ValueRange evaluateLoad(const LoadInst *L);

  /// Attempts loop-carried derivation per paper step 4.
  void tryDerivation(const PhiInst *Phi);

  const Function &F;
  const VRPOptions &Opts;
  const PropagationContext &Ctx;
  FunctionVRPResult Result;
  RangeOps Ops;
  /// Locally computed DFS when no cache is supplied; see the ctor.
  std::unique_ptr<DFSInfo> OwnedDFS;
  const DFSInfo &DFS;
  /// Per-load forwarding / weighted-candidate summary; empty when
  /// EnableAliasRanges is off (analysis/AliasAnalysis.h).
  AliasInfo Alias;

  std::deque<std::pair<const BasicBlock *, const BasicBlock *>> FlowWorkList;
  std::deque<const Instruction *> SSAWorkList;

  std::vector<std::array<double, 2>> OutProbs;
  std::vector<bool> Visited;
  std::vector<unsigned> FlowVisits;
  std::set<const PhiInst *> Derived;
  std::set<const PhiInst *> DerivationImpossible;
  /// NotYet outcomes per loop-carried φ; see tryDerivation.
  std::unordered_map<const PhiInst *, unsigned> DerivationRetries;
  bool Stalled = false;
  Status StallCause;
  std::unordered_map<const Instruction *, unsigned> EvalCounts;
  std::unordered_map<const CondBrInst *, unsigned> BranchUpdates;
  std::unordered_map<const CondBrInst *, double> BranchFraction;
  std::set<const CondBrInst *> BranchFromRanges;

  /// Tracing state: a ring exists only when the sink wants this function.
  std::unique_ptr<trace::TraceRing> Ring;
  /// What caused the evaluation now in flight ("flow bbA -> bbB" or
  /// "ssa %v"); stamped onto recorded transitions.
  std::string CurrentTrigger = "seed";
  /// Worklist step counter (always maintained; the budget check and the
  /// trace both read it).
  uint64_t CurrentStep = 0;

  /// Folds the per-run RangeStats into the global telemetry counters in
  /// one bulk add per run (no per-event cost on top of RangeStats, which
  /// the figures need anyway).
  void reportStats() {
    if (!telemetry::enabled())
      return;
    using telemetry::Counter;
    const RangeStats &S = Result.Stats;
    telemetry::count(Counter::ExprEvaluations, S.ExprEvaluations);
    telemetry::count(Counter::SubRangeOps, S.SubOps);
    telemetry::count(Counter::PhiEvaluations, S.PhiEvaluations);
    telemetry::count(Counter::BranchEvaluations, S.BranchEvaluations);
    telemetry::count(Counter::DerivationsTried, S.DerivationsTried);
    telemetry::count(Counter::DerivationsMatched, S.DerivationsMatched);
    telemetry::count(Counter::Widenings, S.Widenings);
  }

  /// Publishes the trace ring to the sink, if tracing is live.
  void finishTrace() {
    if (!Ring || !Opts.Trace)
      return;
    telemetry::count(telemetry::Counter::TraceEventsRecorded,
                     Ring->recorded());
    Opts.Trace->install(Ring->finish(F.name()));
  }
};

} // namespace

void Engine::refreshOutEdges(const BasicBlock *B) {
  const Instruction *T = B->terminator();
  double P = Result.BlockProb[B->id()];

  // An update is material when it moves more than the tolerance OR when
  // it crosses zero: reachability must propagate no matter how small the
  // probability gets (sequential loops can decay reach probabilities far
  // below the tolerance; the blocks still execute).
  auto updateEdge = [&](unsigned Index, double New, BasicBlock *Target) {
    double Old = outProb(B, Index);
    bool CrossesZero = (Old == 0.0) != (New == 0.0);
    if (!CrossesZero && std::abs(Old - New) <= Opts.ProbTolerance)
      return;
    outProb(B, Index) = New;
    FlowWorkList.push_back({B, Target});
  };

  if (const auto *Br = dyn_cast_or_null<BrInst>(T)) {
    updateEdge(0, P, Br->target());
    return;
  }
  const auto *CBr = dyn_cast_or_null<CondBrInst>(T);
  if (!CBr)
    return;
  auto It = BranchFraction.find(CBr);
  if (It == BranchFraction.end())
    return; // Branch not yet evaluated; edges stay at 0.
  updateEdge(0, P * It->second, CBr->trueBlock());
  updateEdge(1, P * (1.0 - It->second), CBr->falseBlock());
}

void Engine::tryDerivation(const PhiInst *Phi) {
  // Re-derivation is deliberate: the termination bound's own range may
  // still be refining (its updates reach this φ through the SSA chain of
  // the back-edge operand), so a previously derived result is recomputed
  // rather than frozen. Only template mismatches are cached.
  if (DerivationImpossible.count(Phi))
    return;
  if (!Opts.EnableDerivation) {
    DerivationImpossible.insert(Phi);
    return;
  }
  auto RangeFn = [this](const Value *V) { return rangeOf(V); };
  DerivationResult DR =
      deriveLoopCarriedRange(Phi, DFS, Opts, Result.Stats, RangeFn);
  switch (DR.Outcome) {
  case DerivationOutcome::Derived:
    Derived.insert(Phi);
    updateRange(Phi, DR.Range);
    return;
  case DerivationOutcome::Impossible:
    DerivationImpossible.insert(Phi);
    Derived.erase(Phi);
    return;
  case DerivationOutcome::NotYet:
    // Retry on a later visit — but count the retries. A φ whose entry
    // value never leaves ⊤ (unreachable entry path, frozen upstream
    // value) re-derives forever without stabilizing; after the limit,
    // declare the function stalled so it degrades observably instead of
    // spinning until the global step cap.
    if (Opts.DerivationRetryLimit != 0 &&
        ++DerivationRetries[Phi] > Opts.DerivationRetryLimit && !Stalled) {
      Stalled = true;
      StallCause = Status::failure(
          ErrorCategory::BudgetExceeded, "derivation",
          "loop-carried phi " + Phi->displayName() + " in @" + F.name() +
              " never stabilized (" +
              std::to_string(Opts.DerivationRetryLimit) +
              " derivation retries); degrading to the heuristic fallback");
    }
    return;
  }
}

void Engine::evaluatePhi(const PhiInst *Phi) {
  ++Result.Stats.PhiEvaluations;
  ++Result.Stats.ExprEvaluations;

  // Footnote 4: merging assertion-derived variables of a common parent (or
  // with the parent itself) yields the parent's range.
  const Value *CommonRoot = nullptr;
  bool AllSameRoot = true;
  for (unsigned I = 0; I < Phi->numIncoming(); ++I) {
    const Value *V = Phi->incomingValue(I);
    if (const auto *A = dyn_cast<AssertInst>(V))
      V = A->parentValue();
    if (!CommonRoot)
      CommonRoot = V;
    else if (CommonRoot != V)
      AllSameRoot = false;
  }
  if (AllSameRoot && CommonRoot) {
    ValueRange VR = rangeOf(CommonRoot);
    if (!VR.isTop())
      updateRange(Phi, VR);
    return;
  }

  std::vector<std::pair<ValueRange, double>> Entries;
  for (unsigned I = 0; I < Phi->numIncoming(); ++I) {
    double W = edgeProbTo(Phi->incomingBlock(I), Phi->parent());
    Entries.push_back({rangeOf(Phi->incomingValue(I)), W});
  }
  ValueRange Met = Ops.meetWeighted(Entries);
  if (Met.isTop())
    return;
  updateRange(Phi, Met);
}

ValueRange Engine::evaluateExpression(const Instruction *I) {
  switch (I->opcode()) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::Min:
  case Opcode::Max: {
    ValueRange L = rangeOf(I->operand(0));
    ValueRange R = rangeOf(I->operand(1));
    switch (I->opcode()) {
    case Opcode::Add:
      return Ops.add(L, R);
    case Opcode::Sub:
      return Ops.sub(L, R);
    case Opcode::Mul:
      return Ops.mul(L, R);
    case Opcode::Div:
      return Ops.div(L, R);
    case Opcode::Rem:
      return Ops.rem(L, R);
    case Opcode::Min:
      return Ops.minOp(L, R);
    default:
      return Ops.maxOp(L, R);
    }
  }
  case Opcode::Cmp: {
    const auto *Cmp = cast<CmpInst>(I);
    ValueRange L = rangeOf(Cmp->lhs());
    ValueRange R = rangeOf(Cmp->rhs());
    if (L.isTop() || R.isTop())
      return ValueRange::top();
    std::optional<double> P =
        Ops.cmpProb(Cmp->pred(), L, R, Cmp->lhs(), Cmp->rhs());
    return P ? ValueRange::weightedBool(*P) : ValueRange::bottom();
  }
  case Opcode::Neg:
    return Ops.neg(rangeOf(I->operand(0)));
  case Opcode::Not:
    return Ops.notOp(rangeOf(I->operand(0)));
  case Opcode::Abs:
    return Ops.absOp(rangeOf(I->operand(0)));
  case Opcode::Copy:
    return rangeOf(I->operand(0));
  case Opcode::IntToFloat:
    return Ops.intToFloat(rangeOf(I->operand(0)));
  case Opcode::FloatToInt:
    return Ops.floatToInt(rangeOf(I->operand(0)));
  case Opcode::Assert: {
    const auto *A = cast<AssertInst>(I);
    ValueRange Src = rangeOf(A->source());
    ValueRange BoundVR = rangeOf(A->bound());
    if (Src.isTop() || BoundVR.isTop())
      return ValueRange::top();
    // Float asserts refine only through the FP lattice: with it off, or
    // with a ⊥ bound (nothing to clip against), the assertion adds no
    // information and passes its source through — always a superset of
    // the true intersection, so sound.
    if (A->type() == IRType::Float &&
        (!Opts.EnableFPRanges || BoundVR.isBottom()))
      return Src;
    return Ops.applyAssert(Src, A->pred(), BoundVR, A->bound());
  }
  case Opcode::Load:
    return evaluateLoad(cast<LoadInst>(I));
  case Opcode::Input:
    return ValueRange::bottom(); // External input is unbounded.
  case Opcode::Call:
    return Ctx.CallResultRange(cast<CallInst>(I));
  default:
    return ValueRange::bottom();
  }
}

ValueRange Engine::evaluateLoad(const LoadInst *L) {
  const LoadAliasInfo *AI =
      Opts.EnableAliasRanges ? Alias.infoFor(L) : nullptr;
  if (!AI) {
    telemetry::count(telemetry::Counter::AliasBottomLoads);
    return ValueRange::bottom(); // §3.5: loads are ⊥ without alias info.
  }
  if (AI->Forwarded) {
    // Tier (a): the load must observe exactly this stored SSA value.
    telemetry::count(telemetry::Counter::AliasForwardedLoads);
    return rangeOf(AI->Forwarded);
  }
  // Tier (b): meet the candidates' ranges under the index-overlap
  // weights. The initial-value candidate is a constant range, so the
  // meet is never all-⊤; a ⊥ candidate forces ⊥ (meetWeighted's
  // contract), which is the paper's behavior for that load.
  std::vector<std::pair<ValueRange, double>> Entries;
  Entries.reserve(AI->Candidates.size());
  for (const AliasCandidate &C : AI->Candidates)
    Entries.push_back(
        {C.Stored ? rangeOf(C.Stored)
         : L->object()->elemType() == IRType::Float
             ? ValueRange::floatConstant(C.InitValue)
             : ValueRange::intConstant(static_cast<int64_t>(C.InitValue)),
         C.Weight});
  ValueRange VR = Ops.meetWeighted(Entries);
  telemetry::count(VR.isBottom() ? telemetry::Counter::AliasBottomLoads
                                 : telemetry::Counter::AliasWeightedLoads);
  return VR;
}

void Engine::evaluateBranch(const CondBrInst *Branch) {
  ++Result.Stats.BranchEvaluations;
  unsigned &Updates = BranchUpdates[Branch];
  if (Updates > Opts.BranchUpdateLimit)
    return; // Frozen to guarantee termination.

  ValueRange CondVR = rangeOf(Branch->cond());
  if (CondVR.isTop())
    return; // Not enough information yet.

  std::optional<double> P = CondVR.probNonZero();
  double Fraction = P ? *P : 0.5;
  bool FromRanges = P.has_value();

  auto It = BranchFraction.find(Branch);
  if (It != BranchFraction.end() &&
      std::abs(It->second - Fraction) <= Opts.ProbTolerance &&
      BranchFromRanges.count(Branch) == (FromRanges ? 1u : 0u))
    return;
  ++Updates;
  BranchFraction[Branch] = Fraction;
  if (FromRanges)
    BranchFromRanges.insert(Branch);
  else
    BranchFromRanges.erase(Branch);
  refreshOutEdges(Branch->parent());
}

void Engine::evaluateInstruction(const Instruction *I) {
  if (const auto *Phi = dyn_cast<PhiInst>(I)) {
    if (isLoopCarried(Phi, DFS)) {
      tryDerivation(Phi);
      if (Derived.count(Phi))
        return; // Step 4: derived expressions are not re-evaluated.
    }
    evaluatePhi(Phi);
    return;
  }
  if (const auto *CBr = dyn_cast<CondBrInst>(I)) {
    evaluateBranch(CBr);
    return;
  }
  if (const auto *St = dyn_cast<StoreInst>(I)) {
    // A store defines no SSA value, but dependent loads read through it
    // (its stored value is their forwarding source or one of their
    // weighted candidates): re-push them exactly as updateRange pushes
    // SSA users. The store lands here both on its block's first visit
    // and whenever its stored value's range changes (the store is an
    // SSA user of that value).
    for (const LoadInst *L : Alias.dependentLoads(St))
      SSAWorkList.push_back(L);
    return;
  }
  if (I->isTerminator() || I->type() == IRType::Void)
    return;

  ++Result.Stats.ExprEvaluations;
  ValueRange VR = evaluateExpression(I);
  if (VR.isTop())
    return;
  // Widening guard: count *support growth* only. A non-derivable
  // loop-carried expression grows its range once per simulated iteration
  // and must be cut off; probability refinements with a stable support
  // converge on their own and are not counted.
  ValueRange Old = rangeOf(I);
  if (!Old.isTop() && !Old.sameSupport(VR)) {
    unsigned &Count = EvalCounts[I];
    if (++Count > Opts.WidenThreshold && !VR.isBottom()) {
      ++Result.Stats.Widenings;
      VR = ValueRange::bottom();
    }
  }
  updateRange(I, VR);
}

FunctionVRPResult Engine::run() {
  telemetry::count(telemetry::Counter::PropagationRuns);
  Result.F = &F;
  unsigned N = F.numBlocks();
  OutProbs.assign(N, {0.0, 0.0});
  Visited.assign(N, false);
  FlowVisits.assign(N, 0);
  Result.BlockProb.assign(N, 0.0);

  // Step 1: seed with the start node's out-edges at probability 1.
  Result.BlockProb[F.entry()->id()] = 1.0;
  FlowWorkList.push_back({nullptr, F.entry()});

  // Budget guard: each worklist item processed costs one step. When the
  // cap is hit the function degrades to the heuristic fallback instead of
  // failing — the infrastructure mirror of the paper's ⊥-range fallback.
  const uint64_t StepBudget = Opts.Budget.PropagationStepLimit;
  bool Degraded = fault::shouldFail("vrp-budget");
  Status Cause =
      Degraded ? Status::failure(ErrorCategory::BudgetExceeded, "propagation",
                                 "injected budget exhaustion in @" + F.name())
               : Status::success();

  // Step 2: run until both lists are empty, preferring flow items.
  while (!Degraded && !Stalled &&
         (!FlowWorkList.empty() || !SSAWorkList.empty())) {
    ++CurrentStep;
    if (StepBudget != 0 && CurrentStep > StepBudget) {
      Degraded = true;
      Cause = Status::failure(
          ErrorCategory::BudgetExceeded, "propagation",
          "step budget (" + std::to_string(StepBudget) + ") exhausted in @" +
              F.name());
      break;
    }
    if (!FlowWorkList.empty()) {
      auto [From, To] = FlowWorkList.front();
      FlowWorkList.pop_front();
      if (Ring)
        CurrentTrigger = "flow " +
                         (From ? From->name() : std::string("entry")) +
                         " -> " + To->name();

      // Step 3: visit the target node.
      double OldProb = Result.BlockProb[To->id()];
      double NewProb = computeBlockProb(To);
      bool ProbChanged =
          std::abs(NewProb - OldProb) > Opts.ProbTolerance;
      // Zero-crossings bypass the refinement budget: reachability (and
      // unreachability) must always propagate.
      bool CrossedZero = (OldProb == 0.0) != (NewProb == 0.0);
      Result.BlockProb[To->id()] = NewProb;

      if (!Visited[To->id()]) {
        Visited[To->id()] = true;
        ++FlowVisits[To->id()];
        for (const auto &I : To->instructions())
          evaluateInstruction(I.get());
      } else if (FlowVisits[To->id()] < Opts.FlowVisitLimit ||
                 CrossedZero) {
        ++FlowVisits[To->id()];
        for (const PhiInst *Phi : To->phis())
          evaluateInstruction(Phi);
        if (ProbChanged || CrossedZero)
          if (const auto *CBr = dyn_cast_or_null<CondBrInst>(
                  To->terminator()))
            evaluateBranch(CBr);
      } else {
        continue; // Edge-probability refinement budget exhausted.
      }
      // The block's reach probability feeds its out-edges.
      refreshOutEdges(To);
      continue;
    }

    // Steps 4-7 via the SSA worklist.
    const Instruction *I = SSAWorkList.front();
    SSAWorkList.pop_front();
    // Step 5/6 guard: only evaluate when the node can execute.
    if (!Visited[I->parent()->id()])
      continue;
    if (Ring)
      CurrentTrigger = "ssa " + I->displayName();
    evaluateInstruction(I);
  }
  telemetry::count(telemetry::Counter::PropagationSteps, CurrentStep);

  if (Stalled) {
    Degraded = true;
    Cause = StallCause;
    telemetry::count(telemetry::Counter::DerivationStalls);
  }

  if (Degraded) {
    // Partial lattice state is unsound to expose (a range caught
    // mid-descent can be too narrow), so degrade the whole function to
    // ⊥: no ranges, every block presumed reachable, every branch handed
    // to the Ball–Larus fallback at a neutral probability.
    Result.Degraded = true;
    Result.DegradeCause = Cause;
    Result.Ranges.clear();
    Result.BlockProb.assign(N, 1.0);
    Result.Branches.clear();
    for (const auto &B : F.blocks())
      if (const auto *CBr = dyn_cast_or_null<CondBrInst>(B->terminator()))
        Result.Branches[CBr] = BranchPrediction{0.5, false, true};
    telemetry::count(telemetry::Counter::BudgetDegradations);
    reportStats();
    finishTrace();
    return Result;
  }

  // Collect the final branch predictions.
  for (const auto &B : F.blocks()) {
    const auto *CBr = dyn_cast_or_null<CondBrInst>(B->terminator());
    if (!CBr)
      continue;
    BranchPrediction Pred;
    if (!Visited[B->id()] || Result.BlockProb[B->id()] <= 0.0) {
      Pred.Reachable = false;
      Pred.FromRanges = false;
      Pred.ProbTrue = 0.5;
    } else {
      auto It = BranchFraction.find(CBr);
      if (It != BranchFraction.end()) {
        Pred.ProbTrue = It->second;
        Pred.FromRanges = BranchFromRanges.count(CBr) != 0;
      } else {
        Pred.ProbTrue = 0.5;
        Pred.FromRanges = false;
      }
    }
    Result.Branches[CBr] = Pred;
  }
  reportStats();
  finishTrace();
  return Result;
}

FunctionVRPResult vrp::propagateRanges(const Function &F,
                                       const VRPOptions &Opts,
                                       const PropagationContext &Context) {
  // The engine reads the CFG only; SSA form is required.
  Engine E(F, Opts, Context);
  return E.run();
}

FunctionVRPResult vrp::propagateRanges(const Function &F,
                                       const VRPOptions &Opts) {
  PropagationContext Ctx = PropagationContext::intraprocedural();
  return propagateRanges(F, Opts, Ctx);
}
