//===- vrp/Options.h - VRP configuration knobs ------------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tunables for the propagation engine. Defaults follow the paper: four
/// subranges per variable ("a set of four ranges per variable is adequate
/// for most programs with typical control flow"), symbolic ranges and loop
/// derivation enabled. The ablation bench sweeps these.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_VRP_OPTIONS_H
#define VRP_VRP_OPTIONS_H

#include <cstdint>

namespace vrp {

namespace trace {
class TraceSink;
} // namespace trace

/// Resource budgets with graceful degradation. The paper's algorithm
/// already degrades per-value (⊥ ranges fall back to heuristics, §3.5);
/// these caps extend the same contract to whole stages: when a budget
/// runs out, the pipeline produces a degraded-but-valid result instead
/// of running away or failing the benchmark.
struct ResourceBudget {
  /// Worklist items the propagation engine may process per function;
  /// 0 = unlimited. On exhaustion the function's analysis is abandoned,
  /// its ranges become ⊥ and every branch takes the Ball–Larus fallback
  /// (the result is marked Degraded and counted in suite reports).
  uint64_t PropagationStepLimit = 0;

  /// Interpreter steps per run; 0 = the interpreter's default runaway
  /// guard only. When set and exhausted, evaluateProgram keeps the
  /// counts collected so far as a *partial profile* (flagged on the
  /// evaluation) instead of failing the benchmark.
  uint64_t InterpreterStepLimit = 0;

  /// Wall-clock deadline in milliseconds; 0 = none. evaluateProgram
  /// checks it between stages and records a BudgetExceeded failure when
  /// blown; runModuleVRP degrades not-yet-analyzed functions to the
  /// heuristic fallback. Inherently nondeterministic — leave unset for
  /// runs that must be reproducible.
  uint64_t DeadlineMs = 0;

  bool anySet() const {
    return PropagationStepLimit != 0 || InterpreterStepLimit != 0 ||
           DeadlineMs != 0;
  }
};

struct VRPOptions {
  /// Upper limit on subranges per variable (the "give-up point", §3.4).
  unsigned MaxSubRanges = 4;

  /// Track symbolic (variable-relative) bounds (§3.4). The paper reports
  /// results both with and without these.
  bool EnableSymbolicRanges = true;

  /// Match loop-carried φs against induction templates (§3.6). When off,
  /// loops are brute-force propagated under the widening guard.
  bool EnableDerivation = true;

  /// Insert post-branch assertions before propagation (π-nodes).
  bool EnableAssertions = true;

  /// Re-evaluations of one expression before its result is widened to ⊥
  /// (termination guard for non-derivable loop-carried expressions).
  unsigned WidenThreshold = 24;

  /// Updates of one branch's probability before it is frozen (termination
  /// guard for probability oscillation through loops).
  unsigned BranchUpdateLimit = 48;

  /// Flow-worklist revisits of one block before its φs stop being
  /// re-merged for edge-probability refinements. Loop feedback converges
  /// geometrically, so a handful of rounds captures the weights to well
  /// under a percentage point; this keeps evaluation counts linear in
  /// program size (Figures 5/6).
  unsigned FlowVisitLimit = 16;

  /// "Not yet" derivation attempts allowed per loop-carried φ before the
  /// function is declared stalled and degrades to the heuristic fallback
  /// with a structured Status naming the variable (0 = unlimited). A φ
  /// whose entry value never leaves ⊤ (e.g. it flows in from a block
  /// propagation proved unreachable) re-derives on every visit without
  /// ever stabilizing; this guard turns that silent spin into the same
  /// observable degradation a blown step budget produces. Converging
  /// functions retry a handful of times, so the default is far above
  /// anything a real benchmark reaches.
  unsigned DerivationRetryLimit = 512;

  /// Assumed number of lattice points in a subrange whose extent is only
  /// known symbolically (e.g. a derived loop range [0:n:1] with n unknown).
  /// Models the typical loop trip count; the loop-exit test of such a
  /// range predicts at (C-1)/C taken. Ablatable.
  double AssumedSymbolicCount = 100.0;

  /// Floating-point interval lattice (docs/DOMAINS.md). When off, every
  /// non-constant FP value is ⊥ and FP-tested branches fall back to the
  /// Ball–Larus heuristics — the pre-FP behavior, kept for ablation.
  bool EnableFPRanges = true;

  /// Probabilistic load aliasing (analysis/AliasAnalysis.h): loads meet
  /// the ranges of their weighted may-alias store set instead of
  /// dropping to ⊥. When off, loads are ⊥ (pre-alias behavior).
  bool EnableAliasRanges = true;

  /// Analyze across calls via jump functions (§3.7).
  bool Interprocedural = false;

  /// Clone procedures whose call-site contexts diverge (§3.7).
  bool EnableCloning = false;

  /// Worker threads for the evaluation fan-outs (evaluateSuite across
  /// benchmarks, runModuleVRP across functions). 1 = serial; 0 = auto
  /// (hardware_concurrency, degrading to serial when unknown). Results
  /// are byte-identical at every setting — threading only changes
  /// wall-clock time (see support/ThreadPool.h).
  unsigned Threads = 1;

  /// Resource budgets (step caps, deadline) with heuristic degradation.
  /// Defaults leave every budget unlimited.
  ResourceBudget Budget;

  /// Soundness sentinel: when set, evaluation harnesses replay the
  /// reference run with a range auditor attached (vrp/Audit.h) that
  /// checks every value observed at a conditional branch against its
  /// VRP-computed range. Functions with violations are quarantined —
  /// their range predictions are discarded in favor of the Ball–Larus
  /// fallback — and reported rather than trusted.
  bool Audit = false;

  /// Probability tolerance for fixpoint detection. Probabilities feed
  /// back through loop edges with geometric convergence; demanding more
  /// precision than this multiplies evaluation counts without measurably
  /// changing predictions (the paper's linearity claim depends on the
  /// propagation winding down quickly).
  double ProbTolerance = 1e-6;

  /// When set, the engine records lattice transitions (old range → new
  /// range, triggering edge) for every function the sink's filter
  /// accepts, ring-buffered per function (see vrp/Trace.h). Not owned;
  /// must outlive the analysis. Null = no tracing.
  trace::TraceSink *Trace = nullptr;
};

/// Counters behind the paper's Figures 5 and 6 (algorithm efficiency).
struct RangeStats {
  uint64_t ExprEvaluations = 0; ///< Figure 5's y-axis.
  uint64_t SubOps = 0;          ///< Figure 6's y-axis (subrange pair ops).
  uint64_t PhiEvaluations = 0;
  uint64_t BranchEvaluations = 0;
  uint64_t DerivationsTried = 0;
  uint64_t DerivationsMatched = 0;
  uint64_t Widenings = 0;

  RangeStats &operator+=(const RangeStats &R) {
    ExprEvaluations += R.ExprEvaluations;
    SubOps += R.SubOps;
    PhiEvaluations += R.PhiEvaluations;
    BranchEvaluations += R.BranchEvaluations;
    DerivationsTried += R.DerivationsTried;
    DerivationsMatched += R.DerivationsMatched;
    Widenings += R.Widenings;
    return *this;
  }
};

} // namespace vrp

#endif // VRP_VRP_OPTIONS_H
