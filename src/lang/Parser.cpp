//===- lang/Parser.cpp - VL recursive-descent parser -----------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

using namespace vrp;

const char *vrp::scalarTypeName(ScalarType Type) {
  switch (Type) {
  case ScalarType::Int:
    return "int";
  case ScalarType::Float:
    return "float";
  case ScalarType::Void:
    return "void";
  }
  return "?";
}

const char *vrp::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::LogicalAnd:
    return "&&";
  case BinaryOp::LogicalOr:
    return "||";
  }
  return "?";
}

bool Parser::accept(TokenKind K) {
  if (!at(K))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (accept(K))
    return true;
  Diags.error(Tok.Loc, std::string("expected ") + tokenKindName(K) + " " +
                           Context + ", found " + tokenKindName(Tok.Kind));
  return false;
}

bool Parser::atDepthLimit() {
  if (Depth <= MaxRecursionDepth)
    return false;
  if (!DepthReported) {
    DepthReported = true;
    Diags.error(Tok.Loc, "nesting too deep (more than " +
                             std::to_string(MaxRecursionDepth) +
                             " levels); simplify the expression or "
                             "statement structure");
  }
  return true;
}

void Parser::skipToStatementBoundary() {
  while (!at(TokenKind::Eof) && !at(TokenKind::Semicolon) &&
         !at(TokenKind::RBrace))
    consume();
  accept(TokenKind::Semicolon);
}

std::unique_ptr<Program> Parser::parseProgram() {
  auto P = std::make_unique<Program>();
  while (!at(TokenKind::Eof)) {
    if (at(TokenKind::KwFn)) {
      if (auto F = parseFunction())
        P->Functions.push_back(std::move(F));
      continue;
    }
    if (at(TokenKind::KwVar)) {
      if (auto G = parseVarDecl())
        P->Globals.push_back(std::move(G));
      continue;
    }
    Diags.error(Tok.Loc, std::string("expected 'fn' or 'var' at top level, "
                                     "found ") +
                             tokenKindName(Tok.Kind));
    consume();
  }
  return P;
}

ScalarType Parser::parseTypeAnnotation(ScalarType Default) {
  if (!accept(TokenKind::Colon))
    return Default;
  if (accept(TokenKind::KwInt))
    return ScalarType::Int;
  if (accept(TokenKind::KwFloat))
    return ScalarType::Float;
  Diags.error(Tok.Loc, "expected 'int' or 'float' after ':'");
  return Default;
}

std::unique_ptr<FunctionDecl> Parser::parseFunction() {
  SourceLoc Loc = Tok.Loc;
  consume(); // fn
  std::string Name = Tok.Text;
  if (!expect(TokenKind::Identifier, "after 'fn'"))
    return nullptr;
  if (!expect(TokenKind::LParen, "after function name"))
    return nullptr;

  std::vector<ParamDecl> Params;
  if (!at(TokenKind::RParen)) {
    do {
      ParamDecl PD;
      PD.Loc = Tok.Loc;
      PD.Name = Tok.Text;
      if (!expect(TokenKind::Identifier, "in parameter list"))
        return nullptr;
      PD.Type = parseTypeAnnotation(ScalarType::Int);
      Params.push_back(std::move(PD));
    } while (accept(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen, "after parameters"))
    return nullptr;

  ScalarType RetType = parseTypeAnnotation(ScalarType::Int);
  if (!at(TokenKind::LBrace)) {
    Diags.error(Tok.Loc, "expected function body");
    return nullptr;
  }
  StmtPtr Body = parseBlock();
  return std::make_unique<FunctionDecl>(std::move(Name), std::move(Params),
                                        RetType, std::move(Body), Loc);
}

std::unique_ptr<DeclStmt> Parser::parseVarDecl() {
  SourceLoc Loc = Tok.Loc;
  consume(); // var
  std::string Name = Tok.Text;
  if (!expect(TokenKind::Identifier, "after 'var'")) {
    skipToStatementBoundary();
    return nullptr;
  }
  bool IsArray = false;
  int64_t ArraySize = 0;
  if (accept(TokenKind::LBracket)) {
    IsArray = true;
    if (at(TokenKind::IntLiteral)) {
      ArraySize = Tok.IntValue;
      consume();
    } else {
      Diags.error(Tok.Loc, "array size must be an integer literal");
    }
    expect(TokenKind::RBracket, "after array size");
    if (ArraySize <= 0) {
      Diags.error(Loc, "array size must be positive");
      ArraySize = 1;
    }
  }
  bool HasExplicitType = at(TokenKind::Colon);
  ScalarType Type = parseTypeAnnotation(ScalarType::Int);
  ExprPtr Init;
  if (accept(TokenKind::Assign)) {
    if (IsArray)
      Diags.error(Tok.Loc, "arrays cannot have initializers");
    Init = parseExpr();
  }
  expect(TokenKind::Semicolon, "after variable declaration");
  return std::make_unique<DeclStmt>(std::move(Name), Type, HasExplicitType,
                                    IsArray, ArraySize, std::move(Init),
                                    Loc);
}

StmtPtr Parser::parseBlock() {
  SourceLoc Loc = Tok.Loc;
  expect(TokenKind::LBrace, "to open block");
  std::vector<StmtPtr> Stmts;
  while (!at(TokenKind::RBrace) && !at(TokenKind::Eof)) {
    if (StmtPtr S = parseStmt())
      Stmts.push_back(std::move(S));
  }
  expect(TokenKind::RBrace, "to close block");
  return std::make_unique<BlockStmt>(std::move(Stmts), Loc);
}

StmtPtr Parser::parseStmt() {
  DepthScope Scope(*this);
  if (atDepthLimit()) {
    skipToStatementBoundary();
    return nullptr;
  }
  switch (Tok.Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwVar:
    return parseVarDecl();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwReturn:
    return parseReturn();
  case TokenKind::KwBreak: {
    SourceLoc Loc = Tok.Loc;
    consume();
    expect(TokenKind::Semicolon, "after 'break'");
    return std::make_unique<BreakStmt>(Loc);
  }
  case TokenKind::KwContinue: {
    SourceLoc Loc = Tok.Loc;
    consume();
    expect(TokenKind::Semicolon, "after 'continue'");
    return std::make_unique<ContinueStmt>(Loc);
  }
  default:
    return parseSimpleStmt(/*RequireSemi=*/true);
  }
}

StmtPtr Parser::parseIf() {
  // Guarded directly as well: `else if` chains recurse here without
  // passing through parseStmt.
  DepthScope Scope(*this);
  if (atDepthLimit()) {
    skipToStatementBoundary();
    return nullptr;
  }
  SourceLoc Loc = Tok.Loc;
  consume(); // if
  expect(TokenKind::LParen, "after 'if'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  StmtPtr Then = parseBlock();
  StmtPtr Else;
  if (accept(TokenKind::KwElse)) {
    if (at(TokenKind::KwIf))
      Else = parseIf();
    else
      Else = parseBlock();
  }
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else), Loc);
}

StmtPtr Parser::parseWhile() {
  SourceLoc Loc = Tok.Loc;
  consume(); // while
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after while condition");
  StmtPtr Body = parseBlock();
  return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body), Loc);
}

StmtPtr Parser::parseFor() {
  SourceLoc Loc = Tok.Loc;
  consume(); // for
  expect(TokenKind::LParen, "after 'for'");

  StmtPtr Init;
  if (!at(TokenKind::Semicolon)) {
    if (at(TokenKind::KwVar))
      Init = parseVarDecl(); // consumes the ';'
    else
      Init = parseSimpleStmt(/*RequireSemi=*/true);
  } else {
    consume();
  }

  ExprPtr Cond;
  if (!at(TokenKind::Semicolon))
    Cond = parseExpr();
  expect(TokenKind::Semicolon, "after for condition");

  StmtPtr Step;
  if (!at(TokenKind::RParen))
    Step = parseSimpleStmt(/*RequireSemi=*/false);
  expect(TokenKind::RParen, "after for clauses");

  StmtPtr Body = parseBlock();
  return std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                   std::move(Step), std::move(Body), Loc);
}

StmtPtr Parser::parseReturn() {
  SourceLoc Loc = Tok.Loc;
  consume(); // return
  ExprPtr Value;
  if (!at(TokenKind::Semicolon))
    Value = parseExpr();
  expect(TokenKind::Semicolon, "after 'return'");
  return std::make_unique<ReturnStmt>(std::move(Value), Loc);
}

StmtPtr Parser::parseSimpleStmt(bool RequireSemi) {
  SourceLoc Loc = Tok.Loc;
  ExprPtr E = parseExpr();
  if (!E) {
    skipToStatementBoundary();
    return nullptr;
  }
  StmtPtr Result;
  if (at(TokenKind::Assign)) {
    if (!isa<VarRefExpr>(E.get()) && !isa<ArrayIndexExpr>(E.get()))
      Diags.error(Tok.Loc, "assignment target must be a variable or array "
                           "element");
    consume();
    ExprPtr Value = parseExpr();
    Result = std::make_unique<AssignStmt>(std::move(E), std::move(Value), Loc);
  } else {
    Result = std::make_unique<ExprStmt>(std::move(E), Loc);
  }
  if (RequireSemi)
    expect(TokenKind::Semicolon, "after statement");
  return Result;
}

ExprPtr Parser::parseExpr() {
  DepthScope Scope(*this);
  if (atDepthLimit()) {
    SourceLoc Loc = Tok.Loc;
    skipToStatementBoundary();
    return std::make_unique<IntLitExpr>(0, Loc);
  }
  return parseOr();
}

ExprPtr Parser::parseOr() {
  ExprPtr LHS = parseAnd();
  while (at(TokenKind::PipePipe)) {
    SourceLoc Loc = Tok.Loc;
    consume();
    ExprPtr RHS = parseAnd();
    LHS = std::make_unique<BinaryExpr>(BinaryOp::LogicalOr, std::move(LHS),
                                       std::move(RHS), Loc);
  }
  return LHS;
}

ExprPtr Parser::parseAnd() {
  ExprPtr LHS = parseComparison();
  while (at(TokenKind::AmpAmp)) {
    SourceLoc Loc = Tok.Loc;
    consume();
    ExprPtr RHS = parseComparison();
    LHS = std::make_unique<BinaryExpr>(BinaryOp::LogicalAnd, std::move(LHS),
                                       std::move(RHS), Loc);
  }
  return LHS;
}

ExprPtr Parser::parseComparison() {
  ExprPtr LHS = parseAdditive();
  BinaryOp Op;
  switch (Tok.Kind) {
  case TokenKind::EqualEqual:
    Op = BinaryOp::Eq;
    break;
  case TokenKind::BangEqual:
    Op = BinaryOp::Ne;
    break;
  case TokenKind::Less:
    Op = BinaryOp::Lt;
    break;
  case TokenKind::LessEqual:
    Op = BinaryOp::Le;
    break;
  case TokenKind::Greater:
    Op = BinaryOp::Gt;
    break;
  case TokenKind::GreaterEqual:
    Op = BinaryOp::Ge;
    break;
  default:
    return LHS;
  }
  SourceLoc Loc = Tok.Loc;
  consume();
  ExprPtr RHS = parseAdditive();
  return std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                      Loc);
}

ExprPtr Parser::parseAdditive() {
  ExprPtr LHS = parseMultiplicative();
  while (at(TokenKind::Plus) || at(TokenKind::Minus)) {
    BinaryOp Op = at(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    SourceLoc Loc = Tok.Loc;
    consume();
    ExprPtr RHS = parseMultiplicative();
    LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                       Loc);
  }
  return LHS;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr LHS = parseUnary();
  while (at(TokenKind::Star) || at(TokenKind::Slash) ||
         at(TokenKind::Percent)) {
    BinaryOp Op = at(TokenKind::Star)    ? BinaryOp::Mul
                  : at(TokenKind::Slash) ? BinaryOp::Div
                                         : BinaryOp::Rem;
    SourceLoc Loc = Tok.Loc;
    consume();
    ExprPtr RHS = parseUnary();
    LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                       Loc);
  }
  return LHS;
}

ExprPtr Parser::parseUnary() {
  // Guarded directly as well: unary chains (`----x`) recurse here
  // without passing through parseExpr.
  DepthScope Scope(*this);
  if (atDepthLimit()) {
    SourceLoc Loc = Tok.Loc;
    skipToStatementBoundary();
    return std::make_unique<IntLitExpr>(0, Loc);
  }
  if (at(TokenKind::Minus)) {
    SourceLoc Loc = Tok.Loc;
    consume();
    ExprPtr Sub = parseUnary();
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, std::move(Sub), Loc);
  }
  if (at(TokenKind::Bang)) {
    SourceLoc Loc = Tok.Loc;
    consume();
    ExprPtr Sub = parseUnary();
    return std::make_unique<UnaryExpr>(UnaryOp::Not, std::move(Sub), Loc);
  }
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokenKind::IntLiteral: {
    int64_t V = Tok.IntValue;
    consume();
    return std::make_unique<IntLitExpr>(V, Loc);
  }
  case TokenKind::FloatLiteral: {
    double V = Tok.FloatValue;
    consume();
    return std::make_unique<FloatLitExpr>(V, Loc);
  }
  case TokenKind::KwTrue:
    consume();
    return std::make_unique<IntLitExpr>(1, Loc);
  case TokenKind::KwFalse:
    consume();
    return std::make_unique<IntLitExpr>(0, Loc);
  case TokenKind::KwInt:
  case TokenKind::KwFloat:
  case TokenKind::Identifier: {
    // `int(` / `float(` parse as conversion intrinsic calls.
    std::string Name = at(TokenKind::KwInt)     ? "int"
                       : at(TokenKind::KwFloat) ? "float"
                                                : Tok.Text;
    consume();
    if (accept(TokenKind::LParen)) {
      std::vector<ExprPtr> Args;
      if (!at(TokenKind::RParen)) {
        do {
          Args.push_back(parseExpr());
        } while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "after call arguments");
      return std::make_unique<CallExpr>(std::move(Name), std::move(Args),
                                        Loc);
    }
    if (accept(TokenKind::LBracket)) {
      ExprPtr Index = parseExpr();
      expect(TokenKind::RBracket, "after array index");
      return std::make_unique<ArrayIndexExpr>(std::move(Name),
                                              std::move(Index), Loc);
    }
    return std::make_unique<VarRefExpr>(std::move(Name), Loc);
  }
  case TokenKind::LParen: {
    consume();
    ExprPtr E = parseExpr();
    expect(TokenKind::RParen, "after parenthesized expression");
    return E;
  }
  default:
    Diags.error(Loc, std::string("expected expression, found ") +
                         tokenKindName(Tok.Kind));
    consume();
    return nullptr;
  }
}

std::unique_ptr<Program> vrp::parseVL(std::string_view Source,
                                      DiagnosticEngine &Diags) {
  Parser P(Source, Diags);
  return P.parseProgram();
}
