//===- lang/AST.h - VL abstract syntax tree ---------------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VL abstract syntax tree. Nodes use LLVM-style kind tags with
/// `classof` so `isa<>/cast<>/dyn_cast<>` from support/Casting.h apply.
/// Semantic analysis (lang/Sema.h) decorates expressions with types and
/// resolves variable references to `VarSymbol`s.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_LANG_AST_H
#define VRP_LANG_AST_H

#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vrp {

/// Scalar value types in VL. Arrays are a property of declarations, not a
/// first-class type (VL arrays cannot be passed or returned).
enum class ScalarType { Int, Float, Void };

const char *scalarTypeName(ScalarType Type);

/// A resolved variable: one per declaration (global, local or parameter).
/// Owned by the Sema symbol arena; AST nodes point at these after Sema.
struct VarSymbol {
  std::string Name;
  ScalarType Type = ScalarType::Int;
  bool IsGlobal = false;
  bool IsParam = false;
  bool IsArray = false;
  int64_t ArraySize = 0;
  unsigned Id = 0; ///< Dense per-program id assigned by Sema.
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class Expr {
public:
  enum class Kind {
    IntLit,
    FloatLit,
    VarRef,
    ArrayIndex,
    Unary,
    Binary,
    Call,
  };

  Expr(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}
  virtual ~Expr() = default;

  Kind kind() const { return TheKind; }
  SourceLoc loc() const { return Loc; }

  /// The type Sema computed for this expression (Int until Sema runs).
  ScalarType type() const { return Type; }
  void setType(ScalarType T) { Type = T; }

private:
  const Kind TheKind;
  SourceLoc Loc;
  ScalarType Type = ScalarType::Int;
};

using ExprPtr = std::unique_ptr<Expr>;

/// An integer literal, e.g. `42`.
class IntLitExpr : public Expr {
public:
  IntLitExpr(int64_t Value, SourceLoc Loc)
      : Expr(Kind::IntLit, Loc), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::IntLit; }

private:
  int64_t Value;
};

/// A floating-point literal, e.g. `3.5`.
class FloatLitExpr : public Expr {
public:
  FloatLitExpr(double Value, SourceLoc Loc)
      : Expr(Kind::FloatLit, Loc), Value(Value) {}

  double value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::FloatLit; }

private:
  double Value;
};

/// A reference to a scalar variable (or to an array in a `len(a)` call).
class VarRefExpr : public Expr {
public:
  VarRefExpr(std::string Name, SourceLoc Loc)
      : Expr(Kind::VarRef, Loc), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  VarSymbol *symbol() const { return Symbol; }
  void setSymbol(VarSymbol *S) { Symbol = S; }

  static bool classof(const Expr *E) { return E->kind() == Kind::VarRef; }

private:
  std::string Name;
  VarSymbol *Symbol = nullptr;
};

/// An array element read, `a[i]`.
class ArrayIndexExpr : public Expr {
public:
  ArrayIndexExpr(std::string Name, ExprPtr Index, SourceLoc Loc)
      : Expr(Kind::ArrayIndex, Loc), Name(std::move(Name)),
        Index(std::move(Index)) {}

  const std::string &name() const { return Name; }
  Expr *index() const { return Index.get(); }
  VarSymbol *symbol() const { return Symbol; }
  void setSymbol(VarSymbol *S) { Symbol = S; }

  static bool classof(const Expr *E) { return E->kind() == Kind::ArrayIndex; }

private:
  std::string Name;
  ExprPtr Index;
  VarSymbol *Symbol = nullptr;
};

enum class UnaryOp { Neg, Not };

/// A unary operation, `-e` or `!e`.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Sub, SourceLoc Loc)
      : Expr(Kind::Unary, Loc), Op(Op), Sub(std::move(Sub)) {}

  UnaryOp op() const { return Op; }
  Expr *sub() const { return Sub.get(); }

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  UnaryOp Op;
  ExprPtr Sub;
};

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  LogicalAnd, ///< Short-circuit; lowered to control flow by irgen.
  LogicalOr,  ///< Short-circuit; lowered to control flow by irgen.
};

const char *binaryOpSpelling(BinaryOp Op);

/// A binary operation.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr LHS, ExprPtr RHS, SourceLoc Loc)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinaryOp op() const { return Op; }
  Expr *lhs() const { return LHS.get(); }
  Expr *rhs() const { return RHS.get(); }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinaryOp Op;
  ExprPtr LHS, RHS;
};

/// Intrinsics recognised by Sema; `NotIntrinsic` means a user function call.
enum class Intrinsic {
  NotIntrinsic,
  Input,  ///< input(): reads the next int from the program input stream.
  Print,  ///< print(e): appends a value to the program output.
  Len,    ///< len(a): compile-time array length.
  ToInt,  ///< int(e): float -> int truncation.
  ToFloat,///< float(e): int -> float conversion.
  Abs,    ///< abs(e)
  Min,    ///< min(a, b)
  Max,    ///< max(a, b)
};

/// A call expression: user function or intrinsic.
class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Expr(Kind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &callee() const { return Callee; }
  const std::vector<ExprPtr> &args() const { return Args; }
  Expr *arg(unsigned I) const { return Args[I].get(); }
  unsigned numArgs() const { return Args.size(); }

  Intrinsic intrinsic() const { return Intr; }
  void setIntrinsic(Intrinsic I) { Intr = I; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }

private:
  std::string Callee;
  std::vector<ExprPtr> Args;
  Intrinsic Intr = Intrinsic::NotIntrinsic;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt {
public:
  enum class Kind {
    Block,
    Decl,
    Assign,
    If,
    While,
    For,
    Break,
    Continue,
    Return,
    ExprStmt,
  };

  Stmt(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}
  virtual ~Stmt() = default;

  Kind kind() const { return TheKind; }
  SourceLoc loc() const { return Loc; }

private:
  const Kind TheKind;
  SourceLoc Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// A `{ ... }` statement list.
class BlockStmt : public Stmt {
public:
  BlockStmt(std::vector<StmtPtr> Stmts, SourceLoc Loc)
      : Stmt(Kind::Block, Loc), Stmts(std::move(Stmts)) {}

  const std::vector<StmtPtr> &stmts() const { return Stmts; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Block; }

private:
  std::vector<StmtPtr> Stmts;
};

/// A variable declaration, `var x = e;` / `var a[10]: float;`.
class DeclStmt : public Stmt {
public:
  DeclStmt(std::string Name, ScalarType Type, bool HasExplicitType,
           bool IsArray, int64_t ArraySize, ExprPtr Init, SourceLoc Loc)
      : Stmt(Kind::Decl, Loc), Name(std::move(Name)), Type(Type),
        HasExplicitType(HasExplicitType), IsArray(IsArray),
        ArraySize(ArraySize), Init(std::move(Init)) {}

  const std::string &name() const { return Name; }
  ScalarType type() const { return Type; }
  /// False when the type should be inferred from the initializer.
  bool hasExplicitType() const { return HasExplicitType; }
  void setType(ScalarType T) { Type = T; }
  bool isArray() const { return IsArray; }
  int64_t arraySize() const { return ArraySize; }
  Expr *init() const { return Init.get(); }
  VarSymbol *symbol() const { return Symbol; }
  void setSymbol(VarSymbol *S) { Symbol = S; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Decl; }

private:
  std::string Name;
  ScalarType Type;
  bool HasExplicitType;
  bool IsArray;
  int64_t ArraySize;
  ExprPtr Init;
  VarSymbol *Symbol = nullptr;
};

/// An assignment to a scalar (`x = e;`) or array element (`a[i] = e;`).
/// Target is either a VarRefExpr or an ArrayIndexExpr.
class AssignStmt : public Stmt {
public:
  AssignStmt(ExprPtr Target, ExprPtr Value, SourceLoc Loc)
      : Stmt(Kind::Assign, Loc), Target(std::move(Target)),
        Value(std::move(Value)) {}

  Expr *target() const { return Target.get(); }
  Expr *value() const { return Value.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

private:
  ExprPtr Target, Value;
};

/// `if (cond) { ... } else { ... }`.
class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, SourceLoc Loc)
      : Stmt(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  Expr *cond() const { return Cond.get(); }
  Stmt *thenStmt() const { return Then.get(); }
  Stmt *elseStmt() const { return Else.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  ExprPtr Cond;
  StmtPtr Then, Else;
};

/// `while (cond) { ... }`.
class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body, SourceLoc Loc)
      : Stmt(Kind::While, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {}

  Expr *cond() const { return Cond.get(); }
  Stmt *body() const { return Body.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

private:
  ExprPtr Cond;
  StmtPtr Body;
};

/// `for (init; cond; step) { ... }`; init/step are optional statements and
/// cond is an optional expression (absent means `true`).
class ForStmt : public Stmt {
public:
  ForStmt(StmtPtr Init, ExprPtr Cond, StmtPtr Step, StmtPtr Body,
          SourceLoc Loc)
      : Stmt(Kind::For, Loc), Init(std::move(Init)), Cond(std::move(Cond)),
        Step(std::move(Step)), Body(std::move(Body)) {}

  Stmt *init() const { return Init.get(); }
  Expr *cond() const { return Cond.get(); }
  Stmt *step() const { return Step.get(); }
  Stmt *body() const { return Body.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::For; }

private:
  StmtPtr Init;
  ExprPtr Cond;
  StmtPtr Step;
  StmtPtr Body;
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(Kind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Break; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(Kind::Continue, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Continue; }
};

/// `return;` or `return e;`.
class ReturnStmt : public Stmt {
public:
  ReturnStmt(ExprPtr Value, SourceLoc Loc)
      : Stmt(Kind::Return, Loc), Value(std::move(Value)) {}

  Expr *value() const { return Value.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }

private:
  ExprPtr Value;
};

/// An expression evaluated for effect (a call such as `print(x);`).
class ExprStmt : public Stmt {
public:
  ExprStmt(ExprPtr E, SourceLoc Loc)
      : Stmt(Kind::ExprStmt, Loc), TheExpr(std::move(E)) {}

  Expr *expr() const { return TheExpr.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::ExprStmt; }

private:
  ExprPtr TheExpr;
};

//===----------------------------------------------------------------------===//
// Declarations / program
//===----------------------------------------------------------------------===//

/// One function parameter.
struct ParamDecl {
  std::string Name;
  ScalarType Type = ScalarType::Int;
  SourceLoc Loc;
  VarSymbol *Symbol = nullptr;
};

/// A function definition.
class FunctionDecl {
public:
  FunctionDecl(std::string Name, std::vector<ParamDecl> Params,
               ScalarType ReturnType, StmtPtr Body, SourceLoc Loc)
      : Name(std::move(Name)), Params(std::move(Params)),
        ReturnType(ReturnType), Body(std::move(Body)), Loc(Loc) {}

  const std::string &name() const { return Name; }
  const std::vector<ParamDecl> &params() const { return Params; }
  std::vector<ParamDecl> &params() { return Params; }
  ScalarType returnType() const { return ReturnType; }
  Stmt *body() const { return Body.get(); }
  SourceLoc loc() const { return Loc; }

private:
  std::string Name;
  std::vector<ParamDecl> Params;
  ScalarType ReturnType;
  StmtPtr Body;
  SourceLoc Loc;
};

/// A whole VL translation unit: globals plus functions, plus the symbol
/// arena populated by Sema.
class Program {
public:
  std::vector<std::unique_ptr<DeclStmt>> Globals;
  std::vector<std::unique_ptr<FunctionDecl>> Functions;

  /// All VarSymbols, owned here; stable addresses.
  std::vector<std::unique_ptr<VarSymbol>> Symbols;

  FunctionDecl *findFunction(const std::string &Name) const {
    for (const auto &F : Functions)
      if (F->name() == Name)
        return F.get();
    return nullptr;
  }

  VarSymbol *makeSymbol() {
    Symbols.push_back(std::make_unique<VarSymbol>());
    VarSymbol *S = Symbols.back().get();
    S->Id = Symbols.size() - 1;
    return S;
  }
};

} // namespace vrp

#endif // VRP_LANG_AST_H
