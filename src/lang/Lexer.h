//===- lang/Lexer.h - VL lexer ----------------------------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for VL. Supports `//` and `/* */` comments, decimal
/// integer and floating literals, and the operators in lang/Token.h.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_LANG_LEXER_H
#define VRP_LANG_LEXER_H

#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <string_view>

namespace vrp {

/// Turns a VL source buffer into a token stream, one token per call.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  /// Lexes and returns the next token; returns Eof forever at end of input.
  Token next();

private:
  char peek(unsigned Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance();
  void skipTrivia();
  SourceLoc loc() const { return SourceLoc(Line, Col); }

  Token makeToken(TokenKind Kind, SourceLoc Loc, std::string Text);
  Token lexNumber(SourceLoc Start);
  Token lexIdentifier(SourceLoc Start);

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace vrp

#endif // VRP_LANG_LEXER_H
