//===- lang/Lexer.cpp - VL lexer -------------------------------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace vrp;

const char *vrp::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::FloatLiteral:
    return "float literal";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::KwFn:
    return "'fn'";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwFloat:
    return "'float'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::BangEqual:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  }
  return "token";
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = loc();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc, std::string Text) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lexNumber(SourceLoc Start) {
  size_t Begin = Pos;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  bool IsFloat = false;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsFloat = true;
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    char Sign = peek(1);
    unsigned DigitAt = (Sign == '+' || Sign == '-') ? 2 : 1;
    if (std::isdigit(static_cast<unsigned char>(peek(DigitAt)))) {
      IsFloat = true;
      advance();
      if (Sign == '+' || Sign == '-')
        advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    }
  }
  std::string Text(Source.substr(Begin, Pos - Begin));
  Token T = makeToken(IsFloat ? TokenKind::FloatLiteral : TokenKind::IntLiteral,
                      Start, Text);
  if (IsFloat) {
    T.FloatValue = std::strtod(Text.c_str(), nullptr);
  } else {
    errno = 0;
    T.IntValue = std::strtoll(Text.c_str(), nullptr, 10);
    if (errno == ERANGE)
      Diags.error(Start, "integer literal out of 64-bit range: " + Text);
  }
  return T;
}

Token Lexer::lexIdentifier(SourceLoc Start) {
  size_t Begin = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string Text(Source.substr(Begin, Pos - Begin));

  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"fn", TokenKind::KwFn},         {"var", TokenKind::KwVar},
      {"if", TokenKind::KwIf},         {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},   {"for", TokenKind::KwFor},
      {"break", TokenKind::KwBreak},   {"continue", TokenKind::KwContinue},
      {"return", TokenKind::KwReturn}, {"int", TokenKind::KwInt},
      {"float", TokenKind::KwFloat},   {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
  };
  auto It = Keywords.find(Text);
  TokenKind Kind = It == Keywords.end() ? TokenKind::Identifier : It->second;
  Token T = makeToken(Kind, Start, std::move(Text));
  if (Kind == TokenKind::KwTrue)
    T.IntValue = 1;
  return T;
}

Token Lexer::next() {
  skipTrivia();
  SourceLoc Start = loc();
  char C = peek();
  if (C == '\0')
    return makeToken(TokenKind::Eof, Start, "");

  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Start);
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifier(Start);

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Start, "(");
  case ')':
    return makeToken(TokenKind::RParen, Start, ")");
  case '{':
    return makeToken(TokenKind::LBrace, Start, "{");
  case '}':
    return makeToken(TokenKind::RBrace, Start, "}");
  case '[':
    return makeToken(TokenKind::LBracket, Start, "[");
  case ']':
    return makeToken(TokenKind::RBracket, Start, "]");
  case ',':
    return makeToken(TokenKind::Comma, Start, ",");
  case ';':
    return makeToken(TokenKind::Semicolon, Start, ";");
  case ':':
    return makeToken(TokenKind::Colon, Start, ":");
  case '+':
    return makeToken(TokenKind::Plus, Start, "+");
  case '-':
    return makeToken(TokenKind::Minus, Start, "-");
  case '*':
    return makeToken(TokenKind::Star, Start, "*");
  case '/':
    return makeToken(TokenKind::Slash, Start, "/");
  case '%':
    return makeToken(TokenKind::Percent, Start, "%");
  case '=':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::EqualEqual, Start, "==");
    }
    return makeToken(TokenKind::Assign, Start, "=");
  case '!':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::BangEqual, Start, "!=");
    }
    return makeToken(TokenKind::Bang, Start, "!");
  case '<':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::LessEqual, Start, "<=");
    }
    return makeToken(TokenKind::Less, Start, "<");
  case '>':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::GreaterEqual, Start, ">=");
    }
    return makeToken(TokenKind::Greater, Start, ">");
  case '&':
    if (peek() == '&') {
      advance();
      return makeToken(TokenKind::AmpAmp, Start, "&&");
    }
    break;
  case '|':
    if (peek() == '|') {
      advance();
      return makeToken(TokenKind::PipePipe, Start, "||");
    }
    break;
  default:
    break;
  }
  Diags.error(Start, std::string("unexpected character '") + C + "'");
  return makeToken(TokenKind::Error, Start, std::string(1, C));
}
