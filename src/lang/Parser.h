//===- lang/Parser.h - VL recursive-descent parser --------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing a lang/AST.h Program. On syntax
/// errors it reports a diagnostic and attempts statement-level recovery so
/// multiple errors surface in one pass.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_LANG_PARSER_H
#define VRP_LANG_PARSER_H

#include "lang/AST.h"
#include "lang/Lexer.h"

#include <memory>

namespace vrp {

/// Parses one VL source buffer into a Program (no semantic checks).
class Parser {
public:
  Parser(std::string_view Source, DiagnosticEngine &Diags)
      : Lex(Source, Diags), Diags(Diags) {
    Tok = Lex.next();
  }

  /// Parses the whole buffer. Returns a Program even when errors occurred;
  /// check the DiagnosticEngine before using the result.
  std::unique_ptr<Program> parseProgram();

private:
  // Token plumbing.
  void consume() { Tok = Lex.next(); }
  bool at(TokenKind K) const { return Tok.is(K); }
  bool accept(TokenKind K);
  bool expect(TokenKind K, const char *Context);
  void skipToStatementBoundary();

  // Recursion-depth guard: pathologically nested input (thousands of
  // parentheses, braces or unary operators) must produce a diagnostic,
  // not a stack overflow. Each recursive entry point holds a DepthScope;
  // past MaxRecursionDepth one diagnostic is emitted, recovery skips to a
  // statement boundary and a placeholder node is produced.
  static constexpr unsigned MaxRecursionDepth = 256;
  struct DepthScope {
    explicit DepthScope(Parser &P) : P(P) { ++P.Depth; }
    ~DepthScope() { --P.Depth; }
    Parser &P;
  };
  bool atDepthLimit();

  // Declarations.
  std::unique_ptr<FunctionDecl> parseFunction();
  std::unique_ptr<DeclStmt> parseVarDecl();
  ScalarType parseTypeAnnotation(ScalarType Default);

  // Statements.
  StmtPtr parseStmt();
  StmtPtr parseBlock();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseFor();
  StmtPtr parseReturn();
  StmtPtr parseSimpleStmt(bool RequireSemi);

  // Expressions (precedence climbing).
  ExprPtr parseExpr();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseComparison();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePrimary();

  Lexer Lex;
  DiagnosticEngine &Diags;
  Token Tok;
  unsigned Depth = 0;
  bool DepthReported = false;
};

/// Convenience wrapper: lex + parse a buffer.
std::unique_ptr<Program> parseVL(std::string_view Source,
                                 DiagnosticEngine &Diags);

} // namespace vrp

#endif // VRP_LANG_PARSER_H
