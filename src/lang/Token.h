//===- lang/Token.h - VL tokens ---------------------------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for VL, the small C-like language used as the front-end
/// substrate for the value range propagation pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_LANG_TOKEN_H
#define VRP_LANG_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace vrp {

enum class TokenKind {
  // Sentinels.
  Eof,
  Error,
  // Literals and identifiers.
  IntLiteral,
  FloatLiteral,
  Identifier,
  // Keywords.
  KwFn,
  KwVar,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwBreak,
  KwContinue,
  KwReturn,
  KwInt,
  KwFloat,
  KwTrue,
  KwFalse,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Colon,
  // Operators.
  Assign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  EqualEqual,
  BangEqual,
  Less,
  LessEqual,
  Greater,
  GreaterEqual,
  AmpAmp,
  PipePipe,
  Bang,
};

/// Returns a human-readable spelling for \p Kind (for diagnostics).
const char *tokenKindName(TokenKind Kind);

/// One lexed token. Literal payloads are stored decoded.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;   ///< Identifier spelling or raw literal text.
  int64_t IntValue = 0;
  double FloatValue = 0.0;

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
};

} // namespace vrp

#endif // VRP_LANG_TOKEN_H
