//===- lang/Sema.cpp - VL semantic analysis --------------------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include <cassert>
#include <unordered_map>
#include <vector>

using namespace vrp;

Intrinsic vrp::lookupIntrinsic(const std::string &Name) {
  static const std::unordered_map<std::string, Intrinsic> Table = {
      {"input", Intrinsic::Input}, {"print", Intrinsic::Print},
      {"len", Intrinsic::Len},     {"int", Intrinsic::ToInt},
      {"float", Intrinsic::ToFloat}, {"abs", Intrinsic::Abs},
      {"min", Intrinsic::Min},     {"max", Intrinsic::Max},
  };
  auto It = Table.find(Name);
  return It == Table.end() ? Intrinsic::NotIntrinsic : It->second;
}

namespace {

/// Walks the AST resolving names and computing expression types.
class SemaVisitor {
public:
  SemaVisitor(Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  void run();

private:
  // Scope handling: a stack of name->symbol maps.
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  VarSymbol *lookup(const std::string &Name) const;
  VarSymbol *declare(const std::string &Name, SourceLoc Loc);

  void checkGlobal(DeclStmt &D);
  void checkFunction(FunctionDecl &F);
  void checkStmt(Stmt *S);
  ScalarType checkExpr(Expr *E);
  ScalarType checkCall(CallExpr &C);
  void requireInt(Expr *E, const char *What);

  // Recursion-depth guard, mirroring the parser's: a left-leaning
  // operator chain (`a+a+a+...`) nests the AST arbitrarily deep without
  // ever deepening parser recursion, so semantic analysis needs its own
  // stack-overflow protection.
  static constexpr unsigned MaxCheckDepth = 512;
  struct DepthScope {
    explicit DepthScope(SemaVisitor &S) : S(S) { ++S.CheckDepth; }
    ~DepthScope() { --S.CheckDepth; }
    SemaVisitor &S;
  };
  bool atDepthLimit(SourceLoc Loc);

  Program &P;
  DiagnosticEngine &Diags;
  std::vector<std::unordered_map<std::string, VarSymbol *>> Scopes;
  FunctionDecl *CurrentFn = nullptr;
  unsigned LoopDepth = 0;
  unsigned CheckDepth = 0;
  bool DepthReported = false;
};

} // namespace

VarSymbol *SemaVisitor::lookup(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return nullptr;
}

VarSymbol *SemaVisitor::declare(const std::string &Name, SourceLoc Loc) {
  assert(!Scopes.empty() && "no active scope");
  auto &Scope = Scopes.back();
  if (Scope.count(Name)) {
    Diags.error(Loc, "redeclaration of '" + Name + "' in the same scope");
    return Scope[Name];
  }
  VarSymbol *S = P.makeSymbol();
  S->Name = Name;
  Scope[Name] = S;
  return S;
}

void SemaVisitor::run() {
  pushScope(); // Global scope.
  for (auto &G : P.Globals)
    checkGlobal(*G);

  // Check for duplicate function names before diving into bodies.
  std::unordered_map<std::string, FunctionDecl *> Fns;
  for (auto &F : P.Functions) {
    if (!Fns.emplace(F->name(), F.get()).second)
      Diags.error(F->loc(), "redefinition of function '" + F->name() + "'");
    if (lookupIntrinsic(F->name()) != Intrinsic::NotIntrinsic)
      Diags.error(F->loc(),
                  "function name '" + F->name() + "' shadows an intrinsic");
  }

  for (auto &F : P.Functions)
    checkFunction(*F);
  popScope();
}

void SemaVisitor::checkGlobal(DeclStmt &D) {
  ScalarType InitType = ScalarType::Int;
  if (D.init())
    InitType = checkExpr(D.init());
  if (!D.hasExplicitType() && D.init() && !D.isArray())
    D.setType(InitType);
  VarSymbol *S = declare(D.name(), D.loc());
  S->Type = D.type();
  S->IsGlobal = true;
  S->IsArray = D.isArray();
  S->ArraySize = D.arraySize();
  D.setSymbol(S);
  if (D.init() && D.type() == ScalarType::Int &&
      InitType == ScalarType::Float)
    Diags.error(D.loc(), "cannot initialize int variable '" + D.name() +
                             "' with a float value");
  // Globals must have constant initializers; irgen enforces foldability.
}

void SemaVisitor::checkFunction(FunctionDecl &F) {
  CurrentFn = &F;
  pushScope();
  for (ParamDecl &PD : F.params()) {
    VarSymbol *S = declare(PD.Name, PD.Loc);
    S->Type = PD.Type;
    S->IsParam = true;
    PD.Symbol = S;
  }
  checkStmt(F.body());
  popScope();
  CurrentFn = nullptr;
}

void SemaVisitor::requireInt(Expr *E, const char *What) {
  if (E && checkExpr(E) == ScalarType::Float)
    Diags.error(E->loc(), std::string(What) + " must have int type");
}

bool SemaVisitor::atDepthLimit(SourceLoc Loc) {
  if (CheckDepth <= MaxCheckDepth)
    return false;
  if (!DepthReported) {
    DepthReported = true;
    Diags.error(Loc, "construct nests too deeply for semantic analysis "
                     "(more than " +
                         std::to_string(MaxCheckDepth) + " levels)");
  }
  return true;
}

void SemaVisitor::checkStmt(Stmt *S) {
  if (!S)
    return;
  DepthScope Scope(*this);
  if (atDepthLimit(S->loc()))
    return;
  switch (S->kind()) {
  case Stmt::Kind::Block: {
    auto *B = cast<BlockStmt>(S);
    pushScope();
    for (const StmtPtr &Child : B->stmts())
      checkStmt(Child.get());
    popScope();
    return;
  }
  case Stmt::Kind::Decl: {
    auto *D = cast<DeclStmt>(S);
    // Check the initializer before declaring so `var x = x;` errors.
    ScalarType InitType = ScalarType::Int;
    if (D->init())
      InitType = checkExpr(D->init());
    // `var x = 1.5;` infers float; an explicit annotation is authoritative.
    if (!D->hasExplicitType() && D->init() && !D->isArray())
      D->setType(InitType);
    VarSymbol *Sym = declare(D->name(), D->loc());
    Sym->Type = D->type();
    Sym->IsArray = D->isArray();
    Sym->ArraySize = D->arraySize();
    D->setSymbol(Sym);
    if (D->init() && D->type() == ScalarType::Int &&
        InitType == ScalarType::Float)
      Diags.error(D->loc(), "cannot initialize int variable '" + D->name() +
                                "' with a float value");
    return;
  }
  case Stmt::Kind::Assign: {
    auto *A = cast<AssignStmt>(S);
    ScalarType ValueType = checkExpr(A->value());
    ScalarType TargetType = checkExpr(A->target());
    if (auto *VR = dyn_cast<VarRefExpr>(A->target())) {
      if (VR->symbol() && VR->symbol()->IsArray)
        Diags.error(A->loc(), "cannot assign to array '" + VR->name() +
                                  "' as a whole");
    }
    if (TargetType == ScalarType::Int && ValueType == ScalarType::Float)
      Diags.error(A->loc(), "cannot assign float value to int target");
    return;
  }
  case Stmt::Kind::If: {
    auto *I = cast<IfStmt>(S);
    requireInt(I->cond(), "if condition");
    checkStmt(I->thenStmt());
    checkStmt(I->elseStmt());
    return;
  }
  case Stmt::Kind::While: {
    auto *W = cast<WhileStmt>(S);
    requireInt(W->cond(), "while condition");
    ++LoopDepth;
    checkStmt(W->body());
    --LoopDepth;
    return;
  }
  case Stmt::Kind::For: {
    auto *F = cast<ForStmt>(S);
    pushScope(); // for-init declarations scope over the loop.
    checkStmt(F->init());
    if (F->cond())
      requireInt(F->cond(), "for condition");
    ++LoopDepth;
    checkStmt(F->body());
    checkStmt(F->step());
    --LoopDepth;
    popScope();
    return;
  }
  case Stmt::Kind::Break:
    if (LoopDepth == 0)
      Diags.error(S->loc(), "'break' outside of a loop");
    return;
  case Stmt::Kind::Continue:
    if (LoopDepth == 0)
      Diags.error(S->loc(), "'continue' outside of a loop");
    return;
  case Stmt::Kind::Return: {
    auto *R = cast<ReturnStmt>(S);
    assert(CurrentFn && "return outside function");
    if (R->value()) {
      ScalarType T = checkExpr(R->value());
      if (CurrentFn->returnType() == ScalarType::Int &&
          T == ScalarType::Float)
        Diags.error(R->loc(), "returning float from int function '" +
                                  CurrentFn->name() + "'");
    }
    return;
  }
  case Stmt::Kind::ExprStmt:
    checkExpr(cast<ExprStmt>(S)->expr());
    return;
  }
}

ScalarType SemaVisitor::checkExpr(Expr *E) {
  if (!E)
    return ScalarType::Int;
  DepthScope Scope(*this);
  if (atDepthLimit(E->loc())) {
    E->setType(ScalarType::Int);
    return ScalarType::Int;
  }
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    E->setType(ScalarType::Int);
    return ScalarType::Int;
  case Expr::Kind::FloatLit:
    E->setType(ScalarType::Float);
    return ScalarType::Float;
  case Expr::Kind::VarRef: {
    auto *V = cast<VarRefExpr>(E);
    VarSymbol *S = lookup(V->name());
    if (!S) {
      Diags.error(V->loc(), "use of undeclared variable '" + V->name() + "'");
      E->setType(ScalarType::Int);
      return ScalarType::Int;
    }
    if (S->IsArray)
      Diags.error(V->loc(), "array '" + V->name() +
                                "' used as a scalar value");
    V->setSymbol(S);
    E->setType(S->Type);
    return S->Type;
  }
  case Expr::Kind::ArrayIndex: {
    auto *A = cast<ArrayIndexExpr>(E);
    VarSymbol *S = lookup(A->name());
    if (!S) {
      Diags.error(A->loc(), "use of undeclared array '" + A->name() + "'");
    } else if (!S->IsArray) {
      Diags.error(A->loc(), "'" + A->name() + "' is not an array");
      S = nullptr;
    }
    A->setSymbol(S);
    requireInt(A->index(), "array index");
    ScalarType T = S ? S->Type : ScalarType::Int;
    E->setType(T);
    return T;
  }
  case Expr::Kind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    ScalarType T = checkExpr(U->sub());
    if (U->op() == UnaryOp::Not) {
      if (T == ScalarType::Float)
        Diags.error(U->loc(), "'!' requires an int operand");
      T = ScalarType::Int;
    }
    E->setType(T);
    return T;
  }
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    ScalarType L = checkExpr(B->lhs());
    ScalarType R = checkExpr(B->rhs());
    switch (B->op()) {
    case BinaryOp::LogicalAnd:
    case BinaryOp::LogicalOr:
      if (L == ScalarType::Float || R == ScalarType::Float)
        Diags.error(B->loc(), "logical operators require int operands");
      E->setType(ScalarType::Int);
      return ScalarType::Int;
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      E->setType(ScalarType::Int);
      return ScalarType::Int;
    case BinaryOp::Rem:
      if (L == ScalarType::Float || R == ScalarType::Float)
        Diags.error(B->loc(), "'%' requires int operands");
      E->setType(ScalarType::Int);
      return ScalarType::Int;
    default: {
      // Arithmetic: float if either side is float (int promotes).
      ScalarType T = (L == ScalarType::Float || R == ScalarType::Float)
                         ? ScalarType::Float
                         : ScalarType::Int;
      E->setType(T);
      return T;
    }
    }
  }
  case Expr::Kind::Call:
    return checkCall(*cast<CallExpr>(E));
  }
  return ScalarType::Int;
}

ScalarType SemaVisitor::checkCall(CallExpr &C) {
  Intrinsic Intr = lookupIntrinsic(C.callee());
  C.setIntrinsic(Intr);

  auto expectArgs = [&](unsigned N) {
    if (C.numArgs() != N) {
      Diags.error(C.loc(), "'" + C.callee() + "' expects " +
                               std::to_string(N) + " argument(s), got " +
                               std::to_string(C.numArgs()));
      return false;
    }
    return true;
  };

  switch (Intr) {
  case Intrinsic::Input:
    expectArgs(0);
    C.setType(ScalarType::Int);
    return ScalarType::Int;
  case Intrinsic::Print:
    if (expectArgs(1))
      checkExpr(C.arg(0));
    C.setType(ScalarType::Void);
    return ScalarType::Void;
  case Intrinsic::Len: {
    if (expectArgs(1)) {
      auto *VR = dyn_cast<VarRefExpr>(C.arg(0));
      VarSymbol *S = VR ? lookup(VR->name()) : nullptr;
      if (!VR || !S || !S->IsArray)
        Diags.error(C.loc(), "'len' expects an array name argument");
      else
        VR->setSymbol(S);
    }
    C.setType(ScalarType::Int);
    return ScalarType::Int;
  }
  case Intrinsic::ToInt:
    if (expectArgs(1))
      checkExpr(C.arg(0));
    C.setType(ScalarType::Int);
    return ScalarType::Int;
  case Intrinsic::ToFloat:
    if (expectArgs(1))
      checkExpr(C.arg(0));
    C.setType(ScalarType::Float);
    return ScalarType::Float;
  case Intrinsic::Abs: {
    ScalarType T = ScalarType::Int;
    if (expectArgs(1))
      T = checkExpr(C.arg(0));
    C.setType(T);
    return T;
  }
  case Intrinsic::Min:
  case Intrinsic::Max: {
    ScalarType T = ScalarType::Int;
    if (expectArgs(2)) {
      ScalarType A = checkExpr(C.arg(0));
      ScalarType B = checkExpr(C.arg(1));
      T = (A == ScalarType::Float || B == ScalarType::Float)
              ? ScalarType::Float
              : ScalarType::Int;
    }
    C.setType(T);
    return T;
  }
  case Intrinsic::NotIntrinsic:
    break;
  }

  // User-defined function call.
  FunctionDecl *Callee = P.findFunction(C.callee());
  if (!Callee) {
    Diags.error(C.loc(), "call to undefined function '" + C.callee() + "'");
    for (const ExprPtr &A : C.args())
      checkExpr(A.get());
    C.setType(ScalarType::Int);
    return ScalarType::Int;
  }
  if (C.numArgs() != Callee->params().size())
    Diags.error(C.loc(), "'" + C.callee() + "' expects " +
                             std::to_string(Callee->params().size()) +
                             " argument(s), got " +
                             std::to_string(C.numArgs()));
  for (unsigned I = 0; I < C.numArgs(); ++I) {
    ScalarType T = checkExpr(C.arg(I));
    if (I < Callee->params().size() &&
        Callee->params()[I].Type == ScalarType::Int &&
        T == ScalarType::Float)
      Diags.error(C.arg(I)->loc(),
                  "float argument passed to int parameter '" +
                      Callee->params()[I].Name + "'");
  }
  C.setType(Callee->returnType());
  return Callee->returnType();
}

bool vrp::runSema(Program &P, DiagnosticEngine &Diags) {
  unsigned Before = Diags.errorCount();
  SemaVisitor V(P, Diags);
  V.run();
  return Diags.errorCount() == Before;
}
