//===- lang/Sema.h - VL semantic analysis -----------------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for VL: name resolution against lexical scopes, type
/// checking with int->float promotion, intrinsic recognition and arity
/// checks, and structural checks (break/continue placement, return types).
/// On success every VarRef/ArrayIndex/Decl node is bound to a VarSymbol and
/// every expression carries its ScalarType.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_LANG_SEMA_H
#define VRP_LANG_SEMA_H

#include "lang/AST.h"
#include "support/Diagnostics.h"

namespace vrp {

/// Runs all semantic checks over \p P. Returns true when no errors were
/// reported into \p Diags.
bool runSema(Program &P, DiagnosticEngine &Diags);

/// Maps a callee name to an intrinsic, or Intrinsic::NotIntrinsic.
Intrinsic lookupIntrinsic(const std::string &Name);

} // namespace vrp

#endif // VRP_LANG_SEMA_H
