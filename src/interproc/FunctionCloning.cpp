//===- interproc/FunctionCloning.cpp - Procedure cloning -------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "interproc/FunctionCloning.h"

#include "analysis/Dominators.h"
#include "ir/CFGUtils.h"

#include <cassert>
#include <unordered_map>

using namespace vrp;

Function *vrp::cloneFunction(Module &M, const Function &Source,
                             const std::string &CloneName) {
  Function *Clone = M.makeFunction(CloneName, Source.returnType());

  std::unordered_map<const Value *, Value *> ValueMap;
  std::unordered_map<const BasicBlock *, BasicBlock *> BlockMap;
  std::unordered_map<const MemoryObject *, MemoryObject *> ObjectMap;

  for (unsigned I = 0; I < Source.numParams(); ++I) {
    const Param *P = Source.param(I);
    ValueMap[P] = Clone->addParam(P->type(), P->name());
  }
  for (const MemoryObject *Obj : Source.localObjects()) {
    MemoryObject *NewObj = M.makeMemoryObject(
        CloneName + "." + Obj->name(), Obj->elemType(), Obj->size(),
        /*IsGlobal=*/false);
    Clone->addLocalObject(NewObj);
    ObjectMap[Obj] = NewObj;
  }
  for (const auto &B : Source.blocks())
    BlockMap[B.get()] = Clone->makeBlock(B->name());

  auto mapValue = [&](const Value *V) -> Value * {
    if (isa<Constant>(V))
      return const_cast<Value *>(V); // Constants are interned and shared.
    auto It = ValueMap.find(V);
    assert(It != ValueMap.end() && "operand not yet cloned (defs must "
                                   "precede uses per block order)");
    return It->second;
  };
  auto mapObject = [&](const MemoryObject *Obj) {
    auto It = ObjectMap.find(Obj);
    return It == ObjectMap.end() ? const_cast<MemoryObject *>(Obj)
                                 : It->second;
  };

  // First pass: clone instructions in reverse postorder — every non-φ use
  // is dominated by its definition, and dominators precede their subtree
  // in RPO, so operands are always mapped before they are needed. φ
  // operands can come via back edges; their incoming lists are filled in a
  // second pass.
  std::vector<std::pair<const PhiInst *, PhiInst *>> Phis;
  DominatorTree DT(Source);
  for (BasicBlock *B : DT.rpo()) {
    BasicBlock *NewB = BlockMap[B];
    for (const auto &IPtr : B->instructions()) {
      const Instruction *I = IPtr.get();
      std::unique_ptr<Instruction> NewI;
      switch (I->opcode()) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::Min:
      case Opcode::Max:
        NewI = std::make_unique<BinaryInst>(I->opcode(), I->type(),
                                            mapValue(I->operand(0)),
                                            mapValue(I->operand(1)));
        break;
      case Opcode::Cmp: {
        const auto *Cmp = cast<CmpInst>(I);
        NewI = std::make_unique<CmpInst>(Cmp->pred(),
                                         mapValue(Cmp->lhs()),
                                         mapValue(Cmp->rhs()));
        break;
      }
      case Opcode::Neg:
      case Opcode::Not:
      case Opcode::Abs:
      case Opcode::Copy:
      case Opcode::IntToFloat:
      case Opcode::FloatToInt:
        NewI = std::make_unique<UnaryInst>(I->opcode(), I->type(),
                                           mapValue(I->operand(0)));
        break;
      case Opcode::Phi: {
        auto NewPhi = std::make_unique<PhiInst>(I->type());
        PhiInst *Raw = NewPhi.get();
        Phis.push_back({cast<PhiInst>(I), Raw});
        ValueMap[I] = Raw;
        NewB->insertPhi(std::move(NewPhi));
        continue;
      }
      case Opcode::Assert: {
        const auto *A = cast<AssertInst>(I);
        NewI = std::make_unique<AssertInst>(mapValue(A->source()),
                                            A->pred(),
                                            mapValue(A->bound()));
        break;
      }
      case Opcode::Load: {
        const auto *L = cast<LoadInst>(I);
        NewI = std::make_unique<LoadInst>(mapObject(L->object()),
                                          mapValue(L->index()));
        break;
      }
      case Opcode::Store: {
        const auto *St = cast<StoreInst>(I);
        NewI = std::make_unique<StoreInst>(mapObject(St->object()),
                                           mapValue(St->index()),
                                           mapValue(St->storedValue()));
        break;
      }
      case Opcode::Call: {
        const auto *Call = cast<CallInst>(I);
        std::vector<Value *> Args;
        for (unsigned A = 0; A < Call->numArgs(); ++A)
          Args.push_back(mapValue(Call->arg(A)));
        // Self-recursive calls retarget to the clone.
        Function *Callee = Call->callee() == &Source
                               ? Clone
                               : Call->callee();
        NewI = std::make_unique<CallInst>(Callee, I->type(),
                                          std::move(Args));
        break;
      }
      case Opcode::Input:
        NewI = std::make_unique<InputInst>();
        break;
      case Opcode::Print:
        NewI = std::make_unique<PrintInst>(mapValue(I->operand(0)));
        break;
      case Opcode::Br:
        createBr(NewB, BlockMap[cast<BrInst>(I)->target()]);
        continue;
      case Opcode::CondBr: {
        const auto *CBr = cast<CondBrInst>(I);
        createCondBr(NewB, mapValue(CBr->cond()),
                     BlockMap[CBr->trueBlock()],
                     BlockMap[CBr->falseBlock()]);
        continue;
      }
      case Opcode::Ret: {
        const auto *Ret = cast<RetInst>(I);
        createRet(NewB, Ret->hasValue() ? mapValue(Ret->value()) : nullptr);
        continue;
      }
      case Opcode::ReadVar:
      case Opcode::WriteVar:
        assert(false && "cloning pre-SSA IR is not supported");
        continue;
      }
      NewI->setLoc(I->loc());
      ValueMap[I] = NewB->append(std::move(NewI));
    }
  }

  // Second pass: φ incoming lists (all values exist now).
  for (auto &[OldPhi, NewPhi] : Phis)
    for (unsigned I = 0; I < OldPhi->numIncoming(); ++I)
      NewPhi->addIncoming(mapValue(OldPhi->incomingValue(I)),
                          BlockMap[OldPhi->incomingBlock(I)]);
  return Clone;
}
