//===- interproc/InterproceduralVRP.h - Whole-program VRP -------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interprocedural value range propagation (paper §3.7). Jump functions —
/// the evaluated actual-argument ranges at each call site — feed callee
/// parameter ranges; return functions feed call-result ranges back. The
/// module is scheduled per-SCC bottom-up over the CallGraph's wave
/// layering: within one sweep, return ranges propagate all the way up the
/// call DAG (callee SCCs finish before their callers start), and only the
/// functions whose resolved context actually changed are re-analyzed in
/// later sweeps (parameter ranges flow one call-depth level per sweep).
/// Functions on call-graph cycles receive ⊥ parameters and their SCCs
/// iterate internally until their return ranges stabilize. Optional
/// procedure cloning specializes callees whose call-site contexts diverge.
///
/// docs/SCALING.md describes the scheduler, its determinism contract and
/// the incremental re-analysis mode in detail.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_INTERPROC_INTERPROCEDURALVRP_H
#define VRP_INTERPROC_INTERPROCEDURALVRP_H

#include "ir/Module.h"
#include "vrp/Propagation.h"

#include <map>
#include <vector>

namespace vrp {

/// Whole-module propagation result.
struct ModuleVRPResult {
  std::map<const Function *, FunctionVRPResult> PerFunction;
  RangeStats Total;
  /// Interprocedural sweeps executed (bottom-up passes over the wave
  /// schedule; 1 when nothing needed refinement).
  unsigned Rounds = 0;
  /// Waves in the SCC condensation's layering (0 for intraprocedural
  /// runs, which never build the call graph).
  unsigned Waves = 0;
  unsigned FunctionsCloned = 0;
  /// Functions whose propagation hit a resource budget (step cap or
  /// deadline) and degraded to the Ball–Larus fallback.
  unsigned FunctionsDegraded = 0;
  /// Distinct functions the scheduler actually (re-)analyzed. Equals the
  /// module size on a full run; on an incremental run it is exactly the
  /// invalidated cone.
  unsigned FunctionsReanalyzed = 0;
  /// The cone itself, in module function order (empty ⇔ nothing dirty).
  std::vector<const Function *> Reanalyzed;

  const FunctionVRPResult *forFunction(const Function *F) const {
    auto It = PerFunction.find(F);
    return It == PerFunction.end() ? nullptr : &It->second;
  }
};

class AnalysisCache;
class PersistentCache;

/// Runs VRP over every function of \p M. With Opts.Interprocedural set,
/// parameter and return ranges flow across call edges; otherwise each
/// function is analyzed with ⊥ context. With Opts.EnableCloning set (and
/// interprocedural analysis on), divergent-context callees are cloned
/// after the first fixpoint — note this MUTATES the module.
///
/// With Opts.Threads > 1 (or 0 = auto) independent SCCs of the same wave
/// fan out across a worker pool; all table updates happen on the
/// coordinating thread at wave boundaries and results merge in function
/// order, so output is bitwise identical to a serial run.
///
/// \p Cache optionally memoizes per-function CFG analyses across sweeps
/// and across predictors (see analysis/AnalysisCache.h). Cloning
/// invalidates the entries of callers whose call sites were retargeted.
///
/// \p PCache optionally consults the durable content-addressed result
/// store (analysis/PersistentCache.h): a warm hit restores the function's
/// result bitwise-identically and skips propagation; a miss analyzes and
/// buffers the result for persistence. Fault-injected (fault::armed())
/// and traced (Opts.Trace) runs bypass it; degraded results are never
/// persisted.
ModuleVRPResult runModuleVRP(Module &M, const VRPOptions &Opts,
                             AnalysisCache *Cache = nullptr,
                             PersistentCache *PCache = nullptr);

/// Const overload for intraprocedural-only analysis (never mutates).
ModuleVRPResult runModuleVRP(const Module &M, const VRPOptions &Opts,
                             AnalysisCache *Cache = nullptr,
                             PersistentCache *PCache = nullptr);

/// Incremental re-analysis: analyzes \p M reusing \p Previous, the result
/// of analyzing \p PrevModule (an earlier compile of the same program).
/// Functions are matched by name; a function whose canonical IR text is
/// unchanged starts from its previous result (rebound to the new module
/// through the PersistentCache serialization, so the reuse is bitwise).
/// The changed functions seed the dirty set and the scheduler re-analyzes
/// exactly the invalidated cone: callers re-run only when a callee's
/// return range actually changed, callees only when the merged jump
/// function into them changed. Result::Reanalyzed reports the cone.
///
/// Cloning is not applied in incremental mode (the module is not
/// mutated); pass Opts with EnableCloning off.
ModuleVRPResult runModuleVRPIncremental(const Module &M,
                                        const VRPOptions &Opts,
                                        const Module &PrevModule,
                                        const ModuleVRPResult &Previous,
                                        AnalysisCache *Cache = nullptr,
                                        PersistentCache *PCache = nullptr);

} // namespace vrp

#endif // VRP_INTERPROC_INTERPROCEDURALVRP_H
