//===- interproc/InterproceduralVRP.h - Whole-program VRP -------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interprocedural value range propagation (paper §3.7). Jump functions —
/// the evaluated actual-argument ranges at each call site — feed callee
/// parameter ranges; return functions feed call-result ranges back. The
/// whole program is iterated "almost as if it were one huge control flow
/// graph" until the cross-function tables stabilize (bounded rounds).
/// Functions on call-graph cycles (recursion) receive ⊥ parameters.
/// Optional procedure cloning specializes callees whose call-site contexts
/// diverge.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_INTERPROC_INTERPROCEDURALVRP_H
#define VRP_INTERPROC_INTERPROCEDURALVRP_H

#include "ir/Module.h"
#include "vrp/Propagation.h"

#include <map>

namespace vrp {

/// Whole-module propagation result.
struct ModuleVRPResult {
  std::map<const Function *, FunctionVRPResult> PerFunction;
  RangeStats Total;
  unsigned Rounds = 0;
  unsigned FunctionsCloned = 0;
  /// Functions whose propagation hit a resource budget (step cap or
  /// deadline) and degraded to the Ball–Larus fallback.
  unsigned FunctionsDegraded = 0;

  const FunctionVRPResult *forFunction(const Function *F) const {
    auto It = PerFunction.find(F);
    return It == PerFunction.end() ? nullptr : &It->second;
  }
};

class AnalysisCache;
class PersistentCache;

/// Runs VRP over every function of \p M. With Opts.Interprocedural set,
/// parameter and return ranges flow across call edges; otherwise each
/// function is analyzed with ⊥ context. With Opts.EnableCloning set (and
/// interprocedural analysis on), divergent-context callees are cloned
/// first — note this MUTATES the module.
///
/// With Opts.Threads > 1 (or 0 = auto) the per-function intraprocedural
/// phase fans functions out across a worker pool; the interprocedural
/// jump/return-table fixup stays on the coordinating thread and results
/// are merged in function order, so output is identical to a serial run.
///
/// \p Cache optionally memoizes per-function CFG analyses across rounds
/// and across predictors (see analysis/AnalysisCache.h). Cloning
/// invalidates the entries of callers whose call sites were retargeted.
///
/// \p PCache optionally consults the durable content-addressed result
/// store (analysis/PersistentCache.h): a warm hit restores the function's
/// result bitwise-identically and skips propagation; a miss analyzes and
/// buffers the result for persistence. Fault-injected (fault::armed())
/// and traced (Opts.Trace) runs bypass it; degraded results are never
/// persisted.
ModuleVRPResult runModuleVRP(Module &M, const VRPOptions &Opts,
                             AnalysisCache *Cache = nullptr,
                             PersistentCache *PCache = nullptr);

/// Const overload for intraprocedural-only analysis (never mutates).
ModuleVRPResult runModuleVRP(const Module &M, const VRPOptions &Opts,
                             AnalysisCache *Cache = nullptr,
                             PersistentCache *PCache = nullptr);

} // namespace vrp

#endif // VRP_INTERPROC_INTERPROCEDURALVRP_H
