//===- interproc/InterproceduralVRP.cpp - Whole-program VRP ----------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
// The interprocedural driver schedules per-SCC bottom-up over the call
// graph's wave layering (analysis/CallGraph.h). One *sweep* processes the
// dirty SCCs wave by wave: return ranges installed at a wave boundary are
// visible to every later wave, so return information crosses the whole
// call DAG in a single sweep; recursive SCCs iterate internally until
// their return ranges stabilize. Between sweeps the jump functions
// (parameter merges) are refreshed for the callees of everything just
// analyzed; a function re-enters the dirty set only when its resolved
// context actually changed, so per-function analysis — a pure function of
// (IR, context) — is never repeated for an identical context and total
// work stays linear-ish in the module.
//
// Determinism contract: SCCs of one wave run on worker threads, but all
// shared state (the param/return tables, the dirty set, result slots)
// is written only by the coordinating thread at wave boundaries, in SCC
// index order. Deadlines are probed at those same boundaries, so the set
// of degraded functions is a function of *which* boundary expired, never
// of the thread schedule.
//
//===----------------------------------------------------------------------===//

#include "interproc/InterproceduralVRP.h"

#include "analysis/AliasAnalysis.h"
#include "analysis/AnalysisCache.h"
#include "analysis/CallGraph.h"
#include "analysis/PersistentCache.h"
#include "interproc/FunctionCloning.h"
#include "ir/IRPrinter.h"
#include "support/FaultInjection.h"
#include "support/ResultStore.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "vrp/Audit.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>
#include <optional>
#include <set>
#include <sstream>

using namespace vrp;

namespace {

/// Strips caller-scope symbolic bounds from a range crossing a call
/// boundary: a bound like `n+2` is meaningless inside the callee.
ValueRange sanitizeForCallee(const ValueRange &VR) {
  if (!VR.isRanges() || !VR.hasSymbolicBounds())
    return VR;
  return ValueRange::bottom();
}

/// Merged return range of \p F given its propagation result: `ret`
/// operand ranges weighted by the returning block's reach probability.
/// Blocks proven unreachable (probability exactly 0) contribute nothing;
/// the result is ⊥ only when every returning block is unreachable.
ValueRange computeReturnRange(const Function &F, const FunctionVRPResult &FR,
                              RangeOps &Ops) {
  if (F.returnType() == IRType::Void)
    return ValueRange::bottom();
  std::vector<std::pair<ValueRange, double>> Entries;
  for (const auto &B : F.blocks()) {
    const auto *Ret = dyn_cast_or_null<RetInst>(B->terminator());
    if (!Ret || !Ret->hasValue())
      continue;
    double Weight = FR.BlockProb[B->id()];
    if (Weight <= 0.0)
      continue;
    ValueRange VR = sanitizeForCallee(FR.rangeOf(Ret->value()));
    Entries.push_back({VR, std::max(Weight, 1e-6)});
  }
  ValueRange Merged =
      Entries.empty() ? ValueRange::bottom() : Ops.meetWeighted(Entries);
  if (Merged.isTop())
    Merged = ValueRange::bottom();
  return Merged;
}

/// Merged jump function for parameter \p PI of \p F: actual-argument
/// ranges across all call sites, weighted by each call block's reach
/// probability in its caller. A provably dead call site (weight exactly
/// 0) is dropped rather than floored: its argument must not poison the
/// merge. ⊥ when there are no callers, every site is dead, or every
/// caller result is missing.
ValueRange computeParamRange(const Function *F, unsigned PI,
                             const CallGraph &CG,
                             const std::function<const FunctionVRPResult *(
                                 const Function *)> &ResultOf,
                             RangeOps &Ops) {
  std::vector<std::pair<ValueRange, double>> Entries;
  for (const CallInst *Call : CG.callerSitesOf(F)) {
    const FunctionVRPResult *CallerResult = ResultOf(Call->function());
    if (!CallerResult)
      continue;
    double Weight = CallerResult->BlockProb[Call->parent()->id()];
    if (Weight <= 0.0)
      continue;
    ValueRange Arg = sanitizeForCallee(CallerResult->rangeOf(Call->arg(PI)));
    Entries.push_back({Arg, std::max(Weight, 1e-6)});
  }
  if (Entries.empty())
    return ValueRange::bottom();
  ValueRange Merged = Ops.meetWeighted(Entries);
  if (Merged.isTop())
    Merged = ValueRange::bottom();
  return Merged;
}

std::string irText(const Function &F) {
  std::ostringstream OS;
  printFunction(F, OS);
  return OS.str();
}

/// Interprocedural driver state: the wave schedule, the parameter and
/// return tables, and the dirty set driving re-analysis.
class InterprocDriver {
public:
  InterprocDriver(Module &M, const VRPOptions &Opts, AnalysisCache *Cache,
                  PersistentCache *PCache, ThreadPool *Pool)
      : M(M), Opts(Opts), Cache(Cache), PCache(PCache), Pool(Pool) {
    if (Opts.Budget.DeadlineMs != 0)
      Deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(Opts.Budget.DeadlineMs);
    UsePCache = PCache && !fault::armed() && !Opts.Trace;
  }

  ModuleVRPResult run();
  ModuleVRPResult runIncremental(const Module &PrevModule,
                                 const ModuleVRPResult &Previous);

private:
  /// Result slots an SCC task hands back to the coordinator; merged at
  /// the wave boundary in deterministic order.
  struct SccOutcome {
    std::vector<std::pair<unsigned, FunctionVRPResult>> FnResults;
    std::vector<std::pair<unsigned, ValueRange>> Returns;
  };

  void initState();
  bool markDirty(unsigned I);
  FunctionVRPResult analyzeOne(const Function &F,
                               const PropagationContext &Ctx);
  SccOutcome analyzeScc(const std::vector<unsigned> &Members, bool Recursive);
  unsigned runSweep();
  void refreshParams();
  void sweepLoop();
  void degradeRemaining();
  void runIntraprocedural();
  unsigned cloneDivergentCallees();
  ModuleVRPResult finalize();

  bool pastDeadline() const {
    return Deadline && std::chrono::steady_clock::now() > *Deadline;
  }

  /// Probes the deadline (and its deterministic fault-injected stand-in)
  /// at a wave boundary. The fault site is probed first so the probe
  /// count a "module-deadline:N" spec observes never depends on the wall
  /// clock.
  void probeDeadline() {
    bool Injected = fault::shouldFail("module-deadline");
    if (!DeadlineBlown && (Injected || pastDeadline()))
      DeadlineBlown = true;
  }

  /// A function-scope ⊥ result: what propagateRanges produces when its
  /// budget runs out, manufactured here when the module deadline leaves
  /// no time to analyze \p F at all.
  static FunctionVRPResult degradedResult(const Function &F) {
    // The engine counts degradations it produces itself; this result is
    // manufactured without ever entering the engine, so count it here.
    telemetry::count(telemetry::Counter::BudgetDegradations);
    FunctionVRPResult R;
    R.F = &F;
    R.Degraded = true;
    R.DegradeCause = Status::failure(
        ErrorCategory::BudgetExceeded, "deadline",
        "module deadline expired before @" + F.name() + " was analyzed");
    R.BlockProb.assign(F.numBlocks(), 1.0);
    for (const auto &B : F.blocks())
      if (const auto *CBr = dyn_cast_or_null<CondBrInst>(B->terminator()))
        R.Branches[CBr] = BranchPrediction{0.5, false, true};
    return R;
  }

  Module &M;
  const VRPOptions &Opts;
  AnalysisCache *Cache;    ///< May be null (no memoization).
  PersistentCache *PCache; ///< May be null (no durable result cache).
  ThreadPool *Pool;        ///< May be null (serial per-SCC phase).
  bool UsePCache = false;
  std::optional<std::chrono::steady_clock::time_point> Deadline;
  bool DeadlineBlown = false;

  std::unique_ptr<CallGraph> CG;
  std::vector<const Function *> Fns; ///< Module order.
  std::vector<FunctionVRPResult> Results; ///< By function index.
  std::vector<char> HasResult, Dirty, EverAnalyzed;
  /// Remaining (re-)analysis budget per function; the refinement analog
  /// of the old driver's MaxRounds=4.
  std::vector<unsigned> AnalysesLeft;
  /// Dirty SCCs keyed (wave, SCC index): the sweep consumes them in wave
  /// order, the only order in which cross-SCC information flows.
  std::set<std::pair<unsigned, unsigned>> DirtySccs;
  std::vector<unsigned> AnalyzedThisSweep;
  /// Param value -> merged jump-function range (absent == ⊥).
  std::map<const Param *, ValueRange> ParamTable;
  /// Function -> merged return range (absent == ⊥).
  std::map<const Function *, ValueRange> ReturnTable;
  unsigned Sweeps = 0;
  unsigned Cloned = 0;

  static constexpr unsigned MaxAnalysesPerFunction = 4;
  static constexpr unsigned SccIterationLimit = 4;
};

} // namespace

void InterprocDriver::initState() {
  Fns.clear();
  Fns.reserve(M.functions().size());
  for (const auto &F : M.functions())
    Fns.push_back(F.get());
  unsigned N = Fns.size();
  Results.assign(N, FunctionVRPResult());
  HasResult.assign(N, 0);
  Dirty.assign(N, 0);
  EverAnalyzed.assign(N, 0);
  AnalysesLeft.assign(N, MaxAnalysesPerFunction);
  DirtySccs.clear();
  AnalyzedThisSweep.clear();
  ParamTable.clear();
  ReturnTable.clear();
  CG = std::make_unique<CallGraph>(M);
}

bool InterprocDriver::markDirty(unsigned I) {
  if (Dirty[I])
    return true;
  if (AnalysesLeft[I] == 0)
    return false;
  Dirty[I] = 1;
  unsigned S = CG->sccOfIndex(I);
  DirtySccs.insert({CG->waveOf(S), S});
  return true;
}

FunctionVRPResult InterprocDriver::analyzeOne(const Function &F,
                                              const PropagationContext &Ctx) {
  // The persistent cache consults its frozen on-disk snapshot before
  // running the engine. Fault-injected runs bypass it entirely (injected
  // corruption must never be served back or persisted) and so do traced
  // runs (a hit would silently skip the trace events the user asked for).
  std::string Key;
  if (UsePCache) {
    Key = PersistentCache::makeKey(F, Opts, Ctx);
    FunctionVRPResult Restored;
    std::string StoredBytes;
    if (PCache->lookup(Key, F, Restored, &StoredBytes)) {
      if (!PCache->verifyMode()) {
        // Replay the engine's one analysis-memo touch (Propagation.cpp
        // reads its DFS numbering through the cache exactly once per
        // run) so AnalysisCache counters are identical cold vs. warm.
        if (Cache)
          Cache->dfs(F);
        return Restored;
      }
      // Verify mode: re-analyze and compare bytes; the fresh result is
      // used either way, so a divergent store cannot taint the run.
      FunctionVRPResult Fresh = propagateRanges(F, Opts, Ctx);
      if (PersistentCache::serialize(Fresh) != StoredBytes)
        PCache->noteDivergence();
      return Fresh;
    }
  }
  FunctionVRPResult R = propagateRanges(F, Opts, Ctx);
  if (UsePCache && !R.Degraded)
    PCache->insert(Key, R);
  return R;
}

InterprocDriver::SccOutcome
InterprocDriver::analyzeScc(const std::vector<unsigned> &Members,
                            bool Recursive) {
  SccOutcome Out;
  RangeStats Scratch;
  RangeOps Ops(Opts, Scratch);

  // Intra-SCC return overlay: recursive members read each other's
  // current-iteration return ranges through it; everything outside the
  // SCC resolves through the (frozen for this wave) module table.
  std::map<const Function *, ValueRange> Overlay;

  PropagationContext Ctx;
  Ctx.ParamRange = [this](const Param *P) {
    auto It = ParamTable.find(P);
    return It == ParamTable.end() ? ValueRange::bottom() : It->second;
  };
  Ctx.CallResultRange = [this, &Overlay](const CallInst *Call) {
    auto O = Overlay.find(Call->callee());
    if (O != Overlay.end())
      return O->second;
    auto It = ReturnTable.find(Call->callee());
    return It == ReturnTable.end() ? ValueRange::bottom() : It->second;
  };
  Ctx.Cache = Cache;

  if (!Recursive) {
    for (unsigned I : Members) {
      FunctionVRPResult R = analyzeOne(*Fns[I], Ctx);
      ValueRange Ret = computeReturnRange(*Fns[I], R, Ops);
      Out.FnResults.emplace_back(I, std::move(R));
      Out.Returns.emplace_back(I, Ret);
    }
    return Out;
  }

  // Recursive SCC: iterate the members (in module order) against the
  // local overlay until their return ranges stabilize or the iteration
  // cap. Parameters of recursive functions are pinned ⊥ (paper §3.7), so
  // only return ranges circulate inside the cycle. The overlay always
  // starts from ⊥ — never from the module table — so the outcome is a
  // function of the frozen external tables alone. Seeding from the
  // previous sweep's returns would make the (capped) iteration
  // path-dependent, and cold vs. incremental runs would then disagree
  // bitwise on recursive SCCs inside the re-analysis cone.
  for (unsigned I : Members)
    Overlay[Fns[I]] = ValueRange::bottom();
  std::map<unsigned, FunctionVRPResult> Current;
  for (unsigned Iter = 0; Iter < SccIterationLimit; ++Iter) {
    for (unsigned I : Members)
      Current[I] = analyzeOne(*Fns[I], Ctx);
    bool Stable = true;
    for (unsigned I : Members) {
      ValueRange Ret = computeReturnRange(*Fns[I], Current[I], Ops);
      // Bitwise stabilization (tolerance 0): the default 1e-9 probability
      // tolerance would let the iteration settle on path-dependent
      // ULP-different values, breaking cold-vs-incremental identity.
      if (!Overlay[Fns[I]].equals(Ret, 0.0)) {
        Overlay[Fns[I]] = Ret;
        Stable = false;
      }
    }
    if (Stable)
      break;
  }
  for (unsigned I : Members) {
    Out.Returns.emplace_back(I, Overlay[Fns[I]]);
    Out.FnResults.emplace_back(I, std::move(Current[I]));
  }
  return Out;
}

unsigned InterprocDriver::runSweep() {
  AnalyzedThisSweep.clear();
  unsigned Analyzed = 0;
  struct Job {
    unsigned Scc;
    std::vector<unsigned> Members;
    bool Recursive;
  };
  while (!DirtySccs.empty()) {
    // Pop the lowest wave with dirty work. All of it is mutually
    // independent, so it forms one parallel batch; anything the batch
    // dirties lands in a strictly later wave of this same sweep.
    unsigned Wave = DirtySccs.begin()->first;
    std::vector<Job> Jobs;
    while (!DirtySccs.empty() && DirtySccs.begin()->first == Wave) {
      unsigned S = DirtySccs.begin()->second;
      DirtySccs.erase(DirtySccs.begin());
      const auto &Component = CG->sccsBottomUp()[S];
      bool Recursive =
          Component.size() > 1 || CG->isRecursive(Component.front());
      std::vector<unsigned> Members;
      Members.reserve(Component.size());
      if (Recursive) {
        // Members of a cycle are coupled through the overlay; a dirty
        // one re-runs them all.
        for (const Function *F : Component)
          Members.push_back(CG->indexOf(F));
        std::sort(Members.begin(), Members.end());
      } else {
        unsigned I = CG->indexOf(Component.front());
        if (!Dirty[I])
          continue;
        Members.push_back(I);
      }
      Jobs.push_back({S, std::move(Members), Recursive});
    }
    if (Jobs.empty())
      continue;

    // Satellite fix: the deadline (and its injected fault clock) is
    // probed only here, on the coordinating thread, so which functions
    // degrade depends on which boundary expired — never on the schedule.
    probeDeadline();
    if (DeadlineBlown)
      break;

    std::vector<SccOutcome> Outcomes;
    if (Pool && Pool->threadCount() > 1 && Jobs.size() > 1) {
      Outcomes = Pool->parallelMap<SccOutcome>(Jobs.size(), [&](size_t J) {
        return analyzeScc(Jobs[J].Members, Jobs[J].Recursive);
      });
    } else {
      Outcomes.reserve(Jobs.size());
      for (const Job &J : Jobs)
        Outcomes.push_back(analyzeScc(J.Members, J.Recursive));
    }

    // Barrier merge in SCC index order (the order Jobs were popped).
    for (size_t JI = 0; JI < Jobs.size(); ++JI) {
      for (auto &Slot : Outcomes[JI].FnResults) {
        unsigned I = Slot.first;
        Results[I] = std::move(Slot.second);
        HasResult[I] = 1;
        Dirty[I] = 0;
        if (AnalysesLeft[I] > 0)
          --AnalysesLeft[I];
        EverAnalyzed[I] = 1;
        AnalyzedThisSweep.push_back(I);
        ++Analyzed;
      }
      for (const auto &RetEntry : Outcomes[JI].Returns) {
        const Function *F = Fns[RetEntry.first];
        const ValueRange &Ret = RetEntry.second;
        auto It = ReturnTable.find(F);
        // Bitwise change detection — see the overlay stabilization note.
        bool Changed = It == ReturnTable.end()
                           ? !Ret.isBottom()
                           : !It->second.equals(Ret, 0.0);
        if (!Changed)
          continue;
        ReturnTable[F] = Ret;
        // Callers sit in strictly later waves (intra-SCC edges were
        // already iterated locally): dirty them for this same sweep.
        for (const CallInst *Site : CG->callerSitesOf(F)) {
          unsigned CallerIdx = CG->indexOf(Site->function());
          if (CG->sccOfIndex(CallerIdx) == Jobs[JI].Scc)
            continue;
          markDirty(CallerIdx);
        }
      }
    }
  }
  if (DeadlineBlown)
    degradeRemaining();
  return Analyzed;
}

void InterprocDriver::refreshParams() {
  if (AnalyzedThisSweep.empty())
    return;
  RangeStats Scratch;
  RangeOps Ops(Opts, Scratch);
  // Only the callees of just-analyzed functions can have a changed jump
  // function; everything else's merge inputs are untouched.
  std::set<unsigned> Targets;
  for (unsigned I : AnalyzedThisSweep)
    for (const CallInst *Call : CG->callSites(Fns[I]))
      Targets.insert(CG->indexOf(Call->callee()));
  auto ResultOf = [this](const Function *F) -> const FunctionVRPResult * {
    unsigned I = CG->indexOf(F);
    return HasResult[I] ? &Results[I] : nullptr;
  };
  for (unsigned T : Targets) {
    const Function *F = Fns[T];
    if (F->numParams() == 0)
      continue;
    bool Recursive = CG->isRecursiveIndex(T);
    bool FnChanged = false;
    for (unsigned PI = 0; PI < F->numParams(); ++PI) {
      const Param *P = F->param(PI);
      ValueRange Merged = Recursive
                              ? ValueRange::bottom()
                              : computeParamRange(F, PI, *CG, ResultOf, Ops);
      auto It = ParamTable.find(P);
      // Bitwise change detection — see the overlay stabilization note.
      bool Changed = It == ParamTable.end()
                         ? !Merged.isBottom()
                         : !It->second.equals(Merged, 0.0);
      if (Changed) {
        ParamTable[P] = Merged;
        FnChanged = true;
      }
    }
    if (FnChanged)
      markDirty(T);
  }
}

void InterprocDriver::sweepLoop() {
  while (!DirtySccs.empty()) {
    runSweep();
    ++Sweeps;
    if (DeadlineBlown || !Opts.Interprocedural)
      break;
    refreshParams();
  }
}

void InterprocDriver::degradeRemaining() {
  // Deadline blown at a wave boundary: every function not yet analyzed
  // this run keeps its previous result if it has one (incremental mode),
  // else degrades to the manufactured ⊥ result — in module order, so the
  // degraded set is reproducible for a given boundary.
  for (unsigned I = 0; I < Fns.size(); ++I) {
    if (!HasResult[I]) {
      Results[I] = degradedResult(*Fns[I]);
      HasResult[I] = 1;
    }
    Dirty[I] = 0;
  }
  DirtySccs.clear();
}

void InterprocDriver::runIntraprocedural() {
  // No cross-function information: one flat fan-out, the whole module a
  // single wave (the deadline is probed once at its boundary).
  PropagationContext Ctx;
  Ctx.ParamRange = [](const Param *) { return ValueRange::bottom(); };
  Ctx.CallResultRange = [](const CallInst *) { return ValueRange::bottom(); };
  Ctx.Cache = Cache;
  probeDeadline();
  if (DeadlineBlown) {
    degradeRemaining();
    Sweeps = 1;
    return;
  }
  auto AnalyzeSlot = [&](size_t I) { return analyzeOne(*Fns[I], Ctx); };
  std::vector<FunctionVRPResult> Out;
  if (Pool && Pool->threadCount() > 1) {
    Out = Pool->parallelMap<FunctionVRPResult>(Fns.size(), AnalyzeSlot);
  } else {
    Out.reserve(Fns.size());
    for (size_t I = 0; I < Fns.size(); ++I)
      Out.push_back(AnalyzeSlot(I));
  }
  for (unsigned I = 0; I < Fns.size(); ++I) {
    Results[I] = std::move(Out[I]);
    HasResult[I] = 1;
    Dirty[I] = 0;
    EverAnalyzed[I] = 1;
  }
  DirtySccs.clear();
  Sweeps = 1;
}

unsigned InterprocDriver::cloneDivergentCallees() {
  struct CloneJob {
    const Function *Callee;
    std::vector<const CallInst *> Sites;
  };
  std::vector<CloneJob> Jobs;
  auto ResultOf = [this](const Function *F) -> const FunctionVRPResult * {
    unsigned I = CG->indexOf(F);
    return HasResult[I] ? &Results[I] : nullptr;
  };

  for (const Function *F : Fns) {
    if (F->numParams() == 0 || CG->isRecursive(F))
      continue;
    std::vector<const CallInst *> Sites = CG->callersOf(F);
    if (Sites.size() < 2 || Sites.size() > 4)
      continue;
    // Divergent when some parameter's argument ranges differ between two
    // sites and both are informative (non-⊥).
    bool Divergent = false;
    for (unsigned PI = 0; PI < F->numParams() && !Divergent; ++PI) {
      ValueRange FirstSeen;
      bool Any = false;
      for (const CallInst *Call : Sites) {
        const FunctionVRPResult *CallerResult = ResultOf(Call->function());
        if (!CallerResult)
          continue;
        ValueRange Arg =
            sanitizeForCallee(CallerResult->rangeOf(Call->arg(PI)));
        if (Arg.isBottom())
          continue;
        if (!Any) {
          FirstSeen = Arg;
          Any = true;
        } else if (!FirstSeen.equals(Arg)) {
          Divergent = true;
        }
      }
    }
    if (Divergent)
      Jobs.push_back({F, std::move(Sites)});
  }

  unsigned NumClones = 0;
  for (const CloneJob &Job : Jobs) {
    // One clone per extra call site; the first site keeps the original.
    for (size_t S = 1; S < Job.Sites.size(); ++S) {
      Function *Clone =
          cloneFunction(M, *Job.Callee,
                        Job.Callee->name() + ".clone" +
                            std::to_string(NumClones));
      // Retarget this call site. CallInst stores the callee outside the
      // operand list, so a targeted mutation is required.
      const_cast<CallInst *>(Job.Sites[S])->setCallee(Clone);
      // The caller's body changed; its memoized analyses are stale.
      if (Cache)
        Cache->invalidate(Job.Sites[S]->function());
      ++NumClones;
    }
  }
  return NumClones;
}

ModuleVRPResult InterprocDriver::finalize() {
  ModuleVRPResult Result;
  Result.Rounds = std::max(Sweeps, 1u);
  Result.Waves = CG ? CG->numWaves() : 0;
  Result.FunctionsCloned = Cloned;
  for (unsigned I = 0; I < Fns.size(); ++I) {
    assert(HasResult[I] && "scheduler left a function without a result");
    Result.Total += Results[I].Stats;
    if (Results[I].Degraded)
      ++Result.FunctionsDegraded;
    if (EverAnalyzed[I])
      Result.Reanalyzed.push_back(Fns[I]);
    Result.PerFunction.emplace(Fns[I], std::move(Results[I]));
  }
  Result.FunctionsReanalyzed =
      static_cast<unsigned>(Result.Reanalyzed.size());
  telemetry::count(telemetry::Counter::InterprocSweeps, Result.Rounds);
  telemetry::count(telemetry::Counter::InterprocWaves, Result.Waves);
  telemetry::count(telemetry::Counter::InterprocFunctionsReanalyzed,
                   Result.FunctionsReanalyzed);
  return Result;
}

ModuleVRPResult InterprocDriver::run() {
  initState();
  if (!Opts.Interprocedural) {
    runIntraprocedural();
    return finalize();
  }
  for (unsigned I = 0; I < Fns.size(); ++I)
    markDirty(I);
  sweepLoop();

  if (Opts.EnableCloning && !DeadlineBlown) {
    unsigned NumClones = cloneDivergentCallees();
    if (NumClones > 0) {
      // The module grew and call sites were retargeted: rebuild the
      // schedule and re-run from scratch (sweep count accumulates).
      initState();
      Cloned = NumClones;
      for (unsigned I = 0; I < Fns.size(); ++I)
        markDirty(I);
      sweepLoop();
    }
  }
  return finalize();
}

ModuleVRPResult
InterprocDriver::runIncremental(const Module &PrevModule,
                                const ModuleVRPResult &Previous) {
  initState();

  // With alias ranges on, a function's load results depend on module-
  // level facts outside its own IR text — writer exclusivity and global
  // initializers (analysis/AliasAnalysis.h) — so the fingerprint folds
  // in the alias environment: a store added in *another* function must
  // invalidate this one.
  auto fingerprint = [&](const Function &F) {
    return store::fnv1a64(irText(F) + (Opts.EnableAliasRanges
                                           ? AliasInfo::environmentText(F)
                                           : std::string()));
  };
  std::map<std::string, const Function *> PrevByName;
  std::map<std::string, uint64_t> PrevHashByName;
  for (const auto &PF : PrevModule.functions()) {
    PrevByName.emplace(PF->name(), PF.get());
    PrevHashByName.emplace(PF->name(), fingerprint(*PF));
  }

  // Changed-function detection by FNV-1a content hash of the canonical
  // IR text (the same fingerprint family PersistentCache keys on): each
  // side is rendered and hashed exactly once, and unchanged functions
  // are matched hash-to-hash with no per-function text diff. A function
  // whose hash is unchanged starts from its previous result, rebound to
  // this module's pointers through the pointer-free serialization — a
  // bitwise reuse (SccSchedulerTest asserts cold-vs-incremental
  // identity).
  unsigned Reused = 0;
  for (unsigned I = 0; I < Fns.size(); ++I) {
    const Function *F = Fns[I];
    auto It = PrevByName.find(F->name());
    const FunctionVRPResult *PR =
        It == PrevByName.end() ? nullptr : Previous.forFunction(It->second);
    bool Changed = true;
    if (PR && !PR->Degraded && fingerprint(*F) == PrevHashByName[F->name()]) {
      FunctionVRPResult Rebound;
      if (PersistentCache::deserialize(PersistentCache::serialize(*PR), *F,
                                       Rebound)) {
        Results[I] = std::move(Rebound);
        HasResult[I] = 1;
        Changed = false;
        ++Reused;
      }
    }
    if (Changed)
      markDirty(I);
  }
  telemetry::count(telemetry::Counter::IncrementalFunctionsReused, Reused);

  // Seed the interprocedural tables with the previous run's converged
  // state, translated to this module by function name and parameter
  // index. Table entries never carry symbolic bounds (sanitizeForCallee),
  // so the ranges themselves are safe to carry across modules.
  if (Opts.Interprocedural) {
    CallGraph PrevCG(PrevModule);
    RangeStats Scratch;
    RangeOps Ops(Opts, Scratch);
    std::map<std::string, const Function *> NewByName;
    for (const Function *F : Fns)
      NewByName.emplace(F->name(), F);
    auto PrevResultOf =
        [&Previous](const Function *F) -> const FunctionVRPResult * {
      return Previous.forFunction(F);
    };
    for (const auto &PF : PrevModule.functions()) {
      auto NewIt = NewByName.find(PF->name());
      if (NewIt == NewByName.end())
        continue;
      const Function *NewF = NewIt->second;
      const FunctionVRPResult *PR = Previous.forFunction(PF.get());
      if (PR) {
        ValueRange Ret = computeReturnRange(*PF, *PR, Ops);
        if (!Ret.isBottom())
          ReturnTable[NewF] = Ret;
      }
      if (!PrevCG.isRecursive(PF.get())) {
        unsigned NumParams =
            std::min(PF->numParams(), NewF->numParams());
        for (unsigned PI = 0; PI < NumParams; ++PI) {
          ValueRange Merged =
              computeParamRange(PF.get(), PI, PrevCG, PrevResultOf, Ops);
          if (!Merged.isBottom())
            ParamTable[NewF->param(PI)] = Merged;
        }
      }
    }
  }

  sweepLoop();
  return finalize();
}

namespace {

/// Fault site "unsound-range": one shouldFail probe per function that
/// HAS a corruptible range, on the coordinating thread in module order,
/// so a spec like "unsound-range@bench:0" corrupts the same function at
/// any thread count — and never no-ops on a branch-free helper. The
/// corruption leaves predictions intact — only the soundness sentinel
/// can tell.
void applyUnsoundRangeFault(const Module &M, ModuleVRPResult &Result) {
  if (!fault::armed())
    return;
  for (const auto &F : M.functions()) {
    auto It = Result.PerFunction.find(F.get());
    if (It == Result.PerFunction.end() ||
        !audit::canCorruptRange(*F, It->second))
      continue;
    if (fault::shouldFail("unsound-range"))
      audit::corruptRangeForTesting(*F, It->second);
  }
}

} // namespace

ModuleVRPResult vrp::runModuleVRP(Module &M, const VRPOptions &Opts,
                                  AnalysisCache *Cache,
                                  PersistentCache *PCache) {
  telemetry::ScopedTimer T(telemetry::Timer::Propagation);
  unsigned Threads = ThreadPool::resolveThreadCount(Opts.Threads);
  ModuleVRPResult Result;
  if (Threads > 1 && M.functions().size() > 1) {
    ThreadPool Pool(Threads);
    Result = InterprocDriver(M, Opts, Cache, PCache, &Pool).run();
  } else {
    Result = InterprocDriver(M, Opts, Cache, PCache, nullptr).run();
  }
  applyUnsoundRangeFault(M, Result);
  return Result;
}

ModuleVRPResult vrp::runModuleVRP(const Module &M, const VRPOptions &Opts,
                                  AnalysisCache *Cache,
                                  PersistentCache *PCache) {
  assert(!(Opts.Interprocedural && Opts.EnableCloning) &&
         "cloning mutates the module; use the non-const overload");
  return runModuleVRP(const_cast<Module &>(M), Opts, Cache, PCache);
}

ModuleVRPResult vrp::runModuleVRPIncremental(const Module &M,
                                             const VRPOptions &Opts,
                                             const Module &PrevModule,
                                             const ModuleVRPResult &Previous,
                                             AnalysisCache *Cache,
                                             PersistentCache *PCache) {
  assert(!Opts.EnableCloning &&
         "incremental re-analysis never mutates the module");
  telemetry::ScopedTimer T(telemetry::Timer::Propagation);
  unsigned Threads = ThreadPool::resolveThreadCount(Opts.Threads);
  // Never mutated: cloning is excluded above, and nothing else writes.
  Module &MM = const_cast<Module &>(M);
  ModuleVRPResult Result;
  if (Threads > 1 && M.functions().size() > 1) {
    ThreadPool Pool(Threads);
    Result = InterprocDriver(MM, Opts, Cache, PCache, &Pool)
                 .runIncremental(PrevModule, Previous);
  } else {
    Result = InterprocDriver(MM, Opts, Cache, PCache, nullptr)
                 .runIncremental(PrevModule, Previous);
  }
  applyUnsoundRangeFault(M, Result);
  return Result;
}
