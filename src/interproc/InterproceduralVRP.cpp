//===- interproc/InterproceduralVRP.cpp - Whole-program VRP ----------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "interproc/InterproceduralVRP.h"

#include "analysis/AnalysisCache.h"
#include "analysis/CallGraph.h"
#include "analysis/PersistentCache.h"
#include "interproc/FunctionCloning.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "vrp/Audit.h"

#include <cassert>
#include <chrono>
#include <optional>

using namespace vrp;

namespace {

/// Strips caller-scope symbolic bounds from a range crossing a call
/// boundary: a bound like `n+2` is meaningless inside the callee.
ValueRange sanitizeForCallee(const ValueRange &VR) {
  if (!VR.isRanges() || !VR.hasSymbolicBounds())
    return VR;
  return ValueRange::bottom();
}

/// Interprocedural driver state: parameter and return range tables,
/// refined over rounds.
class InterprocDriver {
public:
  InterprocDriver(Module &M, const VRPOptions &Opts, AnalysisCache *Cache,
                  PersistentCache *PCache, ThreadPool *Pool)
      : M(M), Opts(Opts), Cache(Cache), PCache(PCache), Pool(Pool) {
    if (Opts.Budget.DeadlineMs != 0)
      Deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(Opts.Budget.DeadlineMs);
  }

  ModuleVRPResult run();

private:
  void analyzeAll(ModuleVRPResult &Result);
  bool refreshTables(const ModuleVRPResult &Result, const CallGraph &CG);
  unsigned cloneDivergentCallees(ModuleVRPResult &Result);

  bool pastDeadline() const {
    return Deadline && std::chrono::steady_clock::now() > *Deadline;
  }

  /// A function-scope ⊥ result: what propagateRanges produces when its
  /// budget runs out, manufactured here when the module deadline leaves
  /// no time to analyze \p F at all.
  static FunctionVRPResult degradedResult(const Function &F) {
    // The engine counts degradations it produces itself; this result is
    // manufactured without ever entering the engine, so count it here.
    telemetry::count(telemetry::Counter::BudgetDegradations);
    FunctionVRPResult R;
    R.F = &F;
    R.Degraded = true;
    R.DegradeCause = Status::failure(
        ErrorCategory::BudgetExceeded, "deadline",
        "module deadline expired before @" + F.name() + " was analyzed");
    R.BlockProb.assign(F.numBlocks(), 1.0);
    for (const auto &B : F.blocks())
      if (const auto *CBr = dyn_cast_or_null<CondBrInst>(B->terminator()))
        R.Branches[CBr] = BranchPrediction{0.5, false, true};
    return R;
  }

  Module &M;
  const VRPOptions &Opts;
  AnalysisCache *Cache;    ///< May be null (no memoization).
  PersistentCache *PCache; ///< May be null (no durable result cache).
  ThreadPool *Pool;        ///< May be null (serial per-function phase).
  std::optional<std::chrono::steady_clock::time_point> Deadline;
  /// Param value -> merged jump-function range.
  std::map<const Param *, ValueRange> ParamTable;
  /// Function -> merged return range.
  std::map<const Function *, ValueRange> ReturnTable;
};

} // namespace

void InterprocDriver::analyzeAll(ModuleVRPResult &Result) {
  PropagationContext Ctx;
  Ctx.ParamRange = [this](const Param *P) {
    auto It = ParamTable.find(P);
    return It == ParamTable.end() ? ValueRange::bottom() : It->second;
  };
  Ctx.CallResultRange = [this](const CallInst *Call) {
    auto It = ReturnTable.find(Call->callee());
    return It == ReturnTable.end() ? ValueRange::bottom() : It->second;
  };
  Ctx.Cache = Cache;

  // The intraprocedural phase: every function is independent given the
  // (frozen-for-this-round) Param/Return tables, so it fans out across the
  // pool. Results are merged in function order afterwards, making the
  // outcome identical to the serial loop.
  std::vector<const Function *> Fns;
  Fns.reserve(M.functions().size());
  for (const auto &F : M.functions())
    Fns.push_back(F.get());

  // Deadline degradation: a function whose analysis would start past the
  // deadline gets the same ⊥ result a blown step budget produces, so the
  // module still yields a complete (if partly heuristic) prediction map.
  //
  // The persistent cache consults its frozen on-disk snapshot before
  // running the engine. Fault-injected runs bypass it entirely (injected
  // corruption must never be served back or persisted) and so do traced
  // runs (a hit would silently skip the trace events the user asked for).
  const bool UsePCache = PCache && !fault::armed() && !Opts.Trace;
  auto analyzeOne = [&](const Function &F) {
    if (pastDeadline())
      return degradedResult(F);
    std::string Key;
    if (UsePCache) {
      Key = PersistentCache::makeKey(F, Opts, Ctx);
      FunctionVRPResult Restored;
      std::string StoredBytes;
      if (PCache->lookup(Key, F, Restored, &StoredBytes)) {
        if (!PCache->verifyMode()) {
          // Replay the engine's one analysis-memo touch (Propagation.cpp
          // reads its DFS numbering through the cache exactly once per
          // run) so AnalysisCache counters are identical cold vs. warm.
          if (Cache)
            Cache->dfs(F);
          return Restored;
        }
        // Verify mode: re-analyze and compare bytes; the fresh result is
        // used either way, so a divergent store cannot taint the run.
        FunctionVRPResult Fresh = propagateRanges(F, Opts, Ctx);
        if (PersistentCache::serialize(Fresh) != StoredBytes)
          PCache->noteDivergence();
        return Fresh;
      }
    }
    FunctionVRPResult R = propagateRanges(F, Opts, Ctx);
    if (UsePCache && !R.Degraded)
      PCache->insert(Key, R);
    return R;
  };

  std::vector<FunctionVRPResult> Results;
  if (Pool && Pool->threadCount() > 1) {
    Results = Pool->parallelMap<FunctionVRPResult>(
        Fns.size(), [&](size_t I) { return analyzeOne(*Fns[I]); });
  } else {
    Results.reserve(Fns.size());
    for (const Function *F : Fns)
      Results.push_back(analyzeOne(*F));
  }

  Result.PerFunction.clear();
  Result.Total = RangeStats();
  Result.FunctionsDegraded = 0;
  for (size_t I = 0; I < Fns.size(); ++I) {
    Result.Total += Results[I].Stats;
    if (Results[I].Degraded)
      ++Result.FunctionsDegraded;
    Result.PerFunction.emplace(Fns[I], std::move(Results[I]));
  }
}

bool InterprocDriver::refreshTables(const ModuleVRPResult &Result,
                                    const CallGraph &CG) {
  bool Changed = false;
  VRPOptions LocalOpts = Opts;
  RangeStats Scratch;
  RangeOps Ops(LocalOpts, Scratch);

  // Jump functions: merge argument ranges across call sites, weighted by
  // the call block's reach probability in the caller.
  for (const auto &F : M.functions()) {
    bool Recursive = CG.isRecursive(F.get());
    for (unsigned PI = 0; PI < F->numParams(); ++PI) {
      const Param *P = F->param(PI);
      ValueRange Merged = ValueRange::bottom();
      if (!Recursive) {
        std::vector<std::pair<ValueRange, double>> Entries;
        for (const CallInst *Call : CG.callersOf(F.get())) {
          const FunctionVRPResult *CallerResult =
              Result.forFunction(Call->function());
          if (!CallerResult)
            continue;
          double Weight =
              CallerResult->BlockProb[Call->parent()->id()];
          ValueRange Arg = sanitizeForCallee(
              CallerResult->rangeOf(Call->arg(PI)));
          Entries.push_back({Arg, std::max(Weight, 1e-6)});
        }
        if (Entries.empty()) {
          // No callers: entry point or dead function; parameters unknown.
          Merged = ValueRange::bottom();
        } else {
          Merged = Ops.meetWeighted(Entries);
          if (Merged.isTop())
            Merged = ValueRange::bottom();
        }
      }
      auto It = ParamTable.find(P);
      if (It == ParamTable.end() || !It->second.equals(Merged)) {
        ParamTable[P] = Merged;
        Changed = true;
      }
    }
  }

  // Return functions: merge `ret` operand ranges weighted by reach
  // probability of the returning block.
  for (const auto &F : M.functions()) {
    const FunctionVRPResult *FR = Result.forFunction(F.get());
    if (!FR || F->returnType() == IRType::Void)
      continue;
    std::vector<std::pair<ValueRange, double>> Entries;
    for (const auto &B : F->blocks()) {
      const auto *Ret = dyn_cast_or_null<RetInst>(B->terminator());
      if (!Ret || !Ret->hasValue())
        continue;
      ValueRange VR = sanitizeForCallee(FR->rangeOf(Ret->value()));
      Entries.push_back({VR, std::max(FR->BlockProb[B->id()], 1e-6)});
    }
    ValueRange Merged =
        Entries.empty() ? ValueRange::bottom() : Ops.meetWeighted(Entries);
    if (Merged.isTop())
      Merged = ValueRange::bottom();
    auto It = ReturnTable.find(F.get());
    if (It == ReturnTable.end() || !It->second.equals(Merged)) {
      ReturnTable[F.get()] = Merged;
      Changed = true;
    }
  }
  return Changed;
}

unsigned InterprocDriver::cloneDivergentCallees(ModuleVRPResult &Result) {
  CallGraph CG(M);
  struct CloneJob {
    const Function *Callee;
    std::vector<const CallInst *> Sites;
  };
  std::vector<CloneJob> Jobs;

  for (const auto &F : M.functions()) {
    if (F->numParams() == 0 || CG.isRecursive(F.get()))
      continue;
    std::vector<const CallInst *> Sites = CG.callersOf(F.get());
    if (Sites.size() < 2 || Sites.size() > 4)
      continue;
    // Divergent when some parameter's argument ranges differ between two
    // sites and both are informative (non-⊥).
    bool Divergent = false;
    for (unsigned PI = 0; PI < F->numParams() && !Divergent; ++PI) {
      ValueRange FirstSeen;
      bool Any = false;
      for (const CallInst *Call : Sites) {
        const FunctionVRPResult *CallerResult =
            Result.forFunction(Call->function());
        if (!CallerResult)
          continue;
        ValueRange Arg =
            sanitizeForCallee(CallerResult->rangeOf(Call->arg(PI)));
        if (Arg.isBottom())
          continue;
        if (!Any) {
          FirstSeen = Arg;
          Any = true;
        } else if (!FirstSeen.equals(Arg)) {
          Divergent = true;
        }
      }
    }
    if (Divergent)
      Jobs.push_back({F.get(), std::move(Sites)});
  }

  unsigned NumClones = 0;
  for (const CloneJob &Job : Jobs) {
    // One clone per extra call site; the first site keeps the original.
    for (size_t S = 1; S < Job.Sites.size(); ++S) {
      Function *Clone =
          cloneFunction(M, *Job.Callee,
                        Job.Callee->name() + ".clone" +
                            std::to_string(NumClones));
      // Retarget this call site. CallInst stores the callee outside the
      // operand list, so a targeted mutation is required.
      const_cast<CallInst *>(Job.Sites[S])->setCallee(Clone);
      // The caller's body changed; its memoized analyses are stale.
      if (Cache)
        Cache->invalidate(Job.Sites[S]->function());
      ++NumClones;
    }
  }
  return NumClones;
}

ModuleVRPResult InterprocDriver::run() {
  ModuleVRPResult Result;
  analyzeAll(Result);
  Result.Rounds = 1;
  if (!Opts.Interprocedural)
    return Result;

  if (Opts.EnableCloning) {
    Result.FunctionsCloned = cloneDivergentCallees(Result);
    if (Result.FunctionsCloned > 0)
      analyzeAll(Result);
  }

  const unsigned MaxRounds = 4;
  CallGraph CG(M);
  for (unsigned Round = 1; Round < MaxRounds; ++Round) {
    // Out of time: keep the rounds already computed rather than starting
    // a refinement pass that would only produce degraded functions.
    if (pastDeadline())
      break;
    if (!refreshTables(Result, CG))
      break;
    analyzeAll(Result);
    ++Result.Rounds;
  }
  return Result;
}

ModuleVRPResult vrp::runModuleVRP(Module &M, const VRPOptions &Opts,
                                  AnalysisCache *Cache,
                                  PersistentCache *PCache) {
  telemetry::ScopedTimer T(telemetry::Timer::Propagation);
  unsigned Threads = ThreadPool::resolveThreadCount(Opts.Threads);
  ModuleVRPResult Result;
  if (Threads > 1 && M.functions().size() > 1) {
    ThreadPool Pool(Threads);
    Result = InterprocDriver(M, Opts, Cache, PCache, &Pool).run();
  } else {
    Result = InterprocDriver(M, Opts, Cache, PCache, nullptr).run();
  }
  // Fault site "unsound-range": one shouldFail probe per function that
  // HAS a corruptible range, on the coordinating thread in module order,
  // so a spec like "unsound-range@bench:0" corrupts the same function at
  // any thread count — and never no-ops on a branch-free helper. The
  // corruption leaves predictions intact — only the soundness sentinel
  // can tell.
  if (fault::armed()) {
    for (const auto &F : M.functions()) {
      auto It = Result.PerFunction.find(F.get());
      if (It == Result.PerFunction.end() ||
          !audit::canCorruptRange(*F, It->second))
        continue;
      if (fault::shouldFail("unsound-range"))
        audit::corruptRangeForTesting(*F, It->second);
    }
  }
  return Result;
}

ModuleVRPResult vrp::runModuleVRP(const Module &M, const VRPOptions &Opts,
                                  AnalysisCache *Cache,
                                  PersistentCache *PCache) {
  assert(!(Opts.Interprocedural && Opts.EnableCloning) &&
         "cloning mutates the module; use the non-const overload");
  return runModuleVRP(const_cast<Module &>(M), Opts, Cache, PCache);
}
