//===- interproc/FunctionCloning.h - Procedure cloning ----------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Procedure cloning (paper §3.7, after [CooperHallKennedy92]): duplicates
/// a function so distinct call sites with significantly different argument
/// contexts each get their own copy, letting VRP specialize branch
/// predictions per context.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_INTERPROC_FUNCTIONCLONING_H
#define VRP_INTERPROC_FUNCTIONCLONING_H

#include "ir/Module.h"

namespace vrp {

/// Deep-copies \p Source into a new function named \p CloneName within the
/// same module. Local memory objects are duplicated; globals are shared.
/// Returns the clone.
Function *cloneFunction(Module &M, const Function &Source,
                        const std::string &CloneName);

} // namespace vrp

#endif // VRP_INTERPROC_FUNCTIONCLONING_H
