//===- benchsuite/ProgramsNumeric.cpp - Numeric suite (SPECfp92 analog) ---===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
// Nine numeric programs: dense linear algebra, stencils, integration,
// escape-time iteration and a fixed-grid threshold sweep. Control flow is
// dominated by integer loop counters — the structure behind the paper's
// observation that VRP is "significantly more accurate for numeric code".
// `sweep` adds float induction loops and calibration-table loads so the
// FP interval domain and the load-alias pass (docs/DOMAINS.md) have
// branches to predict.
//
//===----------------------------------------------------------------------===//

#include "benchsuite/Programs.h"

using namespace vrp;

namespace {

std::vector<BenchmarkProgram> buildNumericSuite() {
  std::vector<BenchmarkProgram> Suite;

  const std::string Rng = R"(
var seed = 1;
fn rnd() {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  return seed;
}
fn frnd(): float {
  return float(rnd() % 1000) / 1000.0;
}
)";

  //===------------------------------------------------------------------===//
  // matmul: dense float matrix multiply.
  //===------------------------------------------------------------------===//
  Suite.push_back({"matmul", true, Rng + R"(
var a[400]: float;
var b[400]: float;
var c[400]: float;
fn main() {
  seed = input();
  var n = input();
  for (var i = 0; i < n * n; i = i + 1) {
    a[i] = frnd();
    b[i] = frnd();
  }
  for (var i = 0; i < n; i = i + 1) {
    for (var j = 0; j < n; j = j + 1) {
      var sum = 0.0;
      for (var k = 0; k < n; k = k + 1) {
        sum = sum + a[i * n + k] * b[k * n + j];
      }
      c[i * n + j] = sum;
    }
  }
  var trace = 0.0;
  for (var i = 0; i < n; i = i + 1) {
    trace = trace + c[i * n + i];
  }
  print(trace);
  return int(trace);
}
)",
                   {3, 8},
                   {919191, 20}});

  //===------------------------------------------------------------------===//
  // jacobi: iterative 5-point stencil smoothing.
  //===------------------------------------------------------------------===//
  Suite.push_back({"jacobi", true, Rng + R"(
var u[1024]: float;
var v[1024]: float;
fn main() {
  seed = input();
  var n = input();
  var steps = input();
  for (var i = 0; i < n * n; i = i + 1) {
    u[i] = frnd();
  }
  for (var t = 0; t < steps; t = t + 1) {
    for (var y = 1; y < n - 1; y = y + 1) {
      for (var x = 1; x < n - 1; x = x + 1) {
        var idx = y * n + x;
        v[idx] = 0.25 * (u[idx - 1] + u[idx + 1] + u[idx - n] + u[idx + n]);
      }
    }
    for (var y = 1; y < n - 1; y = y + 1) {
      for (var x = 1; x < n - 1; x = x + 1) {
        u[y * n + x] = v[y * n + x];
      }
    }
  }
  var norm = 0.0;
  for (var i = 0; i < n * n; i = i + 1) {
    norm = norm + u[i] * u[i];
  }
  print(norm);
  return int(norm * 1000.0);
}
)",
                   {13, 10, 8},
                   {808080, 30, 20}});

  //===------------------------------------------------------------------===//
  // gauss: gaussian elimination with partial pivoting.
  //===------------------------------------------------------------------===//
  Suite.push_back({"gauss", true, Rng + R"(
var m[700]: float;
var rhs[28]: float;
var x[28]: float;
fn main() {
  seed = input();
  var n = input();
  for (var i = 0; i < n; i = i + 1) {
    for (var j = 0; j < n; j = j + 1) {
      m[i * n + j] = frnd() + 0.01;
    }
    m[i * n + i] = m[i * n + i] + float(n);
    rhs[i] = frnd();
  }
  for (var col = 0; col < n; col = col + 1) {
    var best = col;
    for (var r = col + 1; r < n; r = r + 1) {
      if (abs(m[r * n + col]) > abs(m[best * n + col])) {
        best = r;
      }
    }
    if (best != col) {
      for (var j = 0; j < n; j = j + 1) {
        var t = m[col * n + j];
        m[col * n + j] = m[best * n + j];
        m[best * n + j] = t;
      }
      var t2 = rhs[col];
      rhs[col] = rhs[best];
      rhs[best] = t2;
    }
    for (var r = col + 1; r < n; r = r + 1) {
      var factor = m[r * n + col] / m[col * n + col];
      for (var j = col; j < n; j = j + 1) {
        m[r * n + j] = m[r * n + j] - factor * m[col * n + j];
      }
      rhs[r] = rhs[r] - factor * rhs[col];
    }
  }
  for (var i = n - 1; i >= 0; i = i - 1) {
    var sum = rhs[i];
    for (var j = i + 1; j < n; j = j + 1) {
      sum = sum - m[i * n + j] * x[j];
    }
    x[i] = sum / m[i * n + i];
  }
  var checksum = 0.0;
  for (var i = 0; i < n; i = i + 1) {
    checksum = checksum + x[i];
  }
  print(checksum);
  return int(checksum * 1000.0);
}
)",
                   {29, 8},
                   {515151, 24}});

  //===------------------------------------------------------------------===//
  // poly: Horner evaluation of a fixed-degree polynomial over a grid.
  //===------------------------------------------------------------------===//
  Suite.push_back({"poly", true, Rng + R"(
var coeff[12]: float;
fn horner(x: float): float {
  var acc = 0.0;
  for (var i = 0; i < 12; i = i + 1) {
    acc = acc * x + coeff[i];
  }
  return acc;
}
fn main() {
  seed = input();
  var points = input();
  for (var i = 0; i < 12; i = i + 1) {
    coeff[i] = frnd() - 0.5;
  }
  var total = 0.0;
  var positive = 0;
  var crossings = 0;
  var peak = 0.0;
  var prev = horner(0.0);
  for (var p = 0; p < points; p = p + 1) {
    var x = float(p) / float(points);
    var y = horner(x);
    total = total + y;
    if (y > 0.0) {
      positive = positive + 1;
    }
    if ((prev > 0.0 && y <= 0.0) || (prev <= 0.0 && y > 0.0)) {
      crossings = crossings + 1;
    }
    if (abs(y) > peak) {
      peak = abs(y);
    }
    prev = y;
  }
  print(total);
  print(positive);
  print(crossings);
  print(peak);
  return positive;
}
)",
                   {41, 200},
                   {626262, 4000}});

  //===------------------------------------------------------------------===//
  // nbody: O(n^2) gravitational-style force accumulation.
  //===------------------------------------------------------------------===//
  Suite.push_back({"nbody", true, Rng + R"(
var px[32]: float;
var py[32]: float;
var vx[32]: float;
var vy[32]: float;
fn main() {
  seed = input();
  var n = input();
  var steps = input();
  for (var i = 0; i < n; i = i + 1) {
    px[i] = frnd() * 10.0;
    py[i] = frnd() * 10.0;
    vx[i] = 0.0;
    vy[i] = 0.0;
  }
  for (var t = 0; t < steps; t = t + 1) {
    for (var i = 0; i < n; i = i + 1) {
      var fx = 0.0;
      var fy = 0.0;
      for (var j = 0; j < n; j = j + 1) {
        if (j != i) {
          var dx = px[j] - px[i];
          var dy = py[j] - py[i];
          var d2 = dx * dx + dy * dy + 0.01;
          fx = fx + dx / d2;
          fy = fy + dy / d2;
        }
      }
      vx[i] = vx[i] + 0.001 * fx;
      vy[i] = vy[i] + 0.001 * fy;
    }
    for (var i = 0; i < n; i = i + 1) {
      px[i] = px[i] + vx[i];
      py[i] = py[i] + vy[i];
    }
  }
  var energy = 0.0;
  for (var i = 0; i < n; i = i + 1) {
    energy = energy + vx[i] * vx[i] + vy[i] * vy[i];
  }
  print(energy);
  return int(energy * 100000.0);
}
)",
                   {53, 10, 5},
                   {737373, 28, 10}});

  //===------------------------------------------------------------------===//
  // mandel: escape-time iteration (data-dependent inner loop bound).
  //===------------------------------------------------------------------===//
  Suite.push_back({"mandel", true, R"(
fn main() {
  var w = input();
  var h = input();
  var maxit = input();
  var inside = 0;
  var totaliters = 0;
  for (var py = 0; py < h; py = py + 1) {
    for (var px = 0; px < w; px = px + 1) {
      var cr = float(px) * 3.0 / float(w) - 2.0;
      var ci = float(py) * 2.0 / float(h) - 1.0;
      var zr = 0.0;
      var zi = 0.0;
      var it = 0;
      while (it < maxit && zr * zr + zi * zi <= 4.0) {
        var nzr = zr * zr - zi * zi + cr;
        zi = 2.0 * zr * zi + ci;
        zr = nzr;
        it = it + 1;
      }
      totaliters = totaliters + it;
      if (it == maxit) {
        inside = inside + 1;
      }
    }
  }
  print(inside);
  print(totaliters);
  return inside;
}
)",
                   {24, 16, 30},
                   {60, 40, 60}});

  //===------------------------------------------------------------------===//
  // simpson: composite Simpson integration of a rational polynomial.
  //===------------------------------------------------------------------===//
  Suite.push_back({"simpson", true, R"(
fn f(x: float): float {
  return (x * x * x - 2.0 * x + 1.0) / (x * x + 1.0);
}
fn main() {
  var n = input();
  if (n % 2 == 1) {
    n = n + 1;
  }
  var a = 0.0;
  var b = 2.0;
  var hstep = (b - a) / float(n);
  var sum = f(a) + f(b);
  var negative = 0;
  var biggest = 0.0;
  for (var i = 1; i < n; i = i + 1) {
    var x = a + float(i) * hstep;
    var y = f(x);
    if (i % 2 == 1) {
      sum = sum + 4.0 * y;
    } else {
      sum = sum + 2.0 * y;
    }
    if (y < 0.0) {
      negative = negative + 1;
    }
    if (abs(y) > biggest) {
      biggest = abs(y);
    }
  }
  // Compare against a coarse trapezoid estimate on a second pass.
  var trap = (f(a) + f(b)) / 2.0;
  for (var i = 1; i < n; i = i + 1) {
    trap = trap + f(a + float(i) * hstep);
  }
  trap = trap * hstep;
  var result = sum * hstep / 3.0;
  var gap = abs(result - trap);
  if (gap > 0.001) {
    print(1);
  } else {
    print(0);
  }
  print(result);
  print(negative);
  print(biggest);
  return int(result * 1000000.0);
}
)",
                   {500},
                   {10000}});

  //===------------------------------------------------------------------===//
  // spectral: FFT-style strided butterfly passes over a float array.
  //===------------------------------------------------------------------===//
  Suite.push_back({"spectral", true, Rng + R"(
var re[512]: float;
var im[512]: float;
fn main() {
  seed = input();
  var n = input();
  for (var i = 0; i < n; i = i + 1) {
    re[i] = frnd() - 0.5;
    im[i] = 0.0;
  }
  var span = 1;
  while (span < n) {
    var stride = span * 2;
    for (var start = 0; start < n; start = start + stride) {
      for (var k = 0; k < span; k = k + 1) {
        var i = start + k;
        var j = i + span;
        var w = float(k) / float(span);
        var tr = re[j] * (1.0 - w) - im[j] * w;
        var ti = re[j] * w + im[j] * (1.0 - w);
        var ur = re[i];
        var ui = im[i];
        re[i] = ur + tr;
        im[i] = ui + ti;
        re[j] = ur - tr;
        im[j] = ui - ti;
      }
    }
    span = stride;
  }
  var power = 0.0;
  for (var i = 0; i < n; i = i + 1) {
    power = power + re[i] * re[i] + im[i] * im[i];
  }
  print(power);
  return int(power);
}
)",
                   {67, 64},
                   {848484, 512}});

  //===------------------------------------------------------------------===//
  // sweep: fixed-grid float sweep with threshold classification. The
  // float induction variable has constant bounds and step, so the FP
  // derivation template produces a real interval for it, and the
  // calibration table is written only at constant indices, so the alias
  // pass resolves the loads (docs/DOMAINS.md worked examples).
  //===------------------------------------------------------------------===//
  Suite.push_back({"sweep", true, R"(
var scale = 1.5;
var calib[8]: float;
fn main() {
  var reps = input();
  calib[1] = 2.5;
  calib[5] = 0.25;
  var lows = 0;
  var spikes = 0;
  var area = 0.0;
  for (var t = 0; t < reps; t = t + 1) {
    for (var x = 0.0; x < 8.0; x = x + 0.0625) {
      var y = x * scale;
      if (x < 2.0) {
        lows = lows + 1;
      }
      if (y > 10.5) {
        spikes = spikes + 1;
      }
      area = area + y * 0.0625;
    }
  }
  var hot = calib[1];
  var cold = calib[3];
  if (hot > 0.5) {
    print(1);
  } else {
    print(0);
  }
  if (cold > 0.5) {
    print(1);
  } else {
    print(0);
  }
  print(area);
  print(lows);
  print(spikes);
  return lows + spikes;
}
)",
                   {2},
                   {40}});

  return Suite;
}

} // namespace

const std::vector<BenchmarkProgram> &vrp::numericSuite() {
  static const std::vector<BenchmarkProgram> Suite = buildNumericSuite();
  return Suite;
}
