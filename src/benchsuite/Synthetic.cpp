//===- benchsuite/Synthetic.cpp - Synthetic program generator --------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "benchsuite/Synthetic.h"

#include "support/RNG.h"

#include <algorithm>
#include <string>

using namespace vrp;

namespace {

/// Emits one function body. All scalar variables live in a pool declared
/// at the top of the function, so nested scopes never leak declarations.
class BodyEmitter {
public:
  BodyEmitter(std::string &Out, RNG &Rng, unsigned PoolSize)
      : Out(Out), Rng(Rng), PoolSize(PoolSize) {}

  void emitPoolDeclarations() {
    Out += "  var v0 = n + 1;\n  var v1 = m * 2;\n  var v2 = n - m;\n";
    for (unsigned I = 3; I < PoolSize; ++I)
      Out += "  var v" + std::to_string(I) + " = " +
             std::to_string(Rng.nextInRange(-20, 40)) + ";\n";
  }

  void emitStatements(unsigned Budget, unsigned Depth) {
    while (Budget > 0) {
      uint64_t Kind = Rng.nextBelow(10);
      if (Kind < 4 || Depth >= 3 || Budget < 3) {
        emitArithmetic(Depth);
        Budget -= 1;
      } else if (Kind < 7) {
        unsigned Inner =
            std::min(Budget - 1, 3u + static_cast<unsigned>(Rng.nextBelow(4)));
        emitLoop(Inner, Depth);
        Budget -= Inner + 1;
      } else {
        unsigned Inner =
            std::min(Budget - 1, 2u + static_cast<unsigned>(Rng.nextBelow(3)));
        emitBranch(Inner, Depth);
        Budget -= Inner + 1;
      }
    }
  }

private:
  void indent(unsigned Depth) { Out.append(2 * (Depth + 1), ' '); }

  std::string poolVar() {
    return "v" + std::to_string(Rng.nextBelow(PoolSize));
  }

  std::string scalarExpr() {
    static const char *Ops[] = {"+", "-", "*", "%"};
    std::string A = poolVar();
    const char *Op = Ops[Rng.nextBelow(4)];
    std::string B;
    if (Op == std::string("%"))
      B = std::to_string(2 + Rng.nextBelow(17)); // Keep divisors nonzero.
    else
      B = Rng.nextBelow(2) == 0 ? poolVar()
                                : std::to_string(1 + Rng.nextBelow(9));
    return A + " " + Op + " " + B;
  }

  void emitArithmetic(unsigned Depth) {
    indent(Depth);
    Out += poolVar() + " = " + scalarExpr() + ";\n";
  }

  void emitLoop(unsigned Budget, unsigned Depth) {
    std::string I = "i" + std::to_string(NextLoop++);
    std::string Bound = Rng.nextBelow(2) == 0
                            ? std::to_string(4 + Rng.nextBelow(60))
                            : "n";
    indent(Depth);
    Out += "for (var " + I + " = 0; " + I + " < " + Bound + "; " + I +
           " = " + I + " + " + std::to_string(1 + Rng.nextBelow(3)) +
           ") {\n";
    indent(Depth + 1);
    Out += poolVar() + " = " + poolVar() + " + " + I + ";\n";
    emitStatements(Budget, Depth + 1);
    indent(Depth);
    Out += "}\n";
  }

  void emitBranch(unsigned Budget, unsigned Depth) {
    static const char *Cmps[] = {"<", "<=", ">", ">=", "==", "!="};
    indent(Depth);
    Out += "if (" + poolVar() + " " + Cmps[Rng.nextBelow(6)] + " " +
           std::to_string(Rng.nextBelow(50)) + ") {\n";
    unsigned ThenBudget = Budget / 2 + 1;
    emitStatements(std::min(ThenBudget, Budget), Depth + 1);
    if (Budget > ThenBudget) {
      indent(Depth);
      Out += "} else {\n";
      emitStatements(Budget - ThenBudget, Depth + 1);
    }
    indent(Depth);
    Out += "}\n";
  }

  std::string &Out;
  RNG &Rng;
  unsigned PoolSize;
  unsigned NextLoop = 0;
};

} // namespace

std::string vrp::makeSyntheticProgram(unsigned SizeClass, uint64_t Seed) {
  RNG Rng(Seed * 0x9e3779b97f4a7c15ull + SizeClass);
  std::string Out;
  Out += "var shared[64];\n";

  unsigned NumFunctions = 1 + SizeClass / 3;
  for (unsigned F = 0; F < NumFunctions; ++F) {
    Out += "fn work" + std::to_string(F) + "(n, m) {\n";
    BodyEmitter Emitter(Out, Rng, 6 + SizeClass / 4);
    Emitter.emitPoolDeclarations();
    Emitter.emitStatements(6 + SizeClass * 2, 0);
    if (F > 0)
      Out += "  v0 = v0 + work" + std::to_string(Rng.nextBelow(F)) +
             "(v1 % 97, v2 % 89);\n";
    Out += "  shared[v0 % 64 + (v0 % 64 < 0) * 64] = v1;\n";
    Out += "  return v0 + shared[v2 % 64 + (v2 % 64 < 0) * 64];\n";
    Out += "}\n";
  }

  Out += "fn main() {\n  var acc = 0;\n";
  for (unsigned F = 0; F < NumFunctions; ++F)
    Out += "  acc = acc + work" + std::to_string(F) + "(" +
           std::to_string(3 + Rng.nextBelow(40)) + ", " +
           std::to_string(2 + Rng.nextBelow(20)) + ");\n";
  Out += "  print(acc);\n  return acc;\n}\n";
  return Out;
}
