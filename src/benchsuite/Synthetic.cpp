//===- benchsuite/Synthetic.cpp - Synthetic program generator --------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "benchsuite/Synthetic.h"

#include "support/RNG.h"

#include <algorithm>
#include <string>

using namespace vrp;

namespace {

/// Emits one function body. All scalar variables live in a pool declared
/// at the top of the function, so nested scopes never leak declarations.
class BodyEmitter {
public:
  BodyEmitter(std::string &Out, RNG &Rng, unsigned PoolSize)
      : Out(Out), Rng(Rng), PoolSize(PoolSize) {}

  void emitPoolDeclarations() {
    Out += "  var v0 = n + 1;\n  var v1 = m * 2;\n  var v2 = n - m;\n";
    for (unsigned I = 3; I < PoolSize; ++I)
      Out += "  var v" + std::to_string(I) + " = " +
             std::to_string(Rng.nextInRange(-20, 40)) + ";\n";
  }

  void emitStatements(unsigned Budget, unsigned Depth) {
    while (Budget > 0) {
      uint64_t Kind = Rng.nextBelow(10);
      if (Kind < 4 || Depth >= 3 || Budget < 3) {
        emitArithmetic(Depth);
        Budget -= 1;
      } else if (Kind < 7) {
        unsigned Inner =
            std::min(Budget - 1, 3u + static_cast<unsigned>(Rng.nextBelow(4)));
        emitLoop(Inner, Depth);
        Budget -= Inner + 1;
      } else {
        unsigned Inner =
            std::min(Budget - 1, 2u + static_cast<unsigned>(Rng.nextBelow(3)));
        emitBranch(Inner, Depth);
        Budget -= Inner + 1;
      }
    }
  }

private:
  void indent(unsigned Depth) { Out.append(2 * (Depth + 1), ' '); }

  std::string poolVar() {
    return "v" + std::to_string(Rng.nextBelow(PoolSize));
  }

  std::string scalarExpr() {
    static const char *Ops[] = {"+", "-", "*", "%"};
    std::string A = poolVar();
    const char *Op = Ops[Rng.nextBelow(4)];
    std::string B;
    if (Op == std::string("%"))
      B = std::to_string(2 + Rng.nextBelow(17)); // Keep divisors nonzero.
    else
      B = Rng.nextBelow(2) == 0 ? poolVar()
                                : std::to_string(1 + Rng.nextBelow(9));
    return A + " " + Op + " " + B;
  }

  void emitArithmetic(unsigned Depth) {
    indent(Depth);
    Out += poolVar() + " = " + scalarExpr() + ";\n";
  }

  void emitLoop(unsigned Budget, unsigned Depth) {
    std::string I = "i" + std::to_string(NextLoop++);
    std::string Bound = Rng.nextBelow(2) == 0
                            ? std::to_string(4 + Rng.nextBelow(60))
                            : "n";
    indent(Depth);
    Out += "for (var " + I + " = 0; " + I + " < " + Bound + "; " + I +
           " = " + I + " + " + std::to_string(1 + Rng.nextBelow(3)) +
           ") {\n";
    indent(Depth + 1);
    Out += poolVar() + " = " + poolVar() + " + " + I + ";\n";
    emitStatements(Budget, Depth + 1);
    indent(Depth);
    Out += "}\n";
  }

  void emitBranch(unsigned Budget, unsigned Depth) {
    static const char *Cmps[] = {"<", "<=", ">", ">=", "==", "!="};
    indent(Depth);
    Out += "if (" + poolVar() + " " + Cmps[Rng.nextBelow(6)] + " " +
           std::to_string(Rng.nextBelow(50)) + ") {\n";
    unsigned ThenBudget = Budget / 2 + 1;
    emitStatements(std::min(ThenBudget, Budget), Depth + 1);
    if (Budget > ThenBudget) {
      indent(Depth);
      Out += "} else {\n";
      emitStatements(Budget - ThenBudget, Depth + 1);
    }
    indent(Depth);
    Out += "}\n";
  }

  std::string &Out;
  RNG &Rng;
  unsigned PoolSize;
  unsigned NextLoop = 0;
};

} // namespace

std::string vrp::makeSyntheticModule(const SyntheticModuleConfig &Config,
                                     std::vector<std::string> *MutatedNames) {
  if (MutatedNames)
    MutatedNames->clear();
  const unsigned N = std::max(Config.NumFunctions, 1u);

  // Mutated indices: evenly spread, never out of range. A set keeps the
  // membership test cheap at 10^5 functions.
  std::vector<bool> Mutated(N, false);
  if (Config.MutateCount > 0) {
    unsigned Count = std::min(Config.MutateCount, N);
    for (unsigned K = 0; K < Count; ++K)
      Mutated[static_cast<unsigned>(
          (static_cast<uint64_t>(K) * N) / Count)] = true;
  }

  std::string Out;
  // ~160 bytes per function body; reserve to avoid repeated regrowth.
  Out.reserve(static_cast<size_t>(N) * 200 + 1024);

  auto fname = [](unsigned I) { return "f" + std::to_string(I); };

  // Layered mode: layerOf(I) partitions the module into contiguous
  // blocks; cross-layer calls always target the block directly below, so
  // the call DAG's depth is bounded by Config.Layers.
  const unsigned Layers = std::min(Config.Layers, N);
  auto layerOf = [&](unsigned I) {
    return Layers == 0
               ? 0u
               : static_cast<unsigned>(
                     (static_cast<uint64_t>(I) * Layers) / N);
  };
  auto layerBelow = [&](unsigned I, RNG &Rng) {
    unsigned L = layerOf(I);
    uint64_t Lo = (static_cast<uint64_t>(L - 1) * N) / Layers;
    uint64_t Hi = (static_cast<uint64_t>(L) * N) / Layers;
    return static_cast<unsigned>(Lo + Rng.nextBelow(Hi - Lo));
  };

  for (unsigned I = 0; I < N; ++I) {
    // Each function draws from its own RNG stream: mutating one body
    // cannot shift any other function's randomness, so every unmutated
    // function's text is byte-identical across generations.
    RNG Rng(Config.Seed * 0x9e3779b97f4a7c15ull + I * 0xbf58476d1ce4e5b9ull +
            1);
    const bool PairsForward =
        Config.RecursiveEvery != 0 && I + 1 < N &&
        (I + 1) % Config.RecursiveEvery == 0 && I + 1 >= 2 &&
        layerOf(I) == layerOf(I + 1);
    const bool SelfRecursive =
        Config.SelfRecursiveEvery != 0 && I > 0 &&
        I % Config.SelfRecursiveEvery == 0;

    Out += "fn " + fname(I) + "(n, m) {\n";
    int64_t Off = Rng.nextInRange(-9, 9);
    Out += "  var a = n " + std::string(Off < 0 ? "- " : "+ ") +
           std::to_string(Off < 0 ? -Off : Off) + ";\n";
    Out += "  var b = m % " + std::to_string(2 + Rng.nextBelow(16)) + ";\n";
    Out += "  var acc = " + std::to_string(Rng.nextBelow(6)) + ";\n";
    Out += "  if (a < " + std::to_string(Rng.nextBelow(31)) + ") {\n";
    Out += "    acc = acc + a;\n";
    Out += "  } else {\n";
    Out += "    acc = acc - " + std::to_string(1 + Rng.nextBelow(4)) + ";\n";
    Out += "  }\n";
    // Chain edge: call the predecessor (or, layered, a function one layer
    // down) with 50% probability — chains reach a sizable fraction of the
    // module, making the unlayered DAG deep.
    const bool HasBelow = Layers == 0 ? I > 0 : layerOf(I) > 0;
    if (HasBelow && Rng.nextBelow(2) == 0) {
      unsigned Chain = Layers == 0 ? I - 1 : layerBelow(I, Rng);
      Out += "  acc = acc + " + fname(Chain) + "(a % " +
             std::to_string(20 + Rng.nextBelow(41)) + ", b);\n";
    }
    for (unsigned E = 0; E < Config.ExtraCallees && HasBelow; ++E) {
      unsigned Callee = Layers == 0
                            ? static_cast<unsigned>(Rng.nextBelow(I))
                            : layerBelow(I, Rng);
      Out += "  acc = acc + " + fname(Callee) + "(b, " +
             std::to_string(Rng.nextBelow(9)) + ");\n";
    }
    if (PairsForward)
      // Forward reference closing a 2-function cycle with f(I+1), whose
      // chain edge back to f(I) is forced below.
      Out += "  acc = acc + " + fname(I + 1) + "(n - 1, b);\n";
    if (Config.RecursiveEvery != 0 && I >= 2 &&
        I % Config.RecursiveEvery == 0 && layerOf(I - 1) == layerOf(I)) {
      // The partner half of the cycle: guarantee the backward edge even
      // when the probabilistic chain edge above was skipped.
      Out += "  acc = acc + " + fname(I - 1) + "(n - 1, acc % 13);\n";
    }
    if (SelfRecursive)
      Out += "  if (n > 0) {\n    acc = acc + " + fname(I) +
             "(n - 1, b);\n  }\n";
    unsigned Mod = 50 + static_cast<unsigned>(Rng.nextBelow(101));
    if (Mutated[I]) {
      Mod += 37;
      if (MutatedNames)
        MutatedNames->push_back(fname(I));
    }
    Out += "  return acc % " + std::to_string(Mod) + ";\n";
    Out += "}\n";
  }

  // main(): a handful of roots so the top of the DAG has callers.
  RNG MainRng(Config.Seed * 0x94d049bb133111ebull + 7);
  Out += "fn main() {\n  var acc = 0;\n";
  Out += "  acc = acc + " + fname(N - 1) + "(" +
         std::to_string(3 + MainRng.nextBelow(40)) + ", " +
         std::to_string(2 + MainRng.nextBelow(20)) + ");\n";
  for (unsigned R = 0; R < 3 && N > 1; ++R)
    Out += "  acc = acc + " + fname(static_cast<unsigned>(
                                  MainRng.nextBelow(N))) +
           "(" + std::to_string(3 + MainRng.nextBelow(40)) + ", " +
           std::to_string(2 + MainRng.nextBelow(20)) + ");\n";
  Out += "  return acc;\n}\n";
  return Out;
}

std::string vrp::makeSyntheticProgram(unsigned SizeClass, uint64_t Seed) {
  RNG Rng(Seed * 0x9e3779b97f4a7c15ull + SizeClass);
  std::string Out;
  Out += "var shared[64];\n";

  unsigned NumFunctions = 1 + SizeClass / 3;
  for (unsigned F = 0; F < NumFunctions; ++F) {
    Out += "fn work" + std::to_string(F) + "(n, m) {\n";
    BodyEmitter Emitter(Out, Rng, 6 + SizeClass / 4);
    Emitter.emitPoolDeclarations();
    Emitter.emitStatements(6 + SizeClass * 2, 0);
    if (F > 0)
      Out += "  v0 = v0 + work" + std::to_string(Rng.nextBelow(F)) +
             "(v1 % 97, v2 % 89);\n";
    Out += "  shared[v0 % 64 + (v0 % 64 < 0) * 64] = v1;\n";
    Out += "  return v0 + shared[v2 % 64 + (v2 % 64 < 0) * 64];\n";
    Out += "}\n";
  }

  Out += "fn main() {\n  var acc = 0;\n";
  for (unsigned F = 0; F < NumFunctions; ++F)
    Out += "  acc = acc + work" + std::to_string(F) + "(" +
           std::to_string(3 + Rng.nextBelow(40)) + ", " +
           std::to_string(2 + Rng.nextBelow(20)) + ");\n";
  Out += "  print(acc);\n  return acc;\n}\n";
  return Out;
}
