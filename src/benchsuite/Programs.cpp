//===- benchsuite/Programs.cpp - Suite registry ----------------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "benchsuite/Programs.h"

using namespace vrp;

std::vector<const BenchmarkProgram *> vrp::allPrograms() {
  std::vector<const BenchmarkProgram *> All;
  for (const BenchmarkProgram &P : integerSuite())
    All.push_back(&P);
  for (const BenchmarkProgram &P : numericSuite())
    All.push_back(&P);
  return All;
}

const BenchmarkProgram *vrp::findProgram(const std::string &Name) {
  for (const BenchmarkProgram *P : allPrograms())
    if (P->Name == Name)
      return P;
  return nullptr;
}
