//===- benchsuite/ProgramsInt.cpp - Integer suite (SPECint92 analog) ------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
// Ten integer/pointer-style programs: heavy on data-dependent branches,
// searching, hashing and recursion. Each uses an internal LCG seeded from
// input() so the short and ref runs see genuinely different data.
//
//===----------------------------------------------------------------------===//

#include "benchsuite/Programs.h"

using namespace vrp;

namespace {

std::vector<BenchmarkProgram> buildIntegerSuite() {
  std::vector<BenchmarkProgram> Suite;

  // Shared LCG preamble (each program embeds its own copy so programs stay
  // self-contained translation units).
  const std::string Rng = R"(
var seed = 1;
fn rnd() {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  return seed;
}
)";

  //===------------------------------------------------------------------===//
  // sort: insertion sort with a sortedness check.
  //===------------------------------------------------------------------===//
  Suite.push_back({"sort", false, Rng + R"(
var data[512];
fn main() {
  seed = input();
  var n = input();
  for (var i = 0; i < n; i = i + 1) {
    data[i] = rnd() % 10000;
  }
  for (var i = 1; i < n; i = i + 1) {
    var key = data[i];
    var j = i - 1;
    while (j >= 0 && data[j] > key) {
      data[j + 1] = data[j];
      j = j - 1;
    }
    data[j + 1] = key;
  }
  var bad = 0;
  for (var i = 1; i < n; i = i + 1) {
    if (data[i - 1] > data[i]) {
      bad = bad + 1;
    }
  }
  print(bad);
  print(data[0]);
  print(data[n - 1]);
  return bad;
}
)",
                   {7, 60},
                   {1234577, 280}});

  //===------------------------------------------------------------------===//
  // binsearch: sorted table, repeated binary searches.
  //===------------------------------------------------------------------===//
  Suite.push_back({"binsearch", false, Rng + R"(
var table[4096];
fn search(n, key) {
  var lo = 0;
  var hi = n - 1;
  while (lo <= hi) {
    var mid = (lo + hi) / 2;
    if (table[mid] == key) {
      return mid;
    }
    if (table[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return 0 - 1;
}
fn main() {
  seed = input();
  var n = input();
  var queries = input();
  for (var i = 0; i < n; i = i + 1) {
    table[i] = i * 3 + (i % 7);
  }
  var hits = 0;
  for (var q = 0; q < queries; q = q + 1) {
    var key = rnd() % (n * 3);
    if (search(n, key) >= 0) {
      hits = hits + 1;
    }
  }
  print(hits);
  return hits;
}
)",
                   {11, 128, 200},
                   {987653, 4096, 3000}});

  //===------------------------------------------------------------------===//
  // sieve: Eratosthenes with a twist of counting twin primes.
  //===------------------------------------------------------------------===//
  Suite.push_back({"sieve", false, R"(
var flags[8192];
fn main() {
  var limit = input();
  for (var i = 0; i < limit; i = i + 1) {
    flags[i] = 1;
  }
  flags[0] = 0;
  flags[1] = 0;
  for (var p = 2; p * p < limit; p = p + 1) {
    if (flags[p] == 1) {
      for (var k = p * p; k < limit; k = k + p) {
        flags[k] = 0;
      }
    }
  }
  var primes = 0;
  var twins = 0;
  for (var i = 2; i < limit; i = i + 1) {
    if (flags[i] == 1) {
      primes = primes + 1;
      if (i + 2 < limit && flags[i + 2] == 1) {
        twins = twins + 1;
      }
    }
  }
  print(primes);
  print(twins);
  return primes;
}
)",
                   {500},
                   {8000}});

  //===------------------------------------------------------------------===//
  // qsort: recursive quicksort over a global array.
  //===------------------------------------------------------------------===//
  Suite.push_back({"qsort", false, Rng + R"(
var arr[2048];
fn swap(i, j) {
  var t = arr[i];
  arr[i] = arr[j];
  arr[j] = t;
  return 0;
}
fn quicksort(lo, hi) {
  if (lo >= hi) {
    return 0;
  }
  var pivot = arr[(lo + hi) / 2];
  var i = lo;
  var j = hi;
  while (i <= j) {
    while (arr[i] < pivot) {
      i = i + 1;
    }
    while (arr[j] > pivot) {
      j = j - 1;
    }
    if (i <= j) {
      swap(i, j);
      i = i + 1;
      j = j - 1;
    }
  }
  quicksort(lo, j);
  quicksort(i, hi);
  return 0;
}
fn main() {
  seed = input();
  var n = input();
  for (var i = 0; i < n; i = i + 1) {
    arr[i] = rnd() % 100000;
  }
  quicksort(0, n - 1);
  var bad = 0;
  for (var i = 1; i < n; i = i + 1) {
    if (arr[i - 1] > arr[i]) {
      bad = bad + 1;
    }
  }
  print(bad);
  print(arr[0]);
  print(arr[n - 1]);
  return bad;
}
)",
                   {3, 80},
                   {424243, 1200}});

  //===------------------------------------------------------------------===//
  // rle: run-length encoding of bursty data.
  //===------------------------------------------------------------------===//
  Suite.push_back({"rle", false, Rng + R"(
var raw[8192];
var runs[8192];
fn main() {
  seed = input();
  var n = input();
  var value = rnd() % 16;
  for (var i = 0; i < n; i = i + 1) {
    if (rnd() % 8 == 0) {
      value = rnd() % 16;
    }
    raw[i] = value;
  }
  var count = 0;
  var i = 0;
  while (i < n) {
    var v = raw[i];
    var length = 1;
    while (i + length < n && raw[i + length] == v) {
      length = length + 1;
    }
    runs[count] = length;
    count = count + 1;
    i = i + length;
  }
  var longest = 0;
  for (var r = 0; r < count; r = r + 1) {
    longest = max(longest, runs[r]);
  }
  print(count);
  print(longest);
  return count;
}
)",
                   {99, 500},
                   {777777, 8000}});

  //===------------------------------------------------------------------===//
  // hash: open-addressing hash table with different load factors per
  // input, so collision-probe branches behave differently on short/ref.
  //===------------------------------------------------------------------===//
  Suite.push_back({"hash", false, Rng + R"(
var keys[1024];
var used[1024];
fn insert(key) {
  var h = (key * 2654435761) % 1024;
  if (h < 0) {
    h = h + 1024;
  }
  var probes = 0;
  while (used[h] == 1) {
    if (keys[h] == key) {
      return 0;
    }
    h = (h + 1) % 1024;
    probes = probes + 1;
    if (probes > 1024) {
      return 0 - 1;
    }
  }
  used[h] = 1;
  keys[h] = key;
  return 1;
}
fn contains(key) {
  var h = (key * 2654435761) % 1024;
  if (h < 0) {
    h = h + 1024;
  }
  var probes = 0;
  while (used[h] == 1) {
    if (keys[h] == key) {
      return 1;
    }
    h = (h + 1) % 1024;
    probes = probes + 1;
    if (probes > 1024) {
      return 0;
    }
  }
  return 0;
}
fn main() {
  seed = input();
  var inserts = input();
  var lookups = input();
  var added = 0;
  for (var i = 0; i < inserts; i = i + 1) {
    added = added + insert(rnd() % 50021);
  }
  var hits = 0;
  for (var i = 0; i < lookups; i = i + 1) {
    hits = hits + contains(rnd() % 50021);
  }
  print(added);
  print(hits);
  return hits;
}
)",
                   {5, 150, 300},
                   {31337, 600, 1800}});

  //===------------------------------------------------------------------===//
  // match: naive substring search over a small alphabet.
  //===------------------------------------------------------------------===//
  Suite.push_back({"match", false, Rng + R"(
var text[8192];
var pattern[8];
fn main() {
  seed = input();
  var n = input();
  for (var i = 0; i < n; i = i + 1) {
    text[i] = rnd() % 4;
  }
  for (var i = 0; i < 6; i = i + 1) {
    pattern[i] = rnd() % 4;
  }
  var found = 0;
  for (var i = 0; i + 6 <= n; i = i + 1) {
    var ok = 1;
    for (var j = 0; j < 6; j = j + 1) {
      if (text[i + j] != pattern[j]) {
        ok = 0;
        break;
      }
    }
    if (ok == 1) {
      found = found + 1;
    }
  }
  print(found);
  return found;
}
)",
                   {21, 400},
                   {55555, 6000}});

  //===------------------------------------------------------------------===//
  // queens: N-queens backtracking (recursion-heavy, unpredictable
  // pruning branches).
  //===------------------------------------------------------------------===//
  Suite.push_back({"queens", false, R"(
var cols[16];
var diag1[32];
var diag2[32];
var n = 0;
fn solve(row) {
  if (row == n) {
    return 1;
  }
  var count = 0;
  for (var c = 0; c < n; c = c + 1) {
    if (cols[c] == 0 && diag1[row + c] == 0 && diag2[row - c + n] == 0) {
      cols[c] = 1;
      diag1[row + c] = 1;
      diag2[row - c + n] = 1;
      count = count + solve(row + 1);
      cols[c] = 0;
      diag1[row + c] = 0;
      diag2[row - c + n] = 0;
    }
  }
  return count;
}
fn main() {
  n = input();
  var solutions = solve(0);
  print(solutions);
  return solutions;
}
)",
                   {5},
                   {7}});

  //===------------------------------------------------------------------===//
  // paths: BFS over a random grid with obstacles.
  //===------------------------------------------------------------------===//
  Suite.push_back({"paths", false, Rng + R"(
var grid[1600];
var dist[1600];
var queue[1600];
fn main() {
  seed = input();
  var w = input();
  var h = input();
  var cells = w * h;
  for (var i = 0; i < cells; i = i + 1) {
    if (rnd() % 5 == 0) {
      grid[i] = 1;
    } else {
      grid[i] = 0;
    }
    dist[i] = 0 - 1;
  }
  grid[0] = 0;
  grid[cells - 1] = 0;
  dist[0] = 0;
  queue[0] = 0;
  var head = 0;
  var tail = 1;
  while (head < tail) {
    var cur = queue[head];
    head = head + 1;
    var x = cur % w;
    var y = cur / w;
    var d = dist[cur];
    if (x > 0 && grid[cur - 1] == 0 && dist[cur - 1] < 0) {
      dist[cur - 1] = d + 1;
      queue[tail] = cur - 1;
      tail = tail + 1;
    }
    if (x < w - 1 && grid[cur + 1] == 0 && dist[cur + 1] < 0) {
      dist[cur + 1] = d + 1;
      queue[tail] = cur + 1;
      tail = tail + 1;
    }
    if (y > 0 && grid[cur - w] == 0 && dist[cur - w] < 0) {
      dist[cur - w] = d + 1;
      queue[tail] = cur - w;
      tail = tail + 1;
    }
    if (y < h - 1 && grid[cur + w] == 0 && dist[cur + w] < 0) {
      dist[cur + w] = d + 1;
      queue[tail] = cur + w;
      tail = tail + 1;
    }
  }
  print(dist[cells - 1]);
  print(tail);
  return dist[cells - 1];
}
)",
                   {2, 12, 12},
                   {90001, 40, 40}});

  //===------------------------------------------------------------------===//
  // bits: popcounts and parity over pseudo-random words.
  //===------------------------------------------------------------------===//
  Suite.push_back({"bits", false, Rng + R"(
fn popcount(x) {
  var count = 0;
  while (x > 0) {
    if (x % 2 == 1) {
      count = count + 1;
    }
    x = x / 2;
  }
  return count;
}
fn main() {
  seed = input();
  var n = input();
  var totalBits = 0;
  var evenParity = 0;
  var heavy = 0;
  for (var i = 0; i < n; i = i + 1) {
    var word = rnd();
    var bits = popcount(word);
    totalBits = totalBits + bits;
    if (bits % 2 == 0) {
      evenParity = evenParity + 1;
    }
    if (bits > 15) {
      heavy = heavy + 1;
    }
  }
  print(totalBits);
  print(evenParity);
  print(heavy);
  return evenParity;
}
)",
                   {17, 300},
                   {246813, 5000}});

  return Suite;
}

} // namespace

const std::vector<BenchmarkProgram> &vrp::integerSuite() {
  static const std::vector<BenchmarkProgram> Suite = buildIntegerSuite();
  return Suite;
}
