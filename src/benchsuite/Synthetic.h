//===- benchsuite/Synthetic.h - Synthetic program generator -----*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic generator of structurally varied VL programs, used to
/// populate the size axis of the paper's Figures 5 and 6 (expression
/// evaluations / sub-operations versus program size). Generated programs
/// are only analyzed, never executed, so they favor structural variety
/// (loop nests, branch trees, call chains) over meaningful semantics.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_BENCHSUITE_SYNTHETIC_H
#define VRP_BENCHSUITE_SYNTHETIC_H

#include <cstdint>
#include <string>
#include <vector>

namespace vrp {

/// Generates a VL program with roughly `SizeClass` * a few dozen IR
/// instructions. Deterministic in (SizeClass, Seed).
std::string makeSyntheticProgram(unsigned SizeClass, uint64_t Seed);

/// Shape of a generated whole module (see makeSyntheticModule). The
/// default shape is a deep call DAG: function K calls K-1 with 50%
/// probability (so chains reach a sizable fraction of the module depth)
/// plus up to ExtraCallees random earlier functions, with a controllable
/// sprinkling of 2-function recursive SCCs and self-recursive functions.
struct SyntheticModuleConfig {
  unsigned NumFunctions = 1000;
  uint64_t Seed = 1;
  /// Random earlier-function callees per function besides the chain edge.
  unsigned ExtraCallees = 2;
  /// Every k-th function forms a 2-node recursive SCC with its
  /// predecessor (0 disables mutual recursion).
  unsigned RecursiveEvery = 16;
  /// Every k-th function additionally calls itself (0 disables).
  unsigned SelfRecursiveEvery = 23;
  /// 0 = unconstrained depth (the chain makes the DAG as deep as the
  /// module). When nonzero, functions are split into this many contiguous
  /// layers and every cross-layer call targets the layer directly below,
  /// bounding the condensation depth by Layers — a module that converges
  /// within the scheduler's per-function refinement budget, which is what
  /// cold-vs-incremental bitwise-identity checks need.
  unsigned Layers = 0;
  /// Number of functions whose body gets a changed constant (evenly
  /// spread over the module, never main). Each function's body is drawn
  /// from its own RNG stream, so the *unmutated* functions' text is
  /// byte-identical to a MutateCount=0 generation — exactly the shape an
  /// incremental re-analysis consumes.
  unsigned MutateCount = 0;
};

/// Generates a whole VL module per \p Config: NumFunctions small
/// two-parameter functions wired into a deep call DAG with the requested
/// recursive-SCC mix, plus a main() root. Deterministic in Config. When
/// \p MutatedNames is non-null it receives the names of the mutated
/// functions (empty for MutateCount=0).
std::string makeSyntheticModule(const SyntheticModuleConfig &Config,
                                std::vector<std::string> *MutatedNames =
                                    nullptr);

} // namespace vrp

#endif // VRP_BENCHSUITE_SYNTHETIC_H
