//===- benchsuite/Synthetic.h - Synthetic program generator -----*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic generator of structurally varied VL programs, used to
/// populate the size axis of the paper's Figures 5 and 6 (expression
/// evaluations / sub-operations versus program size). Generated programs
/// are only analyzed, never executed, so they favor structural variety
/// (loop nests, branch trees, call chains) over meaningful semantics.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_BENCHSUITE_SYNTHETIC_H
#define VRP_BENCHSUITE_SYNTHETIC_H

#include <cstdint>
#include <string>

namespace vrp {

/// Generates a VL program with roughly `SizeClass` * a few dozen IR
/// instructions. Deterministic in (SizeClass, Seed).
std::string makeSyntheticProgram(unsigned SizeClass, uint64_t Seed);

} // namespace vrp

#endif // VRP_BENCHSUITE_SYNTHETIC_H
