//===- benchsuite/Programs.h - The VL benchmark suite -----------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark programs standing in for SPEC92 (see DESIGN.md §2). Two
/// suites mirror the paper's split:
///
///  * the integer suite (SPECint92 analog): sorting, searching, hashing,
///    string matching, compression, graph traversal, backtracking — many
///    data-dependent branches, so the heuristic fallback is common;
///  * the numeric suite (SPECfp92 analog): dense linear algebra, stencils,
///    integration — loop-dominated control flow where VRP's derived loop
///    ranges predict nearly every branch.
///
/// Each program carries *short* (training) and *ref* (evaluation) inputs,
/// reproducing the SPEC input.short / input.ref protocol the paper uses
/// for the execution-profiling baseline.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_BENCHSUITE_PROGRAMS_H
#define VRP_BENCHSUITE_PROGRAMS_H

#include <cstdint>
#include <string>
#include <vector>

namespace vrp {

/// One benchmark: VL source plus its two input sets.
struct BenchmarkProgram {
  std::string Name;
  bool Numeric = false; ///< True: numeric (SPECfp92-analog) suite member.
  std::string Source;
  std::vector<int64_t> ShortInput; ///< Profile-training input.
  std::vector<int64_t> RefInput;   ///< Reference (evaluation) input.
};

/// The integer/pointer-style suite.
const std::vector<BenchmarkProgram> &integerSuite();

/// The numeric suite.
const std::vector<BenchmarkProgram> &numericSuite();

/// Both suites concatenated (integer first).
std::vector<const BenchmarkProgram *> allPrograms();

/// Looks up a program by name across both suites; null when absent.
const BenchmarkProgram *findProgram(const std::string &Name);

} // namespace vrp

#endif // VRP_BENCHSUITE_PROGRAMS_H
