//===- heuristics/Heuristics.h - Baseline branch predictors -----*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline predictors the paper compares against, and the fallback it
/// uses for ⊥-range branches (§3.5, §5):
///
///  * the 90/50 rule — backward branches taken 90%, forward branches 50%;
///  * the Ball–Larus heuristics [BallLarus93] combined into probabilities
///    with Dempster–Shafer evidence combination as in [WuLarus94];
///  * seeded random prediction.
///
/// Every predictor returns P(true-edge taken) per conditional branch.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_HEURISTICS_HEURISTICS_H
#define VRP_HEURISTICS_HEURISTICS_H

#include "analysis/DFS.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/Function.h"
#include "support/RNG.h"

#include <map>

namespace vrp {

/// Branch probabilities for one function: CondBr -> P(true edge).
using BranchProbMap = std::map<const CondBrInst *, double>;

/// The 90/50 rule: a back edge is taken with probability 0.9; branches
/// with no back-edge successor split 50/50.
BranchProbMap predictNinetyFifty(const Function &F);

/// Taken-probabilities used by the Ball-Larus heuristics (hit rates from
/// [WuLarus94] Table 1). Exposed for tests and the ablation bench.
struct BallLarusRates {
  double LoopBranch = 0.88;
  double LoopExit = 0.80;
  double LoopHeader = 0.75;
  double Call = 0.78;
  double Opcode = 0.84;
  double Guard = 0.62;
  double Store = 0.55;
  double Return = 0.72;
};

/// Ball–Larus heuristics combined with Dempster–Shafer into a single
/// probability per branch. Computes the CFG analyses itself.
BranchProbMap predictBallLarus(const Function &F,
                               const BallLarusRates &Rates = {});

/// Overload for callers that already hold the CFG analyses (e.g. an
/// analysis/AnalysisCache.h memo), so they are not recomputed per call.
BranchProbMap predictBallLarus(const Function &F, const LoopInfo &LI,
                               const PostDominatorTree &PDT,
                               const DFSInfo &DFS,
                               const BallLarusRates &Rates = {});

/// Uniform random probabilities (deterministic under \p Seed).
BranchProbMap predictRandom(const Function &F, uint64_t Seed);

/// Dempster–Shafer combination of two probability estimates for the same
/// event: m = p1*p2 / (p1*p2 + (1-p1)*(1-p2)).
double dempsterShafer(double P1, double P2);

} // namespace vrp

#endif // VRP_HEURISTICS_HEURISTICS_H
