//===- heuristics/Heuristics.cpp - Baseline branch predictors --------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "heuristics/Heuristics.h"

#include "analysis/DFS.h"

#include <cmath>
#include <optional>

using namespace vrp;

double vrp::dempsterShafer(double P1, double P2) {
  double Num = P1 * P2;
  double Den = Num + (1.0 - P1) * (1.0 - P2);
  if (Den <= 0.0)
    return 0.5;
  return Num / Den;
}

BranchProbMap vrp::predictNinetyFifty(const Function &F) {
  BranchProbMap Result;
  DFSInfo DFS(F);
  for (const auto &B : F.blocks()) {
    const auto *CBr = dyn_cast_or_null<CondBrInst>(B->terminator());
    if (!CBr)
      continue;
    bool TrueBack = DFS.isBackEdge(B.get(), CBr->trueBlock());
    bool FalseBack = DFS.isBackEdge(B.get(), CBr->falseBlock());
    double P = 0.5;
    if (TrueBack && !FalseBack)
      P = 0.9;
    else if (FalseBack && !TrueBack)
      P = 0.1;
    Result[CBr] = P;
  }
  return Result;
}

BranchProbMap vrp::predictRandom(const Function &F, uint64_t Seed) {
  BranchProbMap Result;
  RNG Rng(Seed);
  for (const auto &B : F.blocks())
    if (const auto *CBr = dyn_cast_or_null<CondBrInst>(B->terminator()))
      Result[CBr] = Rng.nextDouble();
  return Result;
}

namespace {

/// Per-branch context shared by the individual heuristics.
struct BranchContext {
  const CondBrInst *Branch;
  const BasicBlock *Block;
  const BasicBlock *TrueSucc;
  const BasicBlock *FalseSucc;
  const LoopInfo &LI;
  const PostDominatorTree &PDT;
  const DFSInfo &DFS;
};

/// Blocks reachable "immediately" along a successor: the successor itself
/// plus following single-pred/single-succ chain blocks (covers the split
/// blocks assertion insertion creates).
std::vector<const BasicBlock *> successorRegion(const BasicBlock *S) {
  std::vector<const BasicBlock *> Region{S};
  const BasicBlock *Cur = S;
  for (int Hops = 0; Hops < 4; ++Hops) {
    auto Succs = Cur->succs();
    if (Succs.size() != 1 || Succs[0]->numPreds() != 1)
      break;
    Cur = Succs[0];
    Region.push_back(Cur);
  }
  return Region;
}

bool regionHasOpcode(const BasicBlock *S, Opcode Op) {
  for (const BasicBlock *B : successorRegion(S))
    for (const auto &I : B->instructions())
      if (I->opcode() == Op)
        return true;
  return false;
}

/// Loop branch heuristic: predict the back edge taken.
std::optional<double> loopBranchHeuristic(const BranchContext &C,
                                          double Rate) {
  bool TrueBack = C.DFS.isBackEdge(C.Block, C.TrueSucc);
  bool FalseBack = C.DFS.isBackEdge(C.Block, C.FalseSucc);
  if (TrueBack == FalseBack)
    return std::nullopt;
  return TrueBack ? Rate : 1.0 - Rate;
}

/// Loop exit heuristic: predict the edge leaving the loop not taken.
std::optional<double> loopExitHeuristic(const BranchContext &C,
                                        double Rate) {
  Loop *L = C.LI.loopOf(C.Block);
  if (!L)
    return std::nullopt;
  // Does not apply to the latch branch (loop branch heuristic's domain).
  if (C.DFS.isBackEdge(C.Block, C.TrueSucc) ||
      C.DFS.isBackEdge(C.Block, C.FalseSucc))
    return std::nullopt;
  bool TrueExits = !L->contains(C.TrueSucc);
  bool FalseExits = !L->contains(C.FalseSucc);
  if (TrueExits == FalseExits)
    return std::nullopt;
  return TrueExits ? 1.0 - Rate : Rate;
}

/// Loop header heuristic: predict a successor that is a loop header (or
/// preheader) and not a postdominator as taken.
std::optional<double> loopHeaderHeuristic(const BranchContext &C,
                                          double Rate) {
  auto qualifies = [&](const BasicBlock *S) {
    if (C.PDT.postDominates(S, C.Block))
      return false;
    for (const BasicBlock *B : successorRegion(S)) {
      if (C.LI.isLoopHeader(B))
        return true;
      for (const auto &L : C.LI.loops())
        if (L->preheader() == B)
          return true;
    }
    return false;
  };
  bool TrueQ = qualifies(C.TrueSucc);
  bool FalseQ = qualifies(C.FalseSucc);
  if (TrueQ == FalseQ)
    return std::nullopt;
  return TrueQ ? Rate : 1.0 - Rate;
}

/// Call heuristic: a successor containing a call that does not
/// postdominate is predicted not taken.
std::optional<double> callHeuristic(const BranchContext &C, double Rate) {
  auto qualifies = [&](const BasicBlock *S) {
    return regionHasOpcode(S, Opcode::Call) &&
           !C.PDT.postDominates(S, C.Block);
  };
  bool TrueQ = qualifies(C.TrueSucc);
  bool FalseQ = qualifies(C.FalseSucc);
  if (TrueQ == FalseQ)
    return std::nullopt;
  return TrueQ ? 1.0 - Rate : Rate;
}

/// Store heuristic: a successor containing a store that does not
/// postdominate is predicted not taken.
std::optional<double> storeHeuristic(const BranchContext &C, double Rate) {
  auto qualifies = [&](const BasicBlock *S) {
    return regionHasOpcode(S, Opcode::Store) &&
           !C.PDT.postDominates(S, C.Block);
  };
  bool TrueQ = qualifies(C.TrueSucc);
  bool FalseQ = qualifies(C.FalseSucc);
  if (TrueQ == FalseQ)
    return std::nullopt;
  return TrueQ ? 1.0 - Rate : Rate;
}

/// Return heuristic: a successor containing a return is predicted not
/// taken.
std::optional<double> returnHeuristic(const BranchContext &C, double Rate) {
  auto qualifies = [&](const BasicBlock *S) {
    return regionHasOpcode(S, Opcode::Ret);
  };
  bool TrueQ = qualifies(C.TrueSucc);
  bool FalseQ = qualifies(C.FalseSucc);
  if (TrueQ == FalseQ)
    return std::nullopt;
  return TrueQ ? 1.0 - Rate : Rate;
}

/// Opcode heuristic: comparisons against zero / negative constants and
/// equality tests have biased outcomes.
std::optional<double> opcodeHeuristic(const BranchContext &C, double Rate) {
  const auto *Cmp = dyn_cast<CmpInst>(C.Branch->cond());
  if (!Cmp)
    return std::nullopt;
  const auto *RC = dyn_cast<Constant>(Cmp->rhs());
  bool RhsNonPositive = RC && RC->isInt() && RC->intValue() <= 0;
  switch (Cmp->pred()) {
  case CmpPred::EQ:
    return 1.0 - Rate; // x == y is unlikely.
  case CmpPred::NE:
    return Rate;
  case CmpPred::LT:
  case CmpPred::LE:
    if (RhsNonPositive)
      return 1.0 - Rate; // x < 0 is unlikely.
    return std::nullopt;
  case CmpPred::GT:
  case CmpPred::GE:
    if (RhsNonPositive)
      return Rate; // x > 0 is likely.
    return std::nullopt;
  }
  return std::nullopt;
}

/// Guard heuristic: a successor that uses an operand of the comparison and
/// does not postdominate is predicted taken.
std::optional<double> guardHeuristic(const BranchContext &C, double Rate) {
  const auto *Cmp = dyn_cast<CmpInst>(C.Branch->cond());
  if (!Cmp)
    return std::nullopt;
  auto usesOperand = [&](const BasicBlock *S) {
    if (C.PDT.postDominates(S, C.Block))
      return false;
    for (const BasicBlock *B : successorRegion(S))
      for (const auto &I : B->instructions())
        for (unsigned OpIdx = 0; OpIdx < I->numOperands(); ++OpIdx) {
          const Value *Op = I->operand(OpIdx);
          // Look through the assertion copies the π-insertion created.
          if (const auto *A = dyn_cast<AssertInst>(Op))
            Op = A->parentValue();
          if (Op == Cmp->lhs() || Op == Cmp->rhs())
            return true;
        }
    return false;
  };
  bool TrueQ = usesOperand(C.TrueSucc);
  bool FalseQ = usesOperand(C.FalseSucc);
  if (TrueQ == FalseQ)
    return std::nullopt;
  return TrueQ ? Rate : 1.0 - Rate;
}

} // namespace

BranchProbMap vrp::predictBallLarus(const Function &F,
                                    const BallLarusRates &Rates) {
  DominatorTree DT(F);
  LoopInfo LI(F, DT);
  PostDominatorTree PDT(F);
  DFSInfo DFS(F);
  return predictBallLarus(F, LI, PDT, DFS, Rates);
}

BranchProbMap vrp::predictBallLarus(const Function &F, const LoopInfo &LI,
                                    const PostDominatorTree &PDT,
                                    const DFSInfo &DFS,
                                    const BallLarusRates &Rates) {
  BranchProbMap Result;
  for (const auto &B : F.blocks()) {
    const auto *CBr = dyn_cast_or_null<CondBrInst>(B->terminator());
    if (!CBr)
      continue;
    BranchContext C{CBr,    B.get(), CBr->trueBlock(), CBr->falseBlock(),
                    LI,     PDT,     DFS};

    double P = 0.5;
    bool Applied = false;
    auto combine = [&](std::optional<double> H) {
      if (!H)
        return;
      P = Applied ? dempsterShafer(P, *H) : *H;
      Applied = true;
    };
    combine(loopBranchHeuristic(C, Rates.LoopBranch));
    combine(loopExitHeuristic(C, Rates.LoopExit));
    combine(loopHeaderHeuristic(C, Rates.LoopHeader));
    combine(callHeuristic(C, Rates.Call));
    combine(opcodeHeuristic(C, Rates.Opcode));
    combine(guardHeuristic(C, Rates.Guard));
    combine(storeHeuristic(C, Rates.Store));
    combine(returnHeuristic(C, Rates.Return));
    Result[CBr] = P;
  }
  return Result;
}
