//===- analysis/Dominators.cpp - (Post)dominator trees ---------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
// Implements Cooper, Harvey & Kennedy, "A Simple, Fast Dominance
// Algorithm" (2001) over an index-based graph so the same kernel serves
// dominators and postdominators.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include <cassert>

using namespace vrp;

namespace {

/// Index-graph CHK kernel. \p Preds are predecessor lists, \p RPO a reverse
/// postorder starting at \p Root (unreachable nodes absent). Returns the
/// idom array (idom[Root] == Root; unreachable nodes get ~0u).
std::vector<unsigned>
computeIdoms(unsigned NumNodes, unsigned Root,
             const std::vector<std::vector<unsigned>> &Preds,
             const std::vector<unsigned> &RPO) {
  constexpr unsigned Undef = ~0u;
  std::vector<unsigned> Idom(NumNodes, Undef);
  std::vector<unsigned> PostNum(NumNodes, Undef);
  for (unsigned I = 0; I < RPO.size(); ++I)
    PostNum[RPO[I]] = RPO.size() - 1 - I;

  auto intersect = [&](unsigned A, unsigned B) {
    while (A != B) {
      while (PostNum[A] < PostNum[B])
        A = Idom[A];
      while (PostNum[B] < PostNum[A])
        B = Idom[B];
    }
    return A;
  };

  Idom[Root] = Root;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Node : RPO) {
      if (Node == Root)
        continue;
      unsigned NewIdom = Undef;
      for (unsigned P : Preds[Node]) {
        if (Idom[P] == Undef)
          continue; // Not yet processed (or unreachable).
        NewIdom = NewIdom == Undef ? P : intersect(P, NewIdom);
      }
      assert(NewIdom != Undef && "reachable node with no processed pred");
      if (Idom[Node] != NewIdom) {
        Idom[Node] = NewIdom;
        Changed = true;
      }
    }
  }
  return Idom;
}

/// RPO over an index graph via iterative DFS.
std::vector<unsigned>
computeRPO(unsigned Root, const std::vector<std::vector<unsigned>> &Succs) {
  std::vector<unsigned> PostOrder;
  std::vector<char> Visited(Succs.size(), 0);
  struct Frame {
    unsigned Node;
    size_t Next = 0;
  };
  std::vector<Frame> Stack{{Root, 0}};
  Visited[Root] = 1;
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.Next == Succs[Top.Node].size()) {
      PostOrder.push_back(Top.Node);
      Stack.pop_back();
      continue;
    }
    unsigned S = Succs[Top.Node][Top.Next++];
    if (!Visited[S]) {
      Visited[S] = 1;
      Stack.push_back({S, 0});
    }
  }
  return {PostOrder.rbegin(), PostOrder.rend()};
}

/// In/out numbering of a tree given per-node child lists.
void numberTree(unsigned Root,
                const std::vector<std::vector<unsigned>> &Children,
                std::vector<unsigned> &In, std::vector<unsigned> &Out) {
  unsigned Clock = 0;
  struct Frame {
    unsigned Node;
    size_t Next = 0;
  };
  std::vector<Frame> Stack{{Root, 0}};
  In[Root] = Clock++;
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.Next == Children[Top.Node].size()) {
      Out[Top.Node] = Clock++;
      Stack.pop_back();
      continue;
    }
    unsigned C = Children[Top.Node][Top.Next++];
    In[C] = Clock++;
    Stack.push_back({C, 0});
  }
}

} // namespace

DominatorTree::DominatorTree(const Function &F) {
  unsigned N = F.numBlocks();
  std::vector<std::vector<unsigned>> Preds(N), Succs(N);
  for (const auto &B : F.blocks()) {
    for (BasicBlock *P : B->preds())
      Preds[B->id()].push_back(P->id());
    for (BasicBlock *S : B->succs())
      Succs[B->id()].push_back(S->id());
  }
  unsigned Root = F.entry()->id();
  std::vector<unsigned> RPOIdx = computeRPO(Root, Succs);
  std::vector<unsigned> IdomIdx = computeIdoms(N, Root, Preds, RPOIdx);

  Idom.assign(N, nullptr);
  Children.assign(N, {});
  std::vector<std::vector<unsigned>> ChildIdx(N);
  for (const auto &B : F.blocks()) {
    unsigned Id = B->id();
    if (Id == Root || IdomIdx[Id] == ~0u)
      continue;
    Idom[Id] = F.blocks()[IdomIdx[Id]].get();
    Children[IdomIdx[Id]].push_back(B.get());
    ChildIdx[IdomIdx[Id]].push_back(Id);
  }

  DfsIn.assign(N, 0);
  DfsOut.assign(N, 0);
  numberTree(Root, ChildIdx, DfsIn, DfsOut);

  RPO.reserve(RPOIdx.size());
  for (unsigned Id : RPOIdx)
    RPO.push_back(F.blocks()[Id].get());
}

DominanceFrontier::DominanceFrontier(const Function &F,
                                     const DominatorTree &DT) {
  DF.assign(F.numBlocks(), {});
  for (const auto &B : F.blocks()) {
    if (B->numPreds() < 2)
      continue;
    for (BasicBlock *P : B->preds()) {
      BasicBlock *Runner = P;
      while (Runner && Runner != DT.idom(B.get())) {
        // Avoid duplicates: frontiers are small, linear scan is fine.
        auto &Frontier = DF[Runner->id()];
        bool Present = false;
        for (BasicBlock *Existing : Frontier)
          if (Existing == B.get())
            Present = true;
        if (!Present)
          Frontier.push_back(B.get());
        Runner = DT.idom(Runner);
      }
    }
  }
}

PostDominatorTree::PostDominatorTree(const Function &F) {
  unsigned N = F.numBlocks();
  unsigned VirtualExit = N;
  // Reverse graph: succs(reverse) = preds(cfg); virtual exit points at all
  // blocks without successors.
  std::vector<std::vector<unsigned>> RevSuccs(N + 1), RevPreds(N + 1);
  for (const auto &B : F.blocks()) {
    for (BasicBlock *P : B->preds()) {
      RevSuccs[B->id()].push_back(P->id());
      RevPreds[P->id()].push_back(B->id());
    }
    if (B->succs().empty()) {
      RevSuccs[VirtualExit].push_back(B->id());
      RevPreds[B->id()].push_back(VirtualExit);
    }
  }

  std::vector<unsigned> RPOIdx = computeRPO(VirtualExit, RevSuccs);
  std::vector<unsigned> IdomIdx =
      computeIdoms(N + 1, VirtualExit, RevPreds, RPOIdx);

  Reached.assign(N, false);
  for (unsigned Id : RPOIdx)
    if (Id != VirtualExit)
      Reached[Id] = true;

  Ipdom.assign(N, nullptr);
  std::vector<std::vector<unsigned>> ChildIdx(N + 1);
  for (const auto &B : F.blocks()) {
    unsigned Id = B->id();
    if (!Reached[Id] || IdomIdx[Id] == ~0u)
      continue;
    ChildIdx[IdomIdx[Id]].push_back(Id);
    if (IdomIdx[Id] != VirtualExit)
      Ipdom[Id] = F.blocks()[IdomIdx[Id]].get();
  }

  DfsIn.assign(N + 1, 0);
  DfsOut.assign(N + 1, 0);
  numberTree(VirtualExit, ChildIdx, DfsIn, DfsOut);
}

bool PostDominatorTree::postDominates(const BasicBlock *A,
                                      const BasicBlock *B) const {
  if (!Reached[A->id()] || !Reached[B->id()])
    return false;
  return DfsIn[A->id()] <= DfsIn[B->id()] &&
         DfsOut[B->id()] <= DfsOut[A->id()];
}
