//===- analysis/LoopInfo.cpp - Natural loop detection ----------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include <algorithm>
#include <map>

using namespace vrp;

LoopInfo::LoopInfo(const Function &F, const DominatorTree &DT) {
  BlockLoop.assign(F.numBlocks(), nullptr);

  // Collect back edges (To dominates From) grouped by header.
  std::map<BasicBlock *, std::vector<BasicBlock *>> HeaderLatches;
  for (const auto &B : F.blocks())
    for (BasicBlock *S : B->succs())
      if (DT.dominates(S, B.get()))
        HeaderLatches[S].push_back(B.get());

  // Build each loop body by backward reachability from latches, stopping
  // at the header.
  for (auto &[Header, Latches] : HeaderLatches) {
    auto L = std::make_unique<Loop>(Header);
    L->Latches = Latches;
    L->Blocks.insert(Header);
    std::vector<BasicBlock *> Work(Latches.begin(), Latches.end());
    while (!Work.empty()) {
      BasicBlock *B = Work.back();
      Work.pop_back();
      if (!L->Blocks.insert(B).second)
        continue;
      for (BasicBlock *P : B->preds())
        Work.push_back(P);
    }
    Loops.push_back(std::move(L));
  }

  // Nesting: loop A is inside loop B when B contains A's header and A != B.
  // Sort by size so the innermost (smallest) loop claims blocks first.
  std::vector<Loop *> BySize;
  for (auto &L : Loops)
    BySize.push_back(L.get());
  std::sort(BySize.begin(), BySize.end(), [](Loop *A, Loop *B) {
    return A->Blocks.size() < B->Blocks.size();
  });

  for (Loop *L : BySize)
    for (const BasicBlock *B : L->Blocks)
      if (!BlockLoop[B->id()])
        BlockLoop[B->id()] = L;

  // Parent: the innermost *other* loop containing the header.
  for (Loop *L : BySize) {
    for (Loop *Candidate : BySize) {
      if (Candidate == L || Candidate->Blocks.size() <= L->Blocks.size())
        continue;
      if (Candidate->contains(L->header())) {
        L->Parent = Candidate;
        Candidate->SubLoops.push_back(L);
        break;
      }
    }
  }
  for (Loop *L : BySize) {
    unsigned Depth = 1;
    for (Loop *P = L->Parent; P; P = P->Parent)
      ++Depth;
    L->Depth = Depth;
  }

  // Exits and preheaders.
  for (auto &L : Loops) {
    for (const BasicBlock *BConst : L->Blocks) {
      auto *B = const_cast<BasicBlock *>(BConst);
      for (BasicBlock *S : B->succs())
        if (!L->contains(S))
          L->Exits.push_back({B, S});
    }
    BasicBlock *Pre = nullptr;
    bool Unique = true;
    for (BasicBlock *P : L->header()->preds()) {
      if (L->contains(P))
        continue;
      if (Pre && Pre != P)
        Unique = false;
      Pre = P;
    }
    if (Pre && Unique && Pre->succs().size() == 1)
      L->Preheader = Pre;
  }
}

bool LoopInfo::isBackEdge(const BasicBlock *From, const BasicBlock *To) const {
  Loop *L = loopOf(To);
  while (L) {
    if (L->header() == To) {
      for (BasicBlock *Latch : L->latches())
        if (Latch == From)
          return true;
      return false;
    }
    L = L->parent();
  }
  return false;
}
