//===- analysis/PersistentCache.h - Durable per-function VRP memo -*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent, content-addressed complement to AnalysisCache: a
/// per-function memo of complete `FunctionVRPResult`s that survives
/// process restarts (support/ResultStore.h provides the durable file;
/// docs/CACHE.md specifies the format). A warm run of runModuleVRP
/// restores a hit bitwise-identically and skips propagation entirely.
///
/// Content addressing makes staleness structurally impossible: the key is
/// a pure function of everything the propagation result depends on —
///
///   1. the function's canonical IR text (ir/IRPrinter.h's printFunction,
///      which renders every instruction, block and predecessor edge);
///   2. every result-affecting VRPOptions field;
///   3. the function's interprocedural context, i.e. the RESOLVED
///      parameter range of each formal and the RESOLVED return range of
///      each call site, exactly as the engine would observe them through
///      the PropagationContext hooks.
///
/// (3) is what makes incremental re-analysis sound in both dataflow
/// directions: editing a callee changes its return range, which changes
/// every caller's context fingerprint (the issue's "fold callee
/// fingerprints into the caller's key"), and editing a caller changes the
/// jump-function ranges flowing into its callees — either way exactly the
/// SCC-upward/-downward dependents re-analyze, nothing else.
///
/// Integration contract (kept by interproc/InterproceduralVRP.cpp and
/// eval/SuiteRunner.cpp):
///  - degraded results are never inserted; quarantined functions are
///    expunged before their benchmark's pending inserts commit;
///  - fault-injected runs (fault::armed()) and traced runs (Opts.Trace)
///    bypass the cache entirely;
///  - inserts buffer under the current benchmark scope
///    (fault::currentKey()) and reach disk only via commitScope() after
///    the benchmark — including its audit — succeeded;
///  - on a hit the engine's single AnalysisCache::dfs() touch is
///    replayed by the caller so AnalysisCache counters stay identical
///    cold vs. warm.
///
/// Determinism: lookups consult ResultStore's frozen-at-open snapshot, so
/// the hit/miss pattern — and therefore every derived counter — is
/// independent of thread count and schedule.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_ANALYSIS_PERSISTENTCACHE_H
#define VRP_ANALYSIS_PERSISTENTCACHE_H

#include "support/ResultStore.h"
#include "vrp/Propagation.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vrp {

class PersistentCache {
public:
  /// Payload-encoding version, stored in the ResultStore header; bump on
  /// any change to serialize()'s output or the key recipe.
  static constexpr uint32_t FormatVersion = 2;

  /// Opens (creating if absent) the cache file at \p Path. With \p Verify
  /// set, a hit does not skip analysis: the function is re-analyzed and
  /// the fresh serialization is compared byte-for-byte against the stored
  /// payload, counting a divergence on mismatch (predictor_tool
  /// --cache-verify exits 5 when any were seen). Returns null when the
  /// file cannot be opened for writing or another process holds the
  /// store's single-writer lock (support/ResultStore.h); \p Why, if
  /// non-null, then carries the structured reason.
  static std::unique_ptr<PersistentCache> open(const std::string &Path,
                                               bool Verify,
                                               Status *Why = nullptr);

  /// The content-addressed key for analyzing \p F under \p Opts in the
  /// interprocedural context \p Ctx (whose hooks are consulted for every
  /// formal parameter and call site).
  static std::string makeKey(const Function &F, const VRPOptions &Opts,
                             const PropagationContext &Ctx);

  /// Exact, deterministic serialization of a result: line-oriented text
  /// with hex-float doubles (bitwise round trips, mirroring eval/Journal)
  /// and pointer-free value references (instructions by dense id, params
  /// by index, constants by value), entries sorted so the bytes are
  /// independent of heap layout and thread schedule.
  static std::string serialize(const FunctionVRPResult &R);

  /// Rebuilds a result for \p F from serialize() output. Returns false
  /// (leaving \p Out unspecified) on any structural mismatch — the caller
  /// treats that as a miss.
  static bool deserialize(const std::string &Payload, const Function &F,
                          FunctionVRPResult &Out);

  /// Snapshot lookup. On a hit restores into \p Out and, when \p
  /// RawPayload is non-null, also hands back the stored bytes (for the
  /// verify comparison). The hit is remembered under the current scope so
  /// a later expunge() of this function can tombstone it.
  bool lookup(const std::string &Key, const Function &F,
              FunctionVRPResult &Out, std::string *RawPayload = nullptr);

  /// Buffers (Key -> serialize(R)) under the current benchmark scope.
  /// Never call with a degraded result.
  void insert(const std::string &Key, const FunctionVRPResult &R);

  /// Removes any pending insert for function \p FnName in the current
  /// scope and tombstones any snapshot hit served for it — a quarantined
  /// function's results must not survive in the store.
  void expunge(const std::string &FnName);

  /// Appends the current scope's pending records to disk (call after the
  /// benchmark — including its audit — succeeded).
  void commitScope();

  /// Drops the current scope's pending records (failed benchmark).
  void discardScope();

  /// Records one verify-mode divergence (stored payload != fresh bytes).
  void noteDivergence() { Divergences.fetch_add(1); }
  uint64_t divergences() const { return Divergences.load(); }
  bool verifyMode() const { return Verify; }

  store::ResultStoreStats stats() const { return Store->stats(); }

private:
  PersistentCache() = default;

  struct Touched {
    std::string FnName;
    std::string Key;
    std::string Payload;    ///< Pending insert bytes; empty for a hit.
    bool FromSnapshot = false;
  };

  std::unique_ptr<store::ResultStore> Store;
  bool Verify = false;
  std::atomic<uint64_t> Divergences{0};
  std::mutex M;
  /// Benchmark scope (fault::currentKey()) -> hits served and inserts
  /// pending in that scope.
  std::map<std::string, std::vector<Touched>> Scopes;
};

} // namespace vrp

#endif // VRP_ANALYSIS_PERSISTENTCACHE_H
