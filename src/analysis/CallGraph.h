//===- analysis/CallGraph.h - Call graph and SCC order ----------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The module call graph with Tarjan SCCs. Interprocedural VRP (§3.7)
/// walks SCCs bottom-up (callees before callers) and gives ⊥ parameter
/// ranges to functions participating in recursion.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_ANALYSIS_CALLGRAPH_H
#define VRP_ANALYSIS_CALLGRAPH_H

#include "ir/Module.h"

#include <vector>

namespace vrp {

/// Call graph over a module's functions.
class CallGraph {
public:
  explicit CallGraph(const Module &M);

  /// Call sites in \p F (every CallInst, in block order).
  const std::vector<const CallInst *> &callSites(const Function *F) const;

  /// Direct callees of \p F (with duplicates for multiple sites).
  std::vector<const Function *> callees(const Function *F) const;

  /// Call sites across the whole module that target \p Callee.
  std::vector<const CallInst *> callersOf(const Function *Callee) const;

  /// SCCs in bottom-up order: every callee's SCC appears before its
  /// callers' (reverse topological order of the condensation).
  const std::vector<std::vector<const Function *>> &sccsBottomUp() const {
    return SCCs;
  }

  /// True when \p F is in a nontrivial SCC or calls itself.
  bool isRecursive(const Function *F) const;

private:
  const Module &M;
  std::vector<std::vector<const CallInst *>> Sites; ///< By function index.
  std::vector<unsigned> FnIndex;                    ///< Function -> index.
  std::vector<std::vector<const Function *>> SCCs;
  std::vector<unsigned> SccOf; ///< Function index -> SCC index.

  unsigned indexOf(const Function *F) const;
};

} // namespace vrp

#endif // VRP_ANALYSIS_CALLGRAPH_H
