//===- analysis/CallGraph.h - Call graph and SCC order ----------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The module call graph with Tarjan SCCs. Interprocedural VRP (§3.7)
/// walks SCCs bottom-up (callees before callers) and gives ⊥ parameter
/// ranges to functions participating in recursion.
///
/// On top of the SCC order the graph exposes *waves*: a layering of the
/// condensation where wave(S) = 1 + max over callee SCCs (0 for leaves).
/// Two SCCs in the same wave share no call edge in either direction, so
/// the interprocedural scheduler can analyze a whole wave's SCCs on
/// different threads with no cross-talk, merging at the wave boundary.
///
/// Construction, index lookup and caller adjacency are all linear in the
/// module (function -> index is a hash map, caller sites are precomputed
/// per callee) so the graph stays cheap at 10^5-function scale.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_ANALYSIS_CALLGRAPH_H
#define VRP_ANALYSIS_CALLGRAPH_H

#include "ir/Module.h"

#include <unordered_map>
#include <vector>

namespace vrp {

/// Call graph over a module's functions.
class CallGraph {
public:
  explicit CallGraph(const Module &M);

  /// Dense module index of \p F (its position in M.functions()).
  unsigned indexOf(const Function *F) const;

  /// Call sites in \p F (every CallInst, in block order).
  const std::vector<const CallInst *> &callSites(const Function *F) const;

  /// Direct callees of \p F (with duplicates for multiple sites).
  std::vector<const Function *> callees(const Function *F) const;

  /// Call sites across the whole module that target \p Callee, in
  /// caller-function-index then block order (precomputed, O(1)).
  const std::vector<const CallInst *> &
  callerSitesOf(const Function *Callee) const;

  /// Copying variant kept for existing callers.
  std::vector<const CallInst *> callersOf(const Function *Callee) const {
    return callerSitesOf(Callee);
  }

  /// SCCs in bottom-up order: every callee's SCC appears before its
  /// callers' (reverse topological order of the condensation).
  const std::vector<std::vector<const Function *>> &sccsBottomUp() const {
    return SCCs;
  }

  unsigned numSccs() const { return static_cast<unsigned>(SCCs.size()); }

  /// SCC index (into sccsBottomUp()) of \p F.
  unsigned sccOf(const Function *F) const { return SccOf[indexOf(F)]; }
  unsigned sccOfIndex(unsigned FnIdx) const { return SccOf[FnIdx]; }

  /// Wave of SCC \p SccIdx: 0 for SCCs with no out-edges (leaf callees),
  /// otherwise 1 + the maximum wave among callee SCCs.
  unsigned waveOf(unsigned SccIdx) const { return WaveOfScc[SccIdx]; }

  /// SCC indices per wave, wave 0 first. Processing waves in order is a
  /// bottom-up schedule; SCCs within one wave are mutually independent.
  const std::vector<std::vector<unsigned>> &waves() const { return Waves; }
  unsigned numWaves() const { return static_cast<unsigned>(Waves.size()); }

  /// True when \p F is in a nontrivial SCC or calls itself.
  bool isRecursive(const Function *F) const;
  bool isRecursiveIndex(unsigned FnIdx) const;

private:
  const Module &M;
  std::vector<std::vector<const CallInst *>> Sites; ///< By function index.
  std::vector<std::vector<const CallInst *>> CallerSites; ///< By callee index.
  std::unordered_map<const Function *, unsigned> FnIndex;
  std::vector<std::vector<const Function *>> SCCs;
  std::vector<unsigned> SccOf;     ///< Function index -> SCC index.
  std::vector<unsigned> WaveOfScc; ///< SCC index -> wave.
  std::vector<std::vector<unsigned>> Waves; ///< Wave -> SCC indices.
};

} // namespace vrp

#endif // VRP_ANALYSIS_CALLGRAPH_H
