//===- analysis/DFS.cpp - DFS numbering and back edges ---------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "analysis/DFS.h"

#include <cassert>

using namespace vrp;

DFSInfo::DFSInfo(const Function &F) {
  unsigned N = F.numBlocks();
  PostNum.assign(N, 0);
  enum Color { White, Gray, Black };
  std::vector<Color> Colors(N, White);
  std::vector<BasicBlock *> PostOrder;
  PostOrder.reserve(N);

  // Iterative DFS keeping an explicit successor cursor per frame so we can
  // classify edges the moment we traverse them.
  struct Frame {
    BasicBlock *Block;
    std::vector<BasicBlock *> Succs;
    size_t Next = 0;
  };
  std::vector<Frame> Stack;
  BasicBlock *Entry = F.entry();
  assert(Entry && "function has no entry block");
  Colors[Entry->id()] = Gray;
  Stack.push_back({Entry, Entry->succs()});

  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.Next == Top.Succs.size()) {
      Colors[Top.Block->id()] = Black;
      PostNum[Top.Block->id()] = PostOrder.size();
      PostOrder.push_back(Top.Block);
      Stack.pop_back();
      continue;
    }
    BasicBlock *Succ = Top.Succs[Top.Next++];
    switch (Colors[Succ->id()]) {
    case White:
      Colors[Succ->id()] = Gray;
      Stack.push_back({Succ, Succ->succs()});
      break;
    case Gray:
      BackEdges.insert({Top.Block->id(), Succ->id()});
      break;
    case Black:
      break;
    }
  }

  RPO.assign(PostOrder.rbegin(), PostOrder.rend());
}
