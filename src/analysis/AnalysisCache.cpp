//===- analysis/AnalysisCache.cpp - Per-function analysis memo -------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisCache.h"

#include "support/Telemetry.h"

using namespace vrp;

AnalysisCache::Entry &AnalysisCache::entryFor(const Function &F) {
  std::lock_guard<std::mutex> Lock(MapMutex);
  std::unique_ptr<Entry> &Slot = Entries[&F];
  if (!Slot)
    Slot = std::make_unique<Entry>();
  return *Slot;
}

void AnalysisCache::count(bool Hit) {
  if (Hit) {
    Hits.fetch_add(1, std::memory_order_relaxed);
    telemetry::count(telemetry::Counter::AnalysisCacheHits);
  } else {
    Misses.fetch_add(1, std::memory_order_relaxed);
    telemetry::count(telemetry::Counter::AnalysisCacheMisses);
  }
}

const DominatorTree &AnalysisCache::ensureDominators(Entry &E,
                                                     const Function &F) {
  count(E.DT != nullptr);
  if (!E.DT)
    E.DT = std::make_unique<DominatorTree>(F);
  return *E.DT;
}

const PostDominatorTree &
AnalysisCache::ensurePostDominators(Entry &E, const Function &F) {
  count(E.PDT != nullptr);
  if (!E.PDT)
    E.PDT = std::make_unique<PostDominatorTree>(F);
  return *E.PDT;
}

const LoopInfo &AnalysisCache::ensureLoopInfo(Entry &E, const Function &F) {
  count(E.LI != nullptr);
  if (!E.LI)
    E.LI = std::make_unique<LoopInfo>(F, ensureDominators(E, F));
  return *E.LI;
}

const DFSInfo &AnalysisCache::ensureDfs(Entry &E, const Function &F) {
  count(E.DFS != nullptr);
  if (!E.DFS)
    E.DFS = std::make_unique<DFSInfo>(F);
  return *E.DFS;
}

const DominatorTree &AnalysisCache::dominators(const Function &F) {
  Entry &E = entryFor(F);
  std::lock_guard<std::mutex> Lock(E.M);
  return ensureDominators(E, F);
}

const PostDominatorTree &AnalysisCache::postDominators(const Function &F) {
  Entry &E = entryFor(F);
  std::lock_guard<std::mutex> Lock(E.M);
  return ensurePostDominators(E, F);
}

const LoopInfo &AnalysisCache::loopInfo(const Function &F) {
  Entry &E = entryFor(F);
  std::lock_guard<std::mutex> Lock(E.M);
  return ensureLoopInfo(E, F);
}

const DFSInfo &AnalysisCache::dfs(const Function &F) {
  Entry &E = entryFor(F);
  std::lock_guard<std::mutex> Lock(E.M);
  return ensureDfs(E, F);
}

const BranchProbMap &
AnalysisCache::branchProbs(const Function &F,
                           const BranchProbComputeFn &Compute) {
  Entry &E = entryFor(F);
  std::lock_guard<std::mutex> Lock(E.M);
  count(E.Probs != nullptr);
  if (!E.Probs) {
    const LoopInfo &LI = ensureLoopInfo(E, F);
    const PostDominatorTree &PDT = ensurePostDominators(E, F);
    const DFSInfo &DFS = ensureDfs(E, F);
    E.Probs = std::make_unique<BranchProbMap>(Compute(F, LI, PDT, DFS));
  }
  return *E.Probs;
}

void AnalysisCache::invalidate(const Function *F) {
  std::lock_guard<std::mutex> Lock(MapMutex);
  if (Entries.erase(F)) {
    Invalidations.fetch_add(1, std::memory_order_relaxed);
    telemetry::count(telemetry::Counter::AnalysisCacheInvalidations);
  }
}

void AnalysisCache::clear() {
  std::lock_guard<std::mutex> Lock(MapMutex);
  Invalidations.fetch_add(Entries.size(), std::memory_order_relaxed);
  telemetry::count(telemetry::Counter::AnalysisCacheInvalidations,
                   Entries.size());
  Entries.clear();
}

AnalysisCacheStats AnalysisCache::stats() const {
  AnalysisCacheStats S;
  S.Hits = Hits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  S.Invalidations = Invalidations.load(std::memory_order_relaxed);
  return S;
}
