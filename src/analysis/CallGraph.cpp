//===- analysis/CallGraph.cpp - Call graph and SCC order -------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

#include <algorithm>
#include <cassert>

using namespace vrp;

unsigned CallGraph::indexOf(const Function *F) const {
  auto It = FnIndex.find(F);
  assert(It != FnIndex.end() && "function not in module");
  return It->second;
}

CallGraph::CallGraph(const Module &M) : M(M) {
  unsigned N = M.functions().size();
  Sites.resize(N);
  CallerSites.resize(N);
  FnIndex.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    FnIndex.emplace(M.functions()[I].get(), I);
  for (unsigned I = 0; I < N; ++I) {
    const Function *F = M.functions()[I].get();
    for (const auto &B : F->blocks())
      for (const auto &Inst : B->instructions())
        if (const auto *Call = dyn_cast<CallInst>(Inst.get()))
          Sites[I].push_back(Call);
  }
  // Caller adjacency: iterating callers in function-index order keeps the
  // per-callee site list in the same deterministic order the old
  // whole-module scan produced.
  for (unsigned I = 0; I < N; ++I)
    for (const CallInst *Call : Sites[I])
      CallerSites[indexOf(Call->callee())].push_back(Call);

  // Tarjan SCC (iterative).
  std::vector<unsigned> Index(N, ~0u), LowLink(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<unsigned> Stack;
  SccOf.assign(N, ~0u);
  unsigned NextIndex = 0;

  struct Frame {
    unsigned Node;
    size_t NextCallee = 0;
    std::vector<unsigned> Callees;
  };

  auto calleeIndices = [&](unsigned I) {
    std::vector<unsigned> Result;
    for (const CallInst *Call : Sites[I])
      Result.push_back(indexOf(Call->callee()));
    return Result;
  };

  for (unsigned Start = 0; Start < N; ++Start) {
    if (Index[Start] != ~0u)
      continue;
    std::vector<Frame> Frames;
    Frames.push_back({Start, 0, calleeIndices(Start)});
    Index[Start] = LowLink[Start] = NextIndex++;
    Stack.push_back(Start);
    OnStack[Start] = true;

    while (!Frames.empty()) {
      Frame &Top = Frames.back();
      if (Top.NextCallee < Top.Callees.size()) {
        unsigned W = Top.Callees[Top.NextCallee++];
        if (Index[W] == ~0u) {
          Index[W] = LowLink[W] = NextIndex++;
          Stack.push_back(W);
          OnStack[W] = true;
          Frames.push_back({W, 0, calleeIndices(W)});
        } else if (OnStack[W]) {
          LowLink[Top.Node] = std::min(LowLink[Top.Node], Index[W]);
        }
        continue;
      }
      // Finished Top.
      unsigned V = Top.Node;
      if (LowLink[V] == Index[V]) {
        std::vector<const Function *> Component;
        unsigned W;
        do {
          W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          SccOf[W] = SCCs.size();
          Component.push_back(M.functions()[W].get());
        } while (W != V);
        SCCs.push_back(std::move(Component));
      }
      Frames.pop_back();
      if (!Frames.empty())
        LowLink[Frames.back().Node] =
            std::min(LowLink[Frames.back().Node], LowLink[V]);
    }
  }
  // Tarjan emits SCCs with callees before callers already (an SCC is
  // completed only after everything it reaches): the natural emission
  // order is the bottom-up order we want.

  // Wave layering over the condensation. Because SCC indices are already
  // bottom-up, every cross-SCC edge points from a higher index to a lower
  // one, so a single pass in index order sees callee waves before they
  // are needed.
  WaveOfScc.assign(SCCs.size(), 0);
  for (unsigned S = 0; S < SCCs.size(); ++S) {
    unsigned Wave = 0;
    for (const Function *F : SCCs[S])
      for (const CallInst *Call : Sites[indexOf(F)]) {
        unsigned T = SccOf[indexOf(Call->callee())];
        if (T == S)
          continue;
        assert(T < S && "bottom-up SCC order violated");
        Wave = std::max(Wave, WaveOfScc[T] + 1);
      }
    WaveOfScc[S] = Wave;
    if (Wave >= Waves.size())
      Waves.resize(Wave + 1);
    Waves[Wave].push_back(S);
  }
}

const std::vector<const CallInst *> &
CallGraph::callSites(const Function *F) const {
  return Sites[indexOf(F)];
}

std::vector<const Function *> CallGraph::callees(const Function *F) const {
  std::vector<const Function *> Result;
  for (const CallInst *Call : Sites[indexOf(F)])
    Result.push_back(Call->callee());
  return Result;
}

const std::vector<const CallInst *> &
CallGraph::callerSitesOf(const Function *Callee) const {
  return CallerSites[indexOf(Callee)];
}

bool CallGraph::isRecursiveIndex(unsigned I) const {
  if (SCCs[SccOf[I]].size() > 1)
    return true;
  const Function *F = M.functions()[I].get();
  for (const CallInst *Call : Sites[I])
    if (Call->callee() == F)
      return true;
  return false;
}

bool CallGraph::isRecursive(const Function *F) const {
  return isRecursiveIndex(indexOf(F));
}
