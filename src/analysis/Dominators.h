//===- analysis/Dominators.h - (Post)dominator trees ------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator and postdominator trees via the Cooper–Harvey–Kennedy "simple,
/// fast dominance" algorithm, plus Cytron-et-al. dominance frontiers (the
/// φ-placement driver for SSA construction).
///
//===----------------------------------------------------------------------===//

#ifndef VRP_ANALYSIS_DOMINATORS_H
#define VRP_ANALYSIS_DOMINATORS_H

#include "ir/Function.h"

#include <vector>

namespace vrp {

/// The dominator tree of a function CFG.
class DominatorTree {
public:
  explicit DominatorTree(const Function &F);

  /// Immediate dominator; null for the entry block.
  BasicBlock *idom(const BasicBlock *B) const { return Idom[B->id()]; }

  /// Reflexive dominance: a block dominates itself.
  bool dominates(const BasicBlock *A, const BasicBlock *B) const {
    return DfsIn[A->id()] <= DfsIn[B->id()] &&
           DfsOut[B->id()] <= DfsOut[A->id()];
  }

  bool strictlyDominates(const BasicBlock *A, const BasicBlock *B) const {
    return A != B && dominates(A, B);
  }

  const std::vector<BasicBlock *> &children(const BasicBlock *B) const {
    return Children[B->id()];
  }

  /// Blocks in reverse postorder of the CFG (entry first); handy for
  /// clients that iterate in dominance-compatible order.
  const std::vector<BasicBlock *> &rpo() const { return RPO; }

private:
  std::vector<BasicBlock *> Idom;
  std::vector<std::vector<BasicBlock *>> Children;
  std::vector<unsigned> DfsIn, DfsOut;
  std::vector<BasicBlock *> RPO;
};

/// Dominance frontiers computed from a DominatorTree.
class DominanceFrontier {
public:
  DominanceFrontier(const Function &F, const DominatorTree &DT);

  const std::vector<BasicBlock *> &frontier(const BasicBlock *B) const {
    return DF[B->id()];
  }

private:
  std::vector<std::vector<BasicBlock *>> DF;
};

/// The postdominator tree. Computed on the reverse CFG with a virtual exit
/// that every `ret` block (and, conservatively, every block with no
/// successors) is attached to.
class PostDominatorTree {
public:
  explicit PostDominatorTree(const Function &F);

  /// Reflexive postdominance. Returns false when either block cannot reach
  /// an exit (infinite-loop blocks postdominate nothing interesting).
  bool postDominates(const BasicBlock *A, const BasicBlock *B) const;

  /// Immediate postdominator; null for exit blocks and blocks whose
  /// postdominator is the virtual exit.
  BasicBlock *ipdom(const BasicBlock *B) const { return Ipdom[B->id()]; }

private:
  std::vector<BasicBlock *> Ipdom;
  std::vector<unsigned> DfsIn, DfsOut;
  std::vector<bool> Reached;
};

} // namespace vrp

#endif // VRP_ANALYSIS_DOMINATORS_H
