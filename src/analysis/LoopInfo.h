//===- analysis/LoopInfo.h - Natural loop detection -------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural loops from dominator-identified back edges. Used by the
/// Ball–Larus heuristics (loop branch / loop exit / loop header
/// heuristics) and by the block-frequency propagation application.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_ANALYSIS_LOOPINFO_H
#define VRP_ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"

#include <memory>
#include <set>
#include <vector>

namespace vrp {

/// One natural loop: a header plus the union of the natural loop bodies of
/// every back edge targeting that header.
class Loop {
public:
  Loop(BasicBlock *Header) : Header(Header) {}

  BasicBlock *header() const { return Header; }
  Loop *parent() const { return Parent; }
  unsigned depth() const { return Depth; }

  bool contains(const BasicBlock *B) const { return Blocks.count(B) != 0; }
  const std::set<const BasicBlock *> &blocks() const { return Blocks; }

  /// Latch blocks: sources of back edges into the header.
  const std::vector<BasicBlock *> &latches() const { return Latches; }

  /// Exit edges: (inside block, outside successor) pairs.
  const std::vector<std::pair<BasicBlock *, BasicBlock *>> &exits() const {
    return Exits;
  }

  /// The unique predecessor of the header outside the loop, or null.
  BasicBlock *preheader() const { return Preheader; }

  const std::vector<Loop *> &subLoops() const { return SubLoops; }

private:
  friend class LoopInfo;
  BasicBlock *Header;
  Loop *Parent = nullptr;
  unsigned Depth = 1;
  std::set<const BasicBlock *> Blocks;
  std::vector<BasicBlock *> Latches;
  std::vector<std::pair<BasicBlock *, BasicBlock *>> Exits;
  BasicBlock *Preheader = nullptr;
  std::vector<Loop *> SubLoops;
};

/// All natural loops of a function, with nesting.
class LoopInfo {
public:
  LoopInfo(const Function &F, const DominatorTree &DT);

  /// The innermost loop containing \p B, or null.
  Loop *loopOf(const BasicBlock *B) const {
    return B->id() < BlockLoop.size() ? BlockLoop[B->id()] : nullptr;
  }

  unsigned loopDepth(const BasicBlock *B) const {
    Loop *L = loopOf(B);
    return L ? L->depth() : 0;
  }

  bool isLoopHeader(const BasicBlock *B) const {
    Loop *L = loopOf(B);
    return L && L->header() == B;
  }

  /// True when the CFG edge From->To is a loop back edge (To is a header
  /// dominating From).
  bool isBackEdge(const BasicBlock *From, const BasicBlock *To) const;

  const std::vector<std::unique_ptr<Loop>> &loops() const { return Loops; }
  unsigned numLoops() const { return Loops.size(); }

private:
  std::vector<std::unique_ptr<Loop>> Loops;
  std::vector<Loop *> BlockLoop; ///< Innermost loop per block id.
};

} // namespace vrp

#endif // VRP_ANALYSIS_LOOPINFO_H
