//===- analysis/AnalysisCache.h - Per-function analysis memo ----*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-function memo for the CFG analyses the pipeline recomputes most:
/// dominator/postdominator trees, natural loops, DFS numbering, and the
/// per-branch heuristic probability map (the Ball–Larus fallback). One
/// cache spans one evaluation of one module, so the fallback and CFG
/// analyses are computed once per function per evaluation instead of once
/// per predictor per function.
///
/// Keys are `const Function *`. Entries are heap-allocated, so references
/// handed out stay valid until that function is explicitly invalidated —
/// required by `FunctionCloning`, which retargets call sites inside caller
/// bodies (see InterproceduralVRP::cloneDivergentCallees).
///
/// Thread-safe: the map and each entry are mutex-guarded so the parallel
/// function fan-out in `runModuleVRP` can share one cache. Invalidation is
/// a coordinator-only operation: callers must not hold references to a
/// function's analyses across `invalidate`/`clear` of that function.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_ANALYSIS_ANALYSISCACHE_H
#define VRP_ANALYSIS_ANALYSISCACHE_H

#include "analysis/DFS.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

namespace vrp {

class CondBrInst;

/// Matches heuristics/Heuristics.h's BranchProbMap; redeclared here so the
/// analysis layer does not depend on the heuristics library.
using BranchProbMap = std::map<const CondBrInst *, double>;

/// Cache efficiency counters (RangeStats-style: aggregate with +=).
struct AnalysisCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Invalidations = 0;

  double hitRate() const {
    uint64_t Total = Hits + Misses;
    return Total == 0 ? 0.0 : static_cast<double>(Hits) / Total;
  }

  AnalysisCacheStats &operator+=(const AnalysisCacheStats &R) {
    Hits += R.Hits;
    Misses += R.Misses;
    Invalidations += R.Invalidations;
    return *this;
  }
};

class AnalysisCache {
public:
  /// Computes the fallback probability map from the already-memoized CFG
  /// analyses. Receiving them as arguments (instead of calling back into
  /// the cache) keeps the computation inside one entry lock.
  using BranchProbComputeFn = std::function<BranchProbMap(
      const Function &, const LoopInfo &, const PostDominatorTree &,
      const DFSInfo &)>;

  AnalysisCache() = default;
  AnalysisCache(const AnalysisCache &) = delete;
  AnalysisCache &operator=(const AnalysisCache &) = delete;

  const DominatorTree &dominators(const Function &F);
  const PostDominatorTree &postDominators(const Function &F);
  const LoopInfo &loopInfo(const Function &F);
  const DFSInfo &dfs(const Function &F);

  /// Memoized per-branch probability map; \p Compute runs at most once per
  /// function until invalidated.
  const BranchProbMap &branchProbs(const Function &F,
                                   const BranchProbComputeFn &Compute);

  /// Drops every analysis cached for \p F (call after mutating its body,
  /// e.g. when cloning retargets one of its call sites).
  void invalidate(const Function *F);

  /// Drops everything (e.g. after wholesale module transformation).
  void clear();

  AnalysisCacheStats stats() const;

private:
  struct Entry {
    std::mutex M;
    std::unique_ptr<DominatorTree> DT;
    std::unique_ptr<PostDominatorTree> PDT;
    std::unique_ptr<LoopInfo> LI;
    std::unique_ptr<DFSInfo> DFS;
    std::unique_ptr<BranchProbMap> Probs;
  };

  Entry &entryFor(const Function &F);

  // Unlocked builders; the caller holds Entry::M.
  const DominatorTree &ensureDominators(Entry &E, const Function &F);
  const PostDominatorTree &ensurePostDominators(Entry &E, const Function &F);
  const LoopInfo &ensureLoopInfo(Entry &E, const Function &F);
  const DFSInfo &ensureDfs(Entry &E, const Function &F);

  void count(bool Hit);

  mutable std::mutex MapMutex;
  std::map<const Function *, std::unique_ptr<Entry>> Entries;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Invalidations{0};
};

} // namespace vrp

#endif // VRP_ANALYSIS_ANALYSISCACHE_H
