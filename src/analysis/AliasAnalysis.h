//===- analysis/AliasAnalysis.h - Probabilistic load aliasing ---*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A probabilistic points-to summary for Load instructions. The paper
/// drops every load to ⊥ ("ranges become bottom", §3.5); this pass
/// recovers two tiers of information so the propagation engine can do
/// better (docs/DOMAINS.md, "Load aliasing"):
///
///  Tier (a) — store-to-load forwarding. A load whose own basic block
///  contains an earlier store to the same object at a provably identical
///  index (the same SSA value, or equal integer constants), with no
///  intervening store to that object and — for globals, which a callee
///  can reach — no intervening call, must observe exactly the stored SSA
///  value. The load's range IS the stored value's range.
///
///  Tier (b) — weighted may-alias candidates. For an object whose stores
///  all occur in the load's own function (the "exclusive writer"
///  property, checked module-wide) — or that is never stored at all —
///  every value the loaded cell can hold is either the cell's initial
///  value or one of those stores' operands, in ANY activation (globals
///  persist across calls, but only this function writes them; locals are
///  reinitialized per activation). Each store becomes a candidate
///  weighted by the probability its index overlaps the load's: 1 for a
///  provably identical index, 0 (excluded) for provably distinct
///  constants, 1/size as the uniform-indexing estimate otherwise. The
///  initial value joins with the leftover weight, floored so it is never
///  fully crowded out. The engine meets the candidates' ranges with
///  these weights instead of returning ⊥.
///
/// Objects with stores in other functions stay ⊥: the summary never
/// guesses across function boundaries, so it is sound under recursion
/// and (post-)cloning — clones that duplicate a store break exclusivity
/// and conservatively disable tier (b) for that object.
///
/// The summary depends on module-level facts outside the function's own
/// IR text (who else stores to an object; initial cell values), so every
/// content-addressed cache keyed on that text must also fold in
/// environmentText() — see PersistentCache::makeKey and the incremental
/// scheduler's changed-function fingerprint.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_ANALYSIS_ALIASANALYSIS_H
#define VRP_ANALYSIS_ALIASANALYSIS_H

#include <string>
#include <unordered_map>
#include <vector>

namespace vrp {

class Function;
class Instruction;
class LoadInst;
class StoreInst;
class Value;

/// One weighted reaching-definition candidate for a load.
struct AliasCandidate {
  /// The stored SSA value, or null for the cell's initial value.
  const Value *Stored = nullptr;
  /// Index-overlap weight (see file comment); candidates with weight 0
  /// are never emitted.
  double Weight = 0.0;
  /// The initial cell value; meaningful only when Stored is null.
  double InitValue = 0.0;
};

/// What the pass knows about one load. Exactly one of the tiers applies:
/// a non-null Forwarded pointer (tier a) or a non-empty candidate list
/// (tier b).
struct LoadAliasInfo {
  const Value *Forwarded = nullptr;
  std::vector<AliasCandidate> Candidates;
};

/// The per-function alias summary. Computed fresh per propagation run —
/// it reads the whole module, and module-level facts (exclusivity) can
/// change whenever any function changes, so memoizing it per function
/// would go stale silently.
class AliasInfo {
public:
  AliasInfo() = default;

  /// Builds the summary for \p F against its current module. Pure and
  /// read-only: safe to run concurrently for different functions of the
  /// same (unmutated) module.
  static AliasInfo analyze(const Function &F);

  /// The summary for \p L, or null when the load must stay ⊥.
  const LoadAliasInfo *infoFor(const LoadInst *L) const {
    auto It = Loads.find(L);
    return It == Loads.end() ? nullptr : &It->second;
  }

  /// Loads whose range depends on \p St (its forwarding source or one of
  /// its tier-(b) candidates). The engine re-pushes these when the store
  /// is reached on the SSA worklist, exactly as updateRange pushes SSA
  /// users. Deterministic order (block/instruction walk order).
  const std::vector<const LoadInst *> &dependentLoads(const StoreInst *St) const {
    auto It = Deps.find(St);
    return It == Deps.end() ? Empty : It->second;
  }

  /// The module-level facts this summary reads beyond \p F's own IR
  /// text, rendered deterministically: one line per object loaded in F
  /// with its exclusivity bit, size, and initial value (hex-float).
  /// Content-addressed caches keyed on the function's IR must append
  /// this so a change in another function's stores invalidates F.
  static std::string environmentText(const Function &F);

private:
  std::unordered_map<const LoadInst *, LoadAliasInfo> Loads;
  std::unordered_map<const StoreInst *, std::vector<const LoadInst *>> Deps;
  std::vector<const LoadInst *> Empty;
};

} // namespace vrp

#endif // VRP_ANALYSIS_ALIASANALYSIS_H
