//===- analysis/AliasAnalysis.cpp - Probabilistic load aliasing -----------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "analysis/AliasAnalysis.h"

#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

using namespace vrp;

namespace {

/// The floor on the initial-value candidate's weight: stores at unknown
/// indices carry weight 1 each, so without a floor two such stores would
/// crowd the initial value out entirely even though neither provably
/// covers the loaded cell on every path.
constexpr double InitWeightFloor = 0.05;

/// Probability that a store at \p SIdx writes the cell a load at \p LIdx
/// reads (within one object). 1 when provably the same cell, 0 when
/// provably distinct, 1/size as the uniform-indexing estimate otherwise.
double overlapWeight(const Value *SIdx, const Value *LIdx,
                     const MemoryObject *O) {
  if (SIdx == LIdx)
    return 1.0; // Same SSA value: same cell in any execution.
  const auto *SC = dyn_cast<Constant>(SIdx);
  const auto *LC = dyn_cast<Constant>(LIdx);
  if (SC && LC && SC->isInt() && LC->isInt())
    return SC->intValue() == LC->intValue() ? 1.0 : 0.0;
  return 1.0 / static_cast<double>(std::max<int64_t>(1, O->size()));
}

/// The cell value before any store executes: the declared initializer
/// for global scalar cells, zero everywhere else (arrays zero-fill;
/// locals are reinitialized per activation) — mirrors the interpreter's
/// ObjectState construction exactly.
double initialCellValue(const Module &M, const MemoryObject *O) {
  return O->isGlobal() && O->isScalarCell() ? M.scalarInit(O) : 0.0;
}

/// Module-wide store census: for each object, whether any store exists
/// and, if all stores sit in one function, which one (null = multiple
/// writer functions).
struct StoreCensus {
  std::map<const MemoryObject *, const Function *> SoleWriter;
  std::map<const MemoryObject *, bool> HasStore;

  explicit StoreCensus(const Module &M) {
    for (const auto &G : M.functions())
      for (const auto &B : G->blocks())
        for (const auto &I : B->instructions())
          if (const auto *St = dyn_cast<StoreInst>(I.get())) {
            const MemoryObject *O = St->object();
            auto [It, Fresh] = SoleWriter.emplace(O, G.get());
            if (!Fresh && It->second != G.get())
              It->second = nullptr;
            HasStore[O] = true;
          }
  }

  /// True when every value object \p O can hold while \p F runs was
  /// produced by \p F itself (or is the initial value).
  bool exclusiveTo(const MemoryObject *O, const Function *F) const {
    auto It = HasStore.find(O);
    if (It == HasStore.end() || !It->second)
      return true; // Never stored: only the initial value exists.
    auto W = SoleWriter.find(O);
    return W != SoleWriter.end() && W->second == F;
  }
};

std::string hexDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%a", V);
  return Buf;
}

} // namespace

AliasInfo AliasInfo::analyze(const Function &F) {
  AliasInfo Info;
  const Module &M = *F.parent();
  StoreCensus Census(M);

  // This function's stores per object, in block/instruction order (the
  // candidate and dependency orders inherit this determinism).
  std::map<const MemoryObject *, std::vector<const StoreInst *>> OwnStores;
  for (const auto &B : F.blocks())
    for (const auto &I : B->instructions())
      if (const auto *St = dyn_cast<StoreInst>(I.get()))
        OwnStores[St->object()].push_back(St);

  // Tier (a): same-block store-to-load forwarding. Walk each block in
  // order tracking the latest store per object; a call invalidates
  // global objects (the callee may store to them, directly or through
  // recursion back into F).
  for (const auto &B : F.blocks()) {
    std::map<const MemoryObject *, const StoreInst *> Last;
    for (const auto &I : B->instructions()) {
      if (isa<CallInst>(I.get())) {
        for (auto It = Last.begin(); It != Last.end();)
          It = It->first->isGlobal() ? Last.erase(It) : std::next(It);
        continue;
      }
      if (const auto *St = dyn_cast<StoreInst>(I.get())) {
        Last[St->object()] = St;
        continue;
      }
      const auto *L = dyn_cast<LoadInst>(I.get());
      if (!L)
        continue;
      auto It = Last.find(L->object());
      if (It == Last.end() ||
          overlapWeight(It->second->index(), L->index(), L->object()) != 1.0)
        continue;
      LoadAliasInfo LI;
      LI.Forwarded = It->second->storedValue();
      Info.Loads.emplace(L, std::move(LI));
      Info.Deps[It->second].push_back(L);
    }
  }

  // Tier (b): weighted candidates for the remaining loads of exclusively
  // written (or never-written) objects.
  for (const auto &B : F.blocks())
    for (const auto &I : B->instructions()) {
      const auto *L = dyn_cast<LoadInst>(I.get());
      if (!L || Info.Loads.count(L))
        continue;
      const MemoryObject *O = L->object();
      if (!Census.exclusiveTo(O, &F))
        continue; // Another function stores here: the load stays ⊥.
      LoadAliasInfo LI;
      double Sum = 0.0;
      auto Own = OwnStores.find(O);
      if (Own != OwnStores.end())
        for (const StoreInst *St : Own->second) {
          double W = overlapWeight(St->index(), L->index(), O);
          if (W == 0.0)
            continue; // Provably distinct cell.
          LI.Candidates.push_back({St->storedValue(), W, 0.0});
          Info.Deps[St].push_back(L);
          Sum += W;
        }
      LI.Candidates.push_back({nullptr,
                               std::max(InitWeightFloor, 1.0 - Sum),
                               initialCellValue(M, O)});
      Info.Loads.emplace(L, std::move(LI));
    }

  return Info;
}

std::string AliasInfo::environmentText(const Function &F) {
  const Module &M = *F.parent();
  StoreCensus Census(M);

  // Objects loaded by F, deduplicated, in object-id order.
  std::map<unsigned, const MemoryObject *> Loaded;
  for (const auto &B : F.blocks())
    for (const auto &I : B->instructions())
      if (const auto *L = dyn_cast<LoadInst>(I.get()))
        Loaded.emplace(L->object()->id(), L->object());

  std::ostringstream OS;
  for (const auto &[Id, O] : Loaded)
    OS << "A" << Id << ":" << O->name() << ":"
       << (Census.exclusiveTo(O, &F) ? 1 : 0) << ":" << O->size() << ":"
       << hexDouble(initialCellValue(M, O)) << "\n";
  return OS.str();
}
