//===- analysis/PersistentCache.cpp - Durable per-function VRP memo -------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "analysis/PersistentCache.h"

#include "analysis/AliasAnalysis.h"
#include "ir/Function.h"
#include "ir/IRPrinter.h"
#include "ir/Instruction.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>

using namespace vrp;

namespace {

/// Exact double rendering: "%a" hex floats round-trip bitwise through
/// strtod (the same contract eval/Journal relies on).
std::string hexDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%a", V);
  return Buf;
}

bool parseDouble(const std::string &Tok, double &Out) {
  if (Tok.empty())
    return false;
  char *End = nullptr;
  Out = std::strtod(Tok.c_str(), &End);
  return End && *End == '\0';
}

bool parseU64(const std::string &Tok, uint64_t &Out) {
  if (Tok.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(Tok.c_str(), &End, 10);
  return End && *End == '\0';
}

bool parseI64(const std::string &Tok, int64_t &Out) {
  if (Tok.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoll(Tok.c_str(), &End, 10);
  return End && *End == '\0';
}

using ValueEncoder = std::function<std::string(const Value *)>;

/// Pointer-free value reference for payloads: restorable from the
/// function alone (instructions by dense id, params by index, interned
/// constants by value).
std::string encodeValue(const Value *V) {
  if (!V)
    return "_";
  switch (V->kind()) {
  case Value::Kind::Instruction:
    return "i" + std::to_string(cast<Instruction>(V)->id());
  case Value::Kind::Param:
    return "p" + std::to_string(cast<Param>(V)->index());
  case Value::Kind::Constant: {
    const auto *C = cast<Constant>(V);
    return C->isInt() ? "ci" + std::to_string(C->intValue())
                      : "cf" + hexDouble(C->floatValue());
  }
  }
  return "_";
}

/// Deserialization context: the target function's values by ordinal.
struct DecodeCtx {
  const Function &F;
  std::map<unsigned, const Instruction *> ById;

  explicit DecodeCtx(const Function &Fn) : F(Fn) {
    for (const auto &B : Fn.blocks())
      for (const auto &I : B->instructions())
        ById[I->id()] = I.get();
  }

  const Value *decode(const std::string &Tok, bool &Ok) const {
    Ok = true;
    if (Tok == "_")
      return nullptr;
    if (Tok.size() < 2) {
      Ok = false;
      return nullptr;
    }
    if (Tok[0] == 'i') {
      uint64_t Id = 0;
      if (!parseU64(Tok.substr(1), Id)) {
        Ok = false;
        return nullptr;
      }
      auto It = ById.find(static_cast<unsigned>(Id));
      if (It == ById.end()) {
        Ok = false;
        return nullptr;
      }
      return It->second;
    }
    if (Tok[0] == 'p') {
      uint64_t Idx = 0;
      if (!parseU64(Tok.substr(1), Idx) || Idx >= F.numParams()) {
        Ok = false;
        return nullptr;
      }
      return F.param(static_cast<unsigned>(Idx));
    }
    if (Tok[0] == 'c' && Tok[1] == 'i') {
      int64_t V = 0;
      if (!parseI64(Tok.substr(2), V)) {
        Ok = false;
        return nullptr;
      }
      return Constant::getInt(V);
    }
    if (Tok[0] == 'c' && Tok[1] == 'f') {
      double V = 0;
      if (!parseDouble(Tok.substr(2), V)) {
        Ok = false;
        return nullptr;
      }
      return Constant::getFloat(V);
    }
    Ok = false;
    return nullptr;
  }
};

/// Renders a ValueRange as space-separated tokens; \p Enc renders
/// symbolic-bound values. Exact: every double is a hex float, every field
/// that restored() sets is present.
std::string renderRange(const ValueRange &VR, const ValueEncoder &Enc) {
  std::ostringstream OS;
  OS << "d" << (VR.distributionKnown() ? 1 : 0) << " ";
  switch (VR.kind()) {
  case ValueRange::Kind::Top:
    OS << "T";
    return OS.str();
  case ValueRange::Kind::Bottom:
    OS << "B";
    return OS.str();
  case ValueRange::Kind::FloatConst:
    OS << "F " << hexDouble(VR.floatValue());
    return OS.str();
  case ValueRange::Kind::FloatRanges: {
    FPIntervalView FPs = VR.fpIntervals();
    OS << "N " << FPs.size() << " " << hexDouble(VR.nanMass());
    for (size_t I = 0; I < FPs.size(); ++I) {
      FPInterval S = FPs[I];
      OS << " " << hexDouble(S.Prob) << " " << hexDouble(S.Lo) << " "
         << hexDouble(S.Hi);
    }
    return OS.str();
  }
  case ValueRange::Kind::Ranges:
    break;
  }
  OS << "R " << VR.subRanges().size();
  for (const SubRange &S : VR.subRanges())
    OS << " " << hexDouble(S.Prob) << " " << Enc(S.Lo.Sym) << " "
       << S.Lo.Offset << " " << Enc(S.Hi.Sym) << " " << S.Hi.Offset << " "
       << S.Stride;
  return OS.str();
}

/// Parses renderRange() output from a token stream.
bool parseRange(std::istringstream &In, const DecodeCtx &Ctx,
                ValueRange &Out) {
  std::string Tok;
  if (!(In >> Tok) || Tok.size() != 2 || Tok[0] != 'd' ||
      (Tok[1] != '0' && Tok[1] != '1'))
    return false;
  bool DistKnown = Tok[1] == '1';
  std::string KindTok;
  if (!(In >> KindTok))
    return false;
  if (KindTok == "T") {
    Out = ValueRange::restored(ValueRange::Kind::Top, 0.0, DistKnown, {});
    return true;
  }
  if (KindTok == "B") {
    Out = ValueRange::restored(ValueRange::Kind::Bottom, 0.0, DistKnown, {});
    return true;
  }
  if (KindTok == "F") {
    std::string V;
    double F = 0;
    if (!(In >> V) || !parseDouble(V, F))
      return false;
    Out = ValueRange::restored(ValueRange::Kind::FloatConst, F, DistKnown, {});
    return true;
  }
  if (KindTok == "N") {
    uint64_t N = 0;
    std::string NaNTok;
    double NaNMass = 0;
    if (!(In >> Tok) || !parseU64(Tok, N) || N > 4096 || !(In >> NaNTok) ||
        !parseDouble(NaNTok, NaNMass))
      return false;
    std::vector<FPInterval> Subs;
    Subs.reserve(N);
    for (uint64_t I = 0; I < N; ++I) {
      std::string ProbTok, LoTok, HiTok;
      FPInterval S;
      if (!(In >> ProbTok >> LoTok >> HiTok) ||
          !parseDouble(ProbTok, S.Prob) || !parseDouble(LoTok, S.Lo) ||
          !parseDouble(HiTok, S.Hi))
        return false;
      Subs.push_back(S);
    }
    Out = ValueRange::restoredFP(NaNMass, DistKnown, std::move(Subs));
    return true;
  }
  if (KindTok != "R")
    return false;
  uint64_t N = 0;
  if (!(In >> Tok) || !parseU64(Tok, N) || N > 4096)
    return false;
  std::vector<SubRange> Subs;
  Subs.reserve(N);
  for (uint64_t I = 0; I < N; ++I) {
    std::string ProbTok, LoSymTok, LoOffTok, HiSymTok, HiOffTok, StrideTok;
    if (!(In >> ProbTok >> LoSymTok >> LoOffTok >> HiSymTok >> HiOffTok >>
          StrideTok))
      return false;
    SubRange S;
    bool OkLo = false, OkHi = false;
    if (!parseDouble(ProbTok, S.Prob))
      return false;
    S.Lo.Sym = Ctx.decode(LoSymTok, OkLo);
    S.Hi.Sym = Ctx.decode(HiSymTok, OkHi);
    if (!OkLo || !OkHi || !parseI64(LoOffTok, S.Lo.Offset) ||
        !parseI64(HiOffTok, S.Hi.Offset) || !parseI64(StrideTok, S.Stride))
      return false;
    Subs.push_back(S);
  }
  Out = ValueRange::restored(ValueRange::Kind::Ranges, 0.0, DistKnown,
                             std::move(Subs));
  return true;
}

std::string fnvHex(uint64_t H) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

/// The result-affecting VRPOptions fields (docs/CACHE.md documents the
/// recipe). Threads is excluded (results are thread-count invariant by
/// contract); Audit/Trace/InterpreterStepLimit never change a
/// propagation result; the budget knobs that can degrade a function ARE
/// included — a tighter budget must not be satisfied from results a
/// looser one computed.
std::string optionsText(const VRPOptions &O) {
  std::ostringstream OS;
  OS << O.MaxSubRanges << "|" << O.EnableSymbolicRanges << "|"
     << O.EnableDerivation << "|" << O.EnableAssertions << "|"
     << O.WidenThreshold << "|" << O.BranchUpdateLimit << "|"
     << O.FlowVisitLimit << "|" << O.DerivationRetryLimit << "|"
     << hexDouble(O.AssumedSymbolicCount) << "|" << O.Interprocedural << "|"
     << O.EnableCloning << "|" << hexDouble(O.ProbTolerance) << "|"
     << O.Budget.PropagationStepLimit << "|" << O.Budget.DeadlineMs << "|"
     << O.EnableFPRanges << "|" << O.EnableAliasRanges;
  return OS.str();
}

/// The resolved interprocedural context, exactly as the engine would see
/// it through the hooks: one range per formal parameter, one per call
/// site in walk order. Symbolic bounds (possible only in hook outputs
/// that skipped sanitizeForCallee) render via displayName — deterministic
/// text, hashing-only. With alias ranges on, the function's alias
/// environment is appended: load results then depend on module-level
/// facts (writer exclusivity, global initializers) that F's own IR text
/// cannot capture, so a store added in *another* function must miss.
std::string contextText(const Function &F, const PropagationContext &Ctx,
                        const VRPOptions &Opts) {
  ValueEncoder Names = [](const Value *V) {
    return V ? V->displayName() : std::string("_");
  };
  std::ostringstream OS;
  for (unsigned I = 0; I < F.numParams(); ++I) {
    ValueRange R = Ctx.ParamRange ? Ctx.ParamRange(F.param(I))
                                  : ValueRange::bottom();
    OS << "P" << I << ":" << renderRange(R, Names) << "\n";
  }
  unsigned CallIdx = 0;
  for (const auto &B : F.blocks())
    for (const auto &I : B->instructions())
      if (const auto *Call = dyn_cast<CallInst>(I.get())) {
        ValueRange R = Ctx.CallResultRange ? Ctx.CallResultRange(Call)
                                           : ValueRange::bottom();
        OS << "C" << CallIdx++ << ":" << renderRange(R, Names) << "\n";
      }
  if (Opts.EnableAliasRanges)
    OS << AliasInfo::environmentText(F);
  return OS.str();
}

} // namespace

std::unique_ptr<PersistentCache> PersistentCache::open(const std::string &Path,
                                                       bool Verify,
                                                       Status *Why) {
  auto Store = store::ResultStore::open(Path, FormatVersion, Why);
  if (!Store)
    return nullptr;
  auto PC = std::unique_ptr<PersistentCache>(new PersistentCache());
  store::ResultStoreStats S = Store->stats();
  telemetry::count(telemetry::Counter::PersistentCacheEvictions,
                   S.Evictions);
  PC->Store = std::move(Store);
  PC->Verify = Verify;
  return PC;
}

std::string PersistentCache::makeKey(const Function &F, const VRPOptions &Opts,
                                     const PropagationContext &Ctx) {
  std::ostringstream IR;
  printFunction(F, IR);
  return fnvHex(store::fnv1a64(IR.str())) + "-" +
         fnvHex(store::fnv1a64(optionsText(Opts))) + "-" +
         fnvHex(store::fnv1a64(contextText(F, Ctx, Opts)));
}

std::string PersistentCache::serialize(const FunctionVRPResult &R) {
  std::ostringstream OS;
  OS << "vrppc " << FormatVersion << "\n";
  OS << "fn " << (R.F ? R.F->name() : "") << "\n";
  OS << "stats " << R.Stats.ExprEvaluations << " " << R.Stats.SubOps << " "
     << R.Stats.PhiEvaluations << " " << R.Stats.BranchEvaluations << " "
     << R.Stats.DerivationsTried << " " << R.Stats.DerivationsMatched << " "
     << R.Stats.Widenings << "\n";
  OS << "blockprob " << R.BlockProb.size() << "\n";
  for (double P : R.BlockProb)
    OS << hexDouble(P) << "\n";

  // Ranges is pointer-keyed and unordered; Branches is pointer-keyed and
  // pointer-ordered. Sort both by their pointer-free encodings so the
  // bytes are independent of heap layout (bitwise identity across runs is
  // the whole point).
  std::vector<std::pair<std::string, const ValueRange *>> Entries;
  Entries.reserve(R.Ranges.size());
  for (const auto &[V, VR] : R.Ranges)
    Entries.emplace_back(encodeValue(V), &VR);
  std::sort(Entries.begin(), Entries.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  OS << "ranges " << Entries.size() << "\n";
  for (const auto &[Key, VR] : Entries)
    OS << Key << " " << renderRange(*VR, encodeValue) << "\n";

  std::vector<std::pair<unsigned, const BranchPrediction *>> Branches;
  Branches.reserve(R.Branches.size());
  for (const auto &[Br, Pred] : R.Branches)
    Branches.emplace_back(Br->id(), &Pred);
  std::sort(Branches.begin(), Branches.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  OS << "branches " << Branches.size() << "\n";
  for (const auto &[Id, Pred] : Branches)
    OS << Id << " " << hexDouble(Pred->ProbTrue) << " "
       << (Pred->FromRanges ? 1 : 0) << " " << (Pred->Reachable ? 1 : 0)
       << "\n";
  OS << "end\n";
  return OS.str();
}

bool PersistentCache::deserialize(const std::string &Payload,
                                  const Function &F, FunctionVRPResult &Out) {
  DecodeCtx Ctx(F);
  std::istringstream In(Payload);
  std::string Line, Word;

  auto nextLine = [&](const char *Head) -> bool {
    if (!std::getline(In, Line))
      return false;
    return Line.rfind(Head, 0) == 0;
  };

  if (!nextLine("vrppc ") ||
      Line != "vrppc " + std::to_string(FormatVersion))
    return false;
  if (!nextLine("fn ") || Line.substr(3) != F.name())
    return false;

  Out = FunctionVRPResult();
  Out.F = &F;

  if (!nextLine("stats "))
    return false;
  {
    std::istringstream LS(Line.substr(6));
    if (!(LS >> Out.Stats.ExprEvaluations >> Out.Stats.SubOps >>
          Out.Stats.PhiEvaluations >> Out.Stats.BranchEvaluations >>
          Out.Stats.DerivationsTried >> Out.Stats.DerivationsMatched >>
          Out.Stats.Widenings))
      return false;
  }

  if (!nextLine("blockprob "))
    return false;
  uint64_t N = 0;
  if (!parseU64(Line.substr(10), N) || N != F.numBlocks())
    return false;
  Out.BlockProb.reserve(N);
  for (uint64_t I = 0; I < N; ++I) {
    double P = 0;
    if (!std::getline(In, Line) || !parseDouble(Line, P))
      return false;
    Out.BlockProb.push_back(P);
  }

  if (!nextLine("ranges ") || !parseU64(Line.substr(7), N) || N > (1u << 24))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    if (!std::getline(In, Line))
      return false;
    std::istringstream LS(Line);
    if (!(LS >> Word))
      return false;
    bool Ok = false;
    const Value *V = Ctx.decode(Word, Ok);
    if (!Ok || !V)
      return false;
    ValueRange VR;
    if (!parseRange(LS, Ctx, VR))
      return false;
    Out.Ranges.emplace(V, std::move(VR));
  }

  if (!nextLine("branches ") || !parseU64(Line.substr(9), N) ||
      N > (1u << 24))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    if (!std::getline(In, Line))
      return false;
    std::istringstream LS(Line);
    uint64_t Id = 0;
    std::string ProbTok;
    int FromRanges = -1, Reachable = -1;
    if (!(LS >> Id >> ProbTok >> FromRanges >> Reachable))
      return false;
    auto It = Ctx.ById.find(static_cast<unsigned>(Id));
    if (It == Ctx.ById.end())
      return false;
    const auto *Br = dyn_cast<CondBrInst>(It->second);
    if (!Br || FromRanges < 0 || FromRanges > 1 || Reachable < 0 ||
        Reachable > 1)
      return false;
    BranchPrediction Pred;
    if (!parseDouble(ProbTok, Pred.ProbTrue))
      return false;
    Pred.FromRanges = FromRanges == 1;
    Pred.Reachable = Reachable == 1;
    Out.Branches.emplace(Br, Pred);
  }

  return nextLine("end");
}

bool PersistentCache::lookup(const std::string &Key, const Function &F,
                             FunctionVRPResult &Out,
                             std::string *RawPayload) {
  const std::string *Payload = Store->lookup(Key);
  if (Payload && deserialize(*Payload, F, Out)) {
    telemetry::count(telemetry::Counter::PersistentCacheHits);
    if (RawPayload)
      *RawPayload = *Payload;
    std::lock_guard<std::mutex> L(M);
    Scopes[fault::currentKey()].push_back(
        Touched{F.name(), Key, std::string(), /*FromSnapshot=*/true});
    return true;
  }
  // A payload that fails to decode (e.g. a hash collision against a
  // structurally different function) is just a miss.
  telemetry::count(telemetry::Counter::PersistentCacheMisses);
  return false;
}

void PersistentCache::insert(const std::string &Key,
                             const FunctionVRPResult &R) {
  Touched T;
  T.FnName = R.F ? R.F->name() : "";
  T.Key = Key;
  T.Payload = serialize(R);
  std::lock_guard<std::mutex> L(M);
  Scopes[fault::currentKey()].push_back(std::move(T));
}

void PersistentCache::expunge(const std::string &FnName) {
  std::vector<std::string> Tombstones;
  {
    std::lock_guard<std::mutex> L(M);
    auto It = Scopes.find(fault::currentKey());
    if (It == Scopes.end())
      return;
    auto &Vec = It->second;
    std::vector<Touched> Kept;
    Kept.reserve(Vec.size());
    for (Touched &T : Vec) {
      if (T.FnName != FnName) {
        Kept.push_back(std::move(T));
        continue;
      }
      if (T.FromSnapshot)
        Tombstones.push_back(T.Key); // Evict the stored record too.
      // Pending inserts for the quarantined function are simply dropped.
    }
    Vec = std::move(Kept);
  }
  for (const std::string &Key : Tombstones)
    Store->appendTombstone(Key);
}

void PersistentCache::commitScope() {
  std::vector<Touched> Pending;
  {
    std::lock_guard<std::mutex> L(M);
    auto It = Scopes.find(fault::currentKey());
    if (It == Scopes.end())
      return;
    Pending = std::move(It->second);
    Scopes.erase(It);
  }
  uint64_t Bytes = 0;
  for (const Touched &T : Pending)
    if (!T.FromSnapshot)
      Bytes += Store->append(T.Key, T.Payload);
  if (Bytes)
    telemetry::count(telemetry::Counter::PersistentCacheBytesWritten, Bytes);
}

void PersistentCache::discardScope() {
  std::lock_guard<std::mutex> L(M);
  Scopes.erase(fault::currentKey());
}
