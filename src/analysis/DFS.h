//===- analysis/DFS.h - DFS numbering and back edges ------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Depth-first traversal of a function CFG: preorder/postorder numbers,
/// reverse postorder, and the back-edge set. The paper identifies
/// loop-carried φs by "one or more of the node's in-edges are back edges
/// (as identified by a depth first traversal from the start node)" — this
/// is that traversal.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_ANALYSIS_DFS_H
#define VRP_ANALYSIS_DFS_H

#include "ir/Function.h"

#include <set>
#include <vector>

namespace vrp {

/// DFS result over a function's CFG. Block ids index the number vectors.
class DFSInfo {
public:
  explicit DFSInfo(const Function &F);

  /// Blocks in reverse postorder (entry first).
  const std::vector<BasicBlock *> &rpo() const { return RPO; }

  /// True when the CFG edge From->To is a DFS back edge.
  bool isBackEdge(const BasicBlock *From, const BasicBlock *To) const {
    return BackEdges.count({From->id(), To->id()}) != 0;
  }

  unsigned postOrderNumber(const BasicBlock *B) const {
    return PostNum[B->id()];
  }

  /// Number of back edges found.
  unsigned numBackEdges() const { return BackEdges.size(); }

private:
  std::vector<BasicBlock *> RPO;
  std::vector<unsigned> PostNum;
  std::set<std::pair<unsigned, unsigned>> BackEdges;
};

} // namespace vrp

#endif // VRP_ANALYSIS_DFS_H
