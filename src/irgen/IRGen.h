//===- irgen/IRGen.h - AST to IR lowering -----------------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a semantically checked VL Program to the pre-SSA IR: locals and
/// parameters become mutable VarSlots (ReadVar/WriteVar), arrays and global
/// scalars become MemoryObjects with Load/Store, short-circuit logical
/// operators and all control flow lower to branches, and every unterminated
/// path receives an implicit `return 0`.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_IRGEN_IRGEN_H
#define VRP_IRGEN_IRGEN_H

#include "ir/Module.h"
#include "lang/AST.h"
#include "support/Diagnostics.h"

#include <memory>

namespace vrp {

/// Lowers \p P to IR. \p P must have passed Sema. Returns null (with
/// diagnostics) only for errors Sema cannot see, e.g. non-constant global
/// initializers.
std::unique_ptr<Module> generateIR(const Program &P, DiagnosticEngine &Diags);

} // namespace vrp

#endif // VRP_IRGEN_IRGEN_H
