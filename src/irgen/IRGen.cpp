//===- irgen/IRGen.cpp - AST to IR lowering --------------------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "irgen/IRGen.h"

#include "ir/CFGUtils.h"

#include <cassert>
#include <optional>
#include <unordered_map>

using namespace vrp;

namespace {

/// Constant-folds a global initializer expression; returns nullopt when the
/// expression is not a compile-time constant.
std::optional<double> foldConstExpr(const Expr *E) {
  if (auto *I = dyn_cast<IntLitExpr>(E))
    return static_cast<double>(I->value());
  if (auto *F = dyn_cast<FloatLitExpr>(E))
    return F->value();
  if (auto *U = dyn_cast<UnaryExpr>(E)) {
    auto Sub = foldConstExpr(U->sub());
    if (!Sub)
      return std::nullopt;
    if (U->op() == UnaryOp::Neg)
      return -*Sub;
    return *Sub == 0.0 ? 1.0 : 0.0;
  }
  if (auto *B = dyn_cast<BinaryExpr>(E)) {
    auto L = foldConstExpr(B->lhs());
    auto R = foldConstExpr(B->rhs());
    if (!L || !R)
      return std::nullopt;
    switch (B->op()) {
    case BinaryOp::Add:
      return *L + *R;
    case BinaryOp::Sub:
      return *L - *R;
    case BinaryOp::Mul:
      return *L * *R;
    case BinaryOp::Div:
      if (*R == 0.0)
        return std::nullopt;
      if (B->type() == ScalarType::Int)
        return static_cast<double>(static_cast<int64_t>(*L) /
                                   static_cast<int64_t>(*R));
      return *L / *R;
    default:
      return std::nullopt;
    }
  }
  return std::nullopt;
}

IRType lowerType(ScalarType T) {
  switch (T) {
  case ScalarType::Int:
    return IRType::Int;
  case ScalarType::Float:
    return IRType::Float;
  case ScalarType::Void:
    return IRType::Void;
  }
  return IRType::Int;
}

class IRGenerator {
public:
  IRGenerator(const Program &P, DiagnosticEngine &Diags)
      : P(P), Diags(Diags) {}

  std::unique_ptr<Module> run();

private:
  // Emission helpers. Every instruction lands in Cur.
  template <typename T, typename... Args> T *emit(Args &&...As) {
    auto I = std::make_unique<T>(std::forward<Args>(As)...);
    return static_cast<T *>(Cur->append(std::move(I)));
  }
  BasicBlock *newBlock(const std::string &Name) {
    return F->makeBlock("bb" + std::to_string(F->numBlocks()) + "." + Name);
  }

  /// Converts \p V to \p Want (inserting IntToFloat; float->int never
  /// happens implicitly — Sema rejects it).
  Value *convert(Value *V, IRType Want);

  void lowerFunction(const FunctionDecl &FD);
  void lowerStmt(const Stmt *S);
  Value *lowerExpr(const Expr *E);
  Value *lowerCall(const CallExpr &C);

  /// Lowers \p Cond as a branch to \p TrueTo / \p FalseTo with
  /// short-circuit evaluation. Comparisons branch directly on the CmpInst
  /// so the predictor can see the compared ranges.
  void lowerBranchCond(const Expr *Cond, BasicBlock *TrueTo,
                       BasicBlock *FalseTo);

  /// Materializes a boolean expression as an int 0/1 value.
  Value *lowerBoolValue(const Expr *E);

  const Program &P;
  DiagnosticEngine &Diags;
  std::unique_ptr<Module> M;
  Function *F = nullptr;
  BasicBlock *Cur = nullptr;

  std::unordered_map<const VarSymbol *, VarSlot *> SlotMap;
  std::unordered_map<const VarSymbol *, MemoryObject *> ObjectMap;
  /// (continue target, break target) for enclosing loops.
  std::vector<std::pair<BasicBlock *, BasicBlock *>> LoopStack;
};

} // namespace

Value *IRGenerator::convert(Value *V, IRType Want) {
  if (V->type() == Want)
    return V;
  assert(V->type() == IRType::Int && Want == IRType::Float &&
         "only int->float conversions are implicit");
  if (auto *C = dyn_cast<Constant>(V))
    return Constant::getFloat(static_cast<double>(C->intValue()));
  return emit<UnaryInst>(Opcode::IntToFloat, IRType::Float, V);
}

std::unique_ptr<Module> IRGenerator::run() {
  M = std::make_unique<Module>();

  // Globals: arrays and scalar cells.
  for (const auto &G : P.Globals) {
    VarSymbol *Sym = G->symbol();
    int64_t Size = Sym->IsArray ? Sym->ArraySize : 1;
    MemoryObject *Obj = M->makeMemoryObject(Sym->Name, lowerType(Sym->Type),
                                            Size, /*IsGlobal=*/true);
    if (!Sym->IsArray) {
      Obj->setScalarCell(true);
      if (G->init()) {
        auto Folded = foldConstExpr(G->init());
        if (!Folded) {
          // Report but keep lowering so later references still resolve;
          // generateIR returns null at the end because of the error.
          Diags.error(G->loc(), "global initializer for '" + Sym->Name +
                                    "' is not a compile-time constant");
        } else {
          double V = *Folded;
          if (Sym->Type == ScalarType::Int)
            V = static_cast<double>(static_cast<int64_t>(V));
          M->setScalarInit(Obj, V);
        }
      }
    }
    ObjectMap[Sym] = Obj;
  }

  // Function shells first so calls resolve in any order.
  for (const auto &FD : P.Functions)
    M->makeFunction(FD->name(), lowerType(FD->returnType()));

  for (const auto &FD : P.Functions)
    lowerFunction(*FD);

  return Diags.hasErrors() ? nullptr : std::move(M);
}

void IRGenerator::lowerFunction(const FunctionDecl &FD) {
  F = M->findFunction(FD.name());
  Cur = F->makeBlock("bb0.entry");
  SlotMap.clear();
  LoopStack.clear();

  // Parameters: a Param value written once into a slot, so user
  // reassignment of parameters works; SSA renaming collapses the copy.
  for (const ParamDecl &PD : FD.params()) {
    Param *PV = F->addParam(lowerType(PD.Type), PD.Name);
    VarSlot *Slot = F->makeSlot(PD.Name, PV->type());
    SlotMap[PD.Symbol] = Slot;
    emit<WriteVarInst>(Slot, PV);
  }

  lowerStmt(FD.body());

  // Implicit `return 0` / `return 0.0` on any open path.
  for (const auto &B : F->blocks()) {
    if (!B->hasTerminator()) {
      BasicBlock *Saved = Cur;
      Cur = B.get();
      Value *Zero = F->returnType() == IRType::Float
                        ? static_cast<Value *>(Constant::getFloat(0.0))
                        : static_cast<Value *>(Constant::getInt(0));
      createRet(Cur, F->returnType() == IRType::Void ? nullptr : Zero);
      Cur = Saved;
    }
  }

  removeUnreachableBlocks(*F);
}

void IRGenerator::lowerStmt(const Stmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : cast<BlockStmt>(S)->stmts())
      lowerStmt(Child.get());
    return;

  case Stmt::Kind::Decl: {
    auto *D = cast<DeclStmt>(S);
    VarSymbol *Sym = D->symbol();
    if (Sym->IsArray) {
      MemoryObject *Obj =
          M->makeMemoryObject(F->name() + "." + Sym->Name,
                              lowerType(Sym->Type), Sym->ArraySize,
                              /*IsGlobal=*/false);
      F->addLocalObject(Obj);
      ObjectMap[Sym] = Obj;
      return;
    }
    VarSlot *Slot = F->makeSlot(Sym->Name, lowerType(Sym->Type));
    SlotMap[Sym] = Slot;
    Value *Init;
    if (D->init())
      Init = convert(lowerExpr(D->init()), Slot->type());
    else
      Init = Slot->type() == IRType::Float
                 ? static_cast<Value *>(Constant::getFloat(0.0))
                 : static_cast<Value *>(Constant::getInt(0));
    emit<WriteVarInst>(Slot, Init)->setLoc(D->loc());
    return;
  }

  case Stmt::Kind::Assign: {
    auto *A = cast<AssignStmt>(S);
    if (auto *VR = dyn_cast<VarRefExpr>(A->target())) {
      VarSymbol *Sym = VR->symbol();
      if (Sym->IsGlobal) {
        MemoryObject *Obj = ObjectMap.at(Sym);
        Value *V = convert(lowerExpr(A->value()), Obj->elemType());
        emit<StoreInst>(Obj, Constant::getInt(0), V)->setLoc(A->loc());
      } else {
        VarSlot *Slot = SlotMap.at(Sym);
        Value *V = convert(lowerExpr(A->value()), Slot->type());
        emit<WriteVarInst>(Slot, V)->setLoc(A->loc());
      }
      return;
    }
    auto *AI = cast<ArrayIndexExpr>(A->target());
    MemoryObject *Obj = ObjectMap.at(AI->symbol());
    Value *Index = lowerExpr(AI->index());
    Value *V = convert(lowerExpr(A->value()), Obj->elemType());
    emit<StoreInst>(Obj, Index, V)->setLoc(A->loc());
    return;
  }

  case Stmt::Kind::If: {
    auto *I = cast<IfStmt>(S);
    BasicBlock *ThenBB = newBlock("then");
    BasicBlock *JoinBB = nullptr;
    if (I->elseStmt()) {
      BasicBlock *ElseBB = newBlock("else");
      lowerBranchCond(I->cond(), ThenBB, ElseBB);
      JoinBB = newBlock("join");
      Cur = ThenBB;
      lowerStmt(I->thenStmt());
      if (!Cur->hasTerminator())
        createBr(Cur, JoinBB);
      Cur = ElseBB;
      lowerStmt(I->elseStmt());
      if (!Cur->hasTerminator())
        createBr(Cur, JoinBB);
    } else {
      JoinBB = newBlock("join");
      lowerBranchCond(I->cond(), ThenBB, JoinBB);
      Cur = ThenBB;
      lowerStmt(I->thenStmt());
      if (!Cur->hasTerminator())
        createBr(Cur, JoinBB);
    }
    Cur = JoinBB;
    return;
  }

  case Stmt::Kind::While: {
    auto *W = cast<WhileStmt>(S);
    BasicBlock *Header = newBlock("while.header");
    createBr(Cur, Header);
    BasicBlock *Body = newBlock("while.body");
    BasicBlock *Exit = newBlock("while.exit");
    Cur = Header;
    lowerBranchCond(W->cond(), Body, Exit);
    LoopStack.push_back({Header, Exit});
    Cur = Body;
    lowerStmt(W->body());
    if (!Cur->hasTerminator())
      createBr(Cur, Header);
    LoopStack.pop_back();
    Cur = Exit;
    return;
  }

  case Stmt::Kind::For: {
    auto *FS = cast<ForStmt>(S);
    lowerStmt(FS->init());
    BasicBlock *Header = newBlock("for.header");
    createBr(Cur, Header);
    BasicBlock *Body = newBlock("for.body");
    BasicBlock *Step = newBlock("for.step");
    BasicBlock *Exit = newBlock("for.exit");
    Cur = Header;
    if (FS->cond())
      lowerBranchCond(FS->cond(), Body, Exit);
    else
      createBr(Cur, Body);
    LoopStack.push_back({Step, Exit});
    Cur = Body;
    lowerStmt(FS->body());
    if (!Cur->hasTerminator())
      createBr(Cur, Step);
    LoopStack.pop_back();
    Cur = Step;
    lowerStmt(FS->step());
    if (!Cur->hasTerminator())
      createBr(Cur, Header);
    Cur = Exit;
    return;
  }

  case Stmt::Kind::Break: {
    assert(!LoopStack.empty() && "break outside loop survived Sema");
    createBr(Cur, LoopStack.back().second);
    Cur = newBlock("after.break");
    return;
  }

  case Stmt::Kind::Continue: {
    assert(!LoopStack.empty() && "continue outside loop survived Sema");
    createBr(Cur, LoopStack.back().first);
    Cur = newBlock("after.continue");
    return;
  }

  case Stmt::Kind::Return: {
    auto *R = cast<ReturnStmt>(S);
    Value *V = nullptr;
    if (R->value())
      V = convert(lowerExpr(R->value()), F->returnType());
    else if (F->returnType() != IRType::Void)
      V = F->returnType() == IRType::Float
              ? static_cast<Value *>(Constant::getFloat(0.0))
              : static_cast<Value *>(Constant::getInt(0));
    createRet(Cur, V)->setLoc(R->loc());
    Cur = newBlock("after.return");
    return;
  }

  case Stmt::Kind::ExprStmt:
    lowerExpr(cast<ExprStmt>(S)->expr());
    return;
  }
}

void IRGenerator::lowerBranchCond(const Expr *Cond, BasicBlock *TrueTo,
                                  BasicBlock *FalseTo) {
  if (auto *B = dyn_cast<BinaryExpr>(Cond)) {
    switch (B->op()) {
    case BinaryOp::LogicalAnd: {
      BasicBlock *Mid = newBlock("and.rhs");
      lowerBranchCond(B->lhs(), Mid, FalseTo);
      Cur = Mid;
      lowerBranchCond(B->rhs(), TrueTo, FalseTo);
      return;
    }
    case BinaryOp::LogicalOr: {
      BasicBlock *Mid = newBlock("or.rhs");
      lowerBranchCond(B->lhs(), TrueTo, Mid);
      Cur = Mid;
      lowerBranchCond(B->rhs(), TrueTo, FalseTo);
      return;
    }
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge: {
      Value *Cmp = lowerExpr(Cond); // Emits the CmpInst.
      createCondBr(Cur, Cmp, TrueTo, FalseTo)->setLoc(Cond->loc());
      return;
    }
    default:
      break;
    }
  }
  if (auto *U = dyn_cast<UnaryExpr>(Cond)) {
    if (U->op() == UnaryOp::Not) {
      lowerBranchCond(U->sub(), FalseTo, TrueTo);
      return;
    }
  }
  // Generic: branch on value != 0.
  Value *V = lowerExpr(Cond);
  auto *Cmp = emit<CmpInst>(CmpPred::NE, V, Constant::getInt(0));
  Cmp->setLoc(Cond->loc());
  createCondBr(Cur, Cmp, TrueTo, FalseTo)->setLoc(Cond->loc());
}

Value *IRGenerator::lowerBoolValue(const Expr *E) {
  // Lower a short-circuit operator used as a value via control flow into a
  // temporary slot.
  VarSlot *Slot = F->makeSlot("bool.tmp", IRType::Int);
  BasicBlock *TrueBB = newBlock("bool.true");
  BasicBlock *FalseBB = newBlock("bool.false");
  BasicBlock *End = newBlock("bool.end");
  lowerBranchCond(E, TrueBB, FalseBB);
  Cur = TrueBB;
  emit<WriteVarInst>(Slot, Constant::getInt(1));
  createBr(Cur, End);
  Cur = FalseBB;
  emit<WriteVarInst>(Slot, Constant::getInt(0));
  createBr(Cur, End);
  Cur = End;
  return emit<ReadVarInst>(Slot, IRType::Int);
}

Value *IRGenerator::lowerExpr(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return Constant::getInt(cast<IntLitExpr>(E)->value());
  case Expr::Kind::FloatLit:
    return Constant::getFloat(cast<FloatLitExpr>(E)->value());

  case Expr::Kind::VarRef: {
    auto *V = cast<VarRefExpr>(E);
    VarSymbol *Sym = V->symbol();
    if (Sym->IsGlobal) {
      MemoryObject *Obj = ObjectMap.at(Sym);
      auto *L = emit<LoadInst>(Obj, Constant::getInt(0));
      L->setLoc(E->loc());
      return L;
    }
    return emit<ReadVarInst>(SlotMap.at(Sym), lowerType(Sym->Type));
  }

  case Expr::Kind::ArrayIndex: {
    auto *A = cast<ArrayIndexExpr>(E);
    MemoryObject *Obj = ObjectMap.at(A->symbol());
    Value *Index = lowerExpr(A->index());
    auto *L = emit<LoadInst>(Obj, Index);
    L->setLoc(E->loc());
    return L;
  }

  case Expr::Kind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    if (U->op() == UnaryOp::Not) {
      Value *Sub = lowerExpr(U->sub());
      auto *Cmp = emit<CmpInst>(CmpPred::EQ, Sub, Constant::getInt(0));
      Cmp->setLoc(E->loc());
      return Cmp;
    }
    Value *Sub = lowerExpr(U->sub());
    auto *Neg = emit<UnaryInst>(Opcode::Neg, Sub->type(), Sub);
    Neg->setLoc(E->loc());
    return Neg;
  }

  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    switch (B->op()) {
    case BinaryOp::LogicalAnd:
    case BinaryOp::LogicalOr:
      return lowerBoolValue(E);
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge: {
      Value *L = lowerExpr(B->lhs());
      Value *R = lowerExpr(B->rhs());
      IRType Common = (L->type() == IRType::Float ||
                       R->type() == IRType::Float)
                          ? IRType::Float
                          : IRType::Int;
      L = convert(L, Common);
      R = convert(R, Common);
      CmpPred Pred;
      switch (B->op()) {
      case BinaryOp::Eq:
        Pred = CmpPred::EQ;
        break;
      case BinaryOp::Ne:
        Pred = CmpPred::NE;
        break;
      case BinaryOp::Lt:
        Pred = CmpPred::LT;
        break;
      case BinaryOp::Le:
        Pred = CmpPred::LE;
        break;
      case BinaryOp::Gt:
        Pred = CmpPred::GT;
        break;
      default:
        Pred = CmpPred::GE;
        break;
      }
      auto *Cmp = emit<CmpInst>(Pred, L, R);
      Cmp->setLoc(E->loc());
      return Cmp;
    }
    default: {
      Value *L = lowerExpr(B->lhs());
      Value *R = lowerExpr(B->rhs());
      IRType Type = lowerType(B->type());
      L = convert(L, Type);
      R = convert(R, Type);
      Opcode Op;
      switch (B->op()) {
      case BinaryOp::Add:
        Op = Opcode::Add;
        break;
      case BinaryOp::Sub:
        Op = Opcode::Sub;
        break;
      case BinaryOp::Mul:
        Op = Opcode::Mul;
        break;
      case BinaryOp::Div:
        Op = Opcode::Div;
        break;
      default:
        Op = Opcode::Rem;
        break;
      }
      auto *Bin = emit<BinaryInst>(Op, Type, L, R);
      Bin->setLoc(E->loc());
      return Bin;
    }
    }
  }

  case Expr::Kind::Call:
    return lowerCall(*cast<CallExpr>(E));
  }
  return Constant::getInt(0);
}

Value *IRGenerator::lowerCall(const CallExpr &C) {
  switch (C.intrinsic()) {
  case Intrinsic::Input: {
    auto *I = emit<InputInst>();
    I->setLoc(C.loc());
    return I;
  }
  case Intrinsic::Print: {
    Value *V = lowerExpr(C.arg(0));
    auto *Pr = emit<PrintInst>(V);
    Pr->setLoc(C.loc());
    return Pr;
  }
  case Intrinsic::Len: {
    auto *VR = cast<VarRefExpr>(C.arg(0));
    return Constant::getInt(ObjectMap.at(VR->symbol())->size());
  }
  case Intrinsic::ToInt: {
    Value *V = lowerExpr(C.arg(0));
    if (V->type() == IRType::Int)
      return V;
    auto *Cast = emit<UnaryInst>(Opcode::FloatToInt, IRType::Int, V);
    Cast->setLoc(C.loc());
    return Cast;
  }
  case Intrinsic::ToFloat: {
    Value *V = lowerExpr(C.arg(0));
    return convert(V, IRType::Float);
  }
  case Intrinsic::Abs: {
    Value *V = lowerExpr(C.arg(0));
    auto *A = emit<UnaryInst>(Opcode::Abs, V->type(), V);
    A->setLoc(C.loc());
    return A;
  }
  case Intrinsic::Min:
  case Intrinsic::Max: {
    Value *L = lowerExpr(C.arg(0));
    Value *R = lowerExpr(C.arg(1));
    IRType Type = lowerType(C.type());
    L = convert(L, Type);
    R = convert(R, Type);
    Opcode Op = C.intrinsic() == Intrinsic::Min ? Opcode::Min : Opcode::Max;
    auto *B = emit<BinaryInst>(Op, Type, L, R);
    B->setLoc(C.loc());
    return B;
  }
  case Intrinsic::NotIntrinsic:
    break;
  }

  Function *Callee = M->findFunction(C.callee());
  assert(Callee && "undefined callee survived Sema");
  std::vector<Value *> Args;
  for (unsigned I = 0; I < C.numArgs(); ++I) {
    Value *A = lowerExpr(C.arg(I));
    // Callee params exist only after its shell got params; but shells get
    // params when the callee body is lowered, so convert by declared type.
    const FunctionDecl *CalleeDecl = P.findFunction(C.callee());
    Args.push_back(convert(A, lowerType(CalleeDecl->params()[I].Type)));
  }
  auto *Call = emit<CallInst>(Callee, Callee->returnType(), std::move(Args));
  Call->setLoc(C.loc());
  return Call;
}

std::unique_ptr<Module> vrp::generateIR(const Program &P,
                                        DiagnosticEngine &Diags) {
  if (Diags.hasErrors())
    return nullptr;
  IRGenerator G(P, Diags);
  return G.run();
}
