//===- opt/HotOrdering.cpp - Frequency-ordered optimization ----------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "opt/HotOrdering.h"

#include "analysis/CallGraph.h"

#include <algorithm>

using namespace vrp;

namespace {

/// Per-invocation block frequencies of \p F under its VRP result.
std::vector<double> blockFrequencies(const Function &F,
                                     const FunctionVRPResult &R) {
  EdgeFractionFn Fraction = [&R](const BasicBlock *From,
                                 const BasicBlock *To) {
    return R.edgeFraction(From, To);
  };
  return computeBlockFrequencies(F, Fraction);
}

} // namespace

std::map<const Function *, double>
vrp::estimateFunctionFrequencies(const Module &M,
                                 const ModuleVRPResult &VRP,
                                 double RecursionFactor) {
  std::map<const Function *, double> Freq;
  for (const auto &F : M.functions())
    Freq[F.get()] = 0.0;
  const Function *Main = M.findFunction("main");
  if (!Main)
    return Freq;
  Freq[Main] = 1.0;

  // Per-invocation call counts: callee -> Σ freq(call block).
  std::map<const Function *, std::map<const Function *, double>> CallRate;
  for (const auto &F : M.functions()) {
    const FunctionVRPResult *R = VRP.forFunction(F.get());
    if (!R)
      continue;
    std::vector<double> BF = blockFrequencies(*F, *R);
    for (const auto &B : F->blocks())
      for (const auto &I : B->instructions())
        if (const auto *Call = dyn_cast<CallInst>(I.get()))
          CallRate[F.get()][Call->callee()] += BF[B->id()];
  }

  // Top-down propagation over the call graph. Acyclic programs converge
  // in one pass per SCC level; recursive cycles are cut by attributing
  // each function RecursionFactor activations per external entry.
  CallGraph CG(M);
  const auto &SCCs = CG.sccsBottomUp();
  for (auto It = SCCs.rbegin(); It != SCCs.rend(); ++It) { // Top-down.
    const auto &SCC = *It;
    bool Cyclic = SCC.size() > 1 ||
                  (SCC.size() == 1 && CG.isRecursive(SCC.front()));
    if (Cyclic) {
      // External inflow only, then amplify within the cycle and pass the
      // amplified frequency on to callees outside the cycle.
      double Inflow = 0.0;
      for (const Function *F : SCC)
        Inflow += Freq[F];
      for (const Function *F : SCC)
        Freq[F] = std::max(Freq[F], Inflow * RecursionFactor /
                                        static_cast<double>(SCC.size()));
      for (const Function *F : SCC)
        for (const auto &[Callee, Rate] : CallRate[F])
          if (std::find(SCC.begin(), SCC.end(), Callee) == SCC.end())
            Freq[Callee] += Freq[F] * Rate;
      continue;
    }
    const Function *F = SCC.front();
    for (const auto &[Callee, Rate] : CallRate[F])
      if (Callee != F)
        Freq[Callee] += Freq[F] * Rate;
  }
  return Freq;
}

std::vector<HotBlock>
vrp::rankBlocksByFrequency(const Module &M, const ModuleVRPResult &VRP) {
  std::map<const Function *, double> FnFreq =
      estimateFunctionFrequencies(M, VRP);
  std::vector<HotBlock> Blocks;
  for (const auto &F : M.functions()) {
    const FunctionVRPResult *R = VRP.forFunction(F.get());
    if (!R)
      continue;
    std::vector<double> BF = blockFrequencies(*F, *R);
    for (const auto &B : F->blocks())
      Blocks.push_back(
          {F.get(), B.get(), BF[B->id()] * FnFreq[F.get()]});
  }
  std::stable_sort(Blocks.begin(), Blocks.end(),
                   [](const HotBlock &A, const HotBlock &B) {
                     return A.Frequency > B.Frequency;
                   });
  return Blocks;
}
