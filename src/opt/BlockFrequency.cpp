//===- opt/BlockFrequency.cpp - Frequency propagation ----------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "opt/BlockFrequency.h"

#include "analysis/LoopInfo.h"

#include <algorithm>
#include <cassert>

using namespace vrp;

namespace {

/// Propagates relative frequencies through one loop (or the whole
/// function) treating \p Head as receiving frequency 1. Back edges into
/// Head are not followed; their combined returning probability is the
/// loop's cyclic probability.
///
/// \returns the cyclic probability.
double propagateRegion(const Function &F, const LoopInfo &LI, Loop *Region,
                       BasicBlock *Head, const EdgeFractionFn &Fraction,
                       const std::vector<double> &LoopMultiplier,
                       std::vector<double> &LocalFreq,
                       const std::vector<BasicBlock *> &RPO) {
  std::vector<double> Freq(F.numBlocks(), 0.0);
  Freq[Head->id()] = 1.0;
  double Cyclic = 0.0;

  for (BasicBlock *B : RPO) {
    if (Region && !Region->contains(B))
      continue;
    if (B != Head) {
      double In = 0.0;
      for (BasicBlock *P : B->preds()) {
        if (Region && !Region->contains(P))
          continue;
        // Skip back edges of *this* region's header (handled via the
        // multiplier); inner-loop back edges were already collapsed.
        if (LI.isBackEdge(P, B))
          continue;
        In += Freq[P->id()] * Fraction(P, B);
      }
      Freq[B->id()] = In;
    }
    // Inner loop headers amplify by their trip multiplier.
    Loop *L = LI.loopOf(B);
    if (L && L->header() == B && (!Region || L != Region))
      Freq[B->id()] *= LoopMultiplier[B->id()];
  }

  for (BasicBlock *B : RPO) {
    if (Region && !Region->contains(B))
      continue;
    for (BasicBlock *S : B->succs())
      if (S == Head && LI.isBackEdge(B, S))
        Cyclic += Freq[B->id()] * Fraction(B, S);
  }
  LocalFreq = std::move(Freq);
  return Cyclic;
}

} // namespace

std::vector<double>
vrp::computeBlockFrequencies(const Function &F,
                             const EdgeFractionFn &Fraction,
                             double MaxCyclicProb) {
  DominatorTree DT(F);
  LoopInfo LI(F, DT);
  const std::vector<BasicBlock *> &RPO = DT.rpo();

  // Trip multiplier per loop header (1 for non-headers), innermost first
  // so outer loops see inner loops already collapsed.
  std::vector<double> LoopMultiplier(F.numBlocks(), 1.0);
  std::vector<Loop *> BySize;
  for (const auto &L : LI.loops())
    BySize.push_back(L.get());
  std::sort(BySize.begin(), BySize.end(), [](Loop *A, Loop *B) {
    return A->blocks().size() < B->blocks().size();
  });
  for (Loop *L : BySize) {
    std::vector<double> Scratch;
    double Cyclic = propagateRegion(F, LI, L, L->header(), Fraction,
                                    LoopMultiplier, Scratch, RPO);
    Cyclic = std::clamp(Cyclic, 0.0, MaxCyclicProb);
    LoopMultiplier[L->header()->id()] = 1.0 / (1.0 - Cyclic);
  }

  std::vector<double> Freq;
  propagateRegion(F, LI, /*Region=*/nullptr, F.entry(), Fraction,
                  LoopMultiplier, Freq, RPO);

  // Top-level pass does not multiply outermost headers (Region==nullptr
  // compares L != Region, so they were multiplied already). Nothing more
  // to do.
  return Freq;
}

double vrp::edgeFrequency(const std::vector<double> &Freqs,
                          const BasicBlock *From, const BasicBlock *To,
                          const EdgeFractionFn &Fraction) {
  return Freqs[From->id()] * Fraction(From, To);
}
