//===- opt/HotOrdering.h - Frequency-ordered optimization ------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper §6: "Branch probabilities can also be used to control the order
/// of applying other optimization phases, as is done in coagulation …
/// what we want to know is the execution frequencies of functions and
/// basic blocks … Optimizations can then be applied in descending order of
/// execution frequency", which "is particularly effective for
/// optimizations which allocate a limited resource".
///
/// This module estimates per-invocation block frequencies (Wu–Larus
/// propagation, opt/BlockFrequency.h) and combines them with call-site
/// frequencies over the call graph to rank every function and block of a
/// module by estimated absolute execution frequency.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_OPT_HOTORDERING_H
#define VRP_OPT_HOTORDERING_H

#include "interproc/InterproceduralVRP.h"
#include "opt/BlockFrequency.h"

#include <map>
#include <string>
#include <vector>

namespace vrp {

/// Estimated invocation frequency per function (entry = `main` at 1.0),
/// derived from call-site block frequencies propagated top-down over the
/// call graph. Recursive cycles are damped by \p RecursionFactor per
/// round (bounded rounds).
std::map<const Function *, double>
estimateFunctionFrequencies(const Module &M, const ModuleVRPResult &VRP,
                            double RecursionFactor = 8.0);

/// One block with its estimated absolute frequency.
struct HotBlock {
  const Function *F = nullptr;
  const BasicBlock *Block = nullptr;
  double Frequency = 0.0;
};

/// Every block of the module, hottest first: per-invocation block
/// frequency × function invocation frequency. The order optimizations
/// allocating limited resources should process.
std::vector<HotBlock> rankBlocksByFrequency(const Module &M,
                                            const ModuleVRPResult &VRP);

} // namespace vrp

#endif // VRP_OPT_HOTORDERING_H
