//===- opt/ConstCopyProp.h - VRP-subsumed optimizations ---------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §6 observation that "value range propagation subsumes both
/// constant propagation and copy propagation", made operational:
///
///  * a variable whose final range is a single constant `1[c:c:0]` is
///    replaced by that constant;
///  * a variable whose range is the single symbolic range of another
///    variable `1[y:y:0]` (and plain Copy instructions) is replaced by y;
///  * branches whose probability is exactly 0 or 1 *from ranges* fold to
///    unconditional branches, and the unreachable code is deleted ("just
///    as constant and copy propagation identify unreachable code, so does
///    value range propagation — branches to unreachable code have a
///    probability of 0").
///
//===----------------------------------------------------------------------===//

#ifndef VRP_OPT_CONSTCOPYPROP_H
#define VRP_OPT_CONSTCOPYPROP_H

#include "vrp/Propagation.h"

namespace vrp {

struct ConstCopyStats {
  unsigned ConstantsFolded = 0;
  unsigned CopiesPropagated = 0;
  unsigned BranchesFolded = 0;
  unsigned BlocksRemoved = 0;
  unsigned DeadInstructionsRemoved = 0;

  unsigned total() const {
    return ConstantsFolded + CopiesPropagated + BranchesFolded +
           BlocksRemoved + DeadInstructionsRemoved;
  }
};

/// Applies VRP-derived constant folding, copy propagation and
/// unreachable-code elimination to \p F using a finished propagation
/// result. The IR is left verified-valid SSA.
ConstCopyStats applyConstCopyProp(Function &F,
                                  const FunctionVRPResult &VRP);

} // namespace vrp

#endif // VRP_OPT_CONSTCOPYPROP_H
