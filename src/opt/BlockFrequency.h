//===- opt/BlockFrequency.h - Frequency propagation -------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block execution frequency estimation from branch probabilities, in the
/// style of [WuLarus94] (paper §6: "propagating frequencies around the
/// control flow graph until a fixed point is reached"). Loops are handled
/// innermost-first: the cyclic probability r of a loop turns into the
/// 1/(1-r) trip multiplier, capped to keep pathological loops finite.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_OPT_BLOCKFREQUENCY_H
#define VRP_OPT_BLOCKFREQUENCY_H

#include "ir/Function.h"

#include <functional>
#include <vector>

namespace vrp {

/// Probability that control leaving \p From takes the edge to \p To
/// (conditional-branch fraction; 1.0 for unconditional edges).
using EdgeFractionFn =
    std::function<double(const BasicBlock *From, const BasicBlock *To)>;

/// Estimated executions per function invocation, indexed by block id.
/// Entry has frequency 1.0.
std::vector<double> computeBlockFrequencies(const Function &F,
                                            const EdgeFractionFn &Fraction,
                                            double MaxCyclicProb = 0.98);

/// Frequency of the CFG edge From->To under \p Freqs.
double edgeFrequency(const std::vector<double> &Freqs,
                     const BasicBlock *From, const BasicBlock *To,
                     const EdgeFractionFn &Fraction);

} // namespace vrp

#endif // VRP_OPT_BLOCKFREQUENCY_H
