//===- opt/BoundsCheckElim.cpp - Array bounds check elimination -----------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "opt/BoundsCheckElim.h"

#include "ir/Function.h"

using namespace vrp;

BoundsCheckStatus vrp::classifyBoundsCheck(const ValueRange &IndexRange,
                                           int64_t ArraySize) {
  if (!IndexRange.isRanges())
    return BoundsCheckStatus::Required;

  bool LowerOk = true, UpperOk = true;
  for (const SubRange &S : IndexRange.subRanges()) {
    // Lower check: every possible value >= 0. A numeric lower bound
    // decides it; a symbolic lower bound does not.
    if (!S.Lo.isNumeric() || S.Lo.Offset < 0)
      LowerOk = false;
    // Upper check: every possible value < size.
    if (!S.Hi.isNumeric() || S.Hi.Offset >= ArraySize)
      UpperOk = false;
  }
  if (LowerOk && UpperOk)
    return BoundsCheckStatus::FullyRedundant;
  if (LowerOk)
    return BoundsCheckStatus::LowerRedundant;
  if (UpperOk)
    return BoundsCheckStatus::UpperRedundant;
  return BoundsCheckStatus::Required;
}

BoundsCheckReport vrp::analyzeBoundsChecks(const Function &F,
                                           const FunctionVRPResult &VRP) {
  BoundsCheckReport Report;
  auto classify = [&](const MemoryObject *Obj, const Value *Index) {
    ++Report.Total;
    switch (classifyBoundsCheck(VRP.rangeOf(Index), Obj->size())) {
    case BoundsCheckStatus::FullyRedundant:
      ++Report.FullyRedundant;
      break;
    case BoundsCheckStatus::LowerRedundant:
      ++Report.LowerRedundant;
      break;
    case BoundsCheckStatus::UpperRedundant:
      ++Report.UpperRedundant;
      break;
    case BoundsCheckStatus::Required:
      ++Report.Required;
      break;
    }
  };
  for (const auto &B : F.blocks()) {
    for (const auto &I : B->instructions()) {
      if (const auto *L = dyn_cast<LoadInst>(I.get()))
        classify(L->object(), L->index());
      else if (const auto *S = dyn_cast<StoreInst>(I.get()))
        classify(S->object(), S->index());
    }
  }
  return Report;
}

bool vrp::rangesCannotOverlap(const ValueRange &A, const ValueRange &B) {
  if (!A.isRanges() || !B.isRanges())
    return false;
  for (const SubRange &SA : A.subRanges()) {
    for (const SubRange &SB : B.subRanges()) {
      // Numeric separation.
      if (SA.isNumeric() && SB.isNumeric()) {
        if (SA.Hi.Offset < SB.Lo.Offset || SB.Hi.Offset < SA.Lo.Offset)
          continue;
        // Hulls overlap; disjoint lattices could still be proven via
        // stride reasoning, but we only claim the conservative cases.
        return false;
      }
      // Symbolic separation relative to one common ancestor, e.g.
      // a[i] vs a[i+1]: [v+1 : v+1] vs [v : v].
      const Value *SymA = SA.Lo.Sym ? SA.Lo.Sym : SA.Hi.Sym;
      const Value *SymB = SB.Lo.Sym ? SB.Lo.Sym : SB.Hi.Sym;
      if (SymA && SymA == SymB && !SA.Lo.isNumeric() &&
          !SA.Hi.isNumeric() && !SB.Lo.isNumeric() &&
          !SB.Hi.isNumeric()) {
        if (SA.Hi.Offset < SB.Lo.Offset || SB.Hi.Offset < SA.Lo.Offset)
          continue;
      }
      return false;
    }
  }
  return true;
}
