//===- opt/BlockLayout.cpp - Probability-guided code layout ----------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "opt/BlockLayout.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace vrp;

BlockOrder vrp::naturalOrder(const Function &F) {
  BlockOrder Order;
  for (const auto &B : F.blocks())
    Order.push_back(B.get());
  return Order;
}

BlockOrder vrp::computeLayout(const Function &F,
                              const EdgeFractionFn &Fraction) {
  std::vector<double> Freq = computeBlockFrequencies(F, Fraction);

  // Collect edges sorted by frequency, hottest first.
  struct Edge {
    const BasicBlock *From;
    const BasicBlock *To;
    double Freq;
  };
  std::vector<Edge> Edges;
  for (const auto &B : F.blocks())
    for (const BasicBlock *S : B->succs())
      Edges.push_back(
          {B.get(), S, edgeFrequency(Freq, B.get(), S, Fraction)});
  std::stable_sort(Edges.begin(), Edges.end(),
                   [](const Edge &A, const Edge &B) {
                     return A.Freq > B.Freq;
                   });

  // Chain formation: every block starts as its own chain; a hot edge
  // merges two chains when From is a chain tail and To a chain head.
  unsigned N = F.numBlocks();
  std::vector<unsigned> ChainOf(N), NextIn(N, ~0u), PrevIn(N, ~0u);
  std::vector<unsigned> HeadOf(N), TailOf(N);
  for (unsigned I = 0; I < N; ++I) {
    ChainOf[I] = I;
    HeadOf[I] = TailOf[I] = I;
  }
  auto chainRoot = [&](unsigned B) { return ChainOf[B]; };

  for (const Edge &E : Edges) {
    unsigned From = E.From->id(), To = E.To->id();
    unsigned CF = chainRoot(From), CT = chainRoot(To);
    if (CF == CT)
      continue; // Same chain (would create a cycle).
    if (TailOf[CF] != From || HeadOf[CT] != To)
      continue; // Only tail->head concatenation keeps chains linear.
    if (To == F.entry()->id())
      continue; // The entry must stay a chain head.
    // Concatenate CT after CF.
    NextIn[From] = To;
    PrevIn[To] = From;
    TailOf[CF] = TailOf[CT];
    // Relabel CT's members.
    for (unsigned B = To; B != ~0u; B = NextIn[B])
      ChainOf[B] = CF;
  }

  // Order chains: entry's chain first, then by hottest chain-head
  // frequency.
  std::vector<unsigned> ChainHeads;
  for (unsigned I = 0; I < N; ++I)
    if (PrevIn[I] == ~0u)
      ChainHeads.push_back(I);
  std::stable_sort(ChainHeads.begin(), ChainHeads.end(),
                   [&](unsigned A, unsigned B) {
                     if (A == F.entry()->id())
                       return true;
                     if (B == F.entry()->id())
                       return false;
                     return Freq[A] > Freq[B];
                   });

  BlockOrder Order;
  for (unsigned Head : ChainHeads)
    for (unsigned B = Head; B != ~0u; B = NextIn[B])
      Order.push_back(F.blocks()[B].get());
  assert(Order.size() == N && "layout lost blocks");
  return Order;
}

double vrp::expectedTakenTransfers(const Function &F,
                                   const BlockOrder &Order,
                                   const EdgeFractionFn &Fraction) {
  std::vector<double> Freq = computeBlockFrequencies(F, Fraction);
  std::map<const BasicBlock *, const BasicBlock *> FallThrough;
  for (size_t I = 0; I + 1 < Order.size(); ++I)
    FallThrough[Order[I]] = Order[I + 1];

  double Taken = 0.0;
  for (const auto &B : F.blocks()) {
    for (const BasicBlock *S : B->succs()) {
      auto It = FallThrough.find(B.get());
      bool IsFallThrough = It != FallThrough.end() && It->second == S;
      if (!IsFallThrough)
        Taken += edgeFrequency(Freq, B.get(), S, Fraction);
    }
  }
  return Taken;
}
