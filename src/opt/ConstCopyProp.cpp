//===- opt/ConstCopyProp.cpp - VRP-subsumed optimizations ------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "opt/ConstCopyProp.h"

#include "ir/CFGUtils.h"

#include <vector>

using namespace vrp;

namespace {

/// True for instructions with a result and no side effects (candidates
/// for folding and dead-code removal).
bool isPure(const Instruction &I) {
  switch (I.opcode()) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::Min:
  case Opcode::Max:
  case Opcode::Cmp:
  case Opcode::Neg:
  case Opcode::Not:
  case Opcode::Abs:
  case Opcode::Copy:
  case Opcode::IntToFloat:
  case Opcode::FloatToInt:
  case Opcode::Phi:
  case Opcode::Assert:
  case Opcode::Load: // Loads have no side effects (they may be removed
                     // when unused, but are never folded to constants).
    return true;
  default:
    return false;
  }
}

} // namespace

ConstCopyStats vrp::applyConstCopyProp(Function &F,
                                       const FunctionVRPResult &VRP) {
  ConstCopyStats Stats;
  constexpr double CertaintyEps = 1e-12;

  // 1. Fold branches that ranges prove one-sided, then drop unreachable
  //    code.
  for (const auto &[Branch, Pred] : VRP.Branches) {
    if (!Pred.FromRanges || !Pred.Reachable)
      continue;
    bool AlwaysTrue = Pred.ProbTrue >= 1.0 - CertaintyEps;
    bool AlwaysFalse = Pred.ProbTrue <= CertaintyEps;
    if (!AlwaysTrue && !AlwaysFalse)
      continue;
    auto *CBr = const_cast<CondBrInst *>(Branch);
    BasicBlock *From = CBr->parent();
    BasicBlock *Live = AlwaysTrue ? CBr->trueBlock() : CBr->falseBlock();
    BasicBlock *Dead = AlwaysTrue ? CBr->falseBlock() : CBr->trueBlock();
    // Keep the dead successor's φs consistent before the edge goes away.
    for (PhiInst *Phi : Dead->phis()) {
      int Index = Phi->indexOfIncoming(From);
      if (Index >= 0)
        Phi->removeIncoming(static_cast<unsigned>(Index));
    }
    replaceTerminatorWithBr(From, Live);
    ++Stats.BranchesFolded;
  }
  Stats.BlocksRemoved += removeUnreachableBlocks(F);

  // 2. Constants and copies, from the final output assignments.
  for (const auto &B : F.blocks()) {
    std::vector<Instruction *> Worklist;
    for (const auto &I : B->instructions())
      Worklist.push_back(I.get());
    for (Instruction *I : Worklist) {
      if (!isPure(*I) || I->type() == IRType::Void)
        continue;
      if (I->opcode() != Opcode::Load) {
        ValueRange VR = VRP.rangeOf(I);
        if (auto C = VR.asIntConstant()) {
          if (I->hasUses()) {
            I->replaceAllUsesWith(Constant::getInt(*C));
            ++Stats.ConstantsFolded;
          }
          continue;
        }
        if (VR.isFloatConst() && I->hasUses()) {
          I->replaceAllUsesWith(Constant::getFloat(VR.floatValue()));
          ++Stats.ConstantsFolded;
          continue;
        }
        if (const Value *Original = VR.asCopyOf()) {
          // A pure copy of another SSA variable: all uses retarget.
          // Dominance holds because the symbolic range can only name a
          // value whose definition dominates this one.
          if (I->hasUses() && Original != I) {
            I->replaceAllUsesWith(const_cast<Value *>(Original));
            ++Stats.CopiesPropagated;
            continue;
          }
        }
      }
      if (I->opcode() == Opcode::Copy && I->hasUses()) {
        I->replaceAllUsesWith(I->operand(0));
        ++Stats.CopiesPropagated;
      }
    }
  }

  // 3. Dead-code elimination to a fixpoint: pure, unused results go away
  //    (including the now-unused folded instructions).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &B : F.blocks()) {
      std::vector<Instruction *> Dead;
      for (const auto &I : B->instructions())
        if (isPure(*I) && !I->hasUses())
          Dead.push_back(I.get());
      for (Instruction *I : Dead) {
        I->eraseFromParent();
        ++Stats.DeadInstructionsRemoved;
        Changed = true;
      }
    }
  }
  return Stats;
}
