//===- opt/BoundsCheckElim.h - Array bounds check elimination ---*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper §6: "many array bounds checks can be shown to be redundant by
/// value range propagation." Every Load/Store conceptually carries the
/// check `0 <= index < size`; this analysis classifies each access by how
/// much of that check the index's value range discharges. It also provides
/// the §6 array-access alias test: two accesses whose index ranges cannot
/// overlap cannot alias.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_OPT_BOUNDSCHECKELIM_H
#define VRP_OPT_BOUNDSCHECKELIM_H

#include "vrp/Propagation.h"

namespace vrp {

/// How much of an access's bounds check the ranges discharge.
enum class BoundsCheckStatus {
  FullyRedundant, ///< 0 <= idx < size proven; both checks removable.
  LowerRedundant, ///< Only idx >= 0 proven.
  UpperRedundant, ///< Only idx < size proven.
  Required,       ///< Neither side proven.
};

struct BoundsCheckReport {
  unsigned Total = 0;
  unsigned FullyRedundant = 0;
  unsigned LowerRedundant = 0;
  unsigned UpperRedundant = 0;
  unsigned Required = 0;

  /// Fraction of individual checks (2 per access) eliminated.
  double eliminatedFraction() const {
    if (Total == 0)
      return 0.0;
    return (2.0 * FullyRedundant + LowerRedundant + UpperRedundant) /
           (2.0 * Total);
  }
};

/// Classifies one access's check given the index range and array size.
BoundsCheckStatus classifyBoundsCheck(const ValueRange &IndexRange,
                                      int64_t ArraySize);

/// Analyzes every Load/Store in \p F under \p VRP.
BoundsCheckReport analyzeBoundsChecks(const Function &F,
                                      const FunctionVRPResult &VRP);

/// Paper §6 alias test: true when the two index ranges provably cannot
/// produce the same element index (so the accesses cannot alias).
bool rangesCannotOverlap(const ValueRange &A, const ValueRange &B);

} // namespace vrp

#endif // VRP_OPT_BOUNDSCHECKELIM_H
