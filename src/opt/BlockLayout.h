//===- opt/BlockLayout.h - Probability-guided code layout -------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper §6 "Code Layout, Cache Optimization & Inlining": uses branch
/// probabilities to straighten likely paths. Bottom-up Pettis–Hansen-style
/// chain formation: hot edges merge chains so likely successors become
/// fall-throughs; chains order by first-touch frequency. The quality
/// metric is the expected number of taken (non-fall-through) control
/// transfers per invocation — lower is better for I-cache behavior.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_OPT_BLOCKLAYOUT_H
#define VRP_OPT_BLOCKLAYOUT_H

#include "opt/BlockFrequency.h"

#include <vector>

namespace vrp {

/// A block order for emission (entry first).
using BlockOrder = std::vector<const BasicBlock *>;

/// Computes a probability-guided layout for \p F.
BlockOrder computeLayout(const Function &F, const EdgeFractionFn &Fraction);

/// The function's natural (creation) order, the unoptimized baseline.
BlockOrder naturalOrder(const Function &F);

/// Expected taken-branch (non-fall-through transfer) count per invocation
/// for the given order.
double expectedTakenTransfers(const Function &F, const BlockOrder &Order,
                              const EdgeFractionFn &Fraction);

} // namespace vrp

#endif // VRP_OPT_BLOCKLAYOUT_H
