//===- ir/Value.cpp - IR value base class ----------------------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "ir/Value.h"

#include <cassert>
#include <map>
#include <memory>

using namespace vrp;

void Value::removeUse(Instruction *User, unsigned Index) {
  for (size_t I = 0; I < Uses.size(); ++I) {
    if (Uses[I].User == User && Uses[I].OperandIndex == Index) {
      Uses[I] = Uses.back();
      Uses.pop_back();
      return;
    }
  }
  assert(false && "use not found");
}

std::string Constant::displayName() const {
  if (isInt())
    return std::to_string(IntVal);
  std::string S = std::to_string(FloatVal);
  return S;
}

// Constants are interned process-wide so pointer equality means value
// equality. The pools live in function-local statics (lazy, no static
// constructor) and are intentionally never freed.
Constant *Constant::getInt(int64_t V) {
  static std::map<int64_t, std::unique_ptr<Constant>> Pool;
  auto &Slot = Pool[V];
  if (!Slot)
    Slot.reset(new Constant(V));
  return Slot.get();
}

Constant *Constant::getFloat(double V) {
  static std::map<double, std::unique_ptr<Constant>> Pool;
  auto &Slot = Pool[V];
  if (!Slot)
    Slot.reset(new Constant(V));
  return Slot.get();
}
