//===- ir/Value.cpp - IR value base class ----------------------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "ir/Value.h"

#include <cassert>
#include <map>
#include <memory>
#include <mutex>

using namespace vrp;

// Constants are interned process-wide (see getInt/getFloat), so both the
// pools and every constant's use list are shared between all modules in
// the process. The parallel evaluation engine builds and destroys modules
// concurrently; this lock keeps that shared state coherent. Non-constant
// values are owned by exactly one module and stay lock-free.
static std::mutex &sharedConstantMutex() {
  static std::mutex M;
  return M;
}

void Value::addUse(Instruction *User, unsigned Index) {
  if (TheKind == Kind::Constant) {
    std::lock_guard<std::mutex> Lock(sharedConstantMutex());
    Uses.push_back({User, Index});
    return;
  }
  Uses.push_back({User, Index});
}

void Value::removeUse(Instruction *User, unsigned Index) {
  auto erase = [&] {
    for (size_t I = 0; I < Uses.size(); ++I) {
      if (Uses[I].User == User && Uses[I].OperandIndex == Index) {
        Uses[I] = Uses.back();
        Uses.pop_back();
        return true;
      }
    }
    return false;
  };
  bool Found;
  if (TheKind == Kind::Constant) {
    std::lock_guard<std::mutex> Lock(sharedConstantMutex());
    Found = erase();
  } else {
    Found = erase();
  }
  assert(Found && "use not found");
  (void)Found;
}

bool Value::hasUse(const Instruction *User, unsigned Index) const {
  auto scan = [&] {
    for (const Use &U : Uses)
      if (U.User == User && U.OperandIndex == Index)
        return true;
    return false;
  };
  if (TheKind == Kind::Constant) {
    std::lock_guard<std::mutex> Lock(sharedConstantMutex());
    return scan();
  }
  return scan();
}

std::string Constant::displayName() const {
  if (isInt())
    return std::to_string(IntVal);
  std::string S = std::to_string(FloatVal);
  return S;
}

// Constants are interned process-wide so pointer equality means value
// equality. The pools live in function-local statics (lazy, no static
// constructor) and are intentionally never freed. std::map never
// invalidates element addresses, so returned pointers stay stable while
// the lock protects concurrent insertion.
Constant *Constant::getInt(int64_t V) {
  static std::map<int64_t, std::unique_ptr<Constant>> Pool;
  std::lock_guard<std::mutex> Lock(sharedConstantMutex());
  auto &Slot = Pool[V];
  if (!Slot)
    Slot.reset(new Constant(V));
  return Slot.get();
}

Constant *Constant::getFloat(double V) {
  static std::map<double, std::unique_ptr<Constant>> Pool;
  std::lock_guard<std::mutex> Lock(sharedConstantMutex());
  auto &Slot = Pool[V];
  if (!Slot)
    Slot.reset(new Constant(V));
  return Slot.get();
}
