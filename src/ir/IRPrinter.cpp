//===- ir/IRPrinter.cpp - Textual IR dumping -------------------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

using namespace vrp;

std::string vrp::instructionToString(const Instruction &I) {
  std::string S;
  auto op = [&](unsigned Idx) { return I.operand(Idx)->displayName(); };

  if (I.type() != IRType::Void)
    S += I.displayName() + " = ";

  switch (I.opcode()) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::Min:
  case Opcode::Max:
    S += std::string(opcodeName(I.opcode())) + " " + op(0) + ", " + op(1);
    break;
  case Opcode::Cmp: {
    const auto &C = cast<CmpInst>(&I);
    S += std::string("cmp ") + op(0) + " " + cmpPredSpelling(C->pred()) +
         " " + op(1);
    break;
  }
  case Opcode::Neg:
  case Opcode::Not:
  case Opcode::Abs:
  case Opcode::Copy:
  case Opcode::IntToFloat:
  case Opcode::FloatToInt:
    S += std::string(opcodeName(I.opcode())) + " " + op(0);
    break;
  case Opcode::ReadVar:
    S += "readvar $" + cast<ReadVarInst>(&I)->slot()->name();
    break;
  case Opcode::WriteVar: {
    const auto *W = cast<WriteVarInst>(&I);
    S += "writevar $" + W->slot()->name() + " = " + op(0);
    break;
  }
  case Opcode::Phi: {
    const auto *Phi = cast<PhiInst>(&I);
    S += "phi ";
    for (unsigned Idx = 0; Idx < Phi->numIncoming(); ++Idx) {
      if (Idx)
        S += ", ";
      S += "[" + op(Idx) + ", " + Phi->incomingBlock(Idx)->name() + "]";
    }
    break;
  }
  case Opcode::Assert: {
    const auto *A = cast<AssertInst>(&I);
    S += std::string("assert ") + op(0) + " " + cmpPredSpelling(A->pred()) +
         " " + op(1);
    break;
  }
  case Opcode::Load: {
    const auto *L = cast<LoadInst>(&I);
    S += "load @" + L->object()->name() + "[" + op(0) + "]";
    break;
  }
  case Opcode::Store: {
    const auto *St = cast<StoreInst>(&I);
    S += "store @" + St->object()->name() + "[" + op(0) + "] = " + op(1);
    break;
  }
  case Opcode::Call: {
    const auto *C = cast<CallInst>(&I);
    S += "call @" + C->callee()->name() + "(";
    for (unsigned Idx = 0; Idx < C->numArgs(); ++Idx) {
      if (Idx)
        S += ", ";
      S += op(Idx);
    }
    S += ")";
    break;
  }
  case Opcode::Input:
    S += "input";
    break;
  case Opcode::Print:
    S += "print " + op(0);
    break;
  case Opcode::Br:
    S += "br " + cast<BrInst>(&I)->target()->name();
    break;
  case Opcode::CondBr: {
    const auto *CBr = cast<CondBrInst>(&I);
    S += "condbr " + op(0) + ", " + CBr->trueBlock()->name() + ", " +
         CBr->falseBlock()->name();
    break;
  }
  case Opcode::Ret:
    S += "ret";
    if (I.numOperands() == 1)
      S += " " + op(0);
    break;
  }
  return S;
}

void vrp::printFunction(const Function &F, std::ostream &OS) {
  OS << "fn @" << F.name() << "(";
  for (unsigned I = 0; I < F.numParams(); ++I) {
    if (I)
      OS << ", ";
    OS << F.param(I)->displayName() << ": "
       << irTypeName(F.param(I)->type());
  }
  OS << ") -> " << irTypeName(F.returnType()) << " {\n";
  for (MemoryObject *Obj : F.localObjects())
    OS << "  local @" << Obj->name() << ": " << irTypeName(Obj->elemType())
       << "[" << Obj->size() << "]\n";
  for (const auto &B : F.blocks()) {
    OS << B->name() << ":";
    if (!B->preds().empty()) {
      OS << "  ; preds:";
      for (BasicBlock *P : B->preds())
        OS << " " << P->name();
    }
    OS << "\n";
    for (const auto &I : B->instructions())
      OS << "  " << instructionToString(*I) << "\n";
  }
  OS << "}\n";
}

void vrp::printModule(const Module &M, std::ostream &OS) {
  for (const auto &Obj : M.memoryObjects())
    if (Obj->isGlobal())
      OS << "global @" << Obj->name() << ": " << irTypeName(Obj->elemType())
         << "[" << Obj->size() << "]\n";
  for (const auto &F : M.functions()) {
    printFunction(*F, OS);
    OS << "\n";
  }
}
