//===- ir/CFGUtils.h - CFG construction and editing utilities ---*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers that create terminators while keeping predecessor lists
/// consistent, plus edge splitting (needed to give every conditional
/// out-edge a dedicated block for the paper's assertion instructions).
///
//===----------------------------------------------------------------------===//

#ifndef VRP_IR_CFGUTILS_H
#define VRP_IR_CFGUTILS_H

#include "ir/Function.h"

namespace vrp {

/// Appends `br To` to \p From and records the CFG edge.
BrInst *createBr(BasicBlock *From, BasicBlock *To);

/// Appends `condbr Cond, TrueTo, FalseTo` to \p From and records both edges.
CondBrInst *createCondBr(BasicBlock *From, Value *Cond, BasicBlock *TrueTo,
                         BasicBlock *FalseTo);

/// Appends `ret [V]` to \p From.
RetInst *createRet(BasicBlock *From, Value *V);

/// Splits the edge From->To by inserting a fresh block containing only a
/// `br To`. Updates the terminator of \p From, predecessor lists, and any
/// φ incoming entries in \p To. Returns the new block.
///
/// When From->To is a CondBr edge present on *both* out-edges, only the
/// occurrence selected by \p TrueEdge is split.
BasicBlock *splitEdge(BasicBlock *From, BasicBlock *To, bool TrueEdge);

/// Replaces the terminator of \p From with `br To`, updating predecessor
/// lists (and φs in abandoned successors are the caller's concern; used by
/// opt passes after rewriting φs).
BrInst *replaceTerminatorWithBr(BasicBlock *From, BasicBlock *To);

/// Deletes every block not reachable from the entry, fixing predecessor
/// lists and φ incoming entries of surviving blocks. Returns the number of
/// blocks removed. Block ids are renumbered densely.
unsigned removeUnreachableBlocks(Function &F);

} // namespace vrp

#endif // VRP_IR_CFGUTILS_H
