//===- ir/Type.h - IR value types -------------------------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalar types in the VRP IR: 64-bit integers and IEEE doubles. Arrays are
/// memory objects (ir/MemoryObject.h), not first-class values.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_IR_TYPE_H
#define VRP_IR_TYPE_H

namespace vrp {

enum class IRType { Int, Float, Void };

inline const char *irTypeName(IRType T) {
  switch (T) {
  case IRType::Int:
    return "int";
  case IRType::Float:
    return "float";
  case IRType::Void:
    return "void";
  }
  return "?";
}

} // namespace vrp

#endif // VRP_IR_TYPE_H
