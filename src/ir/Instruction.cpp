//===- ir/Instruction.cpp - IR instructions --------------------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "ir/Instruction.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"

using namespace vrp;

const char *vrp::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::Min:
    return "min";
  case Opcode::Max:
    return "max";
  case Opcode::Cmp:
    return "cmp";
  case Opcode::Neg:
    return "neg";
  case Opcode::Not:
    return "not";
  case Opcode::Abs:
    return "abs";
  case Opcode::Copy:
    return "copy";
  case Opcode::IntToFloat:
    return "itof";
  case Opcode::FloatToInt:
    return "ftoi";
  case Opcode::ReadVar:
    return "readvar";
  case Opcode::WriteVar:
    return "writevar";
  case Opcode::Phi:
    return "phi";
  case Opcode::Assert:
    return "assert";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Call:
    return "call";
  case Opcode::Input:
    return "input";
  case Opcode::Print:
    return "print";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Ret:
    return "ret";
  }
  return "?";
}

const char *vrp::cmpPredSpelling(CmpPred Pred) {
  switch (Pred) {
  case CmpPred::EQ:
    return "==";
  case CmpPred::NE:
    return "!=";
  case CmpPred::LT:
    return "<";
  case CmpPred::LE:
    return "<=";
  case CmpPred::GT:
    return ">";
  case CmpPred::GE:
    return ">=";
  }
  return "?";
}

CmpPred vrp::negatePred(CmpPred Pred) {
  switch (Pred) {
  case CmpPred::EQ:
    return CmpPred::NE;
  case CmpPred::NE:
    return CmpPred::EQ;
  case CmpPred::LT:
    return CmpPred::GE;
  case CmpPred::LE:
    return CmpPred::GT;
  case CmpPred::GT:
    return CmpPred::LE;
  case CmpPred::GE:
    return CmpPred::LT;
  }
  return Pred;
}

CmpPred vrp::swapPred(CmpPred Pred) {
  switch (Pred) {
  case CmpPred::EQ:
    return CmpPred::EQ;
  case CmpPred::NE:
    return CmpPred::NE;
  case CmpPred::LT:
    return CmpPred::GT;
  case CmpPred::LE:
    return CmpPred::GE;
  case CmpPred::GT:
    return CmpPred::LT;
  case CmpPred::GE:
    return CmpPred::LE;
  }
  return Pred;
}

bool vrp::evalPred(CmpPred Pred, int64_t A, int64_t B) {
  switch (Pred) {
  case CmpPred::EQ:
    return A == B;
  case CmpPred::NE:
    return A != B;
  case CmpPred::LT:
    return A < B;
  case CmpPred::LE:
    return A <= B;
  case CmpPred::GT:
    return A > B;
  case CmpPred::GE:
    return A >= B;
  }
  return false;
}

Function *Instruction::function() const {
  return Parent ? Parent->parent() : nullptr;
}

void Instruction::setOperand(unsigned I, Value *V) {
  assert(I < Operands.size() && "operand index out of range");
  assert(V && "null operand");
  Operands[I]->removeUse(this, I);
  Operands[I] = V;
  V->addUse(this, I);
}

void Instruction::removeOperand(unsigned I) {
  assert(I < Operands.size() && "operand index out of range");
  Operands[I]->removeUse(this, I);
  // Later operands shift down; fix their recorded use indices.
  for (unsigned J = I + 1; J < Operands.size(); ++J) {
    Operands[J]->removeUse(this, J);
    Operands[J]->addUse(this, J - 1);
  }
  Operands.erase(Operands.begin() + I);
}

void Instruction::replaceAllUsesWith(Value *V) {
  assert(V != this && "RAUW with self");
  // Copy the use list: setOperand mutates it.
  std::vector<Use> Snapshot = uses();
  for (const Use &U : Snapshot)
    U.User->setOperand(U.OperandIndex, V);
}

void Instruction::dropAllOperandUses() {
  for (unsigned I = 0; I < Operands.size(); ++I)
    Operands[I]->removeUse(this, I);
  Operands.clear();
}

void Instruction::eraseFromParent() {
  assert(Parent && "instruction not in a block");
  assert(!hasUses() && "erasing an instruction that still has uses");
  if (isTerminator()) {
    // Keep the successor predecessor lists consistent.
    if (auto *Br = dyn_cast<BrInst>(this)) {
      Br->target()->removePred(Parent);
    } else if (auto *CBr = dyn_cast<CondBrInst>(this)) {
      CBr->trueBlock()->removePred(Parent);
      CBr->falseBlock()->removePred(Parent);
    }
  }
  dropAllOperandUses();
  // detach() destroys *this; nothing may run afterwards.
  Parent->detach(this);
}

std::string Instruction::displayName() const {
  return "%t" + std::to_string(Id);
}
