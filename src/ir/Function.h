//===- ir/Function.h - IR functions -----------------------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Function owns its basic blocks and parameters and hands out dense
/// instruction ids (used by analyses for side tables).
///
//===----------------------------------------------------------------------===//

#ifndef VRP_IR_FUNCTION_H
#define VRP_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <memory>
#include <string>
#include <vector>

namespace vrp {

class Module;

/// A mutable scalar variable before SSA construction. Each VL local or
/// parameter gets one slot; ReadVar/WriteVar reference it; SSA construction
/// (ssa/SSAConstruction.h) eliminates all slots.
class VarSlot {
public:
  VarSlot(std::string Name, IRType Type, unsigned Id)
      : Name(std::move(Name)), Type(Type), Id(Id) {}

  const std::string &name() const { return Name; }
  IRType type() const { return Type; }
  unsigned id() const { return Id; }

private:
  std::string Name;
  IRType Type;
  unsigned Id;
};

/// One IR function: parameters, blocks, and references to its local memory
/// objects (owned by the Module).
class Function {
public:
  Function(Module *Parent, std::string Name, IRType ReturnType)
      : Parent(Parent), Name(std::move(Name)), ReturnType(ReturnType) {}

  Module *parent() const { return Parent; }
  const std::string &name() const { return Name; }
  IRType returnType() const { return ReturnType; }

  //===--------------------------------------------------------------------===
  // Parameters
  //===--------------------------------------------------------------------===

  Param *addParam(IRType Type, std::string ParamName) {
    Params.push_back(
        std::make_unique<Param>(Type, std::move(ParamName), Params.size(),
                                this));
    return Params.back().get();
  }
  unsigned numParams() const { return Params.size(); }
  Param *param(unsigned I) const { return Params[I].get(); }

  //===--------------------------------------------------------------------===
  // Blocks
  //===--------------------------------------------------------------------===

  BasicBlock *makeBlock(std::string BlockName) {
    Blocks.push_back(std::make_unique<BasicBlock>(
        this, std::move(BlockName), Blocks.size()));
    return Blocks.back().get();
  }

  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }
  unsigned numBlocks() const { return Blocks.size(); }
  BasicBlock *entry() const {
    return Blocks.empty() ? nullptr : Blocks.front().get();
  }

  /// Reassigns dense block ids in storage order (after CFG edits).
  void renumberBlocks() {
    for (unsigned I = 0; I < Blocks.size(); ++I)
      Blocks[I]->setId(I);
  }

  /// Removes every block for which \p ShouldErase returns true. The caller
  /// must already have disconnected those blocks from the CFG.
  template <typename Pred> void eraseBlocksIf(Pred ShouldErase) {
    std::vector<std::unique_ptr<BasicBlock>> Kept;
    for (auto &B : Blocks)
      if (!ShouldErase(B.get()))
        Kept.push_back(std::move(B));
    Blocks = std::move(Kept);
    renumberBlocks();
  }

  /// Total instruction count across all blocks.
  unsigned numInstructions() const {
    unsigned N = 0;
    for (const auto &B : Blocks)
      N += B->instructions().size();
    return N;
  }

  //===--------------------------------------------------------------------===
  // Local memory objects
  //===--------------------------------------------------------------------===

  void addLocalObject(MemoryObject *Obj) { LocalObjects.push_back(Obj); }
  const std::vector<MemoryObject *> &localObjects() const {
    return LocalObjects;
  }

  //===--------------------------------------------------------------------===
  // Pre-SSA variable slots
  //===--------------------------------------------------------------------===

  VarSlot *makeSlot(std::string SlotName, IRType Type) {
    Slots.push_back(std::make_unique<VarSlot>(std::move(SlotName), Type,
                                              Slots.size()));
    return Slots.back().get();
  }
  const std::vector<std::unique_ptr<VarSlot>> &slots() const { return Slots; }

  /// Next dense instruction id (assigned by BasicBlock::append).
  unsigned takeNextInstId() { return NextInstId++; }
  unsigned numInstIds() const { return NextInstId; }

private:
  Module *Parent;
  std::string Name;
  IRType ReturnType;
  std::vector<std::unique_ptr<Param>> Params;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  std::vector<MemoryObject *> LocalObjects;
  std::vector<std::unique_ptr<VarSlot>> Slots;
  unsigned NextInstId = 0;
};

} // namespace vrp

#endif // VRP_IR_FUNCTION_H
