//===- ir/CFGUtils.cpp - CFG construction and editing utilities -----------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "ir/CFGUtils.h"

#include <cassert>
#include <memory>
#include <set>
#include <vector>

using namespace vrp;

BrInst *vrp::createBr(BasicBlock *From, BasicBlock *To) {
  assert(!From->hasTerminator() && "block already terminated");
  auto *Br = cast<BrInst>(From->append(std::make_unique<BrInst>(To)));
  To->addPred(From);
  return Br;
}

CondBrInst *vrp::createCondBr(BasicBlock *From, Value *Cond,
                              BasicBlock *TrueTo, BasicBlock *FalseTo) {
  assert(!From->hasTerminator() && "block already terminated");
  auto *CBr = cast<CondBrInst>(
      From->append(std::make_unique<CondBrInst>(Cond, TrueTo, FalseTo)));
  TrueTo->addPred(From);
  FalseTo->addPred(From);
  return CBr;
}

RetInst *vrp::createRet(BasicBlock *From, Value *V) {
  assert(!From->hasTerminator() && "block already terminated");
  return cast<RetInst>(From->append(std::make_unique<RetInst>(V)));
}

BasicBlock *vrp::splitEdge(BasicBlock *From, BasicBlock *To, bool TrueEdge) {
  Instruction *T = From->terminator();
  assert(T && "unterminated block");

  BasicBlock *Mid =
      From->parent()->makeBlock(From->name() + "." + To->name() + ".split");

  if (auto *Br = dyn_cast<BrInst>(T)) {
    assert(Br->target() == To && "edge does not exist");
    Br->setTarget(Mid);
  } else {
    auto *CBr = cast<CondBrInst>(T);
    if (TrueEdge) {
      assert(CBr->trueBlock() == To && "true edge does not lead to To");
      CBr->setTrueBlock(Mid);
    } else {
      assert(CBr->falseBlock() == To && "false edge does not lead to To");
      CBr->setFalseBlock(Mid);
    }
  }

  Mid->addPred(From);
  createBr(Mid, To); // Adds Mid to To->preds.
  To->removePred(From);

  // Retarget φ incoming entries: the value now flows in from Mid. When the
  // CondBr had both edges to To there are two incoming entries for From;
  // retarget exactly one.
  for (PhiInst *Phi : To->phis()) {
    int Index = Phi->indexOfIncoming(From);
    if (Index >= 0)
      Phi->retargetIncoming(static_cast<unsigned>(Index), Mid);
  }
  return Mid;
}

BrInst *vrp::replaceTerminatorWithBr(BasicBlock *From, BasicBlock *To) {
  Instruction *T = From->terminator();
  assert(T && "unterminated block");
  T->eraseFromParent();
  return createBr(From, To);
}

unsigned vrp::removeUnreachableBlocks(Function &F) {
  std::set<BasicBlock *> Reachable;
  std::vector<BasicBlock *> Work{F.entry()};
  while (!Work.empty()) {
    BasicBlock *B = Work.back();
    Work.pop_back();
    if (!Reachable.insert(B).second)
      continue;
    for (BasicBlock *S : B->succs())
      Work.push_back(S);
  }
  if (Reachable.size() == F.numBlocks())
    return 0;

  // Disconnect dead blocks from live ones: drop dead preds (and matching φ
  // incoming entries) in reachable successors.
  for (const auto &B : F.blocks()) {
    if (!Reachable.count(B.get()))
      continue;
    std::vector<BasicBlock *> DeadPreds;
    for (BasicBlock *P : B->preds())
      if (!Reachable.count(P))
        DeadPreds.push_back(P);
    for (BasicBlock *P : DeadPreds) {
      for (PhiInst *Phi : B->phis()) {
        int Index = Phi->indexOfIncoming(P);
        if (Index >= 0)
          Phi->removeIncoming(static_cast<unsigned>(Index));
      }
      B->removePred(P);
    }
  }

  // Dead instructions may use live values (and each other, in any order):
  // drop all their operand uses first, then erase the blocks wholesale.
  // Live code cannot use a dead definition (defs dominate uses, and a dead
  // block dominates nothing live), so no live use lists are left dangling.
  for (const auto &B : F.blocks()) {
    if (Reachable.count(B.get()))
      continue;
    for (const auto &I : B->instructions())
      I->dropAllOperands();
  }
  unsigned Before = F.numBlocks();
  F.eraseBlocksIf(
      [&](BasicBlock *B) { return Reachable.count(B) == 0; });
  return Before - F.numBlocks();
}
