//===- ir/IRPrinter.h - Textual IR dumping ----------------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints modules, functions and instructions in a readable textual form
/// (used by tests for golden comparisons and by the example tools).
///
//===----------------------------------------------------------------------===//

#ifndef VRP_IR_IRPRINTER_H
#define VRP_IR_IRPRINTER_H

#include "ir/Module.h"

#include <ostream>
#include <string>

namespace vrp {

/// Renders one instruction, e.g. "%t3 = add %t1, 4".
std::string instructionToString(const Instruction &I);

/// Prints \p F with blocks in storage order, including predecessor lists.
void printFunction(const Function &F, std::ostream &OS);

/// Prints every memory object and function in \p M.
void printModule(const Module &M, std::ostream &OS);

} // namespace vrp

#endif // VRP_IR_IRPRINTER_H
