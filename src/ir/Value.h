//===- ir/Value.h - IR value base class -------------------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Value hierarchy root. A Value is anything an instruction can use as
/// an operand: constants, function parameters, and instruction results.
/// Def-use edges ("SSA edges" in the paper) are maintained automatically by
/// Instruction::setOperand and drive the SSA worklist of the propagation
/// engine.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_IR_VALUE_H
#define VRP_IR_VALUE_H

#include "ir/Type.h"
#include "support/Casting.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vrp {

class Instruction;

/// One use of a Value: the using instruction and the operand slot.
struct Use {
  Instruction *User = nullptr;
  unsigned OperandIndex = 0;
};

/// Base class for everything that can appear as an instruction operand.
class Value {
public:
  enum class Kind { Constant, Param, Instruction };

  Value(Kind K, IRType Type) : TheKind(K), Type(Type) {}
  virtual ~Value() = default;

  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;

  Kind kind() const { return TheKind; }
  IRType type() const { return Type; }

  const std::vector<Use> &uses() const { return Uses; }
  bool hasUses() const { return !Uses.empty(); }
  unsigned numUses() const { return Uses.size(); }

  /// Whether (\p User, \p Index) appears in the use list. Unlike iterating
  /// uses() directly, this is safe to call on interned Constants while
  /// other threads build or destroy modules: constants are shared
  /// process-wide, so their use lists are guarded by a lock (Value.cpp).
  bool hasUse(const Instruction *User, unsigned Index) const;

  /// A short printable name, e.g. "%t12", "7", "arg n". Computed by
  /// subclasses.
  virtual std::string displayName() const = 0;

private:
  friend class Instruction;
  // Out of line: use-list edits on interned Constants take a process-wide
  // lock so modules can be built and destroyed concurrently.
  void addUse(Instruction *User, unsigned Index);
  void removeUse(Instruction *User, unsigned Index);

  const Kind TheKind;
  IRType Type;
  std::vector<Use> Uses;
};

/// A compile-time constant (int or float).
class Constant : public Value {
public:
  static Constant *getInt(int64_t V);   // Interned; see Constant.cpp.
  static Constant *getFloat(double V);

  bool isInt() const { return type() == IRType::Int; }
  int64_t intValue() const { return IntVal; }
  double floatValue() const { return FloatVal; }

  std::string displayName() const override;

  static bool classof(const Value *V) {
    return V->kind() == Kind::Constant;
  }

private:
  Constant(int64_t V) : Value(Kind::Constant, IRType::Int), IntVal(V) {}
  Constant(double V) : Value(Kind::Constant, IRType::Float), FloatVal(V) {}

  int64_t IntVal = 0;
  double FloatVal = 0.0;
};

class Function;

/// A formal parameter of a Function.
class Param : public Value {
public:
  Param(IRType Type, std::string Name, unsigned Index, Function *Parent)
      : Value(Kind::Param, Type), Name(std::move(Name)), Index(Index),
        Parent(Parent) {}

  const std::string &name() const { return Name; }
  unsigned index() const { return Index; }
  Function *parent() const { return Parent; }

  std::string displayName() const override { return "%" + Name; }

  static bool classof(const Value *V) { return V->kind() == Kind::Param; }

private:
  std::string Name;
  unsigned Index;
  Function *Parent;
};

} // namespace vrp

#endif // VRP_IR_VALUE_H
