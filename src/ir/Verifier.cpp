//===- ir/Verifier.cpp - IR structural invariants --------------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include <algorithm>
#include <map>

using namespace vrp;

namespace {

class VerifierImpl {
public:
  VerifierImpl(const Function &F, std::vector<std::string> &Problems,
               bool ExpectPhis)
      : F(F), Problems(Problems), ExpectPhis(ExpectPhis) {}

  bool run();

private:
  void problem(const std::string &Msg) {
    Problems.push_back("@" + F.name() + ": " + Msg);
  }

  void checkBlock(const BasicBlock &B);
  void checkEdgeSymmetry();
  void checkInstruction(const Instruction &I);

  const Function &F;
  std::vector<std::string> &Problems;
  bool ExpectPhis;
};

} // namespace

bool VerifierImpl::run() {
  size_t Before = Problems.size();
  if (F.numBlocks() == 0) {
    problem("function has no blocks");
    return false;
  }
  if (!F.entry()->preds().empty())
    problem("entry block has predecessors");
  for (const auto &B : F.blocks())
    checkBlock(*B);
  checkEdgeSymmetry();
  return Problems.size() == Before;
}

void VerifierImpl::checkBlock(const BasicBlock &B) {
  if (!B.hasTerminator()) {
    problem("block " + B.name() + " has no terminator");
    return;
  }
  bool SeenNonPhi = false;
  for (const auto &I : B.instructions()) {
    if (I->isTerminator() && I.get() != B.back())
      problem("block " + B.name() + " has a terminator mid-block");
    if (I->opcode() == Opcode::Phi) {
      if (SeenNonPhi)
        problem("block " + B.name() + " has a φ after non-φ instructions");
    } else {
      SeenNonPhi = true;
    }
    if (I->parent() != &B)
      problem("instruction " + I->displayName() + " has wrong parent");
    checkInstruction(*I);
  }

  if (ExpectPhis) {
    for (PhiInst *Phi : B.phis()) {
      if (Phi->numIncoming() != B.numPreds()) {
        problem("φ " + Phi->displayName() + " in " + B.name() + " has " +
                std::to_string(Phi->numIncoming()) + " incoming but block "
                "has " + std::to_string(B.numPreds()) + " preds");
        continue;
      }
      // Every predecessor must appear exactly once.
      std::vector<const BasicBlock *> Preds(B.preds().begin(),
                                            B.preds().end());
      for (unsigned I = 0; I < Phi->numIncoming(); ++I) {
        auto It = std::find(Preds.begin(), Preds.end(),
                            Phi->incomingBlock(I));
        if (It == Preds.end())
          problem("φ " + Phi->displayName() + " has incoming from non-pred " +
                  Phi->incomingBlock(I)->name());
        else
          Preds.erase(It);
      }
    }
  }
}

void VerifierImpl::checkEdgeSymmetry() {
  // Count edges in both directions and compare multiset-wise.
  std::map<std::pair<const BasicBlock *, const BasicBlock *>, int> FromSucc;
  std::map<std::pair<const BasicBlock *, const BasicBlock *>, int> FromPred;
  for (const auto &B : F.blocks()) {
    for (BasicBlock *S : B->succs())
      ++FromSucc[{B.get(), S}];
    for (BasicBlock *P : B->preds())
      ++FromPred[{P, B.get()}];
  }
  if (FromSucc != FromPred)
    problem("successor/predecessor lists disagree");
}

void VerifierImpl::checkInstruction(const Instruction &I) {
  for (unsigned Idx = 0; Idx < I.numOperands(); ++Idx) {
    Value *Op = I.operand(Idx);
    // Operand use lists must contain this use. hasUse (not uses()) so the
    // check is safe on shared Constants during parallel evaluation.
    if (!Op->hasUse(&I, Idx))
      problem("operand " + std::to_string(Idx) + " of " + I.displayName() +
              " missing from use list");
  }

  switch (I.opcode()) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Min:
  case Opcode::Max:
    if (I.operand(0)->type() != I.type() || I.operand(1)->type() != I.type())
      problem("binary op " + I.displayName() + " has mistyped operands");
    break;
  case Opcode::Rem:
  case Opcode::Cmp:
    if (I.opcode() == Opcode::Rem &&
        (I.operand(0)->type() != IRType::Int ||
         I.operand(1)->type() != IRType::Int))
      problem("rem " + I.displayName() + " requires int operands");
    if (I.opcode() == Opcode::Cmp &&
        I.operand(0)->type() != I.operand(1)->type())
      problem("cmp " + I.displayName() + " compares mixed types");
    break;
  case Opcode::IntToFloat:
    if (I.operand(0)->type() != IRType::Int || I.type() != IRType::Float)
      problem("itof " + I.displayName() + " has wrong types");
    break;
  case Opcode::FloatToInt:
    if (I.operand(0)->type() != IRType::Float || I.type() != IRType::Int)
      problem("ftoi " + I.displayName() + " has wrong types");
    break;
  case Opcode::Assert: {
    const auto *A = cast<AssertInst>(&I);
    if (A->source()->type() != A->type())
      problem("assert " + I.displayName() + " changes type");
    break;
  }
  case Opcode::Call: {
    const auto *C = cast<CallInst>(&I);
    if (!C->callee())
      problem("call " + I.displayName() + " has null callee");
    else if (C->numArgs() != C->callee()->numParams())
      problem("call " + I.displayName() + " arity mismatch calling @" +
              C->callee()->name());
    break;
  }
  case Opcode::CondBr:
    if (I.operand(0)->type() != IRType::Int)
      problem("condbr condition must be int");
    break;
  default:
    break;
  }
}

bool vrp::verifyFunction(const Function &F,
                         std::vector<std::string> &Problems,
                         bool ExpectPhis) {
  return VerifierImpl(F, Problems, ExpectPhis).run();
}

bool vrp::verifyModule(const Module &M, std::vector<std::string> &Problems,
                       bool ExpectPhis) {
  bool Ok = true;
  for (const auto &F : M.functions())
    Ok &= verifyFunction(*F, Problems, ExpectPhis);
  return Ok;
}
