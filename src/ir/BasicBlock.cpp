//===- ir/BasicBlock.cpp - CFG basic blocks --------------------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"

#include "ir/Function.h"

#include <algorithm>
#include <cassert>

using namespace vrp;

Instruction *BasicBlock::append(std::unique_ptr<Instruction> I) {
  assert(!hasTerminator() && "appending past a terminator");
  I->Parent = this;
  I->Id = Parent->takeNextInstId();
  Instrs.push_back(std::move(I));
  return Instrs.back().get();
}

PhiInst *BasicBlock::insertPhi(std::unique_ptr<PhiInst> Phi) {
  Phi->Parent = this;
  Phi->Id = Parent->takeNextInstId();
  auto It = Instrs.begin();
  while (It != Instrs.end() && (*It)->opcode() == Opcode::Phi)
    ++It;
  PhiInst *Raw = Phi.get();
  Instrs.insert(It, std::move(Phi));
  return Raw;
}

Instruction *BasicBlock::insertBeforeTerminator(
    std::unique_ptr<Instruction> I) {
  I->Parent = this;
  I->Id = Parent->takeNextInstId();
  Instruction *Raw = I.get();
  if (hasTerminator())
    Instrs.insert(Instrs.end() - 1, std::move(I));
  else
    Instrs.push_back(std::move(I));
  return Raw;
}

Instruction *BasicBlock::insertAtHead(std::unique_ptr<Instruction> I) {
  I->Parent = this;
  I->Id = Parent->takeNextInstId();
  auto It = Instrs.begin();
  while (It != Instrs.end() && ((*It)->opcode() == Opcode::Phi ||
                                (*It)->opcode() == Opcode::Assert))
    ++It;
  Instruction *Raw = I.get();
  Instrs.insert(It, std::move(I));
  return Raw;
}

std::vector<PhiInst *> BasicBlock::phis() const {
  std::vector<PhiInst *> Result;
  for (const auto &I : Instrs) {
    auto *Phi = dyn_cast<PhiInst>(I.get());
    if (!Phi)
      break;
    Result.push_back(Phi);
  }
  return Result;
}

std::vector<BasicBlock *> BasicBlock::succs() const {
  Instruction *T = terminator();
  if (!T)
    return {};
  if (auto *Br = dyn_cast<BrInst>(T))
    return {Br->target()};
  if (auto *CBr = dyn_cast<CondBrInst>(T))
    return {CBr->trueBlock(), CBr->falseBlock()};
  return {};
}

void BasicBlock::removePred(BasicBlock *Pred) {
  auto It = std::find(Preds.begin(), Preds.end(), Pred);
  assert(It != Preds.end() && "predecessor not found");
  Preds.erase(It);
}

void BasicBlock::replacePred(BasicBlock *Old, BasicBlock *New) {
  auto It = std::find(Preds.begin(), Preds.end(), Old);
  assert(It != Preds.end() && "predecessor not found");
  *It = New;
}

std::unique_ptr<Instruction> BasicBlock::detach(Instruction *I) {
  for (auto It = Instrs.begin(); It != Instrs.end(); ++It) {
    if (It->get() == I) {
      std::unique_ptr<Instruction> Owned = std::move(*It);
      Instrs.erase(It);
      Owned->Parent = nullptr;
      return Owned;
    }
  }
  assert(false && "instruction not in this block");
  return nullptr;
}
