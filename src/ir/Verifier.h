//===- ir/Verifier.h - IR structural invariants -----------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural IR checks run after irgen and after every transforming pass
/// in tests: terminator placement, predecessor/successor symmetry, operand
/// type sanity and φ/predecessor agreement. SSA dominance is checked
/// separately (ssa/SSAVerifier.h) because it needs the dominator tree.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_IR_VERIFIER_H
#define VRP_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace vrp {

/// Checks structural invariants of \p F. Appends human-readable problem
/// descriptions to \p Problems; returns true when none were found.
/// \p ExpectPhis controls whether φ incoming lists must match predecessor
/// lists exactly (true after SSA construction).
bool verifyFunction(const Function &F, std::vector<std::string> &Problems,
                    bool ExpectPhis);

/// Verifies every function in \p M.
bool verifyModule(const Module &M, std::vector<std::string> &Problems,
                  bool ExpectPhis);

} // namespace vrp

#endif // VRP_IR_VERIFIER_H
