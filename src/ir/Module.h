//===- ir/Module.h - IR modules ---------------------------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Module is one whole VL program lowered to IR: functions plus all
/// memory objects (arrays, and size-1 cells backing global scalars).
///
//===----------------------------------------------------------------------===//

#ifndef VRP_IR_MODULE_H
#define VRP_IR_MODULE_H

#include "ir/Function.h"

#include <memory>
#include <string>
#include <vector>

namespace vrp {

/// A whole-program IR container.
class Module {
public:
  Function *makeFunction(std::string Name, IRType ReturnType) {
    Functions.push_back(
        std::make_unique<Function>(this, std::move(Name), ReturnType));
    return Functions.back().get();
  }

  MemoryObject *makeMemoryObject(std::string Name, IRType ElemType,
                                 int64_t Size, bool IsGlobal) {
    Objects.push_back(std::make_unique<MemoryObject>(
        std::move(Name), ElemType, Size, IsGlobal, Objects.size()));
    return Objects.back().get();
  }

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }
  const std::vector<std::unique_ptr<MemoryObject>> &memoryObjects() const {
    return Objects;
  }

  Function *findFunction(const std::string &Name) const {
    for (const auto &F : Functions)
      if (F->name() == Name)
        return F.get();
    return nullptr;
  }

  /// Initial value for a global scalar cell (index = MemoryObject id).
  /// Cells without an entry start at zero.
  void setScalarInit(const MemoryObject *Obj, double Value) {
    if (ScalarInits.size() <= Obj->id())
      ScalarInits.resize(Obj->id() + 1, 0.0);
    ScalarInits[Obj->id()] = Value;
  }
  double scalarInit(const MemoryObject *Obj) const {
    return Obj->id() < ScalarInits.size() ? ScalarInits[Obj->id()] : 0.0;
  }

  /// Total instruction count across all functions (paper Figures 5/6 use
  /// this as the program-size axis).
  unsigned numInstructions() const {
    unsigned N = 0;
    for (const auto &F : Functions)
      N += F->numInstructions();
    return N;
  }

private:
  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<std::unique_ptr<MemoryObject>> Objects;
  std::vector<double> ScalarInits;
};

} // namespace vrp

#endif // VRP_IR_MODULE_H
