//===- ir/BasicBlock.h - CFG basic blocks -----------------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic blocks: an instruction sequence ending in one terminator, with
/// explicit predecessor lists. Successors are derived from the terminator,
/// so the two views can never diverge.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_IR_BASICBLOCK_H
#define VRP_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <memory>
#include <string>
#include <vector>

namespace vrp {

class Function;

/// A CFG node. Blocks own their instructions.
class BasicBlock {
public:
  BasicBlock(Function *Parent, std::string Name, unsigned Id)
      : Parent(Parent), Name(std::move(Name)), Id(Id) {}

  Function *parent() const { return Parent; }
  const std::string &name() const { return Name; }
  unsigned id() const { return Id; }
  void setId(unsigned NewId) { Id = NewId; }

  //===--------------------------------------------------------------------===
  // Instructions
  //===--------------------------------------------------------------------===

  const std::vector<std::unique_ptr<Instruction>> &instructions() const {
    return Instrs;
  }
  bool empty() const { return Instrs.empty(); }
  Instruction *front() const { return Instrs.front().get(); }
  Instruction *back() const { return Instrs.back().get(); }

  /// Appends \p I (takes ownership). Must not already have a terminator.
  Instruction *append(std::unique_ptr<Instruction> I);

  /// Inserts a φ at the end of the existing φ prefix.
  PhiInst *insertPhi(std::unique_ptr<PhiInst> Phi);

  /// Inserts \p I immediately before the terminator (or appends when the
  /// block is still open).
  Instruction *insertBeforeTerminator(std::unique_ptr<Instruction> I);

  /// Inserts \p I after the φ prefix and after any existing Assert
  /// instructions at the block head (used for edge assertions).
  Instruction *insertAtHead(std::unique_ptr<Instruction> I);

  /// The terminator, or null while the block is still being built.
  Instruction *terminator() const {
    return !Instrs.empty() && Instrs.back()->isTerminator()
               ? Instrs.back().get()
               : nullptr;
  }
  bool hasTerminator() const { return terminator() != nullptr; }

  /// All φ instructions (the block's leading φ prefix).
  std::vector<PhiInst *> phis() const;

  //===--------------------------------------------------------------------===
  // CFG edges
  //===--------------------------------------------------------------------===

  const std::vector<BasicBlock *> &preds() const { return Preds; }
  unsigned numPreds() const { return Preds.size(); }

  /// Successors derived from the terminator: {} for Ret, {target} for Br,
  /// {true, false} for CondBr.
  std::vector<BasicBlock *> succs() const;
  unsigned numSuccs() const { return succs().size(); }

  void addPred(BasicBlock *Pred) { Preds.push_back(Pred); }
  void removePred(BasicBlock *Pred);
  /// Replaces a predecessor entry (keeping φ incoming lists in sync is the
  /// caller's job; see splitEdge in ir/CFGUtils.h).
  void replacePred(BasicBlock *Old, BasicBlock *New);

private:
  friend class Instruction;
  std::unique_ptr<Instruction> detach(Instruction *I);

  Function *Parent;
  std::string Name;
  unsigned Id;
  std::vector<std::unique_ptr<Instruction>> Instrs;
  std::vector<BasicBlock *> Preds;
};

} // namespace vrp

#endif // VRP_IR_BASICBLOCK_H
