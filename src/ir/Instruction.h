//===- ir/Instruction.h - IR instructions -----------------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR instruction set: three-address arithmetic over virtual registers,
/// φ-functions, the paper's post-branch `assert` instructions (π-nodes),
/// array loads/stores, calls, the input/print intrinsics and the
/// terminators. Instructions are Values; operand def-use edges are the "SSA
/// edges" the propagation engine walks.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_IR_INSTRUCTION_H
#define VRP_IR_INSTRUCTION_H

#include "ir/MemoryObject.h"
#include "ir/Value.h"
#include "support/SourceLoc.h"

#include <cassert>
#include <vector>

namespace vrp {

class BasicBlock;
class Function;

enum class Opcode {
  // Binary arithmetic (typed by the result type).
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Min,
  Max,
  // Comparisons (always produce int 0/1).
  Cmp,
  // Unary.
  Neg,
  Not,
  Abs,
  Copy,
  IntToFloat,
  FloatToInt,
  // Pre-SSA mutable scalar variables (removed by SSA construction).
  ReadVar,
  WriteVar,
  // SSA constructs.
  Phi,
  Assert,
  // Memory.
  Load,
  Store,
  // Calls and intrinsics.
  Call,
  Input,
  Print,
  // Terminators.
  Br,
  CondBr,
  Ret,
};

const char *opcodeName(Opcode Op);

/// Comparison predicates shared by Cmp and Assert instructions.
enum class CmpPred { EQ, NE, LT, LE, GT, GE };

const char *cmpPredSpelling(CmpPred Pred);

/// Returns the predicate that holds on the *false* edge of a branch testing
/// \p Pred (its logical negation).
CmpPred negatePred(CmpPred Pred);

/// Returns the predicate with its operands swapped (e.g. LT -> GT).
CmpPred swapPred(CmpPred Pred);

/// Evaluates `A Pred B` on concrete integers.
bool evalPred(CmpPred Pred, int64_t A, int64_t B);

/// Base instruction class. Owns nothing; operands are borrowed Value
/// pointers with automatically maintained use lists.
class Instruction : public Value {
public:
  Opcode opcode() const { return Op; }
  BasicBlock *parent() const { return Parent; }
  Function *function() const;
  unsigned id() const { return Id; }
  SourceLoc loc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  unsigned numOperands() const { return Operands.size(); }
  Value *operand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  void setOperand(unsigned I, Value *V);

  /// Removes operand \p I, shifting later operands down (their recorded use
  /// indices are fixed up). Only φs and erased instructions shrink.
  void removeOperand(unsigned I);

  /// Drops every operand use (leaves the instruction with zero operands).
  /// Used when tearing down unreachable code.
  void dropAllOperands() { dropAllOperandUses(); }

  bool isTerminator() const {
    return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
  }

  /// Replaces every use of this instruction's result with \p V.
  void replaceAllUsesWith(Value *V);

  /// Unlinks from the parent block and drops operand uses. The instruction
  /// is destroyed (blocks own their instructions).
  void eraseFromParent();

  std::string displayName() const override;

  static bool classof(const Value *V) {
    return V->kind() == Kind::Instruction;
  }

protected:
  Instruction(Opcode Op, IRType Type, std::vector<Value *> Ops)
      : Value(Kind::Instruction, Type), Op(Op) {
    for (Value *V : Ops)
      addOperand(V);
  }

  void addOperand(Value *V) {
    assert(V && "null operand");
    V->addUse(this, Operands.size());
    Operands.push_back(V);
  }

private:
  friend class BasicBlock;
  void dropAllOperandUses();

  Opcode Op;
  BasicBlock *Parent = nullptr;
  unsigned Id = 0;
  SourceLoc Loc;
  std::vector<Value *> Operands;
};

/// Binary arithmetic: Add/Sub/Mul/Div/Rem/Min/Max.
class BinaryInst : public Instruction {
public:
  BinaryInst(Opcode Op, IRType Type, Value *LHS, Value *RHS)
      : Instruction(Op, Type, {LHS, RHS}) {
    assert(Op == Opcode::Add || Op == Opcode::Sub || Op == Opcode::Mul ||
           Op == Opcode::Div || Op == Opcode::Rem || Op == Opcode::Min ||
           Op == Opcode::Max);
  }

  Value *lhs() const { return operand(0); }
  Value *rhs() const { return operand(1); }

  static bool classof(const Value *V) {
    if (auto *I = dyn_cast<Instruction>(V))
      switch (I->opcode()) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::Min:
      case Opcode::Max:
        return true;
      default:
        return false;
      }
    return false;
  }
};

/// A comparison producing int 0/1.
class CmpInst : public Instruction {
public:
  CmpInst(CmpPred Pred, Value *LHS, Value *RHS)
      : Instruction(Opcode::Cmp, IRType::Int, {LHS, RHS}), Pred(Pred) {}

  CmpPred pred() const { return Pred; }
  Value *lhs() const { return operand(0); }
  Value *rhs() const { return operand(1); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Cmp;
  }

private:
  CmpPred Pred;
};

/// Unary ops: Neg/Not/Abs/Copy/IntToFloat/FloatToInt.
class UnaryInst : public Instruction {
public:
  UnaryInst(Opcode Op, IRType Type, Value *Sub)
      : Instruction(Op, Type, {Sub}) {
    assert(Op == Opcode::Neg || Op == Opcode::Not || Op == Opcode::Abs ||
           Op == Opcode::Copy || Op == Opcode::IntToFloat ||
           Op == Opcode::FloatToInt);
  }

  Value *sub() const { return operand(0); }

  static bool classof(const Value *V) {
    if (auto *I = dyn_cast<Instruction>(V))
      switch (I->opcode()) {
      case Opcode::Neg:
      case Opcode::Not:
      case Opcode::Abs:
      case Opcode::Copy:
      case Opcode::IntToFloat:
      case Opcode::FloatToInt:
        return true;
      default:
        return false;
      }
    return false;
  }
};

class VarSlot;

/// Pre-SSA read of a mutable scalar variable. SSA construction replaces
/// every ReadVar with the reaching SSA value.
class ReadVarInst : public Instruction {
public:
  ReadVarInst(VarSlot *Slot, IRType Type)
      : Instruction(Opcode::ReadVar, Type, {}), Slot(Slot) {}

  VarSlot *slot() const { return Slot; }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::ReadVar;
  }

private:
  VarSlot *Slot;
};

/// Pre-SSA write of a mutable scalar variable; erased by SSA construction.
class WriteVarInst : public Instruction {
public:
  WriteVarInst(VarSlot *Slot, Value *V)
      : Instruction(Opcode::WriteVar, IRType::Void, {V}), Slot(Slot) {}

  VarSlot *slot() const { return Slot; }
  Value *storedValue() const { return operand(0); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::WriteVar;
  }

private:
  VarSlot *Slot;
};

/// A φ-function. Operand I flows in from incomingBlock(I).
class PhiInst : public Instruction {
public:
  explicit PhiInst(IRType Type) : Instruction(Opcode::Phi, Type, {}) {}

  /// During SSA construction: the variable slot this φ merges (null after).
  VarSlot *slot() const { return Slot; }
  void setSlot(VarSlot *S) { Slot = S; }

  void addIncoming(Value *V, BasicBlock *Pred) {
    addOperand(V);
    Incoming.push_back(Pred);
  }

  unsigned numIncoming() const { return Incoming.size(); }
  BasicBlock *incomingBlock(unsigned I) const { return Incoming[I]; }
  Value *incomingValue(unsigned I) const { return operand(I); }

  /// Returns the operand index for \p Pred, or -1 if absent.
  int indexOfIncoming(const BasicBlock *Pred) const {
    for (unsigned I = 0; I < Incoming.size(); ++I)
      if (Incoming[I] == Pred)
        return static_cast<int>(I);
    return -1;
  }

  /// Points incoming entry \p I at a different predecessor (used when an
  /// edge is split).
  void retargetIncoming(unsigned I, BasicBlock *NewPred) {
    assert(I < Incoming.size() && "incoming index out of range");
    Incoming[I] = NewPred;
  }

  /// Removes incoming entry \p I (operand and block).
  void removeIncoming(unsigned I) {
    assert(I < Incoming.size() && "incoming index out of range");
    removeOperand(I);
    Incoming.erase(Incoming.begin() + I);
  }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Phi;
  }

private:
  std::vector<BasicBlock *> Incoming;
  VarSlot *Slot = nullptr;
};

/// The paper's post-branch assertion: `%r = assert %src PRED %bound`.
/// The result is %src refined by the knowledge that the predicate held on
/// the edge this assertion lives on. Footnote 4's merge rule (assertion ⊓
/// parent = parent) uses parentValue().
class AssertInst : public Instruction {
public:
  AssertInst(Value *Src, CmpPred Pred, Value *Bound)
      : Instruction(Opcode::Assert, Src->type(), {Src, Bound}), Pred(Pred) {}

  Value *source() const { return operand(0); }
  Value *bound() const { return operand(1); }
  CmpPred pred() const { return Pred; }

  /// The ultimate non-assert value this assertion chain refines.
  Value *parentValue() const {
    Value *V = source();
    while (auto *A = dyn_cast<AssertInst>(V))
      V = A->source();
    return V;
  }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Assert;
  }

private:
  CmpPred Pred;
};

/// `%r = load OBJ[%idx]`.
class LoadInst : public Instruction {
public:
  LoadInst(MemoryObject *Object, Value *Index)
      : Instruction(Opcode::Load, Object->elemType(), {Index}),
        Object(Object) {}

  MemoryObject *object() const { return Object; }
  Value *index() const { return operand(0); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Load;
  }

private:
  MemoryObject *Object;
};

/// `store OBJ[%idx] = %v`.
class StoreInst : public Instruction {
public:
  StoreInst(MemoryObject *Object, Value *Index, Value *StoredValue)
      : Instruction(Opcode::Store, IRType::Void, {Index, StoredValue}),
        Object(Object) {}

  MemoryObject *object() const { return Object; }
  Value *index() const { return operand(0); }
  Value *storedValue() const { return operand(1); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Store;
  }

private:
  MemoryObject *Object;
};

/// A direct call to another function in the module.
class CallInst : public Instruction {
public:
  CallInst(Function *Callee, IRType Type, std::vector<Value *> Args)
      : Instruction(Opcode::Call, Type, std::move(Args)), Callee(Callee) {}

  Function *callee() const { return Callee; }
  /// Retargets the call (used by procedure cloning).
  void setCallee(Function *NewCallee) { Callee = NewCallee; }
  unsigned numArgs() const { return numOperands(); }
  Value *arg(unsigned I) const { return operand(I); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Call;
  }

private:
  Function *Callee;
};

/// `%r = input()`: reads the next int from the program input stream.
class InputInst : public Instruction {
public:
  InputInst() : Instruction(Opcode::Input, IRType::Int, {}) {}

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Input;
  }
};

/// `print %v`: appends a value to the program output stream.
class PrintInst : public Instruction {
public:
  explicit PrintInst(Value *V) : Instruction(Opcode::Print, IRType::Void, {V}) {}

  Value *value() const { return operand(0); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Print;
  }
};

/// Unconditional branch.
class BrInst : public Instruction {
public:
  explicit BrInst(BasicBlock *Target)
      : Instruction(Opcode::Br, IRType::Void, {}), Target(Target) {}

  BasicBlock *target() const { return Target; }
  void setTarget(BasicBlock *B) { Target = B; }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Br;
  }

private:
  BasicBlock *Target;
};

/// Conditional branch on an int condition (nonzero = true).
class CondBrInst : public Instruction {
public:
  CondBrInst(Value *Cond, BasicBlock *TrueBlock, BasicBlock *FalseBlock)
      : Instruction(Opcode::CondBr, IRType::Void, {Cond}),
        TrueBlock(TrueBlock), FalseBlock(FalseBlock) {}

  Value *cond() const { return operand(0); }
  BasicBlock *trueBlock() const { return TrueBlock; }
  BasicBlock *falseBlock() const { return FalseBlock; }
  void setTrueBlock(BasicBlock *B) { TrueBlock = B; }
  void setFalseBlock(BasicBlock *B) { FalseBlock = B; }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::CondBr;
  }

private:
  BasicBlock *TrueBlock;
  BasicBlock *FalseBlock;
};

/// Function return (value optional; absent for void functions).
class RetInst : public Instruction {
public:
  explicit RetInst(Value *V)
      : Instruction(Opcode::Ret, IRType::Void,
                    V ? std::vector<Value *>{V} : std::vector<Value *>{}) {}

  bool hasValue() const { return numOperands() == 1; }
  Value *value() const { return hasValue() ? operand(0) : nullptr; }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Ret;
  }
};

} // namespace vrp

#endif // VRP_IR_INSTRUCTION_H
