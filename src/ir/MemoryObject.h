//===- ir/MemoryObject.h - Arrays and global scalars ------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A MemoryObject is a fixed-size array of int or float cells accessed via
/// Load/Store instructions. VL global scalars lower to size-1 memory
/// objects, so all mutable cross-function state is memory — exactly the
/// situation where the paper says ranges become bottom and heuristics take
/// over (§3.5).
///
//===----------------------------------------------------------------------===//

#ifndef VRP_IR_MEMORYOBJECT_H
#define VRP_IR_MEMORYOBJECT_H

#include "ir/Type.h"

#include <cstdint>
#include <string>

namespace vrp {

class Function;

/// One statically sized array (or size-1 global scalar cell).
class MemoryObject {
public:
  MemoryObject(std::string Name, IRType ElemType, int64_t Size, bool IsGlobal,
               unsigned Id)
      : Name(std::move(Name)), ElemType(ElemType), Size(Size),
        IsGlobal(IsGlobal), Id(Id) {}

  const std::string &name() const { return Name; }
  IRType elemType() const { return ElemType; }
  int64_t size() const { return Size; }
  bool isGlobal() const { return IsGlobal; }
  unsigned id() const { return Id; }

  /// True for the size-1 objects backing VL global scalars.
  bool isScalarCell() const { return Size == 1 && ScalarCell; }
  void setScalarCell(bool V) { ScalarCell = V; }

private:
  std::string Name;
  IRType ElemType;
  int64_t Size;
  bool IsGlobal;
  unsigned Id;
  bool ScalarCell = false;
};

} // namespace vrp

#endif // VRP_IR_MEMORYOBJECT_H
