//===- ssa/SSAConstruction.cpp - Cytron et al. SSA construction ------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "ssa/SSAConstruction.h"

#include "analysis/Dominators.h"

#include <cassert>
#include <set>
#include <vector>

using namespace vrp;

namespace {

class SSABuilder {
public:
  explicit SSABuilder(Function &F) : F(F), DT(F), DF(F, DT) {}

  SSAStats run();

private:
  void placePhis();
  void rename(BasicBlock *B);
  void removeDeadPhis();

  Value *currentDef(const VarSlot *Slot) {
    auto &Stack = DefStacks[Slot->id()];
    if (!Stack.empty())
      return Stack.back();
    // A read on a path that never defined the slot (possible only for φs
    // speculatively placed outside the variable's VL scope): default zero.
    return Slot->type() == IRType::Float
               ? static_cast<Value *>(Constant::getFloat(0.0))
               : static_cast<Value *>(Constant::getInt(0));
  }

  Function &F;
  DominatorTree DT;
  DominanceFrontier DF;
  SSAStats Stats;
  std::vector<std::vector<Value *>> DefStacks; ///< By slot id.
};

} // namespace

void SSABuilder::placePhis() {
  unsigned NumSlots = F.slots().size();

  // Semi-pruned placement: only slots live across block boundaries
  // ("globals" in Briggs' terms) need φs at all.
  std::vector<bool> CrossBlock(NumSlots, false);
  std::vector<std::vector<BasicBlock *>> DefBlocks(NumSlots);
  for (const auto &B : F.blocks()) {
    std::set<unsigned> WrittenHere;
    for (const auto &I : B->instructions()) {
      if (auto *R = dyn_cast<ReadVarInst>(I.get())) {
        if (!WrittenHere.count(R->slot()->id()))
          CrossBlock[R->slot()->id()] = true;
      } else if (auto *W = dyn_cast<WriteVarInst>(I.get())) {
        unsigned Id = W->slot()->id();
        if (WrittenHere.insert(Id).second)
          DefBlocks[Id].push_back(B.get());
      }
    }
  }

  for (unsigned SlotId = 0; SlotId < NumSlots; ++SlotId) {
    if (!CrossBlock[SlotId] || DefBlocks[SlotId].empty())
      continue;
    VarSlot *Slot = F.slots()[SlotId].get();

    // Iterated dominance frontier via worklist.
    std::set<BasicBlock *> HasPhi;
    std::vector<BasicBlock *> Work = DefBlocks[SlotId];
    while (!Work.empty()) {
      BasicBlock *B = Work.back();
      Work.pop_back();
      for (BasicBlock *Frontier : DF.frontier(B)) {
        if (!HasPhi.insert(Frontier).second)
          continue;
        auto Phi = std::make_unique<PhiInst>(Slot->type());
        Phi->setSlot(Slot);
        Frontier->insertPhi(std::move(Phi));
        ++Stats.PhisInserted;
        Work.push_back(Frontier);
      }
    }
  }
}

void SSABuilder::rename(BasicBlock *B) {
  std::vector<size_t> PushCounts(F.slots().size(), 0);

  // Process instructions; collect first because reads/writes get erased.
  std::vector<Instruction *> Order;
  Order.reserve(B->instructions().size());
  for (const auto &I : B->instructions())
    Order.push_back(I.get());

  for (Instruction *I : Order) {
    if (auto *Phi = dyn_cast<PhiInst>(I)) {
      if (VarSlot *Slot = Phi->slot()) {
        DefStacks[Slot->id()].push_back(Phi);
        ++PushCounts[Slot->id()];
      }
      continue;
    }
    if (auto *R = dyn_cast<ReadVarInst>(I)) {
      R->replaceAllUsesWith(currentDef(R->slot()));
      R->eraseFromParent();
      ++Stats.ReadsReplaced;
      continue;
    }
    if (auto *W = dyn_cast<WriteVarInst>(I)) {
      unsigned Id = W->slot()->id();
      DefStacks[Id].push_back(W->storedValue());
      ++PushCounts[Id];
      W->eraseFromParent();
      ++Stats.WritesErased;
      continue;
    }
  }

  // Fill φ operands of successors for the edges leaving B.
  for (BasicBlock *S : B->succs())
    for (PhiInst *Phi : S->phis())
      if (VarSlot *Slot = Phi->slot())
        Phi->addIncoming(currentDef(Slot), B);

  for (BasicBlock *Child : DT.children(B))
    rename(Child);

  for (unsigned Id = 0; Id < PushCounts.size(); ++Id)
    for (size_t I = 0; I < PushCounts[Id]; ++I)
      DefStacks[Id].pop_back();
}

void SSABuilder::removeDeadPhis() {
  // A φ is live iff it is (transitively) used by any non-φ instruction.
  std::set<PhiInst *> Live;
  std::vector<PhiInst *> All, Work;
  for (const auto &B : F.blocks())
    for (PhiInst *Phi : B->phis())
      All.push_back(Phi);

  for (PhiInst *Phi : All)
    for (const Use &U : Phi->uses())
      if (!isa<PhiInst>(U.User) && Live.insert(Phi).second)
        Work.push_back(Phi);

  while (!Work.empty()) {
    PhiInst *Phi = Work.back();
    Work.pop_back();
    for (unsigned I = 0; I < Phi->numOperands(); ++I)
      if (auto *OpPhi = dyn_cast<PhiInst>(Phi->operand(I)))
        if (Live.insert(OpPhi).second)
          Work.push_back(OpPhi);
  }

  std::vector<PhiInst *> Dead;
  for (PhiInst *Phi : All)
    if (!Live.count(Phi))
      Dead.push_back(Phi);
  for (PhiInst *Phi : Dead)
    Phi->dropAllOperands();
  for (PhiInst *Phi : Dead) {
    Phi->eraseFromParent();
    ++Stats.PhisRemovedDead;
  }
}

SSAStats SSABuilder::run() {
  placePhis();
  DefStacks.assign(F.slots().size(), {});
  rename(F.entry());
  removeDeadPhis();
  // Slots are now fully out of the instruction stream; clear φ slot tags so
  // later passes cannot depend on them.
  for (const auto &B : F.blocks())
    for (PhiInst *Phi : B->phis())
      Phi->setSlot(nullptr);
  return Stats;
}

SSAStats vrp::constructSSA(Function &F) { return SSABuilder(F).run(); }

SSAStats vrp::constructSSA(Module &M) {
  SSAStats Total;
  for (const auto &F : M.functions()) {
    SSAStats S = constructSSA(*F);
    Total.PhisInserted += S.PhisInserted;
    Total.PhisRemovedDead += S.PhisRemovedDead;
    Total.ReadsReplaced += S.ReadsReplaced;
    Total.WritesErased += S.WritesErased;
  }
  return Total;
}
