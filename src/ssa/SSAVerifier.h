//===- ssa/SSAVerifier.h - SSA dominance checks -----------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SSA-form invariants on top of ir/Verifier.h: no pre-SSA ReadVar/WriteVar
/// instructions remain, and every definition dominates all of its uses
/// (φ uses checked at the end of the incoming predecessor).
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SSA_SSAVERIFIER_H
#define VRP_SSA_SSAVERIFIER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace vrp {

/// Verifies SSA invariants of \p F; appends problems, returns true if none.
bool verifySSA(const Function &F, std::vector<std::string> &Problems);

/// Verifies SSA invariants of every function in \p M.
bool verifySSA(const Module &M, std::vector<std::string> &Problems);

} // namespace vrp

#endif // VRP_SSA_SSAVERIFIER_H
