//===- ssa/SSAConstruction.h - Cytron et al. SSA construction ---*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts the pre-SSA IR (mutable VarSlots with ReadVar/WriteVar) into
/// SSA form: semi-pruned φ placement on iterated dominance frontiers
/// [Cytron et al. 1991], dominator-tree renaming, and dead-φ cleanup.
/// After this pass no ReadVar/WriteVar instructions remain and every value
/// has exactly one definition — the representation Patterson's propagation
/// algorithm requires.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SSA_SSACONSTRUCTION_H
#define VRP_SSA_SSACONSTRUCTION_H

#include "ir/Module.h"

namespace vrp {

/// Statistics reported by SSA construction (tested, and interesting for the
/// linearity measurements).
struct SSAStats {
  unsigned PhisInserted = 0;
  unsigned PhisRemovedDead = 0;
  unsigned ReadsReplaced = 0;
  unsigned WritesErased = 0;
};

/// Puts \p F into SSA form. Returns statistics.
SSAStats constructSSA(Function &F);

/// Puts every function of \p M into SSA form.
SSAStats constructSSA(Module &M);

} // namespace vrp

#endif // VRP_SSA_SSACONSTRUCTION_H
