//===- ssa/SSAVerifier.cpp - SSA dominance checks --------------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "ssa/SSAVerifier.h"

#include "analysis/Dominators.h"

#include <map>

using namespace vrp;

bool vrp::verifySSA(const Function &F, std::vector<std::string> &Problems) {
  size_t Before = Problems.size();
  auto problem = [&](const std::string &Msg) {
    Problems.push_back("@" + F.name() + ": " + Msg);
  };

  DominatorTree DT(F);

  // Positions of instructions within their block, for same-block ordering.
  std::map<const Instruction *, unsigned> Position;
  for (const auto &B : F.blocks()) {
    unsigned Pos = 0;
    for (const auto &I : B->instructions())
      Position[I.get()] = Pos++;
  }

  for (const auto &B : F.blocks()) {
    for (const auto &I : B->instructions()) {
      if (I->opcode() == Opcode::ReadVar || I->opcode() == Opcode::WriteVar) {
        problem("pre-SSA instruction survived SSA construction: " +
                I->displayName());
        continue;
      }
      for (unsigned OpIdx = 0; OpIdx < I->numOperands(); ++OpIdx) {
        auto *Def = dyn_cast<Instruction>(I->operand(OpIdx));
        if (!Def)
          continue; // Constants and params dominate everything.
        if (auto *Phi = dyn_cast<PhiInst>(I.get())) {
          // φ use must be available at the end of the incoming pred.
          BasicBlock *In = Phi->incomingBlock(OpIdx);
          if (!DT.dominates(Def->parent(), In))
            problem("φ " + I->displayName() + " operand " +
                    Def->displayName() + " does not dominate incoming edge "
                    "from " + In->name());
          continue;
        }
        if (Def->parent() == I->parent()) {
          if (Position[Def] >= Position[I.get()])
            problem("use of " + Def->displayName() + " before its "
                    "definition in " + B->name());
        } else if (!DT.strictlyDominates(Def->parent(), I->parent())) {
          problem("definition " + Def->displayName() + " in " +
                  Def->parent()->name() + " does not dominate use in " +
                  B->name());
        }
      }
    }
  }
  return Problems.size() == Before;
}

bool vrp::verifySSA(const Module &M, std::vector<std::string> &Problems) {
  bool Ok = true;
  for (const auto &F : M.functions())
    Ok &= verifySSA(*F, Problems);
  return Ok;
}
