//===- ssa/AssertionInsertion.cpp - Post-branch assertions -----------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "ssa/AssertionInsertion.h"

#include "analysis/Dominators.h"
#include "ir/CFGUtils.h"

#include <memory>
#include <vector>

using namespace vrp;

namespace {

class AssertionInserter {
public:
  explicit AssertionInserter(Function &F) : F(F) {}

  AssertionStats run();

private:
  void splitConditionalEdges();
  void processBranch(CondBrInst *Branch);
  void insertOnEdge(BasicBlock *Target, Value *Source, CmpPred Pred,
                    Value *Bound);
  void rewriteDominatedUses(Value *Old, AssertInst *New, BasicBlock *Home);

  Function &F;
  AssertionStats Stats;
  std::unique_ptr<DominatorTree> DT;
};

} // namespace

void AssertionInserter::splitConditionalEdges() {
  // Collect first: splitting adds blocks.
  std::vector<CondBrInst *> Branches;
  for (const auto &B : F.blocks())
    if (auto *CBr = dyn_cast_or_null<CondBrInst>(B->terminator()))
      Branches.push_back(CBr);
  for (CondBrInst *CBr : Branches) {
    BasicBlock *From = CBr->parent();
    if (CBr->trueBlock()->numPreds() > 1 ||
        CBr->trueBlock() == CBr->falseBlock()) {
      splitEdge(From, CBr->trueBlock(), /*TrueEdge=*/true);
      ++Stats.EdgesSplit;
    }
    if (CBr->falseBlock()->numPreds() > 1) {
      splitEdge(From, CBr->falseBlock(), /*TrueEdge=*/false);
      ++Stats.EdgesSplit;
    }
  }
  F.renumberBlocks();
}

void AssertionInserter::rewriteDominatedUses(Value *Old, AssertInst *New,
                                             BasicBlock *Home) {
  // Snapshot: rewriting mutates the use list.
  std::vector<Use> Snapshot = Old->uses();
  for (const Use &U : Snapshot) {
    Instruction *User = U.User;
    if (User == New)
      continue;
    // A φ use "occurs" at the end of the incoming predecessor.
    BasicBlock *UseBlock;
    if (auto *Phi = dyn_cast<PhiInst>(User))
      UseBlock = Phi->incomingBlock(U.OperandIndex);
    else
      UseBlock = User->parent();
    if (!DT->dominates(Home, UseBlock))
      continue;
    if (User->parent() == Home && !isa<PhiInst>(User)) {
      // Same-block users: only those after the assertion head may be
      // rewritten. Assertions live at the head (after φs/asserts), so any
      // non-φ, non-assert user in Home is after it; assert users are
      // chained intentionally and skipped here.
      if (isa<AssertInst>(User))
        continue;
    }
    User->setOperand(U.OperandIndex, New);
    ++Stats.UsesRewritten;
  }
}

void AssertionInserter::insertOnEdge(BasicBlock *Target, Value *Source,
                                     CmpPred Pred, Value *Bound) {
  // Only assert on SSA variables (instructions/params); constants carry
  // no refinable information. Both element domains are assertable: int
  // asserts clip subranges, float asserts clip intervals and strip or
  // keep the NaN mass per predicate (docs/DOMAINS.md).
  if (isa<Constant>(Source))
    return;
  auto Assertion = std::make_unique<AssertInst>(Source, Pred, Bound);
  auto *A = cast<AssertInst>(Target->insertAtHead(std::move(Assertion)));
  ++Stats.AssertsInserted;
  rewriteDominatedUses(Source, A, Target);
}

void AssertionInserter::processBranch(CondBrInst *Branch) {
  auto *Cmp = dyn_cast<CmpInst>(Branch->cond());
  if (!Cmp)
    return;
  Value *L = Cmp->lhs();
  Value *R = Cmp->rhs();

  BasicBlock *TrueTarget = Branch->trueBlock();
  BasicBlock *FalseTarget = Branch->falseBlock();
  CmpPred Pred = Cmp->pred();

  // True edge: L PRED R holds (and symmetrically R swap(PRED) L).
  insertOnEdge(TrueTarget, L, Pred, R);
  insertOnEdge(TrueTarget, R, swapPred(Pred), L);
  // False edge: the negation holds.
  insertOnEdge(FalseTarget, L, negatePred(Pred), R);
  insertOnEdge(FalseTarget, R, swapPred(negatePred(Pred)), L);
}

AssertionStats AssertionInserter::run() {
  splitConditionalEdges();
  DT = std::make_unique<DominatorTree>(F);

  // Process branches in reverse postorder so outer refinements are visible
  // to (and chained through) inner branches.
  for (BasicBlock *B : DT->rpo())
    if (auto *CBr = dyn_cast_or_null<CondBrInst>(B->terminator()))
      processBranch(CBr);
  return Stats;
}

AssertionStats vrp::insertAssertions(Function &F) {
  return AssertionInserter(F).run();
}

AssertionStats vrp::insertAssertions(Module &M) {
  AssertionStats Total;
  for (const auto &F : M.functions()) {
    AssertionStats S = insertAssertions(*F);
    Total.EdgesSplit += S.EdgesSplit;
    Total.AssertsInserted += S.AssertsInserted;
    Total.UsesRewritten += S.UsesRewritten;
  }
  return Total;
}
