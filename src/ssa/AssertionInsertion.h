//===- ssa/AssertionInsertion.h - Post-branch assertions --------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inserts the paper's post-branch assertion instructions (π-nodes): after
/// a conditional branch on `x PRED y`, the true-edge target gains
/// `x' = assert x PRED y` (and `y' = assert y PRED' x` when y is a
/// variable), the false edge the negated predicate. Uses dominated by the
/// assertion are rewritten to the refined value, so "valuable information
/// can often be derived from the equality tests controlling branches".
///
/// Edges into blocks with multiple predecessors are split first so every
/// assertion has an unambiguous home.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SSA_ASSERTIONINSERTION_H
#define VRP_SSA_ASSERTIONINSERTION_H

#include "ir/Module.h"

namespace vrp {

struct AssertionStats {
  unsigned EdgesSplit = 0;
  unsigned AssertsInserted = 0;
  unsigned UsesRewritten = 0;
};

/// Inserts assertions into \p F (must already be in SSA form).
AssertionStats insertAssertions(Function &F);

/// Inserts assertions into every function of \p M.
AssertionStats insertAssertions(Module &M);

} // namespace vrp

#endif // VRP_SSA_ASSERTIONINSERTION_H
