//===- profile/ProfilePredictor.h - Profile-based prediction ----*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns an EdgeProfile into branch probabilities — the execution-profiling
/// predictor of the paper's §5. Trained on *different* inputs than the
/// evaluation run ("reflecting the normal use of execution profiles found
/// in practice"); branches never executed during training fall back to
/// 50/50.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_PROFILE_PROFILEPREDICTOR_H
#define VRP_PROFILE_PROFILEPREDICTOR_H

#include "heuristics/Heuristics.h"
#include "profile/Interpreter.h"

namespace vrp {

/// Predicts every conditional branch of \p F from \p Profile.
BranchProbMap predictFromProfile(const Function &F,
                                 const EdgeProfile &Profile);

} // namespace vrp

#endif // VRP_PROFILE_PROFILEPREDICTOR_H
