//===- profile/Interpreter.cpp - SSA IR interpreter ------------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "profile/Interpreter.h"

#include "support/FaultInjection.h"
#include "support/MathUtil.h"

#include <cmath>
#include <cstdio>
#include <unordered_map>

using namespace vrp;

namespace {

/// One runtime scalar. The static type of the producing Value selects the
/// active member.
struct RuntimeValue {
  int64_t I = 0;
  double F = 0.0;

  static RuntimeValue ofInt(int64_t V) {
    RuntimeValue R;
    R.I = V;
    return R;
  }
  static RuntimeValue ofFloat(double V) {
    RuntimeValue R;
    R.F = V;
    return R;
  }
};

/// Backing store for one memory object.
struct ObjectState {
  std::vector<int64_t> Ints;
  std::vector<double> Floats;

  explicit ObjectState(const MemoryObject &Obj) {
    if (Obj.elemType() == IRType::Float)
      Floats.assign(Obj.size(), 0.0);
    else
      Ints.assign(Obj.size(), 0);
  }
};

struct RuntimeError {
  std::string Message;
};

class Machine {
public:
  Machine(const Module &M, const std::vector<int64_t> &Input,
          EdgeProfile *Profile, uint64_t MaxSteps, BranchObserver *Observer)
      : M(M), Input(Input), Profile(Profile), MaxSteps(MaxSteps),
        Observer(Observer) {
    for (const auto &Obj : M.memoryObjects()) {
      if (!Obj->isGlobal())
        continue;
      Globals.emplace(Obj.get(), ObjectState(*Obj));
      if (Obj->isScalarCell()) {
        double Init = M.scalarInit(Obj.get());
        ObjectState &S = Globals.at(Obj.get());
        if (Obj->elemType() == IRType::Float)
          S.Floats[0] = Init;
        else
          S.Ints[0] = static_cast<int64_t>(Init);
      }
    }
  }

  ExecutionResult run();

private:
  RuntimeValue callFunction(const Function &F,
                            const std::vector<RuntimeValue> &Args,
                            unsigned Depth);

  const Module &M;
  const std::vector<int64_t> &Input;
  EdgeProfile *Profile;
  uint64_t MaxSteps;
  BranchObserver *Observer;
  uint64_t Steps = 0;
  bool HitStepLimit = false;
  size_t InputPos = 0;
  std::unordered_map<const MemoryObject *, ObjectState> Globals;
  std::vector<std::string> Output;

  ExecutionResult makeResult(int64_t Exit) {
    ExecutionResult R;
    R.Ok = true;
    R.Steps = Steps;
    R.ExitValue = Exit;
    R.Output = std::move(Output);
    return R;
  }
};

/// One activation record.
struct Frame {
  const Function *F;
  std::vector<RuntimeValue> Regs;   ///< Indexed by instruction id.
  std::vector<RuntimeValue> Params; ///< Indexed by param index.
  std::unordered_map<const MemoryObject *, ObjectState> Locals;

  explicit Frame(const Function &Fn)
      : F(&Fn), Regs(Fn.numInstIds()), Params(Fn.numParams()) {
    for (const MemoryObject *Obj : Fn.localObjects())
      Locals.emplace(Obj, ObjectState(*Obj));
  }
};

/// FrameValues view over one activation record.
class FrameReader final : public FrameValues {
public:
  explicit FrameReader(const Frame &Fr) : Fr(Fr) {}

  std::optional<int64_t> intValue(const Value *V) const override {
    if (const auto *C = dyn_cast<Constant>(V))
      return C->isInt() ? std::optional<int64_t>(C->intValue())
                        : std::nullopt;
    if (V->type() != IRType::Int)
      return std::nullopt;
    if (const auto *P = dyn_cast<Param>(V))
      return Fr.Params[P->index()].I;
    if (const auto *I = dyn_cast<Instruction>(V))
      return Fr.Regs[I->id()].I;
    return std::nullopt;
  }

  std::optional<double> floatValue(const Value *V) const override {
    if (const auto *C = dyn_cast<Constant>(V))
      return C->isInt() ? std::optional<double>()
                        : std::optional<double>(C->floatValue());
    if (V->type() != IRType::Float)
      return std::nullopt;
    if (const auto *P = dyn_cast<Param>(V))
      return Fr.Params[P->index()].F;
    if (const auto *I = dyn_cast<Instruction>(V))
      return Fr.Regs[I->id()].F;
    return std::nullopt;
  }

private:
  const Frame &Fr;
};

} // namespace

RuntimeValue Machine::callFunction(const Function &F,
                                   const std::vector<RuntimeValue> &Args,
                                   unsigned Depth) {
  if (Depth > 2000)
    throw RuntimeError{"call depth limit exceeded in @" + F.name()};

  Frame Fr(F);
  for (unsigned I = 0; I < Args.size() && I < Fr.Params.size(); ++I)
    Fr.Params[I] = Args[I];

  auto value = [&](const Value *V) -> RuntimeValue {
    if (const auto *C = dyn_cast<Constant>(V))
      return C->isInt() ? RuntimeValue::ofInt(C->intValue())
                        : RuntimeValue::ofFloat(C->floatValue());
    if (const auto *P = dyn_cast<Param>(V))
      return Fr.Params[P->index()];
    return Fr.Regs[cast<Instruction>(V)->id()];
  };

  auto objectState = [&](const MemoryObject *Obj) -> ObjectState & {
    auto It = Fr.Locals.find(Obj);
    if (It != Fr.Locals.end())
      return It->second;
    return Globals.at(Obj);
  };

  auto checkIndex = [&](const MemoryObject *Obj, int64_t Index) {
    if (Index < 0 || Index >= Obj->size())
      throw RuntimeError{"array index " + std::to_string(Index) +
                         " out of bounds for @" + Obj->name() + "[" +
                         std::to_string(Obj->size()) + "] in @" + F.name()};
  };

  const BasicBlock *Block = F.entry();
  const BasicBlock *PrevBlock = nullptr;

  while (true) {
    // Evaluate the φ prefix simultaneously.
    std::vector<std::pair<const PhiInst *, RuntimeValue>> PhiValues;
    for (const PhiInst *Phi : Block->phis()) {
      int Index = Phi->indexOfIncoming(PrevBlock);
      if (Index < 0)
        throw RuntimeError{"φ without incoming for edge into " +
                           Block->name()};
      PhiValues.push_back({Phi, value(Phi->incomingValue(Index))});
    }
    for (const auto &[Phi, V] : PhiValues)
      Fr.Regs[Phi->id()] = V;

    for (const auto &IPtr : Block->instructions()) {
      const Instruction *I = IPtr.get();
      if (++Steps > MaxSteps) {
        HitStepLimit = true;
        throw RuntimeError{"step limit exceeded"};
      }

      switch (I->opcode()) {
      case Opcode::Phi:
        continue; // Handled above.

      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::Min:
      case Opcode::Max: {
        RuntimeValue L = value(I->operand(0));
        RuntimeValue R = value(I->operand(1));
        RuntimeValue &Out = Fr.Regs[I->id()];
        if (I->type() == IRType::Float) {
          switch (I->opcode()) {
          case Opcode::Add:
            Out.F = L.F + R.F;
            break;
          case Opcode::Sub:
            Out.F = L.F - R.F;
            break;
          case Opcode::Mul:
            Out.F = L.F * R.F;
            break;
          case Opcode::Div:
            Out.F = R.F == 0.0 ? 0.0 : L.F / R.F;
            break;
          case Opcode::Min:
            Out.F = std::min(L.F, R.F);
            break;
          case Opcode::Max:
            Out.F = std::max(L.F, R.F);
            break;
          default:
            throw RuntimeError{"float rem"};
          }
        } else {
          switch (I->opcode()) {
          case Opcode::Add:
            Out.I = static_cast<int64_t>(static_cast<uint64_t>(L.I) +
                                         static_cast<uint64_t>(R.I));
            break;
          case Opcode::Sub:
            Out.I = static_cast<int64_t>(static_cast<uint64_t>(L.I) -
                                         static_cast<uint64_t>(R.I));
            break;
          case Opcode::Mul:
            Out.I = static_cast<int64_t>(static_cast<uint64_t>(L.I) *
                                         static_cast<uint64_t>(R.I));
            break;
          case Opcode::Div:
            Out.I = (R.I == 0 || (L.I == Int64Min && R.I == -1))
                        ? 0
                        : L.I / R.I;
            break;
          case Opcode::Rem:
            Out.I = (R.I == 0 || (L.I == Int64Min && R.I == -1))
                        ? 0
                        : L.I % R.I;
            break;
          case Opcode::Min:
            Out.I = std::min(L.I, R.I);
            break;
          case Opcode::Max:
            Out.I = std::max(L.I, R.I);
            break;
          default:
            break;
          }
        }
        continue;
      }

      case Opcode::Cmp: {
        const auto *Cmp = cast<CmpInst>(I);
        RuntimeValue L = value(Cmp->lhs());
        RuntimeValue R = value(Cmp->rhs());
        bool Result;
        if (Cmp->lhs()->type() == IRType::Float) {
          switch (Cmp->pred()) {
          case CmpPred::EQ:
            Result = L.F == R.F;
            break;
          case CmpPred::NE:
            Result = L.F != R.F;
            break;
          case CmpPred::LT:
            Result = L.F < R.F;
            break;
          case CmpPred::LE:
            Result = L.F <= R.F;
            break;
          case CmpPred::GT:
            Result = L.F > R.F;
            break;
          default:
            Result = L.F >= R.F;
            break;
          }
        } else {
          Result = evalPred(Cmp->pred(), L.I, R.I);
        }
        Fr.Regs[I->id()].I = Result ? 1 : 0;
        continue;
      }

      case Opcode::Neg: {
        RuntimeValue V = value(I->operand(0));
        if (I->type() == IRType::Float)
          Fr.Regs[I->id()].F = -V.F;
        else
          Fr.Regs[I->id()].I =
              static_cast<int64_t>(0 - static_cast<uint64_t>(V.I));
        continue;
      }
      case Opcode::Not:
        Fr.Regs[I->id()].I = value(I->operand(0)).I == 0 ? 1 : 0;
        continue;
      case Opcode::Abs: {
        RuntimeValue V = value(I->operand(0));
        if (I->type() == IRType::Float)
          Fr.Regs[I->id()].F = std::abs(V.F);
        else
          Fr.Regs[I->id()].I = V.I < 0 ? -V.I : V.I;
        continue;
      }
      case Opcode::Copy:
      case Opcode::Assert:
        Fr.Regs[I->id()] = value(I->operand(0));
        continue;
      case Opcode::IntToFloat:
        Fr.Regs[I->id()].F =
            static_cast<double>(value(I->operand(0)).I);
        continue;
      case Opcode::FloatToInt: {
        double D = value(I->operand(0)).F;
        Fr.Regs[I->id()].I =
            std::isfinite(D) && D >= static_cast<double>(Int64Min) &&
                    D <= static_cast<double>(Int64Max)
                ? static_cast<int64_t>(D)
                : 0;
        continue;
      }

      case Opcode::Load: {
        const auto *L = cast<LoadInst>(I);
        int64_t Index = value(L->index()).I;
        checkIndex(L->object(), Index);
        ObjectState &S = objectState(L->object());
        if (L->object()->elemType() == IRType::Float)
          Fr.Regs[I->id()].F = S.Floats[Index];
        else
          Fr.Regs[I->id()].I = S.Ints[Index];
        continue;
      }
      case Opcode::Store: {
        const auto *St = cast<StoreInst>(I);
        int64_t Index = value(St->index()).I;
        checkIndex(St->object(), Index);
        ObjectState &S = objectState(St->object());
        RuntimeValue V = value(St->storedValue());
        if (St->object()->elemType() == IRType::Float)
          S.Floats[Index] = V.F;
        else
          S.Ints[Index] = V.I;
        continue;
      }

      case Opcode::Call: {
        const auto *Call = cast<CallInst>(I);
        std::vector<RuntimeValue> Args;
        Args.reserve(Call->numArgs());
        for (unsigned A = 0; A < Call->numArgs(); ++A)
          Args.push_back(value(Call->arg(A)));
        Fr.Regs[I->id()] =
            callFunction(*Call->callee(), Args, Depth + 1);
        continue;
      }
      case Opcode::Input:
        Fr.Regs[I->id()].I =
            InputPos < Input.size() ? Input[InputPos++] : 0;
        continue;
      case Opcode::Print: {
        RuntimeValue V = value(I->operand(0));
        char Buf[64];
        if (I->operand(0)->type() == IRType::Float)
          std::snprintf(Buf, sizeof(Buf), "%.6g", V.F);
        else
          std::snprintf(Buf, sizeof(Buf), "%lld",
                        static_cast<long long>(V.I));
        Output.push_back(Buf);
        continue;
      }

      case Opcode::Br:
        PrevBlock = Block;
        Block = cast<BrInst>(I)->target();
        break;
      case Opcode::CondBr: {
        const auto *CBr = cast<CondBrInst>(I);
        bool Taken = value(CBr->cond()).I != 0;
        if (Profile)
          Profile->recordBranch(CBr, Taken);
        if (Observer)
          Observer->branchExecuted(F, CBr, Taken, FrameReader(Fr));
        PrevBlock = Block;
        Block = Taken ? CBr->trueBlock() : CBr->falseBlock();
        break;
      }
      case Opcode::Ret: {
        const auto *Ret = cast<RetInst>(I);
        return Ret->hasValue() ? value(Ret->value()) : RuntimeValue();
      }

      case Opcode::ReadVar:
      case Opcode::WriteVar:
        throw RuntimeError{"pre-SSA instruction reached the interpreter"};
      }
      break; // Terminator executed; proceed to the next block.
    }
  }
}

ExecutionResult Machine::run() {
  const Function *Main = M.findFunction("main");
  ExecutionResult R;
  if (!Main) {
    R.Error = "program has no main() function";
    return R;
  }
  if (fault::shouldFail("interp")) {
    R.Error = "injected interpreter trap";
    return R;
  }
  try {
    RuntimeValue Exit = callFunction(*Main, {}, 0);
    return makeResult(Main->returnType() == IRType::Float
                          ? static_cast<int64_t>(Exit.F)
                          : Exit.I);
  } catch (const RuntimeError &E) {
    R.Error = E.Message;
    R.StepLimit = HitStepLimit;
    R.Steps = Steps;
    R.Output = std::move(Output);
    return R;
  }
}

ExecutionResult Interpreter::run(const std::vector<int64_t> &Input,
                                 EdgeProfile *Profile, uint64_t MaxSteps,
                                 BranchObserver *Observer) {
  Machine Mach(M, Input, Profile, MaxSteps, Observer);
  return Mach.run();
}
