//===- profile/ProfilePredictor.cpp - Profile-based prediction -------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "profile/ProfilePredictor.h"

using namespace vrp;

BranchProbMap vrp::predictFromProfile(const Function &F,
                                      const EdgeProfile &Profile) {
  BranchProbMap Result;
  for (const auto &B : F.blocks()) {
    const auto *CBr = dyn_cast_or_null<CondBrInst>(B->terminator());
    if (!CBr)
      continue;
    const BranchCounts *C = Profile.lookup(CBr);
    Result[CBr] = C ? C->takenFraction() : 0.5;
  }
  return Result;
}
