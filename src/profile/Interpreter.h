//===- profile/Interpreter.h - SSA IR interpreter ---------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic interpreter for SSA-form IR modules. It plays two roles
/// the paper's evaluation needs:
///
///  * ground truth — running the benchmark with its *reference* input and
///    recording exact per-branch taken/total counts ("actual behavior");
///  * the execution-profiling baseline — running with *training* inputs
///    (the SPEC input.short protocol) and predicting from those counts.
///
/// φ instructions are evaluated simultaneously on block entry using the
/// incoming edge, as SSA semantics require.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_PROFILE_INTERPRETER_H
#define VRP_PROFILE_INTERPRETER_H

#include "ir/Module.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace vrp {

/// Per-branch execution counts.
struct BranchCounts {
  uint64_t Taken = 0;
  uint64_t Total = 0;

  double takenFraction() const {
    return Total == 0 ? 0.5 : static_cast<double>(Taken) / Total;
  }
};

/// Accumulated edge profile over one or more runs.
class EdgeProfile {
public:
  void recordBranch(const CondBrInst *Branch, bool Taken) {
    BranchCounts &C = Counts[Branch];
    C.Taken += Taken ? 1 : 0;
    ++C.Total;
  }

  const BranchCounts *lookup(const CondBrInst *Branch) const {
    auto It = Counts.find(Branch);
    return It == Counts.end() ? nullptr : &It->second;
  }

  const std::map<const CondBrInst *, BranchCounts> &counts() const {
    return Counts;
  }

  /// Merges another profile into this one.
  void merge(const EdgeProfile &Other) {
    for (const auto &[Branch, C] : Other.Counts) {
      Counts[Branch].Taken += C.Taken;
      Counts[Branch].Total += C.Total;
    }
  }

private:
  std::map<const CondBrInst *, BranchCounts> Counts;
};

/// Read-only view of the executing activation, handed to branch
/// observers. Only values defined before the observed branch in its own
/// activation are meaningful — the branch condition and its comparison
/// operands always are (they dominate the branch); reading anything else
/// returns whatever the register currently holds, including the default
/// zero of a never-executed instruction.
class FrameValues {
public:
  virtual ~FrameValues() = default;
  /// The current activation's value of an int-typed SSA value; nullopt
  /// for float-typed values (use floatValue() for those).
  virtual std::optional<int64_t> intValue(const Value *V) const = 0;
  /// The current activation's value of a float-typed SSA value; nullopt
  /// for int-typed values. Observers use this to audit FP interval
  /// ranges (docs/DOMAINS.md).
  virtual std::optional<double> floatValue(const Value *V) const = 0;
};

/// Hook invoked at every *executed* conditional branch, after the
/// condition is evaluated and the edge profile updated. The soundness
/// sentinel (vrp/Audit.h) implements this to compare observed values
/// against VRP-computed ranges; \p Values reads from the activation that
/// executed the branch, so recursion and multiple calls attribute
/// correctly.
class BranchObserver {
public:
  virtual ~BranchObserver() = default;
  virtual void branchExecuted(const Function &F, const CondBrInst *Branch,
                              bool Taken, const FrameValues &Values) = 0;
};

/// Outcome of one interpreted execution.
struct ExecutionResult {
  bool Ok = false;
  std::string Error;
  /// True when the failure was the MaxSteps guard specifically: the
  /// profile collected so far is a valid *partial* profile, which budget-
  /// limited evaluation keeps rather than failing the benchmark.
  bool StepLimit = false;
  uint64_t Steps = 0;
  int64_t ExitValue = 0;
  std::vector<std::string> Output; ///< One entry per print().
};

/// Interprets a module starting at `main()`.
class Interpreter {
public:
  explicit Interpreter(const Module &M) : M(M) {}

  /// Runs the program on \p Input. Branch counts are recorded into
  /// \p Profile when non-null. Execution aborts with an error after
  /// \p MaxSteps instructions (runaway guard); that specific failure is
  /// flagged on the result as StepLimit. Honors the "interp" fault-
  /// injection site (support/FaultInjection.h). \p Observer, when
  /// non-null, is invoked at every executed conditional branch.
  ExecutionResult run(const std::vector<int64_t> &Input,
                      EdgeProfile *Profile = nullptr,
                      uint64_t MaxSteps = 200'000'000,
                      BranchObserver *Observer = nullptr);

private:
  const Module &M;
};

} // namespace vrp

#endif // VRP_PROFILE_INTERPRETER_H
