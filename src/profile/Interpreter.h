//===- profile/Interpreter.h - SSA IR interpreter ---------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic interpreter for SSA-form IR modules. It plays two roles
/// the paper's evaluation needs:
///
///  * ground truth — running the benchmark with its *reference* input and
///    recording exact per-branch taken/total counts ("actual behavior");
///  * the execution-profiling baseline — running with *training* inputs
///    (the SPEC input.short protocol) and predicting from those counts.
///
/// φ instructions are evaluated simultaneously on block entry using the
/// incoming edge, as SSA semantics require.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_PROFILE_INTERPRETER_H
#define VRP_PROFILE_INTERPRETER_H

#include "ir/Module.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vrp {

/// Per-branch execution counts.
struct BranchCounts {
  uint64_t Taken = 0;
  uint64_t Total = 0;

  double takenFraction() const {
    return Total == 0 ? 0.5 : static_cast<double>(Taken) / Total;
  }
};

/// Accumulated edge profile over one or more runs.
class EdgeProfile {
public:
  void recordBranch(const CondBrInst *Branch, bool Taken) {
    BranchCounts &C = Counts[Branch];
    C.Taken += Taken ? 1 : 0;
    ++C.Total;
  }

  const BranchCounts *lookup(const CondBrInst *Branch) const {
    auto It = Counts.find(Branch);
    return It == Counts.end() ? nullptr : &It->second;
  }

  const std::map<const CondBrInst *, BranchCounts> &counts() const {
    return Counts;
  }

  /// Merges another profile into this one.
  void merge(const EdgeProfile &Other) {
    for (const auto &[Branch, C] : Other.Counts) {
      Counts[Branch].Taken += C.Taken;
      Counts[Branch].Total += C.Total;
    }
  }

private:
  std::map<const CondBrInst *, BranchCounts> Counts;
};

/// Outcome of one interpreted execution.
struct ExecutionResult {
  bool Ok = false;
  std::string Error;
  /// True when the failure was the MaxSteps guard specifically: the
  /// profile collected so far is a valid *partial* profile, which budget-
  /// limited evaluation keeps rather than failing the benchmark.
  bool StepLimit = false;
  uint64_t Steps = 0;
  int64_t ExitValue = 0;
  std::vector<std::string> Output; ///< One entry per print().
};

/// Interprets a module starting at `main()`.
class Interpreter {
public:
  explicit Interpreter(const Module &M) : M(M) {}

  /// Runs the program on \p Input. Branch counts are recorded into
  /// \p Profile when non-null. Execution aborts with an error after
  /// \p MaxSteps instructions (runaway guard); that specific failure is
  /// flagged on the result as StepLimit. Honors the "interp" fault-
  /// injection site (support/FaultInjection.h).
  ExecutionResult run(const std::vector<int64_t> &Input,
                      EdgeProfile *Profile = nullptr,
                      uint64_t MaxSteps = 200'000'000);

private:
  const Module &M;
};

} // namespace vrp

#endif // VRP_PROFILE_INTERPRETER_H
