//===- serve/Supervisor.h - predictord worker-fleet supervisor --*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-level fault isolation for predictord: the supervisor forks N
/// worker processes (each a single-process Server on its own Unix socket
/// with its own flock-scoped pcache shard), runs a Router on the public
/// socket that forwards requests by rendezvous hash of the source text,
/// and supervises the fleet:
///
///   - death detection: waitpid-based reaping plus periodic `health`
///     heartbeats over each worker's socket (a SIGSTOPped or wedged
///     worker is alive to waitpid but cannot answer a heartbeat);
///   - restart with exponential backoff, bounded by a restart budget —
///     a worker that crashes >= RestartBudget times within
///     RestartWindowMs is marked Dead and its hash range permanently
///     re-routes to the survivors;
///   - a per-shard circuit breaker: ConsecutiveFailures >=
///     BreakerThreshold (forward timeouts or missed heartbeats) opens
///     the breaker for BreakerCooldownMs, during which the router skips
///     the shard instead of stalling clients on it;
///   - graceful drain on SIGTERM/shutdown: the router stops admitting
///     and answers in-flight work first, then workers get SIGTERM and
///     drain their own queues, stragglers get SIGKILL after
///     DrainTimeoutMs, and every socket file is unlinked.
///
/// The crash-safety contract (docs/SERVING.md): kill -9 of any single
/// worker under load yields zero client-visible failures — the router
/// retries an in-flight request exactly once on the next healthy worker,
/// which is sound because predict/analyze are idempotent by construction
/// (same bitwise-identity contract as the one-shot CLI).
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SERVE_SUPERVISOR_H
#define VRP_SERVE_SUPERVISOR_H

#include "support/Status.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <sys/types.h>
#include <vector>

namespace vrp::serve {

class Router;

struct FleetConfig {
  /// The public socket clients connect to (the router listens here).
  std::string PublicSocket;
  /// Worker process count (>= 1).
  unsigned Workers = 4;
  /// The predictord binary to exec for workers; empty = /proc/self/exe.
  std::string WorkerBinary;
  /// Base pcache path; worker K gets "<base>.wK" (empty = uncached).
  std::string CachePath;

  // Per-worker Server knobs, passed through on the worker command line.
  unsigned WorkerThreads = 1;
  unsigned MaxQueue = 64;
  unsigned DegradeDepth = 48;
  uint64_t DefaultDeadlineMs = 0;
  bool ResponseMemo = true;
  unsigned MaxConnections = 64;

  // Supervision policy.
  uint64_t HeartbeatIntervalMs = 500; ///< health probe period per worker.
  uint64_t HeartbeatTimeoutMs = 1000; ///< per-probe response budget.
  unsigned HeartbeatMissLimit = 3;    ///< misses before the worker is
                                      ///< treated as dead and restarted.
  uint64_t StartGraceMs = 5000;       ///< socket-appearance budget after
                                      ///< spawn before a restart.
  unsigned RestartBudget = 5;         ///< restarts allowed per window...
  uint64_t RestartWindowMs = 30000;   ///< ...this wide; exceeded = Dead.
  uint64_t BackoffBaseMs = 200;       ///< first restart delay; doubles...
  uint64_t BackoffCapMs = 5000;       ///< ...up to this cap.
  unsigned BreakerThreshold = 3;      ///< consecutive failures to open.
  uint64_t BreakerCooldownMs = 2000;  ///< open duration before half-open.
  uint64_t ForwardTimeoutMs = 2000;   ///< router's per-attempt budget.
  uint64_t DrainTimeoutMs = 10000;    ///< SIGTERM-to-SIGKILL budget.
};

/// Worker lifecycle as the supervisor sees it.
enum class WorkerState {
  Starting, ///< Spawned; socket not yet answering.
  Up,       ///< Answering; routable.
  Backoff,  ///< Crashed; waiting out the restart delay.
  Dead,     ///< Restart budget exhausted; permanently un-routable.
};

/// Fleet-wide monotonic counters (the stats JSON "serving" block).
struct FleetCounters {
  uint64_t WorkerRestarts = 0;
  uint64_t Reroutes = 0; ///< Requests answered off their home shard.
  uint64_t BreakerOpen = 0;
  uint64_t HeartbeatTimeouts = 0;
};

/// The router's view of where one request may go: the home shard (cache
/// affinity) first, then at most one fallback in rendezvous order.
struct RoutePlan {
  int HomeIndex = -1; ///< -1 when no worker is routable at all.
  /// Routable worker indices, best first; size <= 2. The second entry —
  /// when present — is the retry target after the home worker fails.
  std::vector<int> Targets;
  /// Generation of each target at planning time; reportForward echoes it
  /// so a failure report against a restarted worker is ignored.
  std::vector<uint64_t> Generations;
  /// Socket path of each target, so the router never re-derives them.
  std::vector<std::string> Sockets;
};

class Supervisor {
public:
  /// Validates the config and binds the public socket (via the Router)
  /// up front, so a doomed fleet fails before forking anything. Null +
  /// \p Why on failure.
  static std::unique_ptr<Supervisor> create(const FleetConfig &Config,
                                            Status *Why = nullptr);
  ~Supervisor();

  /// Spawns the fleet, starts the router, and supervises until shutdown
  /// (signal or `shutdown` request), then drains. Fails when every
  /// worker is Dead — the service cannot answer and pretending otherwise
  /// would just shed forever.
  Status run();

  /// Thread-safe, idempotent; run() notices within one tick.
  void requestShutdown();

  /// Worker K's socket/cache paths, derived from the public socket and
  /// the base cache path. Static so tests and check.sh can predict them.
  static std::string shardSocketPath(const std::string &PublicSocket,
                                     unsigned Index);
  static std::string shardCachePath(const std::string &CachePath,
                                    unsigned Index);

  // --- Router-facing surface (thread-safe) -------------------------------

  /// Plans routing for a request whose source hashes to \p Fp.
  RoutePlan routeTargets(uint64_t Fp);

  /// Outcome of one forward attempt against worker \p Index at
  /// \p Generation. Failures feed the circuit breaker; a success closes
  /// it. Reports against a stale generation are dropped — the restarted
  /// worker must not inherit its predecessor's failures.
  void reportForward(int Index, uint64_t Generation, bool Ok,
                     bool TimedOut);

  /// Counts one request answered off its home shard.
  void noteReroute();

  /// True once drain has begun; the router sheds new work with reason
  /// "draining".
  bool draining() const;

  /// Deterministically-ordered fleet stats JSON: per-worker state plus
  /// the "serving" counter block (docs/TELEMETRY.md marks these
  /// determinism-exempt).
  std::string statsJson() const;

  FleetCounters counters() const;

private:
  Supervisor() = default;

  struct WorkerSlot {
    unsigned Index = 0;
    std::string SocketPath;
    std::string CachePath;
    pid_t Pid = -1;
    WorkerState State = WorkerState::Starting;
    /// Bumped on every (re)spawn; stale forward reports are ignored.
    uint64_t Generation = 0;
    unsigned ConsecutiveFailures = 0;
    unsigned MissedHeartbeats = 0;
    bool BreakerOpen = false;
    std::chrono::steady_clock::time_point BreakerOpenUntil{};
    std::chrono::steady_clock::time_point SpawnedAt{};
    std::chrono::steady_clock::time_point RestartDueAt{};
    uint64_t NextBackoffMs = 0;
    /// Spawn timestamps inside the current budget window.
    std::deque<std::chrono::steady_clock::time_point> RecentRestarts;
  };

  bool spawnWorker(WorkerSlot &W, Status *Why);
  void onWorkerDown(WorkerSlot &W, const std::string &Cause);
  void reapAll();
  void heartbeatAll();
  void restartDue();
  void drain();
  bool workerRoutable(const WorkerSlot &W,
                      std::chrono::steady_clock::time_point Now) const;

  FleetConfig Config;
  std::unique_ptr<Router> Front;
  std::atomic<bool> ShutdownRequested{false};
  std::atomic<bool> Draining{false};

  mutable std::mutex FleetM;
  std::vector<WorkerSlot> Slots;

  std::atomic<uint64_t> WorkerRestarts{0};
  std::atomic<uint64_t> Reroutes{0};
  std::atomic<uint64_t> BreakerOpenCount{0};
  std::atomic<uint64_t> HeartbeatTimeoutCount{0};
};

} // namespace vrp::serve

#endif // VRP_SERVE_SUPERVISOR_H
