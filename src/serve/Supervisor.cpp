//===- serve/Supervisor.cpp - predictord worker-fleet supervisor -----------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "serve/Supervisor.h"

#include "serve/Client.h"
#include "serve/Router.h"
#include "support/Process.h"
#include "support/ResultStore.h"
#include "support/Signal.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <csignal>
#include <thread>
#include <unistd.h>

using namespace vrp;
using namespace vrp::serve;

namespace {

using Clock = std::chrono::steady_clock;

/// Supervision tick: reap/restart latency floor.
constexpr uint64_t TickMs = 50;

Status failure(std::string Message) {
  return Status::failure(ErrorCategory::Internal, "supervisor",
                         std::move(Message));
}

const char *workerStateName(WorkerState S) {
  switch (S) {
  case WorkerState::Starting:
    return "starting";
  case WorkerState::Up:
    return "up";
  case WorkerState::Backoff:
    return "backoff";
  case WorkerState::Dead:
    return "dead";
  }
  return "unknown";
}

/// Rendezvous (highest-random-weight) score of worker \p Index for a
/// request fingerprint: every router thread and every supervisor agree
/// on the ranking with no shared state, and removing one worker only
/// moves that worker's keys.
uint64_t rendezvousScore(uint64_t Fp, unsigned Index) {
  return store::fnv1a64("w" + std::to_string(Index), Fp);
}

} // namespace

std::string Supervisor::shardSocketPath(const std::string &PublicSocket,
                                        unsigned Index) {
  return PublicSocket + ".w" + std::to_string(Index);
}

std::string Supervisor::shardCachePath(const std::string &CachePath,
                                       unsigned Index) {
  if (CachePath.empty())
    return std::string();
  return CachePath + ".w" + std::to_string(Index);
}

std::unique_ptr<Supervisor> Supervisor::create(const FleetConfig &Config,
                                               Status *Why) {
  std::unique_ptr<Supervisor> S(new Supervisor());
  S->Config = Config;
  if (S->Config.Workers == 0)
    S->Config.Workers = 1;
  if (S->Config.PublicSocket.empty()) {
    if (Why)
      *Why = failure("a public socket path is required");
    return nullptr;
  }
  if (S->Config.WorkerBinary.empty())
    S->Config.WorkerBinary = process::selfExePath();
  if (S->Config.WorkerBinary.empty()) {
    if (Why)
      *Why = failure("cannot resolve the worker binary path");
    return nullptr;
  }

  S->Slots.resize(S->Config.Workers);
  for (unsigned I = 0; I < S->Config.Workers; ++I) {
    WorkerSlot &W = S->Slots[I];
    W.Index = I;
    W.SocketPath = shardSocketPath(S->Config.PublicSocket, I);
    W.CachePath = shardCachePath(S->Config.CachePath, I);
  }

  // Bind the public socket before forking anything: a fleet that cannot
  // listen should fail without ever spawning a worker.
  S->Front = Router::create(S->Config.PublicSocket, S->Config.MaxConnections,
                            S->Config.ForwardTimeoutMs, *S, Why);
  if (!S->Front)
    return nullptr;
  return S;
}

Supervisor::~Supervisor() {
  // Backstop for a run() that never completed its drain: no worker may
  // outlive the supervisor object. PDEATHSIG would catch a *crashed*
  // supervisor; this catches an orderly destruction.
  for (WorkerSlot &W : Slots) {
    if (W.Pid > 0 && process::reap(W.Pid).State == process::ChildState::Running) {
      process::signalProcess(W.Pid, SIGKILL);
      process::waitWithTimeout(W.Pid, 1000);
    }
    if (!W.SocketPath.empty())
      ::unlink(W.SocketPath.c_str());
  }
}

void Supervisor::requestShutdown() { ShutdownRequested.store(true); }

bool Supervisor::draining() const { return Draining.load(); }

bool Supervisor::spawnWorker(WorkerSlot &W, Status *Why) {
  std::vector<std::string> Args;
  Args.push_back("--socket=" + W.SocketPath);
  Args.push_back("--threads=" + std::to_string(Config.WorkerThreads));
  if (!W.CachePath.empty())
    Args.push_back("--cache=" + W.CachePath);
  Args.push_back("--max-queue=" + std::to_string(Config.MaxQueue));
  Args.push_back("--degrade-depth=" + std::to_string(Config.DegradeDepth));
  Args.push_back("--max-conns=" + std::to_string(Config.MaxConnections));
  if (Config.DefaultDeadlineMs > 0)
    Args.push_back("--deadline=" + std::to_string(Config.DefaultDeadlineMs));
  if (!Config.ResponseMemo)
    Args.push_back("--no-memo");

  // A stale socket file from the previous generation would race the new
  // worker's own stale-probe against the router's connect attempts;
  // clear it here, while the slot is un-routable.
  ::unlink(W.SocketPath.c_str());

  pid_t Pid = process::spawn(Config.WorkerBinary, Args, Why);
  if (Pid < 0)
    return false;
  W.Pid = Pid;
  W.State = WorkerState::Starting;
  ++W.Generation;
  W.ConsecutiveFailures = 0;
  W.MissedHeartbeats = 0;
  W.BreakerOpen = false;
  W.SpawnedAt = Clock::now();
  return true;
}

void Supervisor::onWorkerDown(WorkerSlot &W, const std::string &Cause) {
  auto Now = Clock::now();
  W.Pid = -1;
  W.ConsecutiveFailures = 0;
  W.MissedHeartbeats = 0;
  W.BreakerOpen = false;

  // Slide the restart-budget window and charge this crash against it.
  auto WindowStart = Now - std::chrono::milliseconds(Config.RestartWindowMs);
  while (!W.RecentRestarts.empty() && W.RecentRestarts.front() < WindowStart)
    W.RecentRestarts.pop_front();
  W.RecentRestarts.push_back(Now);
  if (W.RecentRestarts.size() > Config.RestartBudget) {
    W.State = WorkerState::Dead;
    std::string Note = "predictord: worker " + std::to_string(W.Index) +
                       " marked dead after " +
                       std::to_string(W.RecentRestarts.size() - 1) +
                       " restarts (" + Cause + ")\n";
    (void)!::write(2, Note.data(), Note.size());
    return;
  }

  W.State = WorkerState::Backoff;
  if (W.NextBackoffMs == 0)
    W.NextBackoffMs = Config.BackoffBaseMs;
  W.RestartDueAt = Now + std::chrono::milliseconds(W.NextBackoffMs);
  W.NextBackoffMs = std::min(W.NextBackoffMs * 2, Config.BackoffCapMs);
}

void Supervisor::reapAll() {
  std::lock_guard<std::mutex> Lock(FleetM);
  for (WorkerSlot &W : Slots) {
    if (W.Pid <= 0 ||
        (W.State != WorkerState::Starting && W.State != WorkerState::Up))
      continue;
    process::ReapResult R = process::reap(W.Pid);
    if (R.State == process::ChildState::Running)
      continue;
    std::string Cause =
        R.State == process::ChildState::Signaled
            ? "signal " + std::to_string(R.Code)
            : "exit " + std::to_string(R.Code);
    onWorkerDown(W, Cause);
  }
}

void Supervisor::heartbeatAll() {
  // Probe without holding the fleet lock: a wedged worker costs up to
  // HeartbeatTimeoutMs per probe, and the router must keep planning
  // routes meanwhile.
  struct Probe {
    unsigned Index;
    uint64_t Generation;
    std::string SocketPath;
    WorkerState State;
    bool Ok = false;
  };
  std::vector<Probe> Probes;
  {
    std::lock_guard<std::mutex> Lock(FleetM);
    for (WorkerSlot &W : Slots)
      if (W.State == WorkerState::Starting || W.State == WorkerState::Up)
        Probes.push_back({W.Index, W.Generation, W.SocketPath, W.State});
  }

  for (Probe &P : Probes) {
    std::unique_ptr<Client> C = Client::connect(P.SocketPath);
    if (!C)
      continue;
    Request Req;
    Req.Method = "health";
    bool TimedOut = false;
    StatusOr<Response> R = C->call(Req, Config.HeartbeatTimeoutMs, &TimedOut);
    P.Ok = R.ok() && R.value().Status == RespStatus::Ok;
  }

  auto Now = Clock::now();
  std::lock_guard<std::mutex> Lock(FleetM);
  for (const Probe &P : Probes) {
    WorkerSlot &W = Slots[P.Index];
    // The worker may have crashed, been reaped, or been restarted while
    // the probe was in flight; a verdict about a dead generation is
    // meaningless.
    if (W.Generation != P.Generation ||
        (W.State != WorkerState::Starting && W.State != WorkerState::Up))
      continue;

    if (P.Ok) {
      if (W.State == WorkerState::Starting) {
        W.State = WorkerState::Up;
        // A successful start earns the backoff schedule a reset; the
        // restart-budget window still remembers recent crashes.
        W.NextBackoffMs = 0;
      }
      W.MissedHeartbeats = 0;
      continue;
    }

    if (W.State == WorkerState::Starting) {
      // Silence during the grace period just means the pipeline is still
      // warming up (opening the pcache shard, binding the socket).
      if (Now - W.SpawnedAt >
          std::chrono::milliseconds(Config.StartGraceMs)) {
        process::signalProcess(W.Pid, SIGKILL);
        process::waitWithTimeout(W.Pid, 1000);
        onWorkerDown(W, "start timeout");
      }
      continue;
    }

    ++W.MissedHeartbeats;
    HeartbeatTimeoutCount.fetch_add(1);
    telemetry::count(telemetry::Counter::ServeHeartbeatTimeouts);
    // Missed heartbeats feed the breaker too: a SIGSTOPped worker whose
    // shard happens to get no traffic must still trip it, or the chaos
    // drill's breaker assertion would depend on load distribution.
    ++W.ConsecutiveFailures;
    if (W.ConsecutiveFailures >= Config.BreakerThreshold) {
      if (!W.BreakerOpen) {
        W.BreakerOpen = true;
        BreakerOpenCount.fetch_add(1);
        telemetry::count(telemetry::Counter::ServeBreakerOpen);
      }
      W.BreakerOpenUntil =
          Now + std::chrono::milliseconds(Config.BreakerCooldownMs);
    }
    if (W.MissedHeartbeats >= Config.HeartbeatMissLimit) {
      // Alive to waitpid but mute on the wire: hung, stopped, or
      // livelocked. Replace it — SIGKILL, because a worker that cannot
      // answer a heartbeat cannot be trusted to honor SIGTERM either.
      process::signalProcess(W.Pid, SIGKILL);
      process::waitWithTimeout(W.Pid, 1000);
      onWorkerDown(W, "heartbeat timeout");
    }
  }
}

void Supervisor::restartDue() {
  auto Now = Clock::now();
  std::lock_guard<std::mutex> Lock(FleetM);
  for (WorkerSlot &W : Slots) {
    if (W.State != WorkerState::Backoff || Now < W.RestartDueAt)
      continue;
    Status Why;
    if (spawnWorker(W, &Why)) {
      WorkerRestarts.fetch_add(1);
      telemetry::count(telemetry::Counter::ServeWorkerRestarts);
    } else {
      // Spawn itself failed (fork pressure); try again after a tick.
      W.RestartDueAt = Now + std::chrono::milliseconds(TickMs * 4);
    }
  }
}

bool Supervisor::workerRoutable(const WorkerSlot &W,
                                Clock::time_point Now) const {
  if (W.State != WorkerState::Up)
    return false;
  // An open breaker past its cooldown is half-open: the worker becomes
  // routable again and the next forward's outcome decides whether it
  // closes or re-opens.
  if (W.BreakerOpen && Now < W.BreakerOpenUntil)
    return false;
  return true;
}

RoutePlan Supervisor::routeTargets(uint64_t Fp) {
  auto Now = Clock::now();
  RoutePlan Plan;
  std::lock_guard<std::mutex> Lock(FleetM);

  std::vector<unsigned> Order(Slots.size());
  for (unsigned I = 0; I < Slots.size(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
    uint64_t Sa = rendezvousScore(Fp, A), Sb = rendezvousScore(Fp, B);
    if (Sa != Sb)
      return Sa > Sb;
    return A < B;
  });

  // Home is the hash's first choice among *all* slots, healthy or not:
  // serving a request anywhere else is by definition a reroute, which is
  // exactly what the serve.reroutes counter measures.
  Plan.HomeIndex = static_cast<int>(Order.front());
  for (unsigned I : Order) {
    const WorkerSlot &W = Slots[I];
    if (!workerRoutable(W, Now))
      continue;
    Plan.Targets.push_back(static_cast<int>(I));
    Plan.Generations.push_back(W.Generation);
    Plan.Sockets.push_back(W.SocketPath);
    if (Plan.Targets.size() == 2)
      break;
  }
  return Plan;
}

void Supervisor::reportForward(int Index, uint64_t Generation, bool Ok,
                               bool TimedOut) {
  (void)TimedOut;
  auto Now = Clock::now();
  std::lock_guard<std::mutex> Lock(FleetM);
  if (Index < 0 || static_cast<size_t>(Index) >= Slots.size())
    return;
  WorkerSlot &W = Slots[Index];
  if (W.Generation != Generation)
    return; // The worker this verdict is about no longer exists.

  if (Ok) {
    W.ConsecutiveFailures = 0;
    W.BreakerOpen = false;
    return;
  }
  ++W.ConsecutiveFailures;
  if (W.ConsecutiveFailures >= Config.BreakerThreshold) {
    if (!W.BreakerOpen) {
      W.BreakerOpen = true;
      BreakerOpenCount.fetch_add(1);
      telemetry::count(telemetry::Counter::ServeBreakerOpen);
    }
    // Re-opening from half-open extends the cooldown without recounting.
    W.BreakerOpenUntil =
        Now + std::chrono::milliseconds(Config.BreakerCooldownMs);
  }
}

void Supervisor::noteReroute() {
  Reroutes.fetch_add(1);
  telemetry::count(telemetry::Counter::ServeReroutes);
}

FleetCounters Supervisor::counters() const {
  FleetCounters C;
  C.WorkerRestarts = WorkerRestarts.load();
  C.Reroutes = Reroutes.load();
  C.BreakerOpen = BreakerOpenCount.load();
  C.HeartbeatTimeouts = HeartbeatTimeoutCount.load();
  return C;
}

std::string Supervisor::statsJson() const {
  RouterStats RS = Front ? Front->stats() : RouterStats();
  FleetCounters FC = counters();
  std::string J = "{\"workers\":[";
  {
    std::lock_guard<std::mutex> Lock(FleetM);
    for (size_t I = 0; I < Slots.size(); ++I) {
      const WorkerSlot &W = Slots[I];
      if (I)
        J += ",";
      J += "{\"index\":" + std::to_string(W.Index) +
           ",\"pid\":" + std::to_string(W.Pid) + ",\"state\":\"" +
           workerStateName(W.State) +
           "\",\"generation\":" + std::to_string(W.Generation) +
           ",\"consecutive_failures\":" +
           std::to_string(W.ConsecutiveFailures) +
           ",\"missed_heartbeats\":" + std::to_string(W.MissedHeartbeats) +
           ",\"breaker_open\":" + (W.BreakerOpen ? "true" : "false") +
           ",\"restarts_in_window\":" +
           std::to_string(W.RecentRestarts.size()) + "}";
    }
  }
  J += "],\"router\":{\"connections\":" + std::to_string(RS.Connections) +
       ",\"rejected_connections\":" +
       std::to_string(RS.RejectedConnections) +
       ",\"protocol_errors\":" + std::to_string(RS.ProtocolErrors) +
       ",\"forwarded\":" + std::to_string(RS.Forwarded) +
       ",\"retried\":" + std::to_string(RS.Retried) +
       ",\"failed\":" + std::to_string(RS.Failed) +
       ",\"shed\":" + std::to_string(RS.Shed) + "}";
  J += ",\"serving\":{\"worker_restarts\":" +
       std::to_string(FC.WorkerRestarts) +
       ",\"reroutes\":" + std::to_string(FC.Reroutes) +
       ",\"breaker_open\":" + std::to_string(FC.BreakerOpen) +
       ",\"heartbeat_timeouts\":" + std::to_string(FC.HeartbeatTimeouts) +
       "}}";
  return J;
}

Status Supervisor::run() {
  {
    std::lock_guard<std::mutex> Lock(FleetM);
    for (WorkerSlot &W : Slots) {
      Status Why;
      if (!spawnWorker(W, &Why)) {
        // A fleet that cannot spawn its first generation is a startup
        // failure, not something to limp through.
        return Why;
      }
    }
  }
  Front->start();

  bool AllDead = false;
  auto LastHeartbeat = Clock::now();
  while (!ShutdownRequested.load() && !stopsignal::stopRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(TickMs));
    reapAll();
    auto Now = Clock::now();
    if (Now - LastHeartbeat >=
        std::chrono::milliseconds(Config.HeartbeatIntervalMs)) {
      LastHeartbeat = Now;
      heartbeatAll();
    }
    restartDue();
    {
      std::lock_guard<std::mutex> Lock(FleetM);
      AllDead = std::all_of(Slots.begin(), Slots.end(),
                            [](const WorkerSlot &W) {
                              return W.State == WorkerState::Dead;
                            });
    }
    if (AllDead)
      break;
  }

  drain();
  if (AllDead)
    return failure("all workers are dead; the fleet cannot answer");
  return Status::success();
}

void Supervisor::drain() {
  Draining.store(true);
  // Order matters: the router goes first, while the workers are still
  // alive, so every in-flight request is answered by a live fleet. Only
  // then do the workers get SIGTERM and drain their own queues.
  Front->stop();

  auto Deadline =
      Clock::now() + std::chrono::milliseconds(Config.DrainTimeoutMs);
  {
    std::lock_guard<std::mutex> Lock(FleetM);
    for (WorkerSlot &W : Slots)
      if (W.Pid > 0)
        process::signalProcess(W.Pid, SIGTERM);
    for (WorkerSlot &W : Slots) {
      if (W.Pid <= 0)
        continue;
      auto Now = Clock::now();
      uint64_t Left =
          Now < Deadline
              ? std::chrono::duration_cast<std::chrono::milliseconds>(
                    Deadline - Now)
                    .count()
              : 0;
      process::ReapResult R = process::waitWithTimeout(W.Pid, Left);
      if (R.State == process::ChildState::Running) {
        process::signalProcess(W.Pid, SIGKILL);
        process::waitWithTimeout(W.Pid, 2000);
      }
      W.Pid = -1;
      W.State = WorkerState::Dead;
      // Cleanly drained workers unlink their own socket; a SIGKILLed
      // straggler leaves the file behind, so sweep regardless.
      ::unlink(W.SocketPath.c_str());
    }
  }
}
