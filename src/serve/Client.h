//===- serve/Client.h - predictord client -----------------------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the framed protocol: connect to a predictord
/// socket, send one request frame, wait for the matching response frame.
/// Used by `predictord --send` and the serving bench's load generator.
/// One Client is one connection; calls on it are serial (the protocol is
/// strictly request/response per connection — concurrency comes from
/// opening more connections, as the load generator does).
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SERVE_CLIENT_H
#define VRP_SERVE_CLIENT_H

#include "serve/Protocol.h"
#include "support/Status.h"

#include <memory>
#include <string>

namespace vrp::serve {

class Client {
public:
  /// Connects to \p SocketPath. Null + \p Why when nothing listens
  /// there.
  static std::unique_ptr<Client> connect(const std::string &SocketPath,
                                         Status *Why = nullptr);
  ~Client();
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Sends \p Req and blocks for the response. Fails on transport or
  /// protocol errors; shed/error *responses* are successful calls — the
  /// caller inspects Response::Status.
  StatusOr<Response> call(const Request &Req);

  /// Like call(), but gives up after \p TimeoutMs without a response,
  /// setting *\p TimedOut so the caller can distinguish a hung peer from
  /// a dead one. After a timeout the connection is poisoned (a late
  /// response would desync the request/response stream) — the caller
  /// must discard this Client. Used by the fleet router to bound a
  /// forward to a possibly-wedged worker.
  StatusOr<Response> call(const Request &Req, uint64_t TimeoutMs,
                          bool *TimedOut);

private:
  explicit Client(int Fd) : Fd(Fd) {}
  int Fd = -1;
};

} // namespace vrp::serve

#endif // VRP_SERVE_CLIENT_H
