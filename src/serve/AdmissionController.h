//===- serve/AdmissionController.h - Bounded queue + shedding ---*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server's overload policy, in one place. Every analyze/predict
/// request passes through here before touching the pipeline:
///
///   depth <  DegradeDepth  ->  Admit    (full-fidelity analysis)
///   depth >= DegradeDepth  ->  Degrade  (admitted, but analyzed under a
///                                        one-step budget so the existing
///                                        budget-degradation machinery
///                                        produces the Ball–Larus answer
///                                        at a fraction of the cost)
///   depth >= MaxQueue      ->  Shed     (rejected immediately with a
///                                        structured `shed` response;
///                                        the client never blocks)
///
/// The queue is the *only* buffering in the server, so past saturation
/// latency stays bounded: a request is either being worked on, waiting
/// in a queue of at most MaxQueue entries, or already answered `shed`.
/// close() flips the controller into drain mode — queued work still
/// reaches the workers, new submissions shed with reason "draining" —
/// which is exactly SIGTERM's graceful-drain semantics.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SERVE_ADMISSIONCONTROLLER_H
#define VRP_SERVE_ADMISSIONCONTROLLER_H

#include "serve/Protocol.h"

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>

namespace vrp::serve {

struct AdmissionConfig {
  /// Hard cap on queued (not yet executing) requests; at this depth new
  /// work sheds.
  size_t MaxQueue = 64;
  /// Depth at which admitted work is degraded. Must be <= MaxQueue;
  /// equal values disable the degrade band.
  size_t DegradeDepth = 48;
};

enum class AdmissionVerdict { Admit, Degrade, Shed };

/// Monotonic counters, readable while the server runs (stats requests).
struct AdmissionStats {
  uint64_t Admitted = 0;
  uint64_t Degraded = 0; ///< Admitted through the degrade band.
  uint64_t Shed = 0;     ///< Includes drain-mode rejections.
  /// Admitted, but the request's deadline had already expired by the
  /// time a worker dequeued it — shed at the last moment instead of run.
  uint64_t ExpiredInQueue = 0;
  uint64_t MaxDepthSeen = 0;
};

class AdmissionController {
public:
  /// One queued unit of work. The connection thread keeps the future;
  /// a worker fulfills the promise.
  struct Task {
    Request Req;
    bool Degrade = false;
    std::chrono::steady_clock::time_point Enqueued;
    std::promise<Response> Done;
  };

  explicit AdmissionController(const AdmissionConfig &Config);

  /// Applies the policy to \p Req. On Admit/Degrade the task is queued
  /// and \p Future is valid; on Shed nothing was queued and \p Future is
  /// untouched.
  AdmissionVerdict submit(Request Req, std::future<Response> &Future);

  /// Worker side: blocks for the next task. Returns false when the
  /// controller is closed and the queue is drained — the worker's signal
  /// to exit.
  bool pop(Task &Out);

  /// True when \p T carried a deadline that has already expired while it
  /// sat in the queue. Running such a task would waste a worker on an
  /// answer the client has given up on; the worker sheds it with
  /// makeExpiredResponse instead.
  static bool expiredInQueue(const Task &T);

  /// The structured "deadline expired in queue" shed response for
  /// \p Req, with the same category the deadline machinery uses when a
  /// request expires *during* analysis (budget exceeded).
  static Response makeExpiredResponse(const Request &Req);

  /// Counts one expired-in-queue shed (the worker detected it; the
  /// controller just keeps the statistics honest).
  void noteExpired();

  /// Enters drain mode (idempotent): queued tasks still pop, new
  /// submissions shed, and blocked workers wake to finish and exit.
  void close();
  bool closed() const;

  size_t depth() const;
  AdmissionStats stats() const;

private:
  AdmissionConfig Config;
  mutable std::mutex M;
  std::condition_variable NotEmpty;
  std::deque<Task> Queue;
  AdmissionStats Counters;
  bool Closed = false;
};

} // namespace vrp::serve

#endif // VRP_SERVE_ADMISSIONCONTROLLER_H
