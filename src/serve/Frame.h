//===- serve/Frame.h - Length-prefixed socket framing -----------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire framing of the predictord protocol (docs/SERVING.md): every
/// message — request or response — travels as one frame,
///
///   [u32 payload length, little-endian][payload bytes]
///
/// with the payload being one JSON object (serve/Protocol.h). Frames are
/// capped at MaxFrameBytes: an oversized length prefix is treated as a
/// protocol error and the connection is dropped, never trusted as an
/// allocation size. Reads honor the socket's receive timeout so server
/// loops can poll the cooperative stop flag between frames; writes retry
/// through EINTR and short writes.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SERVE_FRAME_H
#define VRP_SERVE_FRAME_H

#include "support/Status.h"

#include <cstdint>
#include <string>

namespace vrp::serve {

/// Sanity cap on one frame's payload; anything larger is a protocol
/// error. Generous: the biggest legitimate payload is a VL source or a
/// rendered report, both far below this.
constexpr uint32_t MaxFrameBytes = 16u << 20;

/// Outcome of one readFrame call.
enum class FrameRead {
  Frame,   ///< A complete frame was read into the output.
  Eof,     ///< Clean end-of-stream before any byte of a new frame.
  Timeout, ///< The receive timeout expired before a new frame started.
  Error,   ///< Protocol violation, torn frame, or socket error.
};

/// Reads one frame from \p Fd. A receive timeout between frames yields
/// Timeout (the caller polls its stop flag and retries); a timeout that
/// strikes repeatedly mid-frame eventually yields Error — a peer that
/// stalls halfway through a frame is indistinguishable from a dead one
/// and must not wedge the connection thread forever. \p Err, when
/// non-null, receives a human-readable reason for Error results.
FrameRead readFrame(int Fd, std::string &Payload, std::string *Err = nullptr);

/// Writes one frame (prefix + payload) to \p Fd, retrying through EINTR
/// and short writes. Fails when the payload exceeds MaxFrameBytes or the
/// socket errors (peer gone mid-write).
Status writeFrame(int Fd, const std::string &Payload);

} // namespace vrp::serve

#endif // VRP_SERVE_FRAME_H
