//===- serve/Protocol.h - predictord request/response schema ----*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JSON payloads carried by serve/Frame.h, specified in
/// docs/SERVING.md. Requests name a method (ping, predict, analyze,
/// stats, shutdown) plus the VL source and per-request knobs; responses
/// carry a status (ok, error, shed), the rendered payload, and — for
/// failures — the same structured category/site/message triple the rest
/// of the pipeline uses (support/Status.h).
///
/// Parsing follows eval/Journal.cpp's philosophy: a small, strict,
/// dependency-free scanner over exactly the shapes we emit. Keys may
/// appear in any order; unknown keys with scalar values are skipped so
/// the protocol can grow without breaking older peers; any structural
/// violation rejects the whole message (the transport then answers with
/// a protocol error rather than guessing).
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SERVE_PROTOCOL_H
#define VRP_SERVE_PROTOCOL_H

#include <cstdint>
#include <string>

namespace vrp::serve {

/// One client request. Defaults mirror predictor_tool's single-file
/// mode so `predict` on a bare source is bitwise-identical to
/// `predictor_tool file.vl`.
struct Request {
  uint64_t Id = 0;            ///< Client-chosen; echoed in the response.
  /// ping | predict | analyze | stats | health | shutdown. health is
  /// the supervisor's heartbeat: answered from resident state with the
  /// worker's {"pid":N}, bypassing admission.
  std::string Method;
  std::string Source;         ///< VL program text (predict/analyze).
  std::string Predictor = "vrp"; ///< vrp | ball-larus | 90-50 | random.
  bool DumpRanges = false;    ///< predict: append the value-range dump.
  uint64_t StepLimit = 0;     ///< Propagation step budget (0 = unlimited).
  uint64_t DeadlineMs = 0;    ///< Per-request wall-clock budget (0 = none).
};

/// How the request ended.
enum class RespStatus {
  Ok,    ///< Served; Payload holds the result.
  Error, ///< Failed; Category/Site/Message explain.
  Shed,  ///< Rejected by admission control without being attempted.
};

struct Response {
  uint64_t Id = 0;
  RespStatus Status = RespStatus::Ok;
  /// True when any function fell back to the Ball–Larus heuristic —
  /// budget exhaustion, deadline expiry, or admission-forced degradation
  /// all surface here the same way.
  bool Degraded = false;
  std::string Payload;
  std::string Category; ///< errorCategoryName() (error responses).
  std::string Site;     ///< Failing stage or "admission" (error/shed).
  std::string Message;  ///< Human-readable reason (error/shed).
};

/// JSON string escaping, byte-compatible with eval/Journal's writer
/// (\" \\ \n \t \r, other control bytes as \u00xx).
std::string jsonEscape(const std::string &S);

std::string serializeRequest(const Request &R);
std::string serializeResponse(const Response &R);

/// Strict parses; on failure return false and, when \p Err is non-null,
/// say why. \p Out is default-initialized first, so absent optional keys
/// land on their documented defaults.
bool parseRequest(const std::string &Json, Request &Out,
                  std::string *Err = nullptr);
bool parseResponse(const std::string &Json, Response &Out,
                   std::string *Err = nullptr);

const char *respStatusName(RespStatus S);

} // namespace vrp::serve

#endif // VRP_SERVE_PROTOCOL_H
