//===- serve/Router.h - Fleet front-end request router ----------*- C++ -*-===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client-facing half of the fleet (serve/Supervisor.h): listens on
/// the public socket, speaks the same framed protocol as the
/// single-process Server, and forwards predict/analyze requests to
/// worker shards chosen by rendezvous hash of the request source — so a
/// given module always lands on the same worker and that worker's
/// AnalysisCache/PersistentCache/response memo stay hot for its shard.
///
/// Forwarding is supervised: each attempt is bounded by
/// ForwardTimeoutMs, a failed or timed-out attempt is reported to the
/// Supervisor (feeding the per-shard circuit breaker), and the request
/// is retried exactly once on the next worker in rendezvous order.
/// Idempotent analysis makes the retry invisible: the second worker
/// produces the bitwise-identical response the first would have.
///
/// Control methods are answered locally: ping from the router itself,
/// stats/health from the Supervisor's fleet view, shutdown by starting
/// the fleet-wide drain. The router never runs analysis in-process.
///
//===----------------------------------------------------------------------===//

#ifndef VRP_SERVE_ROUTER_H
#define VRP_SERVE_ROUTER_H

#include "serve/Protocol.h"
#include "support/Status.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace vrp::serve {

class Client;
class Supervisor;

struct RouterStats {
  uint64_t Connections = 0;
  uint64_t RejectedConnections = 0;
  uint64_t ProtocolErrors = 0;
  uint64_t Forwarded = 0;
  uint64_t Retried = 0; ///< Second attempts after a failed forward.
  uint64_t Failed = 0;  ///< Both attempts failed; client got an error.
  uint64_t Shed = 0;    ///< No routable worker (draining or all down).
};

class Router {
public:
  /// Binds the public socket (stale-file probe included). Null + \p Why
  /// on failure. \p Fleet must outlive the router. \p ForwardTimeoutMs
  /// bounds each forward attempt to a worker.
  static std::unique_ptr<Router> create(const std::string &SocketPath,
                                        unsigned MaxConnections,
                                        uint64_t ForwardTimeoutMs,
                                        Supervisor &Fleet,
                                        Status *Why = nullptr);
  ~Router();

  /// Starts the accept loop on a background thread.
  void start();

  /// Drains: stops accepting, lets connection threads answer what they
  /// are reading, joins them, closes and unlinks the public socket.
  /// Idempotent. Called by the Supervisor *before* workers are stopped,
  /// so every in-flight request still has a live fleet to run on.
  void stop();

  RouterStats stats() const;

private:
  Router() = default;
  void acceptLoop();
  void connectionLoop(int Fd);
  Response dispatch(const Request &Req);
  Response forward(const Request &Req);

  std::string SocketPath;
  unsigned MaxConnections = 64;
  uint64_t ForwardTimeoutMs = 2000;
  Supervisor *Fleet = nullptr;
  int ListenFd = -1;
  bool Bound = false;
  std::atomic<bool> Stopping{false};
  std::atomic<bool> Stopped{false};

  std::thread Acceptor;
  std::mutex ThreadsM;
  std::vector<std::thread> ConnectionThreads;

  std::atomic<uint64_t> Connections{0};
  std::atomic<uint64_t> RejectedConnections{0};
  std::atomic<uint64_t> ProtocolErrors{0};
  std::atomic<uint64_t> Forwarded{0};
  std::atomic<uint64_t> Retried{0};
  std::atomic<uint64_t> Failed{0};
  std::atomic<uint64_t> Shed{0};
  std::atomic<unsigned> ActiveConnections{0};
};

} // namespace vrp::serve

#endif // VRP_SERVE_ROUTER_H
