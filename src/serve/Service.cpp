//===- serve/Service.cpp - Resident analysis service -----------------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "serve/Service.h"

#include "analysis/AnalysisCache.h"
#include "analysis/PersistentCache.h"
#include "driver/Pipeline.h"
#include "ir/IRPrinter.h"
#include "support/FaultInjection.h"
#include "support/ResultStore.h"

#include <chrono>
#include <cstdio>
#include <unistd.h>
#include <exception>
#include <sstream>
#include <stdexcept>
#include <thread>

using namespace vrp;
using namespace vrp::serve;

namespace {

bool knownPredictor(const std::string &Name) {
  return Name == "vrp" || Name == "ball-larus" || Name == "90-50" ||
         Name == "random";
}

/// Hex-float rendering, bitwise round-trippable — the same discipline
/// eval/Journal uses for checkpointed doubles.
std::string hexFloat(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%a", V);
  return Buf;
}

/// A failure is worth one retry when it looks transient: an injected
/// fault or an escaped exception (Internal), not a deterministic
/// rejection of the input (parse/verify) or an exhausted budget —
/// re-running those reproduces the same answer at full cost.
bool transientFailure(const Response &R) {
  if (R.Status != RespStatus::Error)
    return false;
  if (R.Message.find("injected") != std::string::npos)
    return true;
  return R.Category == errorCategoryName(ErrorCategory::Internal) &&
         R.Site != "irgen";
}

uint64_t memoKey(const Request &R, bool ForceDegrade) {
  std::string Material = R.Method;
  Material += '\0';
  Material += R.Predictor;
  Material += '\0';
  Material += R.DumpRanges ? '1' : '0';
  Material += ForceDegrade ? '1' : '0';
  Material += '\0';
  Material += std::to_string(R.StepLimit);
  Material += '\0';
  Material += R.Source;
  return store::fnv1a64(Material);
}

} // namespace

std::unique_ptr<Service> Service::create(const ServiceConfig &Config,
                                         Status *Why) {
  std::unique_ptr<Service> S(new Service());
  S->Config = Config;
  if (!Config.CachePath.empty()) {
    Status CacheWhy;
    S->PCache =
        PersistentCache::open(Config.CachePath, /*Verify=*/false, &CacheWhy);
    if (!S->PCache) {
      if (Why)
        *Why = CacheWhy.ok()
                   ? Status::failure(ErrorCategory::Internal, "service",
                                     "cannot open cache " + Config.CachePath)
                   : CacheWhy;
      return nullptr;
    }
  }
  return S;
}

Service::~Service() = default;

Response Service::handle(const Request &Req, bool ForceDegrade) {
  Requests.fetch_add(1);
  Response R;
  R.Id = Req.Id;

  if (Req.Method == "ping") {
    R.Payload = "pong";
    return R;
  }
  if (Req.Method == "stats") {
    R.Payload = statsJson();
    return R;
  }
  if (Req.Method == "health") {
    // The supervisor's heartbeat: proves the process is alive *and*
    // dispatching (a SIGSTOPped or wedged worker cannot answer). The pid
    // lets the supervisor confirm it is talking to the generation it
    // spawned, not a stale socket.
    R.Payload = "{\"pid\":" + std::to_string(::getpid()) + "}";
    return R;
  }
  if (Req.Method != "predict" && Req.Method != "analyze") {
    Failures.fetch_add(1);
    R.Status = RespStatus::Error;
    R.Category = errorCategoryName(ErrorCategory::Internal);
    R.Site = "service";
    R.Message = "unknown method '" + Req.Method + "'";
    return R;
  }
  if (!knownPredictor(Req.Predictor)) {
    Failures.fetch_add(1);
    R.Status = RespStatus::Error;
    R.Category = errorCategoryName(ErrorCategory::Internal);
    R.Site = "service";
    R.Message = "unknown predictor '" + Req.Predictor + "'";
    return R;
  }

  // Memoization covers only deterministic requests: a wall-clock
  // deadline makes the degradation pattern timing-dependent, so those
  // always recompute.
  uint64_t EffectiveDeadline =
      Req.DeadlineMs != 0 ? Req.DeadlineMs : Config.DefaultDeadlineMs;
  bool Memoizable = Config.ResponseMemo && EffectiveDeadline == 0;
  uint64_t Key = Memoizable ? memoKey(Req, ForceDegrade) : 0;
  if (Memoizable) {
    std::lock_guard<std::mutex> Lock(MemoM);
    auto It = Memo.find(Key);
    if (It != Memo.end()) {
      MemoHits.fetch_add(1);
      Response Hit = It->second;
      Hit.Id = Req.Id;
      if (Hit.Degraded)
        DegradedResponses.fetch_add(1);
      return Hit;
    }
  }

  // Every request buffers its persistent-cache inserts under a private
  // scope: concurrent requests can never interleave half-finished
  // results, and a failed attempt discards instead of committing.
  std::string Scope = "serve:" + std::to_string(Seq.fetch_add(1));
  fault::ScopedKey ScopeKey(Scope);

  R = attempt(Req, ForceDegrade);
  if (transientFailure(R)) {
    // One supervised retry with backoff, mirroring eval/SuiteRunner's
    // worker supervision. Deterministic failures never reach here.
    Retries.fetch_add(1);
    if (PCache)
      PCache->discardScope();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    R = attempt(Req, ForceDegrade);
  }
  R.Id = Req.Id;

  if (PCache) {
    if (R.Status == RespStatus::Ok)
      PCache->commitScope();
    else
      PCache->discardScope();
  }

  if (R.Status != RespStatus::Ok)
    Failures.fetch_add(1);
  if (R.Degraded)
    DegradedResponses.fetch_add(1);
  if (Memoizable && R.Status == RespStatus::Ok) {
    std::lock_guard<std::mutex> Lock(MemoM);
    Response Stored = R;
    Stored.Id = 0;
    Memo.emplace(Key, std::move(Stored));
  }
  return R;
}

Response Service::attempt(const Request &Req, bool ForceDegrade) {
  Response R;
  R.Id = Req.Id;
  try {
    if (fault::shouldFail("worker"))
      throw std::runtime_error("injected worker fault");

    VRPOptions Opts;
    Opts.Interprocedural = true;
    Opts.Threads = Config.AnalysisThreads;
    Opts.Budget.PropagationStepLimit = Req.StepLimit;
    Opts.Budget.DeadlineMs =
        Req.DeadlineMs != 0 ? Req.DeadlineMs : Config.DefaultDeadlineMs;
    // Overload degradation rides the existing budget machinery: a
    // one-step limit makes every analyzed function exhaust immediately
    // and take the Ball–Larus fallback, exactly as a blown --budget
    // does. A persistent-cache hit still restores the full result — a
    // warm entry costs nothing, so overload never discards it.
    if (ForceDegrade)
      Opts.Budget.PropagationStepLimit = 1;

    DiagnosticEngine Diags;
    auto Compiled = compileProgram(Req.Source, Diags, Opts);
    if (!Compiled.ok()) {
      const VrpError &E = Compiled.error();
      R.Status = RespStatus::Error;
      R.Category = errorCategoryName(E.Category);
      R.Site = E.Site;
      R.Message = E.Message;
      return R;
    }
    Module &M = *Compiled.value()->IR;

    AnalysisCache Cache;
    ModuleVRPResult VRP = runModuleVRP(M, Opts, &Cache, PCache.get());
    R.Degraded = VRP.FunctionsDegraded > 0;

    if (Req.Method == "predict") {
      std::ostringstream OS;
      renderPredictionReport(M, VRP, &Cache,
                             {Req.Predictor, Req.DumpRanges}, OS);
      R.Payload = OS.str();
      return R;
    }

    // analyze: the same per-branch decisions as machine-readable JSON.
    // Hex-float probabilities and module order keep the bytes a pure
    // function of the input.
    std::ostringstream OS;
    OS << "{\"functions\":[";
    bool FirstFn = true;
    for (const auto &F : M.functions()) {
      const FunctionVRPResult *FR = VRP.forFunction(F.get());
      if (!FR)
        continue;
      bool Any = false;
      for (const auto &B : F->blocks())
        if (isa<CondBrInst>(B->terminator()))
          Any = true;
      if (!Any)
        continue;
      OS << (FirstFn ? "" : ",") << "{\"name\":\"" << jsonEscape(F->name())
         << "\",\"degraded\":" << (FR->Degraded ? "true" : "false")
         << ",\"branches\":[";
      FirstFn = false;

      FinalPredictionMap Final = finalizePredictions(*F, *FR, &Cache);
      BranchProbMap Alt;
      if (Req.Predictor == "ball-larus")
        Alt = predictBallLarus(*F);
      else if (Req.Predictor == "90-50")
        Alt = predictNinetyFifty(*F);
      else if (Req.Predictor == "random")
        Alt = predictRandom(*F, 1234);

      bool FirstBr = true;
      for (const auto &B : F->blocks()) {
        const auto *CBr = dyn_cast_or_null<CondBrInst>(B->terminator());
        if (!CBr)
          continue;
        double Prob;
        std::string SourceTag;
        if (Req.Predictor == "vrp") {
          const FinalPrediction &P = Final.at(CBr);
          Prob = P.ProbTrue;
          SourceTag = P.Source == PredictionSource::Range ? "ranges"
                      : P.Source == PredictionSource::Heuristic
                          ? "heuristic fallback"
                          : "unreachable";
        } else {
          Prob = Alt.at(CBr);
          SourceTag = Req.Predictor;
        }
        OS << (FirstBr ? "" : ",") << "{\"line\":\""
           << jsonEscape(CBr->loc().str()) << "\",\"cond\":\""
           << jsonEscape(
                  instructionToString(*cast<Instruction>(CBr->cond())))
           << "\",\"prob\":\"" << hexFloat(Prob) << "\",\"source\":\""
           << jsonEscape(SourceTag) << "\"}";
        FirstBr = false;
      }
      OS << "]}";
    }
    OS << "],\"degraded_functions\":" << VRP.FunctionsDegraded << "}";
    R.Payload = OS.str();
    return R;
  } catch (const std::exception &E) {
    R.Status = RespStatus::Error;
    R.Degraded = false;
    R.Payload.clear();
    R.Category = errorCategoryName(ErrorCategory::Internal);
    R.Site = "service";
    R.Message = E.what();
    return R;
  } catch (...) {
    R.Status = RespStatus::Error;
    R.Degraded = false;
    R.Payload.clear();
    R.Category = errorCategoryName(ErrorCategory::Internal);
    R.Site = "service";
    R.Message = "unknown exception";
    return R;
  }
}

ServiceCounters Service::counters() const {
  ServiceCounters C;
  C.Requests = Requests.load();
  C.Failures = Failures.load();
  C.DegradedResponses = DegradedResponses.load();
  C.MemoHits = MemoHits.load();
  C.Retries = Retries.load();
  return C;
}

std::string Service::statsJson() const {
  ServiceCounters C = counters();
  std::ostringstream OS;
  OS << "{\"requests\":" << C.Requests << ",\"failures\":" << C.Failures
     << ",\"degraded\":" << C.DegradedResponses
     << ",\"memo_hits\":" << C.MemoHits << ",\"retries\":" << C.Retries;
  if (PCache) {
    store::ResultStoreStats S = PCache->stats();
    OS << ",\"pcache\":{\"hits\":" << S.Hits << ",\"misses\":" << S.Misses
       << ",\"records\":" << S.Records
       << ",\"corrupt_records\":" << S.CorruptRecords
       << ",\"bytes_written\":" << S.BytesWritten << "}";
  }
  OS << "}";
  return OS.str();
}
