//===- serve/Protocol.cpp - predictord request/response schema -------------===//
//
// Part of the VRP reproduction of Patterson, PLDI 1995.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <cstdio>

using namespace vrp;
using namespace vrp::serve;

std::string serve::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

const char *serve::respStatusName(RespStatus S) {
  switch (S) {
  case RespStatus::Ok:
    return "ok";
  case RespStatus::Error:
    return "error";
  case RespStatus::Shed:
    return "shed";
  }
  return "unknown";
}

std::string serve::serializeRequest(const Request &R) {
  std::string Out = "{\"id\":" + std::to_string(R.Id);
  Out += ",\"method\":\"" + jsonEscape(R.Method) + "\"";
  if (!R.Source.empty())
    Out += ",\"source\":\"" + jsonEscape(R.Source) + "\"";
  if (R.Predictor != "vrp")
    Out += ",\"predictor\":\"" + jsonEscape(R.Predictor) + "\"";
  if (R.DumpRanges)
    Out += ",\"ranges\":true";
  if (R.StepLimit != 0)
    Out += ",\"step_limit\":" + std::to_string(R.StepLimit);
  if (R.DeadlineMs != 0)
    Out += ",\"deadline_ms\":" + std::to_string(R.DeadlineMs);
  Out += "}";
  return Out;
}

std::string serve::serializeResponse(const Response &R) {
  std::string Out = "{\"id\":" + std::to_string(R.Id);
  Out += ",\"status\":\"";
  Out += respStatusName(R.Status);
  Out += "\"";
  if (R.Degraded)
    Out += ",\"degraded\":true";
  if (!R.Payload.empty())
    Out += ",\"payload\":\"" + jsonEscape(R.Payload) + "\"";
  if (!R.Category.empty())
    Out += ",\"category\":\"" + jsonEscape(R.Category) + "\"";
  if (!R.Site.empty())
    Out += ",\"site\":\"" + jsonEscape(R.Site) + "\"";
  if (!R.Message.empty())
    Out += ",\"message\":\"" + jsonEscape(R.Message) + "\"";
  Out += "}";
  return Out;
}

namespace {

/// Strict scanner over one flat JSON object, in the style of
/// eval/Journal.cpp's Cursor: enough JSON for the shapes we emit,
/// nothing more (no nested containers — the protocol keeps payloads as
/// strings precisely so this stays flat).
class Cursor {
public:
  explicit Cursor(const std::string &S) : S(S) {}

  bool fail(std::string_view Why) {
    if (Error.empty())
      Error = Why;
    return false;
  }
  const std::string &error() const { return Error; }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool expect(char C) {
    skipWs();
    if (Pos >= S.size() || S[Pos] != C)
      return fail(std::string("expected '") + C + "'");
    ++Pos;
    return true;
  }

  bool peek(char C) {
    skipWs();
    return Pos < S.size() && S[Pos] == C;
  }

  bool atEnd() {
    skipWs();
    return Pos >= S.size();
  }

  bool parseString(std::string &Out) {
    if (!expect('"'))
      return false;
    Out.clear();
    while (Pos < S.size()) {
      char C = S[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= S.size())
        return fail("dangling escape");
      char E = S[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'u': {
        if (Pos + 4 > S.size())
          return fail("truncated \\u escape");
        unsigned V = 0;
        for (int I = 0; I < 4; ++I) {
          char H = S[Pos++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape");
        }
        if (V > 0xff)
          return fail("\\u escape beyond latin-1");
        Out += static_cast<char>(V);
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseUint(uint64_t &Out) {
    skipWs();
    if (Pos >= S.size() || S[Pos] < '0' || S[Pos] > '9')
      return fail("expected number");
    Out = 0;
    while (Pos < S.size() && S[Pos] >= '0' && S[Pos] <= '9') {
      uint64_t Digit = static_cast<uint64_t>(S[Pos] - '0');
      if (Out > (UINT64_MAX - Digit) / 10)
        return fail("number overflows");
      Out = Out * 10 + Digit;
      ++Pos;
    }
    return true;
  }

  bool parseBool(bool &Out) {
    skipWs();
    if (S.compare(Pos, 4, "true") == 0) {
      Pos += 4;
      Out = true;
      return true;
    }
    if (S.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      Out = false;
      return true;
    }
    return fail("expected bool");
  }

  /// Skips an unknown key's scalar value (string, number, bool, null).
  bool skipScalar() {
    skipWs();
    if (Pos >= S.size())
      return fail("expected value");
    char C = S[Pos];
    if (C == '"') {
      std::string Dropped;
      return parseString(Dropped);
    }
    if (C == 't' || C == 'f') {
      bool Dropped;
      return parseBool(Dropped);
    }
    if (S.compare(Pos, 4, "null") == 0) {
      Pos += 4;
      return true;
    }
    if (C == '-' || (C >= '0' && C <= '9')) {
      ++Pos;
      while (Pos < S.size() &&
             ((S[Pos] >= '0' && S[Pos] <= '9') || S[Pos] == '.' ||
              S[Pos] == 'e' || S[Pos] == 'E' || S[Pos] == '+' ||
              S[Pos] == '-' || S[Pos] == 'x' ||
              (S[Pos] >= 'a' && S[Pos] <= 'f') ||
              (S[Pos] >= 'A' && S[Pos] <= 'F') || S[Pos] == 'p' ||
              S[Pos] == 'P'))
        ++Pos;
      return true;
    }
    return fail("unknown key holds a non-scalar value");
  }

private:
  const std::string &S;
  size_t Pos = 0;
  std::string Error;
};

/// Drives the shared object-scan loop; \p Field dispatches one known key
/// (returning false on a malformed value) and leaves unknown keys to the
/// loop's scalar skip, so the protocol can grow fields without breaking
/// older peers.
bool scanObject(const std::string &Json, std::string *Err,
                       bool (*Field)(Cursor &, const std::string &, bool &,
                                     void *),
                       void *Ctx) {
  Cursor C(Json);
  auto fail = [&](const std::string &Why) {
    if (Err)
      *Err = Why.empty() ? "malformed message" : Why;
    return false;
  };
  if (!C.expect('{'))
    return fail(C.error());
  bool First = true;
  while (!C.peek('}')) {
    if (!First && !C.expect(','))
      return fail("expected ',' or '}'");
    First = false;
    std::string Key;
    if (!C.parseString(Key) || !C.expect(':'))
      return fail(C.error());
    bool Known = false;
    if (!Field(C, Key, Known, Ctx))
      return fail(C.error());
    if (!Known && !C.skipScalar())
      return fail(C.error());
  }
  if (!C.expect('}'))
    return fail(C.error());
  if (!C.atEnd())
    return fail("trailing bytes after object");
  return true;
}

} // namespace

bool serve::parseRequest(const std::string &Json, Request &Out,
                         std::string *Err) {
  Out = Request();
  auto Field = [](Cursor &C, const std::string &Key, bool &Known,
                  void *Ctx) -> bool {
    Request &R = *static_cast<Request *>(Ctx);
    Known = true;
    if (Key == "id")
      return C.parseUint(R.Id);
    if (Key == "method")
      return C.parseString(R.Method);
    if (Key == "source")
      return C.parseString(R.Source);
    if (Key == "predictor")
      return C.parseString(R.Predictor);
    if (Key == "ranges")
      return C.parseBool(R.DumpRanges);
    if (Key == "step_limit")
      return C.parseUint(R.StepLimit);
    if (Key == "deadline_ms")
      return C.parseUint(R.DeadlineMs);
    Known = false;
    return true;
  };
  if (!scanObject(Json, Err, Field, &Out))
    return false;
  if (Out.Method.empty()) {
    if (Err)
      *Err = "request lacks a method";
    return false;
  }
  return true;
}

bool serve::parseResponse(const std::string &Json, Response &Out,
                          std::string *Err) {
  Out = Response();
  std::string StatusName = "ok";
  struct Ctx {
    Response *R;
    std::string *StatusName;
  } Context{&Out, &StatusName};
  auto Field = [](Cursor &C, const std::string &Key, bool &Known,
                  void *Raw) -> bool {
    Ctx &X = *static_cast<Ctx *>(Raw);
    Known = true;
    if (Key == "id")
      return C.parseUint(X.R->Id);
    if (Key == "status")
      return C.parseString(*X.StatusName);
    if (Key == "degraded")
      return C.parseBool(X.R->Degraded);
    if (Key == "payload")
      return C.parseString(X.R->Payload);
    if (Key == "category")
      return C.parseString(X.R->Category);
    if (Key == "site")
      return C.parseString(X.R->Site);
    if (Key == "message")
      return C.parseString(X.R->Message);
    Known = false;
    return true;
  };
  if (!scanObject(Json, Err, Field, &Context))
    return false;
  if (StatusName == "ok")
    Out.Status = RespStatus::Ok;
  else if (StatusName == "error")
    Out.Status = RespStatus::Error;
  else if (StatusName == "shed")
    Out.Status = RespStatus::Shed;
  else {
    if (Err)
      *Err = "unknown response status '" + StatusName + "'";
    return false;
  }
  return true;
}
